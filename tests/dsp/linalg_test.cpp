#include "dsp/linalg.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tagspin::dsp {
namespace {

TEST(Matrix, Indexing) {
  Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(SolveLinear, TwoByTwo) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const auto x = solveLinear(a, {5.0, 10.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SolveLinear, NeedsPivoting) {
  // Zero on the diagonal; succeeds only with row exchange.
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const auto x = solveLinear(a, {2.0, 3.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ((*x)[0], 3.0);
  EXPECT_DOUBLE_EQ((*x)[1], 2.0);
}

TEST(SolveLinear, SingularReturnsEmpty) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_FALSE(solveLinear(a, {1.0, 2.0}).has_value());
}

TEST(SolveLinear, DimensionMismatchThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(solveLinear(a, {1.0, 2.0}), std::invalid_argument);
  Matrix b(2, 2);
  EXPECT_THROW(solveLinear(b, {1.0}), std::invalid_argument);
}

TEST(SolveLinear, LargerSystemRoundTrip) {
  // Build A x = b from a known x and verify recovery.
  const size_t n = 6;
  Matrix a(n, n);
  std::vector<double> truth(n);
  for (size_t i = 0; i < n; ++i) {
    truth[i] = static_cast<double>(i) - 2.5;
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = 1.0 / (1.0 + static_cast<double>(i + 2 * j));  // well-posed
    }
    a(i, i) += 2.0;  // diagonally dominant
  }
  std::vector<double> b(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) b[i] += a(i, j) * truth[j];
  }
  const auto x = solveLinear(a, b);
  ASSERT_TRUE(x.has_value());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*x)[i], truth[i], 1e-9);
}

TEST(SolveLeastSquares, ExactWhenConsistent) {
  // Overdetermined but consistent: y = 2 + 3 t.
  Matrix a(4, 2);
  std::vector<double> b(4);
  for (int i = 0; i < 4; ++i) {
    a(static_cast<size_t>(i), 0) = 1.0;
    a(static_cast<size_t>(i), 1) = i;
    b[static_cast<size_t>(i)] = 2.0 + 3.0 * i;
  }
  const auto x = solveLeastSquares(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

TEST(SolveLeastSquares, MinimizesResidual) {
  // Inconsistent system: the LS line through (0,0), (1,1), (2,0) is
  // y = 1/3 + 0*t ... actually slope 0, intercept 1/3.
  Matrix a(3, 2);
  std::vector<double> b{0.0, 1.0, 0.0};
  for (int i = 0; i < 3; ++i) {
    a(static_cast<size_t>(i), 0) = 1.0;
    a(static_cast<size_t>(i), 1) = i;
  }
  const auto x = solveLeastSquares(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0 / 3.0, 1e-10);
  EXPECT_NEAR((*x)[1], 0.0, 1e-10);
}

TEST(SolveLeastSquares, RankDeficientReturnsEmpty) {
  Matrix a(3, 2);
  for (int i = 0; i < 3; ++i) {
    a(static_cast<size_t>(i), 0) = 1.0;
    a(static_cast<size_t>(i), 1) = 2.0;  // column 2 = 2 * column 1
  }
  EXPECT_FALSE(solveLeastSquares(a, {1.0, 2.0, 3.0}).has_value());
}

TEST(SolveLeastSquares, DimensionMismatchThrows) {
  Matrix a(3, 2);
  EXPECT_THROW(solveLeastSquares(a, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace tagspin::dsp
