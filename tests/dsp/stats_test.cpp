#include "dsp/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace tagspin::dsp {
namespace {

const std::vector<double> kSample{4.0, 1.0, 3.0, 2.0, 5.0};

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean(kSample), 3.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{7.5}), 7.5);
}

TEST(Stats, StdDev) {
  // Sample variance of 1..5 is 2.5.
  EXPECT_NEAR(stddev(kSample), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Stats, Rms) {
  EXPECT_NEAR(rms(std::vector<double>{3.0, 4.0}), std::sqrt(12.5), 1e-12);
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

TEST(Stats, MinMaxThrowOnEmpty) {
  EXPECT_DOUBLE_EQ(minOf(kSample), 1.0);
  EXPECT_DOUBLE_EQ(maxOf(kSample), 5.0);
  EXPECT_THROW(minOf({}), std::invalid_argument);
  EXPECT_THROW(maxOf({}), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile(kSample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(kSample, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(kSample, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(kSample, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(kSample, 12.5), 1.5);  // interpolated
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(Stats, PercentileClampsOutOfRange) {
  EXPECT_DOUBLE_EQ(percentile(kSample, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(kSample, 120.0), 5.0);
}

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(median(kSample), 3.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{1.0, 2.0}), 1.5);
}

TEST(Stats, Summary) {
  const Summary s = summarize(kSample);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p90, 4.6);

  const Summary empty = summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

TEST(Ecdf, StepFunction) {
  const Ecdf e = makeEcdf(kSample);
  EXPECT_DOUBLE_EQ(e.at(0.5), 0.0);   // below all samples
  EXPECT_DOUBLE_EQ(e.at(1.0), 0.2);
  EXPECT_DOUBLE_EQ(e.at(2.5), 0.4);
  EXPECT_DOUBLE_EQ(e.at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(e.at(100.0), 1.0);
}

TEST(Ecdf, Quantile) {
  const Ecdf e = makeEcdf(kSample);
  EXPECT_DOUBLE_EQ(e.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
  EXPECT_THROW(makeEcdf({}).quantile(0.5), std::logic_error);
}

TEST(Ecdf, MonotoneOverRandomData) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(std::sin(i * 0.7) * 10.0);
  const Ecdf e = makeEcdf(xs);
  for (size_t i = 1; i < e.values.size(); ++i) {
    EXPECT_LE(e.values[i - 1], e.values[i]);
    EXPECT_LT(e.probs[i - 1], e.probs[i]);
  }
  EXPECT_DOUBLE_EQ(e.probs.back(), 1.0);
}

}  // namespace
}  // namespace tagspin::dsp
