#include "dsp/peaks.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace tagspin::dsp {
namespace {

TEST(Argmax, Basic) {
  const std::vector<double> xs{1.0, 5.0, 3.0};
  EXPECT_EQ(argmax(xs), 1u);
  EXPECT_THROW(argmax({}), std::invalid_argument);
}

TEST(Argmax, FirstOfTies) {
  const std::vector<double> xs{2.0, 7.0, 7.0, 1.0};
  EXPECT_EQ(argmax(xs), 1u);
}

TEST(ParabolicOffset, ExactParabola) {
  // Samples of f(x) = -(x - 0.3)^2 at x = -1, 0, 1: the refined vertex
  // offset from the center sample is +0.3.
  auto f = [](double x) { return -(x - 0.3) * (x - 0.3); };
  EXPECT_NEAR(parabolicOffset(f(-1.0), f(0.0), f(1.0)), 0.3, 1e-12);
}

TEST(ParabolicOffset, FlatReturnsZeroAndClamps) {
  EXPECT_DOUBLE_EQ(parabolicOffset(1.0, 1.0, 1.0), 0.0);
  // A degenerate shoulder must clamp to +-0.5.
  EXPECT_LE(std::abs(parabolicOffset(0.0, 1.0, 1.0 - 1e-15)), 0.5);
}

TEST(FindPeaks, SinglePeakLinear) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(std::exp(-0.01 * (i - 40) * (i - 40)));
  }
  const auto peaks = findPeaks(xs, /*circular=*/false);
  ASSERT_GE(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 40u);
}

TEST(FindPeaks, CircularWrapAroundPeak) {
  // Peak centered at bin 0 of a circular array: detectable only when the
  // wrap is honoured.
  const size_t n = 72;
  std::vector<double> xs(n);
  for (size_t i = 0; i < n; ++i) {
    const double d = std::min<double>(i, n - i);  // circular distance to 0
    xs[i] = std::exp(-0.05 * d * d);
  }
  const auto circular = findPeaks(xs, true);
  ASSERT_GE(circular.size(), 1u);
  EXPECT_EQ(circular[0].index, 0u);
  // The non-circular version cannot report index 0 (it skips the borders).
  const auto linear = findPeaks(xs, false);
  for (const Peak& p : linear) EXPECT_NE(p.index, 0u);
}

TEST(FindPeaks, OrderedByValueAndSeparated) {
  std::vector<double> xs(100, 0.0);
  auto bump = [&](size_t center, double height) {
    for (int d = -3; d <= 3; ++d) {
      xs[center + static_cast<size_t>(d + 3) - 3] =
          std::max(xs[center + static_cast<size_t>(d + 3) - 3],
                   height * (1.0 - 0.2 * std::abs(d)));
    }
  };
  bump(20, 1.0);
  bump(50, 3.0);
  bump(80, 2.0);
  const auto peaks = findPeaks(xs, false, /*minSeparation=*/5);
  ASSERT_GE(peaks.size(), 3u);
  EXPECT_EQ(peaks[0].index, 50u);
  EXPECT_EQ(peaks[1].index, 80u);
  EXPECT_EQ(peaks[2].index, 20u);
}

TEST(FindPeaks, MinSeparationSuppressesNeighbors) {
  std::vector<double> xs(50, 0.0);
  xs[10] = 1.0;
  xs[12] = 0.9;  // close secondary peak
  xs[30] = 0.8;
  const auto loose = findPeaks(xs, false, 1);
  const auto strict = findPeaks(xs, false, 5);
  EXPECT_GE(loose.size(), 3u);
  ASSERT_EQ(strict.size(), 2u);
  EXPECT_EQ(strict[0].index, 10u);
  EXPECT_EQ(strict[1].index, 30u);
}

TEST(FindPeaks, MaxCountLimits) {
  std::vector<double> xs(100, 0.0);
  for (size_t i = 5; i < 100; i += 10) xs[i] = 1.0 + 0.01 * i;
  const auto peaks = findPeaks(xs, false, 1, 3);
  EXPECT_EQ(peaks.size(), 3u);
}

TEST(FindPeaks, TooShortInput) {
  EXPECT_TRUE(findPeaks(std::vector<double>{1.0, 2.0}, false).empty());
}

TEST(HalfPowerWidth, GaussianWidthScalesWithSigma) {
  auto width = [](double sigma) {
    std::vector<double> xs;
    for (int i = 0; i < 360; ++i) {
      const double d = i - 180.0;
      xs.push_back(std::exp(-d * d / (2.0 * sigma * sigma)));
    }
    return halfPowerWidth(xs, 180, false);
  };
  EXPECT_GT(width(20.0), width(5.0) * 3.0);
}

TEST(HalfPowerWidth, CircularWalksThroughTheWrap) {
  const size_t n = 72;
  std::vector<double> xs(n, 0.1);
  // Plateau straddling the wrap: bins 70, 71, 0, 1, 2.
  for (size_t i : {70u, 71u, 0u, 1u, 2u}) xs[i] = 1.0;
  EXPECT_DOUBLE_EQ(halfPowerWidth(xs, 0, true), 5.0);
}

TEST(HalfPowerWidth, EmptyThrows) {
  EXPECT_THROW(halfPowerWidth({}, 0, false), std::invalid_argument);
}

}  // namespace
}  // namespace tagspin::dsp
