#include "dsp/fourier.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>
#include <vector>

namespace tagspin::dsp {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

TEST(FourierSeries, Evaluate) {
  FourierSeries s;
  s.a0 = 1.0;
  s.a = {0.5, 0.0};
  s.b = {0.0, 0.25};
  // g(x) = 1 + 0.5 cos x + 0.25 sin 2x
  EXPECT_NEAR(s.evaluate(0.0), 1.5, 1e-12);
  EXPECT_NEAR(s.evaluate(std::numbers::pi / 4.0),
              1.0 + 0.5 * std::cos(std::numbers::pi / 4.0) + 0.25, 1e-12);
}

TEST(FourierSeries, ReferencedAt) {
  FourierSeries s;
  s.a0 = 2.0;
  s.a = {1.0};
  s.b = {0.5};
  const FourierSeries ref = s.referencedAt(0.7);
  EXPECT_NEAR(ref.evaluate(0.7), 0.0, 1e-12);
  // Shape preserved: differences unchanged.
  EXPECT_NEAR(ref.evaluate(1.3) - ref.evaluate(0.2),
              s.evaluate(1.3) - s.evaluate(0.2), 1e-12);
}

// Property sweep: fitting recovers synthesized coefficients for several
// orders and sample counts.
class FourierFitSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FourierFitSweep, RecoversSynthesizedSeries) {
  const auto [order, samples] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(order * 1000 + samples));
  std::uniform_real_distribution<double> coeff(-1.0, 1.0);

  FourierSeries truth;
  truth.a0 = coeff(rng);
  for (int k = 0; k < order; ++k) {
    truth.a.push_back(coeff(rng));
    truth.b.push_back(coeff(rng));
  }

  std::vector<double> x(static_cast<size_t>(samples));
  std::vector<double> y(static_cast<size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    x[static_cast<size_t>(i)] = kTwoPi * i / samples;
    y[static_cast<size_t>(i)] = truth.evaluate(x[static_cast<size_t>(i)]);
  }

  const FourierSeries fit =
      fitFourier(x, y, static_cast<size_t>(order));
  EXPECT_NEAR(fit.a0, truth.a0, 1e-9);
  for (int k = 0; k < order; ++k) {
    EXPECT_NEAR(fit.a[static_cast<size_t>(k)],
                truth.a[static_cast<size_t>(k)], 1e-9);
    EXPECT_NEAR(fit.b[static_cast<size_t>(k)],
                truth.b[static_cast<size_t>(k)], 1e-9);
  }
  EXPECT_NEAR(fitResidualRms(fit, x, y), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndSampleCounts, FourierFitSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 6),
                       ::testing::Values(32, 100, 500)));

TEST(FourierFit, ToleratesGaussianNoise) {
  FourierSeries truth;
  truth.a0 = 0.3;
  truth.a = {0.1, 0.5};
  truth.b = {0.05, 0.1};
  std::mt19937_64 rng(99);
  std::normal_distribution<double> noise(0.0, 0.1);
  std::vector<double> x, y;
  for (int i = 0; i < 1000; ++i) {
    x.push_back(kTwoPi * i / 1000.0);
    y.push_back(truth.evaluate(x.back()) + noise(rng));
  }
  const FourierSeries fit = fitFourier(x, y, 2);
  EXPECT_NEAR(fit.a0, truth.a0, 0.02);
  EXPECT_NEAR(fit.a[1], truth.a[1], 0.02);
  EXPECT_NEAR(fitResidualRms(fit, x, y), 0.1, 0.02);
}

TEST(FourierFit, IrregularSamplingStillWorks) {
  // Samples clustered in two arcs (as the orientation-dependent read rate
  // produces); least squares handles the non-uniform design.
  FourierSeries truth;
  truth.a0 = -0.2;
  truth.a = {0.4};
  truth.b = {-0.3};
  std::vector<double> x, y;
  for (int i = 0; i < 60; ++i) {
    x.push_back(0.8 + 0.02 * i);  // arc 1
    x.push_back(3.9 + 0.02 * i);  // arc 2
  }
  // A few spread samples to keep the design full rank.
  for (int i = 0; i < 12; ++i) x.push_back(kTwoPi * i / 12.0);
  for (double xi : x) y.push_back(truth.evaluate(xi));
  const FourierSeries fit = fitFourier(x, y, 1);
  EXPECT_NEAR(fit.a[0], truth.a[0], 1e-8);
  EXPECT_NEAR(fit.b[0], truth.b[0], 1e-8);
}

TEST(FourierFit, ErrorCases) {
  const std::vector<double> x{0.0, 1.0, 2.0};
  const std::vector<double> y{0.0, 1.0};
  EXPECT_THROW(fitFourier(x, y, 1), std::invalid_argument);  // size mismatch
  const std::vector<double> y3{0.0, 1.0, 2.0};
  EXPECT_THROW(fitFourier(x, y3, 2), std::invalid_argument);  // too few
  // Degenerate design: all x identical.
  const std::vector<double> xSame(10, 1.0);
  const std::vector<double> ySame(10, 0.5);
  EXPECT_THROW(fitFourier(xSame, ySame, 1), std::runtime_error);
}

TEST(FitResidualRms, MismatchThrows) {
  FourierSeries s;
  EXPECT_THROW(
      fitResidualRms(s, std::vector<double>{1.0}, std::vector<double>{}),
      std::invalid_argument);
  EXPECT_DOUBLE_EQ(fitResidualRms(s, {}, {}), 0.0);
}

}  // namespace
}  // namespace tagspin::dsp
