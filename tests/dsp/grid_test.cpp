#include "dsp/grid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geom/angles.hpp"

namespace tagspin::dsp {
namespace {

using geom::circularDistance;
using geom::kTwoPi;

TEST(SampleCircular, CountAndSpacing) {
  const auto samples = sampleCircular([](double x) { return x; }, 8);
  ASSERT_EQ(samples.size(), 8u);
  EXPECT_DOUBLE_EQ(samples[0], 0.0);
  EXPECT_NEAR(samples[1], kTwoPi / 8.0, 1e-12);
  EXPECT_NEAR(samples[7], 7.0 * kTwoPi / 8.0, 1e-12);
}

// Sweep of peak locations: the circular maximizer must find them all,
// including peaks near the 0/2*pi seam.
class CircularMaxSweep : public ::testing::TestWithParam<double> {};

TEST_P(CircularMaxSweep, FindsVonMisesPeak) {
  const double center = GetParam();
  auto f = [&](double x) { return std::exp(4.0 * std::cos(x - center)); };
  const GridMax1D best = maximizeCircular(f, 360, 8);
  EXPECT_LT(circularDistance(best.x, center), 1e-3);
  EXPECT_NEAR(best.value, std::exp(4.0), std::exp(4.0) * 1e-5);
}

TEST_P(CircularMaxSweep, CoarseFineAgrees) {
  const double center = GetParam();
  auto f = [&](double x) { return std::exp(4.0 * std::cos(x - center)); };
  const GridMax1D exhaustive = maximizeCircular(f, 720, 8);
  const GridMax1D cf = maximizeCircularCoarseFine(f, 90, 64, 8);
  EXPECT_LT(circularDistance(cf.x, exhaustive.x), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(PeakPositions, CircularMaxSweep,
                         ::testing::Values(0.0, 0.01, 1.0, 2.2,
                                           std::numbers::pi, 4.4, 6.0,
                                           kTwoPi - 0.01));

TEST(MaximizeCircular, ResultInRange) {
  auto f = [](double x) { return std::cos(x - 6.1); };
  const GridMax1D best = maximizeCircular(f, 100, 6);
  EXPECT_GE(best.x, 0.0);
  EXPECT_LT(best.x, kTwoPi);
}

TEST(MaximizeRect, FindsTwoDGaussian) {
  const double cx = 2.5, cy = 0.4;
  auto f = [&](double x, double y) {
    const double dx = geom::wrapToPi(x - cx);
    const double dy = y - cy;
    return std::exp(-(dx * dx + dy * dy) * 8.0);
  };
  const GridMax2D best = maximizeRect(f, -1.0, 1.0, 180, 41, 8);
  EXPECT_LT(circularDistance(best.x, cx), 1e-3);
  EXPECT_NEAR(best.y, cy, 1e-3);
  EXPECT_NEAR(best.value, 1.0, 1e-5);
}

TEST(MaximizeRect, RespectsYBounds) {
  // The unconstrained maximum sits at y = 2, outside [ -1, 1 ]; the search
  // must return the best feasible point (y = 1).
  auto f = [](double, double y) { return -(y - 2.0) * (y - 2.0); };
  const GridMax2D best = maximizeRect(f, -1.0, 1.0, 16, 21, 8);
  EXPECT_NEAR(best.y, 1.0, 1e-9);
}

TEST(MaximizeRect, SingleRowGrid) {
  auto f = [](double x, double) { return std::cos(x - 1.0); };
  const GridMax2D best = maximizeRect(f, 0.0, 0.0, 360, 1, 6);
  EXPECT_LT(circularDistance(best.x, 1.0), 1e-3);
  EXPECT_DOUBLE_EQ(best.y, 0.0);
}

TEST(MaximizeCircularCoarseFine, SharpPeakNeedsAdequateCoarseGrid) {
  // A very sharp peak: the two-stage search still finds it when the coarse
  // grid is at least as fine as the peak width.
  const double center = 3.0;
  auto f = [&](double x) { return std::exp(40.0 * (std::cos(x - center) - 1.0)); };
  const GridMax1D best = maximizeCircularCoarseFine(f, 180, 64, 8);
  EXPECT_LT(circularDistance(best.x, center), 1e-3);
}

}  // namespace
}  // namespace tagspin::dsp
