#include "geom/angles.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tagspin::geom {
namespace {

TEST(WrapTwoPi, BasicValues) {
  EXPECT_DOUBLE_EQ(wrapTwoPi(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wrapTwoPi(kTwoPi), 0.0);
  EXPECT_DOUBLE_EQ(wrapTwoPi(-0.1), kTwoPi - 0.1);
  EXPECT_NEAR(wrapTwoPi(5.0 * kTwoPi + 1.0), 1.0, 1e-12);
  EXPECT_NEAR(wrapTwoPi(-7.0 * kTwoPi - 1.0), kTwoPi - 1.0, 1e-12);
}

TEST(WrapToPi, BasicValues) {
  EXPECT_DOUBLE_EQ(wrapToPi(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wrapToPi(kPi), kPi);         // pi maps to +pi, not -pi
  EXPECT_NEAR(wrapToPi(kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrapToPi(-kPi - 0.1), kPi - 0.1, 1e-12);
}

// Property sweep: wrapping is idempotent, range-correct, and preserves the
// angle modulo 2*pi.
class WrapSweep : public ::testing::TestWithParam<double> {};

TEST_P(WrapSweep, TwoPiRangeAndIdempotence) {
  const double a = GetParam();
  const double w = wrapTwoPi(a);
  EXPECT_GE(w, 0.0);
  EXPECT_LT(w, kTwoPi);
  EXPECT_NEAR(wrapTwoPi(w), w, 1e-12);
  EXPECT_NEAR(std::remainder(a - w, kTwoPi), 0.0, 1e-9);
}

TEST_P(WrapSweep, ToPiRangeAndIdempotence) {
  const double a = GetParam();
  const double w = wrapToPi(a);
  EXPECT_GT(w, -kPi - 1e-12);
  EXPECT_LE(w, kPi);
  EXPECT_NEAR(wrapToPi(w), w, 1e-12);
  EXPECT_NEAR(std::remainder(a - w, kTwoPi), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ManyAngles, WrapSweep,
                         ::testing::Values(-100.0, -7.5, -kTwoPi, -kPi, -1.0,
                                           -1e-9, 0.0, 1e-9, 0.5, kPi,
                                           kPi + 1e-9, kTwoPi, 6.5, 42.0,
                                           1234.5678));

TEST(CircularDiff, SignedSmallestRotation) {
  EXPECT_NEAR(circularDiff(0.1, 0.0), 0.1, 1e-12);
  EXPECT_NEAR(circularDiff(0.0, 0.1), -0.1, 1e-12);
  // Across the wrap boundary.
  EXPECT_NEAR(circularDiff(0.1, kTwoPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(circularDiff(kTwoPi - 0.1, 0.1), -0.2, 1e-12);
}

TEST(CircularDistance, SymmetricAndBounded) {
  for (double a = 0.0; a < kTwoPi; a += 0.3) {
    for (double b = 0.0; b < kTwoPi; b += 0.7) {
      const double d = circularDistance(a, b);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, kPi + 1e-12);
      EXPECT_NEAR(d, circularDistance(b, a), 1e-12);
    }
  }
}

TEST(CircularMean, SimpleCases) {
  const std::vector<double> same{1.0, 1.0, 1.0};
  EXPECT_NEAR(circularMean(same), 1.0, 1e-12);

  // Straddling the wrap: mean of 350 and 10 degrees is 0, not 180.
  const std::vector<double> wrap{degToRad(350.0), degToRad(10.0)};
  EXPECT_NEAR(wrapToPi(circularMean(wrap)), 0.0, 1e-12);

  EXPECT_DOUBLE_EQ(circularMean({}), 0.0);
}

TEST(CircularResultantLength, Concentration) {
  const std::vector<double> tight{0.0, 0.01, -0.01};
  EXPECT_GT(circularResultantLength(tight), 0.99);
  const std::vector<double> spread{0.0, kPi / 2.0, kPi, 3.0 * kPi / 2.0};
  EXPECT_NEAR(circularResultantLength(spread), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(circularResultantLength({}), 0.0);
}

TEST(DegRad, RoundTrip) {
  EXPECT_DOUBLE_EQ(degToRad(180.0), kPi);
  EXPECT_DOUBLE_EQ(radToDeg(kPi / 2.0), 90.0);
  for (double d = -720.0; d <= 720.0; d += 45.0) {
    EXPECT_NEAR(radToDeg(degToRad(d)), d, 1e-10);
  }
}

TEST(UnwrapPhases, RemovesWrapJumps) {
  // A linear ramp wrapped to [0, 2*pi) unwraps back to a ramp.
  std::vector<double> wrapped;
  for (int i = 0; i < 100; ++i) {
    wrapped.push_back(wrapTwoPi(0.2 * i));
  }
  const auto unwrapped = unwrapPhases(wrapped);
  for (size_t i = 1; i < unwrapped.size(); ++i) {
    EXPECT_NEAR(unwrapped[i] - unwrapped[i - 1], 0.2, 1e-12);
  }
}

TEST(UnwrapPhases, StartsAtFirstSample) {
  const std::vector<double> wrapped{5.0, 5.5, 6.0};
  const auto unwrapped = unwrapPhases(wrapped);
  EXPECT_DOUBLE_EQ(unwrapped[0], 5.0);
}

TEST(UnwrapPhases, DescendingRamp) {
  std::vector<double> wrapped;
  for (int i = 0; i < 100; ++i) {
    wrapped.push_back(wrapTwoPi(-0.3 * i));
  }
  const auto unwrapped = unwrapPhases(wrapped);
  for (size_t i = 1; i < unwrapped.size(); ++i) {
    EXPECT_NEAR(unwrapped[i] - unwrapped[i - 1], -0.3, 1e-12);
  }
}

TEST(SmoothPhasesPaperRule, MatchesPaperExample) {
  // The section III-B rule: shift by -+2*pi on jumps exceeding +-pi.
  const std::vector<double> seq{6.0, 0.2, 0.5, 6.2, 5.9};
  const auto smoothed = smoothPhasesPaperRule(seq);
  // 6.0 -> 0.2 jumps by -5.8 < -pi: shift up by 2*pi.
  EXPECT_NEAR(smoothed[1], 0.2 + kTwoPi, 1e-12);
  EXPECT_NEAR(smoothed[2], 0.5 + kTwoPi, 1e-12);
  // 0.5+2pi -> 6.2: small step once aligned, stays.
  EXPECT_NEAR(smoothed[3], 6.2, 1e-12);
  EXPECT_NEAR(smoothed[4], 5.9, 1e-12);
}

TEST(SmoothPhasesPaperRule, EmptyAndSingle) {
  EXPECT_TRUE(smoothPhasesPaperRule({}).empty());
  const std::vector<double> one{1.5};
  EXPECT_EQ(smoothPhasesPaperRule(one), one);
}

}  // namespace
}  // namespace tagspin::geom
