#include "geom/vec.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/angles.hpp"

namespace tagspin::geom {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, (Vec2{3.0, 4.0}));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, (Vec2{2.0, 3.0}));
  v *= 2.0;
  EXPECT_EQ(v, (Vec2{4.0, 6.0}));
}

TEST(Vec2, DotAndCross) {
  const Vec2 x{1.0, 0.0};
  const Vec2 y{0.0, 1.0};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_DOUBLE_EQ(x.cross(y), 1.0);   // y is CCW of x
  EXPECT_DOUBLE_EQ(y.cross(x), -1.0);
  EXPECT_DOUBLE_EQ(x.dot(x), 1.0);
}

TEST(Vec2, NormAndNormalized) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  const Vec2 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-15);
  EXPECT_NEAR(u.x, 0.6, 1e-15);
  // The zero vector stays zero instead of dividing by zero.
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, Angle) {
  EXPECT_DOUBLE_EQ((Vec2{1.0, 0.0}).angle(), 0.0);
  EXPECT_DOUBLE_EQ((Vec2{0.0, 1.0}).angle(), kPi / 2.0);
  EXPECT_DOUBLE_EQ((Vec2{-1.0, 0.0}).angle(), kPi);
}

TEST(Vec2, UnitFromAngleRoundTrip) {
  for (double a = -3.0; a <= 3.0; a += 0.37) {
    const Vec2 u = unitFromAngle(a);
    EXPECT_NEAR(u.norm(), 1.0, 1e-15);
    EXPECT_NEAR(wrapToPi(u.angle() - a), 0.0, 1e-12);
  }
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-1.0, 0.5, 2.0};
  EXPECT_EQ(a + b, (Vec3{0.0, 2.5, 5.0}));
  EXPECT_EQ(a - b, (Vec3{2.0, 1.5, 1.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1.0, 1.5}));
}

TEST(Vec3, CrossFollowsRightHandRule) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_EQ(x.cross(y), (Vec3{0.0, 0.0, 1.0}));
  EXPECT_EQ(y.cross(x), (Vec3{0.0, 0.0, -1.0}));
}

TEST(Vec3, XyProjection) {
  const Vec3 v{1.5, -2.5, 7.0};
  EXPECT_EQ(v.xy(), (Vec2{1.5, -2.5}));
}

TEST(Vec3, ConstructFromVec2) {
  const Vec3 v{Vec2{1.0, 2.0}, 3.0};
  EXPECT_EQ(v, (Vec3{1.0, 2.0, 3.0}));
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance(Vec3{0, 0, 0}, Vec3{1, 2, 2}), 3.0);
  EXPECT_DOUBLE_EQ(distance(Vec2{0, 0}, Vec2{3, 4}), 5.0);
}

TEST(Geometry, AzimuthOf) {
  const Vec3 origin{1.0, 1.0, 0.5};
  EXPECT_NEAR(azimuthOf(origin, {2.0, 1.0, 3.0}), 0.0, 1e-12);
  EXPECT_NEAR(azimuthOf(origin, {1.0, 2.0, -1.0}), kPi / 2.0, 1e-12);
  EXPECT_NEAR(azimuthOf(origin, {0.0, 0.0, 0.0}), -3.0 * kPi / 4.0, 1e-12);
}

TEST(Geometry, PolarOf) {
  const Vec3 origin{};
  // 45 degrees up.
  EXPECT_NEAR(polarOf(origin, {1.0, 0.0, 1.0}), kPi / 4.0, 1e-12);
  // In-plane.
  EXPECT_NEAR(polarOf(origin, {1.0, 1.0, 0.0}), 0.0, 1e-12);
  // Straight down.
  EXPECT_NEAR(polarOf(origin, {0.0, 0.0, -2.0}), -kPi / 2.0, 1e-12);
}

TEST(Geometry, PolarMatchesTangentGeometry) {
  // polar = atan(z / horizontal) -- the gamma of paper Eqn. 13.
  const Vec3 rig{0.2, 0.0, 0.0};
  const Vec3 reader{0.8, 1.5, 0.9};
  const double horiz = (reader.xy() - rig.xy()).norm();
  EXPECT_NEAR(std::tan(polarOf(rig, reader)) * horiz, reader.z - rig.z,
              1e-12);
}

}  // namespace
}  // namespace tagspin::geom
