#include "geom/ray.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geom/angles.hpp"

namespace tagspin::geom {
namespace {

TEST(Ray2, DirectionAndPointAt) {
  const Ray2 r{{1.0, 2.0}, kPi / 2.0};
  EXPECT_NEAR(r.direction().x, 0.0, 1e-15);
  EXPECT_NEAR(r.direction().y, 1.0, 1e-15);
  const Vec2 p = r.pointAt(3.0);
  EXPECT_NEAR(p.x, 1.0, 1e-12);
  EXPECT_NEAR(p.y, 5.0, 1e-12);
}

TEST(Ray2, SignedDistanceSign) {
  const Ray2 r{{0.0, 0.0}, 0.0};  // along +x
  EXPECT_GT(r.signedDistance({1.0, 1.0}), 0.0);   // left of the ray
  EXPECT_LT(r.signedDistance({1.0, -1.0}), 0.0);  // right of the ray
  EXPECT_NEAR(r.signedDistance({5.0, 0.0}), 0.0, 1e-15);
}

TEST(Ray2, Project) {
  const Ray2 r{{1.0, 0.0}, 0.0};
  EXPECT_DOUBLE_EQ(r.project({4.0, 7.0}), 3.0);
  EXPECT_DOUBLE_EQ(r.project({0.0, 1.0}), -1.0);  // behind the origin
}

TEST(IntersectRays, PerpendicularCase) {
  const Ray2 a{{0.0, 0.0}, 0.0};          // +x
  const Ray2 b{{2.0, -1.0}, kPi / 2.0};   // +y from (2,-1)
  const auto hit = intersectRays(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->point.x, 2.0, 1e-12);
  EXPECT_NEAR(hit->point.y, 0.0, 1e-12);
  EXPECT_NEAR(hit->t1, 2.0, 1e-12);
  EXPECT_NEAR(hit->t2, 1.0, 1e-12);
}

TEST(IntersectRays, ParallelReturnsEmpty) {
  const Ray2 a{{0.0, 0.0}, 0.3};
  const Ray2 b{{0.0, 1.0}, 0.3};
  EXPECT_FALSE(intersectRays(a, b).has_value());
  const Ray2 c{{0.0, 1.0}, 0.3 + kPi};  // anti-parallel
  EXPECT_FALSE(intersectRays(a, c).has_value());
}

TEST(IntersectRays, NegativeParameterWhenBehind) {
  const Ray2 a{{0.0, 0.0}, 0.0};
  const Ray2 b{{-2.0, -1.0}, kPi / 2.0};
  const auto hit = intersectRays(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_LT(hit->t1, 0.0);  // intersection behind ray a's origin
}

// Property sweep: build rays from two rig centers toward a known target;
// the robust intersection and the paper's Eqn. 9 must both recover it.
struct TargetCase {
  double x, y;
};

class IntersectionSweep : public ::testing::TestWithParam<TargetCase> {};

TEST_P(IntersectionSweep, RobustFormRecoversTarget) {
  const Vec2 o1{-0.2, 0.0};
  const Vec2 o2{0.2, 0.0};
  const Vec2 target{GetParam().x, GetParam().y};
  const Ray2 r1{o1, (target - o1).angle()};
  const Ray2 r2{o2, (target - o2).angle()};
  const auto hit = intersectRays(r1, r2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->point.x, target.x, 1e-9);
  EXPECT_NEAR(hit->point.y, target.y, 1e-9);
}

TEST_P(IntersectionSweep, Eqn9MatchesRobustForm) {
  const Vec2 o1{-0.2, 0.0};
  const Vec2 o2{0.2, 0.0};
  const Vec2 target{GetParam().x, GetParam().y};
  const double phi1 = (target - o1).angle();
  const double phi2 = (target - o2).angle();
  const auto closed = intersectEqn9(o1, phi1, o2, phi2);
  // Eqn. 9 fails only at tan() poles; none of the sweep points sit there.
  ASSERT_TRUE(closed.has_value());
  EXPECT_NEAR(closed->x, target.x, 1e-8);
  EXPECT_NEAR(closed->y, target.y, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    TargetsAcrossThePlane, IntersectionSweep,
    ::testing::Values(TargetCase{1.0, 2.0}, TargetCase{-1.3, 1.7},
                      TargetCase{0.5, 0.4}, TargetCase{2.5, 3.0},
                      TargetCase{-2.0, 0.8}, TargetCase{0.7, -1.5},
                      TargetCase{-0.9, -2.2}, TargetCase{1.9, 0.3}));

TEST(IntersectEqn9, FailsAtTanPole) {
  // phi1 = pi/2 exactly: tan() pole; the closed form must refuse.
  EXPECT_FALSE(
      intersectEqn9({-0.2, 0.0}, kPi / 2.0, {0.2, 0.0}, 1.0).has_value());
}

TEST(IntersectEqn9, FailsOnParallel) {
  EXPECT_FALSE(intersectEqn9({-0.2, 0.0}, 0.7, {0.2, 0.0}, 0.7).has_value());
}

// Regression: the tan()-based closed form has a blind zone at +-(pi/2 - eps)
// -- a reader straight ahead of a rig, a perfectly ordinary geometry --
// where the robust cross-product form stays exact.  This is why the locator
// never calls intersectEqn9 (see Locator::intersectBearings).
TEST(IntersectEqn9, BlindNearTanPoleWhereRobustFormIsExact) {
  const Vec2 o1{-0.2, 0.0};
  const Vec2 o2{0.2, 0.0};
  for (const double pole : {kPi / 2.0, -kPi / 2.0}) {
    for (const double eps : {0.0, 1e-10, 1e-12}) {
      const double phi1 = pole - (pole > 0 ? eps : -eps);
      const Vec2 target = o1 + unitFromAngle(phi1) * 2.0;
      const double phi2 = (target - o2).angle();
      EXPECT_FALSE(intersectEqn9(o1, phi1, o2, phi2).has_value())
          << "pole=" << pole << " eps=" << eps;
      const auto hit = intersectRays(Ray2{o1, phi1}, Ray2{o2, phi2});
      ASSERT_TRUE(hit.has_value()) << "pole=" << pole << " eps=" << eps;
      EXPECT_LT(distance(hit->point, target), 1e-9);
    }
  }
}

TEST(LeastSquaresIntersection, ExactForConsistentRays) {
  const Vec2 target{0.8, 1.9};
  std::vector<Ray2> rays;
  for (const Vec2 o : {Vec2{-0.5, 0.0}, Vec2{0.5, 0.0}, Vec2{0.0, 0.6}}) {
    rays.push_back({o, (target - o).angle()});
  }
  const auto fix = leastSquaresIntersection(rays);
  ASSERT_TRUE(fix.has_value());
  EXPECT_NEAR(fix->x, target.x, 1e-9);
  EXPECT_NEAR(fix->y, target.y, 1e-9);
  EXPECT_NEAR(rmsResidual(rays, *fix), 0.0, 1e-9);
}

TEST(LeastSquaresIntersection, MinimizesPerpendicularError) {
  // Perturb one ray: the LS point must beat the unperturbed target on
  // summed squared distance to the perturbed set.
  const Vec2 target{0.8, 1.9};
  std::vector<Ray2> rays;
  for (const Vec2 o : {Vec2{-0.5, 0.0}, Vec2{0.5, 0.0}, Vec2{0.0, 0.6}}) {
    rays.push_back({o, (target - o).angle()});
  }
  rays[0].angle += 0.05;
  const auto fix = leastSquaresIntersection(rays);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LE(rmsResidual(rays, *fix), rmsResidual(rays, target) + 1e-12);
}

TEST(LeastSquaresIntersection, RejectsDegenerate) {
  const std::vector<Ray2> parallel{{{0.0, 0.0}, 0.4}, {{1.0, 0.0}, 0.4}};
  EXPECT_FALSE(leastSquaresIntersection(parallel).has_value());
  const std::vector<Ray2> single{{{0.0, 0.0}, 0.4}};
  EXPECT_FALSE(leastSquaresIntersection(single).has_value());
}

TEST(RmsResidual, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(rmsResidual({}, {1.0, 1.0}), 0.0);
}

TEST(LeastSquaresIntersectionDetailed, SurfacesBehindOriginRays) {
  // Flip one bearing by pi: the supporting line (and thus the LS point) is
  // unchanged, but the fix now sits BEHIND that ray's origin -- the
  // physically-impossible geometry the detailed overload must report.
  const Vec2 target{0.8, 1.9};
  std::vector<Ray2> rays;
  for (const Vec2 o : {Vec2{-0.5, 0.0}, Vec2{0.5, 0.0}, Vec2{0.0, 0.6}}) {
    rays.push_back({o, (target - o).angle()});
  }
  const auto clean = leastSquaresIntersectionDetailed(rays);
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(clean->behindOrigin, 0u);
  for (double t : clean->rayT) EXPECT_GT(t, 0.0);

  rays[1].angle = wrapTwoPi(rays[1].angle + kPi);
  const auto flipped = leastSquaresIntersectionDetailed(rays);
  ASSERT_TRUE(flipped.has_value());
  EXPECT_NEAR(distance(flipped->point, clean->point), 0.0, 1e-9);
  EXPECT_EQ(flipped->behindOrigin, 1u);
  EXPECT_LT(flipped->rayT[1], 0.0);
  EXPECT_GT(flipped->rayT[0], 0.0);
}

TEST(LeastSquaresIntersectionDetailed, ZeroWeightDropsRayFromSolve) {
  const Vec2 target{0.8, 1.9};
  std::vector<Ray2> rays;
  for (const Vec2 o : {Vec2{-0.5, 0.0}, Vec2{0.5, 0.0}, Vec2{0.0, 0.6}}) {
    rays.push_back({o, (target - o).angle()});
  }
  rays[2].angle += 0.3;  // corrupt one bearing badly
  const std::vector<double> weights{1.0, 1.0, 0.0};
  const auto fix = leastSquaresIntersectionDetailed(rays, weights);
  ASSERT_TRUE(fix.has_value());
  // The corrupted ray carried no weight: the solve is the 2-ray exact
  // intersection, but its t is still reported.
  EXPECT_LT(distance(fix->point, target), 1e-9);
  EXPECT_EQ(fix->rayT.size(), 3u);
}

TEST(LeastSquaresIntersectionDetailed, NearParallelBundleIsEmptyNotExploded) {
  // Rays sharing one angle from a row of origins: the normal matrix is
  // singular; the detailed solve must return empty, never a huge point.
  std::vector<Ray2> bundle;
  for (double x : {-0.6, -0.2, 0.2, 0.6}) {
    bundle.push_back({{x, 0.0}, 1.2});
  }
  EXPECT_FALSE(leastSquaresIntersectionDetailed(bundle).has_value());
  // All-zero weights are just as degenerate.
  std::vector<Ray2> rays{{{-0.5, 0.0}, 1.0}, {{0.5, 0.0}, 2.0}};
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_FALSE(leastSquaresIntersectionDetailed(rays, zeros).has_value());
}

TEST(LeastSquaresIntersection, RigidTransformEquivariance) {
  // Rotating + translating every ray must move the LS point by exactly the
  // same rigid transform (perpendicular distances are invariants).
  std::vector<Ray2> rays{{{-0.5, 0.0}, 1.25}, {{0.5, 0.1}, 1.85},
                         {{0.1, 0.6}, 1.05}};
  const auto base = leastSquaresIntersection(rays);
  ASSERT_TRUE(base.has_value());
  for (const double beta : {0.7, -1.4, 2.9}) {
    const Vec2 shift{-2.1, 0.9};
    const double c = std::cos(beta), s = std::sin(beta);
    std::vector<Ray2> moved;
    for (const Ray2& r : rays) {
      moved.push_back({Vec2{c * r.origin.x - s * r.origin.y,
                            s * r.origin.x + c * r.origin.y} +
                           shift,
                       r.angle + beta});
    }
    const auto fix = leastSquaresIntersection(moved);
    ASSERT_TRUE(fix.has_value()) << "beta=" << beta;
    const Vec2 expected =
        Vec2{c * base->x - s * base->y, s * base->x + c * base->y} + shift;
    EXPECT_LT(distance(*fix, expected), 1e-9) << "beta=" << beta;
  }
}

}  // namespace
}  // namespace tagspin::geom
