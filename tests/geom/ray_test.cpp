#include "geom/ray.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geom/angles.hpp"

namespace tagspin::geom {
namespace {

TEST(Ray2, DirectionAndPointAt) {
  const Ray2 r{{1.0, 2.0}, kPi / 2.0};
  EXPECT_NEAR(r.direction().x, 0.0, 1e-15);
  EXPECT_NEAR(r.direction().y, 1.0, 1e-15);
  const Vec2 p = r.pointAt(3.0);
  EXPECT_NEAR(p.x, 1.0, 1e-12);
  EXPECT_NEAR(p.y, 5.0, 1e-12);
}

TEST(Ray2, SignedDistanceSign) {
  const Ray2 r{{0.0, 0.0}, 0.0};  // along +x
  EXPECT_GT(r.signedDistance({1.0, 1.0}), 0.0);   // left of the ray
  EXPECT_LT(r.signedDistance({1.0, -1.0}), 0.0);  // right of the ray
  EXPECT_NEAR(r.signedDistance({5.0, 0.0}), 0.0, 1e-15);
}

TEST(Ray2, Project) {
  const Ray2 r{{1.0, 0.0}, 0.0};
  EXPECT_DOUBLE_EQ(r.project({4.0, 7.0}), 3.0);
  EXPECT_DOUBLE_EQ(r.project({0.0, 1.0}), -1.0);  // behind the origin
}

TEST(IntersectRays, PerpendicularCase) {
  const Ray2 a{{0.0, 0.0}, 0.0};          // +x
  const Ray2 b{{2.0, -1.0}, kPi / 2.0};   // +y from (2,-1)
  const auto hit = intersectRays(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->point.x, 2.0, 1e-12);
  EXPECT_NEAR(hit->point.y, 0.0, 1e-12);
  EXPECT_NEAR(hit->t1, 2.0, 1e-12);
  EXPECT_NEAR(hit->t2, 1.0, 1e-12);
}

TEST(IntersectRays, ParallelReturnsEmpty) {
  const Ray2 a{{0.0, 0.0}, 0.3};
  const Ray2 b{{0.0, 1.0}, 0.3};
  EXPECT_FALSE(intersectRays(a, b).has_value());
  const Ray2 c{{0.0, 1.0}, 0.3 + kPi};  // anti-parallel
  EXPECT_FALSE(intersectRays(a, c).has_value());
}

TEST(IntersectRays, NegativeParameterWhenBehind) {
  const Ray2 a{{0.0, 0.0}, 0.0};
  const Ray2 b{{-2.0, -1.0}, kPi / 2.0};
  const auto hit = intersectRays(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_LT(hit->t1, 0.0);  // intersection behind ray a's origin
}

// Property sweep: build rays from two rig centers toward a known target;
// the robust intersection and the paper's Eqn. 9 must both recover it.
struct TargetCase {
  double x, y;
};

class IntersectionSweep : public ::testing::TestWithParam<TargetCase> {};

TEST_P(IntersectionSweep, RobustFormRecoversTarget) {
  const Vec2 o1{-0.2, 0.0};
  const Vec2 o2{0.2, 0.0};
  const Vec2 target{GetParam().x, GetParam().y};
  const Ray2 r1{o1, (target - o1).angle()};
  const Ray2 r2{o2, (target - o2).angle()};
  const auto hit = intersectRays(r1, r2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->point.x, target.x, 1e-9);
  EXPECT_NEAR(hit->point.y, target.y, 1e-9);
}

TEST_P(IntersectionSweep, Eqn9MatchesRobustForm) {
  const Vec2 o1{-0.2, 0.0};
  const Vec2 o2{0.2, 0.0};
  const Vec2 target{GetParam().x, GetParam().y};
  const double phi1 = (target - o1).angle();
  const double phi2 = (target - o2).angle();
  const auto closed = intersectEqn9(o1, phi1, o2, phi2);
  // Eqn. 9 fails only at tan() poles; none of the sweep points sit there.
  ASSERT_TRUE(closed.has_value());
  EXPECT_NEAR(closed->x, target.x, 1e-8);
  EXPECT_NEAR(closed->y, target.y, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    TargetsAcrossThePlane, IntersectionSweep,
    ::testing::Values(TargetCase{1.0, 2.0}, TargetCase{-1.3, 1.7},
                      TargetCase{0.5, 0.4}, TargetCase{2.5, 3.0},
                      TargetCase{-2.0, 0.8}, TargetCase{0.7, -1.5},
                      TargetCase{-0.9, -2.2}, TargetCase{1.9, 0.3}));

TEST(IntersectEqn9, FailsAtTanPole) {
  // phi1 = pi/2 exactly: tan() pole; the closed form must refuse.
  EXPECT_FALSE(
      intersectEqn9({-0.2, 0.0}, kPi / 2.0, {0.2, 0.0}, 1.0).has_value());
}

TEST(IntersectEqn9, FailsOnParallel) {
  EXPECT_FALSE(intersectEqn9({-0.2, 0.0}, 0.7, {0.2, 0.0}, 0.7).has_value());
}

TEST(LeastSquaresIntersection, ExactForConsistentRays) {
  const Vec2 target{0.8, 1.9};
  std::vector<Ray2> rays;
  for (const Vec2 o : {Vec2{-0.5, 0.0}, Vec2{0.5, 0.0}, Vec2{0.0, 0.6}}) {
    rays.push_back({o, (target - o).angle()});
  }
  const auto fix = leastSquaresIntersection(rays);
  ASSERT_TRUE(fix.has_value());
  EXPECT_NEAR(fix->x, target.x, 1e-9);
  EXPECT_NEAR(fix->y, target.y, 1e-9);
  EXPECT_NEAR(rmsResidual(rays, *fix), 0.0, 1e-9);
}

TEST(LeastSquaresIntersection, MinimizesPerpendicularError) {
  // Perturb one ray: the LS point must beat the unperturbed target on
  // summed squared distance to the perturbed set.
  const Vec2 target{0.8, 1.9};
  std::vector<Ray2> rays;
  for (const Vec2 o : {Vec2{-0.5, 0.0}, Vec2{0.5, 0.0}, Vec2{0.0, 0.6}}) {
    rays.push_back({o, (target - o).angle()});
  }
  rays[0].angle += 0.05;
  const auto fix = leastSquaresIntersection(rays);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LE(rmsResidual(rays, *fix), rmsResidual(rays, target) + 1e-12);
}

TEST(LeastSquaresIntersection, RejectsDegenerate) {
  const std::vector<Ray2> parallel{{{0.0, 0.0}, 0.4}, {{1.0, 0.0}, 0.4}};
  EXPECT_FALSE(leastSquaresIntersection(parallel).has_value());
  const std::vector<Ray2> single{{{0.0, 0.0}, 0.4}};
  EXPECT_FALSE(leastSquaresIntersection(single).has_value());
}

TEST(RmsResidual, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(rmsResidual({}, {1.0, 1.0}), 0.0);
}

}  // namespace
}  // namespace tagspin::geom
