#include "rf/antenna.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "geom/angles.hpp"

namespace tagspin::rf {
namespace {

TEST(IsotropicPattern, UnityEverywhere) {
  const IsotropicPattern p;
  for (double a = -6.0; a <= 6.0; a += 0.5) {
    EXPECT_DOUBLE_EQ(p.gain(a), 1.0);
  }
}

TEST(PatchPattern, PeakAtBoresight) {
  const PatchPattern p(3.0, 0.05);
  EXPECT_DOUBLE_EQ(p.gain(0.0), 1.0);
  EXPECT_GT(p.gain(0.0), p.gain(0.5));
  EXPECT_GT(p.gain(0.5), p.gain(1.0));
}

TEST(PatchPattern, BackLobeFloor) {
  const PatchPattern p(3.0, 0.05);
  EXPECT_DOUBLE_EQ(p.gain(geom::kPi), 0.05);
  EXPECT_DOUBLE_EQ(p.gain(geom::kPi / 2.0 + 0.3), 0.05);
}

TEST(PatchPattern, SymmetricAndPeriodic) {
  const PatchPattern p;
  for (double a = 0.0; a < geom::kPi; a += 0.2) {
    EXPECT_NEAR(p.gain(a), p.gain(-a), 1e-12);
    EXPECT_NEAR(p.gain(a), p.gain(a + geom::kTwoPi), 1e-9);
  }
}

TEST(PatchPattern, HigherExponentNarrower) {
  const PatchPattern wide(2.0, 0.0);
  const PatchPattern narrow(6.0, 0.0);
  EXPECT_GT(wide.gain(0.8), narrow.gain(0.8));
}

TEST(PatchPattern, Validation) {
  EXPECT_THROW(PatchPattern(0.0, 0.05), std::invalid_argument);
  EXPECT_THROW(PatchPattern(2.0, -0.1), std::invalid_argument);
  EXPECT_THROW(PatchPattern(2.0, 1.5), std::invalid_argument);
}

TEST(TagOrientationGain, MaxPerpendicularMinEdgeOn) {
  const TagOrientationGain g(2.0, 0.1);
  EXPECT_DOUBLE_EQ(g.gain(geom::kPi / 2.0), 1.0);
  EXPECT_DOUBLE_EQ(g.gain(3.0 * geom::kPi / 2.0), 1.0);
  EXPECT_DOUBLE_EQ(g.gain(0.0), 0.1);   // edge-on hits the floor
  EXPECT_DOUBLE_EQ(g.gain(geom::kPi), 0.1);
}

TEST(TagOrientationGain, PiPeriodic) {
  const TagOrientationGain g(2.0, 0.1);
  for (double rho = 0.0; rho < geom::kPi; rho += 0.17) {
    EXPECT_NEAR(g.gain(rho), g.gain(rho + geom::kPi), 1e-12);
  }
}

TEST(TagOrientationGain, Validation) {
  EXPECT_THROW(TagOrientationGain(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(TagOrientationGain(2.0, -0.1), std::invalid_argument);
  EXPECT_THROW(TagOrientationGain(2.0, 2.0), std::invalid_argument);
}

TEST(ReaderAntenna, GainToward) {
  ReaderAntenna antenna;
  antenna.boresightAzimuth = 1.0;
  EXPECT_DOUBLE_EQ(antenna.gainToward(1.0), 1.0);
  EXPECT_LT(antenna.gainToward(1.8), 1.0);
}

}  // namespace
}  // namespace tagspin::rf
