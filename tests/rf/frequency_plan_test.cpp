#include "rf/frequency_plan.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace tagspin::rf {
namespace {

TEST(FrequencyPlan, China920Layout) {
  const FrequencyPlan plan = FrequencyPlan::china920();
  EXPECT_EQ(plan.channelCount(), 16);
  EXPECT_DOUBLE_EQ(plan.frequencyHz(0), mhz(920.625));
  EXPECT_DOUBLE_EQ(plan.frequencyHz(15), mhz(924.375));
  EXPECT_DOUBLE_EQ(plan.frequencyHz(1) - plan.frequencyHz(0), mhz(0.25));
  EXPECT_NEAR(plan.centerFrequencyHz(), mhz(922.5), 1.0);
}

TEST(FrequencyPlan, WavelengthBounds) {
  const FrequencyPlan plan = FrequencyPlan::china920();
  EXPECT_LT(plan.minWavelengthM(), plan.maxWavelengthM());
  EXPECT_NEAR(plan.minWavelengthM(), 0.3243, 5e-4);
  EXPECT_NEAR(plan.maxWavelengthM(), 0.3256, 5e-4);
  EXPECT_DOUBLE_EQ(plan.wavelengthM(0), plan.maxWavelengthM());
}

TEST(FrequencyPlan, FixedPlan) {
  const FrequencyPlan plan = FrequencyPlan::fixed(mhz(922.375));
  EXPECT_EQ(plan.channelCount(), 1);
  EXPECT_DOUBLE_EQ(plan.frequencyHz(0), mhz(922.375));
  EXPECT_DOUBLE_EQ(plan.minWavelengthM(), plan.maxWavelengthM());
}

TEST(FrequencyPlan, Validation) {
  EXPECT_THROW(FrequencyPlan(mhz(920.0), mhz(0.25), 0), std::invalid_argument);
  const FrequencyPlan plan = FrequencyPlan::china920();
  EXPECT_THROW(plan.frequencyHz(-1), std::out_of_range);
  EXPECT_THROW(plan.frequencyHz(16), std::out_of_range);
}

TEST(HoppingSequence, DeterministicForSeed) {
  const FrequencyPlan plan = FrequencyPlan::china920();
  const HoppingSequence a(plan, 2.0, 42);
  const HoppingSequence b(plan, 2.0, 42);
  for (double t = 0.0; t < 100.0; t += 1.7) {
    EXPECT_EQ(a.channelAt(t), b.channelAt(t));
  }
}

TEST(HoppingSequence, DwellTimeRespected) {
  const FrequencyPlan plan = FrequencyPlan::china920();
  const HoppingSequence seq(plan, 2.0, 7);
  // Constant within a dwell slot.
  EXPECT_EQ(seq.channelAt(0.0), seq.channelAt(1.999));
  EXPECT_EQ(seq.channelAt(4.0), seq.channelAt(5.5));
}

TEST(HoppingSequence, VisitsEveryChannelOncePerCycle) {
  const FrequencyPlan plan = FrequencyPlan::china920();
  const HoppingSequence seq(plan, 2.0, 99);
  std::set<int> seen;
  for (int slot = 0; slot < 16; ++slot) {
    seen.insert(seq.channelAt(slot * 2.0 + 0.5));
  }
  EXPECT_EQ(seen.size(), 16u);  // a permutation, not repeats
}

TEST(HoppingSequence, NegativeTimeWellDefined) {
  const FrequencyPlan plan = FrequencyPlan::china920();
  const HoppingSequence seq(plan, 2.0, 1);
  const int c = seq.channelAt(-3.0);
  EXPECT_GE(c, 0);
  EXPECT_LT(c, 16);
}

TEST(HoppingSequence, Validation) {
  const FrequencyPlan plan = FrequencyPlan::china920();
  EXPECT_THROW(HoppingSequence(plan, 0.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace tagspin::rf
