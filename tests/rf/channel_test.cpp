#include "rf/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "geom/angles.hpp"
#include "rf/constants.hpp"

namespace tagspin::rf {
namespace {

constexpr double kLambda = 0.325;

ChannelConfig noiselessConfig() {
  ChannelConfig c;
  c.phaseNoiseStd = 1e-12;
  c.phaseOutlierProb = 0.0;
  c.rssiNoiseStdDb = 0.0;
  c.multipathEnabled = false;
  return c;
}

TEST(BackscatterChannel, LosPhaseMatchesEqn1) {
  // theta = (4*pi/lambda) * d + theta_div  (mod 2*pi), paper Eqn. 1.
  const BackscatterChannel channel(noiselessConfig());
  std::mt19937_64 rng(1);
  for (double d = 0.5; d < 4.0; d += 0.37) {
    const ChannelSample s = channel.observe(
        {0.0, 0.0, 0.0}, {d, 0.0, 0.0}, kLambda, /*thetaDiv=*/0.7,
        /*orientationPhase=*/0.0, 1.0, 1.0, 30.0, rng);
    const double expected =
        geom::wrapTwoPi(4.0 * std::numbers::pi / kLambda * d + 0.7);
    EXPECT_NEAR(geom::circularDistance(s.phase, expected), 0.0, 1e-6)
        << "d = " << d;
  }
}

TEST(BackscatterChannel, OrientationPhaseAdds) {
  const BackscatterChannel channel(noiselessConfig());
  std::mt19937_64 rng(2);
  const geom::Vec3 reader{0, 0, 0}, tag{2.0, 0, 0};
  const ChannelSample base =
      channel.observe(reader, tag, kLambda, 0.0, 0.0, 1.0, 1.0, 30.0, rng);
  const ChannelSample shifted =
      channel.observe(reader, tag, kLambda, 0.0, 0.35, 1.0, 1.0, 30.0, rng);
  EXPECT_NEAR(geom::wrapToPi(shifted.phase - base.phase), 0.35, 1e-6);
}

TEST(BackscatterChannel, PhasePeriodIsHalfWavelength) {
  // Backscatter phase repeats every lambda/2 of distance (paper: "repeats
  // every lambda/2 in the distance").
  const BackscatterChannel channel(noiselessConfig());
  std::mt19937_64 rng(3);
  const ChannelSample a = channel.observe({0, 0, 0}, {2.0, 0, 0}, kLambda,
                                          0.0, 0.0, 1.0, 1.0, 30.0, rng);
  const ChannelSample b =
      channel.observe({0, 0, 0}, {2.0 + kLambda / 2.0, 0, 0}, kLambda, 0.0,
                      0.0, 1.0, 1.0, 30.0, rng);
  EXPECT_NEAR(geom::circularDistance(a.phase, b.phase), 0.0, 1e-6);
}

TEST(BackscatterChannel, RssiDecaysWithDistance) {
  const BackscatterChannel channel(noiselessConfig());
  double prev = channel.meanRssiDbm(0.5, kLambda, 1.0, 1.0, 30.0);
  for (double d = 1.0; d <= 8.0; d *= 2.0) {
    const double rssi = channel.meanRssiDbm(d, kLambda, 1.0, 1.0, 30.0);
    EXPECT_LT(rssi, prev);
    prev = rssi;
  }
}

TEST(BackscatterChannel, RssiFollowsFourthPowerLaw) {
  // Round trip with exponent 2 per leg: doubling distance costs ~12 dB.
  const BackscatterChannel channel(noiselessConfig());
  const double r1 = channel.meanRssiDbm(1.0, kLambda, 1.0, 1.0, 30.0);
  const double r2 = channel.meanRssiDbm(2.0, kLambda, 1.0, 1.0, 30.0);
  EXPECT_NEAR(r1 - r2, 12.04, 0.05);
}

TEST(BackscatterChannel, GainsImproveRssi) {
  const BackscatterChannel channel(noiselessConfig());
  std::mt19937_64 rng(4);
  const ChannelSample weak = channel.observe({0, 0, 0}, {2, 0, 0}, kLambda,
                                             0.0, 0.0, 0.5, 0.5, 30.0, rng);
  const ChannelSample strong = channel.observe({0, 0, 0}, {2, 0, 0}, kLambda,
                                               0.0, 0.0, 1.0, 1.0, 30.0, rng);
  EXPECT_GT(strong.rssiDbm, weak.rssiDbm + 10.0);  // 2x both gains, both ways
}

TEST(BackscatterChannel, SensitivityGate) {
  ChannelConfig c = noiselessConfig();
  c.readerSensitivityDbm = -60.0;
  const BackscatterChannel channel(c);
  std::mt19937_64 rng(5);
  const ChannelSample near = channel.observe({0, 0, 0}, {1.0, 0, 0}, kLambda,
                                             0.0, 0.0, 1.0, 1.0, 30.0, rng);
  const ChannelSample far = channel.observe({0, 0, 0}, {30.0, 0, 0}, kLambda,
                                            0.0, 0.0, 1.0, 1.0, 30.0, rng);
  EXPECT_TRUE(near.readable);
  EXPECT_FALSE(far.readable);
}

TEST(BackscatterChannel, MultipathPerturbsPhase) {
  ChannelConfig c = noiselessConfig();
  c.multipathEnabled = true;
  const std::vector<Scatterer> scatterers{{{1.0, 1.5, 0.0}, 0.2}};
  const BackscatterChannel withMp(c, scatterers);
  const BackscatterChannel without(noiselessConfig());
  std::mt19937_64 rng(6);
  const ChannelSample a = withMp.observe({0, 0, 0}, {2.5, 0, 0}, kLambda, 0.0,
                                         0.0, 1.0, 1.0, 30.0, rng);
  const ChannelSample b = without.observe({0, 0, 0}, {2.5, 0, 0}, kLambda,
                                          0.0, 0.0, 1.0, 1.0, 30.0, rng);
  EXPECT_GT(geom::circularDistance(a.phase, b.phase), 1e-4);
}

TEST(BackscatterChannel, ComplexGainPureLosIsUnit) {
  const BackscatterChannel channel(noiselessConfig());
  const auto h = channel.complexGain({0, 0, 0}, {1.7, 0, 0}, kLambda);
  EXPECT_NEAR(std::abs(h), 1.0, 1e-12);
  EXPECT_NEAR(geom::circularDistance(
                  -std::arg(h),
                  geom::wrapTwoPi(4.0 * std::numbers::pi / kLambda * 1.7)),
              0.0, 1e-9);
}

TEST(BackscatterChannel, OutlierRateRoughlyMatches) {
  ChannelConfig c = noiselessConfig();
  c.phaseOutlierProb = 0.2;
  const BackscatterChannel channel(c);
  std::mt19937_64 rng(7);
  int outliers = 0;
  const int n = 4000;
  const double expected =
      geom::wrapTwoPi(4.0 * std::numbers::pi / kLambda * 2.0);
  for (int i = 0; i < n; ++i) {
    const ChannelSample s = channel.observe({0, 0, 0}, {2.0, 0, 0}, kLambda,
                                            0.0, 0.0, 1.0, 1.0, 30.0, rng);
    if (geom::circularDistance(s.phase, expected) > 0.01) ++outliers;
  }
  // Uniform outliers land within 0.01 rad of truth with prob ~0.003, so the
  // count tracks the configured probability closely.
  EXPECT_NEAR(static_cast<double>(outliers) / n, 0.2, 0.03);
}

TEST(BackscatterChannel, ZeroDistanceIsClamped) {
  const BackscatterChannel channel(noiselessConfig());
  std::mt19937_64 rng(8);
  const ChannelSample s = channel.observe({0, 0, 0}, {0, 0, 0}, kLambda, 0.0,
                                          0.0, 1.0, 1.0, 30.0, rng);
  EXPECT_TRUE(std::isfinite(s.phase));
  EXPECT_TRUE(std::isfinite(s.rssiDbm));
}

TEST(BackscatterChannel, Validation) {
  ChannelConfig bad;
  bad.phaseNoiseStd = -0.1;
  EXPECT_THROW(BackscatterChannel{bad}, std::invalid_argument);
  ChannelConfig bad2;
  bad2.pathLossExponent = 0.0;
  EXPECT_THROW(BackscatterChannel{bad2}, std::invalid_argument);
}

}  // namespace
}  // namespace tagspin::rf
