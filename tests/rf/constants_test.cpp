#include "rf/constants.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tagspin::rf {
namespace {

TEST(Constants, WavelengthOfUhfBand) {
  // 920.625 MHz is ~32.56 cm; 924.375 MHz is ~32.43 cm (the paper's
  // "wavelength ranges from 32.4 cm to 32.6 cm").
  EXPECT_NEAR(wavelength(mhz(920.625)), 0.3256, 5e-4);
  EXPECT_NEAR(wavelength(mhz(924.375)), 0.3243, 5e-4);
}

TEST(Constants, WavelengthFrequencyRoundTrip) {
  const double f = mhz(922.0);
  EXPECT_NEAR(kSpeedOfLight / wavelength(f), f, 1e-3);
}

TEST(Constants, DbConversions) {
  EXPECT_DOUBLE_EQ(toDb(1.0), 0.0);
  EXPECT_DOUBLE_EQ(toDb(10.0), 10.0);
  EXPECT_NEAR(toDb(2.0), 3.0103, 1e-4);
  EXPECT_DOUBLE_EQ(fromDb(0.0), 1.0);
  EXPECT_DOUBLE_EQ(fromDb(20.0), 100.0);
  for (double db = -30.0; db <= 30.0; db += 7.5) {
    EXPECT_NEAR(toDb(fromDb(db)), db, 1e-10);
  }
}

TEST(Constants, MhzHelper) { EXPECT_DOUBLE_EQ(mhz(1.5), 1.5e6); }

}  // namespace
}  // namespace tagspin::rf
