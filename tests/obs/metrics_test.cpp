#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace tagspin::obs {
namespace {

TEST(Counter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetIsLastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(Gauge, SetMaxIsMonotone) {
  Gauge g;
  g.setMax(4.0);
  g.setMax(2.0);  // lower: ignored
  EXPECT_EQ(g.value(), 4.0);
  g.setMax(9.0);
  EXPECT_EQ(g.value(), 9.0);
}

TEST(Histogram, CountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);  // empty: zeros, not +-inf
  EXPECT_EQ(h.max(), 0.0);
  h.observe(0.010);
  h.observe(0.020);
  h.observe(0.120);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.sum(), 0.150, 1e-12);
  EXPECT_NEAR(h.min(), 0.010, 1e-12);
  EXPECT_NEAR(h.max(), 0.120, 1e-12);
  EXPECT_NEAR(h.mean(), 0.050, 1e-12);
}

TEST(Histogram, BucketIndexCoversTheLatencyRange) {
  // Bucket upper bounds are 2^(i - kExpBias); a value must land in the
  // first bucket whose upper bound is >= the value.
  for (double v : {1e-9, 1e-6, 1e-3, 0.5, 1.0, 30.0, 1e6}) {
    const int i = Histogram::bucketIndex(v);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, Histogram::kBuckets);
    EXPECT_LE(v, Histogram::bucketUpper(i)) << v;
    // Bucket i covers [2^(i-1-bias), 2^(i-bias)); exact powers of two sit
    // on the lower edge, so the lower bound is inclusive.
    if (i > 0) EXPECT_GE(v, Histogram::bucketUpper(i - 1)) << v;
  }
  // Degenerate inputs are absorbed by bucket 0 instead of indexing OOB.
  EXPECT_EQ(Histogram::bucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::bucketIndex(-5.0), 0);
  EXPECT_EQ(Histogram::bucketIndex(std::nan("")), 0);
  EXPECT_EQ(Histogram::bucketIndex(1e300), Histogram::kBuckets - 1);
}

TEST(Histogram, QuantileIsBucketResolution) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(0.010);
  for (int i = 0; i < 10; ++i) h.observe(1.0);
  // p50 must land in the bucket holding 0.010: (2^-7, 2^-6] seconds.
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 0.010 / 2.0);
  EXPECT_LT(p50, 0.010 * 2.0);
  // p99 must land in the bucket holding 1.0 ([1.0, 2.0); the estimate is
  // the bucket's geometric midpoint, sqrt(2)).
  const double p99 = h.quantile(0.99);
  EXPECT_GT(p99, 0.5);
  EXPECT_LE(p99, 2.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.quantile(0.1), h.quantile(0.9));
}

TEST(Registry, HandlesAreStableAndSharedByName) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x.hits");
  Counter* b = reg.counter("x.hits");
  EXPECT_EQ(a, b);
  a->add(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_NE(static_cast<void*>(reg.gauge("x.hits")), static_cast<void*>(a));
  EXPECT_EQ(reg.size(), 2u);  // one counter + one (same-named) gauge
}

TEST(Registry, SnapshotLookupAndAbsentNames) {
  MetricsRegistry reg;
  reg.counter("a.count")->add(7);
  reg.gauge("b.depth")->set(12.0);
  reg.histogram("c.lat")->observe(0.25);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counterValue("a.count"), 7u);
  EXPECT_EQ(snap.counterValue("no.such"), 0u);
  EXPECT_EQ(snap.gaugeValue("b.depth"), 12.0);
  EXPECT_EQ(snap.gaugeValue("no.such"), 0.0);
  ASSERT_NE(snap.histogram("c.lat"), nullptr);
  EXPECT_EQ(snap.histogram("c.lat")->count, 1u);
  EXPECT_EQ(snap.histogram("no.such"), nullptr);
}

TEST(NullSafeHelpers, NullHandlesAreNoOps) {
  add(static_cast<Counter*>(nullptr));
  add(static_cast<Counter*>(nullptr), 10);
  set(static_cast<Gauge*>(nullptr), 1.0);
  setMax(static_cast<Gauge*>(nullptr), 1.0);
  observe(static_cast<Histogram*>(nullptr), 1.0);
  // Wired handles forward.
  Counter c;
  Gauge g;
  Histogram h;
  add(&c, 2);
  set(&g, 5.0);
  setMax(&g, 7.0);
  observe(&h, 0.5);
#ifndef TAGSPIN_OBS_NOOP
  EXPECT_EQ(c.value(), 2u);
  EXPECT_EQ(g.value(), 7.0);
  EXPECT_EQ(h.count(), 1u);
#endif
}

// The hot-path contract: concurrent writers on the same handles, with a
// reader snapshotting mid-flight, lose no increments.  This test carries
// the tsan label so the ThreadSanitizer pass exercises exactly this.
TEST(Threading, ConcurrentWritersLoseNothing) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Resolve inside the thread: registration itself must be
      // thread-safe, and every thread must get the same handles.
      Counter* c = reg.counter("t.count");
      Gauge* g = reg.gauge("t.peak");
      Histogram* h = reg.histogram("t.lat");
      for (int i = 0; i < kPerThread; ++i) {
        c->add();
        g->setMax(static_cast<double>(t * kPerThread + i));
        h->observe(0.001 * static_cast<double>((i % 10) + 1));
      }
    });
  }
  // Concurrent scrapes while writers run (values are torn-free but racy in
  // magnitude; only the final totals are asserted).
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot mid = reg.snapshot();
    EXPECT_LE(mid.counterValue("t.count"),
              static_cast<uint64_t>(kThreads) * kPerThread);
  }
  for (std::thread& t : threads) t.join();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counterValue("t.count"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.gaugeValue("t.peak"),
            static_cast<double>(kThreads * kPerThread - 1));
  const HistogramView* h = snap.histogram("t.lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(h->sum,
              kThreads * kPerThread * 0.001 * 5.5,  // mean of 1..10 ms
              1e-6 * h->sum);
}

}  // namespace
}  // namespace tagspin::obs
