#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "sim/io_sim.hpp"

namespace tagspin::obs {
namespace {

TEST(PrometheusName, PrefixesAndSanitizes) {
  EXPECT_EQ(prometheusName("session.disconnects"),
            "tagspin_session_disconnects");
  EXPECT_EQ(prometheusName("span.llrp_decode"), "tagspin_span_llrp_decode");
  EXPECT_EQ(prometheusName("weird name/42"), "tagspin_weird_name_42");
}

TEST(ToPrometheus, EmitsTypedFamilies) {
  MetricsRegistry reg;
  reg.counter("session.disconnects")->add(3);
  reg.gauge("queue.depth")->set(17.0);
  Histogram* h = reg.histogram("span.fix2d");
  h->observe(0.2);
  h->observe(0.3);
  const std::string page = toPrometheus(reg.snapshot());

  EXPECT_NE(page.find("# TYPE tagspin_session_disconnects counter\n"
                      "tagspin_session_disconnects 3\n"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE tagspin_queue_depth gauge\n"
                      "tagspin_queue_depth 17\n"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE tagspin_span_fix2d summary"), std::string::npos);
  EXPECT_NE(page.find("tagspin_span_fix2d{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(page.find("tagspin_span_fix2d_count 2\n"), std::string::npos);
}

TEST(ToJson, StableShapeWithAndWithoutJournal) {
  MetricsRegistry reg;
  reg.counter("llrp.frames_decoded")->add(9);
  reg.histogram("span.preprocess")->observe(0.004);
  const MetricsSnapshot snap = reg.snapshot();

  const std::string bare = toJson(snap);
  EXPECT_NE(bare.find("\"counters\": {\"llrp.frames_decoded\": 9}"),
            std::string::npos);
  EXPECT_NE(bare.find("\"span.preprocess\": {\"count\": 1"),
            std::string::npos);
  EXPECT_EQ(bare.find("\"events\""), std::string::npos);

  EventJournal journal(4);
  journal.record(12.5, Severity::kWarn, "watchdog \"fired\"",
                 {{"session", "reader0"}});
  const std::string withEvents = toJson(snap, &journal);
  EXPECT_NE(withEvents.find("\"events_dropped\": 0"), std::string::npos);
  EXPECT_NE(withEvents.find("\"severity\": \"warn\""), std::string::npos);
  // Quotes inside the message must be escaped (the export is machine-read).
  EXPECT_NE(withEvents.find("watchdog \\\"fired\\\""), std::string::npos);
  EXPECT_NE(withEvents.find("\"session\": \"reader0\""), std::string::npos);
}

TEST(WriteTextFile, RoundTripsAndReportsFailure) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tagspin_export_test.prom")
          .string();
  EXPECT_TRUE(writeTextFile(path, "tagspin_up 1\n"));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "tagspin_up 1");
  std::remove(path.c_str());
  // Unwritable path: false, no throw (export must never kill ingestion).
  EXPECT_FALSE(writeTextFile("/nonexistent_dir_tagspin/x.prom", "x"));
}

TEST(WriteTextFile, PowerCutAtEveryBoundaryLeavesOldOrNewNeverTorn) {
  // The sidecar export uses the same durable-replace recipe as the
  // checkpoint: a scraper must never see a half-written metrics page, no
  // matter where power dies.
  uint64_t boundaries = 0;
  {
    sim::SimIoEnv probe(sim::DiskImage{{"metrics.prom", "old_page 1\n"}});
    ASSERT_TRUE(writeTextFile("metrics.prom", "new_page 2\n", &probe));
    boundaries = probe.opCount();
  }
  ASSERT_GT(boundaries, 4u);
  for (uint64_t k = 0; k < boundaries; ++k) {
    sim::SimIoEnv env(sim::DiskImage{{"metrics.prom", "old_page 1\n"}});
    env.setCrashAtOp(static_cast<int64_t>(k));
    try {
      writeTextFile("metrics.prom", "new_page 2\n", &env);
      FAIL() << "power cut at op " << k << " did not surface";
    } catch (const sim::SimCrash&) {
    }
    for (const sim::CrashPersist::Mode mode :
         {sim::CrashPersist::Mode::kNone, sim::CrashPersist::Mode::kAll,
          sim::CrashPersist::Mode::kMetaOnly,
          sim::CrashPersist::Mode::kPrefix}) {
      const sim::DiskImage image = env.crashImage({mode, 5 * k + 1});
      const auto it = image.find("metrics.prom");
      ASSERT_NE(it, image.end()) << "cut at op " << k;
      EXPECT_TRUE(it->second == "old_page 1\n" || it->second == "new_page 2\n")
          << "cut at op " << k << ", mode " << sim::persistModeName(mode)
          << ": torn page \"" << it->second << '"';
    }
  }
}

}  // namespace
}  // namespace tagspin::obs
