// The observability acceptance check: after a soak run with the scripted
// outage (disconnects + stall + kill -9/restore), the exported telemetry --
// both the snapshot and its JSON/Prometheus renderings -- must contain
// non-zero session, queue, decode and checkpoint metrics, all accumulated
// across the supervisor restart by the registry-outlives-component design.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "eval/soak.hpp"
#include "obs/export.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace tagspin::eval {
namespace {

TEST(TelemetrySoak, OutageRunExportsNonZeroRuntimeMetrics) {
  SoakConfig sc;
  sc.scenario.seed = 33;
  sc.scenario.fixedChannel = true;
  sc.revolutions = 4.0;
  sc.rigCount = 3;
  sc.checkpointPath =
      (std::filesystem::temp_directory_path() / "tagspin_telemetry_soak.ckpt")
          .string();
  std::remove(sc.checkpointPath.c_str());

  // Inject external sinks: the caller's registry must be the one the run
  // feeds, and the journal must pick up the outage narrative.
  obs::MetricsRegistry registry;
  obs::EventJournal journal;
  sc.metrics = &registry;
  sc.journal = &journal;

  const SoakResult r = runSoak(sc);
  ASSERT_TRUE(r.soakOk) << r.soakFailure;
  ASSERT_TRUE(r.killed);

  const obs::MetricsSnapshot snap = registry.snapshot();

  // Session metrics: the scripted outage forced at least one disconnect and
  // the stream moved real bytes and reports.
  EXPECT_GT(snap.counterValue("session.transitions"), 0u);
  EXPECT_GT(snap.counterValue("session.disconnects"), 0u);
  EXPECT_GT(snap.counterValue("session.bytes_received"), 0u);
  EXPECT_GT(snap.counterValue("session.reports_decoded"), 0u);

  // Queue metrics: every decoded report went through offer().
  EXPECT_GT(snap.counterValue("queue.offered"), 0u);
  EXPECT_GT(snap.counterValue("queue.accepted"), 0u);
  EXPECT_GT(snap.gaugeValue("queue.max_depth"), 0.0);

  // Decode metrics: the tolerant LLRP decoder published its deltas.
  EXPECT_GT(snap.counterValue("llrp.frames_decoded"), 0u);
  EXPECT_GT(snap.counterValue("llrp.bytes_total"), 0u);

  // Checkpoint metrics: periodic saves happened (that is what the kill -9
  // restore resumed from) and carried real bytes.
  EXPECT_GT(snap.counterValue("checkpoint.saves"), 0u);
  EXPECT_GT(snap.counterValue("checkpoint.bytes_written"), 0u);
  EXPECT_EQ(snap.counterValue("checkpoint.failures"), 0u);

  // Supervisor restart accounting spans the kill (registry outlives it).
  EXPECT_GT(snap.counterValue("supervisor.reports_ingested"), 0u);

  // Hot-path spans fired.
  const obs::HistogramView* decode = snap.histogram("span.llrp_decode");
  ASSERT_NE(decode, nullptr);
  EXPECT_GT(decode->count, 0u);
  const obs::HistogramView* ckpt = snap.histogram("span.checkpoint_write");
  ASSERT_NE(ckpt, nullptr);
  EXPECT_GT(ckpt->count, 0u);

  // The journal captured the outage narrative.
  EXPECT_GT(journal.recorded(), 0u);

  // Result-embedded exports mirror the same registry and render non-zero
  // values in both formats.
  EXPECT_EQ(r.telemetry.counterValue("session.disconnects"),
            snap.counterValue("session.disconnects"));
  EXPECT_NE(r.telemetryPrometheus.find("tagspin_checkpoint_saves"),
            std::string::npos);
  EXPECT_EQ(r.telemetryPrometheus.find("tagspin_checkpoint_saves 0\n"),
            std::string::npos);
  EXPECT_NE(r.telemetryJson.find("\"session.disconnects\""),
            std::string::npos);
  EXPECT_NE(r.telemetryJson.find("\"events\""), std::string::npos);

  std::remove(sc.checkpointPath.c_str());
}

}  // namespace
}  // namespace tagspin::eval
