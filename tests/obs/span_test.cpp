#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/metrics.hpp"

namespace tagspin::obs {
namespace {

TEST(ScopedSpan, ObservesElapsedSecondsOnScopeExit) {
  Histogram h;
  {
    ScopedSpan span(&h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 0.002);
  EXPECT_LT(h.max(), 5.0);  // sanity: seconds, not nanoseconds
}

TEST(ScopedSpan, NullHistogramIsInert) {
  ScopedSpan span(nullptr);
  span.finish();  // neither scope exit nor finish may dereference
}

TEST(ScopedSpan, FinishObservesOnceAndDisarms) {
  Histogram h;
  {
    ScopedSpan span(&h);
    span.finish();
    EXPECT_EQ(h.count(), 1u);
    span.finish();  // second finish: already disarmed
    EXPECT_EQ(h.count(), 1u);
  }
  // Scope exit after finish() must not observe again.
  EXPECT_EQ(h.count(), 1u);
}

TEST(SpanMacro, FeedsTheHistogramUnlessNoop) {
  Histogram h;
  Histogram* handle = &h;
  {
    TAGSPIN_SPAN(handle);
  }
#ifdef TAGSPIN_OBS_NOOP
  EXPECT_EQ(h.count(), 0u);
#else
  EXPECT_EQ(h.count(), 1u);
#endif
  // Null handle through the macro: one branch, no observation.
  Histogram* null = nullptr;
  {
    TAGSPIN_SPAN(null);
  }
  EXPECT_LE(h.count(), 1u);
}

}  // namespace
}  // namespace tagspin::obs
