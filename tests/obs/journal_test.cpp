#include "obs/journal.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace tagspin::obs {
namespace {

TEST(EventJournal, RecordsWithFieldsOldestFirst) {
  EventJournal journal(8);
  journal.record(1.0, Severity::kInfo, "session connected",
                 {{"session", "reader0"}});
  journal.record(2.5, Severity::kWarn, "watchdog fired",
                 {{"session", "reader0"}, {"kind", "no_report"}});
  const std::vector<Event> events = journal.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].wallS, 1.0);
  EXPECT_EQ(events[0].what, "session connected");
  ASSERT_EQ(events[1].fields.size(), 2u);
  EXPECT_EQ(events[1].fields[1].first, "kind");
  EXPECT_EQ(events[1].fields[1].second, "no_report");
  EXPECT_EQ(journal.recorded(), 2u);
  EXPECT_EQ(journal.dropped(), 0u);
}

TEST(EventJournal, BoundOverwritesOldest) {
  EventJournal journal(4);
  for (int i = 0; i < 10; ++i) {
    journal.record(static_cast<double>(i), Severity::kInfo,
                   "e" + std::to_string(i));
  }
  const std::vector<Event> events = journal.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().what, "e6");  // oldest retained
  EXPECT_EQ(events.back().what, "e9");
  EXPECT_EQ(journal.recorded(), 10u);
  EXPECT_EQ(journal.dropped(), 6u);
  EXPECT_EQ(journal.capacity(), 4u);
}

TEST(EventJournal, CapacityFloorsAtOne) {
  EventJournal journal(0);
  journal.record(1.0, Severity::kError, "a");
  journal.record(2.0, Severity::kError, "b");
  ASSERT_EQ(journal.events().size(), 1u);
  EXPECT_EQ(journal.events()[0].what, "b");
}

TEST(EventJournal, NullSafeHelperAndSeverityNames) {
  record(nullptr, 1.0, Severity::kError, "dropped on the floor");
  EventJournal journal(4);
  record(&journal, 3.0, Severity::kError, "breaker tripped",
         {{"session", "reader0"}});
#ifdef TAGSPIN_OBS_NOOP
  EXPECT_TRUE(journal.events().empty());
#else
  ASSERT_EQ(journal.events().size(), 1u);
  EXPECT_EQ(journal.events()[0].severity, Severity::kError);
#endif
  EXPECT_STREQ(severityName(Severity::kDebug), "debug");
  EXPECT_STREQ(severityName(Severity::kInfo), "info");
  EXPECT_STREQ(severityName(Severity::kWarn), "warn");
  EXPECT_STREQ(severityName(Severity::kError), "error");
}

// The journal is the one mutex-protected piece of obs; hammer it from
// several threads (tsan label) and check the lifetime accounting.
TEST(EventJournal, ThreadedRecordsKeepAccounting) {
  EventJournal journal(16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.record(static_cast<double>(i), Severity::kInfo,
                       "t" + std::to_string(t));
      }
    });
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(journal.events().size(), 16u);
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(journal.recorded(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(journal.dropped(), journal.recorded() - 16u);
  EXPECT_EQ(journal.events().size(), 16u);
}

}  // namespace
}  // namespace tagspin::obs
