#include "baselines/landmarc.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace tagspin::baselines {
namespace {

TEST(Landmarc, SingleObservationReturnsItsPosition) {
  const std::vector<RssiObservation> obs{{{1.0, 2.0, 0.0}, -50.0}};
  const geom::Vec3 fix = landmarcLocate(obs);
  EXPECT_EQ(fix, (geom::Vec3{1.0, 2.0, 0.0}));
}

TEST(Landmarc, EmptyThrows) {
  EXPECT_THROW(landmarcLocate({}), std::invalid_argument);
}

TEST(Landmarc, WeightsFavorStrongerReferences) {
  // Two references: the much stronger one dominates the centroid.
  const std::vector<RssiObservation> obs{{{0.0, 0.0, 0.0}, -40.0},
                                         {{1.0, 0.0, 0.0}, -70.0}};
  LandmarcConfig config;
  config.k = 2;
  const geom::Vec3 fix = landmarcLocate(obs, config);
  EXPECT_LT(fix.x, 0.05);
}

TEST(Landmarc, EqualRssiGivesCentroid) {
  const std::vector<RssiObservation> obs{{{0.0, 0.0, 0.0}, -50.0},
                                         {{2.0, 0.0, 0.0}, -50.0}};
  LandmarcConfig config;
  config.k = 2;
  const geom::Vec3 fix = landmarcLocate(obs, config);
  EXPECT_NEAR(fix.x, 1.0, 1e-12);
}

TEST(Landmarc, KLimitsNeighborhood) {
  // With k = 1 only the strongest reference matters.
  const std::vector<RssiObservation> obs{{{0.0, 0.0, 0.0}, -45.0},
                                         {{1.0, 0.0, 0.0}, -50.0},
                                         {{2.0, 0.0, 0.0}, -55.0}};
  LandmarcConfig config;
  config.k = 1;
  EXPECT_EQ(landmarcLocate(obs, config), (geom::Vec3{0.0, 0.0, 0.0}));
}

TEST(Landmarc, KLargerThanDataIsSafe) {
  const std::vector<RssiObservation> obs{{{0.0, 0.0, 0.0}, -45.0},
                                         {{1.0, 0.0, 0.0}, -50.0}};
  LandmarcConfig config;
  config.k = 10;
  EXPECT_NO_THROW(landmarcLocate(obs, config));
}

TEST(Landmarc, RoughlyLocatesOnGrid) {
  // Ideal monotone RSSI model on a grid: the estimate lands in the right
  // neighbourhood (grid-spacing accuracy, as in the original paper).
  const geom::Vec3 truth{0.7, 1.3, 0.0};
  std::vector<RssiObservation> obs;
  for (double x = -2.0; x <= 2.0; x += 0.5) {
    for (double y = 0.0; y <= 3.0; y += 0.5) {
      const double d = geom::distance(geom::Vec3{x, y, 0.0}, truth);
      obs.push_back({{x, y, 0.0}, -40.0 - 20.0 * std::log10(d + 0.1)});
    }
  }
  const geom::Vec3 fix = landmarcLocate(obs);
  EXPECT_LT(geom::distance(fix, truth), 0.5);
}

}  // namespace
}  // namespace tagspin::baselines
