#include "baselines/backpos.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "geom/angles.hpp"

namespace tagspin::baselines {
namespace {

constexpr double kLambda = 0.325;

AnchorPhase anchorAt(const geom::Vec3& pos, const geom::Vec2& reader,
                     double phaseError = 0.0) {
  AnchorPhase a;
  a.position = pos;
  a.lambdaM = kLambda;
  const double d = geom::distance(reader, pos.xy());
  a.phase = geom::wrapTwoPi(4.0 * std::numbers::pi / kLambda * d + phaseError);
  return a;
}

std::vector<AnchorPhase> anchorsFor(const geom::Vec2& reader) {
  return {anchorAt({-1.0, 0.5, 0.0}, reader), anchorAt({1.0, 0.5, 0.0}, reader),
          anchorAt({-0.6, 2.5, 0.0}, reader), anchorAt({0.9, 2.2, 0.0}, reader),
          anchorAt({0.0, 1.2, 0.0}, reader)};
}

TEST(BackPos, ExactWithPerfectPhases) {
  const geom::Vec2 reader{0.3, 1.6};
  const SearchBounds bounds{-2.0, 2.0, 0.0, 3.0};
  const geom::Vec2 fix = backposLocate(anchorsFor(reader), bounds);
  EXPECT_LT(geom::distance(fix, reader), 0.01);
}

TEST(BackPos, CostZeroAtTruth) {
  const geom::Vec2 reader{0.3, 1.6};
  const auto anchors = anchorsFor(reader);
  EXPECT_NEAR(backposCost(anchors, reader), 0.0, 1e-12);
  EXPECT_GT(backposCost(anchors, {0.3, 1.6 + 0.08}), 0.01);
}

TEST(BackPos, ThetaDivCancelsInPairs) {
  // A common phase offset on ALL anchors (same tag, same reader hardware)
  // cancels in the pairwise differences.
  const geom::Vec2 reader{0.3, 1.6};
  std::vector<AnchorPhase> anchors = anchorsFor(reader);
  for (AnchorPhase& a : anchors) {
    a.phase = geom::wrapTwoPi(a.phase + 2.34);
  }
  const SearchBounds bounds{-2.0, 2.0, 0.0, 3.0};
  EXPECT_LT(geom::distance(backposLocate(anchors, bounds), reader), 0.01);
}

TEST(BackPos, SmallPhaseErrorsSmallPositionError) {
  const geom::Vec2 reader{-0.4, 1.2};
  std::vector<AnchorPhase> anchors{
      anchorAt({-1.0, 0.5, 0.0}, reader, 0.05),
      anchorAt({1.0, 0.5, 0.0}, reader, -0.04),
      anchorAt({-0.6, 2.5, 0.0}, reader, 0.06),
      anchorAt({0.9, 2.2, 0.0}, reader, -0.05),
      anchorAt({0.0, 1.2, 0.0}, reader, 0.02)};
  const SearchBounds bounds{-2.0, 2.0, 0.0, 3.0};
  EXPECT_LT(geom::distance(backposLocate(anchors, bounds), reader), 0.05);
}

TEST(BackPos, BoundsConstrainTheFix) {
  const geom::Vec2 reader{0.3, 1.6};
  const SearchBounds awayFromTruth{1.0, 2.0, 2.0, 3.0};
  const geom::Vec2 fix = backposLocate(anchorsFor(reader), awayFromTruth);
  EXPECT_GE(fix.x, 1.0 - 1e-9);
  EXPECT_LE(fix.x, 2.0 + 0.05);
  EXPECT_GE(fix.y, 2.0 - 1e-9);
}

TEST(BackPos, Validation) {
  const geom::Vec2 reader{0.0, 1.0};
  std::vector<AnchorPhase> two{anchorAt({-1.0, 0.0, 0.0}, reader),
                               anchorAt({1.0, 0.0, 0.0}, reader)};
  const SearchBounds bounds{-2.0, 2.0, 0.0, 3.0};
  EXPECT_THROW(backposLocate(two, bounds), std::invalid_argument);
  const SearchBounds empty{1.0, -1.0, 0.0, 3.0};
  EXPECT_THROW(backposLocate(anchorsFor(reader), empty),
               std::invalid_argument);
}

TEST(BackPos, MixedWavelengthsHandled) {
  // Anchors measured on different hop channels still cohere because the
  // cost uses each anchor's own wavelength.
  const geom::Vec2 reader{0.2, 1.4};
  std::vector<AnchorPhase> anchors = anchorsFor(reader);
  anchors[1].lambdaM = 0.3243;
  anchors[1].phase = geom::wrapTwoPi(
      4.0 * std::numbers::pi / anchors[1].lambdaM *
      geom::distance(reader, anchors[1].position.xy()));
  anchors[3].lambdaM = 0.3256;
  anchors[3].phase = geom::wrapTwoPi(
      4.0 * std::numbers::pi / anchors[3].lambdaM *
      geom::distance(reader, anchors[3].position.xy()));
  const SearchBounds bounds{-2.0, 2.0, 0.0, 3.0};
  EXPECT_LT(geom::distance(backposLocate(anchors, bounds), reader), 0.02);
}

}  // namespace
}  // namespace tagspin::baselines
