#include "baselines/antloc.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

#include "geom/angles.hpp"

namespace tagspin::baselines {
namespace {

BearingObservation perfectBearing(const geom::Vec3& tag,
                                  const geom::Vec3& reader) {
  return {tag, geom::azimuthOf(reader, tag)};
}

TEST(AntLoc, ExactWithPerfectBearings) {
  const geom::Vec3 reader{0.5, 1.5, 0.0};
  const std::vector<BearingObservation> obs{
      perfectBearing({-1.0, 0.0, 0.0}, reader),
      perfectBearing({1.0, 0.0, 0.0}, reader),
      perfectBearing({0.0, 3.0, 0.0}, reader)};
  const geom::Vec3 fix = antlocLocate(obs);
  EXPECT_NEAR(fix.x, reader.x, 1e-9);
  EXPECT_NEAR(fix.y, reader.y, 1e-9);
}

TEST(AntLoc, TwoTagsSuffice) {
  const geom::Vec3 reader{-0.3, 2.0, 0.0};
  const std::vector<BearingObservation> obs{
      perfectBearing({-1.5, 0.0, 0.0}, reader),
      perfectBearing({1.5, 0.0, 0.0}, reader)};
  const geom::Vec3 fix = antlocLocate(obs);
  EXPECT_LT(geom::distance(fix.xy(), reader.xy()), 1e-9);
}

TEST(AntLoc, TooFewThrows) {
  const std::vector<BearingObservation> one{
      perfectBearing({0.0, 0.0, 0.0}, {1.0, 1.0, 0.0})};
  EXPECT_THROW(antlocLocate(one), std::invalid_argument);
  EXPECT_THROW(antlocLocate({}), std::invalid_argument);
}

TEST(AntLoc, DegenerateGeometryThrows) {
  // Reader collinear with both tags: back-rays are parallel.
  const geom::Vec3 reader{0.0, 0.0, 0.0};
  const std::vector<BearingObservation> obs{
      perfectBearing({1.0, 0.0, 0.0}, reader),
      perfectBearing({2.0, 0.0, 0.0}, reader)};
  EXPECT_THROW(antlocLocate(obs), std::runtime_error);
}

TEST(AntLoc, ErrorScalesWithBearingNoise) {
  const geom::Vec3 reader{0.4, 2.0, 0.0};
  const std::vector<geom::Vec3> tags{
      {-1.0, 0.5, 0.0}, {1.0, 0.5, 0.0}, {0.0, 3.5, 0.0}, {1.5, 2.5, 0.0}};
  auto meanError = [&](double noiseStd) {
    std::mt19937_64 rng(7);
    std::normal_distribution<double> noise(0.0, noiseStd);
    double acc = 0.0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
      std::vector<BearingObservation> obs;
      for (const geom::Vec3& tag : tags) {
        obs.push_back(
            {tag, geom::wrapTwoPi(geom::azimuthOf(reader, tag) + noise(rng))});
      }
      acc += geom::distance(antlocLocate(obs).xy(), reader.xy());
    }
    return acc / trials;
  };
  const double small = meanError(0.05);
  const double large = meanError(0.25);
  EXPECT_LT(small, large);
  EXPECT_LT(small, 0.15);
  EXPECT_GT(large, 0.15);
}

TEST(AntLoc, ZIsAverageOfTagHeights) {
  const geom::Vec3 reader{0.5, 1.5, 0.0};
  std::vector<BearingObservation> obs{
      perfectBearing({-1.0, 0.0, 0.2}, reader),
      perfectBearing({1.0, 0.0, 0.6}, reader)};
  EXPECT_NEAR(antlocLocate(obs).z, 0.4, 1e-12);
}

}  // namespace
}  // namespace tagspin::baselines
