#include "baselines/dtw.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace tagspin::baselines {
namespace {

std::vector<double> bump(size_t n, size_t center, double width = 3.0) {
  std::vector<double> out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(i) - static_cast<double>(center);
    out[i] = std::exp(-d * d / (2.0 * width * width));
  }
  return out;
}

TEST(Dtw, IdenticalSequencesHaveZeroDistance) {
  const auto a = bump(50, 25);
  EXPECT_DOUBLE_EQ(dtwDistance(a, a), 0.0);
}

TEST(Dtw, EmptyThrows) {
  const std::vector<double> a{1.0};
  EXPECT_THROW(dtwDistance(a, {}), std::invalid_argument);
  EXPECT_THROW(dtwDistance({}, a), std::invalid_argument);
}

TEST(Dtw, SymmetricForEqualLengths) {
  const auto a = bump(60, 20);
  const auto b = bump(60, 26);
  EXPECT_NEAR(dtwDistance(a, b), dtwDistance(b, a), 1e-12);
}

TEST(Dtw, DistanceGrowsWithMisalignment) {
  const auto ref = bump(90, 30);
  double prev = 0.0;
  for (size_t shift : {2u, 6u, 12u, 24u}) {
    const double d = dtwDistance(ref, bump(90, 30 + shift));
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(Dtw, BandToleratesSmallShifts) {
  // Within the warping band a small shift costs little; beyond it, a lot.
  const auto ref = bump(100, 40);
  DtwConfig config;
  config.bandFraction = 0.05;  // +-5 samples
  const double small = dtwDistance(ref, bump(100, 43), config);
  const double large = dtwDistance(ref, bump(100, 70), config);
  EXPECT_LT(small, large * 0.3);
}

TEST(Dtw, WiderBandNeverIncreasesDistance) {
  const auto a = bump(80, 30);
  const auto b = bump(80, 38);
  DtwConfig narrow;
  narrow.bandFraction = 0.02;
  DtwConfig wide;
  wide.bandFraction = 0.5;
  EXPECT_LE(dtwDistance(a, b, wide), dtwDistance(a, b, narrow) + 1e-12);
}

TEST(Dtw, UnequalLengthsSupported) {
  const auto a = bump(60, 30);
  const auto b = bump(90, 45);  // same shape, resampled
  DtwConfig config;
  config.bandFraction = 0.2;
  EXPECT_LT(dtwDistance(a, b, config), 0.1);
}

TEST(Dtw, VeryUnequalLengthsFallBack) {
  // Band too narrow for the length ratio: the implementation falls back to
  // the unconstrained distance instead of returning infinity.
  const auto a = bump(10, 5);
  const auto b = bump(100, 50);
  DtwConfig config;
  config.bandFraction = 0.01;
  const double d = dtwDistance(a, b, config);
  EXPECT_TRUE(std::isfinite(d));
}

TEST(Dtw, ZeroBandIsUnconstrained) {
  const auto a = bump(40, 10);
  const auto b = bump(40, 30);
  DtwConfig config;
  config.bandFraction = 0.0;
  EXPECT_TRUE(std::isfinite(dtwDistance(a, b, config)));
}

}  // namespace
}  // namespace tagspin::baselines
