#include "baselines/pinit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace tagspin::baselines {
namespace {

std::vector<double> profileFor(double peakBin, size_t bins = 90) {
  std::vector<double> p(bins, 0.05);
  for (size_t i = 0; i < bins; ++i) {
    double d = std::abs(static_cast<double>(i) - peakBin);
    d = std::min(d, static_cast<double>(bins) - d);
    p[i] += std::exp(-d * d / 8.0);
  }
  return p;
}

Fingerprint fingerprintAt(double x, double y) {
  // Two apertures at (-0.2, 0) and (0.2, 0): peak bins follow the azimuths,
  // and the profile amplitude carries the receive level (range cue) -- two
  // closely spaced apertures cannot separate positions along their common
  // ray by angle alone.
  Fingerprint fp;
  fp.position = {x, y, 0.0};
  const double amplitude = 2.0 / (std::hypot(x, y) + 0.5);
  const double az1 = std::atan2(y, x + 0.2);
  const double az2 = std::atan2(y, x - 0.2);
  for (double az : {az1, az2}) {
    auto p = profileFor(az / (2.0 * M_PI) * 90.0 + 45.0);
    for (double& v : p) v *= amplitude;
    fp.profiles.push_back(std::move(p));
  }
  return fp;
}

std::vector<Fingerprint> makeDatabase() {
  std::vector<Fingerprint> db;
  for (double x = -2.0; x <= 2.0; x += 0.5) {
    for (double y = 0.5; y <= 3.0; y += 0.5) {
      db.push_back(fingerprintAt(x, y));
    }
  }
  return db;
}

TEST(PinIt, ExactMatchReturnsCellPosition) {
  const auto db = makeDatabase();
  const Fingerprint probe = fingerprintAt(0.5, 1.5);  // on-grid position
  PinItConfig config;
  config.k = 1;
  const geom::Vec3 fix = pinitLocate(db, probe.profiles, config);
  EXPECT_NEAR(fix.x, 0.5, 1e-9);
  EXPECT_NEAR(fix.y, 1.5, 1e-9);
}

TEST(PinIt, OffGridInterpolates) {
  const auto db = makeDatabase();
  const Fingerprint probe = fingerprintAt(0.7, 1.6);
  const geom::Vec3 fix = pinitLocate(db, probe.profiles);
  EXPECT_LT(geom::distance(fix, {0.7, 1.6, 0.0}), 0.5);
}

TEST(PinIt, Validation) {
  const auto db = makeDatabase();
  EXPECT_THROW(pinitLocate({}, db[0].profiles), std::invalid_argument);
  const std::vector<std::vector<double>> empty;
  EXPECT_THROW(pinitLocate(db, empty), std::invalid_argument);
  // Aperture count mismatch.
  std::vector<std::vector<double>> one{profileFor(10)};
  EXPECT_THROW(pinitLocate(db, one), std::invalid_argument);
}

TEST(PinIt, DistanceSumsOverApertures) {
  const Fingerprint a = fingerprintAt(0.0, 1.0);
  const Fingerprint b = fingerprintAt(0.5, 1.0);
  const double d = pinitDistance(a, b.profiles, {});
  const double d0 = dtwDistance(a.profiles[0], b.profiles[0], {});
  const double d1 = dtwDistance(a.profiles[1], b.profiles[1], {});
  EXPECT_NEAR(d, d0 + d1, 1e-12);
}

TEST(PinIt, KAveragesNearestCells) {
  const auto db = makeDatabase();
  const Fingerprint probe = fingerprintAt(0.75, 1.75);  // between 4 cells
  PinItConfig config;
  config.k = 4;
  const geom::Vec3 fix = pinitLocate(db, probe.profiles, config);
  EXPECT_LT(geom::distance(fix, {0.75, 1.75, 0.0}), 0.5);
}

}  // namespace
}  // namespace tagspin::baselines
