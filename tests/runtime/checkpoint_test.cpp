#include "runtime/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "geom/angles.hpp"
#include "obs/journal.hpp"
#include "sim/io_sim.hpp"

namespace tagspin::runtime {
namespace {

core::CalibrationCheckpoint sampleCheckpoint() {
  core::CalibrationCheckpoint ckpt;
  ckpt.sequence = 17;
  ckpt.wallTimeS = 123.5;
  ckpt.lastReportTimestampS = 119.25;

  core::TagCalibrationProgress progress;
  for (int i = 0; i < 5; ++i) {
    core::Snapshot s;
    s.timeS = 0.5 * i;
    s.phaseRad = 0.1 * i;
    s.lambdaM = 0.328;
    s.channel = i % 3;
    s.rssiDbm = -60.0 - i;
    progress.snapshots.push_back(s);
  }
  progress.angleSpectrum = {0.1, 0.9, 0.4, 0.2};

  dsp::FourierSeries series;
  series.a0 = 0.02;
  series.a = {0.1, -0.05};
  series.b = {0.03, 0.01};
  progress.hasOrientationModel = true;
  progress.orientationModel = core::OrientationModel::fromSeries(series, 0.2);

  ckpt.tags[rfid::Epc::forSimulatedTag(0)] = progress;

  core::TagCalibrationProgress bare;
  core::Snapshot s;
  s.timeS = 1.0;
  s.phaseRad = 2.0;
  s.lambdaM = 0.33;
  s.channel = 7;
  s.rssiDbm = -55.5;
  bare.snapshots.push_back(s);
  ckpt.tags[rfid::Epc::forSimulatedTag(1)] = bare;
  return ckpt;
}

std::string tempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class CheckpointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs the cases of this binary as
    // separate parallel processes, and a shared filename makes them
    // clobber each other's checkpoints mid-save.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = tempPath(
        (std::string("tagspin_checkpoint_") + info->name() + ".ckpt")
            .c_str());
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_;
};

TEST_F(CheckpointStoreTest, MissingFileIsDistinctFromCorrupt) {
  CheckpointStore store(path_);
  const auto result = store.load();
  ASSERT_FALSE(result.hasValue());
  EXPECT_EQ(result.code(), core::ErrorCode::kCheckpointMissing);
}

TEST_F(CheckpointStoreTest, SaveLoadRoundTrip) {
  CheckpointStore store(path_);
  const core::CalibrationCheckpoint original = sampleCheckpoint();
  store.save(original);

  const auto loaded = store.load();
  ASSERT_TRUE(loaded.hasValue());
  EXPECT_EQ(loaded->sequence, 17u);
  EXPECT_DOUBLE_EQ(loaded->wallTimeS, 123.5);
  EXPECT_DOUBLE_EQ(loaded->lastReportTimestampS, 119.25);
  ASSERT_EQ(loaded->tags.size(), 2u);

  const auto& progress = loaded->tags.at(rfid::Epc::forSimulatedTag(0));
  ASSERT_EQ(progress.snapshots.size(), 5u);
  EXPECT_DOUBLE_EQ(progress.snapshots[2].timeS, 1.0);
  EXPECT_DOUBLE_EQ(progress.snapshots[2].phaseRad, 0.2);
  EXPECT_EQ(progress.snapshots[2].channel, 2);
  ASSERT_EQ(progress.angleSpectrum.size(), 4u);
  EXPECT_DOUBLE_EQ(progress.angleSpectrum[1], 0.9);
  EXPECT_TRUE(progress.hasOrientationModel);

  const auto& bare = loaded->tags.at(rfid::Epc::forSimulatedTag(1));
  EXPECT_FALSE(bare.hasOrientationModel);
  ASSERT_EQ(bare.snapshots.size(), 1u);
  EXPECT_DOUBLE_EQ(bare.snapshots[0].rssiDbm, -55.5);
}

TEST_F(CheckpointStoreTest, SaveLeavesNoTmpBehind) {
  CheckpointStore store(path_);
  store.save(sampleCheckpoint());
  EXPECT_TRUE(std::filesystem::exists(path_));
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(CheckpointStoreTest, OverwriteKeepsLatest) {
  CheckpointStore store(path_);
  core::CalibrationCheckpoint ckpt = sampleCheckpoint();
  store.save(ckpt);
  ckpt.sequence = 99;
  store.save(ckpt);
  const auto loaded = store.load();
  ASSERT_TRUE(loaded.hasValue());
  EXPECT_EQ(loaded->sequence, 99u);
}

TEST_F(CheckpointStoreTest, TruncationAtEveryPointIsRejectedNeverGarbage) {
  CheckpointStore store(path_);
  store.save(sampleCheckpoint());
  std::string full;
  {
    std::ifstream in(path_, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(full.size(), 100u);

  // A kill -9 without the atomic rename would leave a prefix; every prefix
  // length must be detected (missing header, short payload, CRC mismatch)
  // -- never parsed as a valid checkpoint.
  for (size_t cut : {size_t(0), size_t(1), size_t(10), full.size() / 4,
                     full.size() / 2, full.size() - 1}) {
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(cut));
    }
    const auto result = store.load();
    ASSERT_FALSE(result.hasValue()) << "cut at " << cut;
    EXPECT_EQ(result.code(), core::ErrorCode::kCheckpointCorrupt)
        << "cut at " << cut;
  }
}

TEST_F(CheckpointStoreTest, SingleFlippedByteFailsTheCrc) {
  CheckpointStore store(path_);
  store.save(sampleCheckpoint());
  std::string full;
  {
    std::ifstream in(path_, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  // Corrupt one payload byte (past the header line).
  const size_t headerEnd = full.find('\n') + 1;
  std::string corrupted = full;
  corrupted[headerEnd + corrupted.size() / 3] ^= 0x01;
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << corrupted;
  }
  const auto result = store.load();
  ASSERT_FALSE(result.hasValue());
  EXPECT_EQ(result.code(), core::ErrorCode::kCheckpointCorrupt);
}

TEST_F(CheckpointStoreTest, ValidFrameWithMalformedPayloadIsCorrupt) {
  // Correct length and CRC, but the payload is not a checkpoint: the text
  // parser is the last integrity layer.
  const std::string framed = CheckpointStore::frame("this is not a checkpoint");
  {
    std::ofstream out(path_, std::ios::binary);
    out << framed;
  }
  CheckpointStore store(path_);
  const auto result = store.load();
  ASSERT_FALSE(result.hasValue());
  EXPECT_EQ(result.code(), core::ErrorCode::kCheckpointCorrupt);
}

TEST_F(CheckpointStoreTest, DiscardedCheckpointIsJournaled) {
  CheckpointStore store(path_);
  obs::EventJournal journal;
  store.setJournal(&journal);

  // A clean round trip records nothing: the journal is for incidents.
  store.save(sampleCheckpoint());
  ASSERT_TRUE(store.load().hasValue());
  EXPECT_EQ(journal.recorded(), 0u);

  // CRC-failed payload: the discard is journaled with path + reason.
  std::string full;
  {
    std::ifstream in(path_, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  full[full.size() - 2] ^= 0x01;
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << full;
  }
  ASSERT_FALSE(store.load().hasValue());
  {
    const auto events = journal.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].severity, obs::Severity::kWarn);
    EXPECT_EQ(events[0].what, "checkpoint discarded");
    ASSERT_GE(events[0].fields.size(), 2u);
    EXPECT_EQ(events[0].fields[0].first, "path");
    EXPECT_EQ(events[0].fields[0].second, path_);
    EXPECT_EQ(events[0].fields[1].first, "reason");
    EXPECT_FALSE(events[0].fields[1].second.empty());
  }

  // Well-framed but malformed payload: also journaled (second layer).
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << CheckpointStore::frame("this is not a checkpoint");
  }
  ASSERT_FALSE(store.load().hasValue());
  EXPECT_EQ(journal.recorded(), 2u);

  // A *missing* checkpoint is a normal first boot, not an incident.
  std::remove(path_.c_str());
  ASSERT_FALSE(store.load().hasValue());
  EXPECT_EQ(journal.recorded(), 2u);
}

TEST_F(CheckpointStoreTest, SaveIntoMissingDirectoryThrowsAndPreservesOld) {
  CheckpointStore good(path_);
  good.save(sampleCheckpoint());

  CheckpointStore bad("/nonexistent_dir_tagspin/ckpt");
  EXPECT_THROW(bad.save(sampleCheckpoint()), std::runtime_error);

  // The unrelated good file is of course still loadable.
  EXPECT_TRUE(good.load().hasValue());
}

TEST(CheckpointStoreSim, EnospcMidSaveKeepsPreviousCheckpointAndNoTmpLitter) {
  sim::SimIoEnv env;
  CheckpointStore store("calib.ckpt", &env);
  store.save(sampleCheckpoint());  // sequence 17, fully durable

  core::CalibrationCheckpoint next = sampleCheckpoint();
  next.sequence = 99;

  // Run the disk full at the tmp write, then at the tmp fsync.  Each failed
  // save must throw, leave the previous checkpoint loadable, and leave no
  // .tmp behind for the next attempt to trip over.
  for (const uint64_t offset : {uint64_t(1), uint64_t(2)}) {
    const uint64_t base = env.opCount();
    env.setFaults({{base + offset, sim::FaultKind::kEnospc}});
    EXPECT_THROW(store.save(next), std::runtime_error);
    const auto loaded = store.load();
    ASSERT_TRUE(loaded.hasValue());
    EXPECT_EQ(loaded->sequence, 17u);
    EXPECT_FALSE(env.exists("calib.ckpt.tmp"));
  }

  // Space freed: the retry goes through cleanly.
  env.setFaults({});
  store.save(next);
  const auto loaded = store.load();
  ASSERT_TRUE(loaded.hasValue());
  EXPECT_EQ(loaded->sequence, 99u);
  EXPECT_FALSE(env.exists("calib.ckpt.tmp"));
}

TEST(CheckpointStoreSim, EintrStormDuringSaveIsAbsorbed) {
  sim::SimIoEnv env;
  CheckpointStore store("calib.ckpt", &env);
  // One EINTR each on open, write, fsync and dirsync (retries shift every
  // later op index by one).
  env.setFaults({{0, sim::FaultKind::kEintr},
                 {2, sim::FaultKind::kEintr},
                 {4, sim::FaultKind::kEintr},
                 {8, sim::FaultKind::kEintr}});
  store.save(sampleCheckpoint());
  EXPECT_EQ(env.faultsInjected(), 4u);
  const auto loaded = store.load();
  ASSERT_TRUE(loaded.hasValue());
  EXPECT_EQ(loaded->sequence, 17u);
}

TEST(CheckpointStoreSim, PowerCutAtEveryBoundaryLeavesOldOrNewCheckpoint) {
  // Boundaries of the second save, measured on a probe run.
  uint64_t firstOps = 0;
  uint64_t totalOps = 0;
  core::CalibrationCheckpoint next = sampleCheckpoint();
  next.sequence = 99;
  {
    sim::SimIoEnv probe;
    CheckpointStore store("calib.ckpt", &probe);
    store.save(sampleCheckpoint());
    firstOps = probe.opCount();
    store.save(next);
    totalOps = probe.opCount();
  }
  ASSERT_GT(totalOps, firstOps);

  for (uint64_t k = firstOps; k < totalOps; ++k) {
    sim::SimIoEnv env;
    CheckpointStore store("calib.ckpt", &env);
    store.save(sampleCheckpoint());
    env.setCrashAtOp(static_cast<int64_t>(k));
    try {
      store.save(next);
      FAIL() << "power cut at op " << k << " did not surface";
    } catch (const sim::SimCrash&) {
    }
    for (const sim::CrashPersist::Mode mode :
         {sim::CrashPersist::Mode::kNone, sim::CrashPersist::Mode::kAll,
          sim::CrashPersist::Mode::kMetaOnly, sim::CrashPersist::Mode::kPrefix,
          sim::CrashPersist::Mode::kSubset}) {
      sim::SimIoEnv recovery(env.crashImage({mode, 3 * k + 1}));
      CheckpointStore after("calib.ckpt", &recovery);
      const auto loaded = after.load();
      ASSERT_TRUE(loaded.hasValue())
          << "cut at op " << k << ", mode " << sim::persistModeName(mode);
      EXPECT_TRUE(loaded->sequence == 17u || loaded->sequence == 99u)
          << "cut at op " << k << ", mode " << sim::persistModeName(mode)
          << ": sequence " << loaded->sequence;
    }
  }
}

TEST(CheckpointFrame, RoundTrip) {
  const std::string payload = "hello checkpoint\nwith lines\n";
  const auto back = CheckpointStore::unframe(CheckpointStore::frame(payload));
  ASSERT_TRUE(back.hasValue());
  EXPECT_EQ(*back, payload);
}

TEST(CheckpointFrame, RejectsWrongMagic) {
  std::string framed = CheckpointStore::frame("payload");
  framed[0] = 'X';
  EXPECT_FALSE(CheckpointStore::unframe(framed).hasValue());
}

TEST(Crc32, KnownVectors) {
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("")), 0x00000000u);
  EXPECT_NE(crc32(std::string("a")), crc32(std::string("b")));
}

}  // namespace
}  // namespace tagspin::runtime
