// FleetManager containment tests: retry-budget pacing, quarantine
// eject/readmit, admission control, and multi-shard kill -9 + restore.
// The worker-pool parity test runs the same fleet with 0 and 2 worker
// threads and demands identical results -- under `ctest -L tsan` that is
// also the ThreadSanitizer's view of the shard/pool handoff.
#include "runtime/fleet.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "geom/angles.hpp"
#include "rfid/llrp.hpp"

namespace tagspin::runtime {
namespace {

const rfid::Epc kTag0 = rfid::Epc::forSimulatedTag(0);
const rfid::Epc kTag1 = rfid::Epc::forSimulatedTag(1);

core::DeploymentFile twoRigDeployment() {
  core::DeploymentFile d;
  core::RigSpec rig;
  rig.center = {-0.2, 0.0, 0.0};
  rig.kinematics = {0.10, 0.5, 0.0, geom::kPi / 2.0};
  d.rigs[kTag0] = rig;
  rig.center = {0.2, 0.0, 0.0};
  d.rigs[kTag1] = rig;
  return d;
}

rfid::TagReport report(const rfid::Epc& epc, double t, double phase) {
  rfid::TagReport r;
  r.epc = epc;
  r.timestampS = t;
  r.phaseRad = phase;
  r.rssiDbm = -60.0;
  r.channelIndex = 3;
  r.frequencyHz = 920e6;
  r.antennaPort = 0;
  return r;
}

std::vector<uint8_t> frameWith(int reports, double baseT) {
  rfid::ReportStream batch;
  for (int i = 0; i < reports; ++i) {
    batch.push_back(report(kTag0, baseT + 0.01 * i,
                           geom::wrapTwoPi(0.1 * i)));
  }
  return rfid::llrp::encodeStream(batch);
}

/// Connects instantly, then closes the connection on every poll until
/// healAtS; after healing, delivers `frame` once per (re)connect and idles.
struct FlapTransport final : Transport {
  double healAtS = 1e18;
  std::vector<uint8_t> frame;
  bool connected = false;
  bool delivered = false;

  bool connect(double) override {
    connected = true;
    delivered = false;
    return true;
  }
  TransportRead poll(double nowS) override {
    if (!connected) return {TransportStatus::kClosed, {}};
    if (nowS < healAtS) {
      connected = false;
      return {TransportStatus::kClosed, {}};
    }
    if (!delivered && !frame.empty()) {
      delivered = true;
      return {TransportStatus::kOk, frame};
    }
    return {TransportStatus::kIdle, {}};
  }
  void close() override { connected = false; }
};

/// Every connect attempt fails (a reader that is simply gone).
struct DeadTransport final : Transport {
  bool connect(double) override { return false; }
  TransportRead poll(double) override {
    return {TransportStatus::kClosed, {}};
  }
  void close() override {}
};

/// Delivers one prebuilt frame after a healthy connect, then idles.
struct OneShotTransport final : Transport {
  std::vector<uint8_t> frame;
  bool connected = false;
  bool delivered = false;

  bool connect(double) override {
    connected = true;
    return true;
  }
  TransportRead poll(double) override {
    if (!connected) return {TransportStatus::kClosed, {}};
    if (!delivered && !frame.empty()) {
      delivered = true;
      return {TransportStatus::kOk, frame};
    }
    return {TransportStatus::kIdle, {}};
  }
  void close() override { connected = false; }
};

FleetConfig testFleetConfig() {
  FleetConfig c;
  c.shards = 2;
  c.supervisor.checkpointIntervalS = 0.0;
  c.supervisor.session.noReportTimeoutS = 1e9;  // idle transports are fine
  c.fixIntervalS = 1e9;  // these tests exercise containment, not fixes
  c.checkpointIntervalS = 0.0;
  return c;
}

std::string tempDir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(TokenBucket, BurstThenRefillRatePacesAcquisition) {
  TokenBucket bucket(2.0, 4.0);
  int granted = 0;
  for (int i = 0; i < 10; ++i) {
    if (bucket.tryAcquire(0.0)) ++granted;
  }
  EXPECT_EQ(granted, 4);  // the burst, nothing more at t=0

  // Over the next 3 seconds the refill rate is the only supply.
  granted = 0;
  for (double t = 0.1; t <= 3.0 + 1e-9; t += 0.1) {
    if (bucket.tryAcquire(t)) ++granted;
  }
  EXPECT_GE(granted, 5);  // ~2/s * 3s
  EXPECT_LE(granted, 7);
}

TEST(Fleet, AdmissionControlCapsFleetAndRejectsDuplicates) {
  FleetConfig config = testFleetConfig();
  config.maxSessions = 4;  // 2 shards -> 2 sessions per shard
  FleetManager fleet(config, twoRigDeployment());

  const auto factory = [] { return std::make_unique<OneShotTransport>(); };
  EXPECT_TRUE(fleet.registerSession("a", factory));
  EXPECT_TRUE(fleet.registerSession("b", factory));
  EXPECT_FALSE(fleet.registerSession("a", factory));  // duplicate name
  EXPECT_TRUE(fleet.registerSession("c", factory));
  EXPECT_TRUE(fleet.registerSession("d", factory));
  EXPECT_FALSE(fleet.registerSession("e", factory));  // fleet full

  EXPECT_EQ(fleet.sessionCount(), 4u);
  EXPECT_EQ(fleet.stats().admitted, 4u);
  EXPECT_EQ(fleet.stats().admissionRejected, 2u);

  // Placement is least-loaded: both shards got two sessions.
  const auto views = fleet.sessions();
  size_t shard0 = 0;
  for (const auto& v : views) {
    if (v.shard == 0) ++shard0;
  }
  EXPECT_EQ(shard0, 2u);
}

TEST(Fleet, RetryBudgetPacesConnectStormAcrossShard) {
  FleetConfig config = testFleetConfig();
  config.shards = 1;
  config.maxSessions = 8;
  config.retryBudget.tokensPerSecond = 2.0;
  config.retryBudget.burst = 6.0;
  config.supervisor.session.connectTimeoutS = 0.1;
  config.supervisor.session.backoff.baseDelayS = 0.1;
  config.supervisor.session.backoff.maxDelayS = 0.2;
  config.supervisor.session.breaker.failuresToOpen = 1000000;
  FleetManager fleet(config, twoRigDeployment());
  for (int i = 0; i < 8; ++i) {
    fleet.registerSession("dead" + std::to_string(i),
                          [] { return std::make_unique<DeadTransport>(); });
  }

  const double spanS = 10.0;
  for (double t = 0.0; t <= spanS + 1e-9; t += 0.1) fleet.tick(t);

  uint64_t attempts = 0;
  for (size_t i = 0; i < 8; ++i) {
    const Supervisor* sup =
        fleet.supervisor("dead" + std::to_string(i));
    ASSERT_NE(sup, nullptr);
    attempts += sup->session(0).stats().connectAttempts;
  }
  // Supply over the run is one free first attempt per session plus the
  // bucket's burst and refill; every attempt beyond it must have been
  // denied by the gate, not queued up as connect work.
  const double supply =
      8.0 + config.retryBudget.burst +
      config.retryBudget.tokensPerSecond * spanS;
  EXPECT_GT(attempts, 8u);  // the storm did keep retrying
  EXPECT_LE(static_cast<double>(attempts), supply + 1.0);
  EXPECT_GT(fleet.stats().budgetDenied, 0u);
}

TEST(Fleet, QuarantineEjectsFlapperAndReadmitsAfterProbe) {
  FleetConfig config = testFleetConfig();
  config.shards = 1;
  config.maxSessions = 2;
  config.retryBudget.tokensPerSecond = 100.0;  // decouple budget from flaps
  config.retryBudget.burst = 100.0;
  config.supervisor.session.backoff.baseDelayS = 0.1;
  config.supervisor.session.backoff.maxDelayS = 0.3;
  config.supervisor.session.breaker.failuresToOpen = 1000000;
  config.quarantine.flapThreshold = 6;
  config.quarantine.flapWindowS = 30.0;
  config.quarantine.probeBaseS = 2.0;
  config.quarantine.probeWindowS = 1.0;
  FleetManager fleet(config, twoRigDeployment());

  FlapTransport* flappy = nullptr;
  fleet.registerSession("flappy", [&flappy] {
    auto t = std::make_unique<FlapTransport>();
    t->healAtS = 8.0;
    t->frame = frameWith(4, 0.0);
    flappy = t.get();
    return t;
  });
  fleet.registerSession("steady", [] {
    auto t = std::make_unique<OneShotTransport>();
    t->frame = frameWith(4, 10.0);
    return t;
  });

  double ejectedAtS = -1.0;
  double readmittedAtS = -1.0;
  for (double t = 0.0; t <= 30.0 + 1e-9; t += 0.1) {
    fleet.tick(t);
    const auto views = fleet.sessions();
    for (const auto& v : views) {
      if (v.name != "flappy") continue;
      if (v.quarantined && ejectedAtS < 0.0) ejectedAtS = t;
      if (!v.quarantined && ejectedAtS >= 0.0 && readmittedAtS < 0.0) {
        readmittedAtS = t;
      }
    }
  }

  EXPECT_GT(fleet.stats().ejections, 0u);
  EXPECT_GT(fleet.stats().readmissions, 0u);
  EXPECT_GT(fleet.stats().probes, 0u);
  ASSERT_GE(ejectedAtS, 0.0);
  ASSERT_GE(readmittedAtS, 0.0);
  EXPECT_LT(ejectedAtS, 8.0);        // ejected while still flapping
  EXPECT_GT(readmittedAtS, 8.0);     // readmitted only after healing
  EXPECT_EQ(fleet.stats().quarantinedNow, 0u);

  // The readmitted session is live again and its frame was ingested.
  const Supervisor* sup = fleet.supervisor("flappy");
  ASSERT_NE(sup, nullptr);
  EXPECT_EQ(sup->session(0).state(), SessionState::kStreaming);
  EXPECT_EQ(sup->tagSnapshotCount(kTag0), 4u);

  // The healthy neighbor never noticed: no flaps, stream intact.
  const Supervisor* steady = fleet.supervisor("steady");
  ASSERT_NE(steady, nullptr);
  EXPECT_EQ(steady->session(0).stats().disconnects, 0u);
  EXPECT_EQ(steady->tagSnapshotCount(kTag0), 4u);
}

TEST(Fleet, MultiShardKillAndRestoreRecoversEverySession) {
  const std::string dir = tempDir("tagspin_fleet_restore");
  FleetConfig config = testFleetConfig();
  config.shards = 2;
  config.maxSessions = 4;
  config.checkpointDir = dir;

  const auto makeFactory = [](int reports, double baseT) {
    return [reports, baseT] {
      auto t = std::make_unique<OneShotTransport>();
      t->frame = frameWith(reports, baseT);
      return t;
    };
  };

  {
    FleetManager fleet(config, twoRigDeployment());
    for (int i = 0; i < 4; ++i) {
      fleet.registerSession("s" + std::to_string(i),
                            makeFactory(i + 1, 10.0 * i));
    }
    fleet.tick(0.0);
    fleet.tick(0.1);
    for (int i = 0; i < 4; ++i) {
      const Supervisor* sup = fleet.supervisor("s" + std::to_string(i));
      ASSERT_NE(sup, nullptr);
      ASSERT_EQ(sup->tagSnapshotCount(kTag0), static_cast<size_t>(i + 1));
    }
    fleet.shutdown(0.2);  // writes one batched checkpoint per shard
  }  // "kill -9": the whole fleet object is gone

  ASSERT_TRUE(std::filesystem::exists(dir + "/fleet_shard0.ckpt"));
  ASSERT_TRUE(std::filesystem::exists(dir + "/fleet_shard1.ckpt"));

  FleetManager resumed(config, twoRigDeployment());
  for (int i = 0; i < 4; ++i) {
    // Fresh, empty transports: restored state must come from the files.
    resumed.registerSession("s" + std::to_string(i), makeFactory(0, 0.0));
  }
  EXPECT_EQ(resumed.restore(), 4u);
  for (int i = 0; i < 4; ++i) {
    const Supervisor* sup = resumed.supervisor("s" + std::to_string(i));
    ASSERT_NE(sup, nullptr);
    EXPECT_EQ(sup->tagSnapshotCount(kTag0), static_cast<size_t>(i + 1))
        << "session s" << i << " lost state across the restart";
  }
  EXPECT_EQ(resumed.stats().checkpointFailures, 0u);

  std::filesystem::remove_all(dir);
}

/// Connects instantly, idles until deliverAtS, then delivers one prebuilt
/// frame and idles forever.  Lets a test measure the fleet's pre-growth
/// memory footprint before the frame lands.
struct DelayedTransport final : Transport {
  double deliverAtS = 0.0;
  std::vector<uint8_t> frame;
  bool connected = false;
  bool delivered = false;

  bool connect(double) override {
    connected = true;
    return true;
  }
  TransportRead poll(double nowS) override {
    if (!connected) return {TransportStatus::kClosed, {}};
    if (!delivered && nowS >= deliverAtS && !frame.empty()) {
      delivered = true;
      return {TransportStatus::kOk, frame};
    }
    return {TransportStatus::kIdle, {}};
  }
  void close() override { connected = false; }
};

/// One shard, two sessions: a "grower" whose frame lands at t=1.0 and blows
/// up its snapshot store, and a small "steady" neighbor.  Shared topology
/// for the memory-budget tests below.
FleetConfig memFleetConfig() {
  FleetConfig config = testFleetConfig();
  config.shards = 1;
  config.maxSessions = 2;
  // Small ingest queues so the footprint is dominated by snapshot growth,
  // not by fixed ring capacity.
  config.supervisor.session.queueCapacity = 32;
  return config;
}

void registerMemFleetSessions(FleetManager& fleet) {
  fleet.registerSession("grower", [] {
    auto t = std::make_unique<DelayedTransport>();
    t->deliverAtS = 1.0;
    t->frame = frameWith(600, 0.0);
    return t;
  });
  fleet.registerSession("steady", [] {
    auto t = std::make_unique<OneShotTransport>();
    t->frame = frameWith(4, 10.0);
    return t;
  });
}

TEST(Fleet, MemoryBudgetTrimsUnderPressureWithoutLosingSessions) {
  core::PosixMemEnv env;

  // Calibration pass: same fleet, unlimited budget.  Measure the footprint
  // before and after the grower's frame lands so the budget for the real
  // pass can be pinned strictly between the two.
  uint64_t baseUsed = 0;
  uint64_t peakUsed = 0;
  {
    FleetConfig config = memFleetConfig();
    config.mem = &env;
    FleetManager fleet(config, twoRigDeployment());
    registerMemFleetSessions(fleet);
    for (double t = 0.0; t <= 0.5 + 1e-9; t += 0.1) fleet.tick(t);
    baseUsed = fleet.stats().memUsedBytes;
    for (double t = 0.6; t <= 3.0 + 1e-9; t += 0.1) fleet.tick(t);
    peakUsed = fleet.stats().memUsedBytes;
    // Accounting is on, and fault-free: bytes tracked, nothing denied.
    EXPECT_GT(baseUsed, 0u);
    EXPECT_EQ(fleet.stats().memDeniedReserves, 0u);
    EXPECT_EQ(fleet.stats().memTrims, 0u);
  }
  ASSERT_GT(peakUsed, baseUsed) << "the grower's frame never grew anything";

  // Budgeted pass: room for the base footprint plus half the growth.  The
  // grower's reservation must be denied at some point; the fleet's answer
  // is decimation (trim), never a crash and never collateral damage.
  const uint64_t budget = baseUsed + (peakUsed - baseUsed) / 2;
  FleetConfig config = memFleetConfig();
  config.mem = &env;
  config.memBudgetPerShardBytes = budget;
  FleetManager fleet(config, twoRigDeployment());
  registerMemFleetSessions(fleet);
  for (double t = 0.0; t <= 3.0 + 1e-9; t += 0.1) {
    fleet.tick(t);
    // Hard invariant, every tick: the arena never exceeds its budget.
    ASSERT_LE(fleet.stats().memUsedBytes, budget) << "at t=" << t;
  }

  const FleetStats stats = fleet.stats();
  EXPECT_GT(stats.memDeniedReserves, 0u);
  EXPECT_GT(stats.memTrims, 0u);
  EXPECT_EQ(stats.badAllocCaught, 0u);
  EXPECT_LE(stats.memPeakBytes, budget);
  EXPECT_GE(stats.memPeakBytes, stats.memUsedBytes);

  // No session was lost, and the pressure stayed contained to the grower:
  // the steady neighbor keeps its stream and is never quarantined.
  EXPECT_EQ(fleet.sessionCount(), 2u);
  for (const auto& v : fleet.sessions()) {
    if (v.name == "steady") EXPECT_FALSE(v.quarantined);
  }
  const Supervisor* steady = fleet.supervisor("steady");
  ASSERT_NE(steady, nullptr);
  EXPECT_EQ(steady->tagSnapshotCount(kTag0), 4u);
  EXPECT_EQ(steady->session(0).state(), SessionState::kStreaming);

  // The trims landed on the grower: its snapshot store was decimated below
  // what the unlimited run kept.
  const Supervisor* grower = fleet.supervisor("grower");
  ASSERT_NE(grower, nullptr);
  EXPECT_LT(grower->tagSnapshotCount(kTag0), 600u);
  EXPECT_GT(grower->tagSnapshotCount(kTag0), 0u);
}

TEST(Fleet, MemoryAccountingOffAndUnlimitedEnvBehaveIdentically) {
  // Three fleets over the same schedule: accounting off (mem = nullptr,
  // budgets 0 -- the pre-seam configuration), and accounting on with an
  // unlimited PosixMemEnv.  The seam must be a pure observer: identical
  // session outcomes, and the off-fleet reports all-zero memory counters.
  const auto run = [](core::MemEnv* mem) {
    FleetConfig config = memFleetConfig();
    config.mem = mem;
    auto fleet = std::make_unique<FleetManager>(config, twoRigDeployment());
    registerMemFleetSessions(*fleet);
    for (double t = 0.0; t <= 3.0 + 1e-9; t += 0.1) fleet->tick(t);
    return fleet;
  };

  core::PosixMemEnv env;
  const auto off = run(nullptr);
  const auto on = run(&env);

  const FleetStats offStats = off->stats();
  EXPECT_EQ(offStats.memUsedBytes, 0u);
  EXPECT_EQ(offStats.memPeakBytes, 0u);
  EXPECT_EQ(offStats.memDeniedReserves, 0u);
  EXPECT_EQ(offStats.memTrims, 0u);
  EXPECT_EQ(offStats.memEjections, 0u);
  EXPECT_EQ(off->memShedLevel(), ShedLevel::kNone);

  const FleetStats onStats = on->stats();
  EXPECT_GT(onStats.memUsedBytes, 0u);
  EXPECT_EQ(onStats.memDeniedReserves, 0u);
  EXPECT_EQ(on->memShedLevel(), ShedLevel::kNone);

  const auto offViews = off->sessions();
  const auto onViews = on->sessions();
  ASSERT_EQ(offViews.size(), onViews.size());
  for (size_t i = 0; i < offViews.size(); ++i) {
    EXPECT_EQ(offViews[i].name, onViews[i].name);
    EXPECT_EQ(offViews[i].state, onViews[i].state) << i;
    EXPECT_EQ(offViews[i].quarantined, onViews[i].quarantined) << i;
    EXPECT_EQ(offViews[i].fixes, onViews[i].fixes) << i;
  }
  for (const char* name : {"grower", "steady"}) {
    const Supervisor* a = off->supervisor(name);
    const Supervisor* b = on->supervisor(name);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->tagSnapshotCount(kTag0), b->tagSnapshotCount(kTag0)) << name;
  }
}

/// Run a small mixed fleet (healthy + dead + flapping) and return the
/// per-session views plus aggregate stats.
std::pair<std::vector<FleetManager::SessionView>, FleetStats> runMixedFleet(
    size_t workerThreads) {
  FleetConfig config = testFleetConfig();
  config.shards = 4;
  config.maxSessions = 12;
  config.workerThreads = workerThreads;
  config.supervisor.session.connectTimeoutS = 0.1;
  config.supervisor.session.backoff.baseDelayS = 0.1;
  config.supervisor.session.backoff.maxDelayS = 0.3;
  config.supervisor.session.breaker.failuresToOpen = 1000000;
  FleetManager fleet(config, twoRigDeployment());
  for (int i = 0; i < 12; ++i) {
    const std::string name = "m" + std::to_string(i);
    if (i % 3 == 0) {
      fleet.registerSession(name, [] {
        return std::make_unique<DeadTransport>();
      });
    } else if (i % 3 == 1) {
      fleet.registerSession(name, [i] {
        auto t = std::make_unique<FlapTransport>();
        t->healAtS = 4.0;
        t->frame = frameWith(3, 5.0 * i);
        return t;
      });
    } else {
      fleet.registerSession(name, [i] {
        auto t = std::make_unique<OneShotTransport>();
        t->frame = frameWith(5, 5.0 * i);
        return t;
      });
    }
  }
  for (double t = 0.0; t <= 12.0 + 1e-9; t += 0.1) fleet.tick(t);
  return {fleet.sessions(), fleet.stats()};
}

TEST(Fleet, WorkerPoolMatchesInlineExecutionExactly) {
  const auto [inlineViews, inlineStats] = runMixedFleet(0);
  const auto [pooledViews, pooledStats] = runMixedFleet(2);

  ASSERT_EQ(inlineViews.size(), pooledViews.size());
  for (size_t i = 0; i < inlineViews.size(); ++i) {
    EXPECT_EQ(inlineViews[i].name, pooledViews[i].name);
    EXPECT_EQ(inlineViews[i].shard, pooledViews[i].shard);
    EXPECT_EQ(inlineViews[i].state, pooledViews[i].state) << i;
    EXPECT_EQ(inlineViews[i].quarantined, pooledViews[i].quarantined) << i;
    EXPECT_EQ(inlineViews[i].flapEvents, pooledViews[i].flapEvents) << i;
  }
  EXPECT_EQ(inlineStats.ejections, pooledStats.ejections);
  EXPECT_EQ(inlineStats.readmissions, pooledStats.readmissions);
  EXPECT_EQ(inlineStats.budgetDenied, pooledStats.budgetDenied);
  EXPECT_EQ(inlineStats.sessionsDeferred, pooledStats.sessionsDeferred);
}

}  // namespace
}  // namespace tagspin::runtime
