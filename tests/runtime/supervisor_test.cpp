#include "runtime/supervisor.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <filesystem>
#include <memory>
#include <vector>

#include "../core/synthetic.hpp"
#include "geom/angles.hpp"
#include "rf/constants.hpp"
#include "rfid/llrp.hpp"

namespace tagspin::runtime {
namespace {

const rfid::Epc kTag0 = rfid::Epc::forSimulatedTag(0);
const rfid::Epc kTag1 = rfid::Epc::forSimulatedTag(1);
const rfid::Epc kUnknown = rfid::Epc::forSimulatedTag(42);

core::DeploymentFile twoRigDeployment() {
  core::DeploymentFile d;
  core::RigSpec rig;
  rig.center = {-0.2, 0.0, 0.0};
  rig.kinematics = {0.10, 0.5, 0.0, geom::kPi / 2.0};
  d.rigs[kTag0] = rig;
  rig.center = {0.2, 0.0, 0.0};
  d.rigs[kTag1] = rig;
  return d;
}

rfid::TagReport report(const rfid::Epc& epc, double t, double phase,
                       double rssi = -60.0) {
  rfid::TagReport r;
  r.epc = epc;
  r.timestampS = t;
  r.phaseRad = phase;
  r.rssiDbm = rssi;
  r.channelIndex = 3;
  r.frequencyHz = 920e6;
  r.antennaPort = 0;
  return r;
}

// Scripted transport shared with session_test in spirit: chunks are
// delivered one per poll; close() can permanently kill the endpoint.
struct ScriptedTransport final : Transport {
  std::deque<std::vector<uint8_t>> chunks;
  bool connected = false;
  bool peerClosed = false;
  bool dieOnClose = false;  // after close(), connect() fails forever
  bool dead = false;

  bool connect(double) override {
    if (dead) return false;
    connected = true;
    return true;
  }
  TransportRead poll(double) override {
    if (peerClosed) {
      peerClosed = false;
      connected = false;
      return {TransportStatus::kClosed, {}};
    }
    if (!connected) return {TransportStatus::kClosed, {}};
    if (chunks.empty()) return {TransportStatus::kIdle, {}};
    TransportRead r;
    r.status = TransportStatus::kOk;
    r.bytes = std::move(chunks.front());
    chunks.pop_front();
    return r;
  }
  void close() override {
    connected = false;
    if (dieOnClose) dead = true;
  }
};

SupervisorConfig testConfig() {
  SupervisorConfig c;
  c.checkpointIntervalS = 0.0;  // explicit saves only (via shutdown)
  c.session.noReportTimeoutS = 1e9;  // quiet transports are fine in tests
  return c;
}

std::string tempCkpt(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Supervisor, IngestsKnownTagsDropsUnknownWeakAndDuplicate) {
  Supervisor sup(testConfig(), twoRigDeployment());
  auto transport = std::make_unique<ScriptedTransport>();
  ScriptedTransport* tp = transport.get();
  // Factory is unused until a session fails; hand the premade one over.
  std::unique_ptr<ScriptedTransport> owned = std::move(transport);
  sup.addSession("r0", [&owned] { return std::move(owned); });

  rfid::ReportStream batch;
  batch.push_back(report(kTag0, 0.10, 0.5));
  batch.push_back(report(kTag0, 0.10, 0.5));       // exact duplicate
  batch.push_back(report(kTag1, 0.20, 1.5));
  batch.push_back(report(kUnknown, 0.30, 1.0));    // not in the deployment
  batch.push_back(report(kTag0, 0.40, 2.0, -99.0));  // below the RSSI floor
  tp->chunks.push_back(rfid::llrp::encodeStream(batch));

  sup.tick(0.0);
  sup.tick(0.1);

  EXPECT_EQ(sup.stats().reportsSeen, 5u);
  EXPECT_EQ(sup.stats().reportsIngested, 2u);
  EXPECT_EQ(sup.stats().duplicatesSuppressed, 1u);
  EXPECT_EQ(sup.stats().unknownEpcDropped, 1u);
  EXPECT_EQ(sup.stats().weakRssiDropped, 1u);
  EXPECT_EQ(sup.tagSnapshotCount(kTag0), 1u);
  EXPECT_EQ(sup.tagSnapshotCount(kTag1), 1u);
  EXPECT_NEAR(sup.lastReportTimestampS(), 0.20, 1e-5);
}

TEST(Supervisor, ReplacesTrippedSessionWithoutLosingProgress) {
  SupervisorConfig config = testConfig();
  config.session.connectTimeoutS = 0.4;
  config.session.backoff.baseDelayS = 0.2;
  config.session.backoff.maxDelayS = 0.5;
  config.session.breaker.failuresToOpen = 1;
  config.session.breaker.openCooldownS = 0.3;
  config.session.breaker.halfOpenFailuresToTrip = 1;

  int built = 0;
  ScriptedTransport* current = nullptr;
  const TransportFactory factory = [&built, &current] {
    auto t = std::make_unique<ScriptedTransport>();
    current = t.get();
    ++built;
    return t;
  };

  Supervisor sup(config, twoRigDeployment());
  sup.addSession("r0", factory);
  ASSERT_EQ(built, 1);

  // First transport streams a little, then the peer drops it and the
  // endpoint dies, so every reconnect fails until the breaker trips.
  rfid::ReportStream batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(report(kTag0, 0.01 * i, 0.1 * i));
  }
  current->chunks.push_back(rfid::llrp::encodeStream(batch));
  current->dieOnClose = true;

  sup.tick(0.0);
  sup.tick(0.1);
  ASSERT_EQ(sup.tagSnapshotCount(kTag0), 10u);
  current->peerClosed = true;

  double t = 0.1;
  while (sup.stats().sessionsRestarted == 0 && t < 60.0) {
    t += 0.1;
    sup.tick(t);
  }
  EXPECT_EQ(sup.stats().sessionsRestarted, 1u);
  EXPECT_EQ(built, 2);

  // Replacement session streams fresh data; earlier progress survived.
  rfid::ReportStream more;
  for (int i = 0; i < 5; ++i) {
    more.push_back(report(kTag0, 1.0 + 0.01 * i, 0.05 + 0.1 * i));
  }
  current->chunks.push_back(rfid::llrp::encodeStream(more));
  sup.tick(t + 0.1);
  sup.tick(t + 0.2);
  EXPECT_EQ(sup.tagSnapshotCount(kTag0), 15u);
}

TEST(Supervisor, CheckpointRestoreResumesWithoutReacquisition) {
  const std::string path = tempCkpt("tagspin_supervisor_test.ckpt");
  std::remove(path.c_str());
  CheckpointStore store(path);

  rfid::ReportStream batch;
  for (int i = 0; i < 20; ++i) {
    batch.push_back(report(kTag0, 0.05 * i, geom::wrapTwoPi(0.3 * i)));
  }

  {
    Supervisor sup(testConfig(), twoRigDeployment(), &store);
    auto transport = std::make_unique<ScriptedTransport>();
    transport->chunks.push_back(rfid::llrp::encodeStream(batch));
    std::unique_ptr<ScriptedTransport> owned = std::move(transport);
    sup.addSession("r0", [&owned] { return std::move(owned); });
    sup.tick(0.0);
    sup.tick(0.1);
    ASSERT_EQ(sup.tagSnapshotCount(kTag0), 20u);
    sup.shutdown(0.2);  // saves the final checkpoint
  }  // "kill": the supervisor object is gone

  Supervisor resumed(testConfig(), twoRigDeployment(), &store);
  const auto restored = resumed.restore();
  ASSERT_TRUE(restored.hasValue());
  EXPECT_EQ(resumed.tagSnapshotCount(kTag0), 20u);
  EXPECT_NEAR(resumed.lastReportTimestampS(), 0.05 * 19, 1e-5);

  // The reader replays the very same reports (the revolution in flight):
  // every one must dedup against the restored state, none re-ingested.
  auto transport = std::make_unique<ScriptedTransport>();
  transport->chunks.push_back(rfid::llrp::encodeStream(batch));
  std::unique_ptr<ScriptedTransport> owned = std::move(transport);
  resumed.addSession("r0", [&owned] { return std::move(owned); });
  resumed.tick(1.0);
  resumed.tick(1.1);
  EXPECT_EQ(resumed.stats().duplicatesSuppressed, 20u);
  EXPECT_EQ(resumed.stats().reportsIngested, 0u);
  EXPECT_EQ(resumed.tagSnapshotCount(kTag0), 20u);

  std::remove(path.c_str());
}

TEST(Supervisor, RestoreWithoutFileIsAFreshStart) {
  const std::string path = tempCkpt("tagspin_supervisor_missing.ckpt");
  std::remove(path.c_str());
  CheckpointStore store(path);
  Supervisor sup(testConfig(), twoRigDeployment(), &store);
  const auto restored = sup.restore();
  ASSERT_FALSE(restored.hasValue());
  EXPECT_EQ(restored.code(), core::ErrorCode::kCheckpointMissing);
}

TEST(Supervisor, DecimationBoundsPerTagMemory) {
  SupervisorConfig config = testConfig();
  config.maxSnapshotsPerTag = 64;
  Supervisor sup(config, twoRigDeployment());
  auto transport = std::make_unique<ScriptedTransport>();
  ScriptedTransport* tp = transport.get();
  std::unique_ptr<ScriptedTransport> owned = std::move(transport);
  sup.addSession("r0", [&owned] { return std::move(owned); });

  rfid::ReportStream batch;
  for (int i = 0; i < 300; ++i) {
    batch.push_back(report(kTag0, 0.01 * i, geom::wrapTwoPi(0.05 * i)));
  }
  tp->chunks.push_back(rfid::llrp::encodeStream(batch));
  sup.tick(0.0);
  sup.tick(0.1);

  EXPECT_LT(sup.tagSnapshotCount(kTag0), 64u);
  EXPECT_GE(sup.stats().decimationsApplied, 1u);
  // Earliest and latest samples both survive thinning (arc coverage).
  EXPECT_GT(sup.tagSnapshotCount(kTag0), 10u);
}

/// Reports whose phases follow the paper's signal model for a rig at
/// `rig.center` watching `reader` -- what a real spin streams over LLRP.
rfid::ReportStream spinReports(const rfid::Epc& epc, const core::RigSpec& rig,
                               const geom::Vec3& reader, uint64_t seed) {
  core::testing::SyntheticConfig sc;
  sc.distanceM = (reader.xy() - rig.center.xy()).norm();
  sc.readerAzimuth = geom::azimuthOf(rig.center, reader);
  sc.noiseStd = 0.05;
  sc.count = 400;
  sc.seed = seed;
  sc.thetaDiv = 0.4 + 0.9 * static_cast<double>(seed);
  rfid::ReportStream out;
  for (const core::Snapshot& s :
       core::testing::makeSnapshots(sc, rig.kinematics)) {
    // Frequency chosen so the ingest-side wavelength matches the model's.
    out.push_back(
        report(epc, s.timeS, s.phaseRad, -60.0));
    out.back().frequencyHz = rf::kSpeedOfLight / sc.lambdaM;
  }
  return out;
}

TEST(Supervisor, QuarantineTriggersRespinAndCachesLastFix) {
  // Three rigs; tag 2's stream is a 50/50 interleave of the true reader
  // and a ghost -- two near-equal spectrum lobes the self-diagnosis must
  // quarantine.  locateAndRecover2D should still fix from the healthy
  // pair, discard the haunted tag's snapshots for a fresh spin, and cache
  // the fix for the next checkpoint.
  const rfid::Epc kTag2 = rfid::Epc::forSimulatedTag(2);
  core::DeploymentFile deployment = twoRigDeployment();
  deployment.rigs[kTag0].center = {-0.4, 0.0, 0.0};
  deployment.rigs[kTag1].center = {0.0, 0.0, 0.0};
  core::RigSpec rig2;
  rig2.center = {0.4, 0.0, 0.0};
  rig2.kinematics = {0.10, 0.5, 0.0, geom::kPi / 2.0};
  deployment.rigs[kTag2] = rig2;

  const geom::Vec3 reader{0.8, 2.0, 0.0};
  const geom::Vec3 ghost{-1.4, 1.0, 0.0};

  rfid::ReportStream batch = spinReports(kTag0, deployment.rigs[kTag0],
                                         reader, 1);
  {
    const rfid::ReportStream clean =
        spinReports(kTag1, deployment.rigs[kTag1], reader, 2);
    batch.insert(batch.end(), clean.begin(), clean.end());
    const rfid::ReportStream truth = spinReports(kTag2, rig2, reader, 3);
    const rfid::ReportStream haunted = spinReports(kTag2, rig2, ghost, 4);
    for (size_t i = 0; i < truth.size(); ++i) {
      batch.push_back((i % 2 == 0) ? truth[i] : haunted[i]);
    }
  }

  Supervisor sup(testConfig(), deployment);
  auto transport = std::make_unique<ScriptedTransport>();
  ScriptedTransport* tp = transport.get();
  std::unique_ptr<ScriptedTransport> owned = std::move(transport);
  sup.addSession("r0", [&owned] { return std::move(owned); });
  tp->chunks.push_back(rfid::llrp::encodeStream(batch));
  sup.tick(0.0);
  sup.tick(0.1);
  ASSERT_EQ(sup.tagSnapshotCount(kTag2), 400u);
  const size_t tag0Count = sup.tagSnapshotCount(kTag0);
  ASSERT_GE(tag0Count, 16u);

  const auto fix = sup.locateAndRecover2D(1.0);
  ASSERT_TRUE(fix.hasValue()) << fix.error().message;
  EXPECT_EQ(fix->report.grade, core::FixGrade::kDegraded);
  EXPECT_LT(geom::distance(fix->fix.position, reader.xy()), 0.12);
  EXPECT_EQ(sup.stats().quarantinedSpins, 1u);
  EXPECT_EQ(sup.stats().respinsRequested, 1u);

  // The haunted tag starts over; the healthy tags keep their spins.
  EXPECT_EQ(sup.tagSnapshotCount(kTag2), 0u);
  EXPECT_EQ(sup.tagSnapshotCount(kTag0), tag0Count);

  // The fix is cached for the next checkpoint's [last_fix] section.
  const core::CalibrationCheckpoint ckpt = sup.makeCheckpoint(2.0);
  ASSERT_TRUE(ckpt.lastFix.valid);
  EXPECT_NEAR(ckpt.lastFix.x, fix->fix.position.x, 1e-12);
  EXPECT_NEAR(ckpt.lastFix.y, fix->fix.position.y, 1e-12);
  EXPECT_EQ(ckpt.lastFix.quarantinedSpins, 1u);
  EXPECT_DOUBLE_EQ(ckpt.lastFix.confidence, fix->report.confidence);

  // The re-spin arrives clean: the next recovery pass upgrades to a full-
  // grade three-rig fix and requests nothing further.
  auto transport2 = std::make_unique<ScriptedTransport>();
  ScriptedTransport* tp2 = transport2.get();
  std::unique_ptr<ScriptedTransport> owned2 = std::move(transport2);
  sup.addSession("r1", [&owned2] { return std::move(owned2); });
  // The fresh spin reuses the reader's clock grid; requestRespin cleared
  // the dedup keys, so the re-acquisition ingests cleanly.
  const rfid::ReportStream respun = spinReports(kTag2, rig2, reader, 5);
  tp2->chunks.push_back(rfid::llrp::encodeStream(respun));
  sup.tick(3.0);
  sup.tick(3.1);
  ASSERT_EQ(sup.tagSnapshotCount(kTag2), 400u);

  const auto healed = sup.locateAndRecover2D(4.0);
  ASSERT_TRUE(healed.hasValue()) << healed.error().message;
  EXPECT_EQ(healed->report.grade, core::FixGrade::kFull);
  EXPECT_LT(geom::distance(healed->fix.position, reader.xy()), 0.12);
  EXPECT_EQ(sup.stats().respinsRequested, 1u);
  EXPECT_GT(healed->report.confidence, fix->report.confidence);
}

TEST(Supervisor, CheckpointFailureDoesNotStopIngestion) {
  SupervisorConfig config = testConfig();
  config.checkpointIntervalS = 0.01;
  CheckpointStore store("/nonexistent_dir_tagspin/ckpt");
  Supervisor sup(config, twoRigDeployment(), &store);
  auto transport = std::make_unique<ScriptedTransport>();
  ScriptedTransport* tp = transport.get();
  std::unique_ptr<ScriptedTransport> owned = std::move(transport);
  sup.addSession("r0", [&owned] { return std::move(owned); });

  rfid::ReportStream batch;
  batch.push_back(report(kTag0, 0.1, 0.5));
  tp->chunks.push_back(rfid::llrp::encodeStream(batch));
  sup.tick(0.0);
  sup.tick(0.1);

  EXPECT_GE(sup.stats().checkpointFailures, 1u);
  EXPECT_EQ(sup.stats().checkpointsSaved, 0u);
  EXPECT_EQ(sup.tagSnapshotCount(kTag0), 1u);
}

}  // namespace
}  // namespace tagspin::runtime
