#include "runtime/supervisor.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <filesystem>
#include <memory>
#include <vector>

#include "geom/angles.hpp"
#include "rfid/llrp.hpp"

namespace tagspin::runtime {
namespace {

const rfid::Epc kTag0 = rfid::Epc::forSimulatedTag(0);
const rfid::Epc kTag1 = rfid::Epc::forSimulatedTag(1);
const rfid::Epc kUnknown = rfid::Epc::forSimulatedTag(42);

core::DeploymentFile twoRigDeployment() {
  core::DeploymentFile d;
  core::RigSpec rig;
  rig.center = {-0.2, 0.0, 0.0};
  rig.kinematics = {0.10, 0.5, 0.0, geom::kPi / 2.0};
  d.rigs[kTag0] = rig;
  rig.center = {0.2, 0.0, 0.0};
  d.rigs[kTag1] = rig;
  return d;
}

rfid::TagReport report(const rfid::Epc& epc, double t, double phase,
                       double rssi = -60.0) {
  rfid::TagReport r;
  r.epc = epc;
  r.timestampS = t;
  r.phaseRad = phase;
  r.rssiDbm = rssi;
  r.channelIndex = 3;
  r.frequencyHz = 920e6;
  r.antennaPort = 0;
  return r;
}

// Scripted transport shared with session_test in spirit: chunks are
// delivered one per poll; close() can permanently kill the endpoint.
struct ScriptedTransport final : Transport {
  std::deque<std::vector<uint8_t>> chunks;
  bool connected = false;
  bool peerClosed = false;
  bool dieOnClose = false;  // after close(), connect() fails forever
  bool dead = false;

  bool connect(double) override {
    if (dead) return false;
    connected = true;
    return true;
  }
  TransportRead poll(double) override {
    if (peerClosed) {
      peerClosed = false;
      connected = false;
      return {TransportStatus::kClosed, {}};
    }
    if (!connected) return {TransportStatus::kClosed, {}};
    if (chunks.empty()) return {TransportStatus::kIdle, {}};
    TransportRead r;
    r.status = TransportStatus::kOk;
    r.bytes = std::move(chunks.front());
    chunks.pop_front();
    return r;
  }
  void close() override {
    connected = false;
    if (dieOnClose) dead = true;
  }
};

SupervisorConfig testConfig() {
  SupervisorConfig c;
  c.checkpointIntervalS = 0.0;  // explicit saves only (via shutdown)
  c.session.noReportTimeoutS = 1e9;  // quiet transports are fine in tests
  return c;
}

std::string tempCkpt(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Supervisor, IngestsKnownTagsDropsUnknownWeakAndDuplicate) {
  Supervisor sup(testConfig(), twoRigDeployment());
  auto transport = std::make_unique<ScriptedTransport>();
  ScriptedTransport* tp = transport.get();
  // Factory is unused until a session fails; hand the premade one over.
  std::unique_ptr<ScriptedTransport> owned = std::move(transport);
  sup.addSession("r0", [&owned] { return std::move(owned); });

  rfid::ReportStream batch;
  batch.push_back(report(kTag0, 0.10, 0.5));
  batch.push_back(report(kTag0, 0.10, 0.5));       // exact duplicate
  batch.push_back(report(kTag1, 0.20, 1.5));
  batch.push_back(report(kUnknown, 0.30, 1.0));    // not in the deployment
  batch.push_back(report(kTag0, 0.40, 2.0, -99.0));  // below the RSSI floor
  tp->chunks.push_back(rfid::llrp::encodeStream(batch));

  sup.tick(0.0);
  sup.tick(0.1);

  EXPECT_EQ(sup.stats().reportsSeen, 5u);
  EXPECT_EQ(sup.stats().reportsIngested, 2u);
  EXPECT_EQ(sup.stats().duplicatesSuppressed, 1u);
  EXPECT_EQ(sup.stats().unknownEpcDropped, 1u);
  EXPECT_EQ(sup.stats().weakRssiDropped, 1u);
  EXPECT_EQ(sup.tagSnapshotCount(kTag0), 1u);
  EXPECT_EQ(sup.tagSnapshotCount(kTag1), 1u);
  EXPECT_NEAR(sup.lastReportTimestampS(), 0.20, 1e-5);
}

TEST(Supervisor, ReplacesTrippedSessionWithoutLosingProgress) {
  SupervisorConfig config = testConfig();
  config.session.connectTimeoutS = 0.4;
  config.session.backoff.baseDelayS = 0.2;
  config.session.backoff.maxDelayS = 0.5;
  config.session.breaker.failuresToOpen = 1;
  config.session.breaker.openCooldownS = 0.3;
  config.session.breaker.halfOpenFailuresToTrip = 1;

  int built = 0;
  ScriptedTransport* current = nullptr;
  const TransportFactory factory = [&built, &current] {
    auto t = std::make_unique<ScriptedTransport>();
    current = t.get();
    ++built;
    return t;
  };

  Supervisor sup(config, twoRigDeployment());
  sup.addSession("r0", factory);
  ASSERT_EQ(built, 1);

  // First transport streams a little, then the peer drops it and the
  // endpoint dies, so every reconnect fails until the breaker trips.
  rfid::ReportStream batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(report(kTag0, 0.01 * i, 0.1 * i));
  }
  current->chunks.push_back(rfid::llrp::encodeStream(batch));
  current->dieOnClose = true;

  sup.tick(0.0);
  sup.tick(0.1);
  ASSERT_EQ(sup.tagSnapshotCount(kTag0), 10u);
  current->peerClosed = true;

  double t = 0.1;
  while (sup.stats().sessionsRestarted == 0 && t < 60.0) {
    t += 0.1;
    sup.tick(t);
  }
  EXPECT_EQ(sup.stats().sessionsRestarted, 1u);
  EXPECT_EQ(built, 2);

  // Replacement session streams fresh data; earlier progress survived.
  rfid::ReportStream more;
  for (int i = 0; i < 5; ++i) {
    more.push_back(report(kTag0, 1.0 + 0.01 * i, 0.05 + 0.1 * i));
  }
  current->chunks.push_back(rfid::llrp::encodeStream(more));
  sup.tick(t + 0.1);
  sup.tick(t + 0.2);
  EXPECT_EQ(sup.tagSnapshotCount(kTag0), 15u);
}

TEST(Supervisor, CheckpointRestoreResumesWithoutReacquisition) {
  const std::string path = tempCkpt("tagspin_supervisor_test.ckpt");
  std::remove(path.c_str());
  CheckpointStore store(path);

  rfid::ReportStream batch;
  for (int i = 0; i < 20; ++i) {
    batch.push_back(report(kTag0, 0.05 * i, geom::wrapTwoPi(0.3 * i)));
  }

  {
    Supervisor sup(testConfig(), twoRigDeployment(), &store);
    auto transport = std::make_unique<ScriptedTransport>();
    transport->chunks.push_back(rfid::llrp::encodeStream(batch));
    std::unique_ptr<ScriptedTransport> owned = std::move(transport);
    sup.addSession("r0", [&owned] { return std::move(owned); });
    sup.tick(0.0);
    sup.tick(0.1);
    ASSERT_EQ(sup.tagSnapshotCount(kTag0), 20u);
    sup.shutdown(0.2);  // saves the final checkpoint
  }  // "kill": the supervisor object is gone

  Supervisor resumed(testConfig(), twoRigDeployment(), &store);
  const auto restored = resumed.restore();
  ASSERT_TRUE(restored.hasValue());
  EXPECT_EQ(resumed.tagSnapshotCount(kTag0), 20u);
  EXPECT_NEAR(resumed.lastReportTimestampS(), 0.05 * 19, 1e-5);

  // The reader replays the very same reports (the revolution in flight):
  // every one must dedup against the restored state, none re-ingested.
  auto transport = std::make_unique<ScriptedTransport>();
  transport->chunks.push_back(rfid::llrp::encodeStream(batch));
  std::unique_ptr<ScriptedTransport> owned = std::move(transport);
  resumed.addSession("r0", [&owned] { return std::move(owned); });
  resumed.tick(1.0);
  resumed.tick(1.1);
  EXPECT_EQ(resumed.stats().duplicatesSuppressed, 20u);
  EXPECT_EQ(resumed.stats().reportsIngested, 0u);
  EXPECT_EQ(resumed.tagSnapshotCount(kTag0), 20u);

  std::remove(path.c_str());
}

TEST(Supervisor, RestoreWithoutFileIsAFreshStart) {
  const std::string path = tempCkpt("tagspin_supervisor_missing.ckpt");
  std::remove(path.c_str());
  CheckpointStore store(path);
  Supervisor sup(testConfig(), twoRigDeployment(), &store);
  const auto restored = sup.restore();
  ASSERT_FALSE(restored.hasValue());
  EXPECT_EQ(restored.code(), core::ErrorCode::kCheckpointMissing);
}

TEST(Supervisor, DecimationBoundsPerTagMemory) {
  SupervisorConfig config = testConfig();
  config.maxSnapshotsPerTag = 64;
  Supervisor sup(config, twoRigDeployment());
  auto transport = std::make_unique<ScriptedTransport>();
  ScriptedTransport* tp = transport.get();
  std::unique_ptr<ScriptedTransport> owned = std::move(transport);
  sup.addSession("r0", [&owned] { return std::move(owned); });

  rfid::ReportStream batch;
  for (int i = 0; i < 300; ++i) {
    batch.push_back(report(kTag0, 0.01 * i, geom::wrapTwoPi(0.05 * i)));
  }
  tp->chunks.push_back(rfid::llrp::encodeStream(batch));
  sup.tick(0.0);
  sup.tick(0.1);

  EXPECT_LT(sup.tagSnapshotCount(kTag0), 64u);
  EXPECT_GE(sup.stats().decimationsApplied, 1u);
  // Earliest and latest samples both survive thinning (arc coverage).
  EXPECT_GT(sup.tagSnapshotCount(kTag0), 10u);
}

TEST(Supervisor, CheckpointFailureDoesNotStopIngestion) {
  SupervisorConfig config = testConfig();
  config.checkpointIntervalS = 0.01;
  CheckpointStore store("/nonexistent_dir_tagspin/ckpt");
  Supervisor sup(config, twoRigDeployment(), &store);
  auto transport = std::make_unique<ScriptedTransport>();
  ScriptedTransport* tp = transport.get();
  std::unique_ptr<ScriptedTransport> owned = std::move(transport);
  sup.addSession("r0", [&owned] { return std::move(owned); });

  rfid::ReportStream batch;
  batch.push_back(report(kTag0, 0.1, 0.5));
  tp->chunks.push_back(rfid::llrp::encodeStream(batch));
  sup.tick(0.0);
  sup.tick(0.1);

  EXPECT_GE(sup.stats().checkpointFailures, 1u);
  EXPECT_EQ(sup.stats().checkpointsSaved, 0u);
  EXPECT_EQ(sup.tagSnapshotCount(kTag0), 1u);
}

}  // namespace
}  // namespace tagspin::runtime
