// Cross-thread exercise of the bounded MPMC ring and the policy wrapper --
// the configuration a threaded deployment (or a fleet shard) runs: one
// reader-session producer, one localization consumer.  All three
// backpressure policies are driven with a live consumer thread; kDropOldest
// is the interesting one, because its eviction is a producer-side pop that
// races the consumer's pop for the same oldest element.  Carries the tsan
// label so the ThreadSanitizer pass in tools/run_sanitized.sh checks
// exactly these acquire/release pairs.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/queue.hpp"

namespace tagspin::runtime {
namespace {

TEST(BoundedRingThreaded, FifoAcrossThreadsWithoutLoss) {
  BoundedRing<uint64_t> queue(64);
  constexpr uint64_t kItems = 200000;

  std::thread producer([&queue] {
    for (uint64_t i = 0; i < kItems; ++i) {
      while (!queue.tryPush(i)) {
        std::this_thread::yield();
      }
    }
  });

  uint64_t expected = 0;
  uint64_t out = 0;
  while (expected < kItems) {
    if (queue.tryPop(out)) {
      // Single-producer contract: strict FIFO, no duplication, no loss.
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(queue.empty());
}

TEST(BoundedRingThreaded, MultiProducerMultiConsumerConservesElements) {
  // The fleet shards put the ring into genuinely multi-threaded company;
  // check the MPMC contract directly: N producers, M consumers, every
  // element delivered exactly once.
  BoundedRing<uint64_t> queue(32);
  constexpr int kProducers = 3;
  constexpr int kConsumers = 2;
  constexpr uint64_t kPerProducer = 30000;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t tagged = static_cast<uint64_t>(p) * kPerProducer + i;
        while (!queue.tryPush(tagged)) std::this_thread::yield();
      }
    });
  }

  std::atomic<uint64_t> received{0};
  std::atomic<uint64_t> checksum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      uint64_t out = 0;
      while (received.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        if (queue.tryPop(out)) {
          checksum.fetch_add(out, std::memory_order_relaxed);
          received.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  for (std::thread& t : consumers) t.join();

  const uint64_t total = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), total);
  EXPECT_EQ(checksum.load(), total * (total - 1) / 2);  // each value once
  EXPECT_TRUE(queue.empty());
}

TEST(IngestQueueThreaded, BlockPolicyWithInstrumentsUnderConcurrency) {
  obs::MetricsRegistry registry;
  IngestQueue<uint64_t> queue(32, BackpressurePolicy::kBlock);
  queue.setInstruments(QueueInstruments::resolve(&registry));
  constexpr uint64_t kItems = 50000;

  std::thread producer([&queue] {
    for (uint64_t i = 0; i < kItems; ++i) {
      while (!queue.offer(i)) {
        std::this_thread::yield();  // kBlock: refused when full, retry
      }
    }
  });

  uint64_t received = 0;
  uint64_t out = 0;
  uint64_t last = 0;
  while (received < kItems) {
    if (queue.poll(out)) {
      if (received > 0) ASSERT_GT(out, last);
      last = out;
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counterValue("queue.accepted"), kItems);
  // offered = accepted + refusals; refusals only ever add to it.
  EXPECT_GE(snap.counterValue("queue.offered"), kItems);
  EXPECT_EQ(snap.counterValue("queue.offered") - kItems,
            snap.counterValue("queue.refused_full"));
  EXPECT_EQ(snap.counterValue("queue.dropped_oldest"), 0u);
  EXPECT_GT(snap.gaugeValue("queue.max_depth"), 0.0);
  EXPECT_LE(snap.gaugeValue("queue.max_depth"), 32.0);
}

TEST(IngestQueueThreaded, DropOldestPolicyWithConcurrentConsumer) {
  // The policy that used to be single-thread-only: producer-side eviction
  // pops race the consumer's pops.  Contract under concurrency:
  //  * every offer is accepted (drop_oldest never refuses);
  //  * the consumer sees a strictly increasing subsequence (drops skip
  //    forward, never reorder or duplicate);
  //  * accepted == delivered + evicted + left-in-ring (no element vanishes
  //    or double-counts).
  obs::MetricsRegistry registry;
  IngestQueue<uint64_t> queue(16, BackpressurePolicy::kDropOldest);
  queue.setInstruments(QueueInstruments::resolve(&registry));
  constexpr uint64_t kItems = 100000;

  std::atomic<bool> done{false};
  std::atomic<uint64_t> delivered{0};
  std::thread consumer([&] {
    uint64_t out = 0;
    uint64_t last = 0;
    bool first = true;
    int spins = 0;
    while (!done.load(std::memory_order_acquire) || queue.size() > 0) {
      if (queue.poll(out)) {
        if (!first) ASSERT_GT(out, last);
        first = false;
        last = out;
        delivered.fetch_add(1, std::memory_order_relaxed);
        // Let the producer lap the ring regularly so evictions do happen.
        if (++spins % 64 == 0) std::this_thread::yield();
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (uint64_t i = 0; i < kItems; ++i) {
    ASSERT_TRUE(queue.offer(i));  // drop_oldest always admits
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  uint64_t out = 0;
  uint64_t leftover = 0;
  while (queue.poll(out)) ++leftover;

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counterValue("queue.offered"), kItems);
  EXPECT_EQ(snap.counterValue("queue.accepted"), kItems);
  EXPECT_EQ(snap.counterValue("queue.refused_full"), 0u);
  EXPECT_EQ(delivered.load() + leftover +
                snap.counterValue("queue.dropped_oldest"),
            kItems);
}

TEST(IngestQueueThreaded, DegradeSamplingPolicyWithConcurrentConsumer) {
  // A deliberately slow consumer keeps the ring pinned above the watermark,
  // so the sampling gate engages; everything that IS admitted must still be
  // delivered exactly once and in order.
  obs::MetricsRegistry registry;
  IngestQueue<uint64_t> queue(64, BackpressurePolicy::kDegradeSampling,
                              /*degradeKeepEvery=*/2, /*highWatermark=*/0.5);
  queue.setInstruments(QueueInstruments::resolve(&registry));
  constexpr uint64_t kItems = 50000;

  std::atomic<bool> done{false};
  std::atomic<uint64_t> delivered{0};
  std::thread consumer([&] {
    uint64_t out = 0;
    uint64_t last = 0;
    bool first = true;
    while (!done.load(std::memory_order_acquire) || queue.size() > 0) {
      if (queue.poll(out)) {
        if (!first) ASSERT_GT(out, last);  // in order, never duplicated
        first = false;
        last = out;
        delivered.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();  // slow consumer: keep depth high
      } else {
        std::this_thread::yield();
      }
    }
  });

  uint64_t admitted = 0;
  for (uint64_t i = 0; i < kItems; ++i) {
    if (queue.offer(i)) ++admitted;
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  uint64_t out = 0;
  uint64_t leftover = 0;
  while (queue.poll(out)) ++leftover;

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counterValue("queue.offered"), kItems);
  EXPECT_EQ(snap.counterValue("queue.accepted"), admitted);
  EXPECT_EQ(snap.counterValue("queue.accepted") +
                snap.counterValue("queue.dropped_sampled") +
                snap.counterValue("queue.refused_full"),
            kItems);
  EXPECT_GT(snap.counterValue("queue.dropped_sampled"), 0u);
  EXPECT_EQ(delivered.load() + leftover, admitted);
}

TEST(IngestQueueThreaded, DegradeCounterResetsBelowWatermarkUnderConcurrency) {
  // The degrade counter is producer-side state that RESETS whenever an
  // offer observes the depth below the watermark -- with a live consumer
  // the depth oscillates around it, so the reset edge fires constantly
  // while poll() mutates the ring from the other thread.  Contract:
  //  * the very next offer after any reset is admitted (counter phase 0);
  //  * the accounting never splits an offer (accepted + sampled + refused
  //    == offered) no matter how the reset races the consumer;
  //  * the watermark edge detector sees multiple excursions, not one.
  obs::MetricsRegistry registry;
  IngestQueue<uint64_t> queue(32, BackpressurePolicy::kDegradeSampling,
                              /*degradeKeepEvery=*/2, /*highWatermark=*/0.5);
  queue.setInstruments(QueueInstruments::resolve(&registry));
  constexpr uint64_t kItems = 60000;

  std::atomic<bool> done{false};
  std::atomic<uint64_t> delivered{0};
  std::thread consumer([&] {
    uint64_t out = 0;
    uint64_t drained = 0;
    while (!done.load(std::memory_order_acquire) || queue.size() > 0) {
      // Bursty consumer: drain hard for a stretch (pulls the depth below
      // the watermark -> producer-side reset), then stall (depth climbs
      // back over -> sampling re-engages).
      const bool draining = (drained / 512) % 2 == 0;
      if (draining && queue.poll(out)) {
        ++drained;
        delivered.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++drained;
        std::this_thread::yield();
      }
    }
  });

  uint64_t admitted = 0;
  uint64_t admittedRightAfterReset = 0;
  uint64_t resets = 0;
  for (uint64_t i = 0; i < kItems; ++i) {
    if (i > 0 && i % 2000 == 0) {
      // Force an excursion boundary: wait for the consumer to pull the
      // depth below the watermark, so the climb that follows replays the
      // below->above edge instead of riding one endless excursion.  Only
      // this thread pushes, so the observation cannot be overtaken.
      while (queue.size() >= queue.watermarkDepth()) {
        std::this_thread::yield();
      }
    }
    const bool below = queue.size() < queue.watermarkDepth();
    const bool ok = queue.offer(i);
    if (ok) ++admitted;
    if (below) {
      // This offer observed the depth below the watermark at entry, so it
      // reset the counter to phase 0 and must have been admitted (the
      // ring cannot be full below the watermark).
      ++resets;
      if (ok) ++admittedRightAfterReset;
    }
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  uint64_t out = 0;
  uint64_t leftover = 0;
  while (queue.poll(out)) ++leftover;

  EXPECT_GT(resets, 0u);
  EXPECT_EQ(admittedRightAfterReset, resets);

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counterValue("queue.offered"), kItems);
  EXPECT_EQ(snap.counterValue("queue.accepted"), admitted);
  EXPECT_EQ(snap.counterValue("queue.accepted") +
                snap.counterValue("queue.dropped_sampled") +
                snap.counterValue("queue.refused_full"),
            kItems);
  EXPECT_EQ(delivered.load() + leftover, admitted);
  // The oscillation crossed the watermark repeatedly -- the edge detector
  // must have re-armed, not latched on the first excursion.
  EXPECT_GT(snap.counterValue("queue.watermark_crossings"), 1u);
}

}  // namespace
}  // namespace tagspin::runtime
