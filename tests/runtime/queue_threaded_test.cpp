// Cross-thread exercise of the SPSC ring and the policy wrapper -- the
// configuration a threaded deployment would run (one reader-session
// producer, one localization consumer).  Carries the tsan label so the
// ThreadSanitizer pass in tools/run_sanitized.sh checks exactly these
// acquire/release pairs.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/queue.hpp"

namespace tagspin::runtime {
namespace {

TEST(SpscQueueThreaded, FifoAcrossThreadsWithoutLoss) {
  SpscQueue<uint64_t> queue(64);
  constexpr uint64_t kItems = 200000;

  std::thread producer([&queue] {
    for (uint64_t i = 0; i < kItems; ++i) {
      while (!queue.tryPush(i)) {
        std::this_thread::yield();
      }
    }
  });

  uint64_t expected = 0;
  uint64_t out = 0;
  while (expected < kItems) {
    if (queue.tryPop(out)) {
      // SPSC contract: strict FIFO, no duplication, no loss.
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(queue.empty());
}

TEST(IngestQueueThreaded, BlockPolicyWithInstrumentsUnderConcurrency) {
  obs::MetricsRegistry registry;
  IngestQueue<uint64_t> queue(32, BackpressurePolicy::kBlock);
  queue.setInstruments(QueueInstruments::resolve(&registry));
  constexpr uint64_t kItems = 50000;

  std::thread producer([&queue] {
    for (uint64_t i = 0; i < kItems; ++i) {
      while (!queue.offer(i)) {
        std::this_thread::yield();  // kBlock: refused when full, retry
      }
    }
  });

  uint64_t received = 0;
  uint64_t out = 0;
  uint64_t last = 0;
  while (received < kItems) {
    if (queue.poll(out)) {
      if (received > 0) ASSERT_GT(out, last);
      last = out;
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counterValue("queue.accepted"), kItems);
  // offered = accepted + refusals; refusals only ever add to it.
  EXPECT_GE(snap.counterValue("queue.offered"), kItems);
  EXPECT_EQ(snap.counterValue("queue.offered") - kItems,
            snap.counterValue("queue.refused_full"));
  EXPECT_EQ(snap.counterValue("queue.dropped_oldest"), 0u);
  EXPECT_GT(snap.gaugeValue("queue.max_depth"), 0.0);
  EXPECT_LE(snap.gaugeValue("queue.max_depth"), 32.0);
}

}  // namespace
}  // namespace tagspin::runtime
