#include "runtime/queue.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace tagspin::runtime {
namespace {

TEST(BoundedRing, FifoOrderAndCapacity) {
  BoundedRing<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.tryPush(i));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.tryPush(99));
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.tryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.tryPop(out));
}

TEST(BoundedRing, WrapsAroundManyTimes) {
  BoundedRing<int> q(3);
  int expected = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(q.tryPush(i));
    if (i % 2 == 1) {  // drain two every other step
      int out;
      ASSERT_TRUE(q.tryPop(out));
      EXPECT_EQ(out, expected++);
      ASSERT_TRUE(q.tryPop(out));
      EXPECT_EQ(out, expected++);
    }
  }
}

TEST(BoundedRing, ConcurrentProducerConsumerLosesNothing) {
  // Exercise the ring with a real producer thread (kBlock semantics: retry
  // until accepted, so nothing is shed).
  BoundedRing<int> q(64);
  constexpr int kCount = 20000;
  std::thread producer([&q] {
    for (int i = 0; i < kCount; ++i) {
      while (!q.tryPush(i)) std::this_thread::yield();
    }
  });
  long long sum = 0;
  int received = 0, out = 0, last = -1;
  while (received < kCount) {
    if (q.tryPop(out)) {
      EXPECT_EQ(out, last + 1);  // FIFO, no loss, no duplication
      last = out;
      sum += out;
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

TEST(IngestQueue, BlockPolicyRefusesWhenFull) {
  IngestQueue<int> q(3, BackpressurePolicy::kBlock);
  EXPECT_TRUE(q.offer(1));
  EXPECT_TRUE(q.offer(2));
  EXPECT_TRUE(q.offer(3));
  EXPECT_FALSE(q.offer(4));
  EXPECT_EQ(q.stats().refusedFull, 1u);
  EXPECT_EQ(q.stats().accepted, 3u);
  int out;
  ASSERT_TRUE(q.poll(out));
  EXPECT_EQ(out, 1);  // nothing was evicted
  EXPECT_TRUE(q.offer(4));
}

TEST(IngestQueue, DropOldestKeepsTheFreshest) {
  IngestQueue<int> q(3, BackpressurePolicy::kDropOldest);
  for (int i = 1; i <= 6; ++i) EXPECT_TRUE(q.offer(i));
  EXPECT_EQ(q.stats().droppedOldest, 3u);
  EXPECT_EQ(q.stats().accepted, 6u);
  int out;
  std::vector<int> got;
  while (q.poll(out)) got.push_back(out);
  EXPECT_EQ(got, (std::vector<int>{4, 5, 6}));
}

TEST(IngestQueue, DegradeSamplingThinsAboveTheWatermark) {
  // Capacity 8, watermark 0.5 -> depth 4; above it only every 2nd offer
  // is admitted.
  IngestQueue<int> q(8, BackpressurePolicy::kDegradeSampling, 2, 0.5);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.offer(i));
  EXPECT_EQ(q.stats().droppedSampled, 0u);

  int admitted = 0;
  for (int i = 4; i < 12; ++i) {
    if (q.offer(i)) ++admitted;
  }
  EXPECT_EQ(admitted, 4);  // every other one
  EXPECT_EQ(q.stats().droppedSampled, 4u);

  // Draining below the watermark restores full-rate admission.
  int out;
  while (q.poll(out)) {
  }
  EXPECT_TRUE(q.offer(100));
  EXPECT_TRUE(q.offer(101));
  EXPECT_EQ(q.stats().droppedSampled, 4u);
}

TEST(IngestQueue, StatsTrackDepthHighWatermark) {
  IngestQueue<int> q(5, BackpressurePolicy::kBlock);
  q.offer(1);
  q.offer(2);
  int out;
  q.poll(out);
  q.offer(3);
  q.offer(4);
  EXPECT_EQ(q.stats().maxDepth, 3u);
  EXPECT_EQ(q.stats().offered, 4u);
}

TEST(IngestQueue, WatermarkCrossingCountedOncePerExcursion) {
  // Capacity 8, watermark 0.5 -> depth 4.  The counter moves on the
  // below->at/above edge only; staying above is one excursion.
  IngestQueue<int> q(8, BackpressurePolicy::kBlock, 2, 0.5);
  for (int i = 0; i < 4; ++i) q.offer(i);
  EXPECT_TRUE(q.aboveWatermark());
  EXPECT_EQ(q.stats().watermarkCrossings, 1u);
  q.offer(4);
  q.offer(5);
  EXPECT_EQ(q.stats().watermarkCrossings, 1u);  // still the same excursion

  // Drain below the watermark: the detector re-arms...
  int out;
  while (q.size() > 1) q.poll(out);
  q.offer(6);  // depth 2 < 4 after this offer: edge observed, re-armed
  EXPECT_FALSE(q.aboveWatermark());
  // ...and climbing back over counts a second excursion.
  q.offer(7);
  q.offer(8);
  q.offer(9);
  EXPECT_TRUE(q.aboveWatermark());
  EXPECT_EQ(q.stats().watermarkCrossings, 2u);
}

TEST(IngestQueue, WatermarkInstrumentsMirrorTheStats) {
  obs::MetricsRegistry registry;
  IngestQueue<int> q(8, BackpressurePolicy::kDropOldest, 2, 0.5);
  q.setInstruments(QueueInstruments::resolve(&registry));
  for (int i = 0; i < 6; ++i) q.offer(i);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counterValue("queue.watermark_crossings"),
            q.stats().watermarkCrossings);
  EXPECT_EQ(snap.gaugeValue("queue.above_watermark"), 1.0);
  EXPECT_GE(snap.gaugeValue("queue.max_depth"), 4.0);
}

TEST(IngestQueue, PolicyNamesAreStable) {
  EXPECT_STREQ(backpressurePolicyName(BackpressurePolicy::kBlock), "block");
  EXPECT_STREQ(backpressurePolicyName(BackpressurePolicy::kDropOldest),
               "drop_oldest");
  EXPECT_STREQ(backpressurePolicyName(BackpressurePolicy::kDegradeSampling),
               "degrade_sampling");
}

}  // namespace
}  // namespace tagspin::runtime
