#include "runtime/session.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "rfid/llrp.hpp"

namespace tagspin::runtime {
namespace {

// Fully scripted transport: the test enqueues byte chunks and flips
// connection behavior; combined with the tick-driven session this gives a
// deterministic fake clock with no sleeps anywhere.
struct ScriptedTransport final : Transport {
  int failConnects = 0;  // refuse this many connect() calls first
  int connectCalls = 0;
  int closeCalls = 0;
  bool connected = false;
  bool peerClosed = false;  // next poll reports kClosed (one-shot)
  std::deque<std::vector<uint8_t>> chunks;  // one chunk per poll

  bool connect(double) override {
    ++connectCalls;
    if (connectCalls <= failConnects) return false;
    connected = true;
    return true;
  }
  TransportRead poll(double) override {
    if (peerClosed) {
      peerClosed = false;
      connected = false;
      return {TransportStatus::kClosed, {}};
    }
    if (!connected) return {TransportStatus::kClosed, {}};
    if (chunks.empty()) return {TransportStatus::kIdle, {}};
    TransportRead r;
    r.status = TransportStatus::kOk;
    r.bytes = std::move(chunks.front());
    chunks.pop_front();
    return r;
  }
  void close() override {
    ++closeCalls;
    connected = false;
  }
};

std::vector<uint8_t> frames(int count, double t0, double dt) {
  rfid::ReportStream reports;
  for (int i = 0; i < count; ++i) {
    rfid::TagReport r;
    r.epc = rfid::Epc::forSimulatedTag(0);
    r.timestampS = t0 + dt * i;
    r.phaseRad = 0.5;
    r.rssiDbm = -60.0;
    r.channelIndex = 3;
    r.frequencyHz = 920e6;
    r.antennaPort = 0;
    reports.push_back(r);
  }
  return rfid::llrp::encodeStream(reports);
}

SessionConfig fastConfig() {
  SessionConfig c;
  c.connectTimeoutS = 1.0;
  c.syncTimeoutS = 2.0;
  c.noReportTimeoutS = 2.0;
  c.stuckClockWindow = 8;
  c.backoff.baseDelayS = 0.5;
  c.backoff.maxDelayS = 2.0;
  c.breaker.failuresToOpen = 3;
  c.breaker.openCooldownS = 2.0;
  c.breaker.halfOpenFailuresToTrip = 2;
  return c;
}

struct Harness {
  explicit Harness(SessionConfig config = fastConfig()) {
    auto t = std::make_unique<ScriptedTransport>();
    transport = t.get();
    session = std::make_unique<ReaderSession>("test", std::move(t), config);
  }
  ScriptedTransport* transport;
  std::unique_ptr<ReaderSession> session;
};

TEST(Session, HappyPathReachesStreamingAndDelivers) {
  Harness h;
  h.transport->chunks.push_back(frames(5, 0.0, 0.1));

  h.session->tick(0.0);  // DISCONNECTED -> CONNECTING -> SYNCING (connected)
  EXPECT_EQ(h.session->state(), SessionState::kSyncing);
  h.session->tick(0.1);  // first frames decoded -> STREAMING
  EXPECT_EQ(h.session->state(), SessionState::kStreaming);

  rfid::ReportStream out;
  EXPECT_EQ(h.session->drainInto(out), 5u);
  EXPECT_EQ(h.session->stats().reportsDecoded, 5u);
  EXPECT_EQ(h.session->stats().connectAttempts, 1u);
  EXPECT_EQ(h.session->breaker().state(), BreakerState::kClosed);
}

TEST(Session, ConnectTimeoutBacksOff) {
  Harness h;
  h.transport->failConnects = 1000;
  h.session->tick(0.0);
  EXPECT_EQ(h.session->state(), SessionState::kConnecting);
  h.session->tick(0.5);
  EXPECT_EQ(h.session->state(), SessionState::kConnecting);
  h.session->tick(1.0);  // connectTimeoutS hit
  EXPECT_EQ(h.session->state(), SessionState::kBackoff);
  EXPECT_EQ(h.session->stats().connectFailures, 1u);
  EXPECT_GE(h.session->backoffUntilS(), 1.0 + 0.5);  // base delay
}

TEST(Session, SyncTimeoutWhenConnectionStaysSilent) {
  Harness h;  // connects instantly but never sends a byte
  h.session->tick(0.0);
  EXPECT_EQ(h.session->state(), SessionState::kSyncing);
  h.session->tick(1.9);
  EXPECT_EQ(h.session->state(), SessionState::kSyncing);
  h.session->tick(2.0);
  EXPECT_EQ(h.session->state(), SessionState::kBackoff);
  EXPECT_EQ(h.session->stats().connectFailures, 1u);
}

TEST(Session, SyncSurvivesMidStreamJunkViaResync) {
  Harness h;
  // Connection picked up mid-frame: garbage prefix, then clean frames.
  std::vector<uint8_t> bytes(23, 0x5A);
  const std::vector<uint8_t> clean = frames(4, 1.0, 0.1);
  bytes.insert(bytes.end(), clean.begin(), clean.end());
  h.transport->chunks.push_back(bytes);

  h.session->tick(0.0);
  h.session->tick(0.1);
  EXPECT_EQ(h.session->state(), SessionState::kStreaming);
  rfid::ReportStream out;
  EXPECT_EQ(h.session->drainInto(out), 4u);
  EXPECT_GT(h.session->decodeStats().bytesResynced, 0u);
}

TEST(Session, PeerDisconnectDrainsThenBacksOffThenRecovers) {
  Harness h;
  h.transport->chunks.push_back(frames(3, 0.0, 0.1));
  h.session->tick(0.0);
  h.session->tick(0.1);
  ASSERT_EQ(h.session->state(), SessionState::kStreaming);

  h.transport->peerClosed = true;
  h.session->tick(0.2);
  EXPECT_EQ(h.session->state(), SessionState::kBackoff);
  EXPECT_EQ(h.session->stats().disconnects, 1u);
  EXPECT_GE(h.transport->closeCalls, 1);

  // Queued reports survive the drop.
  rfid::ReportStream out;
  EXPECT_EQ(h.session->drainInto(out), 3u);

  // After the backoff the session reconnects and streams again.
  h.transport->chunks.push_back(frames(2, 1.0, 0.1));
  double t = 0.2;
  while (h.session->state() != SessionState::kStreaming && t < 10.0) {
    t += 0.1;
    h.session->tick(t);
  }
  EXPECT_EQ(h.session->state(), SessionState::kStreaming);
  out.clear();
  EXPECT_EQ(h.session->drainInto(out), 2u);
}

TEST(Session, NoReportWatchdogRecyclesASilentConnection) {
  Harness h;
  h.transport->chunks.push_back(frames(3, 0.0, 0.1));
  h.session->tick(0.0);
  h.session->tick(0.1);
  ASSERT_EQ(h.session->state(), SessionState::kStreaming);

  // Connected but silent: the watchdog must recycle after noReportTimeoutS.
  h.session->tick(1.0);
  EXPECT_EQ(h.session->state(), SessionState::kStreaming);
  h.session->tick(2.2);  // 2.1 s since the last report > 2.0 s timeout
  EXPECT_EQ(h.session->state(), SessionState::kBackoff);
  EXPECT_EQ(h.session->stats().watchdogNoReport, 1u);
}

TEST(Session, StuckClockWatchdogFires) {
  Harness h;
  h.transport->chunks.push_back(frames(3, 0.0, 0.1));
  h.session->tick(0.0);
  h.session->tick(0.1);
  ASSERT_EQ(h.session->state(), SessionState::kStreaming);

  // A frozen reader clock: 10 more reports all carrying the same timestamp
  // (> stuckClockWindow = 8 consecutive non-advancing reads).
  h.transport->chunks.push_back(frames(10, 0.2, 0.0));
  h.session->tick(0.3);
  EXPECT_EQ(h.session->state(), SessionState::kBackoff);
  EXPECT_EQ(h.session->stats().watchdogStuckClock, 1u);
}

TEST(Session, BreakerTripParksTheSessionInFailed) {
  Harness h;
  h.transport->failConnects = 1000000;
  double t = 0.0;
  for (int i = 0; i < 4000 && h.session->state() != SessionState::kFailed;
       ++i) {
    h.session->tick(t);
    t += 0.1;
  }
  EXPECT_EQ(h.session->state(), SessionState::kFailed);
  EXPECT_EQ(h.session->breaker().state(), BreakerState::kTripped);
  // FAILED is terminal: more ticks change nothing.
  const uint64_t attempts = h.session->stats().connectAttempts;
  h.session->tick(t + 100.0);
  EXPECT_EQ(h.session->state(), SessionState::kFailed);
  EXPECT_EQ(h.session->stats().connectAttempts, attempts);
}

TEST(Session, RequestStopParksDisconnectedWithoutReconnect) {
  Harness h;
  h.transport->chunks.push_back(frames(3, 0.0, 0.1));
  h.session->tick(0.0);
  h.session->tick(0.1);
  ASSERT_EQ(h.session->state(), SessionState::kStreaming);

  h.session->requestStop();
  h.session->tick(0.2);
  EXPECT_EQ(h.session->state(), SessionState::kDisconnected);
  h.session->tick(5.0);
  EXPECT_EQ(h.session->state(), SessionState::kDisconnected);

  // Already-delivered reports remain drainable after the stop.
  rfid::ReportStream out;
  EXPECT_EQ(h.session->drainInto(out), 3u);
}

TEST(Session, StateNamesAreStable) {
  EXPECT_STREQ(sessionStateName(SessionState::kDisconnected), "disconnected");
  EXPECT_STREQ(sessionStateName(SessionState::kStreaming), "streaming");
  EXPECT_STREQ(sessionStateName(SessionState::kFailed), "failed");
}

}  // namespace
}  // namespace tagspin::runtime
