#include "runtime/backoff.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace tagspin::runtime {
namespace {

// ---------------------------------------------------------------- backoff

TEST(Backoff, FirstDelayIsTheBase) {
  BackoffSchedule schedule({0.25, 30.0, 3.0, 42});
  EXPECT_DOUBLE_EQ(schedule.nextDelayS(), 0.25);
  EXPECT_EQ(schedule.attempt(), 1);
}

TEST(Backoff, EveryDelayWithinJitterBounds) {
  // Decorrelated jitter: delay_n is uniform in [base, mult * delay_{n-1}],
  // capped.  Verify the bound pair holds at every step for several streams.
  for (uint64_t seed : {1ULL, 7ULL, 0xBAC0FFULL, 999ULL}) {
    BackoffConfig config{0.25, 30.0, 3.0, seed};
    BackoffSchedule schedule(config);
    double previous = schedule.nextDelayS();
    EXPECT_DOUBLE_EQ(previous, config.baseDelayS);
    for (int i = 0; i < 50; ++i) {
      const double upper =
          std::min(config.maxDelayS, config.multiplier * previous);
      const double delay = schedule.nextDelayS();
      EXPECT_GE(delay, config.baseDelayS) << "seed " << seed << " step " << i;
      EXPECT_LE(delay, upper) << "seed " << seed << " step " << i;
      previous = delay;
    }
  }
}

TEST(Backoff, CapIsReachedAndNeverExceeded) {
  BackoffConfig config{1.0, 8.0, 3.0, 5};
  BackoffSchedule schedule(config);
  double maxSeen = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double d = schedule.nextDelayS();
    EXPECT_LE(d, config.maxDelayS);
    maxSeen = std::max(maxSeen, d);
  }
  // With multiplier 3 the schedule escalates to the cap region quickly;
  // over 200 draws the cap itself must have been hit.
  EXPECT_GT(maxSeen, 0.9 * config.maxDelayS);
}

TEST(Backoff, DeterministicInSeed) {
  BackoffSchedule a({0.25, 30.0, 3.0, 1234});
  BackoffSchedule b({0.25, 30.0, 3.0, 1234});
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.nextDelayS(), b.nextDelayS());
  }
  BackoffSchedule c({0.25, 30.0, 3.0, 1235});
  bool anyDifferent = false;
  BackoffSchedule a2({0.25, 30.0, 3.0, 1234});
  for (int i = 0; i < 20; ++i) {
    if (a2.nextDelayS() != c.nextDelayS()) anyDifferent = true;
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(Backoff, ResetRestartsTheSchedule) {
  BackoffSchedule schedule({0.25, 30.0, 3.0, 42});
  std::vector<double> first;
  for (int i = 0; i < 5; ++i) first.push_back(schedule.nextDelayS());
  schedule.reset();
  EXPECT_EQ(schedule.attempt(), 0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(schedule.nextDelayS(), first[size_t(i)]);
  }
}

TEST(Backoff, DelaysGrowOnAverage) {
  // The point of backoff: later retries should usually wait longer.
  BackoffSchedule schedule({0.25, 120.0, 3.0, 9});
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 3; ++i) early += schedule.nextDelayS();
  for (int i = 0; i < 7; ++i) schedule.nextDelayS();
  for (int i = 0; i < 3; ++i) late += schedule.nextDelayS();
  EXPECT_GT(late, early);
}

// ---------------------------------------------------------------- breaker

CircuitBreakerConfig tinyBreaker() {
  CircuitBreakerConfig c;
  c.failuresToOpen = 3;
  c.openCooldownS = 5.0;
  c.cooldownMultiplier = 2.0;
  c.maxCooldownS = 40.0;
  c.halfOpenFailuresToTrip = 2;
  return c;
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailures) {
  CircuitBreaker breaker(tinyBreaker());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.onFailure(1.0);
  breaker.onFailure(2.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.onFailure(3.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_DOUBLE_EQ(breaker.probeDeadlineS(), 3.0 + 5.0);
}

TEST(CircuitBreaker, SuccessClearsTheFailureRun) {
  CircuitBreaker breaker(tinyBreaker());
  breaker.onFailure(1.0);
  breaker.onFailure(2.0);
  breaker.onSuccess();
  breaker.onFailure(3.0);
  breaker.onFailure(4.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, OpenRefusesUntilCooldownThenHalfOpenProbe) {
  CircuitBreaker breaker(tinyBreaker());
  for (double t : {1.0, 2.0, 3.0}) breaker.onFailure(t);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  EXPECT_FALSE(breaker.allowAttempt(4.0));
  EXPECT_FALSE(breaker.allowAttempt(7.9));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  // Cooldown elapsed: exactly one probe is let through.
  EXPECT_TRUE(breaker.allowAttempt(8.0));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.allowAttempt(8.1));  // probe already in flight
}

TEST(CircuitBreaker, HalfOpenSuccessCloses) {
  CircuitBreaker breaker(tinyBreaker());
  for (double t : {1.0, 2.0, 3.0}) breaker.onFailure(t);
  ASSERT_TRUE(breaker.allowAttempt(8.0));
  breaker.onSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.halfOpenFailures(), 0);
  EXPECT_TRUE(breaker.allowAttempt(8.5));
}

TEST(CircuitBreaker, FailedProbeReopensWithEscalatedCooldown) {
  CircuitBreaker breaker(tinyBreaker());
  for (double t : {1.0, 2.0, 3.0}) breaker.onFailure(t);
  ASSERT_TRUE(breaker.allowAttempt(8.0));   // probe #1
  breaker.onFailure(9.0);                   // probe fails
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_DOUBLE_EQ(breaker.cooldownS(), 10.0);  // 5 * 2
  EXPECT_DOUBLE_EQ(breaker.probeDeadlineS(), 19.0);
  EXPECT_FALSE(breaker.allowAttempt(18.9));
  EXPECT_TRUE(breaker.allowAttempt(19.0));  // probe #2
}

TEST(CircuitBreaker, TripsAfterRepeatedProbeFailures) {
  CircuitBreaker breaker(tinyBreaker());
  for (double t : {1.0, 2.0, 3.0}) breaker.onFailure(t);
  ASSERT_TRUE(breaker.allowAttempt(8.0));
  breaker.onFailure(9.0);                   // half-open failure #1
  ASSERT_TRUE(breaker.allowAttempt(19.0));
  breaker.onFailure(20.0);                  // half-open failure #2 -> trip
  EXPECT_EQ(breaker.state(), BreakerState::kTripped);
  EXPECT_FALSE(breaker.allowAttempt(1e9));  // tripped never self-heals

  breaker.resetTrip();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allowAttempt(1e9 + 1));
}

TEST(CircuitBreaker, CooldownEscalationIsCapped) {
  CircuitBreakerConfig config = tinyBreaker();
  config.halfOpenFailuresToTrip = 100;  // keep probing, never trip
  CircuitBreaker breaker(config);
  double t = 0.0;
  for (int i = 0; i < 3; ++i) breaker.onFailure(t += 1.0);
  for (int i = 0; i < 10; ++i) {
    t = breaker.probeDeadlineS();
    ASSERT_TRUE(breaker.allowAttempt(t));
    breaker.onFailure(t + 0.5);
    EXPECT_LE(breaker.cooldownS(), config.maxCooldownS);
  }
  EXPECT_DOUBLE_EQ(breaker.cooldownS(), config.maxCooldownS);
}

TEST(CircuitBreaker, StateNamesAreStable) {
  EXPECT_STREQ(breakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(breakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(breakerStateName(BreakerState::kHalfOpen), "half_open");
  EXPECT_STREQ(breakerStateName(BreakerState::kTripped), "tripped");
}

}  // namespace
}  // namespace tagspin::runtime
