// End-to-end smoke of the supervised runtime: flaky transport running the
// standard outage script, supervisor with watchdogs and checkpoints, a
// kill -9 + restore mid-spin, and a final 2D fix compared against the
// uninterrupted baseline.  A miniature fig_soak, sized for ctest; carries
// the `soak_smoke` label so sanitizer runs can select exactly this.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "eval/soak.hpp"

namespace tagspin::eval {
namespace {

TEST(SoakSmoke, OutagesRecoverAndKillResumesFromCheckpoint) {
  SoakConfig sc;
  sc.scenario.seed = 33;
  sc.scenario.fixedChannel = true;
  sc.revolutions = 4.0;  // short capture: 1 disconnect + 1 stall land in it
  sc.rigCount = 3;
  sc.checkpointPath =
      (std::filesystem::temp_directory_path() / "tagspin_soak_smoke.ckpt")
          .string();
  std::remove(sc.checkpointPath.c_str());

  const SoakResult r = runSoak(sc);

  // The paired baseline and the soaked run both produce a fix.
  ASSERT_TRUE(r.baselineOk);
  ASSERT_TRUE(r.soakOk) << r.soakFailure;
  EXPECT_GT(r.baselineErrorCm, 0.0);
  // The bench enforces soak/baseline <= 1.25x over the full 10-revolution
  // script; on this short capture the ratio is noisy (a few-cm baseline
  // inflates it), so the smoke test bounds the absolute error instead.
  EXPECT_LT(r.soakErrorCm, 25.0);
  EXPECT_EQ(r.soakGrade, "full");

  // Every tracked outage (disconnects + stalls) recovered in-run.
  ASSERT_FALSE(r.recoveries.empty());
  EXPECT_TRUE(r.allRecovered);
  EXPECT_GT(r.maxTimeToRecoverS, 0.0);

  // The stream actually flowed, and the outages actually cost something.
  EXPECT_GT(r.cleanReports, 0u);
  EXPECT_GT(r.reportsSeen, 0u);
  EXPECT_GT(r.framesLostWhileDown, 0u);
  EXPECT_GT(r.sessionDisconnects, 0u);

  // Kill -9 at 55%: the restart restored checkpointed progress and did not
  // re-acquire already-captured revolutions.
  ASSERT_TRUE(r.killed);
  EXPECT_TRUE(r.restoreOk);
  EXPECT_GT(r.snapshotsAtKill, 0u);
  EXPECT_GT(r.snapshotsRestored, 0u);
  EXPECT_LE(r.snapshotsRestored, r.snapshotsAtKill);
  EXPECT_LT(r.revolutionsReacquired, 1.0);
  EXPECT_GE(r.checkpointsSaved, 1u);

  // Exports stay well-formed (CI trends parse these).
  EXPECT_NE(soakCsv(r).find("event,at_s"), std::string::npos);
  EXPECT_NE(soakJson(r).find("\"all_recovered\": true"), std::string::npos);

  std::remove(sc.checkpointPath.c_str());
}

}  // namespace
}  // namespace tagspin::eval
