// End-to-end crash-consistency smoke: a reduced fig_crash run -- exhaustive
// power cuts over every writer workload, the seeded fault-schedule search,
// and the planted-bug falsification arm -- asserting the same gates the
// benchmark enforces.  Labeled crash_smoke so the sanitizer/CI scripts can
// select it with `ctest -L crash_smoke`; part of the default ctest run too.
#include <gtest/gtest.h>

#include "eval/crash.hpp"

namespace tagspin::eval {
namespace {

TEST(CrashSmoke, ExplorationSearchAndFalsificationAllPass) {
  CrashExploreConfig cfg;
  cfg.checkpointSaves = 4;
  cfg.captureReports = 48;
  cfg.reopenExtraReports = 6;
  cfg.fleetShards = 2;
  cfg.fleetRounds = 3;
  cfg.persistSeeds = 3;
  cfg.scheduleRounds = 32;
  cfg.brokenSearchRounds = 200;

  const CrashEvalResult r = runCrashEval(cfg);

  // Every workload explored, every syscall boundary power-cut.
  ASSERT_EQ(r.workloads.size(), 5u);
  for (const WorkloadCrashStats& w : r.workloads) {
    EXPECT_GT(w.boundaries, 0u) << w.name;
    EXPECT_GT(w.crashPoints, 0u) << w.name;
    EXPECT_EQ(w.violations, 0u) << w.name;
  }
  EXPECT_GE(r.totalCrashPoints, 500u);
  EXPECT_EQ(r.totalViolations, 0u)
      << (r.violations.empty() ? "" : r.violations[0].detail);

  // The schedule search exercised crashing and surviving runs.
  EXPECT_EQ(r.scheduleRuns, 32u);
  EXPECT_GT(r.scheduleCrashes, 0u);
  EXPECT_LT(r.scheduleCrashes, r.scheduleRuns);
  EXPECT_EQ(r.scheduleViolations, 0u);

  // The harness catches the planted bug and shrinks a failing schedule.
  EXPECT_TRUE(r.brokenWriterCaught);
  EXPECT_TRUE(r.brokenScheduleFound);
  EXPECT_GE(r.brokenShrunkFaults, 1u);
  EXPECT_FALSE(r.brokenArtifactJson.empty());

  EXPECT_TRUE(r.pass);
}

}  // namespace
}  // namespace tagspin::eval
