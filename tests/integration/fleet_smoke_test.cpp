// End-to-end smoke of the fleet runtime: 64 flaky sessions over 4 fault
// domains, one correlated outage dropping 20% of them mid-spin, paired
// against the all-healthy baseline arm on the same stream.  A miniature
// fig_fleet, sized for ctest (well under 30s); carries the `fleet_smoke`
// label so sanitizer/CI runs can select exactly this.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "eval/fleet.hpp"

namespace tagspin::eval {
namespace {

TEST(FleetSmoke, CorrelatedOutageStaysContainedAndEveryoneFixes) {
  FleetEvalConfig fc;
  fc.scenario.seed = 41;
  fc.scenario.fixedChannel = true;
  fc.sessions = 64;
  fc.shards = 4;
  fc.revolutions = 2.5;  // keeps both arms inside the 30s smoke budget
  const auto dir =
      std::filesystem::temp_directory_path() / "tagspin_fleet_smoke";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  fc.checkpointDir = dir.string();

  const FleetEvalResult r = runFleetEval(fc);

  // Every session in both arms eventually holds a fix.
  EXPECT_DOUBLE_EQ(r.baseline.fixRate, 1.0);
  EXPECT_DOUBLE_EQ(r.chaos.fixRate, 1.0)
      << r.chaos.sessionsWithFix << " of " << r.sessions;

  // The isolation claim, small-scale: healthy sessions' p99 fix latency
  // during the outage stays within 2x the baseline arm's.
  ASSERT_FALSE(r.baseline.healthyWindowLatenciesS.empty());
  ASSERT_FALSE(r.chaos.healthyWindowLatenciesS.empty());
  ASSERT_GT(r.baselineP99S, 0.0);
  EXPECT_LE(r.isolationRatio, 2.0);

  // The outage really happened and the whole cohort came back, paced by
  // the shard retry budgets rather than all on one tick.
  EXPECT_GT(r.chaos.outageCohort, 0u);
  EXPECT_EQ(r.chaos.recovered, r.chaos.outageCohort);
  EXPECT_GE(r.chaos.firstRecoveryS, 0.0);
  EXPECT_GE(r.chaos.recoverySpreadS, 0.0);

  // Containment machinery engaged: the storm was budget-paced, and the
  // batched per-shard checkpoints were written.
  EXPECT_GT(r.chaos.stats.budgetDenied, 0u);
  EXPECT_GT(r.chaos.stats.checkpointWrites, 0u);
  EXPECT_EQ(r.chaos.stats.checkpointFailures, 0u);

  // The machine-readable record stays well-formed (CI trends parse it).
  const std::string json = fleetJson(r);
  EXPECT_NE(json.find("\"isolation_ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"chaos_fix_rate\""), std::string::npos);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tagspin::eval
