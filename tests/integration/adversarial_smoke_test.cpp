// Miniature fig_adversarial, sized for ctest: one clean point and one
// ghost-corrupted point through the paired baseline/robust sweep.  Checks
// the headline robustness claims end to end -- consensus beats plain least
// squares under corruption, costs nothing when clean, and the spin
// self-diagnosis actually fires.  Carries the `adversarial` label so
// tools/run_sanitized.sh can select exactly this.
#include <gtest/gtest.h>

#include "eval/adversarial.hpp"

namespace tagspin::eval {
namespace {

TEST(AdversarialSmoke, ConsensusBeatsBaselineUnderGhostCorruption) {
  AdversarialConfig ac;
  ac.scenario.seed = 21;
  ac.trialsPerPoint = 8;
  ac.durationS = 15.0;
  ac.cases = {{0, 0.6, 3}, {1, 0.6, 3}};
  ac.baseline = AdversarialConfig::defaultBaseline();
  ac.robust = AdversarialConfig::defaultRobust();

  const AdversarialResult r = runAdversarialSweep(ac);
  ASSERT_EQ(r.points.size(), 2u);
  const AdversarialPoint& clean = r.points[0];
  const AdversarialPoint& corrupted = r.points[1];

  // Every trial fixes on both estimators, clean or corrupted.
  EXPECT_EQ(clean.baselineFixes, ac.trialsPerPoint);
  EXPECT_EQ(clean.robustFixes, ac.trialsPerPoint);
  EXPECT_EQ(corrupted.robustFixes, ac.trialsPerPoint);

  // Clean point: no robustness tax (medians within 5%) and no quarantines.
  EXPECT_GT(clean.baselineMedianCm, 0.0);
  EXPECT_LT(clean.robustMedianCm, 1.05 * clean.baselineMedianCm);
  EXPECT_EQ(clean.quarantinedSpins, 0u);

  // Corrupted point: the ghost lobe drags the baseline; consensus holds.
  // The full bench asserts <= 0.5x over 30 trials; 6 trials is noisier, so
  // the smoke bound is looser but still decisive.
  EXPECT_GT(corrupted.baselineMedianCm, 2.0 * clean.baselineMedianCm);
  EXPECT_LT(corrupted.robustMedianCm, 0.6 * corrupted.baselineMedianCm);

  // The self-diagnosis saw the corrupted spectra.
  EXPECT_GT(corrupted.suspectSpins + corrupted.quarantinedSpins, 0u);
  EXPECT_LT(corrupted.meanInlierFraction, 1.0);
  EXPECT_GE(corrupted.meanInlierFraction, 0.5);

  // Every trial produced a confidence ellipse.  Coverage is only asserted
  // on the corrupted point: there the between-rig disagreement inflates
  // the pairs-bootstrap region past the damage, while on the clean point
  // the residual error is common-mode multipath bias, which no internal
  // resampling can see (the calibrated-coverage guarantee lives in the
  // robust_test bootstrap suite, where the error model matches).
  EXPECT_EQ(clean.ellipseTrials, ac.trialsPerPoint);
  EXPECT_EQ(corrupted.ellipseTrials, ac.trialsPerPoint);
  EXPECT_GE(corrupted.ellipseCovered, corrupted.ellipseTrials - 1);
}

}  // namespace
}  // namespace tagspin::eval
