// End-to-end resource-exhaustion smoke: a reduced fig_oom run --
// allocation failures injected across all five workloads, the seeded
// fault-schedule search, the zero-cost parity gate, the sustained-pressure
// arm, and the planted-bug falsification arm -- asserting the same gates
// the benchmark enforces.  Labeled oom_smoke so the sanitizer/CI scripts
// can select it with `ctest -L oom_smoke`; part of the default ctest run
// too.
#include <gtest/gtest.h>

#include "eval/oom.hpp"

namespace tagspin::eval {
namespace {

TEST(OomSmoke, ExplorationPressureParityAndFalsificationAllPass) {
  OomExploreConfig cfg;
  cfg.fleetSessions = 4;
  cfg.fleetShards = 2;
  cfg.pointsPerWorkload = 12;
  cfg.scheduleRounds = 6;
  cfg.replaySessions = 6;
  cfg.replayReports = 64;
  cfg.trackerFixes = 160;
  cfg.trackerHistoryLimit = 48;
  cfg.brokenSearchRounds = 120;

  const OomEvalResult r = runOomEval(cfg);

  // Every workload explored, faults injected at sampled reservation
  // boundaries, zero invariant violations.
  ASSERT_EQ(r.workloads.size(), 5u);
  for (const WorkloadOomStats& w : r.workloads) {
    EXPECT_GT(w.boundaries, 0u) << w.name;
    EXPECT_GT(w.points, 0u) << w.name;
    EXPECT_GT(w.denials, 0u) << w.name;
    EXPECT_EQ(w.violations, 0u) << w.name;
  }
  EXPECT_EQ(r.totalPoints, 60u);
  EXPECT_EQ(r.totalViolations, 0u)
      << (r.violations.empty() ? "" : r.violations[0].detail);

  // Multi-fault schedule search stays clean too.
  EXPECT_EQ(r.scheduleRuns, 6u);
  EXPECT_GT(r.scheduleDenials, 0u);
  EXPECT_EQ(r.scheduleViolations, 0u);

  // The seam costs nothing: fix digests bit-identical with accounting
  // off vs a fault-free environment attached.
  EXPECT_TRUE(r.parityChecked);
  EXPECT_TRUE(r.parityBitIdentical)
      << r.parityBaselineDigest << " vs " << r.paritySeamDigest;

  // Under a sustained ~80%-utilization shard budget the fleet trims
  // instead of failing: fix rate holds and accounting returns to zero.
  EXPECT_TRUE(r.pressureChecked);
  EXPECT_GE(r.pressureFixRate, 0.99);
  EXPECT_TRUE(r.pressureRecovered);
  EXPECT_EQ(r.pressureEjections, 0u);

  // The harness catches the planted release-without-reserve bug and
  // shrinks a failing schedule to a minimal artifact.
  EXPECT_TRUE(r.brokenCacheCaught);
  EXPECT_TRUE(r.brokenScheduleFound);
  EXPECT_GE(r.brokenShrunkFaults, 1u);
  EXPECT_FALSE(r.brokenArtifactJson.empty());

  EXPECT_TRUE(r.pass);
}

}  // namespace
}  // namespace tagspin::eval
