// Full-pipeline integration tests: simulator -> Gen2 reports -> calibration
// prelude -> angle spectra -> fix, in 2D and 3D, under the complete noise
// model (phase noise, interference outliers, multipath, orientation effect,
// device diversity).
#include <gtest/gtest.h>

#include "core/tagspin.hpp"
#include "eval/estimators.hpp"
#include "eval/runner.hpp"
#include "geom/angles.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

namespace tagspin {
namespace {

sim::World makeWorld(uint64_t seed, bool fixedChannel = true,
                     double planeZ = 0.0) {
  sim::ScenarioConfig sc;
  sc.seed = seed;
  sc.fixedChannel = fixedChannel;
  sc.rigPlaneZ = planeZ;
  return sim::makeTwoRigWorld(sc);
}

core::TagspinSystem makeServer(const sim::World& world, bool calibrate) {
  std::map<rfid::Epc, core::OrientationModel> models;
  if (calibrate) models = eval::runCalibrationPrelude(world, 60.0);
  return eval::buildTagspinServer(world, models, {});
}

TEST(EndToEnd, TwoDimensionalAccuracy) {
  sim::World world = makeWorld(1);
  const core::TagspinSystem server = makeServer(world, true);
  // A handful of representative reader positions.
  const geom::Vec3 positions[] = {
      {0.8, 1.6, 0.0}, {-0.9, 2.2, 0.0}, {0.1, 2.8, 0.0}, {1.3, 1.2, 0.0}};
  double worst = 0.0;
  for (const geom::Vec3& truth : positions) {
    sim::World w = world;
    sim::placeReaderAntenna(w, 0, truth);
    const auto reports = sim::interrogate(w, {30.0, 0, 0});
    const core::Fix2D fix = server.locate2D(reports);
    worst = std::max(worst, geom::distance(fix.position, truth.xy()));
  }
  // Paper regime: centimeter-level.  Allow generous headroom for the worst
  // of four placements under the full noise model.
  EXPECT_LT(worst, 0.20);
}

TEST(EndToEnd, ThreeDimensionalAccuracy) {
  sim::World world = makeWorld(2, true, 0.095);
  const core::TagspinSystem server = makeServer(world, true);
  const geom::Vec3 truth{0.7, 1.9, 0.095 + 0.85};
  sim::World w = world;
  sim::placeReaderAntenna(w, 0, truth);
  const auto reports = sim::interrogate(w, {30.0, 0, 0});
  const core::Fix3D fix = server.locate3D(reports);
  EXPECT_LT(geom::distance(fix.position, truth), 0.30);
  EXPECT_GT(fix.position.z, 0.3);  // the z>=plane prior picked up the height
}

TEST(EndToEnd, DeterministicGivenSeeds) {
  sim::World world = makeWorld(3);
  const core::TagspinSystem server = makeServer(world, false);
  sim::placeReaderAntenna(world, 0, {0.5, 2.0, 0.0});
  const auto r1 = sim::interrogate(world, {15.0, 0, 1});
  const auto r2 = sim::interrogate(world, {15.0, 0, 1});
  const core::Fix2D f1 = server.locate2D(r1);
  const core::Fix2D f2 = server.locate2D(r2);
  EXPECT_DOUBLE_EQ(f1.position.x, f2.position.x);
  EXPECT_DOUBLE_EQ(f1.position.y, f2.position.y);
}

TEST(EndToEnd, CalibrationImprovesAccuracyOnAverage) {
  // Across several placements, the orientation-calibrated pipeline beats
  // the uncalibrated one (paper Fig. 11(b), ~1.7x).
  sim::World world = makeWorld(4);
  const core::TagspinSystem calibrated = makeServer(world, true);
  const core::TagspinSystem raw = makeServer(world, false);

  double calAcc = 0.0, rawAcc = 0.0;
  const geom::Vec3 positions[] = {
      {0.6, 1.5, 0.0}, {-0.8, 2.0, 0.0}, {0.2, 2.6, 0.0}, {-1.2, 1.4, 0.0},
      {1.1, 2.3, 0.0}};
  for (const geom::Vec3& truth : positions) {
    sim::World w = world;
    sim::placeReaderAntenna(w, 0, truth);
    const auto reports = sim::interrogate(w, {30.0, 0, 2});
    calAcc += geom::distance(calibrated.locate2D(reports).position,
                             truth.xy());
    rawAcc += geom::distance(raw.locate2D(reports).position, truth.xy());
  }
  EXPECT_LT(calAcc, rawAcc);
}

TEST(EndToEnd, ChannelHoppingHandled) {
  // Regulatory 16-channel hopping with per-channel grouping still localizes.
  sim::World world = makeWorld(5, /*fixedChannel=*/false);
  const core::TagspinSystem server = makeServer(world, true);
  const geom::Vec3 truth{0.4, 1.8, 0.0};
  sim::placeReaderAntenna(world, 0, truth);
  const auto reports = sim::interrogate(world, {30.0, 0, 0});
  const core::Fix2D fix = server.locate2D(reports);
  EXPECT_LT(geom::distance(fix.position, truth.xy()), 0.25);
}

TEST(EndToEnd, MultiAntennaCalibration) {
  // All four ports of a Speedway-class reader calibrated one by one.
  sim::ScenarioConfig sc;
  sc.seed = 6;
  sc.fixedChannel = true;
  sc.antennaCount = 4;
  sim::World world = sim::makeTwoRigWorld(sc);
  const core::TagspinSystem server = makeServer(world, true);

  const geom::Vec3 truths[4] = {
      {-1.2, 1.1, 0.0}, {-0.4, 2.3, 0.0}, {0.5, 2.1, 0.0}, {1.2, 1.0, 0.0}};
  for (int port = 0; port < 4; ++port) {
    sim::World w = world;
    for (int p = 0; p < 4; ++p) sim::placeReaderAntenna(w, p, truths[p]);
    const auto reports =
        sim::interrogate(w, {30.0, port, static_cast<uint64_t>(port)});
    const core::Fix2D fix = server.locate2D(reports);
    EXPECT_LT(geom::distance(fix.position, truths[port].xy()), 0.25)
        << "port " << port;
  }
}

TEST(EndToEnd, VerticalRigResolvesMirror) {
  sim::ScenarioConfig sc;
  sc.seed = 7;
  sc.fixedChannel = true;
  sc.rigPlaneZ = 1.0;
  sim::World world = sim::makeTwoRigWorld(sc);
  sim::addVerticalRig(world, {0.0, 0.4, 1.0}, sc);

  core::LocatorConfig lc;
  lc.zResolution = core::ZResolution::kBoth;
  const core::TagspinSystem server =
      eval::buildTagspinServer(world, {}, lc);

  // The reader is BELOW the rig plane.
  const geom::Vec3 truth{0.5, 1.8, 1.0 - 0.6};
  sim::placeReaderAntenna(world, 0, truth);
  const auto reports = sim::interrogate(world, {30.0, 0, 0});
  const core::Fix3D fix = server.locate3D(reports);
  EXPECT_FALSE(fix.mirrorCandidate.has_value());  // resolved
  EXPECT_LT(std::abs(fix.position.z - truth.z), 0.25);
}

}  // namespace
}  // namespace tagspin
