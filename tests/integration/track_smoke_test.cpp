// End-to-end smoke of the moving-reader tracking pipeline: scripted
// patrol trajectory -> quasi-static interrogation -> robust fixes with
// bootstrap ellipses -> Tracker (gating, model selection, lifecycle),
// over the clean / dropout / outage arms.  A miniature fig_track, sized
// for ctest; carries the `track_smoke` label so sanitizer/CI runs can
// select exactly this.
#include <gtest/gtest.h>

#include "eval/track.hpp"

namespace tagspin::eval {
namespace {

TrackEvalConfig smokeConfig() {
  TrackEvalConfig cfg;
  cfg.windows = 36;  // ~1/3 of the bench run: one straight leg + a corner
  cfg.warmupWindows = 8;
  return cfg;
}

TEST(TrackSmoke, CleanArmConfirmsAndTightens) {
  TrackEvalConfig cfg = smokeConfig();
  const TrackEvalResult r = runTrackEval(cfg);

  // Every window produced a fix and the track confirmed early.
  EXPECT_EQ(r.clean.fixesProduced, cfg.windows);
  EXPECT_EQ(r.clean.finalState, "confirmed");
  EXPECT_EQ(r.clean.stats.reinits, 0u);
  EXPECT_EQ(r.clean.stats.drops, 0u);

  // Sequential filtering beats the independent fixes.  The bench enforces
  // <= 0.7x over the full 120-window patrol; this short arm asserts the
  // direction (< 1x) so the smoke stays robust at 1/3 length.
  EXPECT_GT(r.clean.fixRmseCm, 0.0);
  EXPECT_LT(r.clean.trackRmseCm, r.clean.fixRmseCm);

  // The dropout arm coasted through its gaps and gated its ghosts without
  // losing the track.
  EXPECT_GT(r.dropout.gapWindows, 0);
  EXPECT_EQ(r.dropout.stats.reinits, 0u);
  EXPECT_GE(r.dropout.stats.gateRejects,
            static_cast<uint64_t>(r.dropout.ghostWindows));
  EXPECT_TRUE(r.dropout.finalState == "confirmed" ||
              r.dropout.finalState == "coasting");

  // The outage script never killed the track.
  EXPECT_TRUE(r.outageSurvived);
  EXPECT_EQ(r.outage.stats.reinits, 0u);

  // Replaying the identical corpus is bit-identical.
  EXPECT_TRUE(r.replayDeterministic);
  EXPECT_EQ(r.replayDigest1, r.replayDigest2);
  EXPECT_NE(r.replayDigest1, 0u);
}

TEST(TrackSmoke, SeedChangesTrajectoryDigest) {
  TrackEvalConfig a = smokeConfig();
  a.windows = 16;
  a.warmupWindows = 4;
  TrackEvalConfig b = a;
  b.seed = a.seed + 1;
  const TrackEvalResult ra = runTrackEval(a);
  const TrackEvalResult rb = runTrackEval(b);
  // Different noise realizations must not collide; same config twice must.
  EXPECT_NE(ra.dropout.trajectoryDigest, rb.dropout.trajectoryDigest);
  const TrackEvalResult ra2 = runTrackEval(a);
  EXPECT_EQ(ra.dropout.trajectoryDigest, ra2.dropout.trajectoryDigest);
  EXPECT_EQ(ra.clean.trajectoryDigest, ra2.clean.trajectoryDigest);
}

}  // namespace
}  // namespace tagspin::eval
