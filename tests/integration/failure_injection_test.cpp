// Failure-injection tests: the pipeline must fail loudly and informatively
// on degenerate inputs, and degrade gracefully on marginal ones.
#include <gtest/gtest.h>

#include "core/tagspin.hpp"
#include "eval/estimators.hpp"
#include "geom/angles.hpp"
#include "rfid/llrp.hpp"
#include "sim/faults.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

namespace tagspin {
namespace {

sim::World makeWorld(uint64_t seed = 11) {
  sim::ScenarioConfig sc;
  sc.seed = seed;
  sc.fixedChannel = true;
  return sim::makeTwoRigWorld(sc);
}

TEST(FailureInjection, EmptyStreamThrows) {
  const sim::World world = makeWorld();
  const core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});
  EXPECT_THROW(server.locate2D({}), std::runtime_error);
  EXPECT_THROW(server.locate3D({}), std::runtime_error);
}

TEST(FailureInjection, OneRigSilencedThrows) {
  sim::World world = makeWorld();
  sim::placeReaderAntenna(world, 0, {0.6, 1.8, 0.0});
  auto reports = sim::interrogate(world, {10.0, 0, 0});
  // Drop every report of rig 1.
  const rfid::Epc silenced = world.rigs[1].tag.epc;
  rfid::ReportStream filtered;
  for (const rfid::TagReport& r : reports) {
    if (!(r.epc == silenced)) filtered.push_back(r);
  }
  const core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});
  EXPECT_THROW(server.locate2D(filtered), std::runtime_error);
}

TEST(FailureInjection, TinySnapshotCountStillReturnsAFix) {
  sim::World world = makeWorld();
  sim::placeReaderAntenna(world, 0, {0.6, 1.8, 0.0});
  // One second of interrogation: a few dozen reads per rig.
  const auto reports = sim::interrogate(world, {1.0, 0, 0});
  const core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});
  const core::Fix2D fix = server.locate2D(reports);
  // Coarse but finite and in the room.
  EXPECT_LT(geom::distance(fix.position, geom::Vec2{0.6, 1.8}), 1.5);
}

TEST(FailureInjection, ReaderOnRigAxisIsDegenerate) {
  // The reader collinear with both rig centers: rays are (anti)parallel.
  sim::World world = makeWorld();
  sim::placeReaderAntenna(world, 0, {2.5, 0.0, 0.0});  // on the rig line
  const auto reports = sim::interrogate(world, {15.0, 0, 0});
  const core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});
  // Either an explicit failure or a wildly uncertain fix is acceptable;
  // what must not happen is a confidently wrong silent result, so we accept
  // a throw OR a fix and simply require no crash.
  try {
    const core::Fix2D fix = server.locate2D(reports);
    // Noise separates the rays slightly; the fix can be anywhere along the
    // axis but must be finite.
    EXPECT_TRUE(std::isfinite(fix.position.x));
    EXPECT_TRUE(std::isfinite(fix.position.y));
  } catch (const std::runtime_error&) {
    SUCCEED();
  }
}

TEST(FailureInjection, SaturatedInterferenceDegradesGracefully) {
  // 30% of reads corrupted: error grows but the fix stays in the room.
  sim::ScenarioConfig sc;
  sc.seed = 12;
  sc.fixedChannel = true;
  sim::World world = sim::makeTwoRigWorld(sc);
  rf::ChannelConfig cc = world.channel.config();
  cc.phaseOutlierProb = 0.30;
  world.channel = rf::BackscatterChannel(cc, world.channel.scatterers());
  const geom::Vec3 truth{0.4, 2.0, 0.0};
  sim::placeReaderAntenna(world, 0, truth);
  const auto reports = sim::interrogate(world, {30.0, 0, 0});
  const core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});
  const core::Fix2D fix = server.locate2D(reports);
  EXPECT_LT(geom::distance(fix.position, truth.xy()), 0.8);
}

TEST(FailureInjection, StoppedDiskRejectedByValidation) {
  sim::World world = makeWorld();
  world.rigs[0].rig.omegaRadPerS = 0.0;
  EXPECT_THROW(sim::interrogate(world, {1.0, 0, 0}), std::logic_error);
}

TEST(FailureInjection, BadAntennaPort) {
  sim::World world = makeWorld();
  sim::InterrogateConfig ic;
  ic.antennaPort = 3;  // single-antenna reader
  EXPECT_THROW(sim::interrogate(world, ic), std::out_of_range);
}

TEST(FailureInjection, ProfileRequiresSnapshots) {
  core::RigKinematics kin{0.10, 0.5, 0.0, geom::kPi / 2.0};
  EXPECT_THROW(core::PowerProfile({}, kin, {}), std::invalid_argument);
}

// --- structured fault injection through the resilient path ---

TEST(FailureInjection, DuplicatesAndReordersDoNotMoveTheFix) {
  sim::World world = makeWorld(31);
  const geom::Vec3 truth{0.5, 1.9, 0.0};
  sim::placeReaderAntenna(world, 0, truth);
  const auto clean = sim::interrogate(world, {15.0, 0, 0});
  const core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});

  const auto cleanFix = server.tryLocate2D(clean);
  ASSERT_TRUE(cleanFix) << cleanFix.error().message;

  sim::FaultConfig fc;
  fc.duplicateProb = 0.15;
  fc.reorderProb = 0.10;
  sim::FaultInjector injector(fc);
  const auto dirty = injector.corruptReports(clean);
  ASSERT_GT(injector.stats().duplicatesInserted, 0u);
  ASSERT_GT(injector.stats().reordersApplied, 0u);

  const auto fix = server.tryLocate2D(dirty);
  ASSERT_TRUE(fix) << fix.error().message;
  // Dedup and sorting neutralise retransmits and swaps almost entirely.
  EXPECT_EQ(fix->report.grade, core::FixGrade::kFull);
  EXPECT_LT(geom::distance(fix->fix.position, cleanFix->fix.position), 0.10);
}

TEST(FailureInjection, DropoutWindowIsDroppedWhenCoverageGateDemandsIt) {
  sim::ScenarioConfig sc;
  sc.seed = 33;
  sc.fixedChannel = true;
  sim::World world = sim::makeRigRowWorld(sc, 3);
  const geom::Vec3 truth{0.4, 2.0, 0.0};
  sim::placeReaderAntenna(world, 0, truth);
  const auto clean = sim::interrogate(world, {15.0, 0, 0});

  sim::FaultConfig fc;
  sim::TagDropout d;
  d.epc = world.rigs[0].tag.epc;
  d.startFraction = 0.35;
  d.endFraction = 0.65;  // rig 0 silent for 30% of the spin
  fc.dropouts.push_back(d);
  sim::FaultInjector injector(fc);
  const auto dirty = injector.corruptReports(clean);
  ASSERT_GT(injector.stats().reportsDropped, 0u);

  core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});
  core::RigHealthThresholds gate;
  gate.minArcCoverage = 0.75;  // a 30% contiguous hole fails this
  server.setHealthThresholds(gate);

  const auto fix = server.tryLocate2D(dirty);
  ASSERT_TRUE(fix) << fix.error().message;
  EXPECT_EQ(fix->report.grade, core::FixGrade::kDegraded);
  ASSERT_EQ(fix->report.droppedRigs.size(), 1u);
  EXPECT_EQ(fix->report.droppedRigs[0], 0u);
  EXPECT_NE(fix->report.droppedReasons[0].find("arc coverage"),
            std::string::npos)
      << fix->report.droppedReasons[0];
  // The two clean rigs carry the fix.
  EXPECT_LT(geom::distance(fix->fix.position, truth.xy()), 0.8);
}

TEST(FailureInjection, TornFramesRecoverThroughTolerantDecode) {
  sim::World world = makeWorld(37);
  const geom::Vec3 truth{0.6, 1.8, 0.0};
  sim::placeReaderAntenna(world, 0, truth);
  const auto clean = sim::interrogate(world, {15.0, 0, 0});
  const core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});
  const auto cleanFix = server.tryLocate2D(clean);
  ASSERT_TRUE(cleanFix) << cleanFix.error().message;

  sim::FaultConfig fc;
  fc.frameBitFlipProb = 0.05;
  fc.frameTruncateProb = 0.02;
  sim::FaultInjector injector(fc);
  const auto wire = rfid::llrp::encodeStream(clean);
  const auto dirty = injector.corruptBytes(wire);
  ASSERT_GT(injector.stats().framesTruncated, 0u);

  rfid::llrp::DecodeStats stats;
  const auto recovered = rfid::llrp::decodeStreamTolerant(dirty, &stats);
  // The overwhelming majority of frames survive...
  EXPECT_GT(recovered.size(), clean.size() * 8 / 10);
  EXPECT_GT(stats.bytesResynced, 0u);
  // ...and the fix barely moves.
  const auto fix = server.tryLocate2D(recovered);
  ASSERT_TRUE(fix) << fix.error().message;
  EXPECT_LT(geom::distance(fix->fix.position, cleanFix->fix.position), 0.15);
}

TEST(FailureInjection, OrientationPreludeNeedsRevolutionCoverage) {
  // A prelude that samples only a sliver of the rotation cannot constrain
  // the Fourier fit; the fit must refuse rather than extrapolate.
  const core::RigKinematics kin{0.0, 0.5, 0.0, geom::kPi / 2.0};
  std::vector<core::Snapshot> snaps;
  for (int i = 0; i < 100; ++i) {
    core::Snapshot s;
    s.timeS = 0.001 * i;  // 0.1 s: ~0.05 rad of rotation
    s.phaseRad = 1.0;
    s.lambdaM = 0.325;
    snaps.push_back(s);
  }
  EXPECT_THROW(core::OrientationModel::fit(snaps, kin, 0.0),
               std::runtime_error);
}

}  // namespace
}  // namespace tagspin
