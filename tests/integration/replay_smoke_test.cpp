// End-to-end smoke of the record/replay loop: a supervised live session
// under the standard outage script recorded through the crash-safe capture
// writer, the capture replayed twice through an identical supervisor (the
// fix digests must be bit-identical), a seeded 1%-chunk corruption pass
// recovered tolerantly, and the capture fanned across a miniature fleet as
// load generation.  A miniature fig_replay, sized for ctest; carries the
// `replay_smoke` label so sanitizer runs can select exactly this.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "eval/replay.hpp"

namespace tagspin::eval {
namespace {

TEST(ReplaySmoke, CaptureIsADeterministicStandInForTheLiveRun) {
  ReplayEvalConfig rc;
  rc.scenario.seed = 57;
  rc.scenario.fixedChannel = true;
  rc.revolutions = 3.0;  // short capture; keeps the smoke under ctest budget
  rc.fleetSessions = 8;
  rc.fleetShards = 2;
  rc.capturePath = (std::filesystem::temp_directory_path() /
                    "tagspin_replay_smoke.tspc")
                       .string();
  std::remove(rc.capturePath.c_str());

  const ReplayEvalResult r = runReplayEval(rc);

  // The live (recorded) arm produced a fix and a non-trivial capture.
  ASSERT_TRUE(r.liveOk);
  EXPECT_GT(r.liveReportsIngested, 0u);
  EXPECT_GT(r.reportsCaptured, 0u);
  EXPECT_GT(r.chunksCaptured, 10u);
  // Strict and tolerant decodes of the intact file agree.
  EXPECT_TRUE(r.captureIntact);
  // The delta/dictionary coding beats the 40-byte LLRP frame comfortably.
  EXPECT_LT(r.bytesPerReport, 20.0);

  // Replaying twice yields bit-identical fixes -- the determinism gate.
  ASSERT_TRUE(r.replay1.ok) << r.replay1.failure;
  ASSERT_TRUE(r.replay2.ok) << r.replay2.failure;
  EXPECT_TRUE(r.replayDeterministic);
  EXPECT_EQ(r.replay1.fixDigest, r.replay2.fixDigest);

  // Replay parity with the live arm: same capture, same supervisor, same
  // fix to within the acceptance bound (bit-identical in practice).
  EXPECT_GE(r.fixParityCm, 0.0);
  EXPECT_LE(r.fixParityCm, 0.5);

  // 1%-of-chunks corruption: >= 99% of reports recovered, and the
  // recovered stream still produces a fix.
  EXPECT_GE(r.chunksCorrupted, 1u);
  EXPECT_EQ(r.corruptStats.chunksSkipped, r.chunksCorrupted);
  EXPECT_GE(r.recoveryRate, 0.99);
  EXPECT_TRUE(r.corruptReplay.ok) << r.corruptReplay.failure;

  // All-out drain throughput is measured and sane.
  EXPECT_GT(r.replayThroughputRps, 0.0);

  // Fleet load generation: every session reaches a fix from the shared
  // capture stream.
  EXPECT_EQ(r.fleetSessions, 8u);
  EXPECT_EQ(r.fleetSessionsWithFix, 8u);
  EXPECT_DOUBLE_EQ(r.fleetFixRate, 1.0);
  EXPECT_GT(r.fleetReportsIngested, 0u);

  // Exports stay well-formed (CI trends parse these).
  const std::string json = replayJson(r);
  EXPECT_NE(json.find("\"replay_deterministic\": true"), std::string::npos);
  EXPECT_NE(json.find("\"recovery_rate\""), std::string::npos);

  std::remove(rc.capturePath.c_str());
}

}  // namespace
}  // namespace tagspin::eval
