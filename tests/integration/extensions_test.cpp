// Integration tests of the extension modules over the full simulator:
// LLRP wire round-trip through localization, hologram refinement, quality
// metrics on live fixes, motor ripple, and fusion.
#include <gtest/gtest.h>

#include "core/fusion.hpp"
#include "core/hologram.hpp"
#include "core/quality.hpp"
#include "core/tagspin.hpp"
#include "eval/estimators.hpp"
#include "eval/runner.hpp"
#include "geom/angles.hpp"
#include "rfid/llrp.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

namespace tagspin {
namespace {

struct Scene {
  sim::World world;
  core::TagspinSystem server;
  geom::Vec3 truth;
  rfid::ReportStream reports;
};

Scene makeScene(uint64_t seed, const geom::Vec3& truth) {
  sim::ScenarioConfig sc;
  sc.seed = seed;
  sc.fixedChannel = true;
  Scene s{sim::makeTwoRigWorld(sc), core::TagspinSystem{}, truth, {}};
  const auto models = eval::runCalibrationPrelude(s.world, 60.0);
  s.server = eval::buildTagspinServer(s.world, models, {});
  sim::placeReaderAntenna(s.world, 0, truth);
  s.reports = sim::interrogate(s.world, {30.0, 0, 0});
  return s;
}

TEST(Extensions, LlrpWireRoundTripPreservesAccuracy) {
  const Scene s = makeScene(41, {0.6, 1.9, 0.0});
  const core::Fix2D direct = s.server.locate2D(s.reports);
  const rfid::ReportStream wire =
      rfid::llrp::decodeStream(rfid::llrp::encodeStream(s.reports));
  const core::Fix2D viaWire = s.server.locate2D(wire);
  // 12-bit phase + microsecond timestamps: differences are millimetric.
  EXPECT_LT(geom::distance(direct.position, viaWire.position), 0.01);
  EXPECT_LT(geom::distance(viaWire.position, s.truth.xy()), 0.15);
}

TEST(Extensions, HologramRefinementMatchesSpectra) {
  const Scene s = makeScene(42, {-0.5, 1.6, 0.0});
  const core::Fix2D spectra = s.server.locate2D(s.reports);

  auto obs = s.server.collectObservations(s.reports);
  const geom::Vec3 ref{spectra.position.x, spectra.position.y, 0.0};
  for (core::RigObservation& o : obs) {
    o.snapshots = core::calibrateOrientationAtPosition(
        o.snapshots, o.rig, o.orientation, ref);
  }
  const core::Fix2D holo = core::Hologram(obs).locate();
  EXPECT_LT(geom::distance(holo.position, s.truth.xy()), 0.15);
  EXPECT_LT(geom::distance(holo.position, spectra.position), 0.15);
}

TEST(Extensions, QualityMetricsTrackConditions) {
  // The same deployment scored in a benign vs a hostile RF environment:
  // confidence must rank them correctly.
  auto confidenceOf = [](uint64_t seed, double outlierProb) {
    sim::ScenarioConfig sc;
    sc.seed = seed;
    sc.fixedChannel = true;
    sim::World world = sim::makeTwoRigWorld(sc);
    rf::ChannelConfig cc = world.channel.config();
    cc.phaseOutlierProb = outlierProb;
    world.channel = rf::BackscatterChannel(cc, world.channel.scatterers());
    const core::TagspinSystem server =
        eval::buildTagspinServer(world, {}, {});
    sim::placeReaderAntenna(world, 0, {0.4, 1.6, 0.0});
    const auto reports = sim::interrogate(world, {20.0, 0, 0});
    const core::Fix2D fix = server.locate2D(reports);
    const auto obs = server.collectObservations(reports);
    std::vector<core::SpectrumQuality> spectra;
    std::vector<geom::Ray2> rays;
    for (size_t i = 0; i < obs.size(); ++i) {
      const core::PowerProfile profile(obs[i].snapshots,
                                       obs[i].rig.kinematics, {});
      spectra.push_back(core::assessSpectrum(profile));
      rays.push_back({obs[i].rig.center.xy(), fix.directions[i].azimuth});
    }
    return core::fixConfidence(spectra,
                               core::bearingGdop(rays, fix.position));
  };
  const double benign = confidenceOf(43, 0.0);
  const double hostile = confidenceOf(43, 0.45);
  EXPECT_GT(benign, hostile);
}

TEST(Extensions, MotorRippleDegradesGracefully) {
  auto errorWithJitter = [](double jitterRad) {
    sim::ScenarioConfig sc;
    sc.seed = 44;
    sc.fixedChannel = true;
    sim::World world = sim::makeTwoRigWorld(sc);
    for (sim::RigTag& rt : world.rigs) {
      rt.rig.speedJitterAmp = jitterRad;
    }
    const core::TagspinSystem server =
        eval::buildTagspinServer(world, {}, {});
    sim::placeReaderAntenna(world, 0, {0.5, 1.8, 0.0});
    const auto reports = sim::interrogate(world, {30.0, 0, 0});
    return geom::distance(server.locate2D(reports).position,
                          geom::Vec2{0.5, 1.8});
  };
  const double ideal = errorWithJitter(0.0);
  const double mild = errorWithJitter(geom::degToRad(1.0));
  const double severe = errorWithJitter(geom::degToRad(12.0));
  EXPECT_LT(mild, 0.15);       // ~1 degree ripple: still centimetric
  EXPECT_GT(severe, ideal);    // heavy ripple visibly hurts
}

TEST(Extensions, JitteredDiskAngleStaysNearNominal) {
  sim::SpinningRig rig;
  rig.omegaRadPerS = 0.5;
  rig.speedJitterAmp = geom::degToRad(3.0);
  rig.jitterPeriodS = 4.0;
  for (double t = 0.0; t < 20.0; t += 0.37) {
    EXPECT_NEAR(rig.diskAngle(t), 0.5 * t, geom::degToRad(3.0) + 1e-12);
  }
}

TEST(Extensions, FusionOverRoundsBeatsWorstRound) {
  sim::ScenarioConfig sc;
  sc.seed = 45;
  sc.fixedChannel = true;
  sim::World world = sim::makeTwoRigWorld(sc);
  const core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});
  const geom::Vec3 truth{0.7, 2.2, 0.0};
  sim::placeReaderAntenna(world, 0, truth);
  std::vector<geom::Vec2> fixes;
  double worst = 0.0;
  for (uint64_t round = 1; round <= 5; ++round) {
    const auto reports = sim::interrogate(world, {10.0, 0, round});
    fixes.push_back(server.locate2D(reports).position);
    worst = std::max(worst, geom::distance(fixes.back(), truth.xy()));
  }
  const geom::Vec2 fused = core::geometricMedian(fixes);
  EXPECT_LE(geom::distance(fused, truth.xy()), worst + 1e-12);
}

}  // namespace
}  // namespace tagspin
