#include "robust/spectrum_diag.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "geom/angles.hpp"

namespace tagspin::robust {
namespace {

/// Dense circular spectrum as a sum of wrapped Gaussian lobes.
struct Lobe {
  double angleRad;
  double amplitude;
  double sigmaRad;
};

std::vector<double> makeSpectrum(const std::vector<Lobe>& lobes,
                                 size_t n = 720) {
  std::vector<double> samples(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double angle = geom::kTwoPi * static_cast<double>(i) /
                         static_cast<double>(n);
    for (const Lobe& lobe : lobes) {
      const double d = geom::circularDistance(angle, lobe.angleRad);
      samples[i] +=
          lobe.amplitude * std::exp(-0.5 * (d / lobe.sigmaRad) * (d / lobe.sigmaRad));
    }
  }
  return samples;
}

constexpr double kDeg = geom::kPi / 180.0;

TEST(SpectrumDiag, CleanUnimodalSpectrumAccepts) {
  const auto samples = makeSpectrum({{1.2, 1.0, 3.0 * kDeg}});
  const SpinDiagnostics diag = diagnoseSpectrum(samples, 0.0);
  EXPECT_EQ(diag.verdict, SpinVerdict::kAccept);
  EXPECT_EQ(diag.ambiguousPeakCount, 0);
  ASSERT_EQ(diag.candidates.size(), 1u);
  EXPECT_LT(geom::circularDistance(diag.candidates[0].angleRad, 1.2),
            1.0 * kDeg);
  EXPECT_LT(diag.lobeWidthDeg, 20.0);
  EXPECT_GT(diag.peakToSidelobeRatio, 10.0);
}

TEST(SpectrumDiag, ModerateSidelobeStaysAccepted) {
  // Sidelobe at 40% of the main peak: well under the ambiguity ratio and
  // the peak-to-sidelobe ratio stays above the suspect gate.
  const auto samples = makeSpectrum(
      {{1.0, 1.0, 3.0 * kDeg}, {3.5, 0.4, 3.0 * kDeg}});
  const SpinDiagnostics diag = diagnoseSpectrum(samples, 0.0);
  EXPECT_EQ(diag.verdict, SpinVerdict::kAccept);
  EXPECT_EQ(diag.candidates.size(), 1u);  // sidelobe below ambiguityRatio
}

TEST(SpectrumDiag, StrongSidelobeIsSuspectWithBothCandidates) {
  const auto samples = makeSpectrum(
      {{1.0, 1.0, 3.0 * kDeg}, {3.5, 0.8, 3.0 * kDeg}});
  const SpinDiagnostics diag = diagnoseSpectrum(samples, 0.0);
  EXPECT_EQ(diag.verdict, SpinVerdict::kSuspect);
  EXPECT_GE(diag.ambiguousPeakCount, 1);
  ASSERT_GE(diag.candidates.size(), 2u);
  // Main peak first, then the ambiguous secondary, value-descending.
  EXPECT_LT(geom::circularDistance(diag.candidates[0].angleRad, 1.0),
            1.0 * kDeg);
  EXPECT_LT(geom::circularDistance(diag.candidates[1].angleRad, 3.5),
            1.0 * kDeg);
  EXPECT_GE(diag.candidates[0].value, diag.candidates[1].value);
}

TEST(SpectrumDiag, NearEqualPeaksQuarantine) {
  // A sidelobe within ~10% of the main peak cannot be told apart from the
  // true direction: the spin must not pick its own bearing.
  const auto samples = makeSpectrum(
      {{0.8, 1.0, 3.0 * kDeg}, {4.0, 0.95, 3.0 * kDeg}});
  const SpinDiagnostics diag = diagnoseSpectrum(samples, 0.0);
  EXPECT_EQ(diag.verdict, SpinVerdict::kQuarantine);
  EXPECT_LT(diag.peakToSidelobeRatio, 1.12);
  ASSERT_GE(diag.candidates.size(), 2u);
}

TEST(SpectrumDiag, GhostScoreLadder) {
  const auto samples = makeSpectrum({{2.0, 1.0, 3.0 * kDeg}});
  EXPECT_EQ(diagnoseSpectrum(samples, 0.1).verdict, SpinVerdict::kAccept);
  EXPECT_EQ(diagnoseSpectrum(samples, 0.40).verdict, SpinVerdict::kSuspect);
  EXPECT_EQ(diagnoseSpectrum(samples, 0.70).verdict,
            SpinVerdict::kQuarantine);
  // Out-of-range scores are clamped, not trusted.
  EXPECT_DOUBLE_EQ(diagnoseSpectrum(samples, 3.0).ghostScore, 1.0);
  EXPECT_DOUBLE_EQ(diagnoseSpectrum(samples, -1.0).ghostScore, 0.0);
}

TEST(SpectrumDiag, WideLobeDegradesVerdict) {
  const auto narrow = makeSpectrum({{1.5, 1.0, 5.0 * kDeg}});
  EXPECT_EQ(diagnoseSpectrum(narrow, 0.0).verdict, SpinVerdict::kAccept);
  const auto wide = makeSpectrum({{1.5, 1.0, 40.0 * kDeg}});
  const SpinDiagnostics diag = diagnoseSpectrum(wide, 0.0);
  EXPECT_GE(diag.lobeWidthDeg, 60.0);
  EXPECT_NE(diag.verdict, SpinVerdict::kAccept);
}

TEST(SpectrumDiag, TooFewSamplesQuarantine) {
  const std::vector<double> tiny{1.0, 2.0, 1.0, 0.5};
  const SpinDiagnostics diag = diagnoseSpectrum(tiny, 0.0);
  EXPECT_EQ(diag.verdict, SpinVerdict::kQuarantine);
  EXPECT_TRUE(diag.candidates.empty());
}

TEST(SpectrumDiag, FlatSpectrumQuarantine) {
  const std::vector<double> flat(128, 0.7);
  EXPECT_EQ(diagnoseSpectrum(flat, 0.0).verdict, SpinVerdict::kQuarantine);
}

TEST(SpectrumDiag, CandidateCountCapped) {
  std::vector<Lobe> lobes;
  for (int k = 0; k < 6; ++k) {
    lobes.push_back({geom::kTwoPi * k / 6.0 + 0.1, 1.0 - 0.02 * k,
                     3.0 * kDeg});
  }
  const SpinDiagnostics diag = diagnoseSpectrum(makeSpectrum(lobes), 0.0);
  const SpinDiagnosticsConfig defaults;
  EXPECT_LE(diag.candidates.size(), defaults.maxCandidates);
  EXPECT_EQ(diag.verdict, SpinVerdict::kQuarantine);
}

TEST(SpectrumDiag, VerdictNames) {
  EXPECT_EQ(std::string(spinVerdictName(SpinVerdict::kAccept)), "accept");
  EXPECT_EQ(std::string(spinVerdictName(SpinVerdict::kSuspect)), "suspect");
  EXPECT_EQ(std::string(spinVerdictName(SpinVerdict::kQuarantine)),
            "quarantine");
}

}  // namespace
}  // namespace tagspin::robust
