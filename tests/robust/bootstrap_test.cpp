#include "robust/bootstrap.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "geom/angles.hpp"
#include "geom/ray.hpp"

namespace tagspin::robust {
namespace {

/// Bearing samples for a rig watching `target` from `origin`: the observed
/// bearing is the true one plus `bearingError`, and the deviations are
/// draws from the estimator's own error distribution (sigma).
BearingSamples makeRay(const geom::Vec2& origin, const geom::Vec2& target,
                       double bearingError, double sigma, int deviations,
                       std::mt19937_64& rng) {
  std::normal_distribution<double> noise(0.0, sigma);
  BearingSamples ray;
  ray.origin = origin;
  ray.bearingRad = (target - origin).angle() + bearingError;
  for (int k = 0; k < deviations; ++k) {
    ray.deviationsRad.push_back(noise(rng));
  }
  return ray;
}

const std::vector<geom::Vec2> kOrigins{
    {-1.0, 0.0}, {1.0, 0.0}, {-0.8, 0.9}, {0.9, 0.8}};

TEST(Bootstrap, DegenerateInputsReturnEmpty) {
  EXPECT_FALSE(bootstrapEllipse({}, {0.0, 0.0}).has_value());

  std::mt19937_64 rng(3);
  std::vector<BearingSamples> one{
      makeRay(kOrigins[0], {0.2, 1.7}, 0.0, 0.01, 8, rng)};
  EXPECT_FALSE(bootstrapEllipse(one, {0.2, 1.7}).has_value());

  // Two rays but no deviation samples anywhere: nothing to resample.
  std::vector<BearingSamples> dry{
      makeRay(kOrigins[0], {0.2, 1.7}, 0.0, 0.01, 0, rng),
      makeRay(kOrigins[1], {0.2, 1.7}, 0.0, 0.01, 0, rng)};
  EXPECT_FALSE(bootstrapEllipse(dry, {0.2, 1.7}).has_value());
}

TEST(Bootstrap, EllipseGeometryIsSane) {
  const geom::Vec2 target{0.2, 1.7};
  std::mt19937_64 rng(5);
  std::vector<BearingSamples> rays;
  for (const geom::Vec2& o : kOrigins) {
    rays.push_back(makeRay(o, target, 0.0, 0.01, 12, rng));
  }
  const auto ellipse = bootstrapEllipse(rays, target);
  ASSERT_TRUE(ellipse.has_value());
  EXPECT_GT(ellipse->semiMajorM, 0.0);
  EXPECT_GE(ellipse->semiMajorM, ellipse->semiMinorM);
  EXPECT_DOUBLE_EQ(ellipse->confidenceLevel, 0.90);
  EXPECT_GT(ellipse->areaM2(), 0.0);
  // The region is centred on the fix and local: it contains the center and
  // excludes a point a metre away.
  EXPECT_TRUE(ellipse->contains(target));
  EXPECT_FALSE(ellipse->contains(target + geom::Vec2{1.0, 0.0}));
  // cm-scale bearing noise at ~2 m range: the axes stay in the cm regime.
  EXPECT_LT(ellipse->semiMajorM, 0.5);
}

TEST(Bootstrap, MoreBearingNoiseGrowsTheEllipse) {
  const geom::Vec2 target{0.2, 1.7};
  auto areaFor = [&](double sigma) {
    std::mt19937_64 rng(9);
    std::vector<BearingSamples> rays;
    for (const geom::Vec2& o : kOrigins) {
      rays.push_back(makeRay(o, target, 0.0, sigma, 12, rng));
    }
    const auto ellipse = bootstrapEllipse(rays, target);
    EXPECT_TRUE(ellipse.has_value());
    return ellipse ? ellipse->areaM2() : 0.0;
  };
  EXPECT_GT(areaFor(0.03), 3.0 * areaFor(0.005));
}

TEST(Bootstrap, CoverageMatchesConfidenceLevel) {
  // Calibration: over many seeded trials with bearing errors drawn from the
  // SAME distribution the deviations are drawn from, the 90% ellipse must
  // contain the truth in 85-95% of trials (the half-sampling identity says
  // the deviations need no rescaling).
  const geom::Vec2 target{0.2, 1.7};
  const double sigma = 0.01;
  const int trials = 300;
  int covered = 0, produced = 0;
  for (int t = 0; t < trials; ++t) {
    std::mt19937_64 rng(10'000 + t);
    std::normal_distribution<double> noise(0.0, sigma);
    std::vector<BearingSamples> rays;
    std::vector<geom::Ray2> observed;
    for (const geom::Vec2& o : kOrigins) {
      rays.push_back(makeRay(o, target, noise(rng), sigma, 12, rng));
      observed.push_back({o, rays.back().bearingRad});
    }
    const auto fix = geom::leastSquaresIntersection(observed);
    ASSERT_TRUE(fix.has_value());
    BootstrapConfig bc;
    bc.seed = 0xB0075 ^ static_cast<uint64_t>(t);
    const auto ellipse = bootstrapEllipse(rays, *fix, bc);
    if (!ellipse) continue;
    ++produced;
    if (ellipse->contains(target)) ++covered;
  }
  ASSERT_GT(produced, trials * 9 / 10);
  const double coverage =
      static_cast<double>(covered) / static_cast<double>(produced);
  EXPECT_GE(coverage, 0.85) << covered << "/" << produced;
  EXPECT_LE(coverage, 0.95) << covered << "/" << produced;
}

}  // namespace
}  // namespace tagspin::robust
