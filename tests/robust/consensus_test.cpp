#include "robust/consensus.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "geom/angles.hpp"
#include "geom/ray.hpp"

namespace tagspin::robust {
namespace {

BearingObservation observe(const geom::Vec2& origin, const geom::Vec2& target,
                           double angleError = 0.0, double value = 1.0) {
  BearingObservation obs;
  obs.origin = origin;
  obs.candidates.push_back(
      {geom::wrapTwoPi((target - origin).angle() + angleError), value});
  return obs;
}

TEST(Consensus, CleanRaysMatchLeastSquares) {
  // With a single well-behaved candidate per rig every IRLS weight is 1 and
  // the consensus fix must coincide with the unweighted least squares --
  // the no-robustness-tax property.
  const geom::Vec2 target{0.7, 2.1};
  std::mt19937_64 rng(11);
  std::normal_distribution<double> noise(0.0, 0.003);
  std::vector<BearingObservation> observations;
  std::vector<geom::Ray2> rays;
  for (const geom::Vec2 o : {geom::Vec2{-0.6, 0.0}, geom::Vec2{-0.2, 0.0},
                             geom::Vec2{0.2, 0.0}, geom::Vec2{0.6, 0.0}}) {
    const double err = noise(rng);
    observations.push_back(observe(o, target, err));
    rays.push_back({o, observations.back().candidates[0].angleRad});
  }
  const auto fix = consensusIntersection(observations);
  ASSERT_TRUE(fix.has_value());
  const auto ls = geom::leastSquaresIntersection(rays);
  ASSERT_TRUE(ls.has_value());
  EXPECT_LT(geom::distance(fix->position, *ls), 1e-6);
  EXPECT_DOUBLE_EQ(fix->inlierFraction, 1.0);
  for (double w : fix->weights) EXPECT_DOUBLE_EQ(w, 1.0);
  EXPECT_EQ(fix->behindOrigin, 0u);
}

TEST(Consensus, GhostCandidateOutvotedByGeometry) {
  // One rig's spectrum is bimodal with the WRONG lobe dominant: its main
  // candidate points 40 degrees off, the true direction is its weaker
  // second candidate.  Geometry must pick the weak-but-consistent one.
  const geom::Vec2 target{0.4, 1.8};
  std::vector<BearingObservation> observations{
      observe({-0.5, 0.0}, target), observe({0.5, 0.0}, target),
      observe({0.0, 0.6}, target)};
  BearingObservation corrupted;
  corrupted.origin = {-1.0, 0.3};
  const double trueAngle = (target - corrupted.origin).angle();
  corrupted.candidates.push_back(
      {geom::wrapTwoPi(trueAngle + geom::degToRad(40.0)), 1.0});  // ghost
  corrupted.candidates.push_back({geom::wrapTwoPi(trueAngle), 0.6});
  observations.push_back(corrupted);

  const auto fix = consensusIntersection(observations);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(geom::distance(fix->position, target), 0.01);
  EXPECT_EQ(fix->chosen[3], 1);  // the weaker, geometry-consistent lobe
  EXPECT_DOUBLE_EQ(fix->inlierFraction, 1.0);
}

TEST(Consensus, NearParallelBundleRejectsSingleCandidateGhost) {
  // Regression for the adversarial bench's hardest geometry: four rigs in
  // a row (a near-parallel ray bundle as seen from the reader) and one rig
  // offering ONLY a ghost bearing.  Metric perpendicular voting used to let
  // the ghost drag the fix ~1 m down-range; angular residuals plus the
  // trimmed loss must hold the fix at the healthy trio's point.
  const geom::Vec2 target{-0.65, 2.21};
  const std::vector<geom::Vec2> origins{
      {-0.6, 0.0}, {-0.2, 0.0}, {0.2, 0.0}, {0.6, 0.0}};
  std::vector<BearingObservation> observations;
  for (size_t i = 0; i < origins.size(); ++i) {
    observations.push_back(observe(origins[i], target));
  }
  // Rig 0 captured by a reflector: single candidate at 25.3 degrees, metres
  // away from every honest ray at range.
  observations[0].candidates[0].angleRad = geom::degToRad(25.3);

  const auto fix = consensusIntersection(observations);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(geom::distance(fix->position, target), 0.05);
  EXPECT_FALSE(fix->inlier[0]);
  EXPECT_DOUBLE_EQ(fix->weights[0], 0.0);  // trimmed, no residual pull
  EXPECT_NEAR(fix->inlierFraction, 0.75, 1e-12);
}

TEST(Consensus, RigidTransformEquivariance) {
  // Rotating and translating the whole scene must rotate and translate the
  // fix identically -- the estimator depends on geometry only.
  const geom::Vec2 target{0.9, 1.6};
  std::mt19937_64 rng(29);
  std::normal_distribution<double> noise(0.0, 0.004);
  std::vector<BearingObservation> observations;
  for (const geom::Vec2 o : {geom::Vec2{-0.5, 0.1}, geom::Vec2{0.4, -0.1},
                             geom::Vec2{0.0, 0.7}}) {
    observations.push_back(observe(o, target, noise(rng)));
  }
  // Include a ghost so the robust machinery (not just plain LS) is hit.
  observations[1].candidates.push_back(
      {geom::wrapTwoPi(observations[1].candidates[0].angleRad + 0.9), 1.4});
  std::swap(observations[1].candidates[0], observations[1].candidates[1]);

  const auto base = consensusIntersection(observations);
  ASSERT_TRUE(base.has_value());

  for (const double beta : {0.4, 1.9, -2.6}) {
    const geom::Vec2 shift{1.3, -0.8};
    const double c = std::cos(beta), s = std::sin(beta);
    std::vector<BearingObservation> moved = observations;
    for (BearingObservation& obs : moved) {
      obs.origin = geom::Vec2{c * obs.origin.x - s * obs.origin.y,
                              s * obs.origin.x + c * obs.origin.y} +
                   shift;
      for (BearingCandidate& cand : obs.candidates) {
        cand.angleRad = geom::wrapTwoPi(cand.angleRad + beta);
      }
    }
    const auto fix = consensusIntersection(moved);
    ASSERT_TRUE(fix.has_value()) << "beta=" << beta;
    const geom::Vec2 expected =
        geom::Vec2{c * base->position.x - s * base->position.y,
                   s * base->position.x + c * base->position.y} +
        shift;
    EXPECT_LT(geom::distance(fix->position, expected), 1e-6)
        << "beta=" << beta;
    EXPECT_EQ(fix->chosen, base->chosen);
  }
}

TEST(Consensus, ParallelBundleReturnsEmpty) {
  std::vector<BearingObservation> observations;
  for (double x : {-0.6, -0.2, 0.2, 0.6}) {
    BearingObservation obs;
    obs.origin = {x, 0.0};
    obs.candidates.push_back({1.1, 1.0});  // identical bearings: no crossing
    observations.push_back(obs);
  }
  EXPECT_FALSE(consensusIntersection(observations).has_value());
}

TEST(Consensus, DegenerateInputsReturnEmpty) {
  EXPECT_FALSE(consensusIntersection({}).has_value());
  std::vector<BearingObservation> one{observe({0.0, 0.0}, {1.0, 1.0})};
  EXPECT_FALSE(consensusIntersection(one).has_value());
  std::vector<BearingObservation> holey{observe({0.0, 0.0}, {1.0, 1.0}),
                                        observe({0.5, 0.0}, {1.0, 1.0})};
  holey[1].candidates.clear();
  EXPECT_FALSE(consensusIntersection(holey).has_value());
}

TEST(Consensus, ReportsBehindOriginRays) {
  // Three honest rigs and one whose only bearing points AWAY from the fix:
  // its ray parameter must come out negative and be counted.
  const geom::Vec2 target{0.3, 2.0};
  std::vector<BearingObservation> observations{
      observe({-0.5, 0.0}, target), observe({0.5, 0.0}, target),
      observe({0.0, 0.5}, target)};
  BearingObservation flipped;
  flipped.origin = {1.0, 0.2};
  flipped.candidates.push_back(
      {geom::wrapTwoPi((target - flipped.origin).angle() + geom::kPi), 1.0});
  observations.push_back(flipped);

  const auto fix = consensusIntersection(observations);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(geom::distance(fix->position, target), 0.01);
  // The flipped ray is an outlier (its bearing residual is ~pi)...
  EXPECT_FALSE(fix->inlier[3]);
  // ...and its ray parameter confirms the fix sits behind it.
  EXPECT_LT(fix->rayT[3], 0.0);
}

}  // namespace
}  // namespace tagspin::robust
