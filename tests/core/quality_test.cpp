#include "core/quality.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/angles.hpp"
#include "synthetic.hpp"

namespace tagspin::core {
namespace {

using testing::SyntheticConfig;
using testing::defaultKinematics;
using testing::makeSnapshots;

PowerProfile profileWith(double noise, double outliers,
                         ProfileFormula f = ProfileFormula::kEnhancedR) {
  SyntheticConfig sc;
  sc.readerAzimuth = 2.0;
  sc.noiseStd = noise;
  sc.outlierProb = outliers;
  ProfileConfig pc;
  pc.formula = f;
  return PowerProfile(makeSnapshots(sc), defaultKinematics(), pc);
}

TEST(AssessSpectrum, CleanTraceScoresWell) {
  const SpectrumQuality q = assessSpectrum(profileWith(0.01, 0.0));
  EXPECT_GT(q.peakValue, 0.95);
  EXPECT_LT(q.halfPowerWidthDeg, 30.0);
  EXPECT_GT(q.peakRatio, 1.5);
}

TEST(AssessSpectrum, NoiseWeakensPeak) {
  const SpectrumQuality clean = assessSpectrum(profileWith(0.02, 0.0));
  const SpectrumQuality noisy = assessSpectrum(profileWith(0.4, 0.10));
  EXPECT_GT(clean.peakValue, noisy.peakValue);
}

TEST(AssessSpectrum, RSharperThanQInWidth) {
  const SpectrumQuality r =
      assessSpectrum(profileWith(0.1, 0.0, ProfileFormula::kEnhancedR));
  const SpectrumQuality q =
      assessSpectrum(profileWith(0.1, 0.0, ProfileFormula::kRelativeQ));
  EXPECT_LT(r.halfPowerWidthDeg, q.halfPowerWidthDeg);
}

TEST(BearingGdop, PerpendicularBeatsShallow) {
  // Two rays crossing at 90 deg vs crossing at ~11 deg at the same range.
  const geom::Vec2 fix{0.0, 2.0};
  const std::vector<geom::Ray2> good{
      {{-2.0, 2.0}, 0.0},          // from the left, pointing +x
      {{0.0, 0.0}, geom::kPi / 2}  // from below, pointing +y
  };
  const std::vector<geom::Ray2> shallow{
      {{-0.2, 0.0}, (fix - geom::Vec2{-0.2, 0.0}).angle()},
      {{0.2, 0.0}, (fix - geom::Vec2{0.2, 0.0}).angle()}};
  EXPECT_LT(bearingGdop(good, fix), bearingGdop(shallow, fix));
}

TEST(BearingGdop, GrowsWithRange) {
  const std::vector<geom::Ray2> rays{
      {{-0.2, 0.0}, geom::kPi / 3}, {{0.2, 0.0}, 2 * geom::kPi / 3}};
  // Same rays evaluated at nearer / farther hypothetical fixes.
  EXPECT_LT(bearingGdop(rays, {0.0, 0.5}), bearingGdop(rays, {0.0, 3.0}));
}

TEST(BearingGdop, ParallelIsInfinite) {
  const std::vector<geom::Ray2> parallel{{{0.0, 0.0}, 1.0},
                                         {{1.0, 0.0}, 1.0}};
  EXPECT_TRUE(std::isinf(bearingGdop(parallel, {2.0, 2.0})));
}

TEST(FixConfidence, OrderedByQuality) {
  SpectrumQuality good;
  good.peakValue = 0.9;
  good.halfPowerWidthDeg = 10.0;
  good.peakRatio = 4.0;
  SpectrumQuality bad;
  bad.peakValue = 0.3;
  bad.halfPowerWidthDeg = 60.0;
  bad.peakRatio = 1.2;

  const std::vector<SpectrumQuality> goodPair{good, good};
  const std::vector<SpectrumQuality> mixed{good, bad};
  const double cGood = fixConfidence(goodPair, 2.0);
  const double cMixed = fixConfidence(mixed, 2.0);
  const double cBadGeometry = fixConfidence(goodPair, 40.0);
  EXPECT_GT(cGood, cMixed);
  EXPECT_GT(cGood, cBadGeometry);
  EXPECT_GE(cGood, 0.0);
  EXPECT_LE(cGood, 1.0);
}

TEST(FixConfidence, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(fixConfidence({}, 1.0), 0.0);
  SpectrumQuality q;
  q.peakValue = 0.9;
  q.halfPowerWidthDeg = 10.0;
  q.peakRatio = 4.0;
  const std::vector<SpectrumQuality> one{q};
  EXPECT_DOUBLE_EQ(
      fixConfidence(one, std::numeric_limits<double>::infinity()), 0.0);
}

TEST(RigHealth, CleanTraceIsHealthy) {
  SyntheticConfig sc;
  sc.readerAzimuth = 1.3;
  sc.noiseStd = 0.05;
  const auto snaps = makeSnapshots(sc);
  const RigHealth h = assessRigHealth(snaps, defaultKinematics());
  EXPECT_EQ(h.snapshotCount, sc.count);
  EXPECT_NEAR(h.durationS, sc.durationS, 0.5);
  // 30 s at 0.5 rad/s is ~2.4 revolutions: the full circle is covered.
  EXPECT_GT(h.arcCoverage, 0.95);
  EXPECT_GT(h.spectrum.peakValue, 0.5);
  EXPECT_TRUE(isHealthy(h, RigHealthThresholds{}));
}

TEST(RigHealth, ContiguousDropoutLowersArcCoverage) {
  SyntheticConfig sc;
  sc.readerAzimuth = 1.3;
  sc.durationS = 12.6;  // almost exactly one revolution at 0.5 rad/s
  const auto full = makeSnapshots(sc);
  // Silence the middle 30% of the interrogation.
  std::vector<Snapshot> gappy;
  const double t0 = 0.35 * sc.durationS;
  const double t1 = 0.65 * sc.durationS;
  for (const Snapshot& s : full) {
    if (s.timeS < t0 || s.timeS >= t1) gappy.push_back(s);
  }
  const RigHealth h = assessRigHealth(gappy, defaultKinematics());
  // A 30% time gap on a one-revolution spin is a ~30% aperture hole.
  EXPECT_LT(h.arcCoverage, 0.80);
  EXPECT_GT(h.arcCoverage, 0.55);
  RigHealthThresholds strict;
  strict.minArcCoverage = 0.85;
  EXPECT_FALSE(isHealthy(h, strict));
  EXPECT_TRUE(isHealthy(h, RigHealthThresholds{}));  // default gate is 0.30
}

TEST(RigHealth, DegenerateInputsScoreZeroWithoutThrowing) {
  const RigHealth empty = assessRigHealth({}, defaultKinematics());
  EXPECT_EQ(empty.snapshotCount, 0u);
  EXPECT_EQ(empty.arcCoverage, 0.0);
  EXPECT_EQ(empty.spectrum.peakValue, 0.0);
  EXPECT_FALSE(isHealthy(empty, RigHealthThresholds{}));

  std::vector<Snapshot> one(1);
  one[0].lambdaM = 0.325;
  const RigHealth single = assessRigHealth(one, defaultKinematics());
  EXPECT_EQ(single.snapshotCount, 1u);
  EXPECT_EQ(single.durationS, 0.0);
  EXPECT_FALSE(isHealthy(single, RigHealthThresholds{}));
}

TEST(RigHealth, ThresholdsGateEachAxisIndependently) {
  SyntheticConfig sc;
  sc.readerAzimuth = 0.9;
  const auto snaps = makeSnapshots(sc);
  const RigHealth h = assessRigHealth(snaps, defaultKinematics());

  RigHealthThresholds t;
  EXPECT_TRUE(isHealthy(h, t));
  t.minSnapshots = h.snapshotCount + 1;
  EXPECT_FALSE(isHealthy(h, t));
  t = {};
  t.minArcCoverage = 1.1;  // impossible
  EXPECT_FALSE(isHealthy(h, t));
  t = {};
  t.minPeakValue = 1.1;  // impossible (profiles are normalised)
  EXPECT_FALSE(isHealthy(h, t));
}

TEST(FixConfidence, EndToEndSeparatesGoodAndBadGeometry) {
  // Same spectra, two candidate fixes: broadside (well-conditioned) vs far
  // down-range (dilution) -- the confidence must rank them correctly.
  const SpectrumQuality q = assessSpectrum(profileWith(0.1, 0.03));
  const std::vector<SpectrumQuality> spectra{q, q};
  const std::vector<geom::Ray2> rays1{
      {{-0.2, 0.0}, (geom::Vec2{0.0, 1.0}).angle()},
      {{0.2, 0.0}, (geom::Vec2{-0.2, 1.0} - geom::Vec2{0.2, 0.0}).angle()}};
  const double near = fixConfidence(spectra, bearingGdop(rays1, {0.0, 1.0}));
  const double far = fixConfidence(spectra, bearingGdop(rays1, {0.0, 3.5}));
  EXPECT_GT(near, far);
}

}  // namespace
}  // namespace tagspin::core
