#include "core/quality.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/angles.hpp"
#include "synthetic.hpp"

namespace tagspin::core {
namespace {

using testing::SyntheticConfig;
using testing::defaultKinematics;
using testing::makeSnapshots;

PowerProfile profileWith(double noise, double outliers,
                         ProfileFormula f = ProfileFormula::kEnhancedR) {
  SyntheticConfig sc;
  sc.readerAzimuth = 2.0;
  sc.noiseStd = noise;
  sc.outlierProb = outliers;
  ProfileConfig pc;
  pc.formula = f;
  return PowerProfile(makeSnapshots(sc), defaultKinematics(), pc);
}

TEST(AssessSpectrum, CleanTraceScoresWell) {
  const SpectrumQuality q = assessSpectrum(profileWith(0.01, 0.0));
  EXPECT_GT(q.peakValue, 0.95);
  EXPECT_LT(q.halfPowerWidthDeg, 30.0);
  EXPECT_GT(q.peakRatio, 1.5);
}

TEST(AssessSpectrum, NoiseWeakensPeak) {
  const SpectrumQuality clean = assessSpectrum(profileWith(0.02, 0.0));
  const SpectrumQuality noisy = assessSpectrum(profileWith(0.4, 0.10));
  EXPECT_GT(clean.peakValue, noisy.peakValue);
}

TEST(AssessSpectrum, RSharperThanQInWidth) {
  const SpectrumQuality r =
      assessSpectrum(profileWith(0.1, 0.0, ProfileFormula::kEnhancedR));
  const SpectrumQuality q =
      assessSpectrum(profileWith(0.1, 0.0, ProfileFormula::kRelativeQ));
  EXPECT_LT(r.halfPowerWidthDeg, q.halfPowerWidthDeg);
}

TEST(BearingGdop, PerpendicularBeatsShallow) {
  // Two rays crossing at 90 deg vs crossing at ~11 deg at the same range.
  const geom::Vec2 fix{0.0, 2.0};
  const std::vector<geom::Ray2> good{
      {{-2.0, 2.0}, 0.0},          // from the left, pointing +x
      {{0.0, 0.0}, geom::kPi / 2}  // from below, pointing +y
  };
  const std::vector<geom::Ray2> shallow{
      {{-0.2, 0.0}, (fix - geom::Vec2{-0.2, 0.0}).angle()},
      {{0.2, 0.0}, (fix - geom::Vec2{0.2, 0.0}).angle()}};
  EXPECT_LT(bearingGdop(good, fix), bearingGdop(shallow, fix));
}

TEST(BearingGdop, GrowsWithRange) {
  const std::vector<geom::Ray2> rays{
      {{-0.2, 0.0}, geom::kPi / 3}, {{0.2, 0.0}, 2 * geom::kPi / 3}};
  // Same rays evaluated at nearer / farther hypothetical fixes.
  EXPECT_LT(bearingGdop(rays, {0.0, 0.5}), bearingGdop(rays, {0.0, 3.0}));
}

TEST(BearingGdop, ParallelIsInfinite) {
  const std::vector<geom::Ray2> parallel{{{0.0, 0.0}, 1.0},
                                         {{1.0, 0.0}, 1.0}};
  EXPECT_TRUE(std::isinf(bearingGdop(parallel, {2.0, 2.0})));
}

TEST(FixConfidence, OrderedByQuality) {
  SpectrumQuality good;
  good.peakValue = 0.9;
  good.halfPowerWidthDeg = 10.0;
  good.peakRatio = 4.0;
  SpectrumQuality bad;
  bad.peakValue = 0.3;
  bad.halfPowerWidthDeg = 60.0;
  bad.peakRatio = 1.2;

  const std::vector<SpectrumQuality> goodPair{good, good};
  const std::vector<SpectrumQuality> mixed{good, bad};
  const double cGood = fixConfidence(goodPair, 2.0);
  const double cMixed = fixConfidence(mixed, 2.0);
  const double cBadGeometry = fixConfidence(goodPair, 40.0);
  EXPECT_GT(cGood, cMixed);
  EXPECT_GT(cGood, cBadGeometry);
  EXPECT_GE(cGood, 0.0);
  EXPECT_LE(cGood, 1.0);
}

TEST(FixConfidence, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(fixConfidence({}, 1.0), 0.0);
  SpectrumQuality q;
  q.peakValue = 0.9;
  q.halfPowerWidthDeg = 10.0;
  q.peakRatio = 4.0;
  const std::vector<SpectrumQuality> one{q};
  EXPECT_DOUBLE_EQ(
      fixConfidence(one, std::numeric_limits<double>::infinity()), 0.0);
}

TEST(FixConfidence, EndToEndSeparatesGoodAndBadGeometry) {
  // Same spectra, two candidate fixes: broadside (well-conditioned) vs far
  // down-range (dilution) -- the confidence must rank them correctly.
  const SpectrumQuality q = assessSpectrum(profileWith(0.1, 0.03));
  const std::vector<SpectrumQuality> spectra{q, q};
  const std::vector<geom::Ray2> rays1{
      {{-0.2, 0.0}, (geom::Vec2{0.0, 1.0}).angle()},
      {{0.2, 0.0}, (geom::Vec2{-0.2, 1.0} - geom::Vec2{0.2, 0.0}).angle()}};
  const double near = fixConfidence(spectra, bearingGdop(rays1, {0.0, 1.0}));
  const double far = fixConfidence(spectra, bearingGdop(rays1, {0.0, 3.5}));
  EXPECT_GT(near, far);
}

}  // namespace
}  // namespace tagspin::core
