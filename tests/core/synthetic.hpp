// Shared synthetic-snapshot generator for the core tests: phases produced
// directly from the paper's signal model (no simulator), with controllable
// noise, orientation effect, outliers and channel structure.
#pragma once

#include <cmath>
#include <functional>
#include <random>
#include <vector>

#include "core/snapshot.hpp"
#include "geom/angles.hpp"

namespace tagspin::core::testing {

struct SyntheticConfig {
  double lambdaM = 0.325;
  double distanceM = 2.0;          // D, rig center to reader
  double readerAzimuth = 1.0;      // phi_R
  double readerPolar = 0.0;        // gamma_R (3D)
  double thetaDiv = 1.23;
  double noiseStd = 0.0;
  double outlierProb = 0.0;
  size_t count = 800;
  double durationS = 30.0;
  uint64_t seed = 7;
  /// Optional orientation effect g(rho); rho derived from the kinematics.
  std::function<double(double)> orientation;
};

inline RigKinematics defaultKinematics() {
  return {0.10, 0.5, 0.0, geom::kPi / 2.0};
}

/// Snapshots following theta = (4*pi/lambda) (D - r cos(a - phi) cos(gamma))
/// + theta_div + g(rho) + noise (mod 2*pi).
inline std::vector<Snapshot> makeSnapshots(
    const SyntheticConfig& cfg,
    const RigKinematics& kin = defaultKinematics()) {
  std::mt19937_64 rng(cfg.seed);
  std::normal_distribution<double> noise(0.0, cfg.noiseStd);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_real_distribution<double> burst(-geom::kPi, geom::kPi);

  std::vector<Snapshot> snaps;
  snaps.reserve(cfg.count);
  const double cg = std::cos(cfg.readerPolar);
  for (size_t i = 0; i < cfg.count; ++i) {
    const double t =
        cfg.durationS * static_cast<double>(i) / static_cast<double>(cfg.count);
    const double a = kin.diskAngle(t);
    const double d =
        cfg.distanceM - kin.radiusM * std::cos(a - cfg.readerAzimuth) * cg;
    double phase = 4.0 * geom::kPi / cfg.lambdaM * d + cfg.thetaDiv;
    if (cfg.orientation) {
      const double rho = geom::wrapTwoPi(a + kin.tagPlaneOffset -
                                         cfg.readerAzimuth);
      phase += cfg.orientation(rho);
    }
    phase += (cfg.noiseStd > 0.0) ? noise(rng) : 0.0;
    if (cfg.outlierProb > 0.0 && coin(rng) < cfg.outlierProb) {
      phase += burst(rng);
    }
    Snapshot s;
    s.timeS = t;
    s.phaseRad = geom::wrapTwoPi(phase);
    s.lambdaM = cfg.lambdaM;
    s.channel = 0;
    s.rssiDbm = -50.0;
    snaps.push_back(s);
  }
  return snaps;
}

}  // namespace tagspin::core::testing
