#include "core/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "geom/angles.hpp"

namespace tagspin::core {
namespace {

DeploymentFile sampleDeployment() {
  DeploymentFile d;
  RigSpec rig1;
  rig1.center = {-0.2, 0.0, 0.095};
  rig1.kinematics = {0.10, 0.5, 0.3, geom::kPi / 2.0};
  RigSpec rig2;
  rig2.center = {0.2, 0.0, 0.095};
  rig2.kinematics = {0.12, 0.45, 0.7, geom::kPi / 2.0};
  d.rigs[rfid::Epc::forSimulatedTag(0)] = rig1;
  d.rigs[rfid::Epc::forSimulatedTag(1)] = rig2;

  RigSpec vertical;
  vertical.center = {0.0, 0.4, 0.095};
  vertical.kinematics = {0.10, 0.5, 0.0, geom::kPi / 2.0};
  d.verticalRigs[rfid::Epc::forSimulatedTag(2)] = vertical;

  dsp::FourierSeries s;
  s.a0 = 0.01;
  s.a = {0.1, 0.3, -0.02, 0.004};
  s.b = {0.05, 0.08, 0.01, -0.003};
  d.orientationModels[rfid::Epc::forSimulatedTag(0)] =
      OrientationModel::fromSeries(s, 0.12);
  return d;
}

TEST(Serialization, DeploymentRoundTripExact) {
  const DeploymentFile original = sampleDeployment();
  const DeploymentFile parsed =
      deploymentFromString(deploymentToString(original));

  ASSERT_EQ(parsed.rigs.size(), 2u);
  ASSERT_EQ(parsed.verticalRigs.size(), 1u);
  ASSERT_EQ(parsed.orientationModels.size(), 1u);

  const RigSpec& rig = parsed.rigs.at(rfid::Epc::forSimulatedTag(0));
  EXPECT_EQ(rig.center, (geom::Vec3{-0.2, 0.0, 0.095}));
  EXPECT_DOUBLE_EQ(rig.kinematics.radiusM, 0.10);
  EXPECT_DOUBLE_EQ(rig.kinematics.omegaRadPerS, 0.5);
  EXPECT_DOUBLE_EQ(rig.kinematics.initialAngle, 0.3);
  EXPECT_DOUBLE_EQ(rig.kinematics.tagPlaneOffset, geom::kPi / 2.0);

  const OrientationModel& model =
      parsed.orientationModels.at(rfid::Epc::forSimulatedTag(0));
  const OrientationModel& truth =
      original.orientationModels.at(rfid::Epc::forSimulatedTag(0));
  for (double rho = 0.0; rho < geom::kTwoPi; rho += 0.37) {
    EXPECT_DOUBLE_EQ(model.offsetAt(rho), truth.offsetAt(rho));
  }
  EXPECT_DOUBLE_EQ(model.fitResidual(), 0.12);
}

TEST(Serialization, EmptyDeployment) {
  const DeploymentFile parsed = deploymentFromString(
      deploymentToString(DeploymentFile{}));
  EXPECT_TRUE(parsed.rigs.empty());
  EXPECT_TRUE(parsed.orientationModels.empty());
}

TEST(Serialization, CommentsAndBlanksIgnored) {
  const std::string text = R"(
# a comment

[rig 000000000000000000000001]
  # indented comment
center = 1 2 3
radius_m = 0.1
omega_rad_per_s = 0.5
initial_angle = 0
tag_plane_offset = 1.5707963267948966
)";
  const DeploymentFile parsed = deploymentFromString(text);
  ASSERT_EQ(parsed.rigs.size(), 1u);
  EXPECT_EQ(parsed.rigs.begin()->second.center, (geom::Vec3{1, 2, 3}));
}

TEST(Serialization, MalformedInputsThrowWithLineNumbers) {
  // Key/value without a section.
  EXPECT_THROW(deploymentFromString("radius_m = 0.1\n"),
               std::invalid_argument);
  // Unknown section type.
  EXPECT_THROW(
      deploymentFromString("[widget 000000000000000000000001]\n"),
      std::invalid_argument);
  // Bad EPC.
  EXPECT_THROW(deploymentFromString("[rig nothex]\n"), std::invalid_argument);
  // Bad number.
  EXPECT_THROW(deploymentFromString(
                   "[rig 000000000000000000000001]\nradius_m = banana\n"),
               std::invalid_argument);
  // Vector with wrong arity.
  EXPECT_THROW(deploymentFromString(
                   "[rig 000000000000000000000001]\ncenter = 1 2\n"),
               std::invalid_argument);
  // Unknown key.
  EXPECT_THROW(deploymentFromString(
                   "[rig 000000000000000000000001]\ncolour = red\n"),
               std::invalid_argument);
  // Model coefficient before order.
  EXPECT_THROW(
      deploymentFromString(
          "[orientation_model 000000000000000000000001]\na1 = 0.5\n"),
      std::invalid_argument);
  // Coefficient index out of range.
  EXPECT_THROW(
      deploymentFromString("[orientation_model 000000000000000000000001]\n"
                           "order = 1\na5 = 0.5\n"),
      std::invalid_argument);
}

TEST(Serialization, LineNumberInMessage) {
  try {
    deploymentFromString("# line 1\n# line 2\ngarbage here\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Serialization, StandaloneOrientationModel) {
  dsp::FourierSeries s;
  s.a0 = -0.02;
  s.a = {0.2, 0.35};
  s.b = {0.0, 0.11};
  const OrientationModel model = OrientationModel::fromSeries(s, 0.09);
  std::ostringstream out;
  writeOrientationModel(out, model);
  std::istringstream in(out.str());
  const OrientationModel parsed = readOrientationModel(in);
  for (double rho = 0.0; rho < geom::kTwoPi; rho += 0.5) {
    EXPECT_DOUBLE_EQ(parsed.offsetAt(rho), model.offsetAt(rho));
  }
  EXPECT_DOUBLE_EQ(parsed.fitResidual(), 0.09);
  EXPECT_FALSE(parsed.isIdentity());
}

TEST(Serialization, FullPrecisionPreserved) {
  // 17 significant digits round-trip doubles exactly.
  DeploymentFile d;
  RigSpec rig;
  rig.center = {0.1 + 1e-16, 2.0 / 3.0, -0.30000000000000004};
  rig.kinematics = {0.1, 0.5123456789012345, 0.0, 1.5707963267948966};
  d.rigs[rfid::Epc::forSimulatedTag(9)] = rig;
  const DeploymentFile parsed = deploymentFromString(deploymentToString(d));
  const RigSpec& back = parsed.rigs.begin()->second;
  EXPECT_EQ(back.center, rig.center);
  EXPECT_DOUBLE_EQ(back.kinematics.omegaRadPerS,
                   rig.kinematics.omegaRadPerS);
}

}  // namespace
}  // namespace tagspin::core
