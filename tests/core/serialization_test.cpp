#include "core/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "geom/angles.hpp"

namespace tagspin::core {
namespace {

DeploymentFile sampleDeployment() {
  DeploymentFile d;
  RigSpec rig1;
  rig1.center = {-0.2, 0.0, 0.095};
  rig1.kinematics = {0.10, 0.5, 0.3, geom::kPi / 2.0};
  RigSpec rig2;
  rig2.center = {0.2, 0.0, 0.095};
  rig2.kinematics = {0.12, 0.45, 0.7, geom::kPi / 2.0};
  d.rigs[rfid::Epc::forSimulatedTag(0)] = rig1;
  d.rigs[rfid::Epc::forSimulatedTag(1)] = rig2;

  RigSpec vertical;
  vertical.center = {0.0, 0.4, 0.095};
  vertical.kinematics = {0.10, 0.5, 0.0, geom::kPi / 2.0};
  d.verticalRigs[rfid::Epc::forSimulatedTag(2)] = vertical;

  dsp::FourierSeries s;
  s.a0 = 0.01;
  s.a = {0.1, 0.3, -0.02, 0.004};
  s.b = {0.05, 0.08, 0.01, -0.003};
  d.orientationModels[rfid::Epc::forSimulatedTag(0)] =
      OrientationModel::fromSeries(s, 0.12);
  return d;
}

TEST(Serialization, DeploymentRoundTripExact) {
  const DeploymentFile original = sampleDeployment();
  const DeploymentFile parsed =
      deploymentFromString(deploymentToString(original));

  ASSERT_EQ(parsed.rigs.size(), 2u);
  ASSERT_EQ(parsed.verticalRigs.size(), 1u);
  ASSERT_EQ(parsed.orientationModels.size(), 1u);

  const RigSpec& rig = parsed.rigs.at(rfid::Epc::forSimulatedTag(0));
  EXPECT_EQ(rig.center, (geom::Vec3{-0.2, 0.0, 0.095}));
  EXPECT_DOUBLE_EQ(rig.kinematics.radiusM, 0.10);
  EXPECT_DOUBLE_EQ(rig.kinematics.omegaRadPerS, 0.5);
  EXPECT_DOUBLE_EQ(rig.kinematics.initialAngle, 0.3);
  EXPECT_DOUBLE_EQ(rig.kinematics.tagPlaneOffset, geom::kPi / 2.0);

  const OrientationModel& model =
      parsed.orientationModels.at(rfid::Epc::forSimulatedTag(0));
  const OrientationModel& truth =
      original.orientationModels.at(rfid::Epc::forSimulatedTag(0));
  for (double rho = 0.0; rho < geom::kTwoPi; rho += 0.37) {
    EXPECT_DOUBLE_EQ(model.offsetAt(rho), truth.offsetAt(rho));
  }
  EXPECT_DOUBLE_EQ(model.fitResidual(), 0.12);
}

TEST(Serialization, EmptyDeployment) {
  const DeploymentFile parsed = deploymentFromString(
      deploymentToString(DeploymentFile{}));
  EXPECT_TRUE(parsed.rigs.empty());
  EXPECT_TRUE(parsed.orientationModels.empty());
}

TEST(Serialization, CommentsAndBlanksIgnored) {
  const std::string text = R"(
# a comment

[rig 000000000000000000000001]
  # indented comment
center = 1 2 3
radius_m = 0.1
omega_rad_per_s = 0.5
initial_angle = 0
tag_plane_offset = 1.5707963267948966
)";
  const DeploymentFile parsed = deploymentFromString(text);
  ASSERT_EQ(parsed.rigs.size(), 1u);
  EXPECT_EQ(parsed.rigs.begin()->second.center, (geom::Vec3{1, 2, 3}));
}

TEST(Serialization, MalformedInputsThrowWithLineNumbers) {
  // Key/value without a section.
  EXPECT_THROW(deploymentFromString("radius_m = 0.1\n"),
               std::invalid_argument);
  // Unknown section type.
  EXPECT_THROW(
      deploymentFromString("[widget 000000000000000000000001]\n"),
      std::invalid_argument);
  // Bad EPC.
  EXPECT_THROW(deploymentFromString("[rig nothex]\n"), std::invalid_argument);
  // Bad number.
  EXPECT_THROW(deploymentFromString(
                   "[rig 000000000000000000000001]\nradius_m = banana\n"),
               std::invalid_argument);
  // Vector with wrong arity.
  EXPECT_THROW(deploymentFromString(
                   "[rig 000000000000000000000001]\ncenter = 1 2\n"),
               std::invalid_argument);
  // Unknown key.
  EXPECT_THROW(deploymentFromString(
                   "[rig 000000000000000000000001]\ncolour = red\n"),
               std::invalid_argument);
  // Model coefficient before order.
  EXPECT_THROW(
      deploymentFromString(
          "[orientation_model 000000000000000000000001]\na1 = 0.5\n"),
      std::invalid_argument);
  // Coefficient index out of range.
  EXPECT_THROW(
      deploymentFromString("[orientation_model 000000000000000000000001]\n"
                           "order = 1\na5 = 0.5\n"),
      std::invalid_argument);
}

TEST(Serialization, LineNumberInMessage) {
  try {
    deploymentFromString("# line 1\n# line 2\ngarbage here\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Serialization, StandaloneOrientationModel) {
  dsp::FourierSeries s;
  s.a0 = -0.02;
  s.a = {0.2, 0.35};
  s.b = {0.0, 0.11};
  const OrientationModel model = OrientationModel::fromSeries(s, 0.09);
  std::ostringstream out;
  writeOrientationModel(out, model);
  std::istringstream in(out.str());
  const OrientationModel parsed = readOrientationModel(in);
  for (double rho = 0.0; rho < geom::kTwoPi; rho += 0.5) {
    EXPECT_DOUBLE_EQ(parsed.offsetAt(rho), model.offsetAt(rho));
  }
  EXPECT_DOUBLE_EQ(parsed.fitResidual(), 0.09);
  EXPECT_FALSE(parsed.isIdentity());
}

CalibrationCheckpoint sampleCheckpoint() {
  CalibrationCheckpoint ckpt;
  ckpt.sequence = 41;
  ckpt.wallTimeS = 88.125;
  ckpt.lastReportTimestampS = 87.062500000000014;  // full double precision

  TagCalibrationProgress progress;
  for (int i = 0; i < 4; ++i) {
    Snapshot s;
    s.timeS = 0.1 * i + 1e-16;
    s.phaseRad = 2.0 / 3.0 * i;
    s.lambdaM = 0.32786885245901637;
    s.channel = 10 + i;
    s.rssiDbm = -61.5 - 0.125 * i;
    progress.snapshots.push_back(s);
  }
  progress.angleSpectrum = {0.25, 0.5123456789012345, 0.75};
  dsp::FourierSeries series;
  series.a0 = 0.01;
  series.a = {0.2, -0.07};
  series.b = {0.05, 0.02};
  progress.hasOrientationModel = true;
  progress.orientationModel = OrientationModel::fromSeries(series, 0.11);
  ckpt.tags[rfid::Epc::forSimulatedTag(3)] = progress;

  TagCalibrationProgress bare;
  Snapshot s;
  s.timeS = 5.5;
  s.phaseRad = 1.25;
  s.lambdaM = 0.33;
  s.channel = 0;
  s.rssiDbm = -70.25;
  bare.snapshots.push_back(s);
  ckpt.tags[rfid::Epc::forSimulatedTag(4)] = bare;
  return ckpt;
}

TEST(Serialization, CheckpointRoundTripExact) {
  const CalibrationCheckpoint ckpt = sampleCheckpoint();
  const CalibrationCheckpoint back =
      checkpointFromString(checkpointToString(ckpt));

  EXPECT_EQ(back.sequence, ckpt.sequence);
  EXPECT_EQ(back.wallTimeS, ckpt.wallTimeS);
  EXPECT_EQ(back.lastReportTimestampS, ckpt.lastReportTimestampS);
  ASSERT_EQ(back.tags.size(), 2u);

  const TagCalibrationProgress& p = back.tags.at(rfid::Epc::forSimulatedTag(3));
  const TagCalibrationProgress& orig =
      ckpt.tags.at(rfid::Epc::forSimulatedTag(3));
  ASSERT_EQ(p.snapshots.size(), orig.snapshots.size());
  for (size_t i = 0; i < p.snapshots.size(); ++i) {
    // Bit-exact: the 17-digit dialect means the restored runtime rebuilds
    // the very same dedup keys and fit inputs.
    EXPECT_EQ(p.snapshots[i].timeS, orig.snapshots[i].timeS) << i;
    EXPECT_EQ(p.snapshots[i].phaseRad, orig.snapshots[i].phaseRad) << i;
    EXPECT_EQ(p.snapshots[i].lambdaM, orig.snapshots[i].lambdaM) << i;
    EXPECT_EQ(p.snapshots[i].channel, orig.snapshots[i].channel) << i;
    EXPECT_EQ(p.snapshots[i].rssiDbm, orig.snapshots[i].rssiDbm) << i;
  }
  ASSERT_EQ(p.angleSpectrum.size(), 3u);
  EXPECT_EQ(p.angleSpectrum[1], 0.5123456789012345);
  ASSERT_TRUE(p.hasOrientationModel);
  for (double rho = 0.0; rho < geom::kTwoPi; rho += 0.7) {
    EXPECT_DOUBLE_EQ(p.orientationModel.offsetAt(rho),
                     orig.orientationModel.offsetAt(rho));
  }

  const TagCalibrationProgress& bare =
      back.tags.at(rfid::Epc::forSimulatedTag(4));
  EXPECT_FALSE(bare.hasOrientationModel);
  EXPECT_TRUE(bare.angleSpectrum.empty());
  ASSERT_EQ(bare.snapshots.size(), 1u);
}

TEST(Serialization, CheckpointLastFixRoundTripExact) {
  CalibrationCheckpoint ckpt = sampleCheckpoint();
  ckpt.lastFix.valid = true;
  ckpt.lastFix.x = 0.80000000000000004;
  ckpt.lastFix.y = 2.0 / 3.0;
  ckpt.lastFix.confidence = 0.5123456789012345;
  ckpt.lastFix.inlierFraction = 0.75;
  ckpt.lastFix.quarantinedSpins = 3;
  ckpt.lastFix.hasEllipse = true;
  ckpt.lastFix.ellipseSemiMajorM = 0.041;
  ckpt.lastFix.ellipseSemiMinorM = 0.017;
  ckpt.lastFix.ellipseOrientationRad = -1.2345678901234567;
  ckpt.lastFix.ellipseConfidence = 0.90;

  const std::string text = checkpointToString(ckpt);
  EXPECT_NE(text.find("[last_fix]"), std::string::npos);

  const FixRecord& back = checkpointFromString(text).lastFix;
  ASSERT_TRUE(back.valid);
  EXPECT_EQ(back.x, ckpt.lastFix.x);
  EXPECT_EQ(back.y, ckpt.lastFix.y);
  EXPECT_EQ(back.confidence, ckpt.lastFix.confidence);
  EXPECT_EQ(back.inlierFraction, ckpt.lastFix.inlierFraction);
  EXPECT_EQ(back.quarantinedSpins, 3u);
  ASSERT_TRUE(back.hasEllipse);
  EXPECT_EQ(back.ellipseSemiMajorM, ckpt.lastFix.ellipseSemiMajorM);
  EXPECT_EQ(back.ellipseSemiMinorM, ckpt.lastFix.ellipseSemiMinorM);
  EXPECT_EQ(back.ellipseOrientationRad, ckpt.lastFix.ellipseOrientationRad);
  EXPECT_EQ(back.ellipseConfidence, ckpt.lastFix.ellipseConfidence);
}

TEST(Serialization, CheckpointLastFixOmittedWhenInvalid) {
  // A checkpoint that never produced a fix writes no [last_fix] section,
  // and parsing such a file leaves the record invalid -- so a restored
  // runtime cannot mistake "never located" for "located at the origin".
  const CalibrationCheckpoint ckpt = sampleCheckpoint();
  const std::string text = checkpointToString(ckpt);
  EXPECT_EQ(text.find("[last_fix]"), std::string::npos);
  EXPECT_FALSE(checkpointFromString(text).lastFix.valid);
}

TEST(Serialization, CheckpointLastFixWithoutEllipseRoundTrips) {
  CalibrationCheckpoint ckpt = sampleCheckpoint();
  ckpt.lastFix.valid = true;
  ckpt.lastFix.x = -0.25;
  ckpt.lastFix.y = 1.5;
  ckpt.lastFix.confidence = 0.4;
  const std::string text = checkpointToString(ckpt);
  EXPECT_EQ(text.find("ellipse"), std::string::npos);
  const FixRecord& back = checkpointFromString(text).lastFix;
  ASSERT_TRUE(back.valid);
  EXPECT_FALSE(back.hasEllipse);
  EXPECT_EQ(back.x, -0.25);
  EXPECT_EQ(back.quarantinedSpins, 0u);
}

TEST(Serialization, CheckpointTrackContinuationRoundTripsExact) {
  CalibrationCheckpoint ckpt = sampleCheckpoint();
  ckpt.lastFix.valid = true;
  ckpt.lastFix.x = 0.5;
  ckpt.lastFix.y = 1.25;
  ckpt.lastFix.hasVelocity = true;
  ckpt.lastFix.velocityX = 0.12345678901234567;
  ckpt.lastFix.velocityY = -0.037;
  ckpt.lastFix.hasTrack = true;
  ckpt.lastFix.trackTimeS = 41.062500000000007;
  ckpt.lastFix.trackState = 2;  // confirmed
  ckpt.lastFix.trackModel = 1;  // coordinated turn

  const std::string text = checkpointToString(ckpt);
  EXPECT_NE(text.find("velocity = "), std::string::npos);
  EXPECT_NE(text.find("track = "), std::string::npos);

  const FixRecord& back = checkpointFromString(text).lastFix;
  ASSERT_TRUE(back.valid);
  ASSERT_TRUE(back.hasVelocity);
  EXPECT_EQ(back.velocityX, ckpt.lastFix.velocityX);
  EXPECT_EQ(back.velocityY, ckpt.lastFix.velocityY);
  ASSERT_TRUE(back.hasTrack);
  EXPECT_EQ(back.trackTimeS, ckpt.lastFix.trackTimeS);
  EXPECT_EQ(back.trackState, 2u);
  EXPECT_EQ(back.trackModel, 1u);
}

TEST(Serialization, CheckpointWithoutTrackKeysLoadsWithDefaults) {
  // A pre-tracking checkpoint (no velocity/track keys in [last_fix]) must
  // load cleanly with the continuation fields defaulted -- the restarted
  // tracker then simply re-initializes from the next fix.
  CalibrationCheckpoint ckpt = sampleCheckpoint();
  ckpt.lastFix.valid = true;
  ckpt.lastFix.x = -0.125;
  ckpt.lastFix.y = 2.5;
  ckpt.lastFix.confidence = 0.75;
  const std::string text = checkpointToString(ckpt);
  // The writer omits the keys entirely -- the emitted text IS the old
  // format, byte for byte.
  EXPECT_EQ(text.find("velocity"), std::string::npos);
  EXPECT_EQ(text.find("track"), std::string::npos);

  const FixRecord& back = checkpointFromString(text).lastFix;
  ASSERT_TRUE(back.valid);
  EXPECT_EQ(back.x, -0.125);
  EXPECT_FALSE(back.hasVelocity);
  EXPECT_EQ(back.velocityX, 0.0);
  EXPECT_FALSE(back.hasTrack);
  EXPECT_EQ(back.trackState, 0u);
}

TEST(Serialization, CheckpointSnapshotCountMismatchIsRejected) {
  // Text-level truncation tell: dropping a snapshot line must not parse as
  // a smaller-but-valid checkpoint.
  std::string text = checkpointToString(sampleCheckpoint());
  const size_t at = text.rfind("snapshot = ");
  ASSERT_NE(at, std::string::npos);
  text.erase(at, text.find('\n', at) - at + 1);
  try {
    checkpointFromString(text);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(Serialization, CheckpointWithoutHeaderSectionIsRejected) {
  EXPECT_THROW(checkpointFromString(""), std::invalid_argument);
  EXPECT_THROW(checkpointFromString("# only a comment\n"),
               std::invalid_argument);
  // A tag section alone (e.g. a file that lost its first lines) fails too.
  std::string text = checkpointToString(sampleCheckpoint());
  text = text.substr(text.find("[tag_progress"));
  EXPECT_THROW(checkpointFromString(text), std::invalid_argument);
}

TEST(Serialization, CheckpointUnknownKeyNamesTheLine) {
  std::string text = checkpointToString(sampleCheckpoint());
  const size_t at = text.find("wall_time_s");
  text.replace(at, std::string("wall_time_s").size(), "wibble_time");
  try {
    checkpointFromString(text);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown key"), std::string::npos)
        << e.what();
  }
}

TEST(Serialization, FullPrecisionPreserved) {
  // 17 significant digits round-trip doubles exactly.
  DeploymentFile d;
  RigSpec rig;
  rig.center = {0.1 + 1e-16, 2.0 / 3.0, -0.30000000000000004};
  rig.kinematics = {0.1, 0.5123456789012345, 0.0, 1.5707963267948966};
  d.rigs[rfid::Epc::forSimulatedTag(9)] = rig;
  const DeploymentFile parsed = deploymentFromString(deploymentToString(d));
  const RigSpec& back = parsed.rigs.begin()->second;
  EXPECT_EQ(back.center, rig.center);
  EXPECT_DOUBLE_EQ(back.kinematics.omegaRadPerS,
                   rig.kinematics.omegaRadPerS);
}

}  // namespace
}  // namespace tagspin::core
