#include "core/locator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "geom/angles.hpp"
#include "synthetic.hpp"

namespace tagspin::core {
namespace {

using testing::SyntheticConfig;
using testing::defaultKinematics;
using testing::makeSnapshots;

/// Observation of a rig at `center` watching a reader at `reader`.
RigObservation makeObservation(const geom::Vec3& center,
                               const geom::Vec3& reader, uint64_t seed,
                               double noise = 0.0) {
  RigObservation obs;
  obs.rig.center = center;
  obs.rig.kinematics = defaultKinematics();
  obs.rig.kinematics.initialAngle = 0.21 * static_cast<double>(seed);
  SyntheticConfig sc;
  sc.distanceM = (reader.xy() - center.xy()).norm();
  sc.readerAzimuth = geom::azimuthOf(center, reader);
  sc.readerPolar = geom::polarOf(center, reader);
  sc.noiseStd = noise;
  sc.seed = seed;
  sc.thetaDiv = 0.4 + 0.9 * static_cast<double>(seed);  // per-tag diversity
  obs.snapshots = makeSnapshots(sc, obs.rig.kinematics);
  return obs;
}

TEST(Locator, Locate2DNoiselessIsExact) {
  const geom::Vec3 reader{0.9, 2.1, 0.0};
  const std::vector<RigObservation> obs{
      makeObservation({-0.2, 0.0, 0.0}, reader, 1),
      makeObservation({0.2, 0.0, 0.0}, reader, 2)};
  const Locator locator;
  const Fix2D fix = locator.locate2D(obs);
  EXPECT_NEAR(fix.position.x, reader.x, 0.02);
  EXPECT_NEAR(fix.position.y, reader.y, 0.03);
  ASSERT_EQ(fix.directions.size(), 2u);
  EXPECT_GT(fix.directions[0].peakValue, 0.9);
}

// Sweep reader positions across the plane.
struct XY {
  double x, y;
};
class Locate2DSweep : public ::testing::TestWithParam<XY> {};

TEST_P(Locate2DSweep, RecoversReaderUnderNoise) {
  const geom::Vec3 reader{GetParam().x, GetParam().y, 0.0};
  const std::vector<RigObservation> obs{
      makeObservation({-0.2, 0.0, 0.0}, reader, 5, 0.1),
      makeObservation({0.2, 0.0, 0.0}, reader, 6, 0.1)};
  const Locator locator;
  const Fix2D fix = locator.locate2D(obs);
  EXPECT_LT(geom::distance(fix.position, reader.xy()), 0.12)
      << "reader at (" << reader.x << ", " << reader.y << ")";
}

INSTANTIATE_TEST_SUITE_P(ReaderPositions, Locate2DSweep,
                         ::testing::Values(XY{0.0, 1.5}, XY{1.0, 2.0},
                                           XY{-1.2, 1.1}, XY{0.5, 3.0},
                                           XY{-0.4, 2.4}, XY{1.5, 1.0}));

TEST(Locator, ThreeRigsUseLeastSquares) {
  const geom::Vec3 reader{0.4, 1.8, 0.0};
  const std::vector<RigObservation> obs{
      makeObservation({-0.4, 0.0, 0.0}, reader, 1, 0.1),
      makeObservation({0.4, 0.0, 0.0}, reader, 2, 0.1),
      makeObservation({0.0, 0.5, 0.0}, reader, 3, 0.1)};
  const Locator locator;
  const Fix2D fix = locator.locate2D(obs);
  EXPECT_LT(geom::distance(fix.position, reader.xy()), 0.08);
  EXPECT_GE(fix.residualM, 0.0);
}

TEST(Locator, RejectsTooFewRigs) {
  const geom::Vec3 reader{0.4, 1.8, 0.0};
  const std::vector<RigObservation> one{
      makeObservation({0.0, 0.0, 0.0}, reader, 1)};
  const Locator locator;
  EXPECT_THROW(locator.locate2D(one), std::invalid_argument);
  EXPECT_THROW(locator.locate3D(one), std::invalid_argument);
}

TEST(Locator, Locate3DRecoversHeight) {
  const geom::Vec3 reader{0.6, 1.9, 0.8};
  const std::vector<RigObservation> obs{
      makeObservation({-0.2, 0.0, 0.0}, reader, 1),
      makeObservation({0.2, 0.0, 0.0}, reader, 2)};
  Locator locator;  // default: non-negative z
  const Fix3D fix = locator.locate3D(obs);
  EXPECT_NEAR(fix.position.x, reader.x, 0.04);
  EXPECT_NEAR(fix.position.y, reader.y, 0.06);
  EXPECT_NEAR(fix.position.z, reader.z, 0.08);
  EXPECT_FALSE(fix.mirrorCandidate.has_value());
}

TEST(Locator, Locate3DZResolutionModes) {
  const geom::Vec3 reader{0.6, 1.9, 0.8};
  const std::vector<RigObservation> obs{
      makeObservation({-0.2, 0.0, 0.0}, reader, 1),
      makeObservation({0.2, 0.0, 0.0}, reader, 2)};

  LocatorConfig below;
  below.zResolution = ZResolution::kNonPositive;
  const Fix3D fixBelow = Locator(below).locate3D(obs);
  EXPECT_NEAR(fixBelow.position.z, -reader.z, 0.08);  // mirrored

  LocatorConfig both;
  both.zResolution = ZResolution::kBoth;
  const Fix3D fixBoth = Locator(both).locate3D(obs);
  ASSERT_TRUE(fixBoth.mirrorCandidate.has_value());
  EXPECT_NEAR(fixBoth.position.z, reader.z, 0.08);
  EXPECT_NEAR(fixBoth.mirrorCandidate->z, -reader.z, 0.08);
  EXPECT_NEAR(fixBoth.position.x, fixBoth.mirrorCandidate->x, 1e-12);
}

TEST(Locator, Locate3DZRelativeToRigPlane) {
  // Rigs on a desk at z = 0.1; reader 0.7 above the desk.
  const double plane = 0.1;
  const geom::Vec3 reader{0.5, 2.0, plane + 0.7};
  std::vector<RigObservation> obs{
      makeObservation({-0.2, 0.0, plane}, reader, 1),
      makeObservation({0.2, 0.0, plane}, reader, 2)};
  const Locator locator;
  const Fix3D fix = locator.locate3D(obs);
  EXPECT_NEAR(fix.position.z, plane + 0.7, 0.08);
}

TEST(Locator, DisambiguateZPicksTrueCandidate) {
  // Vertical rig in the x-z plane sees different steering for +-z.
  const geom::Vec3 reader{0.5, 1.5, 0.6};
  RigObservation vertical;
  vertical.rig.center = {0.0, 0.3, 0.0};
  vertical.rig.kinematics = defaultKinematics();
  // Synthesize phases for a vertically spinning tag: position angle in the
  // x-z plane.
  {
    SyntheticConfig sc;
    std::vector<Snapshot> snaps;
    const double lambda = sc.lambdaM;
    for (int i = 0; i < 800; ++i) {
      const double t = 30.0 * i / 800.0;
      const double a = vertical.rig.kinematics.diskAngle(t);
      const geom::Vec3 tagPos =
          vertical.rig.center +
          geom::Vec3{0.10 * std::cos(a), 0.0, 0.10 * std::sin(a)};
      Snapshot s;
      s.timeS = t;
      s.phaseRad = geom::wrapTwoPi(4.0 * geom::kPi / lambda *
                                       geom::distance(tagPos, reader) +
                                   0.77);
      s.lambdaM = lambda;
      snaps.push_back(s);
    }
    vertical.snapshots = std::move(snaps);
  }
  const Locator locator;
  const geom::Vec3 mirror{reader.x, reader.y, -reader.z};
  EXPECT_EQ(locator.disambiguateZ(vertical, reader, mirror), reader);
  EXPECT_EQ(locator.disambiguateZ(vertical, mirror, reader), reader);
}

TEST(Locator, OrientationCalibrationLoopImproves) {
  // Inject an orientation effect and give the locator the exact model; the
  // calibrated fix must beat the uncalibrated one.
  const geom::Vec3 reader{0.8, 1.8, 0.0};
  auto g = [](double rho) { return 0.33 * std::cos(2.0 * rho); };

  auto makeObsWithOrientation = [&](const geom::Vec3& center, uint64_t seed) {
    RigObservation obs;
    obs.rig.center = center;
    obs.rig.kinematics = defaultKinematics();
    SyntheticConfig sc;
    sc.distanceM = (reader.xy() - center.xy()).norm();
    sc.readerAzimuth = geom::azimuthOf(center, reader);
    sc.noiseStd = 0.1;
    sc.seed = seed;
    sc.orientation = g;
    obs.snapshots = makeSnapshots(sc, obs.rig.kinematics);
    return obs;
  };

  std::vector<RigObservation> obs{
      makeObsWithOrientation({-0.2, 0.0, 0.0}, 1),
      makeObsWithOrientation({0.2, 0.0, 0.0}, 2)};

  // Fit a model from a center-spin of the same response.
  RigKinematics center{0.0, 0.5, 0.0, geom::kPi / 2.0};
  SyntheticConfig fitCfg;
  fitCfg.count = 1200;
  fitCfg.orientation = g;
  fitCfg.noiseStd = 0.05;
  const OrientationModel model = OrientationModel::fit(
      makeSnapshots(fitCfg, center), center, fitCfg.readerAzimuth);

  const Locator locator;
  const Fix2D uncal = locator.locate2D(obs);
  for (RigObservation& o : obs) o.orientation = model;
  const Fix2D cal = locator.locate2D(obs);
  EXPECT_LT(geom::distance(cal.position, reader.xy()),
            geom::distance(uncal.position, reader.xy()));
  EXPECT_LT(geom::distance(cal.position, reader.xy()), 0.06);
}

TEST(Locator, EstimateDirectionStandalone) {
  const geom::Vec3 reader{1.0, 2.0, 0.0};
  const RigObservation obs = makeObservation({0.0, 0.0, 0.0}, reader, 3, 0.1);
  const Locator locator;
  const RigDirection d2 = locator.estimateDirection2D(obs);
  EXPECT_LT(geom::circularDistance(d2.azimuth,
                                   geom::azimuthOf(obs.rig.center, reader)),
            0.01);
  const RigDirection d3 = locator.estimateDirection3D(obs);
  EXPECT_NEAR(d3.polar, 0.0, 0.06);
}

}  // namespace
}  // namespace tagspin::core
