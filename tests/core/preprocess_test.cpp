#include "core/preprocess.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "geom/angles.hpp"
#include "rf/constants.hpp"

namespace tagspin::core {
namespace {

rfid::TagReport makeReport(uint32_t tag, double t, double phase,
                           double rssi = -50.0) {
  rfid::TagReport r;
  r.epc = rfid::Epc::forSimulatedTag(tag);
  r.timestampS = t;
  r.phaseRad = phase;
  r.rssiDbm = rssi;
  r.channelIndex = 2;
  r.frequencyHz = rf::mhz(921.125);
  return r;
}

TEST(ExtractSnapshots, FiltersByEpcAndSorts) {
  rfid::ReportStream reports;
  reports.push_back(makeReport(1, 2.0, 0.5));
  reports.push_back(makeReport(2, 0.5, 1.0));
  reports.push_back(makeReport(1, 1.0, 1.5));

  const auto snaps =
      extractSnapshots(reports, rfid::Epc::forSimulatedTag(1));
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_DOUBLE_EQ(snaps[0].timeS, 1.0);
  EXPECT_DOUBLE_EQ(snaps[1].timeS, 2.0);
  EXPECT_DOUBLE_EQ(snaps[0].phaseRad, 1.5);
  EXPECT_NEAR(snaps[0].lambdaM, rf::wavelength(rf::mhz(921.125)), 1e-9);
  EXPECT_EQ(snaps[0].channel, 2);
}

TEST(ExtractSnapshots, WrapsPhases) {
  rfid::ReportStream reports;
  reports.push_back(makeReport(1, 0.0, 7.0));  // > 2*pi
  const auto snaps =
      extractSnapshots(reports, rfid::Epc::forSimulatedTag(1));
  EXPECT_LT(snaps[0].phaseRad, 2.0 * 3.14159266);
  EXPECT_GE(snaps[0].phaseRad, 0.0);
}

TEST(ExtractSnapshots, DropsWeakReads) {
  rfid::ReportStream reports;
  reports.push_back(makeReport(1, 0.0, 1.0, -95.0));  // below default floor
  reports.push_back(makeReport(1, 1.0, 1.0, -60.0));
  const auto snaps =
      extractSnapshots(reports, rfid::Epc::forSimulatedTag(1));
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_DOUBLE_EQ(snaps[0].timeS, 1.0);
}

TEST(ExtractSnapshots, ThrowsWhenNoneUsable) {
  rfid::ReportStream reports;
  reports.push_back(makeReport(2, 0.0, 1.0));
  EXPECT_THROW(extractSnapshots(reports, rfid::Epc::forSimulatedTag(1)),
               std::invalid_argument);
  EXPECT_THROW(extractSnapshots({}, rfid::Epc::forSimulatedTag(1)),
               std::invalid_argument);
}

TEST(ExtractSnapshots, SubsamplesEvenly) {
  rfid::ReportStream reports;
  for (int i = 0; i < 1000; ++i) {
    reports.push_back(makeReport(1, i * 0.01, 0.5));
  }
  PreprocessConfig config;
  config.maxSnapshots = 100;
  const auto snaps =
      extractSnapshots(reports, rfid::Epc::forSimulatedTag(1), config);
  ASSERT_EQ(snaps.size(), 100u);
  // Coverage spans the full duration, not just a prefix.
  EXPECT_LT(snaps.front().timeS, 0.2);
  EXPECT_GT(snaps.back().timeS, 9.5);
}

TEST(ExtractSnapshots, UnlimitedWhenZero) {
  rfid::ReportStream reports;
  for (int i = 0; i < 50; ++i) reports.push_back(makeReport(1, i * 0.1, 0.5));
  PreprocessConfig config;
  config.maxSnapshots = 0;
  EXPECT_EQ(
      extractSnapshots(reports, rfid::Epc::forSimulatedTag(1), config).size(),
      50u);
}

TEST(SmoothedPhases, UnwrapsSawtooth) {
  std::vector<Snapshot> snaps;
  for (int i = 0; i < 50; ++i) {
    Snapshot s;
    s.timeS = i * 0.1;
    s.phaseRad = geom::wrapTwoPi(0.5 * i);
    snaps.push_back(s);
  }
  const auto smoothed = smoothedPhases(snaps);
  for (size_t i = 1; i < smoothed.size(); ++i) {
    EXPECT_NEAR(smoothed[i] - smoothed[i - 1], 0.5, 1e-9);
  }
}

TEST(SamplingDensity, CountsWindowedReads) {
  std::vector<Snapshot> snaps;
  // 10 reads in the first second, 2 in the next.
  for (int i = 0; i < 10; ++i) {
    Snapshot s;
    s.timeS = 0.1 * i;
    snaps.push_back(s);
  }
  for (int i = 0; i < 2; ++i) {
    Snapshot s;
    s.timeS = 1.2 + 0.4 * i;
    snaps.push_back(s);
  }
  const auto density = samplingDensity(snaps, 0.5);
  ASSERT_EQ(density.size(), snaps.size());
  EXPECT_GT(density[5], density[11] * 2.0);
}

TEST(SamplingDensity, EdgeCases) {
  EXPECT_TRUE(samplingDensity({}, 1.0).empty());
  std::vector<Snapshot> one(1);
  EXPECT_EQ(samplingDensity(one, 0.0)[0], 0.0);  // degenerate window
}

}  // namespace
}  // namespace tagspin::core
