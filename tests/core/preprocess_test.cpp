#include "core/preprocess.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "geom/angles.hpp"
#include "rf/constants.hpp"

namespace tagspin::core {
namespace {

rfid::TagReport makeReport(uint32_t tag, double t, double phase,
                           double rssi = -50.0) {
  rfid::TagReport r;
  r.epc = rfid::Epc::forSimulatedTag(tag);
  r.timestampS = t;
  r.phaseRad = phase;
  r.rssiDbm = rssi;
  r.channelIndex = 2;
  r.frequencyHz = rf::mhz(921.125);
  return r;
}

TEST(ExtractSnapshots, FiltersByEpcAndSorts) {
  rfid::ReportStream reports;
  reports.push_back(makeReport(1, 2.0, 0.5));
  reports.push_back(makeReport(2, 0.5, 1.0));
  reports.push_back(makeReport(1, 1.0, 1.5));

  const auto snaps =
      extractSnapshots(reports, rfid::Epc::forSimulatedTag(1));
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_DOUBLE_EQ(snaps[0].timeS, 1.0);
  EXPECT_DOUBLE_EQ(snaps[1].timeS, 2.0);
  EXPECT_DOUBLE_EQ(snaps[0].phaseRad, 1.5);
  EXPECT_NEAR(snaps[0].lambdaM, rf::wavelength(rf::mhz(921.125)), 1e-9);
  EXPECT_EQ(snaps[0].channel, 2);
}

TEST(ExtractSnapshots, WrapsPhases) {
  rfid::ReportStream reports;
  reports.push_back(makeReport(1, 0.0, 7.0));  // > 2*pi
  const auto snaps =
      extractSnapshots(reports, rfid::Epc::forSimulatedTag(1));
  EXPECT_LT(snaps[0].phaseRad, 2.0 * 3.14159266);
  EXPECT_GE(snaps[0].phaseRad, 0.0);
}

TEST(ExtractSnapshots, DropsWeakReads) {
  rfid::ReportStream reports;
  reports.push_back(makeReport(1, 0.0, 1.0, -95.0));  // below default floor
  reports.push_back(makeReport(1, 1.0, 1.0, -60.0));
  const auto snaps =
      extractSnapshots(reports, rfid::Epc::forSimulatedTag(1));
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_DOUBLE_EQ(snaps[0].timeS, 1.0);
}

TEST(ExtractSnapshots, ThrowsWhenNoneUsable) {
  rfid::ReportStream reports;
  reports.push_back(makeReport(2, 0.0, 1.0));
  EXPECT_THROW(extractSnapshots(reports, rfid::Epc::forSimulatedTag(1)),
               std::invalid_argument);
  EXPECT_THROW(extractSnapshots({}, rfid::Epc::forSimulatedTag(1)),
               std::invalid_argument);
}

TEST(ExtractSnapshots, SubsamplesEvenly) {
  rfid::ReportStream reports;
  for (int i = 0; i < 1000; ++i) {
    reports.push_back(makeReport(1, i * 0.01, 0.5));
  }
  PreprocessConfig config;
  config.maxSnapshots = 100;
  const auto snaps =
      extractSnapshots(reports, rfid::Epc::forSimulatedTag(1), config);
  ASSERT_EQ(snaps.size(), 100u);
  // Coverage spans the full duration, not just a prefix.
  EXPECT_LT(snaps.front().timeS, 0.2);
  EXPECT_GT(snaps.back().timeS, 9.5);
}

TEST(ExtractSnapshots, UnlimitedWhenZero) {
  rfid::ReportStream reports;
  for (int i = 0; i < 50; ++i) reports.push_back(makeReport(1, i * 0.1, 0.5));
  PreprocessConfig config;
  config.maxSnapshots = 0;
  EXPECT_EQ(
      extractSnapshots(reports, rfid::Epc::forSimulatedTag(1), config).size(),
      50u);
}

TEST(SmoothedPhases, UnwrapsSawtooth) {
  std::vector<Snapshot> snaps;
  for (int i = 0; i < 50; ++i) {
    Snapshot s;
    s.timeS = i * 0.1;
    s.phaseRad = geom::wrapTwoPi(0.5 * i);
    snaps.push_back(s);
  }
  const auto smoothed = smoothedPhases(snaps);
  for (size_t i = 1; i < smoothed.size(); ++i) {
    EXPECT_NEAR(smoothed[i] - smoothed[i - 1], 0.5, 1e-9);
  }
}

TEST(SamplingDensity, CountsWindowedReads) {
  std::vector<Snapshot> snaps;
  // 10 reads in the first second, 2 in the next.
  for (int i = 0; i < 10; ++i) {
    Snapshot s;
    s.timeS = 0.1 * i;
    snaps.push_back(s);
  }
  for (int i = 0; i < 2; ++i) {
    Snapshot s;
    s.timeS = 1.2 + 0.4 * i;
    snaps.push_back(s);
  }
  const auto density = samplingDensity(snaps, 0.5);
  ASSERT_EQ(density.size(), snaps.size());
  EXPECT_GT(density[5], density[11] * 2.0);
}

TEST(SamplingDensity, EdgeCases) {
  EXPECT_TRUE(samplingDensity({}, 1.0).empty());
  std::vector<Snapshot> one(1);
  EXPECT_EQ(samplingDensity(one, 0.0)[0], 0.0);  // degenerate window
}

// --- robust extraction (extractSnapshotsRobust) ---

rfid::ReportStream rampStream(uint32_t tag, size_t count) {
  rfid::ReportStream reports;
  for (size_t i = 0; i < count; ++i) {
    reports.push_back(makeReport(tag, 0.05 * static_cast<double>(i),
                                 1.0 + 0.002 * static_cast<double>(i)));
  }
  return reports;
}

TEST(ExtractSnapshotsRobust, BitIdenticalToStrictOnCleanStream) {
  const rfid::ReportStream reports = rampStream(1, 200);
  const auto strict = extractSnapshots(reports, rfid::Epc::forSimulatedTag(1));
  RepairStats repairs;
  const auto robust = extractSnapshotsRobust(
      reports, rfid::Epc::forSimulatedTag(1), {}, &repairs);
  ASSERT_TRUE(robust);
  ASSERT_EQ(robust->size(), strict.size());
  for (size_t i = 0; i < strict.size(); ++i) {
    EXPECT_EQ((*robust)[i].timeS, strict[i].timeS);
    EXPECT_EQ((*robust)[i].phaseRad, strict[i].phaseRad);
    EXPECT_EQ((*robust)[i].lambdaM, strict[i].lambdaM);
  }
  EXPECT_EQ(repairs.duplicatesRemoved, 0u);
  EXPECT_EQ(repairs.timestampOutliersDropped, 0u);
  EXPECT_EQ(repairs.phaseOutliersDropped, 0u);
}

TEST(ExtractSnapshotsRobust, RemovesExactDuplicates) {
  rfid::ReportStream reports = rampStream(1, 100);
  // Retransmit every 10th report (same timestamp, phase, channel).
  rfid::ReportStream withDups;
  size_t inserted = 0;
  for (size_t i = 0; i < reports.size(); ++i) {
    withDups.push_back(reports[i]);
    if (i % 10 == 0) {
      withDups.push_back(reports[i]);
      ++inserted;
    }
  }
  RepairStats repairs;
  const auto robust = extractSnapshotsRobust(
      withDups, rfid::Epc::forSimulatedTag(1), {}, &repairs);
  ASSERT_TRUE(robust);
  EXPECT_EQ(repairs.duplicatesRemoved, inserted);
  EXPECT_EQ(robust->size(), reports.size());
  // The survivors are exactly the originals.
  const auto strict = extractSnapshots(reports, rfid::Epc::forSimulatedTag(1));
  for (size_t i = 0; i < strict.size(); ++i) {
    EXPECT_EQ((*robust)[i].timeS, strict[i].timeS);
    EXPECT_EQ((*robust)[i].phaseRad, strict[i].phaseRad);
  }
}

TEST(ExtractSnapshotsRobust, DropsIsolatedTimestampGlitch) {
  rfid::ReportStream reports = rampStream(1, 100);  // 0..4.95 s, 50 ms steps
  reports.push_back(makeReport(1, 1000.0, 1.1));    // clock glitch
  RepairStats repairs;
  const auto robust = extractSnapshotsRobust(
      reports, rfid::Epc::forSimulatedTag(1), {}, &repairs);
  ASSERT_TRUE(robust);
  EXPECT_EQ(repairs.timestampOutliersDropped, 1u);
  EXPECT_EQ(robust->size(), 100u);
  EXPECT_LT(robust->back().timeS, 5.0);
}

TEST(ExtractSnapshotsRobust, HampelDropsPhaseBurst) {
  rfid::ReportStream reports = rampStream(1, 100);
  reports[50].phaseRad = reports[50].phaseRad + 2.5;  // interference burst
  RepairStats repairs;
  const auto robust = extractSnapshotsRobust(
      reports, rfid::Epc::forSimulatedTag(1), {}, &repairs);
  ASSERT_TRUE(robust);
  EXPECT_GE(repairs.phaseOutliersDropped, 1u);
  for (const Snapshot& s : *robust) {
    EXPECT_LT(std::abs(s.phaseRad - 1.1), 0.5);  // the burst is gone
  }
}

TEST(ExtractSnapshotsRobust, HampelSurvivesWrapBoundary) {
  // Phases hugging the 0/2*pi seam must not be flagged as outliers by a
  // naive linear median (the filter is circular).
  rfid::ReportStream reports;
  for (size_t i = 0; i < 100; ++i) {
    const double phase = (i % 2 == 0) ? 0.02 : 2.0 * geom::kPi - 0.02;
    reports.push_back(makeReport(1, 0.05 * static_cast<double>(i), phase));
  }
  RepairStats repairs;
  const auto robust = extractSnapshotsRobust(
      reports, rfid::Epc::forSimulatedTag(1), {}, &repairs);
  ASSERT_TRUE(robust);
  EXPECT_EQ(repairs.phaseOutliersDropped, 0u);
  EXPECT_EQ(robust->size(), 100u);
}

TEST(ExtractSnapshotsRobust, NoReportsNamesEpcAndStreamSize) {
  const rfid::ReportStream reports = rampStream(2, 7);
  const auto robust =
      extractSnapshotsRobust(reports, rfid::Epc::forSimulatedTag(1));
  ASSERT_FALSE(robust);
  EXPECT_EQ(robust.error().code, ErrorCode::kNoReports);
  EXPECT_NE(robust.error().message.find(
                rfid::Epc::forSimulatedTag(1).toHex()),
            std::string::npos)
      << robust.error().message;
  EXPECT_NE(robust.error().message.find("7 reports"), std::string::npos)
      << robust.error().message;
  // The strict path's exception carries the same context.
  try {
    extractSnapshots(reports, rfid::Epc::forSimulatedTag(1));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("7 reports"), std::string::npos)
        << e.what();
  }
}

TEST(ExtractSnapshotsRobust, StagesCanBeDisabled) {
  rfid::ReportStream reports = rampStream(1, 60);
  reports.push_back(reports.back());               // duplicate
  reports.push_back(makeReport(1, 500.0, 1.0));    // glitch
  PreprocessConfig off;
  off.dedupe = false;
  off.repairTimestamps = false;
  off.hampelFilter = false;
  RepairStats repairs;
  const auto robust = extractSnapshotsRobust(
      reports, rfid::Epc::forSimulatedTag(1), off, &repairs);
  ASSERT_TRUE(robust);
  EXPECT_EQ(robust->size(), 62u);  // nothing was repaired
  EXPECT_EQ(repairs.duplicatesRemoved, 0u);
  EXPECT_EQ(repairs.timestampOutliersDropped, 0u);
  EXPECT_EQ(repairs.phaseOutliersDropped, 0u);
}

}  // namespace
}  // namespace tagspin::core
