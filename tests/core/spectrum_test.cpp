#include "core/spectrum.hpp"

#include <gtest/gtest.h>

#include "geom/angles.hpp"
#include "synthetic.hpp"

namespace tagspin::core {
namespace {

using testing::SyntheticConfig;
using testing::defaultKinematics;
using testing::makeSnapshots;

TEST(EstimateAzimuth, FindsTruthUnderNoise) {
  SyntheticConfig sc;
  sc.readerAzimuth = 4.0;
  sc.noiseStd = 0.1;
  const auto snaps = makeSnapshots(sc);
  const PowerProfile profile(snaps, defaultKinematics(), {});
  const AzimuthEstimate est = estimateAzimuth(profile, {});
  EXPECT_LT(geom::radToDeg(geom::circularDistance(est.azimuth, 4.0)), 0.5);
  EXPECT_GT(est.value, 0.5);
}

// Coarse-to-fine matches the exhaustive search across directions.
class CoarseFineSweep : public ::testing::TestWithParam<double> {};

TEST_P(CoarseFineSweep, AgreesWithExhaustive) {
  SyntheticConfig sc;
  sc.readerAzimuth = GetParam();
  sc.noiseStd = 0.1;
  const auto snaps = makeSnapshots(sc);
  const PowerProfile profile(snaps, defaultKinematics(), {});
  const AzimuthEstimate full = estimateAzimuth(profile, {});
  const AzimuthEstimate fast = estimateAzimuthCoarseFine(profile, {});
  EXPECT_LT(geom::radToDeg(geom::circularDistance(full.azimuth,
                                                  fast.azimuth)),
            0.3);
}

INSTANTIATE_TEST_SUITE_P(Directions, CoarseFineSweep,
                         ::testing::Values(0.05, 1.0, 2.5, 3.14, 4.7, 6.2));

TEST(EstimateSpatial, RecoversPolarMagnitude) {
  for (double polarDeg : {0.0, 15.0, 30.0, 50.0, 70.0}) {
    SyntheticConfig sc;
    sc.readerAzimuth = 2.0;
    sc.readerPolar = geom::degToRad(polarDeg);
    const auto snaps = makeSnapshots(sc);
    const PowerProfile profile(snaps, defaultKinematics(), {});
    const SpatialEstimate est = estimateSpatial(profile, {});
    EXPECT_NEAR(geom::radToDeg(est.polar), polarDeg, 3.0)
        << "polar " << polarDeg;
    EXPECT_GE(est.polar, 0.0);  // reported as magnitude
  }
}

TEST(EstimateSpatial, NegativePolarGivesSameMagnitude) {
  // The source below the plane produces the same |gamma| (mirror symmetry).
  SyntheticConfig sc;
  sc.readerAzimuth = 2.0;
  sc.readerPolar = geom::degToRad(-40.0);
  const auto snaps = makeSnapshots(sc);
  const PowerProfile profile(snaps, defaultKinematics(), {});
  const SpatialEstimate est = estimateSpatial(profile, {});
  EXPECT_NEAR(geom::radToDeg(est.polar), 40.0, 3.0);
}

TEST(EstimateSpatial, SearchConfigGridsRespected) {
  SyntheticConfig sc;
  sc.readerPolar = geom::degToRad(20.0);
  const auto snaps = makeSnapshots(sc);
  const PowerProfile profile(snaps, defaultKinematics(), {});
  SearchConfig coarse;
  coarse.azimuthGridPoints = 180;
  coarse.polarGridPoints = 31;
  const SpatialEstimate est = estimateSpatial(profile, coarse);
  EXPECT_NEAR(geom::radToDeg(est.polar), 20.0, 4.0);
}

}  // namespace
}  // namespace tagspin::core
