#include "core/spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "dsp/grid.hpp"
#include "geom/angles.hpp"
#include "synthetic.hpp"

namespace tagspin::core {
namespace {

using testing::SyntheticConfig;
using testing::defaultKinematics;
using testing::makeSnapshots;

TEST(EstimateAzimuth, FindsTruthUnderNoise) {
  SyntheticConfig sc;
  sc.readerAzimuth = 4.0;
  sc.noiseStd = 0.1;
  const auto snaps = makeSnapshots(sc);
  const PowerProfile profile(snaps, defaultKinematics(), {});
  const AzimuthEstimate est = estimateAzimuth(profile, {});
  EXPECT_LT(geom::radToDeg(geom::circularDistance(est.azimuth, 4.0)), 0.5);
  EXPECT_GT(est.value, 0.5);
}

// Coarse-to-fine matches the exhaustive search across directions.
class CoarseFineSweep : public ::testing::TestWithParam<double> {};

TEST_P(CoarseFineSweep, AgreesWithExhaustive) {
  SyntheticConfig sc;
  sc.readerAzimuth = GetParam();
  sc.noiseStd = 0.1;
  const auto snaps = makeSnapshots(sc);
  const PowerProfile profile(snaps, defaultKinematics(), {});
  const AzimuthEstimate full = estimateAzimuth(profile, {});
  const AzimuthEstimate fast = estimateAzimuthCoarseFine(profile, {});
  EXPECT_LT(geom::radToDeg(geom::circularDistance(full.azimuth,
                                                  fast.azimuth)),
            0.3);
}

INSTANTIATE_TEST_SUITE_P(Directions, CoarseFineSweep,
                         ::testing::Values(0.05, 1.0, 2.5, 3.14, 4.7, 6.2));

TEST(EstimateSpatial, RecoversPolarMagnitude) {
  for (double polarDeg : {0.0, 15.0, 30.0, 50.0, 70.0}) {
    SyntheticConfig sc;
    sc.readerAzimuth = 2.0;
    sc.readerPolar = geom::degToRad(polarDeg);
    const auto snaps = makeSnapshots(sc);
    const PowerProfile profile(snaps, defaultKinematics(), {});
    const SpatialEstimate est = estimateSpatial(profile, {});
    EXPECT_NEAR(geom::radToDeg(est.polar), polarDeg, 3.0)
        << "polar " << polarDeg;
    EXPECT_GE(est.polar, 0.0);  // reported as magnitude
  }
}

TEST(EstimateSpatial, NegativePolarGivesSameMagnitude) {
  // The source below the plane produces the same |gamma| (mirror symmetry).
  SyntheticConfig sc;
  sc.readerAzimuth = 2.0;
  sc.readerPolar = geom::degToRad(-40.0);
  const auto snaps = makeSnapshots(sc);
  const PowerProfile profile(snaps, defaultKinematics(), {});
  const SpatialEstimate est = estimateSpatial(profile, {});
  EXPECT_NEAR(geom::radToDeg(est.polar), 40.0, 3.0);
}

// ---------------------------------------------------------------------------
// Adversarial profiles: multipath-like snapshot mixtures give the angle
// spectrum several lobes, and noise-dominated captures flatten it almost
// completely.  The coarse-to-fine search skips most of the grid, so these
// are exactly the shapes where it could diverge from the exhaustive
// traversal; assert it stays equivalent within the search grid resolution.

std::vector<Snapshot> makeMultiLobeSnapshots(double mainAzimuth,
                                             double ghostAzimuth,
                                             double ghostFraction) {
  SyntheticConfig main;
  main.readerAzimuth = mainAzimuth;
  main.noiseStd = 0.05;
  std::vector<Snapshot> snaps = makeSnapshots(main);
  SyntheticConfig ghost = main;
  ghost.readerAzimuth = ghostAzimuth;
  ghost.count = static_cast<size_t>(static_cast<double>(main.count) *
                                    ghostFraction);
  ghost.seed = 11;
  const std::vector<Snapshot> ghostSnaps = makeSnapshots(ghost);
  snaps.insert(snaps.end(), ghostSnaps.begin(), ghostSnaps.end());
  return snaps;
}

class MultiLobeSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(MultiLobeSweep, CoarseFineLocksOntoDominantLobe) {
  const auto [mainAz, ghostAz] = GetParam();
  const auto snaps = makeMultiLobeSnapshots(mainAz, ghostAz, 0.5);
  const PowerProfile profile(snaps, defaultKinematics(), {});
  const AzimuthEstimate full = estimateAzimuth(profile, {});
  const AzimuthEstimate fast = estimateAzimuthCoarseFine(profile, {});
  // Grid resolution of the exhaustive search: 360/720 = 0.5 degrees.
  EXPECT_LT(geom::radToDeg(geom::circularDistance(full.azimuth, fast.azimuth)),
            0.5)
      << "main " << mainAz << " ghost " << ghostAz;
  // Both searches must sit on the dominant (2x power) lobe, not the ghost.
  EXPECT_LT(geom::radToDeg(geom::circularDistance(full.azimuth, mainAz)), 2.0);
  EXPECT_GE(fast.value, full.value * 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    LobeGeometries, MultiLobeSweep,
    ::testing::Values(std::pair{1.0, 3.5}, std::pair{2.0, 4.5},
                      std::pair{0.3, 2.2}, std::pair{5.8, 2.9}));

TEST(EstimateAzimuthAdversarial, NearFlatProfileStillEquivalent) {
  // Phase noise of ~pi makes the profile almost flat: every grid cell holds
  // a local maximum of about the same height.  The coarse-to-fine result
  // must still be a peak as good as the exhaustive one (the argmax itself
  // is not identifiable on a flat profile, so compare attained values).
  SyntheticConfig sc;
  sc.readerAzimuth = 2.0;
  sc.noiseStd = 3.0;
  const auto snaps = makeSnapshots(sc);
  const PowerProfile profile(snaps, defaultKinematics(), {});
  const AzimuthEstimate full = estimateAzimuth(profile, {});
  const AzimuthEstimate fast = estimateAzimuthCoarseFine(profile, {});
  ASSERT_GT(full.value, 0.0);
  EXPECT_GE(fast.value, full.value * 0.95);
  EXPECT_GE(fast.azimuth, 0.0);
  EXPECT_LT(fast.azimuth, 2.0 * geom::kPi);
}

TEST(EstimateSpatialAdversarial, MultiLobeMatchesDenseExhaustiveWithinGrid) {
  // Two elevated sources at different azimuths; compare estimateSpatial
  // (decimated grid + refinement) against a much denser exhaustive
  // traversal of the same spectrum.
  SyntheticConfig main;
  main.readerAzimuth = 2.0;
  main.readerPolar = geom::degToRad(30.0);
  main.noiseStd = 0.05;
  std::vector<Snapshot> snaps = makeSnapshots(main);
  SyntheticConfig ghost = main;
  ghost.readerAzimuth = 4.5;
  ghost.readerPolar = geom::degToRad(10.0);
  ghost.count = main.count * 2 / 5;
  ghost.seed = 13;
  const auto ghostSnaps = makeSnapshots(ghost);
  snaps.insert(snaps.end(), ghostSnaps.begin(), ghostSnaps.end());
  const PowerProfile profile(snaps, defaultKinematics(), {});

  const SearchConfig search;
  const SpatialEstimate est = estimateSpatial(profile, search);
  const auto dense = dsp::maximizeRect(
      [&](double phi, double gamma) { return profile.evaluate(phi, gamma); },
      0.0, search.polarMax, 1440, 181, 8);

  // estimateSpatial's raw grid: 1 degree in azimuth, ~3 degrees in polar.
  EXPECT_LT(geom::radToDeg(geom::circularDistance(est.azimuth, dense.x)), 1.0);
  EXPECT_LT(std::abs(geom::radToDeg(est.polar) -
                     std::abs(geom::radToDeg(dense.y))),
            3.0);
  EXPECT_GE(est.value, dense.value * 0.99);
  EXPECT_LT(geom::radToDeg(geom::circularDistance(est.azimuth, 2.0)), 3.0);
}

TEST(EstimateSpatial, SearchConfigGridsRespected) {
  SyntheticConfig sc;
  sc.readerPolar = geom::degToRad(20.0);
  const auto snaps = makeSnapshots(sc);
  const PowerProfile profile(snaps, defaultKinematics(), {});
  SearchConfig coarse;
  coarse.azimuthGridPoints = 180;
  coarse.polarGridPoints = 31;
  const SpatialEstimate est = estimateSpatial(profile, coarse);
  EXPECT_NEAR(geom::radToDeg(est.polar), 20.0, 4.0);
}

}  // namespace
}  // namespace tagspin::core
