#include "core/io_env.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace tagspin::core {
namespace {

std::string tempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class PosixIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = tempPath(std::string("tagspin_io_") + info->name() + ".dat");
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_;
};

TEST_F(PosixIoTest, OpenWriteFsyncCloseRoundTrip) {
  IoEnv& io = posixIo();
  const IoStatus fd = io.open(path_, OpenMode::kTruncate);
  ASSERT_TRUE(fd.ok());
  const std::string data = "spinning tag";
  ASSERT_TRUE(writeAllRetry(io, int(fd.value), data.data(), data.size()).ok());
  EXPECT_TRUE(io.fsync(int(fd.value)).ok());
  EXPECT_TRUE(io.close(int(fd.value)).ok());

  std::string back;
  const IoStatus rd = io.readFile(path_, back);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ(size_t(rd.value), data.size());
  EXPECT_TRUE(io.exists(path_));
}

TEST_F(PosixIoTest, ReadFileMissingReportsEnoent) {
  std::string back;
  const IoStatus rd = posixIo().readFile(path_, back);
  EXPECT_FALSE(rd.ok());
  EXPECT_EQ(rd.err, ENOENT);
  EXPECT_FALSE(posixIo().exists(path_));
}

TEST_F(PosixIoTest, AppendableOpenPreservesContentsAndSeekEndFindsSize) {
  IoEnv& io = posixIo();
  {
    std::ofstream out(path_, std::ios::binary);
    out << "0123456789";
  }
  const IoStatus fd = io.open(path_, OpenMode::kAppendable);
  ASSERT_TRUE(fd.ok());
  const IoStatus size = io.seekEnd(int(fd.value));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value, 10);
  ASSERT_TRUE(writeAllRetry(io, int(fd.value), "AB", 2).ok());
  EXPECT_TRUE(io.close(int(fd.value)).ok());
  std::string back;
  ASSERT_TRUE(io.readFile(path_, back).ok());
  EXPECT_EQ(back, "0123456789AB");
}

TEST_F(PosixIoTest, TruncateShrinksTheFile) {
  IoEnv& io = posixIo();
  const IoStatus fd = io.open(path_, OpenMode::kTruncate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(writeAllRetry(io, int(fd.value), "0123456789", 10).ok());
  ASSERT_TRUE(io.truncate(int(fd.value), 4).ok());
  EXPECT_TRUE(io.close(int(fd.value)).ok());
  std::string back;
  ASSERT_TRUE(io.readFile(path_, back).ok());
  EXPECT_EQ(back, "0123");
}

TEST_F(PosixIoTest, WriteFileDurableReplacesAtomicallyWithoutTmpLitter) {
  writeFileDurable(posixIo(), path_, "first");
  writeFileDurable(posixIo(), path_, "second");
  std::string back;
  ASSERT_TRUE(posixIo().readFile(path_, back).ok());
  EXPECT_EQ(back, "second");
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(PosixIoTest, WriteFileDurableIntoMissingDirectoryThrows) {
  EXPECT_THROW(
      writeFileDurable(posixIo(), "/nonexistent_dir_tagspin/io_env.dat",
                       "payload"),
      std::runtime_error);
  EXPECT_FALSE(writeFileDurableNoThrow(
      posixIo(), "/nonexistent_dir_tagspin/io_env.dat", "payload"));
}

TEST(ParentDir, CoversTheShapesTheWritersProduce) {
  EXPECT_EQ(parentDir("a/b/c"), "a/b");
  EXPECT_EQ(parentDir("x"), ".");
  EXPECT_EQ(parentDir("/x"), "/");
  EXPECT_EQ(parentDir("bench/out/fig.json"), "bench/out");
}

}  // namespace
}  // namespace tagspin::core
