#include "core/mem_env.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace tagspin::core {
namespace {

TEST(PosixMemEnv, UnlimitedPassthroughGrantsEverythingAndAccounts) {
  PosixMemEnv env;
  EXPECT_TRUE(env.tryReserve(1 << 20));
  EXPECT_TRUE(env.tryReserve(1 << 20));
  MemEnvStats s = env.stats();
  EXPECT_EQ(s.reserves, 2u);
  EXPECT_EQ(s.denials, 0u);
  EXPECT_EQ(s.usedBytes, 2u << 20);
  EXPECT_EQ(s.peakBytes, 2u << 20);
  env.release(1 << 20);
  s = env.stats();
  EXPECT_EQ(s.usedBytes, 1u << 20);
  EXPECT_EQ(s.peakBytes, 2u << 20);  // peak is sticky
}

TEST(PosixMemEnv, BudgetDeniesGrowthPastTheLimit) {
  PosixMemEnv env(1024);
  EXPECT_TRUE(env.tryReserve(1000));
  EXPECT_FALSE(env.tryReserve(100));  // would exceed 1024
  EXPECT_TRUE(env.tryReserve(24));    // exactly at the limit
  const MemEnvStats s = env.stats();
  EXPECT_EQ(s.denials, 1u);
  EXPECT_EQ(s.usedBytes, 1024u);
  env.release(1024);
  EXPECT_TRUE(env.tryReserve(512));  // headroom returns with the release
}

TEST(PosixMemEnv, ResolveMemNullptrIsThePassthrough) {
  EXPECT_EQ(&resolveMem(nullptr), &passthroughMem());
  PosixMemEnv env;
  EXPECT_EQ(&resolveMem(&env), &env);
  EXPECT_TRUE(passthroughMem().tryReserve(64));
  passthroughMem().release(64);
}

TEST(MemArena, DetachedArenaIsFreeAndUnaccounted) {
  MemArena arena;  // default-constructed: detached
  EXPECT_FALSE(arena.attached());
  EXPECT_TRUE(arena.tryReserve(1ull << 40));  // absurd sizes still granted
  EXPECT_EQ(arena.usedBytes(), 0u);
  EXPECT_EQ(arena.pressure(), 0.0);
  arena.release(1ull << 40);  // no-op, no underflow bookkeeping
  EXPECT_EQ(arena.usedBytes(), 0u);
}

TEST(MemArena, OwnBudgetAndEnvironmentCompose) {
  PosixMemEnv env(4096);
  MemArena arena(&env, 1024, "test.shard");
  EXPECT_TRUE(arena.attached());
  EXPECT_EQ(arena.domain(), "test.shard");

  EXPECT_TRUE(arena.tryReserve(1000));
  EXPECT_FALSE(arena.tryReserve(100));  // arena budget denies first
  EXPECT_EQ(arena.denials(), 1u);
  EXPECT_EQ(arena.usedBytes(), 1000u);
  // A denial leaves the environment untouched too.
  EXPECT_EQ(env.stats().usedBytes, 1000u);
  EXPECT_NEAR(arena.pressure(), 1000.0 / 1024.0, 1e-12);

  arena.release(1000);
  EXPECT_EQ(arena.usedBytes(), 0u);
  EXPECT_EQ(env.stats().usedBytes, 0u);
}

TEST(MemArena, EnvironmentDenialLeavesArenaUnchanged) {
  PosixMemEnv env(512);
  MemArena arena(&env, 0, "unbudgeted");  // arena unlimited, env is not
  EXPECT_TRUE(arena.tryReserve(512));
  EXPECT_FALSE(arena.tryReserve(1));  // env full
  EXPECT_EQ(arena.usedBytes(), 512u);
  EXPECT_EQ(arena.denials(), 1u);
}

TEST(MemArena, DestructionReturnsOutstandingBytesToTheEnvironment) {
  PosixMemEnv env;
  {
    MemArena arena(&env, 0, "scoped");
    EXPECT_TRUE(arena.tryReserve(2048));
    EXPECT_EQ(env.stats().usedBytes, 2048u);
  }
  EXPECT_EQ(env.stats().usedBytes, 0u);
}

TEST(MemArena, MoveTransfersTheLedger) {
  PosixMemEnv env;
  MemArena a(&env, 0, "mover");
  EXPECT_TRUE(a.tryReserve(128));
  MemArena b = std::move(a);
  EXPECT_EQ(b.usedBytes(), 128u);
  EXPECT_EQ(b.domain(), "mover");
  b.release(128);
  EXPECT_EQ(env.stats().usedBytes, 0u);
}

TEST(MemReservation, RaiiReleasesExactlyOnceAndMoves) {
  PosixMemEnv env;
  MemArena arena(&env, 0, "raii");
  ASSERT_TRUE(arena.tryReserve(256));
  {
    MemReservation r(&arena, 256);
    EXPECT_EQ(r.bytes(), 256u);
    MemReservation moved = std::move(r);
    EXPECT_EQ(moved.bytes(), 256u);
    EXPECT_EQ(r.bytes(), 0u);  // NOLINT: moved-from is empty, not released
    EXPECT_EQ(arena.usedBytes(), 256u);
  }
  EXPECT_EQ(arena.usedBytes(), 0u);
  EXPECT_EQ(env.stats().usedBytes, 0u);
}

TEST(BudgetAllocator, ContainerGrowthChargesTheArenaAndFailsByItsRules) {
  PosixMemEnv env;
  MemArena arena(&env, 256 * sizeof(double), "alloc");
  using Vec = std::vector<double, BudgetAllocator<double>>;
  {
    Vec v(BudgetAllocator<double>{&arena});
    v.reserve(128);
    EXPECT_EQ(arena.usedBytes(), 128 * sizeof(double));
    EXPECT_THROW(v.reserve(1024), std::bad_alloc);
    // The failed growth left the container and the ledger intact.
    EXPECT_EQ(v.capacity(), 128u);
    EXPECT_EQ(arena.usedBytes(), 128 * sizeof(double));
  }
  EXPECT_EQ(arena.usedBytes(), 0u);
}

}  // namespace
}  // namespace tagspin::core
