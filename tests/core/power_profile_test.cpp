#include "core/power_profile.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/spectrum.hpp"
#include "geom/angles.hpp"
#include "synthetic.hpp"

namespace tagspin::core {
namespace {

using testing::SyntheticConfig;
using testing::defaultKinematics;
using testing::makeSnapshots;

ProfileConfig configFor(ProfileFormula f) {
  ProfileConfig pc;
  pc.formula = f;
  return pc;
}

// The central property: every formula peaks at the true reader azimuth in
// the noiseless case, across directions, radii and formulas.
struct PeakCase {
  double azimuthDeg;
  double radius;
  ProfileFormula formula;
};

class PeakSweep : public ::testing::TestWithParam<PeakCase> {};

TEST_P(PeakSweep, NoiselessPeakAtTruth) {
  const PeakCase c = GetParam();
  RigKinematics kin = defaultKinematics();
  kin.radiusM = c.radius;
  SyntheticConfig sc;
  sc.readerAzimuth = geom::degToRad(c.azimuthDeg);
  const auto snaps = makeSnapshots(sc, kin);
  const PowerProfile profile(snaps, kin, configFor(c.formula));
  const AzimuthEstimate est = estimateAzimuth(profile, {});
  EXPECT_LT(geom::radToDeg(geom::circularDistance(est.azimuth,
                                                  sc.readerAzimuth)),
            0.2)
      << "azimuth " << c.azimuthDeg << " radius " << c.radius;
  EXPECT_NEAR(est.value, 1.0, 1e-6);  // perfectly coherent
}

INSTANTIATE_TEST_SUITE_P(
    DirectionsRadiiFormulas, PeakSweep,
    ::testing::Values(
        PeakCase{0.0, 0.10, ProfileFormula::kRelativeQ},
        PeakCase{45.0, 0.10, ProfileFormula::kRelativeQ},
        PeakCase{100.0, 0.10, ProfileFormula::kRelativeQ},
        PeakCase{255.0, 0.10, ProfileFormula::kRelativeQ},
        PeakCase{359.0, 0.10, ProfileFormula::kRelativeQ},
        PeakCase{100.0, 0.10, ProfileFormula::kEnhancedR},
        PeakCase{255.0, 0.10, ProfileFormula::kEnhancedR},
        PeakCase{100.0, 0.10, ProfileFormula::kClassicalP},
        PeakCase{100.0, 0.05, ProfileFormula::kEnhancedR},
        PeakCase{100.0, 0.16, ProfileFormula::kEnhancedR},
        PeakCase{200.0, 0.16, ProfileFormula::kRelativeQ}));

TEST(PowerProfile, ValuesBoundedByOne) {
  SyntheticConfig sc;
  sc.noiseStd = 0.1;
  const auto snaps = makeSnapshots(sc);
  for (const auto f : {ProfileFormula::kClassicalP, ProfileFormula::kRelativeQ,
                       ProfileFormula::kEnhancedR}) {
    const PowerProfile profile(snaps, defaultKinematics(), configFor(f));
    for (double phi = 0.0; phi < geom::kTwoPi; phi += 0.21) {
      const double v = profile.evaluate(phi);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-9);
    }
  }
}

TEST(PowerProfile, RSharperThanQ) {
  // Fig. 6's claim, as a testable property: R falls off faster around the
  // peak than Q.
  SyntheticConfig sc;
  sc.readerAzimuth = 2.0;
  const auto snaps = makeSnapshots(sc);
  const PowerProfile q(snaps, defaultKinematics(),
                       configFor(ProfileFormula::kRelativeQ));
  const PowerProfile r(snaps, defaultKinematics(),
                       configFor(ProfileFormula::kEnhancedR));
  const double off = geom::degToRad(3.0);
  EXPECT_LT(r.evaluate(2.0 + off) / r.evaluate(2.0),
            q.evaluate(2.0 + off) / q.evaluate(2.0) - 0.01);
}

TEST(PowerProfile, QInvariantToReferenceCorruption) {
  // Corrupting the reference snapshot's phase only rotates Q's sum.
  SyntheticConfig sc;
  sc.readerAzimuth = 1.3;
  auto snaps = makeSnapshots(sc);
  const PowerProfile clean(snaps, defaultKinematics(),
                           configFor(ProfileFormula::kRelativeQ));
  auto corrupted = snaps;
  corrupted[0].phaseRad = geom::wrapTwoPi(corrupted[0].phaseRad + 2.0);
  const PowerProfile dirty(corrupted, defaultKinematics(),
                           configFor(ProfileFormula::kRelativeQ));
  for (double phi = 0.0; phi < geom::kTwoPi; phi += 0.5) {
    EXPECT_NEAR(clean.evaluate(phi), dirty.evaluate(phi), 2.0 / 800.0 + 1e-6);
  }
}

TEST(PowerProfile, RRobustToReferenceCorruption) {
  // The self-centred weights keep R's peak at the truth even when the
  // reference read is an interference outlier (see DESIGN.md).
  SyntheticConfig sc;
  sc.readerAzimuth = 1.3;
  sc.noiseStd = 0.1;
  auto snaps = makeSnapshots(sc);
  snaps[0].phaseRad = geom::wrapTwoPi(snaps[0].phaseRad + 2.5);
  const PowerProfile profile(snaps, defaultKinematics(),
                             configFor(ProfileFormula::kEnhancedR));
  const AzimuthEstimate est = estimateAzimuth(profile, {});
  EXPECT_LT(geom::radToDeg(geom::circularDistance(est.azimuth, 1.3)), 1.0);
}

TEST(PowerProfile, ROutperformsQUnderOutliers) {
  // The paper's robustness claim, measured: average azimuth error over
  // several seeds with 10% interference outliers.
  double qErr = 0.0, rErr = 0.0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SyntheticConfig sc;
    sc.readerAzimuth = 0.6 + 0.8 * static_cast<double>(seed);
    sc.noiseStd = 0.1;
    sc.outlierProb = 0.10;
    sc.seed = seed;
    const auto snaps = makeSnapshots(sc);
    const PowerProfile q(snaps, defaultKinematics(),
                         configFor(ProfileFormula::kRelativeQ));
    const PowerProfile r(snaps, defaultKinematics(),
                         configFor(ProfileFormula::kEnhancedR));
    qErr += geom::circularDistance(estimateAzimuth(q, {}).azimuth,
                                   geom::wrapTwoPi(sc.readerAzimuth));
    rErr += geom::circularDistance(estimateAzimuth(r, {}).azimuth,
                                   geom::wrapTwoPi(sc.readerAzimuth));
  }
  EXPECT_LT(rErr, qErr);
}

TEST(PowerProfile, ThreeDPeakAtTruth) {
  SyntheticConfig sc;
  sc.readerAzimuth = 2.2;
  sc.readerPolar = geom::degToRad(35.0);
  const auto snaps = makeSnapshots(sc);
  const PowerProfile profile(snaps, defaultKinematics(),
                             configFor(ProfileFormula::kEnhancedR));
  const SpatialEstimate est = estimateSpatial(profile, {});
  EXPECT_LT(geom::radToDeg(geom::circularDistance(est.azimuth, 2.2)), 0.5);
  EXPECT_NEAR(geom::radToDeg(est.polar), 35.0, 1.5);
}

TEST(PowerProfile, ThreeDMirrorSymmetryExact) {
  SyntheticConfig sc;
  sc.readerPolar = geom::degToRad(25.0);
  const auto snaps = makeSnapshots(sc);
  const PowerProfile profile(snaps, defaultKinematics(), {});
  for (double gamma = 0.0; gamma <= 1.5; gamma += 0.3) {
    EXPECT_DOUBLE_EQ(profile.evaluate(1.0, gamma),
                     profile.evaluate(1.0, -gamma));
  }
}

TEST(PowerProfile, ChannelGroupingHandlesHopping) {
  // Two channels whose relative phases carry different D/lambda constants:
  // grouped evaluation stays coherent, naive single-group does not.
  SyntheticConfig scA;
  scA.readerAzimuth = 1.9;
  scA.lambdaM = 0.3243;
  scA.count = 400;
  scA.seed = 3;
  SyntheticConfig scB = scA;
  scB.lambdaM = 0.3256;
  scB.seed = 4;
  auto snapsA = makeSnapshots(scA);
  auto snapsB = makeSnapshots(scB);
  for (auto& s : snapsB) s.channel = 9;
  std::vector<Snapshot> all(snapsA);
  all.insert(all.end(), snapsB.begin(), snapsB.end());
  std::sort(all.begin(), all.end(),
            [](const Snapshot& a, const Snapshot& b) {
              return a.timeS < b.timeS;
            });

  ProfileConfig grouped = configFor(ProfileFormula::kRelativeQ);
  grouped.channelCoherent = true;
  ProfileConfig naive = grouped;
  naive.channelCoherent = false;
  const PowerProfile pg(all, defaultKinematics(), grouped);
  const PowerProfile pn(all, defaultKinematics(), naive);
  EXPECT_NEAR(pg.evaluate(1.9), 1.0, 0.01);
  EXPECT_LT(pn.evaluate(1.9), pg.evaluate(1.9));
  const AzimuthEstimate est = estimateAzimuth(pg, {});
  EXPECT_LT(geom::circularDistance(est.azimuth, 1.9), 0.01);
}

TEST(PowerProfile, EvaluateDirectionGeneralizesGamma) {
  SyntheticConfig sc;
  const auto snaps = makeSnapshots(sc);
  const PowerProfile profile(snaps, defaultKinematics(), {});
  EXPECT_DOUBLE_EQ(profile.evaluate(0.7, 0.5),
                   profile.evaluateDirection(0.7, std::cos(0.5)));
}

TEST(PowerProfile, Validation) {
  SyntheticConfig sc;
  sc.count = 1;
  const auto one = makeSnapshots(sc);
  EXPECT_THROW(PowerProfile(one, defaultKinematics(), {}),
               std::invalid_argument);

  sc.count = 10;
  auto snaps = makeSnapshots(sc);
  RigKinematics zeroRadius = defaultKinematics();
  zeroRadius.radiusM = 0.0;
  EXPECT_THROW(PowerProfile(snaps, zeroRadius, {}), std::invalid_argument);

  ProfileConfig badSigma;
  badSigma.phaseNoiseStd = 0.0;
  EXPECT_THROW(PowerProfile(snaps, defaultKinematics(), badSigma),
               std::invalid_argument);

  snaps[0].lambdaM = 0.0;
  EXPECT_THROW(PowerProfile(snaps, defaultKinematics(), {}),
               std::invalid_argument);
}

TEST(PowerProfile, SampleAzimuthMatchesEvaluate) {
  SyntheticConfig sc;
  const auto snaps = makeSnapshots(sc);
  const PowerProfile profile(snaps, defaultKinematics(), {});
  const auto samples = profile.sampleAzimuth(36);
  ASSERT_EQ(samples.size(), 36u);
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(samples[i],
                     profile.evaluate(geom::kTwoPi * i / 36.0));
  }
}

}  // namespace
}  // namespace tagspin::core
