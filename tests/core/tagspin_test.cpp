#include "core/tagspin.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "geom/angles.hpp"
#include "rf/constants.hpp"
#include "synthetic.hpp"

namespace tagspin::core {
namespace {

using testing::SyntheticConfig;
using testing::defaultKinematics;
using testing::makeSnapshots;

/// Wrap synthetic snapshots of one rig into TagReports for `epc`.
rfid::ReportStream toReports(const std::vector<Snapshot>& snaps,
                             const rfid::Epc& epc) {
  rfid::ReportStream out;
  for (const Snapshot& s : snaps) {
    rfid::TagReport r;
    r.epc = epc;
    r.timestampS = s.timeS;
    r.phaseRad = s.phaseRad;
    r.rssiDbm = -50.0;
    r.channelIndex = s.channel;
    r.frequencyHz = rf::kSpeedOfLight / s.lambdaM;
    out.push_back(r);
  }
  return out;
}

struct Deployment {
  TagspinSystem server;
  rfid::ReportStream reports;
  geom::Vec3 reader;
};

Deployment makeDeployment(const geom::Vec3& reader) {
  Deployment dep;
  dep.reader = reader;
  const geom::Vec3 centers[2] = {{-0.2, 0.0, 0.0}, {0.2, 0.0, 0.0}};
  for (int i = 0; i < 2; ++i) {
    const rfid::Epc epc = rfid::Epc::forSimulatedTag(static_cast<uint32_t>(i));
    RigSpec spec;
    spec.center = centers[i];
    spec.kinematics = defaultKinematics();
    spec.kinematics.initialAngle = 0.4 * i;
    dep.server.registerRig(epc, spec);

    SyntheticConfig sc;
    sc.distanceM = (reader.xy() - centers[i].xy()).norm();
    sc.readerAzimuth = geom::azimuthOf(centers[i], reader);
    sc.readerPolar = geom::polarOf(centers[i], reader);
    sc.noiseStd = 0.05;
    sc.seed = static_cast<uint64_t>(i) + 1;
    const auto snaps = makeSnapshots(sc, spec.kinematics);
    const auto reports = toReports(snaps, epc);
    dep.reports.insert(dep.reports.end(), reports.begin(), reports.end());
  }
  return dep;
}

TEST(TagspinSystem, Locate2DFromReportStream) {
  Deployment dep = makeDeployment({0.7, 2.2, 0.0});
  EXPECT_EQ(dep.server.rigCount(), 2u);
  const Fix2D fix = dep.server.locate2D(dep.reports);
  EXPECT_LT(geom::distance(fix.position, dep.reader.xy()), 0.06);
}

TEST(TagspinSystem, Locate3DFromReportStream) {
  Deployment dep = makeDeployment({0.7, 2.2, 0.9});
  const Fix3D fix = dep.server.locate3D(dep.reports);
  EXPECT_LT(geom::distance(fix.position, dep.reader), 0.12);
}

TEST(TagspinSystem, IgnoresUnknownTags) {
  Deployment dep = makeDeployment({0.7, 2.2, 0.0});
  // Stray reports from an unregistered tag must not disturb the fix.
  rfid::TagReport stray;
  stray.epc = rfid::Epc::forSimulatedTag(999);
  stray.timestampS = 1.0;
  stray.phaseRad = 0.5;
  stray.rssiDbm = -40.0;
  stray.frequencyHz = rf::mhz(922.0);
  for (int i = 0; i < 50; ++i) {
    stray.timestampS += 0.1;
    dep.reports.push_back(stray);
  }
  const Fix2D fix = dep.server.locate2D(dep.reports);
  EXPECT_LT(geom::distance(fix.position, dep.reader.xy()), 0.06);
}

TEST(TagspinSystem, ThrowsWhenRigsNotHeard) {
  Deployment dep = makeDeployment({0.7, 2.2, 0.0});
  EXPECT_THROW(dep.server.locate2D({}), std::runtime_error);

  // Only one of the two rigs present in the stream.
  rfid::ReportStream partial;
  for (const rfid::TagReport& r : dep.reports) {
    if (r.epc == rfid::Epc::forSimulatedTag(0)) partial.push_back(r);
  }
  EXPECT_THROW(dep.server.locate2D(partial), std::runtime_error);
}

TEST(TagspinSystem, ReRegisteringReplacesRig) {
  Deployment dep = makeDeployment({0.7, 2.2, 0.0});
  // Move rig 0's registered center by 5 cm: the fix shifts accordingly.
  RigSpec moved;
  moved.center = {-0.15, 0.0, 0.0};
  moved.kinematics = defaultKinematics();
  dep.server.registerRig(rfid::Epc::forSimulatedTag(0), moved);
  EXPECT_EQ(dep.server.rigCount(), 2u);
  const Fix2D fix = dep.server.locate2D(dep.reports);
  // The fix is now biased: registry state matters.
  EXPECT_GT(geom::distance(fix.position, dep.reader.xy()), 0.02);
}

TEST(TagspinSystem, CollectObservationsAttachesModels) {
  Deployment dep = makeDeployment({0.7, 2.2, 0.0});
  OrientationModel model;  // identity; presence still recorded per-EPC
  dep.server.setOrientationModel(rfid::Epc::forSimulatedTag(0), model);
  const auto obs = dep.server.collectObservations(dep.reports);
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_GT(obs[0].snapshots.size(), 100u);
  EXPECT_GT(obs[1].snapshots.size(), 100u);
}

TEST(TagspinSystem, PreprocessConfigRespected) {
  Deployment dep = makeDeployment({0.7, 2.2, 0.0});
  PreprocessConfig pp;
  pp.maxSnapshots = 64;
  dep.server.setPreprocessConfig(pp);
  const auto obs = dep.server.collectObservations(dep.reports);
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_LE(obs[0].snapshots.size(), 64u);
  // Still locates, just coarser.
  EXPECT_LT(geom::distance(dep.server.locate2D(dep.reports).position,
                           dep.reader.xy()),
            0.25);
}

TEST(TagspinSystem, LocateAllAntennasSplitsByPort) {
  // Two ports in one stream: port 0 carries a full deployment's reports,
  // port 3 only stray reads -- it must be omitted, not crash.
  Deployment dep = makeDeployment({0.7, 2.2, 0.0});
  rfid::ReportStream mixed = dep.reports;  // all port 0
  rfid::TagReport stray;
  stray.epc = rfid::Epc::forSimulatedTag(0);
  stray.phaseRad = 0.3;
  stray.rssiDbm = -50.0;
  stray.frequencyHz = rf::mhz(922.0);
  stray.antennaPort = 3;
  mixed.push_back(stray);

  const auto fixes = dep.server.locateAllAntennas2D(mixed);
  ASSERT_EQ(fixes.size(), 1u);
  ASSERT_TRUE(fixes.count(0));
  EXPECT_LT(geom::distance(fixes.at(0).position, dep.reader.xy()), 0.06);
}

TEST(TagspinSystem, LocateAllAntennasMultiplePorts) {
  // Same deployment observed from two ports (reports duplicated onto port
  // 1 with a tiny phase rotation): both produce fixes.
  Deployment dep = makeDeployment({0.7, 2.2, 0.0});
  rfid::ReportStream mixed = dep.reports;
  for (rfid::TagReport r : dep.reports) {
    r.antennaPort = 1;
    r.phaseRad = geom::wrapTwoPi(r.phaseRad + 0.9);  // different port phase
    mixed.push_back(r);
  }
  const auto fixes = dep.server.locateAllAntennas2D(mixed);
  ASSERT_EQ(fixes.size(), 2u);
  for (const auto& [port, fix] : fixes) {
    EXPECT_LT(geom::distance(fix.position, dep.reader.xy()), 0.06)
        << "port " << port;
  }
}

TEST(TagspinSystem, CalibrateOrientationEndToEnd) {
  // Center-spin reports -> OrientationModel via the server facade.
  const rfid::Epc epc = rfid::Epc::forSimulatedTag(7);
  RigSpec rig;
  rig.center = {0.0, 0.0, 0.0};
  rig.kinematics = {0.0, 0.5, 0.0, geom::kPi / 2.0};
  const geom::Vec3 bench{1.0, 1.5, 0.0};

  SyntheticConfig sc;
  sc.count = 1200;
  sc.readerAzimuth = geom::azimuthOf(rig.center, bench);
  sc.noiseStd = 0.08;
  sc.orientation = [](double rho) { return 0.3 * std::cos(2.0 * rho); };
  const auto snaps = makeSnapshots(sc, rig.kinematics);

  TagspinSystem server;
  const OrientationModel model =
      server.calibrateOrientation(toReports(snaps, epc), epc, rig, bench);
  EXPECT_FALSE(model.isIdentity());
  EXPECT_NEAR(model.offsetAt(0.0) - model.offsetAt(geom::kPi / 4.0),
              0.3 * (std::cos(0.0) - std::cos(geom::kPi / 2.0)), 0.05);
}

}  // namespace
}  // namespace tagspin::core
