// Robust-estimation behaviour of the locator under adversarially corrupted
// spins: ghost-azimuth report mixing, quarantine-driven degradation,
// behind-origin bearings, tan-pole geometry and the bootstrap ellipse.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/locator.hpp"
#include "geom/angles.hpp"
#include "synthetic.hpp"

namespace tagspin::core {
namespace {

using testing::SyntheticConfig;
using testing::defaultKinematics;
using testing::makeSnapshots;

RigObservation makeObservation(const geom::Vec3& center,
                               const geom::Vec3& reader, uint64_t seed,
                               double noise = 0.05) {
  RigObservation obs;
  obs.rig.center = center;
  obs.rig.kinematics = defaultKinematics();
  obs.rig.kinematics.initialAngle = 0.17 * static_cast<double>(seed);
  SyntheticConfig sc;
  sc.distanceM = (reader.xy() - center.xy()).norm();
  sc.readerAzimuth = geom::azimuthOf(center, reader);
  sc.noiseStd = noise;
  sc.seed = seed;
  sc.thetaDiv = 0.3 + 0.7 * static_cast<double>(seed);
  obs.snapshots = makeSnapshots(sc, obs.rig.kinematics);
  return obs;
}

/// A spin whose reports are a deterministic mix of two readers: the true
/// one and a ghost (multipath capture).  `ghostOutOf10` of every 10
/// snapshots come from the ghost -- at 6/10 the ghost lobe DOMINATES the
/// angle spectrum and the main peak points the wrong way.
RigObservation makeGhostMixedObservation(const geom::Vec3& center,
                                         const geom::Vec3& reader,
                                         const geom::Vec3& ghost,
                                         uint64_t seed, int ghostOutOf10) {
  RigObservation truth = makeObservation(center, reader, seed);
  const RigObservation haunted = [&] {
    RigObservation g;
    g.rig = truth.rig;
    SyntheticConfig sc;
    sc.distanceM = (ghost.xy() - center.xy()).norm();
    sc.readerAzimuth = geom::azimuthOf(center, ghost);
    sc.noiseStd = 0.05;
    sc.seed = seed ^ 0x6057;
    sc.thetaDiv = 0.3 + 0.7 * static_cast<double>(seed);
    g.snapshots = makeSnapshots(sc, g.rig.kinematics);
    return g;
  }();
  // Both sets share the time grid, so index-mixing keeps timestamps sane.
  for (size_t i = 0; i < truth.snapshots.size(); ++i) {
    if (static_cast<int>(i % 10) < ghostOutOf10) {
      truth.snapshots[i] = haunted.snapshots[i];
    }
  }
  return truth;
}

const geom::Vec3 kReader{0.8, 2.0, 0.0};
const geom::Vec3 kGhost{-1.4, 1.0, 0.0};

std::vector<RigObservation> rigRowWithCorruption(int ghostOutOf10) {
  const std::vector<double> xs{-0.6, -0.2, 0.2, 0.6};
  std::vector<RigObservation> obs;
  for (size_t i = 0; i < xs.size(); ++i) {
    const geom::Vec3 center{xs[i], 0.0, 0.0};
    if (i == 1 && ghostOutOf10 > 0) {
      obs.push_back(makeGhostMixedObservation(center, kReader, kGhost, i + 1,
                                              ghostOutOf10));
    } else {
      obs.push_back(makeObservation(center, kReader, i + 1));
    }
  }
  return obs;
}

LocatorConfig baselineConfig() {
  LocatorConfig lc;
  lc.robust.diagnostics = false;
  lc.robust.consensus = false;
  return lc;
}

TEST(RobustLocator, ConsensusOutvotesGhostDominatedRig) {
  const std::vector<RigObservation> obs = rigRowWithCorruption(6);

  const Fix2D baseline = Locator(baselineConfig()).locate2D(obs);
  const double baselineErr = geom::distance(baseline.position, kReader.xy());

  const Fix2D robustFix = Locator().locate2D(obs);  // defaults: robust on
  const double robustErr = geom::distance(robustFix.position, kReader.xy());

  // The ghost lobe dominates rig 1's spectrum, so the trusting baseline is
  // dragged off by tens of centimetres; consensus recovers the minority
  // true lobe (or outvotes the rig entirely).
  EXPECT_GT(baselineErr, 0.30);
  EXPECT_LT(robustErr, 0.15);
  EXPECT_LT(robustErr, 0.5 * baselineErr);
  EXPECT_TRUE(robustFix.estimation.consensusUsed);
  ASSERT_EQ(robustFix.estimation.spins.size(), obs.size());
  EXPECT_NE(robustFix.estimation.spins[1].verdict,
            robust::SpinVerdict::kAccept);
}

TEST(RobustLocator, CleanSpinsPayNoRobustnessTax) {
  const std::vector<RigObservation> obs = rigRowWithCorruption(0);
  const Fix2D baseline = Locator(baselineConfig()).locate2D(obs);
  const Fix2D robustFix = Locator().locate2D(obs);
  // Single-candidate clean spectra: consensus reduces to the same weighted
  // least squares with all weights 1.
  EXPECT_LT(geom::distance(robustFix.position, baseline.position), 1e-6);
  EXPECT_DOUBLE_EQ(robustFix.estimation.inlierFraction, 1.0);
  for (const auto& spin : robustFix.estimation.spins) {
    EXPECT_EQ(spin.verdict, robust::SpinVerdict::kAccept);
  }
}

TEST(RobustLocator, NearFiftyFiftyMixIsQuarantinedAndDropped) {
  // A 50/50 report mix yields two near-equal lobes: unresolvable by the
  // spin alone.  tryLocate2D must drop the rig (degraded grade, downgraded
  // confidence) rather than let it vote.
  std::vector<RigObservation> obs{
      makeObservation({-0.6, 0.0, 0.0}, kReader, 1),
      makeObservation({0.2, 0.0, 0.0}, kReader, 3),
      makeGhostMixedObservation({-0.2, 0.0, 0.0}, kReader, kGhost, 2, 5)};

  const Locator locator;
  const auto fix = locator.tryLocate2D(obs);
  ASSERT_TRUE(fix.hasValue()) << fix.error().message;
  ASSERT_EQ(fix->report.rigHealth.size(), 3u);
  EXPECT_EQ(fix->report.rigHealth[2].spin.verdict,
            robust::SpinVerdict::kQuarantine);
  EXPECT_EQ(fix->report.grade, FixGrade::kDegraded);
  ASSERT_EQ(fix->report.droppedRigs.size(), 1u);
  EXPECT_EQ(fix->report.droppedRigs[0], 2u);
  EXPECT_LT(geom::distance(fix->fix.position, kReader.xy()), 0.10);

  // Same scene without the haunted rig at full grade: higher confidence.
  std::vector<RigObservation> clean{obs[0], obs[1]};
  const auto cleanFix = locator.tryLocate2D(clean);
  ASSERT_TRUE(cleanFix.hasValue());
  EXPECT_EQ(cleanFix->report.grade, FixGrade::kFull);
  EXPECT_GT(cleanFix->report.confidence, fix->report.confidence);
}

TEST(RobustLocator, BehindOriginRaySurfacedAndConfidenceDowngraded) {
  // One rig's bearing flipped by pi (mirror lobe): the two-ray intersection
  // lands BEHIND that rig.  The fix must carry the behind-origin count and
  // a confidence haircut relative to the clean geometry.
  std::vector<RigObservation> clean{
      makeObservation({-0.3, 0.0, 0.0}, kReader, 1),
      makeObservation({0.3, 0.0, 0.0}, kReader, 2)};

  std::vector<RigObservation> flipped{clean[0], clean[1]};
  {
    RigObservation mirror;
    mirror.rig = clean[1].rig;
    SyntheticConfig sc;
    sc.distanceM = (kReader.xy() - mirror.rig.center.xy()).norm();
    sc.readerAzimuth = geom::wrapTwoPi(
        geom::azimuthOf(mirror.rig.center, kReader) + geom::kPi);
    sc.noiseStd = 0.05;
    sc.seed = 2;
    mirror.snapshots = makeSnapshots(sc, mirror.rig.kinematics);
    flipped[1] = mirror;
  }

  const Locator locator;
  const auto good = locator.tryLocate2D(clean);
  ASSERT_TRUE(good.hasValue());
  EXPECT_EQ(good->fix.estimation.behindOriginRays, 0u);

  const auto bad = locator.tryLocate2D(flipped);
  ASSERT_TRUE(bad.hasValue());
  EXPECT_GE(bad->fix.estimation.behindOriginRays, 1u);
  ASSERT_EQ(bad->fix.estimation.rayT.size(), 2u);
  EXPECT_LT(*std::min_element(bad->fix.estimation.rayT.begin(),
                              bad->fix.estimation.rayT.end()),
            0.0);
  EXPECT_LT(bad->report.confidence, good->report.confidence);
}

TEST(RobustLocator, TanPoleGeometryStillLocates) {
  // Reader exactly straight ahead of rig 0: azimuth pi/2, the tan() pole
  // where the paper's Eqn. 9 closed form goes blind.  The locator must not
  // care -- it never touches intersectEqn9.
  const geom::Vec3 reader{-0.2, 2.0, 0.0};
  const std::vector<RigObservation> obs{
      makeObservation({-0.2, 0.0, 0.0}, reader, 1, 0.0),
      makeObservation({0.2, 0.0, 0.0}, reader, 2, 0.0)};
  const Fix2D fix = Locator().locate2D(obs);
  EXPECT_LT(geom::distance(fix.position, reader.xy()), 0.05);
}

TEST(RobustLocator, BootstrapEllipseAttachedToFix) {
  LocatorConfig lc;
  lc.robust.bootstrap = true;
  // Calibrated bearing-noise region (the pairs default adds between-rig
  // spread, which on a collinear rig row dwarfs the cm noise scale this
  // test pins down).
  lc.robust.pairsBootstrap = false;
  const std::vector<RigObservation> obs = rigRowWithCorruption(0);
  const Fix2D fix = Locator(lc).locate2D(obs);
  ASSERT_TRUE(fix.estimation.ellipse.has_value());
  const auto& e = *fix.estimation.ellipse;
  EXPECT_DOUBLE_EQ(e.confidenceLevel, 0.90);
  EXPECT_GT(e.semiMinorM, 0.0);
  EXPECT_GE(e.semiMajorM, e.semiMinorM);
  EXPECT_LT(e.semiMajorM, 0.5);  // cm-regime noise, not metres
  EXPECT_TRUE(e.contains(fix.position));

  // Bootstrap off (the default): no ellipse is computed.
  const Fix2D plain = Locator().locate2D(obs);
  EXPECT_FALSE(plain.estimation.ellipse.has_value());
}

}  // namespace
}  // namespace tagspin::core
