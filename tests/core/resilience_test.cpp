// Graceful-degradation locator: the resilient entry points must match the
// strict path bit-for-bit on clean input, drop unhealthy rigs with an audit
// trail on dirty input, and report every failure cause as an ErrorCode.
#include <gtest/gtest.h>

#include <cmath>

#include "core/errors.hpp"
#include "core/tagspin.hpp"
#include "eval/estimators.hpp"
#include "geom/angles.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"
#include "synthetic.hpp"

namespace tagspin {
namespace {

sim::World makeThreeRigWorld(uint64_t seed = 17) {
  sim::ScenarioConfig sc;
  sc.seed = seed;
  sc.fixedChannel = true;
  return sim::makeRigRowWorld(sc, 3);
}

/// Make the channel ideal: no ambient-interference outliers (3% of reads by
/// default), no Gaussian phase noise (whose 3-sigma tails the Hampel filter
/// legitimately trims), no multipath (a deep fade produces an abrupt phase
/// excursion that is flagged the same way).  The bit-identity tests need a
/// stream where the robust stages have nothing to repair: on a noisy stream
/// the filter is *supposed* to drop reads, and robust != strict is the
/// correct outcome.
void disableInterference(sim::World& world) {
  rf::ChannelConfig cc = world.channel.config();
  cc.phaseOutlierProb = 0.0;
  cc.phaseNoiseStd = 0.0;
  cc.multipathEnabled = false;
  world.channel = rf::BackscatterChannel(cc, world.channel.scatterers());
}

rfid::ReportStream interrogateAt(sim::World& world, const geom::Vec3& truth,
                                 double durationS = 15.0) {
  sim::placeReaderAntenna(world, 0, truth);
  sim::InterrogateConfig ic;
  ic.durationS = durationS;
  ic.antennaPort = 0;
  return sim::interrogate(world, ic);
}

/// Keep only the first `count` reports of `epc` (plus everything else).
rfid::ReportStream starveTag(const rfid::ReportStream& reports,
                             const rfid::Epc& epc, size_t count) {
  rfid::ReportStream out;
  size_t kept = 0;
  for (const rfid::TagReport& r : reports) {
    if (r.epc == epc && kept >= count) continue;
    if (r.epc == epc) ++kept;
    out.push_back(r);
  }
  return out;
}

TEST(Resilience, CleanStream2DIsBitIdenticalToStrictPath) {
  sim::World world = makeThreeRigWorld();
  disableInterference(world);
  const geom::Vec3 truth{0.5, 1.9, 0.0};
  const auto reports = interrogateAt(world, truth);
  const core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});

  const core::Fix2D strict = server.locate2D(reports);
  const core::Result<core::ResilientFix2D> res = server.tryLocate2D(reports);
  ASSERT_TRUE(res) << res.error().message;

  EXPECT_EQ(res->report.grade, core::FixGrade::kFull);
  EXPECT_EQ(res->report.usedRigs.size(), 3u);
  EXPECT_TRUE(res->report.droppedRigs.empty());
  EXPECT_GT(res->report.confidence, 0.0);
  EXPECT_LE(res->report.confidence, 1.0);

  // Bit-identity, not approximation: the resilient path on a clean stream
  // must run the exact same numbers through the exact same code.
  EXPECT_EQ(res->fix.position.x, strict.position.x);
  EXPECT_EQ(res->fix.position.y, strict.position.y);
  ASSERT_EQ(res->fix.directions.size(), strict.directions.size());
  for (size_t i = 0; i < strict.directions.size(); ++i) {
    EXPECT_EQ(res->fix.directions[i].azimuth, strict.directions[i].azimuth);
  }
}

TEST(Resilience, CleanStream3DIsBitIdenticalToStrictPath) {
  sim::World world = makeThreeRigWorld(23);
  disableInterference(world);
  const geom::Vec3 truth{-0.4, 2.1, 0.6};
  const auto reports = interrogateAt(world, truth);
  const core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});

  const core::Fix3D strict = server.locate3D(reports);
  const core::Result<core::ResilientFix3D> res = server.tryLocate3D(reports);
  ASSERT_TRUE(res) << res.error().message;
  EXPECT_EQ(res->report.grade, core::FixGrade::kFull);
  EXPECT_EQ(res->fix.position.x, strict.position.x);
  EXPECT_EQ(res->fix.position.y, strict.position.y);
  EXPECT_EQ(res->fix.position.z, strict.position.z);
}

TEST(Resilience, StarvedRigIsDroppedWithReasonAndDegradedGrade) {
  sim::World world = makeThreeRigWorld();
  const geom::Vec3 truth{0.5, 1.9, 0.0};
  const auto reports = interrogateAt(world, truth);
  // Rig 2 keeps 8 reports: enough to be offered as an observation (>= 2),
  // far below the default minSnapshots = 16 health gate.
  const rfid::Epc starved = world.rigs[2].tag.epc;
  const auto dirty = starveTag(reports, starved, 8);

  const core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});
  const core::Result<core::ResilientFix2D> res = server.tryLocate2D(dirty);
  ASSERT_TRUE(res) << res.error().message;

  EXPECT_EQ(res->report.grade, core::FixGrade::kDegraded);
  EXPECT_EQ(res->report.usedRigs.size(), 2u);
  ASSERT_EQ(res->report.droppedRigs.size(), 1u);
  ASSERT_EQ(res->report.droppedReasons.size(), 1u);
  EXPECT_NE(res->report.droppedReasons[0].find("snapshots"), std::string::npos)
      << res->report.droppedReasons[0];
  // Confidence carries the explicit x0.7 degradation cap.
  EXPECT_GT(res->report.confidence, 0.0);
  EXPECT_LE(res->report.confidence, 0.7);
  // Two healthy rigs still produce a usable fix.
  EXPECT_LT(geom::distance(res->fix.position, truth.xy()), 0.8);
}

TEST(Resilience, MinimalGradeWhenNoRigPassesTheGate) {
  sim::World world = makeThreeRigWorld();
  const geom::Vec3 truth{0.3, 2.0, 0.0};
  const auto reports = interrogateAt(world, truth);

  core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});
  core::RigHealthThresholds impossible;
  impossible.minSnapshots = 1000000;  // nothing is "healthy" now
  server.setHealthThresholds(impossible);

  const core::Result<core::ResilientFix2D> res = server.tryLocate2D(reports);
  ASSERT_TRUE(res) << res.error().message;
  EXPECT_EQ(res->report.grade, core::FixGrade::kMinimal);
  EXPECT_EQ(res->report.usedRigs.size(), 2u);  // best-pair fallback
  EXPECT_LE(res->report.confidence, 0.4);      // x0.4 minimal cap
  EXPECT_LT(geom::distance(res->fix.position, truth.xy()), 0.8);
}

TEST(Resilience, EmptyAndSilentStreamsReportTooFewRigs) {
  sim::World world = makeThreeRigWorld();
  const core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});

  const auto empty2d = server.tryLocate2D({});
  ASSERT_FALSE(empty2d);
  EXPECT_EQ(empty2d.error().code, core::ErrorCode::kTooFewRigs);
  // The message must name the deployment and the stream so an operator can
  // tell "no rigs registered" from "rigs registered but nothing heard".
  EXPECT_NE(empty2d.error().message.find("0 of 3"), std::string::npos)
      << empty2d.error().message;
  EXPECT_NE(empty2d.error().message.find("0 reports"), std::string::npos)
      << empty2d.error().message;

  const auto empty3d = server.tryLocate3D({});
  ASSERT_FALSE(empty3d);
  EXPECT_EQ(empty3d.error().code, core::ErrorCode::kTooFewRigs);

  // A stream where only one rig speaks is just as unusable.
  const geom::Vec3 truth{0.5, 1.9, 0.0};
  auto reports = interrogateAt(world, truth);
  rfid::ReportStream oneRig;
  for (const rfid::TagReport& r : reports) {
    if (r.epc == world.rigs[0].tag.epc) oneRig.push_back(r);
  }
  const auto single = server.tryLocate2D(oneRig);
  ASSERT_FALSE(single);
  EXPECT_EQ(single.error().code, core::ErrorCode::kTooFewRigs);
}

TEST(Resilience, UnusableObservationsReportTooFewHealthyRigs) {
  // Two rigs offered, each with a single snapshot: not even the minimal
  // fallback can build a spectrum from one phase sample.
  core::RigObservation a;
  a.rig.center = {0.0, 0.0, 0.0};
  a.rig.kinematics = core::testing::defaultKinematics();
  core::Snapshot s;
  s.timeS = 0.0;
  s.phaseRad = 1.0;
  s.lambdaM = 0.325;
  a.snapshots = {s};
  core::RigObservation b = a;
  b.rig.center = {2.0, 0.0, 0.0};

  const core::Locator locator;
  const std::vector<core::RigObservation> obs = {a, b};
  const auto res = locator.tryLocate2D(obs);
  ASSERT_FALSE(res);
  EXPECT_EQ(res.error().code, core::ErrorCode::kTooFewHealthyRigs);
}

TEST(Resilience, ParallelRaysReportDegenerateGeometry) {
  // Two rigs with *identical* kinematics and snapshots estimate bitwise
  // identical azimuths; from distinct centers that is an exactly parallel
  // ray pair, which must come back as an ErrorCode, not an exception.
  core::testing::SyntheticConfig cfg;
  cfg.readerAzimuth = 0.7;
  const auto snaps = core::testing::makeSnapshots(cfg);

  core::RigObservation a;
  a.rig.center = {0.0, 0.0, 0.0};
  a.rig.kinematics = core::testing::defaultKinematics();
  a.snapshots = snaps;
  core::RigObservation b = a;
  b.rig.center = {2.0, 0.0, 0.0};

  const core::Locator locator;
  const auto res = locator.tryLocate2D(std::vector<core::RigObservation>{a, b});
  ASSERT_FALSE(res);
  EXPECT_EQ(res.error().code, core::ErrorCode::kDegenerateGeometry);
}

TEST(Resilience, ResultAndErrorCodeBasics) {
  core::Result<int> ok = 42;
  ASSERT_TRUE(ok);
  EXPECT_EQ(*ok, 42);
  core::Result<int> bad = core::Error{core::ErrorCode::kMalformedFrame, "x"};
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.error().code, core::ErrorCode::kMalformedFrame);
  EXPECT_STREQ(core::errorCodeName(core::ErrorCode::kTooFewRigs),
               "too_few_rigs");
  EXPECT_STREQ(core::errorCodeName(core::ErrorCode::kDegenerateGeometry),
               "degenerate_geometry");
}

}  // namespace
}  // namespace tagspin
