#include "core/fusion.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

namespace tagspin::core {
namespace {

TEST(GeometricMedian, SinglePointReturnsItself) {
  const std::vector<geom::Vec2> one{{1.5, -2.0}};
  EXPECT_EQ(geometricMedian(one), (geom::Vec2{1.5, -2.0}));
}

TEST(GeometricMedian, EmptyThrows) {
  EXPECT_THROW(geometricMedian(std::span<const geom::Vec2>{}),
               std::invalid_argument);
  EXPECT_THROW(componentMedian(std::span<const geom::Vec3>{}),
               std::invalid_argument);
}

TEST(GeometricMedian, SymmetricClusterFindsCenter) {
  const std::vector<geom::Vec2> square{
      {1.0, 1.0}, {-1.0, 1.0}, {-1.0, -1.0}, {1.0, -1.0}};
  const geom::Vec2 m = geometricMedian(square);
  EXPECT_NEAR(m.x, 0.0, 1e-5);
  EXPECT_NEAR(m.y, 0.0, 1e-5);
}

TEST(GeometricMedian, RobustToGrossOutlier) {
  // Nine fixes near (1, 2) and one catastrophic sidelobe pick at (40, 40):
  // the mean is dragged ~4 m; the geometric median stays within cm.
  std::vector<geom::Vec2> fixes;
  std::mt19937_64 rng(1);
  std::normal_distribution<double> jitter(0.0, 0.02);
  for (int i = 0; i < 9; ++i) {
    fixes.push_back({1.0 + jitter(rng), 2.0 + jitter(rng)});
  }
  fixes.push_back({40.0, 40.0});
  const geom::Vec2 m = geometricMedian(fixes);
  EXPECT_LT(geom::distance(m, {1.0, 2.0}), 0.05);
  // Versus the mean:
  geom::Vec2 mean{};
  for (const geom::Vec2& p : fixes) mean += p;
  mean = mean / static_cast<double>(fixes.size());
  EXPECT_GT(geom::distance(mean, {1.0, 2.0}), 3.0);
}

TEST(GeometricMedian, HandlesEstimateOnDataPoint) {
  // Centroid of this set IS a data point -- the Weiszfeld guard must not
  // divide by zero.
  const std::vector<geom::Vec2> points{
      {0.0, 0.0}, {1.0, 0.0}, {-1.0, 0.0}, {0.0, 1.0}, {0.0, -1.0}};
  const geom::Vec2 m = geometricMedian(points);
  EXPECT_LT(geom::distance(m, {0.0, 0.0}), 1e-4);
}

TEST(GeometricMedian, AllPointsIdentical) {
  const std::vector<geom::Vec3> same(5, geom::Vec3{2.0, 3.0, 1.0});
  const geom::Vec3 m = geometricMedian(same);
  EXPECT_LT(geom::distance(m, {2.0, 3.0, 1.0}), 1e-9);
}

TEST(GeometricMedian, ThreeDRobustness) {
  std::vector<geom::Vec3> fixes;
  std::mt19937_64 rng(2);
  std::normal_distribution<double> jitter(0.0, 0.03);
  for (int i = 0; i < 7; ++i) {
    fixes.push_back({0.5 + jitter(rng), 1.5 + jitter(rng), 0.8 + jitter(rng)});
  }
  fixes.push_back({0.5, 1.5, -0.8});  // mirror-z failure
  const geom::Vec3 m = geometricMedian(fixes);
  EXPECT_LT(geom::distance(m, {0.5, 1.5, 0.8}), 0.1);
}

TEST(ComponentMedian, OddAndEvenCounts) {
  const std::vector<geom::Vec2> odd{{1.0, 5.0}, {2.0, 4.0}, {9.0, 0.0}};
  EXPECT_EQ(componentMedian(odd), (geom::Vec2{2.0, 4.0}));
  const std::vector<geom::Vec2> even{{1.0, 0.0}, {3.0, 2.0}};
  EXPECT_EQ(componentMedian(even), (geom::Vec2{2.0, 1.0}));
}

TEST(ComponentMedian, RobustToOutlier) {
  std::vector<geom::Vec3> fixes(6, geom::Vec3{1.0, 1.0, 1.0});
  fixes.push_back({100.0, -50.0, 7.0});
  const geom::Vec3 m = componentMedian(fixes);
  EXPECT_LT(geom::distance(m, {1.0, 1.0, 1.0}), 1e-9);
}

TEST(GeometricMedian, MinimizesSumOfDistances) {
  // Check against a local perturbation test on a generic configuration.
  const std::vector<geom::Vec2> points{
      {0.0, 0.0}, {2.0, 0.3}, {1.1, 2.2}, {-0.5, 1.0}, {0.7, -0.9}};
  const geom::Vec2 m = geometricMedian(points);
  auto cost = [&](const geom::Vec2& p) {
    double acc = 0.0;
    for (const geom::Vec2& q : points) acc += geom::distance(p, q);
    return acc;
  };
  const double base = cost(m);
  for (const geom::Vec2 d :
       {geom::Vec2{0.01, 0.0}, geom::Vec2{-0.01, 0.0}, geom::Vec2{0.0, 0.01},
        geom::Vec2{0.0, -0.01}}) {
    EXPECT_GE(cost(m + d), base - 1e-9);
  }
}

}  // namespace
}  // namespace tagspin::core
