#include "core/orientation_calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "geom/angles.hpp"
#include "synthetic.hpp"

namespace tagspin::core {
namespace {

using testing::SyntheticConfig;
using testing::makeSnapshots;

RigKinematics centerKinematics() {
  // Tag at the disk center: radius 0, still rotating.
  return {0.0, 0.5, 0.0, geom::kPi / 2.0};
}

/// A synthetic orientation response in the paper's family.
double trueG(double rho) {
  return 0.30 * std::cos(2.0 * rho) + 0.05 * std::cos(rho) +
         0.06 * std::sin(2.0 * rho);
}

SyntheticConfig centerSpinConfig() {
  SyntheticConfig sc;
  sc.count = 1200;
  sc.durationS = 30.0;  // > 2 revolutions
  sc.orientation = trueG;
  return sc;
}

TEST(OrientationModel, FitRecoversSyntheticResponse) {
  const RigKinematics kin = centerKinematics();
  SyntheticConfig sc = centerSpinConfig();
  sc.noiseStd = 0.1;
  const auto snaps = makeSnapshots(sc, kin);
  const OrientationModel model =
      OrientationModel::fit(snaps, kin, sc.readerAzimuth);

  // Compare against trueG referenced at pi/2, on a dense grid.
  const double gRef = trueG(geom::kPi / 2.0);
  for (int i = 0; i < 72; ++i) {
    const double rho = geom::kTwoPi * i / 72.0;
    EXPECT_NEAR(model.offsetAt(rho), trueG(rho) - gRef, 0.04)
        << "rho = " << rho;
  }
  EXPECT_NEAR(model.offsetAt(geom::kPi / 2.0), 0.0, 1e-9);
  EXPECT_NEAR(model.fitResidual(), 0.1, 0.03);
}

TEST(OrientationModel, FitSurvivesOutliers) {
  // 5% uniform interference outliers: the robust two-pass fit must not be
  // dragged (an unwrap-based fit would be destroyed, see the .cpp comment).
  const RigKinematics kin = centerKinematics();
  SyntheticConfig sc = centerSpinConfig();
  sc.noiseStd = 0.1;
  sc.outlierProb = 0.05;
  const auto snaps = makeSnapshots(sc, kin);
  const OrientationModel model =
      OrientationModel::fit(snaps, kin, sc.readerAzimuth);
  const double gRef = trueG(geom::kPi / 2.0);
  for (int i = 0; i < 36; ++i) {
    const double rho = geom::kTwoPi * i / 36.0;
    EXPECT_NEAR(model.offsetAt(rho), trueG(rho) - gRef, 0.08);
  }
}

TEST(OrientationModel, IdentityModel) {
  const OrientationModel identity;
  EXPECT_TRUE(identity.isIdentity());
  EXPECT_DOUBLE_EQ(identity.offsetAt(1.0), 0.0);
}

TEST(OrientationModel, FittedModelIsNotIdentity) {
  const RigKinematics kin = centerKinematics();
  const auto snaps = makeSnapshots(centerSpinConfig(), kin);
  const OrientationModel model = OrientationModel::fit(snaps, kin, 1.0);
  EXPECT_FALSE(model.isIdentity());
}

TEST(OrientationModel, Validation) {
  const RigKinematics kin = centerKinematics();
  SyntheticConfig sc = centerSpinConfig();
  sc.count = 5;
  const auto tooFew = makeSnapshots(sc, kin);
  EXPECT_THROW(OrientationModel::fit(tooFew, kin, 1.0),
               std::invalid_argument);
  sc.count = 100;
  const auto snaps = makeSnapshots(sc, kin);
  EXPECT_THROW(OrientationModel::fit(snaps, kin, 1.0, 0),
               std::invalid_argument);
}

TEST(OrientationAt, MatchesRigGeometry) {
  RigKinematics kin{0.10, 0.5, 0.3, geom::kPi / 2.0};
  // rho = diskAngle + planeOffset - readerAzimuth (mod 2*pi).
  EXPECT_NEAR(orientationAt(kin, 2.0, 1.0),
              geom::wrapTwoPi(0.5 * 2.0 + 0.3 + geom::kPi / 2.0 - 1.0),
              1e-12);
}

TEST(OrientationAtPosition, AccountsForEdgeDisplacement) {
  RigSpec rig;
  rig.center = {0.0, 0.0, 0.0};
  rig.kinematics = {0.10, 0.5, 0.0, geom::kPi / 2.0};
  const geom::Vec3 reader{0.0, 2.0, 0.0};
  // At t=0 the tag sits at (0.1, 0, 0): the tag->reader azimuth differs
  // from the center->reader azimuth by atan(0.1/2).
  const double rhoCenter = orientationAt(rig.kinematics, 0.0,
                                         geom::azimuthOf(rig.center, reader));
  const double rhoExact = orientationAtPosition(rig, 0.0, reader);
  EXPECT_NEAR(geom::circularDistance(rhoCenter, rhoExact),
              std::atan2(0.1, 2.0), 1e-3);
}

TEST(CalibrateOrientation, RemovesInjectedOffset) {
  const RigKinematics kin = testing::defaultKinematics();
  SyntheticConfig sc;
  sc.orientation = trueG;
  sc.count = 600;
  const auto withOrientation = makeSnapshots(sc, kin);
  SyntheticConfig clean = sc;
  clean.orientation = nullptr;
  const auto without = makeSnapshots(clean, kin);

  // Build the "perfect" model from the synthetic truth.
  const RigKinematics center = centerKinematics();
  SyntheticConfig fitCfg = centerSpinConfig();
  const auto fitSnaps = makeSnapshots(fitCfg, center);
  const OrientationModel model =
      OrientationModel::fit(fitSnaps, center, fitCfg.readerAzimuth);

  const auto calibrated =
      calibrateOrientation(withOrientation, kin, model, sc.readerAzimuth);
  ASSERT_EQ(calibrated.size(), without.size());
  // After calibration the phases match the orientation-free truth up to the
  // constant g(pi/2) reference.
  const double constant =
      geom::wrapToPi(calibrated[0].phaseRad - without[0].phaseRad);
  double worst = 0.0;
  for (size_t i = 0; i < calibrated.size(); ++i) {
    const double d = geom::circularDistance(
        calibrated[i].phaseRad, geom::wrapTwoPi(without[i].phaseRad + constant));
    worst = std::max(worst, d);
  }
  EXPECT_LT(worst, 0.08);
}

TEST(CalibrateOrientation, IdentityIsNoOp) {
  const RigKinematics kin = testing::defaultKinematics();
  const auto snaps = makeSnapshots(SyntheticConfig{}, kin);
  const auto out = calibrateOrientation(snaps, kin, OrientationModel{}, 1.0);
  ASSERT_EQ(out.size(), snaps.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].phaseRad, snaps[i].phaseRad);
  }
}

TEST(CalibrateOrientationAtPosition, MatchesAzimuthVariantAtLongRange) {
  // At D >> r the tag-position-based rho converges to the center-based one.
  RigSpec rig;
  rig.center = {0.0, 0.0, 0.0};
  rig.kinematics = testing::defaultKinematics();
  const geom::Vec3 farReader{0.0, 50.0, 0.0};

  const RigKinematics center = centerKinematics();
  const auto fitSnaps = makeSnapshots(centerSpinConfig(), center);
  const OrientationModel model =
      OrientationModel::fit(fitSnaps, center, 1.0);

  SyntheticConfig sc;
  sc.distanceM = 50.0;
  sc.readerAzimuth = geom::kPi / 2.0;
  const auto snaps = makeSnapshots(sc, rig.kinematics);
  const auto a =
      calibrateOrientation(snaps, rig.kinematics, model, geom::kPi / 2.0);
  const auto b = calibrateOrientationAtPosition(snaps, rig, model, farReader);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(geom::circularDistance(a[i].phaseRad, b[i].phaseRad), 0.0,
                2e-3);
  }
}

}  // namespace
}  // namespace tagspin::core
