#include "core/hologram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "geom/angles.hpp"
#include "synthetic.hpp"

namespace tagspin::core {
namespace {

using testing::SyntheticConfig;
using testing::defaultKinematics;
using testing::makeSnapshots;

/// Exact-distance snapshots (the hologram's model), not the far-field
/// approximation of makeSnapshots.
RigObservation exactObservation(const geom::Vec3& center,
                                const geom::Vec2& reader, uint64_t seed,
                                double noise = 0.0) {
  RigObservation obs;
  obs.rig.center = center;
  obs.rig.kinematics = defaultKinematics();
  obs.rig.kinematics.initialAngle = 0.3 * static_cast<double>(seed);
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> n(0.0, noise);
  const double lambda = 0.325;
  for (int i = 0; i < 800; ++i) {
    const double t = 30.0 * i / 800.0;
    const double a = obs.rig.kinematics.diskAngle(t);
    const geom::Vec3 tagPos =
        center + geom::Vec3{0.10 * std::cos(a), 0.10 * std::sin(a), 0.0};
    Snapshot s;
    s.timeS = t;
    s.phaseRad = geom::wrapTwoPi(
        4.0 * geom::kPi / lambda *
            geom::distance(tagPos, {reader.x, reader.y, center.z}) +
        1.1 + (noise > 0.0 ? n(rng) : 0.0));
    s.lambdaM = lambda;
    obs.snapshots.push_back(s);
  }
  return obs;
}

TEST(Hologram, SingleRigRangesAtCloseDistance) {
  // The key capability beyond angle spectra: ONE rig suffices because the
  // wavefront curvature encodes range.
  const geom::Vec2 reader{0.5, 1.2};
  const std::vector<RigObservation> obs{
      exactObservation({0.0, 0.0, 0.0}, reader, 1)};
  const Hologram holo(obs);
  const Fix2D fix = holo.locate();
  EXPECT_LT(geom::distance(fix.position, reader), 0.05);
}

TEST(Hologram, TwoRigsSharpens) {
  const geom::Vec2 reader{0.7, 1.8};
  const std::vector<RigObservation> obs{
      exactObservation({-0.2, 0.0, 0.0}, reader, 1, 0.1),
      exactObservation({0.2, 0.0, 0.0}, reader, 2, 0.1)};
  const Hologram holo(obs);
  const Fix2D fix = holo.locate();
  EXPECT_LT(geom::distance(fix.position, reader), 0.05);
}

TEST(Hologram, IntensityPeaksAtTruth) {
  const geom::Vec2 reader{0.4, 1.5};
  const std::vector<RigObservation> obs{
      exactObservation({0.0, 0.0, 0.0}, reader, 3)};
  const Hologram holo(obs);
  const double atTruth = holo.intensity(reader);
  EXPECT_NEAR(atTruth, 1.0, 1e-6);
  EXPECT_LT(holo.intensity({reader.x + 0.3, reader.y}), atTruth);
  EXPECT_LT(holo.intensity({reader.x, reader.y + 0.5}), atTruth);
}

TEST(Hologram, AdditiveAndMultiplicativeBothLocate) {
  const geom::Vec2 reader{-0.4, 2.0};
  const std::vector<RigObservation> obs{
      exactObservation({-0.2, 0.0, 0.0}, reader, 4, 0.1),
      exactObservation({0.2, 0.0, 0.0}, reader, 5, 0.1)};
  for (const bool multiplicative : {true, false}) {
    HologramConfig config;
    config.multiplicative = multiplicative;
    const Hologram holo(obs, config);
    EXPECT_LT(geom::distance(holo.locate().position, reader), 0.06)
        << "multiplicative=" << multiplicative;
  }
}

TEST(Hologram, SampleImageHasPeakNearTruth) {
  const geom::Vec2 reader{0.0, 1.5};
  const std::vector<RigObservation> obs{
      exactObservation({0.0, 0.0, 0.0}, reader, 6)};
  HologramConfig config;
  config.xMin = -1.0;
  config.xMax = 1.0;
  config.yMin = 0.5;
  config.yMax = 2.5;
  const Hologram holo(obs, config);
  const auto img = holo.sample(21, 21);
  ASSERT_EQ(img.size(), 21u);
  ASSERT_EQ(img[0].size(), 21u);
  double best = -1.0;
  size_t bx = 0, by = 0;
  for (size_t y = 0; y < 21; ++y) {
    for (size_t x = 0; x < 21; ++x) {
      if (img[y][x] > best) {
        best = img[y][x];
        bx = x;
        by = y;
      }
    }
  }
  const double px = -1.0 + 2.0 * static_cast<double>(bx) / 20.0;
  const double py = 0.5 + 2.0 * static_cast<double>(by) / 20.0;
  EXPECT_LT(geom::distance(geom::Vec2{px, py}, reader), 0.25);
}

TEST(Hologram, Validation) {
  EXPECT_THROW(Hologram({}, {}), std::invalid_argument);
  HologramConfig bad;
  bad.xMax = bad.xMin;
  const geom::Vec2 reader{0.0, 1.0};
  const std::vector<RigObservation> obs{
      exactObservation({0.0, 0.0, 0.0}, reader, 1)};
  EXPECT_THROW(Hologram(obs, bad), std::invalid_argument);
}

TEST(Hologram, ChannelGroupsStayCoherent) {
  // Mixed channels with different wavelengths: per-(rig, channel) grouping
  // keeps intensity(truth) ~ 1.
  const geom::Vec2 reader{0.3, 1.4};
  RigObservation obs = exactObservation({0.0, 0.0, 0.0}, reader, 8);
  // Re-tag half the snapshots to a second channel at a different lambda.
  for (size_t i = 0; i < obs.snapshots.size(); i += 2) {
    Snapshot& s = obs.snapshots[i];
    const double a = obs.rig.kinematics.diskAngle(s.timeS);
    const geom::Vec3 tagPos =
        obs.rig.center +
        geom::Vec3{0.10 * std::cos(a), 0.10 * std::sin(a), 0.0};
    s.lambdaM = 0.3243;
    s.channel = 5;
    s.phaseRad = geom::wrapTwoPi(
        4.0 * geom::kPi / s.lambdaM *
            geom::distance(tagPos, {reader.x, reader.y, 0.0}) +
        2.2);
  }
  const std::vector<RigObservation> all{obs};
  const Hologram holo(all);
  EXPECT_NEAR(holo.intensity(reader), 1.0, 1e-6);
}

}  // namespace
}  // namespace tagspin::core
