// The tracking filters and the track manager.
//
// The anchor test is the closed-form equivalence: with the linear
// constant-velocity model the sigma points of the square-root UKF
// propagate exactly linearly, so the UKF must reproduce a textbook dense
// Kalman filter to round-off (1e-9 here), and the EKF reference -- whose
// Jacobian is exact on CV -- must agree with both.  Everything after that
// is the track manager: gating, lifecycle, model selection, verdicts.
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "track/ekf.hpp"
#include "track/kalman.hpp"
#include "track/motion.hpp"
#include "track/tracker.hpp"
#include "track/ukf.hpp"

namespace tagspin::track {
namespace {

// Textbook dense Kalman filter on the CV model -- the ground truth the
// square-root implementations are measured against.
class DenseCvKalman {
 public:
  explicit DenseCvKalman(MotionNoise noise) : noise_(noise), p_(4, 4) {}

  void reset(const std::vector<double>& x0,
             const std::vector<double>& stdDiag) {
    x_ = x0;
    p_ = dsp::Matrix(4, 4);
    for (size_t i = 0; i < 4; ++i) {
      p_(i, i) = std::max(stdDiag[i], 1e-6) * std::max(stdDiag[i], 1e-6);
    }
  }

  void predict(double dt) {
    const dsp::Matrix f = propagateJacobian(
        MotionModelId::kConstantVelocity, x_, dt);
    x_ = propagateState(MotionModelId::kConstantVelocity, x_, dt);
    p_ = matMul(matMul(f, p_), matTranspose(f));
    const dsp::Matrix q =
        processNoise(MotionModelId::kConstantVelocity, noise_, dt);
    for (size_t i = 0; i < 4; ++i) {
      for (size_t j = 0; j < 4; ++j) p_(i, j) += q(i, j);
    }
  }

  double update(const geom::Vec2& z, const Cov2& r) {
    const double sxx = p_(0, 0) + r.xx;
    const double sxy = p_(0, 1) + r.xy;
    const double syy = p_(1, 1) + r.yy;
    const double det = sxx * syy - sxy * sxy;
    const double i00 = syy / det, i01 = -sxy / det, i11 = sxx / det;
    const double nx = z.x - x_[0], ny = z.y - x_[1];
    const double nis = i00 * nx * nx + 2.0 * i01 * nx * ny + i11 * ny * ny;
    dsp::Matrix k(4, 2);
    for (size_t i = 0; i < 4; ++i) {
      k(i, 0) = p_(i, 0) * i00 + p_(i, 1) * i01;
      k(i, 1) = p_(i, 0) * i01 + p_(i, 1) * i11;
    }
    for (size_t i = 0; i < 4; ++i) x_[i] += k(i, 0) * nx + k(i, 1) * ny;
    dsp::Matrix ikh(4, 4);
    for (size_t i = 0; i < 4; ++i) ikh(i, i) = 1.0;
    for (size_t i = 0; i < 4; ++i) {
      ikh(i, 0) -= k(i, 0);
      ikh(i, 1) -= k(i, 1);
    }
    dsp::Matrix p1 = matMul(matMul(ikh, p_), matTranspose(ikh));
    for (size_t i = 0; i < 4; ++i) {
      for (size_t j = 0; j < 4; ++j) {
        p1(i, j) += k(i, 0) * (r.xx * k(j, 0) + r.xy * k(j, 1)) +
                    k(i, 1) * (r.xy * k(j, 0) + r.yy * k(j, 1));
      }
    }
    p_ = std::move(p1);
    return nis;
  }

  const std::vector<double>& state() const { return x_; }
  const dsp::Matrix& covariance() const { return p_; }

 private:
  MotionNoise noise_;
  std::vector<double> x_;
  dsp::Matrix p_;
};

std::vector<TrackMeasurement> straightRun(int count, double dt,
                                          double noiseStd, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> n(0.0, noiseStd);
  std::vector<TrackMeasurement> out;
  for (int i = 0; i < count; ++i) {
    TrackMeasurement m;
    m.timeS = dt * (i + 1);
    m.position = {0.1 * m.timeS + n(rng), 1.5 + 0.05 * m.timeS + n(rng)};
    m.covariance = Cov2::isotropic(noiseStd);
    out.push_back(m);
  }
  return out;
}

TEST(TrackFilters, UkfReducesToClosedFormKalmanOnLinearCv) {
  MotionNoise noise;
  noise.accelStd = 0.2;
  SquareRootUkf ukf(MotionModelId::kConstantVelocity, noise);
  DenseCvKalman kf(noise);
  const std::vector<double> x0 = {0.3, 1.2, 0.15, -0.05};
  const std::vector<double> s0 = {0.4, 0.4, 0.6, 0.6};
  ukf.reset(x0, s0);
  kf.reset(x0, s0);

  std::mt19937_64 rng(77);
  std::normal_distribution<double> n(0.0, 0.05);
  for (int i = 0; i < 40; ++i) {
    ukf.predict(0.5);
    kf.predict(0.5);
    Cov2 r = Cov2::isotropic(0.06);
    r.xy = 0.001;  // correlated R to cover the cross term
    const double t = 0.5 * (i + 1);
    const geom::Vec2 z{0.3 + 0.15 * t + n(rng), 1.2 - 0.05 * t + n(rng)};
    const double nisU = ukf.update(z, r);
    const double nisK = kf.update(z, r);
    EXPECT_NEAR(nisU, nisK, 1e-9) << "step " << i;
  }
  const dsp::Matrix pu = ukf.covariance();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(ukf.state()[i], kf.state()[i], 1e-9) << i;
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(pu(i, j), kf.covariance()(i, j), 1e-9)
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(TrackFilters, EkfMatchesUkfOnLinearCv) {
  MotionNoise noise;
  noise.accelStd = 0.3;
  SquareRootUkf ukf(MotionModelId::kConstantVelocity, noise);
  Ekf ekf(MotionModelId::kConstantVelocity, noise);
  const std::vector<double> x0 = {-0.5, 2.0, 0.0, 0.1};
  const std::vector<double> s0 = {0.3, 0.3, 0.5, 0.5};
  ukf.reset(x0, s0);
  ekf.reset(x0, s0);
  for (const TrackMeasurement& m : straightRun(30, 1.0, 0.08, 12345)) {
    ukf.predict(1.0);
    ekf.predict(1.0);
    EXPECT_NEAR(ukf.update(m.position, m.covariance),
                ekf.update(m.position, m.covariance), 1e-9);
  }
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(ukf.state()[i], ekf.state()[i], 1e-9) << i;
  }
}

TEST(TrackFilters, ProcessNoiseScaleWidensPrediction) {
  MotionNoise noise;
  SquareRootUkf plain(MotionModelId::kConstantVelocity, noise);
  SquareRootUkf scaled(MotionModelId::kConstantVelocity, noise);
  const std::vector<double> x0 = {0.0, 0.0, 0.1, 0.0};
  const std::vector<double> s0 = {0.2, 0.2, 0.3, 0.3};
  plain.reset(x0, s0);
  scaled.reset(x0, s0);
  scaled.setProcessNoiseScale(9.0);
  plain.predict(1.0);
  scaled.predict(1.0);
  EXPECT_GT(scaled.positionCovariance().trace(),
            plain.positionCovariance().trace());
  // Scale 1 restores the configured noise exactly.
  scaled.setProcessNoiseScale(1.0);
  SquareRootUkf fresh(MotionModelId::kConstantVelocity, noise);
  fresh.reset(x0, s0);
  fresh.predict(1.0);
  scaled.reset(x0, s0);
  scaled.predict(1.0);
  EXPECT_NEAR(scaled.positionCovariance().trace(),
              fresh.positionCovariance().trace(), 1e-12);
}

TEST(TrackFilters, CoordinatedTurnTracksCircle) {
  // A constant-rate turn: the CT model should follow with small error.
  MotionNoise noise;
  noise.accelStd = 0.05;
  noise.turnRateStd = 0.02;
  SquareRootUkf ukf(MotionModelId::kCoordinatedTurn, noise);
  const double radius = 2.0, speed = 0.5, omega = speed / radius;
  ukf.reset({radius, 0.0, 0.0, speed, 0.0}, {0.3, 0.3, 0.3, 0.3, 0.2});
  double maxErr = 0.0;
  for (int i = 1; i <= 60; ++i) {
    const double t = 0.5 * i;
    ukf.predict(0.5);
    const geom::Vec2 truth{radius * std::cos(omega * t),
                           radius * std::sin(omega * t)};
    ukf.update(truth, Cov2::isotropic(0.02));
    if (i > 10) {
      const double err = std::hypot(ukf.position().x - truth.x,
                                    ukf.position().y - truth.y);
      maxErr = std::max(maxErr, err);
    }
  }
  EXPECT_LT(maxErr, 0.05);
  // The turn-rate state converged to the true omega.
  EXPECT_NEAR(ukf.state()[4], omega, 0.05);
}

TrackerConfig quietConfig() {
  TrackerConfig c;
  c.noise.accelStd = 0.1;
  c.noise.turnRateStd = 0.05;
  c.rCalibrationRate = 0.0;  // isolate the mechanism under test
  c.adaptiveQMax = 1.0;
  return c;
}

TEST(Tracker, LifecycleTentativeConfirmedCoastDrop) {
  TrackerConfig cfg = quietConfig();
  cfg.confirmHits = 3;
  cfg.maxCoastS = 5.0;
  Tracker tracker(cfg);
  EXPECT_EQ(tracker.state(), TrackState::kDropped);

  const auto run = straightRun(3, 1.0, 0.03, 9);
  tracker.onMeasurement(run[0]);
  EXPECT_EQ(tracker.state(), TrackState::kTentative);
  tracker.onMeasurement(run[1]);
  EXPECT_EQ(tracker.state(), TrackState::kTentative);
  tracker.onMeasurement(run[2]);
  EXPECT_EQ(tracker.state(), TrackState::kConfirmed);

  // Gaps: coast, then drop past the budget.
  tracker.onGap(4.0);
  EXPECT_EQ(tracker.state(), TrackState::kCoasting);
  tracker.onGap(7.0);
  EXPECT_EQ(tracker.state(), TrackState::kCoasting);
  tracker.onGap(9.0);  // 6 s since the last accepted fix > maxCoastS
  EXPECT_EQ(tracker.state(), TrackState::kDropped);
  EXPECT_EQ(tracker.stats().drops, 1u);

  // The next fix re-initializes.
  TrackMeasurement again;
  again.timeS = 10.0;
  again.position = {5.0, 5.0};
  again.covariance = Cov2::isotropic(0.05);
  tracker.onMeasurement(again);
  EXPECT_EQ(tracker.state(), TrackState::kTentative);
  EXPECT_EQ(tracker.stats().reinits, 1u);
}

TEST(Tracker, MahalanobisGateRejectsGhostFix) {
  TrackerConfig cfg = quietConfig();
  Tracker tracker(cfg);
  for (const TrackMeasurement& m : straightRun(8, 1.0, 0.02, 21)) {
    tracker.onMeasurement(m);
  }
  ASSERT_EQ(tracker.state(), TrackState::kConfirmed);
  const geom::Vec2 before = tracker.lastEstimate().position;

  TrackMeasurement ghost;
  ghost.timeS = 9.0;
  ghost.position = {before.x + 3.0, before.y - 2.5};  // far off-track
  ghost.covariance = Cov2::isotropic(0.02);
  const TrackEstimate est = tracker.onMeasurement(ghost);
  EXPECT_EQ(tracker.stats().gateRejects, 1u);
  EXPECT_FALSE(est.usedMeasurement);
  // The rejected ghost did not drag the track.
  EXPECT_LT(std::hypot(est.position.x - before.x, est.position.y - before.y),
            0.5);
}

TEST(Tracker, QuarantineVerdictRejectedSuspectInflated) {
  TrackerConfig cfg = quietConfig();
  Tracker tracker(cfg);
  const auto run = straightRun(10, 1.0, 0.02, 5);
  for (int i = 0; i < 8; ++i) tracker.onMeasurement(run[i]);
  ASSERT_EQ(tracker.state(), TrackState::kConfirmed);

  TrackMeasurement quarantined = run[8];
  quarantined.verdict = MeasurementVerdict::kQuarantine;
  const TrackEstimate est = tracker.onMeasurement(quarantined);
  EXPECT_FALSE(est.usedMeasurement);
  EXPECT_EQ(tracker.stats().verdictRejects, 1u);

  // A suspect fix is applied, but with inflated R -- it moves the state
  // less than the same fix accepted cleanly would.
  Tracker a(cfg), b(cfg);
  for (int i = 0; i < 8; ++i) {
    a.onMeasurement(run[i]);
    b.onMeasurement(run[i]);
  }
  TrackMeasurement off = run[8];
  off.position.x += 0.25;
  off.position.y -= 0.25;
  off.covariance = Cov2::isotropic(0.15);  // wide enough to pass the gate
  TrackMeasurement offSuspect = off;
  offSuspect.verdict = MeasurementVerdict::kSuspect;
  const TrackEstimate cleanEst = a.onMeasurement(off);
  const TrackEstimate suspectEst = b.onMeasurement(offSuspect);
  ASSERT_TRUE(cleanEst.usedMeasurement);
  ASSERT_TRUE(suspectEst.usedMeasurement);
  const geom::Vec2 prior = tracker.lastEstimate().position;
  const double cleanMove =
      std::hypot(cleanEst.position.x - prior.x, cleanEst.position.y - prior.y);
  const double suspectMove = std::hypot(suspectEst.position.x - prior.x,
                                        suspectEst.position.y - prior.y);
  EXPECT_LT(suspectMove, cleanMove);
}

TEST(Tracker, WindowedNisHandsTurnToCtModel) {
  TrackerConfig cfg = quietConfig();
  cfg.noise.accelStd = 0.05;
  cfg.nisWindow = 4;
  cfg.modelSwitchMargin = 1.2;
  Tracker tracker(cfg);

  // Long straight lead-in, then a sustained tight turn.
  double t = 0.0;
  for (int i = 0; i < 12; ++i) {
    t += 1.0;
    TrackMeasurement m;
    m.timeS = t;
    m.position = {0.2 * t, 0.0};
    m.covariance = Cov2::isotropic(0.02);
    tracker.onMeasurement(m);
  }
  EXPECT_EQ(tracker.activeModel(), MotionModelId::kConstantVelocity);
  const double x0 = 0.2 * t;
  const double radius = 0.8, speed = 0.2, omega = speed / radius;
  for (int i = 1; i <= 25; ++i) {
    t += 1.0;
    TrackMeasurement m;
    m.timeS = t;
    const double a = omega * i;
    m.position = {x0 + radius * std::sin(a), radius * (1.0 - std::cos(a))};
    m.covariance = Cov2::isotropic(0.02);
    tracker.onMeasurement(m);
  }
  EXPECT_EQ(tracker.activeModel(), MotionModelId::kCoordinatedTurn);
  EXPECT_GE(tracker.stats().modelSwitches, 1u);
}

TEST(Tracker, SeedFromRestoresConfirmedTrack) {
  Tracker tracker(quietConfig());
  tracker.seedFrom(3.0, {1.0, 2.0}, {0.1, 0.0});
  EXPECT_EQ(tracker.state(), TrackState::kConfirmed);
  EXPECT_TRUE(tracker.hasEstimate());
  EXPECT_NEAR(tracker.lastEstimate().position.x, 1.0, 1e-12);
  EXPECT_NEAR(tracker.lastEstimate().velocity.x, 0.1, 1e-12);

  // The seeded track accepts the continuation fix stream.
  TrackMeasurement m;
  m.timeS = 4.0;
  m.position = {1.1, 2.0};
  m.covariance = Cov2::isotropic(0.05);
  const TrackEstimate est = tracker.onMeasurement(m);
  EXPECT_TRUE(est.usedMeasurement);
  EXPECT_EQ(tracker.state(), TrackState::kConfirmed);
}

TEST(Tracker, RCalibrationShrinksOverdispersedR) {
  // Feed fixes whose reported R is 4x wider than the actual scatter; the
  // innovation calibration should shrink the applied R, visible as a
  // tighter posterior than an uncalibrated tracker's.
  TrackerConfig cal = quietConfig();
  cal.rCalibrationRate = 0.15;
  cal.rCalibrationTargetNis = 2.0;
  TrackerConfig uncal = cal;
  uncal.rCalibrationRate = 0.0;
  Tracker a(cal), b(uncal);
  std::mt19937_64 rng(31);
  std::normal_distribution<double> n(0.0, 0.02);
  for (int i = 1; i <= 60; ++i) {
    TrackMeasurement m;
    m.timeS = i * 1.0;
    m.position = {0.05 * m.timeS + n(rng), n(rng)};
    m.covariance = Cov2::isotropic(0.08);  // reported 4x the true std
    a.onMeasurement(m);
    b.onMeasurement(m);
  }
  EXPECT_LT(a.lastEstimate().covariance.trace(),
            b.lastEstimate().covariance.trace());
  // Both trackers accepted everything -- calibration must not trip the
  // gate (it gates on the as-reported R).
  EXPECT_EQ(a.stats().gateRejects, 0u);
  EXPECT_EQ(b.stats().gateRejects, 0u);
}

TEST(Tracker, ResetForgetsCalibrationState) {
  TrackerConfig cfg = quietConfig();
  cfg.rCalibrationRate = 0.2;
  Tracker tracker(cfg);
  std::mt19937_64 rng(8);
  std::normal_distribution<double> n(0.0, 0.01);
  for (int i = 1; i <= 30; ++i) {
    TrackMeasurement m;
    m.timeS = i;
    m.position = {n(rng), n(rng)};
    m.covariance = Cov2::isotropic(0.1);
    tracker.onMeasurement(m);
  }
  tracker.reset();
  EXPECT_EQ(tracker.state(), TrackState::kDropped);
  EXPECT_FALSE(tracker.hasEstimate());

  // After reset the tracker behaves exactly like a fresh one.
  Tracker fresh(cfg);
  const auto run = straightRun(5, 1.0, 0.02, 55);
  for (const TrackMeasurement& m : run) {
    const TrackEstimate ea = tracker.onMeasurement(m);
    const TrackEstimate eb = fresh.onMeasurement(m);
    EXPECT_NEAR(ea.position.x, eb.position.x, 1e-12);
    EXPECT_NEAR(ea.position.y, eb.position.y, 1e-12);
    EXPECT_EQ(ea.state, eb.state);
  }
}

TEST(TrackerHistory, BoundedByTheConfiguredLimit) {
  TrackerConfig cfg;
  cfg.historyLimit = 8;
  Tracker tracker(cfg);
  for (const TrackMeasurement& m : straightRun(40, 1.0, 0.02, 77)) {
    tracker.onMeasurement(m);
  }
  EXPECT_EQ(tracker.history().size(), 8u);
  EXPECT_GT(tracker.stats().historyEvicted, 0u);
  EXPECT_EQ(tracker.stats().historyRefused, 0u);
  EXPECT_EQ(tracker.memoryBytes(), 8u * sizeof(TrackEstimate));
  // Newest at the back: timestamps strictly increase through the window.
  for (size_t i = 1; i < tracker.history().size(); ++i) {
    EXPECT_GT(tracker.history()[i].timeS, tracker.history()[i - 1].timeS);
  }
}

TEST(TrackerHistory, ArenaPressureShedsOldestBeforeRefusing) {
  core::MemArena arena(nullptr, 4 * sizeof(TrackEstimate), "track.test");
  TrackerConfig cfg;
  cfg.historyLimit = 64;  // the arena, not the limit, is the binding bound
  cfg.historyArena = &arena;
  {
    Tracker tracker(cfg);
    for (const TrackMeasurement& m : straightRun(30, 1.0, 0.02, 78)) {
      tracker.onMeasurement(m);
    }
    EXPECT_LE(tracker.history().size(), 4u);
    EXPECT_GT(tracker.stats().historyEvicted, 0u);
    EXPECT_EQ(tracker.stats().historyRefused, 0u);  // eviction always frees
    EXPECT_EQ(arena.usedBytes(),
              tracker.history().size() * sizeof(TrackEstimate));
  }
  // Teardown returns every accounted byte.
  EXPECT_EQ(arena.usedBytes(), 0u);
}

TEST(TrackerHistory, AnchorSurvivesTotalHistoryStarvation) {
  // An arena too small for even one entry: every record is refused, yet
  // the pinned anchor still tracks the last measurement-backed estimate
  // and the filter itself is untouched.
  core::MemArena arena(nullptr, 1, "track.starved");
  TrackerConfig cfg;
  cfg.historyArena = &arena;
  Tracker tracker(cfg);
  const auto run = straightRun(20, 1.0, 0.02, 79);
  for (const TrackMeasurement& m : run) tracker.onMeasurement(m);

  EXPECT_TRUE(tracker.history().empty());
  EXPECT_GT(tracker.stats().historyRefused, 0u);
  EXPECT_GT(tracker.stats().accepted, 0u);  // the track itself kept going
  ASSERT_TRUE(tracker.hasAnchor());
  EXPECT_TRUE(tracker.anchor().usedMeasurement);
  EXPECT_DOUBLE_EQ(tracker.anchor().timeS, run.back().timeS);
  EXPECT_EQ(tracker.memoryBytes(), 0u);
}

TEST(TrackerHistory, CoastingKeepsTheMeasurementBackedAnchor) {
  TrackerConfig cfg;
  cfg.historyLimit = 4;
  Tracker tracker(cfg);
  const auto run = straightRun(10, 1.0, 0.02, 80);
  for (const TrackMeasurement& m : run) tracker.onMeasurement(m);
  const double lastFixS = run.back().timeS;

  // A string of gaps: coasting estimates fill (and evict) the history,
  // but the anchor stays at the last fix.
  for (int i = 1; i <= 8; ++i) tracker.onGap(lastFixS + i);
  ASSERT_TRUE(tracker.hasAnchor());
  EXPECT_DOUBLE_EQ(tracker.anchor().timeS, lastFixS);
  EXPECT_TRUE(tracker.anchor().usedMeasurement);
  EXPECT_FALSE(tracker.history().back().usedMeasurement);  // coasts recorded
}

TEST(Tracker, DeterministicAcrossRuns) {
  const auto run = straightRun(20, 1.0, 0.05, 4242);
  TrackerConfig cfg;  // full default config, every mechanism live
  Tracker a(cfg), b(cfg);
  for (const TrackMeasurement& m : run) {
    const TrackEstimate ea = a.onMeasurement(m);
    const TrackEstimate eb = b.onMeasurement(m);
    EXPECT_EQ(ea.position.x, eb.position.x);
    EXPECT_EQ(ea.position.y, eb.position.y);
    EXPECT_EQ(ea.nis, eb.nis);
  }
}

}  // namespace
}  // namespace tagspin::track
