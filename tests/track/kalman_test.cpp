// Dense kernels under the square-root filter layer: Cholesky, the QR
// triangular factor, hyperbolic rank-1 updates, the chi-square inverse
// CDF, and the ellipse -> covariance conversion that feeds R_k.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "track/kalman.hpp"
#include "track/measurement.hpp"

namespace tagspin::track {
namespace {

dsp::Matrix spd3() {
  // A = B * B^T + I for a fixed B: guaranteed SPD, non-trivial structure.
  dsp::Matrix b(3, 3);
  b(0, 0) = 1.0; b(0, 1) = 0.5; b(0, 2) = -0.25;
  b(1, 0) = -0.75; b(1, 1) = 2.0; b(1, 2) = 0.125;
  b(2, 0) = 0.3; b(2, 1) = -1.1; b(2, 2) = 0.8;
  dsp::Matrix a = matMul(b, matTranspose(b));
  for (size_t i = 0; i < 3; ++i) a(i, i) += 1.0;
  return a;
}

void expectNear(const dsp::Matrix& a, const dsp::Matrix& b, double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a(i, j), b(i, j), tol) << "(" << i << "," << j << ")";
    }
  }
}

TEST(TrackKalman, CholeskyReconstructs) {
  const dsp::Matrix a = spd3();
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  expectNear(matMul(*l, matTranspose(*l)), a, 1e-12);
  // Lower-triangular: zero above the diagonal.
  EXPECT_EQ((*l)(0, 1), 0.0);
  EXPECT_EQ((*l)(0, 2), 0.0);
  EXPECT_EQ((*l)(1, 2), 0.0);
}

TEST(TrackKalman, CholeskyRejectsIndefinite) {
  dsp::Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = a(1, 0) = 2.0;  // eigenvalues 3 and -1
  a(1, 1) = 1.0;
  EXPECT_FALSE(cholesky(a).has_value());
}

TEST(TrackKalman, TriangularSolvesInvertTheFactor) {
  const auto l = cholesky(spd3());
  ASSERT_TRUE(l.has_value());
  const std::vector<double> b = {1.0, -2.0, 0.5};
  const std::vector<double> x = solveLowerTriangular(*l, b);
  const std::vector<double> back = matVec(*l, x);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], b[i], 1e-12);

  const std::vector<double> y = solveLowerTransposed(*l, b);
  const std::vector<double> back2 = matVec(matTranspose(*l), y);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(back2[i], b[i], 1e-12);
}

TEST(TrackKalman, QrFactorLowerMatchesCholesky) {
  // For a wide deviation matrix M, the QR triangular factor S must satisfy
  // S S^T = M M^T -- same Gram matrix as the Cholesky of M M^T.
  dsp::Matrix m(3, 7);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 7; ++j) {
      m(i, j) = std::sin(1.0 + double(i) * 2.0 + double(j) * 0.7) +
                (i == j ? 2.0 : 0.0);
    }
  }
  const dsp::Matrix s = qrFactorLower(m);
  ASSERT_EQ(s.rows(), 3u);
  ASSERT_EQ(s.cols(), 3u);
  EXPECT_EQ(s(0, 1), 0.0);
  EXPECT_GE(s(0, 0), 0.0);
  expectNear(matMul(s, matTranspose(s)), matMul(m, matTranspose(m)), 1e-10);
}

TEST(TrackKalman, CholUpdateThenDowndateRoundTrips) {
  const dsp::Matrix a = spd3();
  auto s = cholesky(a);
  ASSERT_TRUE(s.has_value());
  const dsp::Matrix before = *s;
  const std::vector<double> u = {0.4, -0.2, 0.9};

  cholUpdate(*s, u);
  dsp::Matrix p = matMul(*s, matTranspose(*s));
  dsp::Matrix expect = a;
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) expect(i, j) += u[i] * u[j];
  }
  expectNear(p, expect, 1e-10);

  ASSERT_TRUE(cholDowndate(*s, u));
  expectNear(matMul(*s, matTranspose(*s)), a, 1e-9);
  expectNear(*s, before, 1e-9);
}

TEST(TrackKalman, CholDowndateReportsIndefinite) {
  dsp::Matrix s(2, 2);
  s(0, 0) = 1.0;
  s(1, 0) = 0.0;
  s(1, 1) = 1.0;  // P = I
  // Subtracting u u^T with |u| > 1 along an axis leaves P indefinite.
  EXPECT_FALSE(cholDowndate(s, {1.5, 0.0}));
}

TEST(TrackKalman, QuadFormInvSqrtMatchesExplicitInverse) {
  dsp::Matrix p(2, 2);
  p(0, 0) = 0.09;
  p(0, 1) = p(1, 0) = 0.02;
  p(1, 1) = 0.25;
  const auto s = cholesky(p);
  ASSERT_TRUE(s.has_value());
  const std::vector<double> v = {0.3, -0.4};
  const double det = p(0, 0) * p(1, 1) - p(0, 1) * p(1, 0);
  const double direct = (p(1, 1) * v[0] * v[0] - 2.0 * p(0, 1) * v[0] * v[1] +
                         p(0, 0) * v[1] * v[1]) /
                        det;
  EXPECT_NEAR(quadFormInvSqrt(*s, v), direct, 1e-12);
}

TEST(TrackKalman, ChiSquareInv2ClosedForm) {
  EXPECT_NEAR(chiSquareInv2(0.99), 9.21034037197618, 1e-12);
  EXPECT_NEAR(chiSquareInv2(0.90), 4.605170185988091, 1e-12);
  // p = 1 - e^-1 inverts to exactly 2.
  EXPECT_NEAR(chiSquareInv2(1.0 - std::exp(-1.0)), 2.0, 1e-12);
}

TEST(TrackMeasurement, EllipseToCovarianceDescalesCoverage) {
  robust::ConfidenceEllipse e;
  e.semiMajorM = 0.30;
  e.semiMinorM = 0.10;
  e.orientationRad = 0.0;
  e.confidenceLevel = 0.90;
  const Cov2 r = ellipseToCovariance(e);
  const double k2 = chiSquareInv2(0.90);
  EXPECT_NEAR(r.xx, 0.30 * 0.30 / k2, 1e-12);
  EXPECT_NEAR(r.yy, 0.10 * 0.10 / k2, 1e-12);
  EXPECT_NEAR(r.xy, 0.0, 1e-12);
  EXPECT_TRUE(r.isPositiveDefinite());
}

TEST(TrackMeasurement, EllipseToCovarianceRotates) {
  robust::ConfidenceEllipse e;
  e.semiMajorM = 0.30;
  e.semiMinorM = 0.10;
  e.orientationRad = 1.1;
  e.confidenceLevel = 0.90;
  const Cov2 r = ellipseToCovariance(e);
  EXPECT_TRUE(r.isPositiveDefinite());
  // Rotation preserves the eigenvalues (trace and determinant).
  const double k2 = chiSquareInv2(0.90);
  EXPECT_NEAR(r.trace(), (0.09 + 0.01) / k2, 1e-12);
  EXPECT_NEAR(r.det(), 0.09 * 0.01 / (k2 * k2), 1e-12);
  EXPECT_NE(r.xy, 0.0);
}

TEST(TrackMeasurement, DegenerateEllipseIsFlooredPsd) {
  // Collapsed minor axis (near-parallel rays): R must still be usable.
  robust::ConfidenceEllipse e;
  e.semiMajorM = 0.5;
  e.semiMinorM = 0.0;
  e.orientationRad = 0.7;
  e.confidenceLevel = 0.90;
  const Cov2 r = ellipseToCovariance(e, 0.01);
  EXPECT_TRUE(r.isPositiveDefinite());
  EXPECT_GE(r.minEigen(), 0.5 * 0.01 * 0.01);
}

TEST(TrackMeasurement, NearSingularAspectRatioStaysPsd) {
  robust::ConfidenceEllipse e;
  e.semiMajorM = 10.0;
  e.semiMinorM = 1e-9;
  e.orientationRad = -2.3;
  e.confidenceLevel = 0.99;
  const Cov2 r = ellipseToCovariance(e, 0.01);
  EXPECT_TRUE(r.isPositiveDefinite());
}

TEST(TrackMeasurement, NanEllipseFallsBackIsotropic) {
  robust::ConfidenceEllipse e;
  e.semiMajorM = std::numeric_limits<double>::quiet_NaN();
  e.semiMinorM = 0.1;
  e.confidenceLevel = 0.90;
  const Cov2 r = ellipseToCovariance(e, 0.01, 0.08);
  EXPECT_NEAR(r.xx, 0.08 * 0.08, 1e-15);
  EXPECT_NEAR(r.yy, 0.08 * 0.08, 1e-15);
  EXPECT_EQ(r.xy, 0.0);

  robust::ConfidenceEllipse inf;
  inf.semiMajorM = std::numeric_limits<double>::infinity();
  inf.semiMinorM = 0.1;
  inf.confidenceLevel = 0.90;
  EXPECT_TRUE(ellipseToCovariance(inf).isPositiveDefinite());
}

TEST(TrackMeasurement, BogusConfidenceLevelDefaultsTo90) {
  robust::ConfidenceEllipse e;
  e.semiMajorM = 0.2;
  e.semiMinorM = 0.2;
  e.orientationRad = 0.0;
  e.confidenceLevel = 0.0;  // never set
  const Cov2 r = ellipseToCovariance(e);
  EXPECT_NEAR(r.xx, 0.04 / chiSquareInv2(0.90), 1e-12);
}

}  // namespace
}  // namespace tagspin::track
