#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <random>

#include "geom/angles.hpp"

namespace tagspin::sim {
namespace {

TEST(Scenario, TwoRigWorldLayout) {
  ScenarioConfig sc;
  sc.centerSpacingM = 0.4;
  const World w = makeTwoRigWorld(sc);
  ASSERT_EQ(w.rigs.size(), 2u);
  EXPECT_NEAR(w.rigs[0].rig.center.x, -0.2, 1e-12);
  EXPECT_NEAR(w.rigs[1].rig.center.x, 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(w.rigs[0].rig.center.y, 0.0);
  EXPECT_DOUBLE_EQ(w.rigs[0].rig.radiusM, sc.rigRadiusM);
  EXPECT_NE(w.rigs[0].tag.epc, w.rigs[1].tag.epc);
  EXPECT_NO_THROW(w.validate());
}

TEST(Scenario, RigPlaneHeightApplied) {
  ScenarioConfig sc;
  sc.rigPlaneZ = 0.095;
  const World w = makeTwoRigWorld(sc);
  EXPECT_DOUBLE_EQ(w.rigs[0].rig.center.z, 0.095);
  EXPECT_DOUBLE_EQ(w.rigs[1].rig.center.z, 0.095);
}

TEST(Scenario, CenterSpinWorldHasZeroRadius) {
  ScenarioConfig sc;
  const World w = makeCenterSpinWorld(sc);
  ASSERT_EQ(w.rigs.size(), 1u);
  EXPECT_DOUBLE_EQ(w.rigs[0].rig.radiusM, 0.0);
  EXPECT_GT(w.rigs[0].rig.omegaRadPerS, 0.0);
}

TEST(Scenario, FixedChannelOption) {
  ScenarioConfig sc;
  sc.fixedChannel = true;
  const World w = makeTwoRigWorld(sc);
  EXPECT_EQ(w.reader.plan.channelCount(), 1);
  ScenarioConfig hopping;
  const World wh = makeTwoRigWorld(hopping);
  EXPECT_EQ(wh.reader.plan.channelCount(), 16);
}

TEST(Scenario, MultipathToggle) {
  ScenarioConfig with;
  with.multipath = true;
  EXPECT_FALSE(makeTwoRigWorld(with).channel.scatterers().empty());
  ScenarioConfig without;
  without.multipath = false;
  EXPECT_TRUE(makeTwoRigWorld(without).channel.scatterers().empty());
}

TEST(Scenario, SameSeedSameWorld) {
  ScenarioConfig sc;
  sc.seed = 42;
  const World a = makeTwoRigWorld(sc);
  const World b = makeTwoRigWorld(sc);
  EXPECT_DOUBLE_EQ(a.rigs[0].tag.hardwarePhase, b.rigs[0].tag.hardwarePhase);
  ASSERT_EQ(a.channel.scatterers().size(), b.channel.scatterers().size());
  for (size_t i = 0; i < a.channel.scatterers().size(); ++i) {
    EXPECT_EQ(a.channel.scatterers()[i].position,
              b.channel.scatterers()[i].position);
  }
}

TEST(Scenario, PlaceReaderAntennaSetsBoresight) {
  ScenarioConfig sc;
  World w = makeTwoRigWorld(sc);
  placeReaderAntenna(w, 0, {0.0, 2.0, 0.0});
  EXPECT_EQ(w.antennaPosition(0), (geom::Vec3{0.0, 2.0, 0.0}));
  // Boresight points from the antenna toward the rigs (the -y direction).
  EXPECT_NEAR(geom::circularDistance(
                  w.reader.antennas[0].boresightAzimuth, -geom::kPi / 2.0),
              0.0, 0.2);
  EXPECT_THROW(placeReaderAntenna(w, 7, {0, 0, 0}), std::out_of_range);
}

TEST(Scenario, ReferenceGridCoversRegion) {
  ScenarioConfig sc;
  World w = makeTwoRigWorld(sc);
  const Region region{};
  addReferenceGrid(w, region, 0.6, 0.0);
  ASSERT_GT(w.statics.size(), 20u);
  for (const StaticTag& st : w.statics) {
    EXPECT_GE(st.position.x, -region.halfWidthX - 1e-9);
    EXPECT_LE(st.position.x, region.halfWidthX + 1e-9);
    EXPECT_GE(st.position.y, region.yMin - 1e-9);
    EXPECT_LE(st.position.y, region.yMax + 1e-9);
  }
  // Distinct EPCs, distinct from the rig tags.
  for (const StaticTag& st : w.statics) {
    EXPECT_NE(st.tag.epc, w.rigs[0].tag.epc);
    EXPECT_NE(st.tag.epc, w.rigs[1].tag.epc);
  }
}

TEST(Scenario, AddVerticalRig) {
  ScenarioConfig sc;
  World w = makeTwoRigWorld(sc);
  addVerticalRig(w, {0.0, 0.4, 0.0}, sc);
  ASSERT_EQ(w.rigs.size(), 3u);
  EXPECT_EQ(w.rigs[2].rig.plane, SpinningRig::Plane::kVerticalXZ);
  EXPECT_NE(w.rigs[2].tag.epc, w.rigs[0].tag.epc);
}

TEST(Region, SampleWithinBounds) {
  const Region region{};
  std::mt19937_64 rng(1);
  for (int i = 0; i < 200; ++i) {
    const geom::Vec3 p2 = region.sample(rng, false);
    EXPECT_GE(p2.x, -region.halfWidthX);
    EXPECT_LE(p2.x, region.halfWidthX);
    EXPECT_GE(p2.y, region.yMin);
    EXPECT_LE(p2.y, region.yMax);
    EXPECT_DOUBLE_EQ(p2.z, 0.0);

    const geom::Vec3 p3 = region.sample(rng, true);
    EXPECT_GE(p3.z, 0.0);
    EXPECT_LE(p3.z, region.zMax);
  }
}

}  // namespace
}  // namespace tagspin::sim
