// Scripted reader trajectories: arc-length parameterization, fillets,
// looping, and the velocity/turn-rate queries the tracking eval leans on.
#include <cmath>
#include <numbers>
#include <stdexcept>

#include <gtest/gtest.h>

#include "sim/trajectory.hpp"

namespace tagspin::sim {
namespace {

TEST(Trajectory, StraightPathIsExact) {
  const Trajectory traj(straightPath({0.0, 1.0}, {2.0, 1.0}, 0.5));
  EXPECT_NEAR(traj.lengthM(), 2.0, 1e-12);
  EXPECT_NEAR(traj.durationS(), 4.0, 1e-12);

  const geom::Vec2 p = traj.positionAt(1.0);
  EXPECT_NEAR(p.x, 0.5, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
  const geom::Vec2 v = traj.velocityAt(1.0);
  EXPECT_NEAR(v.x, 0.5, 1e-12);
  EXPECT_NEAR(v.y, 0.0, 1e-12);
  EXPECT_NEAR(traj.headingAt(1.0), 0.0, 1e-12);
  EXPECT_NEAR(traj.turnRateAt(1.0), 0.0, 1e-12);
}

TEST(Trajectory, ClampsBeforeStartAndParksAtEnd) {
  const Trajectory traj(straightPath({0.0, 0.0}, {1.0, 0.0}, 0.2));
  const geom::Vec2 before = traj.positionAt(-3.0);
  EXPECT_NEAR(before.x, 0.0, 1e-12);
  // Non-looping: parks at the final waypoint with zero velocity.
  const geom::Vec2 after = traj.positionAt(100.0);
  EXPECT_NEAR(after.x, 1.0, 1e-12);
  const geom::Vec2 v = traj.velocityAt(100.0);
  EXPECT_NEAR(std::hypot(v.x, v.y), 0.0, 1e-12);
}

TEST(Trajectory, VelocityMatchesFiniteDifference) {
  TrajectoryConfig cfg;
  cfg.waypoints = {{0.0, 0.0}, {1.5, 0.0}, {1.5, 1.2}, {0.0, 1.2}};
  cfg.speedMps = 0.3;
  cfg.turnRadiusM = 0.3;
  cfg.loop = true;
  const Trajectory traj(cfg);
  const double h = 1e-6;
  for (double t = 0.1; t < 2.0 * traj.durationS(); t += 0.37) {
    const geom::Vec2 p0 = traj.positionAt(t - h);
    const geom::Vec2 p1 = traj.positionAt(t + h);
    const geom::Vec2 v = traj.velocityAt(t);
    EXPECT_NEAR(v.x, (p1.x - p0.x) / (2.0 * h), 1e-5) << "t=" << t;
    EXPECT_NEAR(v.y, (p1.y - p0.y) / (2.0 * h), 1e-5) << "t=" << t;
    // Constant speed everywhere on the path.
    EXPECT_NEAR(std::hypot(v.x, v.y), cfg.speedMps, 1e-9) << "t=" << t;
  }
}

TEST(Trajectory, FilletReplacesCornerWithArc) {
  TrajectoryConfig cfg;
  cfg.waypoints = {{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}};
  cfg.speedMps = 0.5;
  cfg.turnRadiusM = 0.4;
  const Trajectory traj(cfg);
  // A filleted 90-degree corner is shorter than the sharp polyline: the
  // arc replaces 2 * r of legs with (pi/2) * r of arc.
  const double sharp = 4.0;
  const double expected = sharp - 2.0 * 0.4 + 0.5 * std::numbers::pi * 0.4;
  EXPECT_NEAR(traj.lengthM(), expected, 1e-9);

  // Mid-arc the turn rate is speed / radius, and heading is mid-turn.
  bool sawArc = false;
  for (double t = 0.0; t < traj.durationS(); t += 0.01) {
    const double w = traj.turnRateAt(t);
    if (std::abs(w) > 1e-9) {
      sawArc = true;
      EXPECT_NEAR(std::abs(w), cfg.speedMps / cfg.turnRadiusM, 1e-9);
    }
  }
  EXPECT_TRUE(sawArc);
}

TEST(Trajectory, CornersTooTightForRadiusStillBuild) {
  // Legs of 0.2 m cannot host a 1 m fillet; the builder must shrink the
  // radius instead of producing a degenerate path.
  TrajectoryConfig cfg;
  cfg.waypoints = {{0.0, 0.0}, {0.2, 0.0}, {0.2, 0.2}, {0.0, 0.2}};
  cfg.speedMps = 0.1;
  cfg.turnRadiusM = 1.0;
  cfg.loop = true;
  const Trajectory traj(cfg);
  EXPECT_GT(traj.lengthM(), 0.0);
  for (double t = 0.0; t < 3.0 * traj.durationS(); t += 0.05) {
    const geom::Vec2 p = traj.positionAt(t);
    EXPECT_TRUE(std::isfinite(p.x) && std::isfinite(p.y)) << "t=" << t;
    EXPECT_GE(p.x, -0.25);
    EXPECT_LE(p.x, 0.45);
  }
}

TEST(Trajectory, LoopWrapsSeamlessly) {
  TrajectoryConfig cfg;
  cfg.waypoints = {{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  cfg.speedMps = 0.25;
  cfg.turnRadiusM = 0.2;
  cfg.loop = true;
  const Trajectory traj(cfg);
  const double lap = traj.durationS();
  for (double t = 0.05; t < lap; t += 0.31) {
    const geom::Vec2 a = traj.positionAt(t);
    const geom::Vec2 b = traj.positionAt(t + lap);
    EXPECT_NEAR(a.x, b.x, 1e-9);
    EXPECT_NEAR(a.y, b.y, 1e-9);
  }
  // No teleports across the wrap point.
  const geom::Vec2 justBefore = traj.positionAt(lap - 0.01);
  const geom::Vec2 justAfter = traj.positionAt(lap + 0.01);
  EXPECT_LT(std::hypot(justAfter.x - justBefore.x,
                       justAfter.y - justBefore.y),
            0.02 * cfg.speedMps + 1e-6);
}

TEST(Trajectory, PatrolPathStaysInsideRegion) {
  const Region region;
  const Trajectory traj(Trajectory(patrolPath(region, 0.2, 0.35)));
  for (double t = 0.0; t < 2.0 * traj.durationS(); t += 0.25) {
    const geom::Vec2 p = traj.positionAt(t);
    EXPECT_GE(p.x, -region.halfWidthX);
    EXPECT_LE(p.x, region.halfWidthX);
    EXPECT_GE(p.y, region.yMin);
    EXPECT_LE(p.y, region.yMax);
  }
  // The patrol genuinely exercises both regimes: straight legs and arcs.
  bool sawStraight = false, sawTurn = false;
  for (double t = 0.0; t < traj.durationS(); t += 0.1) {
    if (std::abs(traj.turnRateAt(t)) > 1e-9) {
      sawTurn = true;
    } else {
      sawStraight = true;
    }
  }
  EXPECT_TRUE(sawStraight);
  EXPECT_TRUE(sawTurn);
}

TEST(Trajectory, RequiresTwoWaypoints) {
  TrajectoryConfig cfg;
  cfg.waypoints = {{0.0, 0.0}};
  EXPECT_THROW(Trajectory{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace tagspin::sim
