#include "sim/io_sim.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <string>

#include "core/io_env.hpp"

namespace tagspin::sim {
namespace {

using core::IoStatus;
using core::OpenMode;

std::string bytesAt(const DiskImage& image, const std::string& path) {
  const auto it = image.find(path);
  return it == image.end() ? std::string("<missing>") : it->second;
}

TEST(SimIoEnv, WritesAreVisibleImmediatelyButNotDurable) {
  SimIoEnv env(DiskImage{{"f", "old"}});
  const IoStatus fd = env.open("f", OpenMode::kTruncate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(core::writeAllRetry(env, int(fd.value), "new!", 4).ok());

  // The process sees the new bytes...
  EXPECT_EQ(bytesAt(env.liveImage(), "f"), "new!");
  // ...but a power cut that keeps nothing un-fsynced still has the old file
  // (the truncate and the write were both only in cache).
  EXPECT_EQ(bytesAt(env.crashImage({CrashPersist::Mode::kNone, 0}), "f"),
            "old");
  // A cut that keeps everything has the new one.
  EXPECT_EQ(bytesAt(env.crashImage({CrashPersist::Mode::kAll, 0}), "f"),
            "new!");

  ASSERT_TRUE(env.fsync(int(fd.value)).ok());
  EXPECT_EQ(bytesAt(env.crashImage({CrashPersist::Mode::kNone, 0}), "f"),
            "new!");
}

TEST(SimIoEnv, NewFileNeedsParentDirsyncToSurviveAPowerCut) {
  SimIoEnv env;
  const IoStatus fd = env.open("fresh", OpenMode::kTruncate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(core::writeAllRetry(env, int(fd.value), "data", 4).ok());
  ASSERT_TRUE(env.fsync(int(fd.value)).ok());

  // Data fsynced, but the directory entry is not: the whole file vanishes.
  EXPECT_EQ(env.crashImage({CrashPersist::Mode::kNone, 0}).count("fresh"), 0u);
  // The metadata-journal variant can keep the entry.
  EXPECT_EQ(bytesAt(env.crashImage({CrashPersist::Mode::kMetaOnly, 0}),
                    "fresh"),
            "data");

  ASSERT_TRUE(env.syncDir(".").ok());
  EXPECT_EQ(bytesAt(env.crashImage({CrashPersist::Mode::kNone, 0}), "fresh"),
            "data");
}

TEST(SimIoEnv, RenameIsAtomicallyVisibleButDurableOnlyAfterDirsync) {
  SimIoEnv env(DiskImage{{"f", "old"}});
  const IoStatus fd = env.open("f.tmp", OpenMode::kTruncate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(core::writeAllRetry(env, int(fd.value), "new!", 4).ok());
  ASSERT_TRUE(env.fsync(int(fd.value)).ok());
  ASSERT_TRUE(env.close(int(fd.value)).ok());
  ASSERT_TRUE(env.rename("f.tmp", "f").ok());

  std::string back;
  ASSERT_TRUE(env.readFile("f", back).ok());
  EXPECT_EQ(back, "new!");
  EXPECT_FALSE(env.exists("f.tmp"));

  // Un-dirsynced rename rolls back under a power cut: old file resurrected.
  EXPECT_EQ(bytesAt(env.crashImage({CrashPersist::Mode::kNone, 0}), "f"),
            "old");
  ASSERT_TRUE(env.syncDir(".").ok());
  EXPECT_EQ(bytesAt(env.crashImage({CrashPersist::Mode::kNone, 0}), "f"),
            "new!");
}

TEST(SimIoEnv, FailedFsyncDropsDirtyPagesSoARetryProvesNothing) {
  SimIoEnv env(DiskImage{{"f", "old"}});
  const IoStatus fd = env.open("f", OpenMode::kAppendable);  // op 0
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(env.truncate(int(fd.value), 0).ok());           // op 1
  ASSERT_TRUE(core::writeAllRetry(env, int(fd.value), "new!", 4).ok());  // op 2
  env.setFaults({{3, FaultKind::kEio}});
  EXPECT_EQ(env.fsync(int(fd.value)).err, EIO);               // op 3

  // fsyncgate: the cache now reflects only what actually survived, and a
  // retried fsync "succeeds" without making the lost write durable.
  EXPECT_EQ(bytesAt(env.liveImage(), "f"), "old");
  ASSERT_TRUE(env.fsync(int(fd.value)).ok());
  EXPECT_EQ(bytesAt(env.crashImage({CrashPersist::Mode::kAll, 0}), "f"),
            "old");
  EXPECT_EQ(env.faultsInjected(), 1u);
}

TEST(SimIoEnv, EintrAndShortWritesAreAbsorbedByTheRetryHelpers) {
  SimIoEnv env;
  const IoStatus fd = env.open("f", OpenMode::kTruncate);  // op 0
  ASSERT_TRUE(fd.ok());
  env.setFaults({{1, FaultKind::kEintr}, {2, FaultKind::kShortWrite}});
  // op 1 fails EINTR, op 2 accepts half, op 3 writes the rest.
  ASSERT_TRUE(core::writeAllRetry(env, int(fd.value), "ABCDEF", 6).ok());
  EXPECT_EQ(bytesAt(env.liveImage(), "f"), "ABCDEF");
  EXPECT_EQ(env.faultsInjected(), 2u);
  ASSERT_TRUE(env.fsync(int(fd.value)).ok());
  ASSERT_TRUE(env.syncDir(".").ok());
  EXPECT_EQ(bytesAt(env.crashImage({CrashPersist::Mode::kNone, 0}), "f"),
            "ABCDEF");
}

TEST(SimIoEnv, EnospcSurfacesToTheCaller) {
  SimIoEnv env;
  const IoStatus fd = env.open("f", OpenMode::kTruncate);  // op 0
  ASSERT_TRUE(fd.ok());
  env.setFaults({{1, FaultKind::kEnospc}});
  EXPECT_EQ(env.write(int(fd.value), "x", 1).err, ENOSPC);
}

TEST(SimIoEnv, PowerCutThrowsAndPoisonsEveryLaterCall) {
  SimIoEnv env;
  env.setCrashAtOp(1);
  const IoStatus fd = env.open("f", OpenMode::kTruncate);  // op 0
  ASSERT_TRUE(fd.ok());
  EXPECT_FALSE(env.crashed());
  EXPECT_THROW(env.write(int(fd.value), "x", 1), SimCrash);  // op 1
  EXPECT_TRUE(env.crashed());

  // Destructors unwinding past the cut must get errors, not progress.
  EXPECT_EQ(env.write(int(fd.value), "x", 1).err, EIO);
  EXPECT_EQ(env.fsync(int(fd.value)).err, EIO);
  EXPECT_EQ(env.close(int(fd.value)).err, EIO);
  EXPECT_EQ(env.syncDir(".").err, EIO);
}

TEST(SimIoEnv, CrashImagesAreDeterministicPerSeed) {
  const auto build = [] {
    SimIoEnv env(DiskImage{{"f", "0123456789"}});
    const IoStatus fd = env.open("f", OpenMode::kAppendable);
    env.seekEnd(int(fd.value));
    for (int i = 0; i < 6; ++i) {
      core::writeAllRetry(env, int(fd.value), "chunk", 5);
    }
    return env.crashImage({CrashPersist::Mode::kSubset, 42});
  };
  const DiskImage a = build();
  const DiskImage b = build();
  EXPECT_EQ(a, b);

  SimIoEnv env(DiskImage{{"f", "0123456789"}});
  const IoStatus fd = env.open("f", OpenMode::kAppendable);
  env.seekEnd(int(fd.value));
  for (int i = 0; i < 6; ++i) {
    core::writeAllRetry(env, int(fd.value), "chunk", 5);
  }
  // Every subset image is durable-bytes plus some write-back subset, so the
  // durable prefix must always survive verbatim.
  for (uint64_t seed = 0; seed < 16; ++seed) {
    const std::string bytes =
        bytesAt(env.crashImage({CrashPersist::Mode::kSubset, seed}), "f");
    ASSERT_GE(bytes.size(), 10u);
    EXPECT_EQ(bytes.substr(0, 10), "0123456789") << "seed " << seed;
  }
}

TEST(SimIoEnv, WriteFileDurableIsOldOrNewAtEverySyscallBoundary) {
  // The durable-replace recipe against its own falsifier: power-cut every
  // boundary and demand bit-identical old-or-new under every variant.
  uint64_t boundaries = 0;
  {
    SimIoEnv probe(DiskImage{{"f", "old"}});
    core::writeFileDurable(probe, "f", "new!");
    boundaries = probe.opCount();
  }
  ASSERT_GT(boundaries, 4u);
  for (uint64_t k = 0; k < boundaries; ++k) {
    SimIoEnv env(DiskImage{{"f", "old"}});
    env.setCrashAtOp(int64_t(k));
    try {
      core::writeFileDurable(env, "f", "new!");
      FAIL() << "crash at op " << k << " did not surface";
    } catch (const SimCrash&) {
    }
    for (const CrashPersist::Mode mode :
         {CrashPersist::Mode::kNone, CrashPersist::Mode::kAll,
          CrashPersist::Mode::kMetaOnly, CrashPersist::Mode::kPrefix,
          CrashPersist::Mode::kSubset}) {
      const std::string bytes =
          bytesAt(env.crashImage({mode, 7 * k + 1}), "f");
      EXPECT_TRUE(bytes == "old" || bytes == "new!")
          << "crash at op " << k << ", mode "
          << persistModeName(mode) << ": got \"" << bytes << '"';
    }
  }
}

}  // namespace
}  // namespace tagspin::sim
