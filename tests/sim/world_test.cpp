#include "sim/world.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "geom/angles.hpp"
#include "sim/scenario.hpp"

namespace tagspin::sim {
namespace {

TEST(TagInstance, MakeIsDeterministic) {
  const TagInstance a =
      TagInstance::make(rfid::Epc::forSimulatedTag(1),
                        rfid::TagModelId::kSquig, 77);
  const TagInstance b =
      TagInstance::make(rfid::Epc::forSimulatedTag(1),
                        rfid::TagModelId::kSquig, 77);
  EXPECT_EQ(a.epc, b.epc);
  EXPECT_DOUBLE_EQ(a.hardwarePhase, b.hardwarePhase);
  EXPECT_DOUBLE_EQ(a.orientation.offset(1.0), b.orientation.offset(1.0));
}

TEST(TagInstance, HardwarePhaseInRange) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const TagInstance t = TagInstance::make(
        rfid::Epc::forSimulatedTag(0), rfid::TagModelId::kSquare, seed);
    EXPECT_GE(t.hardwarePhase, 0.0);
    EXPECT_LT(t.hardwarePhase, geom::kTwoPi);
  }
}

TEST(StaticTag, OrientationRho) {
  StaticTag st;
  st.position = {0.0, 0.0, 0.0};
  st.planeAzimuth = geom::kPi / 2.0;
  // Reader along +y: plane points at the reader, rho = 0.
  EXPECT_NEAR(geom::wrapToPi(st.orientationRho({0.0, 2.0, 0.0})), 0.0, 1e-12);
  // Reader along +x: rho = pi/2.
  EXPECT_NEAR(st.orientationRho({2.0, 0.0, 0.0}), geom::kPi / 2.0, 1e-12);
}

TEST(World, TagIndexingRigsThenStatics) {
  ScenarioConfig sc;
  World w = makeTwoRigWorld(sc);
  StaticTag st;
  st.tag = TagInstance::make(rfid::Epc::forSimulatedTag(100),
                             rfid::TagModelId::kSquig, 5);
  st.position = {1.0, 1.0, 0.0};
  w.statics.push_back(st);

  EXPECT_EQ(w.tagCount(), 3);
  EXPECT_EQ(w.tagAt(0).epc, w.rigs[0].tag.epc);
  EXPECT_EQ(w.tagAt(1).epc, w.rigs[1].tag.epc);
  EXPECT_EQ(w.tagAt(2).epc, st.tag.epc);
  EXPECT_THROW(w.tagAt(3), std::out_of_range);
  EXPECT_THROW(w.tagAt(-1), std::out_of_range);
}

TEST(World, TagPositionDispatch) {
  ScenarioConfig sc;
  World w = makeTwoRigWorld(sc);
  StaticTag st;
  st.tag = TagInstance::make(rfid::Epc::forSimulatedTag(100),
                             rfid::TagModelId::kSquig, 5);
  st.position = {1.0, 1.0, 0.3};
  w.statics.push_back(st);

  // Rig tags move; static tags don't.
  EXPECT_NE(w.tagPositionAt(0, 0.0), w.tagPositionAt(0, 1.0));
  EXPECT_EQ(w.tagPositionAt(2, 0.0), st.position);
  EXPECT_EQ(w.tagPositionAt(2, 9.0), st.position);
}

TEST(World, AntennaPositionValidation) {
  ScenarioConfig sc;
  const World w = makeTwoRigWorld(sc);
  EXPECT_NO_THROW(w.antennaPosition(0));
  EXPECT_THROW(w.antennaPosition(1), std::out_of_range);
  EXPECT_THROW(w.antennaPosition(-1), std::out_of_range);
}

TEST(World, ValidateCatchesInconsistencies) {
  ScenarioConfig sc;
  World ok = makeTwoRigWorld(sc);
  EXPECT_NO_THROW(ok.validate());

  World mismatched = ok;
  mismatched.antennaPositions.clear();
  EXPECT_THROW(mismatched.validate(), std::logic_error);

  World empty = ok;
  empty.rigs.clear();
  EXPECT_THROW(empty.validate(), std::logic_error);

  World stopped = ok;
  stopped.rigs[0].rig.omegaRadPerS = 0.0;
  EXPECT_THROW(stopped.validate(), std::logic_error);

  // A stopped disk with the tag at the center is fine (static tag).
  World centerStopped = ok;
  centerStopped.rigs[0].rig.omegaRadPerS = 0.0;
  centerStopped.rigs[0].rig.radiusM = 0.0;
  EXPECT_NO_THROW(centerStopped.validate());
}

}  // namespace
}  // namespace tagspin::sim
