#include "sim/orientation_response.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geom/angles.hpp"

namespace tagspin::sim {
namespace {

TEST(OrientationResponse, IdealHasNoEffect) {
  const OrientationResponse ideal = OrientationResponse::ideal();
  for (double rho = 0.0; rho < geom::kTwoPi; rho += 0.1) {
    EXPECT_DOUBLE_EQ(ideal.offset(rho), 0.0);
  }
  EXPECT_DOUBLE_EQ(ideal.peakToPeak(), 0.0);
}

// Per-model sweep: the per-instance peak-to-peak stays within the model's
// nominal amplitude +-15% jitter band (the paper's "various amplitude...
// but the holistic changing pattern is almost the same").
class ModelSweep : public ::testing::TestWithParam<rfid::TagModelId> {};

TEST_P(ModelSweep, PeakToPeakTracksModelAmplitude) {
  const rfid::TagModel& model = rfid::tagModel(GetParam());
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const OrientationResponse resp =
        OrientationResponse::forTag(model, seed);
    EXPECT_GE(resp.peakToPeak(), model.orientationAmplitude * 0.80);
    EXPECT_LE(resp.peakToPeak(), model.orientationAmplitude * 1.20);
  }
}

TEST_P(ModelSweep, ShapeStableAcrossInstances) {
  // Normalised responses of two instances of the same model correlate
  // strongly (same harmonic structure, only amplitude/phase jitter).
  const rfid::TagModel& model = rfid::tagModel(GetParam());
  const OrientationResponse a = OrientationResponse::forTag(model, 1);
  const OrientationResponse b = OrientationResponse::forTag(model, 2);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int i = 0; i < 360; ++i) {
    const double rho = geom::kTwoPi * i / 360.0;
    dot += a.offset(rho) * b.offset(rho);
    na += a.offset(rho) * a.offset(rho);
    nb += b.offset(rho) * b.offset(rho);
  }
  EXPECT_GT(dot / std::sqrt(na * nb), 0.9);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSweep,
                         ::testing::Values(rfid::TagModelId::kSquig,
                                           rfid::TagModelId::kSquare,
                                           rfid::TagModelId::kSquiglette,
                                           rfid::TagModelId::kTwoByTwo,
                                           rfid::TagModelId::kShort));

TEST(OrientationResponse, DeterministicPerSeed) {
  const rfid::TagModel& model = rfid::tagModel(rfid::TagModelId::kSquig);
  const OrientationResponse a = OrientationResponse::forTag(model, 5);
  const OrientationResponse b = OrientationResponse::forTag(model, 5);
  for (double rho = 0.0; rho < geom::kTwoPi; rho += 0.5) {
    EXPECT_DOUBLE_EQ(a.offset(rho), b.offset(rho));
  }
}

TEST(OrientationResponse, InstancesDiffer) {
  const rfid::TagModel& model = rfid::tagModel(rfid::TagModelId::kSquig);
  const OrientationResponse a = OrientationResponse::forTag(model, 5);
  const OrientationResponse b = OrientationResponse::forTag(model, 6);
  bool anyDifferent = false;
  for (double rho = 0.0; rho < geom::kTwoPi; rho += 0.5) {
    if (std::abs(a.offset(rho) - b.offset(rho)) > 1e-6) anyDifferent = true;
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(OrientationResponse, ZeroMeanByConstruction) {
  // The response has no constant term (constants belong to theta_div).
  const rfid::TagModel& model = rfid::tagModel(rfid::TagModelId::kShort);
  const OrientationResponse resp = OrientationResponse::forTag(model, 3);
  double mean = 0.0;
  const int n = 720;
  for (int i = 0; i < n; ++i) {
    mean += resp.offset(geom::kTwoPi * i / n);
  }
  EXPECT_NEAR(mean / n, 0.0, 1e-9);
}

TEST(OrientationResponse, EvenHarmonicsDominate) {
  // Project onto cos/sin of the first three harmonics: the 2nd harmonic
  // carries most of the energy (pi-rotation near-symmetry of a tag).
  const rfid::TagModel& model = rfid::tagModel(rfid::TagModelId::kSquig);
  const OrientationResponse resp = OrientationResponse::forTag(model, 11);
  double power[4] = {0, 0, 0, 0};
  const int n = 720;
  for (int k = 1; k <= 3; ++k) {
    double c = 0.0, s = 0.0;
    for (int i = 0; i < n; ++i) {
      const double rho = geom::kTwoPi * i / n;
      c += resp.offset(rho) * std::cos(k * rho);
      s += resp.offset(rho) * std::sin(k * rho);
    }
    power[k] = (c * c + s * s);
  }
  EXPECT_GT(power[2], power[1]);
  EXPECT_GT(power[2], power[3]);
}

}  // namespace
}  // namespace tagspin::sim
