#include "sim/spinning_rig.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/angles.hpp"

namespace tagspin::sim {
namespace {

SpinningRig makeRig() {
  SpinningRig rig;
  rig.center = {0.4, 0.0, 0.1};
  rig.radiusM = 0.10;
  rig.omegaRadPerS = 0.5;
  rig.initialAngle = 0.3;
  return rig;
}

TEST(SpinningRig, DiskAngleLinearInTime) {
  const SpinningRig rig = makeRig();
  EXPECT_DOUBLE_EQ(rig.diskAngle(0.0), 0.3);
  EXPECT_DOUBLE_EQ(rig.diskAngle(2.0), 0.3 + 1.0);
}

TEST(SpinningRig, TagStaysOnTheCircle) {
  const SpinningRig rig = makeRig();
  for (double t = 0.0; t < 20.0; t += 0.7) {
    const geom::Vec3 p = rig.tagPosition(t);
    EXPECT_NEAR(geom::distance(p, rig.center), rig.radiusM, 1e-12);
    EXPECT_DOUBLE_EQ(p.z, rig.center.z);  // horizontal rig stays in plane
  }
}

TEST(SpinningRig, PeriodMatchesOmega) {
  const SpinningRig rig = makeRig();
  EXPECT_NEAR(rig.periodS(), geom::kTwoPi / 0.5, 1e-12);
  const geom::Vec3 p0 = rig.tagPosition(1.0);
  const geom::Vec3 p1 = rig.tagPosition(1.0 + rig.periodS());
  EXPECT_NEAR(geom::distance(p0, p1), 0.0, 1e-9);
}

TEST(SpinningRig, ZeroRadiusStaysAtCenter) {
  SpinningRig rig = makeRig();
  rig.radiusM = 0.0;
  for (double t = 0.0; t < 10.0; t += 1.1) {
    EXPECT_EQ(rig.tagPosition(t), rig.center);
  }
}

TEST(SpinningRig, TagPlaneAngleRotatesWithDisk) {
  const SpinningRig rig = makeRig();
  const double a0 = rig.tagPlaneAngle(0.0);
  const double a1 = rig.tagPlaneAngle(1.0);
  EXPECT_NEAR(geom::circularDiff(a1, a0), 0.5, 1e-12);
}

TEST(SpinningRig, OrientationRhoGeometry) {
  // Tag at disk angle 0 (position +x of center, tangential plane = +y).
  SpinningRig rig = makeRig();
  rig.initialAngle = 0.0;
  // Reader due +y of the tag: tag plane points straight at it -> rho = 0.
  const geom::Vec3 tag = rig.tagPosition(0.0);
  const geom::Vec3 readerAhead{tag.x, tag.y + 2.0, tag.z};
  EXPECT_NEAR(geom::wrapToPi(rig.orientationRho(0.0, readerAhead)), 0.0,
              1e-9);
  // Reader due +x of the tag: rho = pi/2 (plane perpendicular to LoS).
  const geom::Vec3 readerSide{tag.x + 2.0, tag.y, tag.z};
  EXPECT_NEAR(rig.orientationRho(0.0, readerSide), geom::kPi / 2.0, 1e-9);
}

TEST(SpinningRig, RhoSweepsFullCircleOverOneRevolution) {
  const SpinningRig rig = makeRig();
  const geom::Vec3 reader{0.4, 3.0, 0.1};
  const double rho0 = rig.orientationRho(0.0, reader);
  const double rhoHalf =
      rig.orientationRho(rig.periodS() / 2.0, reader);
  EXPECT_NEAR(geom::circularDistance(rho0 + geom::kPi, rhoHalf), 0.0, 0.1);
}

TEST(SpinningRig, VerticalRigSpinsInXZ) {
  SpinningRig rig = makeRig();
  rig.plane = SpinningRig::Plane::kVerticalXZ;
  for (double t = 0.0; t < 15.0; t += 0.9) {
    const geom::Vec3 p = rig.tagPosition(t);
    EXPECT_DOUBLE_EQ(p.y, rig.center.y);  // y frozen
    EXPECT_NEAR(geom::distance(p, rig.center), rig.radiusM, 1e-12);
  }
  // Over a revolution the tag visits above and below the center.
  double zMin = 1e9, zMax = -1e9;
  for (double t = 0.0; t < rig.periodS(); t += 0.05) {
    zMin = std::min(zMin, rig.tagPosition(t).z);
    zMax = std::max(zMax, rig.tagPosition(t).z);
  }
  EXPECT_NEAR(zMin, rig.center.z - rig.radiusM, 1e-4);
  EXPECT_NEAR(zMax, rig.center.z + rig.radiusM, 1e-4);
}

TEST(SpinningRig, FarFieldDistanceApproximation) {
  // d(t) ~ D - r cos(a - phi): the paper's Eqn. 2, accurate to r^2/D.
  const SpinningRig rig = makeRig();
  const geom::Vec3 reader{1.5, 2.2, 0.1};
  const double D = geom::distance(rig.center, reader);
  const double phi = geom::azimuthOf(rig.center, reader);
  for (double t = 0.0; t < rig.periodS(); t += 0.5) {
    const double exact = geom::distance(rig.tagPosition(t), reader);
    const double approx =
        D - rig.radiusM * std::cos(rig.diskAngle(t) - phi);
    EXPECT_NEAR(exact, approx, rig.radiusM * rig.radiusM / D * 1.5);
  }
}

}  // namespace
}  // namespace tagspin::sim
