#include "sim/interrogator.hpp"

#include <gtest/gtest.h>

#include <map>

#include "geom/angles.hpp"
#include "sim/scenario.hpp"

namespace tagspin::sim {
namespace {

World defaultWorld(uint64_t seed = 1) {
  ScenarioConfig sc;
  sc.seed = seed;
  World w = makeTwoRigWorld(sc);
  placeReaderAntenna(w, 0, {0.8, 2.0, 0.0});
  return w;
}

TEST(Interrogator, ProducesSortedReports) {
  const rfid::ReportStream reports =
      interrogate(defaultWorld(), {10.0, 0, 0});
  ASSERT_GT(reports.size(), 100u);
  for (size_t i = 1; i < reports.size(); ++i) {
    EXPECT_LE(reports[i - 1].timestampS, reports[i].timestampS);
  }
  EXPECT_LE(reports.back().timestampS, 10.0 + 0.1);
}

TEST(Interrogator, DeterministicForSameStream) {
  const rfid::ReportStream a = interrogate(defaultWorld(), {5.0, 0, 3});
  const rfid::ReportStream b = interrogate(defaultWorld(), {5.0, 0, 3});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].epc, b[i].epc);
    EXPECT_DOUBLE_EQ(a[i].timestampS, b[i].timestampS);
    EXPECT_DOUBLE_EQ(a[i].phaseRad, b[i].phaseRad);
  }
}

TEST(Interrogator, DifferentStreamsDiffer) {
  const rfid::ReportStream a = interrogate(defaultWorld(), {5.0, 0, 1});
  const rfid::ReportStream b = interrogate(defaultWorld(), {5.0, 0, 2});
  // Some phase somewhere must differ.
  bool differ = a.size() != b.size();
  for (size_t i = 0; !differ && i < a.size(); ++i) {
    differ = a[i].phaseRad != b[i].phaseRad;
  }
  EXPECT_TRUE(differ);
}

TEST(Interrogator, BothRigTagsHeard) {
  const World w = defaultWorld();
  const rfid::ReportStream reports = interrogate(w, {10.0, 0, 0});
  std::map<rfid::Epc, int> counts;
  for (const rfid::TagReport& r : reports) counts[r.epc]++;
  EXPECT_EQ(counts.size(), 2u);
  for (const RigTag& rt : w.rigs) {
    EXPECT_GT(counts[rt.tag.epc], 100) << rt.tag.epc.toHex();
  }
}

TEST(Interrogator, ChannelMetadataConsistent) {
  const World w = defaultWorld();
  const rfid::ReportStream reports = interrogate(w, {8.0, 0, 0});
  for (const rfid::TagReport& r : reports) {
    EXPECT_GE(r.channelIndex, 0);
    EXPECT_LT(r.channelIndex, w.reader.plan.channelCount());
    EXPECT_DOUBLE_EQ(r.frequencyHz,
                     w.reader.plan.frequencyHz(r.channelIndex));
    EXPECT_EQ(r.antennaPort, 0);
  }
}

TEST(Interrogator, HoppingChangesChannelOverTime) {
  const World w = defaultWorld();  // 16-channel plan, 2 s dwell
  const rfid::ReportStream reports = interrogate(w, {10.0, 0, 0});
  std::map<int, int> channels;
  for (const rfid::TagReport& r : reports) channels[r.channelIndex]++;
  EXPECT_GE(channels.size(), 4u);  // ~5 dwell slots in 10 s
}

TEST(Interrogator, FixedChannelStaysPut) {
  ScenarioConfig sc;
  sc.fixedChannel = true;
  World w = makeTwoRigWorld(sc);
  placeReaderAntenna(w, 0, {0.8, 2.0, 0.0});
  const rfid::ReportStream reports = interrogate(w, {5.0, 0, 0});
  for (const rfid::TagReport& r : reports) {
    EXPECT_EQ(r.channelIndex, 0);
  }
}

TEST(Interrogator, SamplingDensityFollowsOrientation) {
  // Paper Fig. 4(b): more reads when the tag plane faces the reader.
  // Compare read counts in orientation bins over many revolutions.
  ScenarioConfig sc;
  sc.fixedChannel = true;
  World w = makeTwoRigWorld(sc);
  w.rigs.resize(1);
  const geom::Vec3 reader{0.0, 2.5, 0.0};
  placeReaderAntenna(w, 0, reader);
  const rfid::ReportStream reports = interrogate(w, {60.0, 0, 0});

  int favorable = 0, unfavorable = 0;
  for (const rfid::TagReport& r : reports) {
    const double rho = w.rigs[0].rig.orientationRho(r.timestampS, reader);
    const double s = std::abs(std::sin(rho));
    if (s > 0.9) ++favorable;
    if (s < 0.45) ++unfavorable;
  }
  ASSERT_GT(favorable + unfavorable, 100);
  // The favorable band covers ~29% of the circle, the unfavorable ~30%,
  // so the raw counts are comparable if density were uniform.
  EXPECT_GT(favorable, unfavorable * 3 / 2);
}

TEST(Interrogator, ReplyProbabilityHelper) {
  EXPECT_DOUBLE_EQ(replyProbability(1.0, 0.0), 1.0);
  EXPECT_NEAR(replyProbability(0.5, 0.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(replyProbability(0.0, 0.0), 0.05);  // clamped floor
  EXPECT_GT(replyProbability(0.5, 3.0), replyProbability(0.5, 0.0));
  EXPECT_DOUBLE_EQ(replyProbability(1.0, 10.0), 1.0);  // clamped ceiling
}

TEST(Interrogator, ValidatesWorld) {
  World w = defaultWorld();
  w.rigs.clear();
  EXPECT_THROW(interrogate(w, {1.0, 0, 0}), std::logic_error);
}

TEST(Interrogator, AntennaPortSelectsPosition) {
  ScenarioConfig sc;
  sc.antennaCount = 2;
  World w = makeTwoRigWorld(sc);
  placeReaderAntenna(w, 0, {0.5, 1.5, 0.0});
  placeReaderAntenna(w, 1, {-0.5, 3.0, 0.0});
  const rfid::ReportStream near = interrogate(w, {5.0, 0, 0});
  const rfid::ReportStream far = interrogate(w, {5.0, 1, 0});
  double rssiNear = 0.0, rssiFar = 0.0;
  for (const auto& r : near) rssiNear += r.rssiDbm;
  for (const auto& r : far) rssiFar += r.rssiDbm;
  // The closer antenna hears stronger signals on average.
  EXPECT_GT(rssiNear / static_cast<double>(near.size()),
            rssiFar / static_cast<double>(far.size()));
}

}  // namespace
}  // namespace tagspin::sim
