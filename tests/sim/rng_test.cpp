#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tagspin::sim {
namespace {

TEST(Rng, SplitmixIsDeterministic) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(Rng, DeriveSeedSeparatesStreams) {
  std::set<uint64_t> seeds;
  for (uint64_t base = 0; base < 20; ++base) {
    for (uint64_t stream = 0; stream < 20; ++stream) {
      seeds.insert(deriveSeed(base, stream));
    }
  }
  EXPECT_EQ(seeds.size(), 400u);  // no collisions in this small grid
}

TEST(Rng, DeriveSeedIsStable) {
  EXPECT_EQ(deriveSeed(7, 9), deriveSeed(7, 9));
}

TEST(Rng, MakeRngReproducible) {
  auto a = makeRng(deriveSeed(1, 2));
  auto b = makeRng(deriveSeed(1, 2));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ConstexprUsable) {
  constexpr uint64_t s = deriveSeed(1, 2);
  static_assert(s != 0);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace tagspin::sim
