#include "sim/mem_sim.hpp"

#include <gtest/gtest.h>

namespace tagspin::sim {
namespace {

TEST(SimMemEnv, FaultFreeGrantsEverythingAndCountsOps) {
  SimMemEnv env;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(env.tryReserve(100));
  EXPECT_EQ(env.opCount(), 10u);
  EXPECT_EQ(env.denials(), 0u);
  EXPECT_EQ(env.usedBytes(), 1000u);
  for (int i = 0; i < 10; ++i) env.release(100);
  EXPECT_EQ(env.usedBytes(), 0u);
  // Releases are not ops: the exploration domain is reservations only.
  EXPECT_EQ(env.opCount(), 10u);
  EXPECT_FALSE(env.underflow());
  EXPECT_FALSE(env.budgetExceeded());
}

TEST(SimMemEnv, FailAtDeniesExactlyThatReservation) {
  SimMemEnv env;
  env.setFailAt(2);
  EXPECT_TRUE(env.tryReserve(8));   // op 0
  EXPECT_TRUE(env.tryReserve(8));   // op 1
  EXPECT_FALSE(env.tryReserve(8));  // op 2: denied
  EXPECT_TRUE(env.tryReserve(8));   // op 3
  EXPECT_EQ(env.denials(), 1u);
  EXPECT_EQ(env.usedBytes(), 24u);
}

TEST(SimMemEnv, BurstDeniesParamConsecutiveReservations) {
  SimMemEnv env;
  env.setFaults({{1, MemFaultKind::kBurst, 3}});
  EXPECT_TRUE(env.tryReserve(8));   // op 0
  EXPECT_FALSE(env.tryReserve(8));  // op 1: burst starts
  EXPECT_FALSE(env.tryReserve(8));  // op 2
  EXPECT_FALSE(env.tryReserve(8));  // op 3
  EXPECT_TRUE(env.tryReserve(8));   // op 4: burst over
  EXPECT_EQ(env.denials(), 3u);
}

TEST(SimMemEnv, CliffFreezesTheBudgetAtTheFaultPoint) {
  SimMemEnv env;
  env.setFaults({{3, MemFaultKind::kCliff, 1}});
  EXPECT_TRUE(env.tryReserve(100));  // ops 0-2 grow to 300
  EXPECT_TRUE(env.tryReserve(100));
  EXPECT_TRUE(env.tryReserve(100));
  EXPECT_FALSE(env.tryReserve(100));  // op 3: cliff lands, growth denied
  // Releasing frees headroom that can be re-used under the cliff...
  env.release(100);
  EXPECT_TRUE(env.tryReserve(50));
  // ...but net growth past the frozen budget stays denied.
  EXPECT_FALSE(env.tryReserve(100));
  env.clearPressure();
  EXPECT_TRUE(env.tryReserve(100));
}

TEST(SimMemEnv, PoisonDeniesEverythingUntilPressureClears) {
  SimMemEnv env;
  env.setFaults({{0, MemFaultKind::kPoison, 1}});
  EXPECT_FALSE(env.tryReserve(1));
  EXPECT_FALSE(env.tryReserve(1));
  EXPECT_FALSE(env.tryReserve(1));
  EXPECT_EQ(env.denials(), 3u);
  env.clearPressure();
  EXPECT_TRUE(env.tryReserve(1));
}

TEST(SimMemEnv, EveryNthDeniesPeriodically) {
  SimMemEnv env;
  env.setEveryNth(3);
  int denied = 0;
  for (int i = 0; i < 12; ++i) {
    if (!env.tryReserve(8)) ++denied;
  }
  EXPECT_EQ(denied, 3);  // ops 3, 6, 9 (op 0 is exempt)
}

TEST(SimMemEnv, UnderflowOracleFlagsReleaseWithoutReserve) {
  SimMemEnv env;
  EXPECT_TRUE(env.tryReserve(100));
  env.release(100);
  EXPECT_FALSE(env.underflow());
  env.release(1);  // bytes never reserved
  EXPECT_TRUE(env.underflow());
}

TEST(SimMemEnv, BudgetOracleNeverFiresWhenCallersRespectDenials) {
  SimMemEnv env;
  env.setBudget(256);
  EXPECT_TRUE(env.tryReserve(200));
  EXPECT_FALSE(env.tryReserve(100));  // would exceed: denied, not exceeded
  EXPECT_FALSE(env.budgetExceeded());
  EXPECT_EQ(env.usedBytes(), 200u);
}

TEST(SimMemEnv, SameScheduleSameWorkloadIsDeterministic) {
  const MemFaultSchedule schedule = {{2, MemFaultKind::kDeny, 1},
                                     {5, MemFaultKind::kBurst, 2}};
  auto run = [&schedule] {
    SimMemEnv env;
    env.setFaults(schedule);
    std::vector<bool> grants;
    for (int i = 0; i < 10; ++i) grants.push_back(env.tryReserve(16));
    return grants;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimMemEnv, FaultKindNamesAreStable) {
  EXPECT_STREQ(memFaultKindName(MemFaultKind::kDeny), "deny");
  EXPECT_STREQ(memFaultKindName(MemFaultKind::kBurst), "burst");
  EXPECT_STREQ(memFaultKindName(MemFaultKind::kCliff), "cliff");
  EXPECT_STREQ(memFaultKindName(MemFaultKind::kPoison), "poison");
}

}  // namespace
}  // namespace tagspin::sim
