#include "sim/flaky_transport.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "rfid/llrp.hpp"
#include "sim/scenario.hpp"

namespace tagspin::sim {
namespace {

World testWorld() {
  ScenarioConfig sc;
  sc.seed = 11;
  sc.fixedChannel = true;
  World world = makeTwoRigWorld(sc);
  placeReaderAntenna(world, 0, {0.8, 2.0, 0.0});
  return world;
}

FlakyTransportConfig baseConfig(double durationS) {
  FlakyTransportConfig tc;
  tc.interrogate = {durationS, 0, 77};
  tc.connectDelayS = 0.05;
  tc.seed = 5;
  return tc;
}

TEST(FlakyTransport, CleanStreamDeliveredByteExactWithoutEvents) {
  const World world = testWorld();
  FlakyTransport transport(world, baseConfig(5.0));
  ASSERT_GT(transport.cleanReports().size(), 10u);

  EXPECT_FALSE(transport.connect(0.0));  // connect takes connectDelayS
  EXPECT_TRUE(transport.connect(0.05));

  std::vector<uint8_t> received;
  for (double t = 0.0; t <= 6.0; t += 0.1) {
    const runtime::TransportRead read = transport.poll(t);
    ASSERT_NE(read.status, runtime::TransportStatus::kClosed);
    received.insert(received.end(), read.bytes.begin(), read.bytes.end());
  }
  // Reports emitted in the instant before the connection established are
  // legitimately lost (a reader streams live); everything else arrives
  // byte-exact and strictly decodable.
  const rfid::ReportStream decoded = rfid::llrp::decodeStream(received);
  ASSERT_EQ(decoded.size(), transport.cleanReports().size() -
                                transport.stats().framesLostWhileDown);
  EXPECT_LT(transport.stats().framesLostWhileDown, 20u);
  EXPECT_EQ(transport.stats().framesTorn, 0u);
}

TEST(FlakyTransport, FramesArePacedByTheirTimestamps) {
  const World world = testWorld();
  FlakyTransport transport(world, baseConfig(5.0));
  transport.connect(0.0);  // starts the dial; completes after the delay
  ASSERT_TRUE(transport.connect(0.1));
  transport.poll(2.5);
  const size_t atHalf = transport.framesDelivered();
  EXPECT_GT(atHalf, 0u);
  EXPECT_LT(atHalf, transport.cleanReports().size());
  transport.poll(6.0);
  EXPECT_EQ(transport.framesDelivered(), transport.cleanReports().size());
}

TEST(FlakyTransport, DisconnectLosesLiveDataAndTearsTheFrameInFlight) {
  const World world = testWorld();
  FlakyTransportConfig tc = baseConfig(5.0);
  tc.events.push_back({OutageEvent::Kind::kDisconnect, 2.0, 1.0});
  FlakyTransport transport(world, tc);

  transport.connect(0.0);
  ASSERT_TRUE(transport.connect(0.05));
  transport.poll(1.9);  // stream up to the outage

  // During the outage: poll reports closed, reconnect refused.
  EXPECT_EQ(transport.poll(2.1).status, runtime::TransportStatus::kClosed);
  EXPECT_FALSE(transport.connected());
  EXPECT_FALSE(transport.connect(2.5));

  // After it: reconnect works (after the connect delay), reports from the
  // gap are gone, and the first delivery replays the torn tail (resync
  // junk for SYNCING).
  EXPECT_FALSE(transport.connect(3.1));  // delay not yet elapsed
  ASSERT_TRUE(transport.connect(3.16));
  EXPECT_TRUE(transport.connect(3.16));  // idempotent while connected
  EXPECT_GT(transport.stats().framesLostWhileDown, 0u);
  EXPECT_EQ(transport.stats().framesTorn, 1u);

  const runtime::TransportRead read = transport.poll(3.6);
  ASSERT_EQ(read.status, runtime::TransportStatus::kOk);
  // Torn tail + whole frames: not a multiple of the frame size.
  EXPECT_NE(read.bytes.size() % rfid::llrp::kMessageSize, 0u);

  rfid::llrp::DecodeStats stats;
  const rfid::ReportStream decoded =
      rfid::llrp::decodeStreamTolerant(read.bytes, &stats);
  EXPECT_GT(decoded.size(), 0u);
  EXPECT_GT(stats.bytesResynced, 0u);  // the junk was skipped, not decoded
  for (const rfid::TagReport& r : decoded) {
    EXPECT_GE(r.timestampS, 3.0);  // nothing from inside the outage
  }
}

TEST(FlakyTransport, StallBuffersThenFlushesAsABurst) {
  const World world = testWorld();
  FlakyTransportConfig tc = baseConfig(5.0);
  tc.events.push_back({OutageEvent::Kind::kStall, 1.0, 2.0});
  FlakyTransport transport(world, tc);

  transport.connect(0.0);
  ASSERT_TRUE(transport.connect(0.05));
  transport.poll(0.9);
  const size_t beforeStall = transport.framesDelivered();

  EXPECT_EQ(transport.poll(1.5).status, runtime::TransportStatus::kIdle);
  EXPECT_EQ(transport.poll(2.9).status, runtime::TransportStatus::kIdle);
  EXPECT_EQ(transport.framesDelivered(), beforeStall);
  EXPECT_TRUE(transport.connected());  // a stall is not a disconnect

  const runtime::TransportRead burst = transport.poll(3.1);
  ASSERT_EQ(burst.status, runtime::TransportStatus::kOk);
  // ~2 s of backlog flushes at once.
  EXPECT_GT(burst.bytes.size() / rfid::llrp::kMessageSize, 5u);
}

TEST(FlakyTransport, FloodDeliversFutureStreamEarly) {
  const World world = testWorld();
  FlakyTransportConfig tc = baseConfig(5.0);
  tc.events.push_back({OutageEvent::Kind::kFlood, 2.0, 2.5});
  FlakyTransport transport(world, tc);

  transport.connect(0.0);
  ASSERT_TRUE(transport.connect(0.05));
  transport.poll(1.9);
  const runtime::TransportRead flood = transport.poll(2.05);
  ASSERT_EQ(flood.status, runtime::TransportStatus::kOk);
  const rfid::ReportStream decoded = rfid::llrp::decodeStream(flood.bytes);
  ASSERT_FALSE(decoded.empty());
  // Frames with timestamps far beyond "now" arrived already.
  EXPECT_GT(decoded.back().timestampS, 4.0);
}

TEST(FlakyTransport, StandardScriptHasTheAdvertisedMixAndFitsTheSpan) {
  const double period = 2.0 * std::numbers::pi / 0.5;
  const double span = 10.0 * period;
  const auto events = standardOutageScript(span, period, 123);

  int disconnects = 0, stalls = 0, floods = 0;
  for (const OutageEvent& ev : events) {
    switch (ev.kind) {
      case OutageEvent::Kind::kDisconnect: ++disconnects; break;
      case OutageEvent::Kind::kStall: ++stalls; break;
      case OutageEvent::Kind::kFlood: ++floods; break;
    }
    EXPECT_GE(ev.atS, 0.0);
    EXPECT_LT(ev.atS, span);
    if (ev.kind != OutageEvent::Kind::kFlood) {
      // Recovery must be observable: the outage ends inside the capture.
      EXPECT_LE(ev.atS + ev.durationS, 0.96 * span + 1e-9);
    }
  }
  EXPECT_EQ(disconnects, 3);
  EXPECT_EQ(stalls, 1);
  EXPECT_EQ(floods, 1);

  // Deterministic in the seed.
  const auto again = standardOutageScript(span, period, 123);
  ASSERT_EQ(again.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].atS, events[i].atS);
    EXPECT_DOUBLE_EQ(again[i].durationS, events[i].durationS);
  }
  const auto different = standardOutageScript(span, period, 124);
  EXPECT_NE(different[0].atS, events[0].atS);
}

TEST(FlakyTransport, OutageKindNamesAreStable) {
  EXPECT_STREQ(outageKindName(OutageEvent::Kind::kDisconnect), "disconnect");
  EXPECT_STREQ(outageKindName(OutageEvent::Kind::kStall), "stall");
  EXPECT_STREQ(outageKindName(OutageEvent::Kind::kFlood), "flood");
}

}  // namespace
}  // namespace tagspin::sim
