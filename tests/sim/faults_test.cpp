#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "rf/constants.hpp"
#include "rfid/llrp.hpp"

namespace tagspin::sim {
namespace {

rfid::ReportStream cleanStream(size_t count, uint32_t tags = 2) {
  rfid::ReportStream stream;
  for (uint32_t i = 0; i < count; ++i) {
    rfid::TagReport r;
    r.epc = rfid::Epc::forSimulatedTag(i % tags);
    r.timestampS = 0.025 * i;
    r.phaseRad = 0.01 * i;
    r.rssiDbm = -55.0;
    r.channelIndex = 3;
    r.frequencyHz = rf::mhz(920.625);
    stream.push_back(r);
  }
  return stream;
}

TEST(FaultInjector, NoFaultsIsIdentity) {
  const rfid::ReportStream clean = cleanStream(200);
  FaultInjector injector({});
  const rfid::ReportStream out = injector.corruptReports(clean);
  ASSERT_EQ(out.size(), clean.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(out[i].epc, clean[i].epc);
    EXPECT_DOUBLE_EQ(out[i].timestampS, clean[i].timestampS);
    EXPECT_DOUBLE_EQ(out[i].phaseRad, clean[i].phaseRad);
  }
  const std::vector<uint8_t> bytes = rfid::llrp::encodeStream(clean);
  EXPECT_EQ(injector.corruptBytes(bytes), bytes);
}

TEST(FaultInjector, DeterministicInSeed) {
  const rfid::ReportStream clean = cleanStream(500);
  FaultConfig fc;
  fc.seed = 1234;
  fc.duplicateProb = 0.1;
  fc.reorderProb = 0.1;
  fc.timestampGlitchProb = 0.05;
  fc.epcBitErrorProb = 0.02;
  FaultInjector a(fc);
  FaultInjector b(fc);
  const rfid::ReportStream ra = a.corruptReports(clean);
  const rfid::ReportStream rb = b.corruptReports(clean);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].epc, rb[i].epc);
    EXPECT_DOUBLE_EQ(ra[i].timestampS, rb[i].timestampS);
  }
  // A different seed must produce a different corruption pattern.
  fc.seed = 99;
  FaultInjector c(fc);
  const rfid::ReportStream rc = c.corruptReports(clean);
  bool anyDifferent = rc.size() != ra.size();
  for (size_t i = 0; !anyDifferent && i < std::min(ra.size(), rc.size());
       ++i) {
    anyDifferent = ra[i].timestampS != rc[i].timestampS;
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(FaultInjector, DuplicatesAreExactRetransmits) {
  const rfid::ReportStream clean = cleanStream(1000);
  FaultConfig fc;
  fc.duplicateProb = 0.2;
  FaultInjector injector(fc);
  const rfid::ReportStream out = injector.corruptReports(clean);
  EXPECT_EQ(out.size(), clean.size() + injector.stats().duplicatesInserted);
  // Rate within a loose band around 20%.
  EXPECT_GT(injector.stats().duplicatesInserted, clean.size() / 10);
  EXPECT_LT(injector.stats().duplicatesInserted, clean.size() * 3 / 10);
  size_t adjacentPairs = 0;
  for (size_t i = 1; i < out.size(); ++i) {
    if (out[i].timestampS == out[i - 1].timestampS &&
        out[i].phaseRad == out[i - 1].phaseRad &&
        out[i].epc == out[i - 1].epc) {
      ++adjacentPairs;
    }
  }
  EXPECT_EQ(adjacentPairs, injector.stats().duplicatesInserted);
}

TEST(FaultInjector, ReorderSwapsNeighbours) {
  const rfid::ReportStream clean = cleanStream(1000);
  FaultConfig fc;
  fc.reorderProb = 0.2;
  FaultInjector injector(fc);
  const rfid::ReportStream out = injector.corruptReports(clean);
  ASSERT_EQ(out.size(), clean.size());
  size_t inversions = 0;
  for (size_t i = 1; i < out.size(); ++i) {
    if (out[i].timestampS < out[i - 1].timestampS) ++inversions;
  }
  EXPECT_EQ(inversions, injector.stats().reordersApplied);
  EXPECT_GT(inversions, 0u);
}

TEST(FaultInjector, DropoutWindowSilencesOneTag) {
  const rfid::ReportStream clean = cleanStream(1000, 2);
  FaultConfig fc;
  TagDropout d;
  d.epc = rfid::Epc::forSimulatedTag(0);
  d.startFraction = 0.25;
  d.endFraction = 0.75;
  fc.dropouts.push_back(d);
  FaultInjector injector(fc);
  const rfid::ReportStream out = injector.corruptReports(clean);
  double t0 = clean.front().timestampS;
  double t1 = clean.back().timestampS;
  for (const rfid::TagReport& r : out) {
    if (!(r.epc == d.epc)) continue;
    const double frac = (r.timestampS - t0) / (t1 - t0);
    EXPECT_FALSE(frac >= 0.25 && frac < 0.75) << "report inside the window";
  }
  // The other tag is untouched: half the stream, all survived.
  const size_t other = std::count_if(
      out.begin(), out.end(), [](const rfid::TagReport& r) {
        return r.epc == rfid::Epc::forSimulatedTag(1);
      });
  EXPECT_EQ(other, clean.size() / 2);
  EXPECT_EQ(out.size() + injector.stats().reportsDropped, clean.size());
}

TEST(FaultInjector, EpcBitErrorsFlipExactlyOneBit) {
  const rfid::ReportStream clean = cleanStream(500, 1);
  FaultConfig fc;
  fc.epcBitErrorProb = 0.3;
  FaultInjector injector(fc);
  const rfid::ReportStream out = injector.corruptReports(clean);
  ASSERT_EQ(out.size(), clean.size());
  size_t changed = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i].epc == clean[i].epc) continue;
    ++changed;
    const uint64_t dHi = out[i].epc.hi() ^ clean[i].epc.hi();
    const uint32_t dLo = out[i].epc.lo() ^ clean[i].epc.lo();
    EXPECT_EQ(__builtin_popcountll(dHi) + __builtin_popcount(dLo), 1);
  }
  EXPECT_EQ(changed, injector.stats().epcBitErrors);
  EXPECT_GT(changed, 0u);
}

TEST(FaultInjector, ClockDriftScalesTimestamps) {
  const rfid::ReportStream clean = cleanStream(100);
  FaultConfig fc;
  fc.clockDriftPpm = 1000.0;  // exaggerated for visibility
  FaultInjector injector(fc);
  const rfid::ReportStream out = injector.corruptReports(clean);
  const double span = clean.back().timestampS - clean.front().timestampS;
  EXPECT_NEAR(out.back().timestampS - out.front().timestampS,
              span * 1.001, 1e-9);
}

TEST(FaultInjector, ByteFaultsPreserveFrameCountOnFlipOnly) {
  const rfid::ReportStream clean = cleanStream(300);
  const std::vector<uint8_t> bytes = rfid::llrp::encodeStream(clean);
  FaultConfig fc;
  fc.frameBitFlipProb = 0.25;
  FaultInjector injector(fc);
  const std::vector<uint8_t> dirty = injector.corruptBytes(bytes);
  EXPECT_EQ(dirty.size(), bytes.size());  // flips never change the length
  EXPECT_GT(injector.stats().framesBitFlipped, 0u);
  EXPECT_GE(injector.stats().bitsFlipped, injector.stats().framesBitFlipped);
  size_t differingBytes = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] != dirty[i]) ++differingBytes;
  }
  EXPECT_LE(differingBytes, injector.stats().bitsFlipped);
  EXPECT_GT(differingBytes, 0u);
}

TEST(FaultInjector, TruncationShortensStream) {
  const rfid::ReportStream clean = cleanStream(300);
  const std::vector<uint8_t> bytes = rfid::llrp::encodeStream(clean);
  FaultConfig fc;
  fc.frameTruncateProb = 0.3;
  FaultInjector injector(fc);
  const std::vector<uint8_t> dirty = injector.corruptBytes(bytes);
  EXPECT_LT(dirty.size(), bytes.size());
  EXPECT_GT(injector.stats().framesTruncated, 0u);
}

TEST(FaultConfigScaled, ZeroIntensityDisablesEverything) {
  FaultConfig fc;
  fc.duplicateProb = 0.5;
  fc.reorderProb = 0.5;
  fc.timestampGlitchProb = 0.5;
  fc.clockDriftPpm = 100.0;
  fc.epcBitErrorProb = 0.5;
  fc.frameBitFlipProb = 0.5;
  fc.frameTruncateProb = 0.5;
  fc.dropouts.push_back({rfid::Epc::forSimulatedTag(0), 0.0, 1.0});
  const FaultConfig off = fc.scaled(0.0);
  EXPECT_EQ(off.duplicateProb, 0.0);
  EXPECT_EQ(off.reorderProb, 0.0);
  EXPECT_EQ(off.timestampGlitchProb, 0.0);
  EXPECT_EQ(off.clockDriftPpm, 0.0);
  EXPECT_EQ(off.epcBitErrorProb, 0.0);
  EXPECT_EQ(off.frameBitFlipProb, 0.0);
  EXPECT_EQ(off.frameTruncateProb, 0.0);
  EXPECT_TRUE(off.dropouts.empty());
  const FaultConfig half = fc.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.duplicateProb, 0.25);
  EXPECT_DOUBLE_EQ(half.clockDriftPpm, 50.0);
  EXPECT_EQ(half.dropouts.size(), 1u);
  // Rates saturate at 1.
  EXPECT_DOUBLE_EQ(fc.scaled(10.0).duplicateProb, 1.0);
}

}  // namespace
}  // namespace tagspin::sim
