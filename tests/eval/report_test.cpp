#include "eval/report.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tagspin::eval {
namespace {

// The report helpers print to stdout; these tests assert they are total
// (no crashes / exceptions) across normal and degenerate inputs.

TEST(Report, HeadingsAndRows) {
  EXPECT_NO_THROW(printHeading("title"));
  EXPECT_NO_THROW(printSubheading("sub"));
  EXPECT_NO_THROW(printSummaryHeader());
  dsp::Summary s;
  s.count = 3;
  s.mean = 1.5;
  EXPECT_NO_THROW(printSummaryRow("row", s));
}

TEST(Report, CdfHandlesEmptyAndNormal) {
  EXPECT_NO_THROW(printCdf("empty", {}));
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_NO_THROW(printCdf("values", values, 4));
}

TEST(Report, ErrorBreakdownWithAndWithoutZ) {
  std::vector<ErrorCm> flat{errorCm(geom::Vec2{0.01, 0.02}, geom::Vec2{})};
  EXPECT_NO_THROW(printErrorBreakdown("2d", flat));
  std::vector<ErrorCm> deep{
      errorCm(geom::Vec3{0.01, 0.02, 0.03}, geom::Vec3{})};
  EXPECT_NO_THROW(printErrorBreakdown("3d", deep));
}

TEST(Report, Series) {
  const std::vector<std::pair<double, double>> series{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_NO_THROW(printSeries("x", "y", series));
  EXPECT_NO_THROW(printSeries("x", "y", {}));
}

TEST(Report, ProfileAscii) {
  std::vector<double> profile(360);
  for (size_t i = 0; i < profile.size(); ++i) {
    profile[i] = std::exp(-0.001 * (static_cast<double>(i) - 100.0) *
                          (static_cast<double>(i) - 100.0));
  }
  EXPECT_NO_THROW(printProfileAscii("profile", profile));
  EXPECT_NO_THROW(printProfileAscii("empty", {}));
  const std::vector<double> flat(16, 1.0);  // zero dynamic range
  EXPECT_NO_THROW(printProfileAscii("flat", flat));
}

}  // namespace
}  // namespace tagspin::eval
