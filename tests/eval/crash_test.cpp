#include "eval/crash.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace tagspin::eval {
namespace {

sim::FaultSchedule schedule(std::initializer_list<uint64_t> ops,
                            sim::FaultKind kind = sim::FaultKind::kEio) {
  sim::FaultSchedule s;
  for (uint64_t op : ops) s.push_back({op, kind});
  return s;
}

TEST(ShrinkSchedule, ReducesToTheSingleCulpritFault) {
  // Only the fault at op 7 matters.
  const auto fails = [](const sim::FaultSchedule& s) {
    return std::any_of(s.begin(), s.end(),
                       [](const sim::Fault& f) { return f.opIndex == 7; });
  };
  const sim::FaultSchedule shrunk =
      shrinkSchedule(schedule({1, 3, 7, 9, 12, 20, 31, 44}), fails);
  ASSERT_EQ(shrunk.size(), 1u);
  EXPECT_EQ(shrunk[0].opIndex, 7u);
}

TEST(ShrinkSchedule, KeepsAConjunctionOfTwoFaults) {
  // Failure needs BOTH op 2 and op 9 (an ordering bug armed by one fault
  // and fired by another).
  const auto fails = [](const sim::FaultSchedule& s) {
    const auto has = [&s](uint64_t op) {
      return std::any_of(s.begin(), s.end(),
                         [op](const sim::Fault& f) { return f.opIndex == op; });
    };
    return has(2) && has(9);
  };
  const sim::FaultSchedule shrunk =
      shrinkSchedule(schedule({0, 2, 4, 6, 9, 11, 13, 15}), fails);
  ASSERT_EQ(shrunk.size(), 2u);
  EXPECT_EQ(shrunk[0].opIndex, 2u);
  EXPECT_EQ(shrunk[1].opIndex, 9u);
  EXPECT_TRUE(fails(shrunk));
}

TEST(ShrinkSchedule, AlreadyMinimalScheduleIsReturnedVerbatim) {
  const auto fails = [](const sim::FaultSchedule& s) { return !s.empty(); };
  const sim::FaultSchedule one = schedule({5});
  const sim::FaultSchedule shrunk = shrinkSchedule(one, fails);
  ASSERT_EQ(shrunk.size(), 1u);
  EXPECT_EQ(shrunk[0].opIndex, 5u);
}

TEST(CrashEval, SmallExplorationHoldsEveryInvariant) {
  CrashExploreConfig cfg;
  cfg.checkpointSaves = 3;
  cfg.captureReports = 24;
  cfg.reopenExtraReports = 4;
  cfg.fleetShards = 2;
  cfg.fleetRounds = 2;
  cfg.persistSeeds = 2;
  cfg.scheduleRounds = 16;
  cfg.exploreBrokenWriter = false;

  const CrashEvalResult r = runCrashEval(cfg);
  EXPECT_EQ(r.workloads.size(), 5u);
  EXPECT_GT(r.totalBoundaries, 0u);
  EXPECT_GT(r.totalCrashPoints, r.totalBoundaries);
  EXPECT_EQ(r.totalViolations, 0u)
      << (r.violations.empty() ? "" : r.violations[0].detail);
  EXPECT_EQ(r.scheduleRuns, 16u);
  EXPECT_EQ(r.scheduleViolations, 0u);
  EXPECT_TRUE(r.pass);

  const std::string json = crashJson(r);
  EXPECT_NE(json.find("\"total_violations\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"pass\": true"), std::string::npos);
}

TEST(CrashEval, PlantedFsyncOrderingBugIsCaughtAndShrunk) {
  CrashExploreConfig cfg;
  // Keep the correct-writer arms tiny: this test is about the broken one.
  cfg.checkpointSaves = 1;
  cfg.captureReports = 8;
  cfg.reopenExtraReports = 2;
  cfg.fleetShards = 1;
  cfg.fleetRounds = 1;
  cfg.persistSeeds = 2;
  cfg.scheduleRounds = 4;
  cfg.exploreBrokenWriter = true;

  const CrashEvalResult r = runCrashEval(cfg);
  EXPECT_TRUE(r.brokenWriterCaught);
  ASSERT_TRUE(r.brokenScheduleFound);
  EXPECT_GE(r.brokenShrunkFaults, 1u);
  EXPECT_LE(r.brokenShrunkFaults, r.brokenScheduleFaults);
  // The artifact is a self-contained replay recipe.
  EXPECT_NE(r.brokenArtifactJson.find("\"schedule\""), std::string::npos);
  EXPECT_NE(r.brokenArtifactJson.find("\"fault_seed\""), std::string::npos);
  // The planted bug does not poison the correct writers' tally.
  EXPECT_EQ(r.totalViolations, 0u)
      << (r.violations.empty() ? "" : r.violations[0].detail);
  EXPECT_TRUE(r.pass);
}

TEST(CrashEval, ResultsAreDeterministicPerSeed) {
  CrashExploreConfig cfg;
  cfg.checkpointSaves = 2;
  cfg.captureReports = 16;
  cfg.reopenExtraReports = 2;
  cfg.fleetShards = 1;
  cfg.fleetRounds = 2;
  cfg.persistSeeds = 2;
  cfg.scheduleRounds = 8;
  cfg.seed = 1234;

  const std::string a = crashJson(runCrashEval(cfg));
  const std::string b = crashJson(runCrashEval(cfg));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tagspin::eval
