#include "eval/oom.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace tagspin::eval {
namespace {

sim::MemFaultSchedule schedule(std::initializer_list<uint64_t> ops) {
  sim::MemFaultSchedule s;
  for (uint64_t op : ops) s.push_back({op, sim::MemFaultKind::kDeny, 1});
  return s;
}

TEST(ShrinkMemSchedule, ReducesToTheSingleCulpritFault) {
  const auto fails = [](const sim::MemFaultSchedule& s) {
    return std::any_of(s.begin(), s.end(), [](const sim::MemFault& f) {
      return f.opIndex == 11;
    });
  };
  const sim::MemFaultSchedule shrunk =
      shrinkMemSchedule(schedule({2, 5, 11, 17, 23, 31}), fails);
  ASSERT_EQ(shrunk.size(), 1u);
  EXPECT_EQ(shrunk[0].opIndex, 11u);
}

TEST(ShrinkMemSchedule, KeepsAConjunctionOfTwoFaults) {
  const auto fails = [](const sim::MemFaultSchedule& s) {
    const auto has = [&s](uint64_t op) {
      return std::any_of(s.begin(), s.end(), [op](const sim::MemFault& f) {
        return f.opIndex == op;
      });
    };
    return has(3) && has(12);
  };
  const sim::MemFaultSchedule shrunk =
      shrinkMemSchedule(schedule({0, 3, 6, 9, 12, 15, 18, 21}), fails);
  ASSERT_EQ(shrunk.size(), 2u);
  EXPECT_TRUE(fails(shrunk));
}

// A deliberately tiny exploration: a handful of points per workload, but
// every arm of the harness exercised.  The full-size sweep lives in
// oom_smoke_test / fig_oom.
TEST(OomEval, TinyExplorationHoldsEveryInvariant) {
  OomExploreConfig cfg;
  cfg.fleetSessions = 3;
  cfg.fleetShards = 2;
  cfg.pointsPerWorkload = 4;
  cfg.scheduleRounds = 2;
  cfg.replaySessions = 3;
  cfg.replayReports = 32;
  cfg.trackerFixes = 80;
  cfg.trackerHistoryLimit = 24;
  cfg.brokenSearchRounds = 40;

  const OomEvalResult r = runOomEval(cfg);

  ASSERT_EQ(r.workloads.size(), 5u);
  for (const WorkloadOomStats& w : r.workloads) {
    EXPECT_GT(w.boundaries, 0u) << w.name;
    EXPECT_EQ(w.points, 4u) << w.name;
    EXPECT_EQ(w.violations, 0u) << w.name;
  }
  EXPECT_EQ(r.totalPoints, 20u);
  EXPECT_EQ(r.totalViolations, 0u)
      << (r.violations.empty() ? "" : r.violations[0].detail);
  EXPECT_EQ(r.scheduleViolations, 0u);

  // The injected points actually denied reservations (the harness is not
  // passing because the faults never fired).
  uint64_t denials = 0;
  for (const WorkloadOomStats& w : r.workloads) denials += w.denials;
  EXPECT_GT(denials, 0u);

  // Parity: attaching a fault-free environment changes nothing.
  EXPECT_TRUE(r.parityChecked);
  EXPECT_TRUE(r.parityBitIdentical)
      << r.parityBaselineDigest << " vs " << r.paritySeamDigest;

  // Pressure: the budgeted fleet kept its fix rate and returned to zero.
  EXPECT_TRUE(r.pressureChecked);
  EXPECT_GE(r.pressureFixRate, cfg.pressureMinFixRate);
  EXPECT_TRUE(r.pressureRecovered);
  EXPECT_GT(r.pressureShardBudgetBytes, 0u);

  // Falsification: the planted accounting bug is caught and shrunk.
  EXPECT_TRUE(r.brokenCacheCaught);
  EXPECT_TRUE(r.brokenScheduleFound);
  EXPECT_GE(r.brokenShrunkFaults, 1u);
  EXPECT_LE(r.brokenShrunkFaults, r.brokenScheduleFaults);
  EXPECT_FALSE(r.brokenArtifactJson.empty());

  EXPECT_TRUE(r.pass);

  // The JSON payload is emitted and carries the verdict.
  const std::string json = oomJson(r);
  EXPECT_NE(json.find("\"pass\": true"), std::string::npos);
  EXPECT_NE(json.find("\"bit_identical\": true"), std::string::npos);
}

TEST(OomEval, SameSeedSameResult) {
  OomExploreConfig cfg;
  cfg.fleetSessions = 2;
  cfg.fleetShards = 1;
  cfg.pointsPerWorkload = 2;
  cfg.scheduleRounds = 1;
  cfg.replaySessions = 2;
  cfg.replayReports = 24;
  cfg.trackerFixes = 40;
  cfg.trackerHistoryLimit = 16;
  cfg.exploreBrokenCache = false;
  cfg.runPressureArm = false;

  const OomEvalResult a = runOomEval(cfg);
  const OomEvalResult b = runOomEval(cfg);
  EXPECT_EQ(oomJson(a), oomJson(b));
}

}  // namespace
}  // namespace tagspin::eval
