#include "eval/estimators.hpp"

#include <gtest/gtest.h>

#include "baselines/antloc.hpp"
#include "baselines/backpos.hpp"
#include "baselines/landmarc.hpp"
#include "core/tagspin.hpp"
#include "eval/runner.hpp"
#include "sim/scenario.hpp"

namespace tagspin::eval {
namespace {

RunnerConfig gridConfig() {
  sim::ScenarioConfig sc;
  sc.seed = 31;
  sc.fixedChannel = true;
  RunnerConfig rc;
  rc.world = sim::makeTwoRigWorld(sc);
  sim::addReferenceGrid(rc.world, sim::Region{}, 0.6, 0.0);
  rc.region = sim::Region{};
  rc.trials = 2;
  rc.durationS = 10.0;
  rc.calibrateOrientation = false;
  return rc;
}

TEST(Estimators, BuildTagspinServerRegistersEverything) {
  sim::ScenarioConfig sc;
  sc.seed = 32;
  sim::World world = sim::makeTwoRigWorld(sc);
  sim::addVerticalRig(world, {0.0, 0.4, 0.0}, sc);
  const core::TagspinSystem server = buildTagspinServer(world, {}, {});
  // Vertical rigs are registered separately, not as planar apertures.
  EXPECT_EQ(server.rigCount(), 2u);
}

TEST(Estimators, LandmarcAdapterRuns) {
  const RunResult r = runExperiment(gridConfig(), makeLandmarc({}));
  EXPECT_EQ(r.failedTrials, 0);
  EXPECT_EQ(r.errors.size(), 2u);
  // RSSI centroid: sub-metre in a 3x2.4 m region.
  EXPECT_LT(r.summary.mean, 150.0);
}

TEST(Estimators, AntLocAdapterRuns) {
  const RunResult r = runExperiment(gridConfig(), makeAntLoc({}));
  EXPECT_EQ(r.failedTrials, 0);
  EXPECT_LT(r.summary.mean, 150.0);
}

TEST(Estimators, BackPosAdapterRuns) {
  const RunResult r = runExperiment(gridConfig(), makeBackPos({}));
  EXPECT_EQ(r.failedTrials, 0);
  EXPECT_EQ(r.errors.size(), 2u);
}

TEST(Estimators, AdaptersAreDeterministicPerTrial) {
  // The baseline sensor models draw their own randomness from the trial
  // context, so a repeated run reproduces identical errors.
  const RunResult a = runExperiment(gridConfig(), makeAntLoc({}));
  const RunResult b = runExperiment(gridConfig(), makeAntLoc({}));
  ASSERT_EQ(a.errors.size(), b.errors.size());
  for (size_t i = 0; i < a.errors.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.errors[i].combined, b.errors[i].combined);
  }
}

TEST(Estimators, TagspinAdaptersReturnRigPlaneHeight) {
  sim::ScenarioConfig sc;
  sc.seed = 33;
  sc.fixedChannel = true;
  sc.rigPlaneZ = 0.25;
  RunnerConfig rc;
  rc.world = sim::makeTwoRigWorld(sc);
  rc.region = sim::Region{};
  rc.trials = 1;
  rc.durationS = 8.0;
  rc.calibrateOrientation = false;
  const RunResult r = runExperiment(rc, makeTagspin2D());
  ASSERT_EQ(r.estimates.size(), 1u);
  EXPECT_DOUBLE_EQ(r.estimates[0].z, 0.25);
}

}  // namespace
}  // namespace tagspin::eval
