#include "eval/runner.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "eval/estimators.hpp"
#include "sim/scenario.hpp"

namespace tagspin::eval {
namespace {

RunnerConfig smallConfig(uint64_t seed = 5) {
  sim::ScenarioConfig sc;
  sc.seed = seed;
  sc.fixedChannel = true;
  RunnerConfig rc;
  rc.world = sim::makeTwoRigWorld(sc);
  rc.region = sim::Region{};
  rc.trials = 3;
  rc.durationS = 8.0;
  rc.calibrateOrientation = false;  // keep the smoke test fast
  return rc;
}

TEST(Runner, ProducesOneErrorPerTrial) {
  const RunResult result = runExperiment(smallConfig(), makeTagspin2D());
  EXPECT_EQ(result.errors.size(), 3u);
  EXPECT_EQ(result.truths.size(), 3u);
  EXPECT_EQ(result.estimates.size(), 3u);
  EXPECT_EQ(result.failedTrials, 0);
  EXPECT_EQ(result.summary.count, 3u);
  for (const ErrorCm& e : result.errors) {
    EXPECT_GE(e.combined, 0.0);
    EXPECT_LT(e.combined, 200.0);  // sane even for a short interrogation
  }
}

TEST(Runner, DeterministicForSameSeed) {
  const RunResult a = runExperiment(smallConfig(), makeTagspin2D());
  const RunResult b = runExperiment(smallConfig(), makeTagspin2D());
  ASSERT_EQ(a.errors.size(), b.errors.size());
  for (size_t i = 0; i < a.errors.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.errors[i].combined, b.errors[i].combined);
    EXPECT_EQ(a.truths[i], b.truths[i]);
  }
}

TEST(Runner, DifferentSeedsDifferentPlacements) {
  RunnerConfig c1 = smallConfig();
  RunnerConfig c2 = smallConfig();
  c2.seed = 123;
  const RunResult a = runExperiment(c1, makeTagspin2D());
  const RunResult b = runExperiment(c2, makeTagspin2D());
  EXPECT_NE(a.truths[0], b.truths[0]);
}

TEST(Runner, ThreeDSamplesHeight) {
  RunnerConfig rc = smallConfig();
  rc.threeD = true;
  const RunResult result = runExperiment(rc, makeTagspin3D());
  bool anyElevated = false;
  for (const geom::Vec3& t : result.truths) {
    if (t.z > 0.05) anyElevated = true;
  }
  EXPECT_TRUE(anyElevated);
}

TEST(Runner, FailingEstimatorCountsFailures) {
  RunnerConfig rc = smallConfig();
  int calls = 0;
  const Estimator flaky = [&calls](const TrialContext&) -> geom::Vec3 {
    if (++calls % 2 == 1) throw std::runtime_error("no fix");
    return {0.0, 0.0, 0.0};
  };
  const RunResult result = runExperiment(rc, flaky);
  EXPECT_EQ(result.failedTrials, 2);
  EXPECT_EQ(result.errors.size(), 1u);
}

TEST(Runner, CalibrationPreludeProducesModelPerRig) {
  sim::ScenarioConfig sc;
  sc.seed = 9;
  sc.fixedChannel = true;
  const sim::World world = sim::makeTwoRigWorld(sc);
  const auto models = runCalibrationPrelude(world, 40.0);
  EXPECT_EQ(models.size(), 2u);
  for (const auto& [epc, model] : models) {
    EXPECT_FALSE(model.isIdentity());
    EXPECT_LT(model.fitResidual(), 0.6);
    // The fitted response has the expected magnitude (paper: ~0.7 rad p-p).
    double lo = 1e9, hi = -1e9;
    for (int i = 0; i < 72; ++i) {
      const double v = model.offsetAt(geom::kTwoPi * i / 72.0);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_GT(hi - lo, 0.3);
    EXPECT_LT(hi - lo, 1.2);
  }
}

TEST(Runner, ContextExposesOrientationModels) {
  RunnerConfig rc = smallConfig();
  rc.calibrateOrientation = true;
  rc.calibrationDurationS = 30.0;
  rc.trials = 1;
  size_t seen = 0;
  const Estimator probe = [&seen](const TrialContext& ctx) -> geom::Vec3 {
    seen = ctx.orientationModels.size();
    return ctx.truth;  // oracle: error 0
  };
  const RunResult result = runExperiment(rc, probe);
  EXPECT_EQ(seen, 2u);
  EXPECT_NEAR(result.summary.mean, 0.0, 1e-9);
}

}  // namespace
}  // namespace tagspin::eval
