#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tagspin::eval {
namespace {

TEST(Metrics, ErrorCm2D) {
  const ErrorCm e = errorCm(geom::Vec2{1.03, 2.04}, geom::Vec2{1.0, 2.0});
  EXPECT_NEAR(e.x, 3.0, 1e-9);
  EXPECT_NEAR(e.y, 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(e.z, 0.0);
  EXPECT_NEAR(e.combined, 5.0, 1e-9);
}

TEST(Metrics, ErrorCm3D) {
  const ErrorCm e =
      errorCm(geom::Vec3{1.0, 2.0, 0.12}, geom::Vec3{1.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(e.x, 0.0);
  EXPECT_NEAR(e.z, 12.0, 1e-9);
  EXPECT_NEAR(e.combined, 12.0, 1e-9);
}

TEST(Metrics, ErrorsAreAbsolute) {
  const ErrorCm e = errorCm(geom::Vec2{0.9, 1.9}, geom::Vec2{1.0, 2.0});
  EXPECT_GT(e.x, 0.0);
  EXPECT_GT(e.y, 0.0);
}

TEST(Metrics, ColumnAccessors) {
  const std::vector<ErrorCm> errors{
      errorCm(geom::Vec3{0.01, 0.0, 0.0}, geom::Vec3{}),
      errorCm(geom::Vec3{0.0, 0.02, 0.0}, geom::Vec3{}),
      errorCm(geom::Vec3{0.0, 0.0, 0.03}, geom::Vec3{})};
  EXPECT_EQ(xErrors(errors), (std::vector<double>{1.0, 0.0, 0.0}));
  EXPECT_EQ(yErrors(errors), (std::vector<double>{0.0, 2.0, 0.0}));
  EXPECT_EQ(zErrors(errors), (std::vector<double>{0.0, 0.0, 3.0}));
  const auto combined = combinedErrors(errors);
  EXPECT_NEAR(combined[0], 1.0, 1e-9);
  EXPECT_NEAR(combined[2], 3.0, 1e-9);
}

TEST(Metrics, SummarizeCombined) {
  const std::vector<ErrorCm> errors{
      errorCm(geom::Vec2{0.01, 0.0}, geom::Vec2{}),
      errorCm(geom::Vec2{0.03, 0.0}, geom::Vec2{})};
  const dsp::Summary s = summarizeCombined(errors);
  EXPECT_EQ(s.count, 2u);
  EXPECT_NEAR(s.mean, 2.0, 1e-9);
}

}  // namespace
}  // namespace tagspin::eval
