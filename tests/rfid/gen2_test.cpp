#include "rfid/gen2.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

namespace tagspin::rfid {
namespace {

TEST(InventoryEngine, SingleTagAlwaysHeard) {
  InventoryEngine engine;
  std::mt19937_64 rng(1);
  const std::vector<double> certain{1.0};
  int reads = 0;
  double t = 0.0;
  for (int round = 0; round < 50; ++round) {
    const RoundResult r = engine.runRound(t, certain, rng);
    reads += static_cast<int>(r.reads.size());
    EXPECT_EQ(r.collisions, 0);  // one tag can never collide
    t = r.endTimeS;
  }
  EXPECT_EQ(reads, 50);  // exactly one read per round
}

TEST(InventoryEngine, ZeroProbabilityNeverReads) {
  InventoryEngine engine;
  std::mt19937_64 rng(2);
  const std::vector<double> silent{0.0, 0.0, 0.0};
  for (int round = 0; round < 20; ++round) {
    const RoundResult r = engine.runRound(0.0, silent, rng);
    EXPECT_TRUE(r.reads.empty());
    EXPECT_EQ(r.collisions, 0);
    EXPECT_EQ(r.empties, r.slots);
  }
}

TEST(InventoryEngine, TimeAdvancesMonotonically) {
  InventoryEngine engine;
  std::mt19937_64 rng(3);
  const std::vector<double> probs{0.8, 0.8};
  double t = 5.0;
  for (int round = 0; round < 30; ++round) {
    const RoundResult r = engine.runRound(t, probs, rng);
    EXPECT_GT(r.endTimeS, t);
    double prev = t;
    for (const InventoryRead& read : r.reads) {
      EXPECT_GT(read.timeS, prev);
      EXPECT_LE(read.timeS, r.endTimeS);
      prev = read.timeS;
    }
    t = r.endTimeS;
  }
}

TEST(InventoryEngine, ReadTimesUseSlotDurations) {
  Gen2Config config;
  config.initialQ = 0.0;  // one slot per round
  config.qStep = 0.0001;  // effectively frozen
  InventoryEngine engine(config);
  std::mt19937_64 rng(4);
  const std::vector<double> one{1.0};
  const RoundResult r = engine.runRound(0.0, one, rng);
  ASSERT_EQ(r.reads.size(), 1u);
  EXPECT_DOUBLE_EQ(r.reads[0].timeS, config.singletonSlotS);
}

TEST(InventoryEngine, CollisionsRaiseQ) {
  Gen2Config config;
  config.initialQ = 0.0;  // 1 slot, 8 eager tags: guaranteed collision
  InventoryEngine engine(config);
  std::mt19937_64 rng(5);
  const std::vector<double> many(8, 1.0);
  const double q0 = engine.qfp();
  engine.runRound(0.0, many, rng);
  EXPECT_GT(engine.qfp(), q0);
}

TEST(InventoryEngine, EmptiesLowerQ) {
  Gen2Config config;
  config.initialQ = 6.0;  // 64 slots for one shy tag: mostly empties
  InventoryEngine engine(config);
  std::mt19937_64 rng(6);
  const std::vector<double> shy{0.1};
  engine.runRound(0.0, shy, rng);
  EXPECT_LT(engine.qfp(), 6.0);
}

TEST(InventoryEngine, QStaysInBounds) {
  Gen2Config config;
  config.qMin = 1.0;
  config.qMax = 4.0;
  config.initialQ = 2.0;
  InventoryEngine engine(config);
  std::mt19937_64 rng(7);
  const std::vector<double> many(32, 1.0);
  const std::vector<double> none(32, 0.0);
  for (int i = 0; i < 40; ++i) engine.runRound(0.0, many, rng);
  EXPECT_LE(engine.qfp(), 4.0);
  for (int i = 0; i < 40; ++i) engine.runRound(0.0, none, rng);
  EXPECT_GE(engine.qfp(), 1.0);
}

// Throughput property: with the Q algorithm adapting, every tag population
// gets read, and higher-probability tags are read more often.
class PopulationSweep : public ::testing::TestWithParam<int> {};

TEST_P(PopulationSweep, AllTagsEventuallyRead) {
  const int nTags = GetParam();
  InventoryEngine engine;
  std::mt19937_64 rng(static_cast<uint64_t>(nTags));
  const std::vector<double> probs(static_cast<size_t>(nTags), 0.9);
  std::vector<int> counts(static_cast<size_t>(nTags), 0);
  double t = 0.0;
  while (t < 20.0) {
    const RoundResult r = engine.runRound(t, probs, rng);
    for (const InventoryRead& read : r.reads) counts[read.tagIndex]++;
    t = std::max(r.endTimeS, t + 1e-9);
  }
  for (int i = 0; i < nTags; ++i) {
    EXPECT_GT(counts[static_cast<size_t>(i)], 0) << "tag " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(TagCounts, PopulationSweep,
                         ::testing::Values(1, 2, 5, 16, 40));

TEST(InventoryEngine, ReplyProbabilityShapesReadShare) {
  InventoryEngine engine;
  std::mt19937_64 rng(8);
  const std::vector<double> probs{1.0, 0.25};
  std::vector<int> counts{0, 0};
  double t = 0.0;
  while (t < 30.0) {
    const RoundResult r = engine.runRound(t, probs, rng);
    for (const InventoryRead& read : r.reads) counts[read.tagIndex]++;
    t = std::max(r.endTimeS, t + 1e-9);
  }
  // The eager tag is read several times more often than the shy one.
  EXPECT_GT(counts[0], counts[1] * 2);
  EXPECT_GT(counts[1], 0);
}

TEST(InventoryEngine, Validation) {
  Gen2Config bad;
  bad.initialQ = 99.0;
  EXPECT_THROW(InventoryEngine{bad}, std::invalid_argument);
  Gen2Config bad2;
  bad2.qStep = 0.0;
  EXPECT_THROW(InventoryEngine{bad2}, std::invalid_argument);
}

}  // namespace
}  // namespace tagspin::rfid
