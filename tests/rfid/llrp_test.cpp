#include "rfid/llrp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>

#include "geom/angles.hpp"
#include "rf/constants.hpp"

namespace tagspin::rfid::llrp {
namespace {

TagReport sample(uint32_t tag = 7) {
  TagReport r;
  r.epc = Epc::forSimulatedTag(tag);
  r.timestampS = 12.345678;
  r.phaseRad = 2.468;
  r.rssiDbm = -53.21;
  r.channelIndex = 11;
  r.frequencyHz = rf::mhz(923.375);
  r.antennaPort = 2;
  return r;
}

TEST(Llrp, MessageSizeFixed) {
  EXPECT_EQ(encodeReport(sample()).size(), kMessageSize);
}

TEST(Llrp, RoundTripWithinWireResolution) {
  const TagReport r = sample();
  const TagReport d = decodeReport(encodeReport(r));
  EXPECT_EQ(d.epc, r.epc);
  EXPECT_NEAR(d.timestampS, r.timestampS, 1e-6);       // microsecond clock
  EXPECT_NEAR(d.phaseRad, r.phaseRad, phaseResolutionRad());
  EXPECT_NEAR(d.rssiDbm, r.rssiDbm, 0.01);             // centi-dBm
  EXPECT_EQ(d.channelIndex, r.channelIndex);
  EXPECT_NEAR(d.frequencyHz, r.frequencyHz, 500.0);    // kHz resolution
  EXPECT_EQ(d.antennaPort, r.antennaPort);
}

TEST(Llrp, PhaseQuantisationIsTwelveBits) {
  EXPECT_NEAR(phaseResolutionRad(), geom::kTwoPi / 4096.0, 1e-15);
  TagReport r = sample();
  r.phaseRad = phaseResolutionRad() * 0.4;  // rounds down to bin 0
  EXPECT_NEAR(decodeReport(encodeReport(r)).phaseRad, 0.0, 1e-12);
  r.phaseRad = phaseResolutionRad() * 0.6;  // rounds up to bin 1
  EXPECT_NEAR(decodeReport(encodeReport(r)).phaseRad, phaseResolutionRad(),
              1e-12);
}

TEST(Llrp, PhaseWrapHandled) {
  TagReport r = sample();
  r.phaseRad = geom::kTwoPi - 1e-9;  // quantises to bin 4096 == bin 0
  const TagReport d = decodeReport(encodeReport(r));
  EXPECT_NEAR(d.phaseRad, 0.0, 1e-9);
  r.phaseRad = -1.0;  // encoder wraps negatives
  EXPECT_NEAR(decodeReport(encodeReport(r)).phaseRad,
              geom::kTwoPi - 1.0, phaseResolutionRad());
}

TEST(Llrp, NegativeRssiSurvives) {
  TagReport r = sample();
  r.rssiDbm = -84.37;
  EXPECT_NEAR(decodeReport(encodeReport(r)).rssiDbm, -84.37, 0.01);
}

TEST(Llrp, StreamRoundTrip) {
  ReportStream stream;
  for (uint32_t i = 0; i < 20; ++i) {
    TagReport r = sample(i);
    r.timestampS = 0.01 * i;
    stream.push_back(r);
  }
  const ReportStream decoded = decodeStream(encodeStream(stream));
  ASSERT_EQ(decoded.size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(decoded[i].epc, stream[i].epc);
    EXPECT_NEAR(decoded[i].timestampS, stream[i].timestampS, 1e-6);
  }
}

TEST(Llrp, RejectsMalformedInput) {
  std::vector<uint8_t> msg = encodeReport(sample());
  EXPECT_THROW(decodeReport(std::span<const uint8_t>(msg).first(10)),
               std::invalid_argument);
  msg[0] = 0xFF;  // wrong type
  EXPECT_THROW(decodeReport(msg), std::invalid_argument);

  std::vector<uint8_t> stream = encodeStream({sample()});
  stream.pop_back();  // not a whole message
  EXPECT_THROW(decodeStream(stream), std::invalid_argument);
}

TEST(Llrp, EmptyStream) {
  EXPECT_TRUE(encodeStream({}).empty());
  EXPECT_TRUE(decodeStream({}).empty());
}

TEST(Llrp, ErrorMessagesNameByteOffsets) {
  std::vector<uint8_t> msg = encodeReport(sample());
  msg[2] = 0x7F;  // bad version
  try {
    decodeReport(msg);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("byte offset 2"), std::string::npos)
        << e.what();
  }
  // The stream decoder appends the stream offset of the bad message.
  ReportStream two{sample(0), sample(1)};
  std::vector<uint8_t> stream = encodeStream(two);
  stream[kMessageSize + 2] = 0x7F;
  try {
    decodeStream(stream);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "stream offset " + std::to_string(kMessageSize)),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Tolerant decoder: clean-path regression + deterministic corruption corpus.
// ---------------------------------------------------------------------------

ReportStream corpusStream(size_t frames) {
  ReportStream stream;
  for (uint32_t i = 0; i < frames; ++i) {
    TagReport r = sample(i % 5);
    r.timestampS = 0.0371 * i;
    r.phaseRad = geom::wrapTwoPi(0.13 * i);
    r.rssiDbm = -60.0 + 0.1 * static_cast<double>(i % 100);
    stream.push_back(r);
  }
  return stream;
}

/// A decoded report is genuine iff its re-encoding byte-matches one of the
/// original frames (the wire format round-trips exactly from decoded
/// values); anything else is a phantom assembled from torn halves.
bool matchesSomeFrame(const TagReport& decoded,
                      const std::vector<uint8_t>& originalBytes) {
  const std::vector<uint8_t> enc = encodeReport(decoded);
  for (size_t at = 0; at + kMessageSize <= originalBytes.size();
       at += kMessageSize) {
    if (std::equal(enc.begin(), enc.end(), originalBytes.begin() + at)) {
      return true;
    }
  }
  return false;
}

TEST(LlrpTolerant, BitIdenticalToStrictOnCleanStream) {
  const ReportStream stream = corpusStream(64);
  const std::vector<uint8_t> bytes = encodeStream(stream);
  const ReportStream strict = decodeStream(bytes);
  DecodeStats stats;
  const ReportStream tolerant = decodeStreamTolerant(bytes, &stats);
  ASSERT_EQ(tolerant.size(), strict.size());
  for (size_t i = 0; i < strict.size(); ++i) {
    EXPECT_EQ(encodeReport(tolerant[i]), encodeReport(strict[i])) << i;
  }
  EXPECT_EQ(stats.framesDecoded, stream.size());
  EXPECT_EQ(stats.framesSkipped, 0u);
  EXPECT_EQ(stats.framesRejected, 0u);
  EXPECT_EQ(stats.bytesResynced, 0u);
  EXPECT_EQ(stats.bytesTotal, bytes.size());
}

TEST(LlrpTolerant, TruncationAtEveryByteOffsetNeverPhantoms) {
  const std::vector<uint8_t> bytes = encodeStream(corpusStream(50));
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::span<const uint8_t> prefix(bytes.data(), cut);
    DecodeStats stats;
    const ReportStream decoded = decodeStreamTolerant(prefix, &stats);
    // Every whole frame before the cut survives; the torn tail never
    // produces a report.
    ASSERT_EQ(decoded.size(), cut / kMessageSize) << "cut at " << cut;
    for (const TagReport& r : decoded) {
      ASSERT_TRUE(matchesSomeFrame(r, bytes)) << "phantom at cut " << cut;
    }
    EXPECT_EQ(stats.bytesResynced, cut % kMessageSize);
  }
}

TEST(LlrpTolerant, MidStreamSpliceBoundsTheDamage) {
  // Removing a byte range mid-stream splices two torn frames together.  A
  // splice whose length is NOT a frame multiple misaligns every field, and
  // the chimera is rejected (embedded header magic / implausible payload).
  // A frame-multiple splice (40, 80 bytes) glues the head of frame K onto
  // the tail of frame K+n *at the original field offsets*: every byte of
  // that hybrid comes from a genuine frame, so without a frame CRC it is
  // indistinguishable from a real report (when the tear lands inside the
  // EPC field even the identity is a mix of two genuine EPCs; downstream,
  // an unknown EPC is simply absent from the rig registry and ignored).
  // The guarantee tested here is bounded damage: at most ONE hybrid per
  // splice, and no avalanche -- all untouched frames survive.
  const ReportStream corpus = corpusStream(30);
  const std::vector<uint8_t> bytes = encodeStream(corpus);
  size_t totalIntact = 0;
  size_t totalRecovered = 0;
  for (size_t at = 0; at + 1 < bytes.size(); at += 11) {
    for (size_t len : {1u, 7u, 39u, 40u, 53u, 80u}) {
      if (at + len > bytes.size()) continue;
      // Remove bytes [at, at+len): a torn write splicing the stream.
      std::vector<uint8_t> spliced(bytes.begin(),
                                   bytes.begin() + static_cast<long>(at));
      spliced.insert(spliced.end(),
                     bytes.begin() + static_cast<long>(at + len), bytes.end());
      const ReportStream decoded = decodeStreamTolerant(spliced);
      size_t hybrids = 0;
      for (const TagReport& r : decoded) {
        if (!matchesSomeFrame(r, bytes)) ++hybrids;
      }
      ASSERT_LE(hybrids, len % kMessageSize == 0 ? 1u : 0u)
          << "splice [" << at << ", " << at + len << ")";
      // Frames untouched by the splice must all survive.
      const size_t cutFirst = at / kMessageSize;
      const size_t cutLast = (at + len - 1) / kMessageSize;
      const size_t intact =
          bytes.size() / kMessageSize - (cutLast - cutFirst + 1);
      totalIntact += intact;
      totalRecovered += decoded.size();
      ASSERT_GE(decoded.size(), intact)
          << "splice [" << at << ", " << at + len << ")";
    }
  }
  EXPECT_GE(totalRecovered, totalIntact);
}

TEST(LlrpTolerant, SeededBitFlipCorpusRecoversIntactFrames) {
  const ReportStream stream = corpusStream(60);
  const std::vector<uint8_t> bytes = encodeStream(stream);
  std::mt19937_64 rng(0xC0FFEE);
  size_t intactTotal = 0;
  size_t intactRecovered = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<uint8_t> dirty = bytes;
    std::vector<bool> frameTouched(stream.size(), false);
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      const size_t bit = rng() % (dirty.size() * 8);
      dirty[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      frameTouched[bit / 8 / kMessageSize] = true;
    }
    ReportStream decoded;
    ASSERT_NO_THROW(decoded = decodeStreamTolerant(dirty));
    ASSERT_LE(decoded.size(), stream.size());
    // Count the untouched frames that made it through unaltered.
    size_t nextMatch = 0;
    for (size_t i = 0; i < stream.size(); ++i) {
      if (frameTouched[i]) continue;
      ++intactTotal;
      const std::vector<uint8_t> want = encodeReport(stream[i]);
      for (size_t k = nextMatch; k < decoded.size(); ++k) {
        if (encodeReport(decoded[k]) == want) {
          ++intactRecovered;
          nextMatch = k + 1;
          break;
        }
      }
    }
  }
  ASSERT_GT(intactTotal, 0u);
  EXPECT_GE(static_cast<double>(intactRecovered),
            0.99 * static_cast<double>(intactTotal))
      << intactRecovered << " of " << intactTotal;
}

TEST(LlrpTolerant, TruncatedFramePrefixIsRejectedNotChimera) {
  // A frame torn after 20 bytes followed by an intact frame: the torn
  // frame's surviving header must not swallow the intact frame's bytes.
  const ReportStream stream = corpusStream(3);
  const std::vector<uint8_t> bytes = encodeStream(stream);
  std::vector<uint8_t> torn(bytes.begin(), bytes.begin() + 20);
  torn.insert(torn.end(), bytes.begin() + kMessageSize, bytes.end());
  DecodeStats stats;
  const ReportStream decoded = decodeStreamTolerant(torn, &stats);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(encodeReport(decoded[0]), encodeReport(stream[1]));
  EXPECT_EQ(encodeReport(decoded[1]), encodeReport(stream[2]));
  EXPECT_EQ(stats.framesRejected, 1u);
  EXPECT_EQ(stats.bytesResynced, 20u);
}

TEST(LlrpTolerant, ImplausiblePayloadIsRejected) {
  TagReport r = sample();
  r.frequencyHz = 0.0;  // no carrier: physically impossible report
  std::vector<uint8_t> bytes = encodeReport(r);
  EXPECT_TRUE(decodeStreamTolerant(bytes).empty());
  DecodeStats stats;
  decodeStreamTolerant(bytes, &stats);
  EXPECT_EQ(stats.framesRejected, 1u);
}

/// A dirty stream exercising every stats field: junk prefix, clean frames,
/// a mid-stream splice, more frames, and a torn trailing frame.
std::vector<uint8_t> dirtyStream() {
  std::vector<uint8_t> bytes(13, 0x5A);
  const std::vector<uint8_t> first = encodeStream(corpusStream(6));
  bytes.insert(bytes.end(), first.begin(), first.end());
  bytes.insert(bytes.end(), 9, 0xC3);
  ReportStream later = corpusStream(5);
  for (TagReport& r : later) r.timestampS += 1.0;
  const std::vector<uint8_t> second = encodeStream(later);
  bytes.insert(bytes.end(), second.begin(), second.end());
  bytes.insert(bytes.end(), second.begin(), second.begin() + 17);  // torn
  return bytes;
}

TEST(LlrpTolerant, StatsAreOverwrittenPerInvocationNotAccumulated) {
  // Regression: a caller reusing one DecodeStats across polls must see
  // each invocation's accounting, not a running total.
  const std::vector<uint8_t> dirty = dirtyStream();
  DecodeStats stats;
  decodeStreamTolerant(dirty, &stats);
  const DecodeStats first = stats;
  EXPECT_GT(first.framesDecoded, 0u);
  EXPECT_GT(first.bytesResynced, 0u);

  decodeStreamTolerant(dirty, &stats);
  EXPECT_EQ(stats.framesDecoded, first.framesDecoded);
  EXPECT_EQ(stats.framesSkipped, first.framesSkipped);
  EXPECT_EQ(stats.framesRejected, first.framesRejected);
  EXPECT_EQ(stats.bytesResynced, first.bytesResynced);
  EXPECT_EQ(stats.bytesTotal, first.bytesTotal);

  // A clean stream through the same struct reports only the clean pass.
  const std::vector<uint8_t> clean = encodeStream(corpusStream(4));
  decodeStreamTolerant(clean, &stats);
  EXPECT_EQ(stats.framesDecoded, 4u);
  EXPECT_EQ(stats.bytesResynced, 0u);
  EXPECT_EQ(stats.bytesTotal, clean.size());
}

TEST(LlrpTolerant, IncrementalDecoderMatchesBatchAcrossChunkings) {
  const std::vector<uint8_t> dirty = dirtyStream();
  DecodeStats batchStats;
  const ReportStream batch = decodeStreamTolerant(dirty, &batchStats);

  // Any chunking (byte-by-byte, sub-frame, frame-misaligned, one-shot)
  // followed by finish() must reproduce the batch decode exactly.
  for (const size_t chunk : {size_t(1), size_t(7), size_t(39), size_t(41),
                             size_t(64), dirty.size()}) {
    TolerantStreamDecoder decoder;
    ReportStream fed;
    for (size_t at = 0; at < dirty.size(); at += chunk) {
      const size_t len = std::min(chunk, dirty.size() - at);
      const ReportStream part =
          decoder.feed(std::span<const uint8_t>(dirty.data() + at, len));
      fed.insert(fed.end(), part.begin(), part.end());
    }
    decoder.finish();
    EXPECT_EQ(decoder.pendingBytes(), 0u) << "chunk " << chunk;

    ASSERT_EQ(fed.size(), batch.size()) << "chunk " << chunk;
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(encodeReport(fed[i]), encodeReport(batch[i]))
          << "chunk " << chunk << " report " << i;
    }
    EXPECT_EQ(decoder.stats().framesDecoded, batchStats.framesDecoded);
    EXPECT_EQ(decoder.stats().framesSkipped, batchStats.framesSkipped);
    EXPECT_EQ(decoder.stats().framesRejected, batchStats.framesRejected);
    EXPECT_EQ(decoder.stats().bytesResynced, batchStats.bytesResynced);
    EXPECT_EQ(decoder.stats().bytesTotal, batchStats.bytesTotal);
  }
}

}  // namespace
}  // namespace tagspin::rfid::llrp
