#include "rfid/llrp.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "geom/angles.hpp"
#include "rf/constants.hpp"

namespace tagspin::rfid::llrp {
namespace {

TagReport sample(uint32_t tag = 7) {
  TagReport r;
  r.epc = Epc::forSimulatedTag(tag);
  r.timestampS = 12.345678;
  r.phaseRad = 2.468;
  r.rssiDbm = -53.21;
  r.channelIndex = 11;
  r.frequencyHz = rf::mhz(923.375);
  r.antennaPort = 2;
  return r;
}

TEST(Llrp, MessageSizeFixed) {
  EXPECT_EQ(encodeReport(sample()).size(), kMessageSize);
}

TEST(Llrp, RoundTripWithinWireResolution) {
  const TagReport r = sample();
  const TagReport d = decodeReport(encodeReport(r));
  EXPECT_EQ(d.epc, r.epc);
  EXPECT_NEAR(d.timestampS, r.timestampS, 1e-6);       // microsecond clock
  EXPECT_NEAR(d.phaseRad, r.phaseRad, phaseResolutionRad());
  EXPECT_NEAR(d.rssiDbm, r.rssiDbm, 0.01);             // centi-dBm
  EXPECT_EQ(d.channelIndex, r.channelIndex);
  EXPECT_NEAR(d.frequencyHz, r.frequencyHz, 500.0);    // kHz resolution
  EXPECT_EQ(d.antennaPort, r.antennaPort);
}

TEST(Llrp, PhaseQuantisationIsTwelveBits) {
  EXPECT_NEAR(phaseResolutionRad(), geom::kTwoPi / 4096.0, 1e-15);
  TagReport r = sample();
  r.phaseRad = phaseResolutionRad() * 0.4;  // rounds down to bin 0
  EXPECT_NEAR(decodeReport(encodeReport(r)).phaseRad, 0.0, 1e-12);
  r.phaseRad = phaseResolutionRad() * 0.6;  // rounds up to bin 1
  EXPECT_NEAR(decodeReport(encodeReport(r)).phaseRad, phaseResolutionRad(),
              1e-12);
}

TEST(Llrp, PhaseWrapHandled) {
  TagReport r = sample();
  r.phaseRad = geom::kTwoPi - 1e-9;  // quantises to bin 4096 == bin 0
  const TagReport d = decodeReport(encodeReport(r));
  EXPECT_NEAR(d.phaseRad, 0.0, 1e-9);
  r.phaseRad = -1.0;  // encoder wraps negatives
  EXPECT_NEAR(decodeReport(encodeReport(r)).phaseRad,
              geom::kTwoPi - 1.0, phaseResolutionRad());
}

TEST(Llrp, NegativeRssiSurvives) {
  TagReport r = sample();
  r.rssiDbm = -84.37;
  EXPECT_NEAR(decodeReport(encodeReport(r)).rssiDbm, -84.37, 0.01);
}

TEST(Llrp, StreamRoundTrip) {
  ReportStream stream;
  for (uint32_t i = 0; i < 20; ++i) {
    TagReport r = sample(i);
    r.timestampS = 0.01 * i;
    stream.push_back(r);
  }
  const ReportStream decoded = decodeStream(encodeStream(stream));
  ASSERT_EQ(decoded.size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(decoded[i].epc, stream[i].epc);
    EXPECT_NEAR(decoded[i].timestampS, stream[i].timestampS, 1e-6);
  }
}

TEST(Llrp, RejectsMalformedInput) {
  std::vector<uint8_t> msg = encodeReport(sample());
  EXPECT_THROW(decodeReport(std::span<const uint8_t>(msg).first(10)),
               std::invalid_argument);
  msg[0] = 0xFF;  // wrong type
  EXPECT_THROW(decodeReport(msg), std::invalid_argument);

  std::vector<uint8_t> stream = encodeStream({sample()});
  stream.pop_back();  // not a whole message
  EXPECT_THROW(decodeStream(stream), std::invalid_argument);
}

TEST(Llrp, EmptyStream) {
  EXPECT_TRUE(encodeStream({}).empty());
  EXPECT_TRUE(decodeStream({}).empty());
}

}  // namespace
}  // namespace tagspin::rfid::llrp
