#include "rfid/tag_models.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tagspin::rfid {
namespace {

TEST(TagModels, FiveModelsInTableOrder) {
  const auto models = allTagModels();
  ASSERT_EQ(models.size(), 5u);
  EXPECT_EQ(models[0].id, TagModelId::kSquig);
  EXPECT_EQ(models[1].id, TagModelId::kSquare);
  EXPECT_EQ(models[2].id, TagModelId::kSquiglette);
  EXPECT_EQ(models[3].id, TagModelId::kTwoByTwo);
  EXPECT_EQ(models[4].id, TagModelId::kShort);
}

TEST(TagModels, AllFromAlienWithHiggsChips) {
  for (const TagModel& m : allTagModels()) {
    EXPECT_EQ(m.company, "Alien");
    EXPECT_TRUE(m.chip.find("Higgs") != std::string::npos) << m.name;
  }
}

TEST(TagModels, PhysicallySensibleParameters) {
  for (const TagModel& m : allTagModels()) {
    EXPECT_GT(m.widthMm, 0.0);
    EXPECT_GT(m.heightMm, 0.0);
    EXPECT_GT(m.tableQuantity, 0);
    // Orientation amplitude near the paper's ~0.7 rad figure.
    EXPECT_GT(m.orientationAmplitude, 0.4) << m.name;
    EXPECT_LT(m.orientationAmplitude, 1.0) << m.name;
    EXPECT_GT(m.gainExponent, 0.0);
    EXPECT_LT(std::abs(m.sensitivityOffsetDb), 6.0);
  }
}

TEST(TagModels, FleetAverageNearPaperAmplitude) {
  double acc = 0.0;
  for (const TagModel& m : allTagModels()) acc += m.orientationAmplitude;
  EXPECT_NEAR(acc / 5.0, 0.7, 0.07);
}

TEST(TagModels, LookupById) {
  EXPECT_EQ(tagModel(TagModelId::kShort).chip, "Higgs-4");
  EXPECT_EQ(tagModel(TagModelId::kSquig).name, "Squig (AZ-9640)");
}

TEST(TagModels, DistinctNames) {
  std::set<std::string> names;
  for (const TagModel& m : allTagModels()) names.insert(m.name);
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace tagspin::rfid
