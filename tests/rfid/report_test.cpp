#include "rfid/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "rf/constants.hpp"
#include "rfid/reader.hpp"

namespace tagspin::rfid {
namespace {

TagReport makeReport(uint32_t tagIndex, double t, int antenna = 0) {
  TagReport r;
  r.epc = Epc::forSimulatedTag(tagIndex);
  r.timestampS = t;
  r.phaseRad = 1.234567;
  r.rssiDbm = -52.5;
  r.channelIndex = 3;
  r.frequencyHz = rf::mhz(921.375);
  r.antennaPort = antenna;
  return r;
}

TEST(TagReport, WavelengthFromFrequency) {
  const TagReport r = makeReport(1, 0.0);
  EXPECT_NEAR(r.wavelengthM(), 0.3254, 5e-4);
  TagReport bad = r;
  bad.frequencyHz = 0.0;
  EXPECT_THROW(bad.wavelengthM(), std::logic_error);
}

TEST(TagReport, CsvRoundTrip) {
  const TagReport r = makeReport(42, 12.3456789, 2);
  const TagReport parsed = fromCsvLine(toCsvLine(r));
  EXPECT_EQ(parsed.epc, r.epc);
  EXPECT_NEAR(parsed.timestampS, r.timestampS, 1e-9);
  EXPECT_NEAR(parsed.phaseRad, r.phaseRad, 1e-9);
  EXPECT_NEAR(parsed.rssiDbm, r.rssiDbm, 1e-3);
  EXPECT_EQ(parsed.channelIndex, r.channelIndex);
  EXPECT_NEAR(parsed.frequencyHz, r.frequencyHz, 0.5);
  EXPECT_EQ(parsed.antennaPort, r.antennaPort);
}

TEST(TagReport, CsvRejectsGarbage) {
  EXPECT_THROW(fromCsvLine("not,a,report"), std::invalid_argument);
  EXPECT_THROW(fromCsvLine(""), std::invalid_argument);
}

TEST(TagReport, CsvHeaderFieldCountMatchesLine) {
  const std::string header = csvHeader();
  const std::string line = toCsvLine(makeReport(1, 1.0));
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(commas(header), commas(line));
}

TEST(Filters, ByEpcAndAntenna) {
  ReportStream all;
  all.push_back(makeReport(1, 0.0, 0));
  all.push_back(makeReport(2, 0.1, 0));
  all.push_back(makeReport(1, 0.2, 1));
  all.push_back(makeReport(1, 0.3, 0));

  const ReportStream tag1 = filterByEpc(all, Epc::forSimulatedTag(1));
  EXPECT_EQ(tag1.size(), 3u);
  const ReportStream port1 = filterByAntenna(all, 1);
  ASSERT_EQ(port1.size(), 1u);
  EXPECT_DOUBLE_EQ(port1[0].timestampS, 0.2);
  EXPECT_TRUE(filterByEpc(all, Epc::forSimulatedTag(9)).empty());
}

TEST(ReaderDevice, MakeWithAntennas) {
  const ReaderDevice dev = ReaderDevice::makeWithAntennas(4);
  EXPECT_EQ(dev.antennaCount(), 4);
  // Distinct port phases (the diversity the antennas contribute).
  EXPECT_NE(dev.antenna(0).cableAndPortPhase,
            dev.antenna(3).cableAndPortPhase);
  EXPECT_THROW(ReaderDevice::makeWithAntennas(0), std::invalid_argument);
  EXPECT_THROW(ReaderDevice::makeWithAntennas(5), std::invalid_argument);
  EXPECT_THROW(dev.antenna(4), std::out_of_range);
}

TEST(ReaderDevice, DefaultUsesChinaBand) {
  const ReaderDevice dev = ReaderDevice::makeDefault();
  EXPECT_EQ(dev.plan.channelCount(), 16);
  EXPECT_DOUBLE_EQ(dev.hopDwellS, 2.0);
}

}  // namespace
}  // namespace tagspin::rfid
