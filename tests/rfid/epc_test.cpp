#include "rfid/epc.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <unordered_set>

namespace tagspin::rfid {
namespace {

TEST(Epc, HexRoundTrip) {
  const Epc e{0x0123456789ABCDEFULL, 0xDEADBEEFu};
  const std::string hex = e.toHex();
  EXPECT_EQ(hex, "0123456789ABCDEFDEADBEEF");
  EXPECT_EQ(Epc::fromHex(hex), e);
}

TEST(Epc, FromHexAcceptsSeparators) {
  const Epc e = Epc::fromHex("0123-4567 89AB-CDEF DEAD-BEEF");
  EXPECT_EQ(e.toHex(), "0123456789ABCDEFDEADBEEF");
}

TEST(Epc, FromHexLowerCase) {
  EXPECT_EQ(Epc::fromHex("0123456789abcdefdeadbeef").toHex(),
            "0123456789ABCDEFDEADBEEF");
}

TEST(Epc, FromHexRejectsBadInput) {
  EXPECT_THROW(Epc::fromHex("123"), std::invalid_argument);  // too short
  EXPECT_THROW(Epc::fromHex("0123456789ABCDEFDEADBEEF00"),
               std::invalid_argument);  // too long
  EXPECT_THROW(Epc::fromHex("0123456789ABCDEFDEADBEEG"),
               std::invalid_argument);  // non-hex
}

TEST(Epc, DefaultIsZero) {
  EXPECT_EQ(Epc{}.toHex(), "000000000000000000000000");
}

TEST(Epc, Ordering) {
  const Epc a{1, 0};
  const Epc b{1, 1};
  const Epc c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (Epc{1, 0}));
}

TEST(Epc, SimulatedTagsAreDistinct) {
  std::set<Epc> seen;
  for (uint32_t i = 0; i < 2000; ++i) {
    seen.insert(Epc::forSimulatedTag(i));
  }
  EXPECT_EQ(seen.size(), 2000u);
}

TEST(Epc, Hashable) {
  std::unordered_set<Epc> set;
  set.insert(Epc::forSimulatedTag(1));
  set.insert(Epc::forSimulatedTag(2));
  set.insert(Epc::forSimulatedTag(1));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace tagspin::rfid
