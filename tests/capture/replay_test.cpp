#include "capture/replay.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <numbers>
#include <string>

#include "capture/digest.hpp"
#include "capture/record.hpp"
#include "capture/writer.hpp"
#include "rfid/llrp.hpp"

namespace tagspin::capture {
namespace {

using runtime::TransportStatus;

TimedReport quantizedReport(uint32_t tag, int64_t readerUs,
                            int64_t deliveryUs) {
  TimedReport tr;
  tr.report.epc = rfid::Epc::forSimulatedTag(tag);
  tr.report.timestampS = static_cast<double>(readerUs) / 1e6;
  tr.report.phaseRad = static_cast<double>((tag * 991) % 4096) / 4096.0 * 2.0 *
                       std::numbers::pi;
  tr.report.rssiDbm = -61.0;
  tr.report.channelIndex = 12;
  tr.report.frequencyHz = 908.75e6;
  tr.report.antennaPort = static_cast<int>(tag % 4);
  tr.deliveryS = static_cast<double>(deliveryUs) / 1e6;
  return tr;
}

// Three reports delivered at 10.0s, 10.5s, 11.0s of capture time.
std::shared_ptr<const ReplayStream> threeFrameStream() {
  TimedStream s;
  s.push_back(quantizedReport(0, 10'000'000, 10'000'000));
  s.push_back(quantizedReport(1, 10'400'000, 10'500'000));
  s.push_back(quantizedReport(2, 10'900'000, 11'000'000));
  return makeReplayStream(std::move(s));
}

TEST(ReplayStream, WireAndReleaseOffsetsMatchTheCapture) {
  const auto stream = threeFrameStream();
  ASSERT_EQ(stream->timed.size(), 3u);
  EXPECT_EQ(stream->wire.size(), 3u * rfid::llrp::kMessageSize);
  ASSERT_EQ(stream->releaseS.size(), 3u);
  EXPECT_DOUBLE_EQ(stream->releaseS[0], 0.0);
  EXPECT_DOUBLE_EQ(stream->releaseS[1], 0.5);
  EXPECT_DOUBLE_EQ(stream->releaseS[2], 1.0);

  // The wire image is the exact LLRP encoding, frame by frame.
  const rfid::ReportStream decoded = rfid::llrp::decodeStream(stream->wire);
  EXPECT_EQ(streamDigest(decoded), streamDigest(stripTiming(stream->timed)));
}

TEST(ReplayTransport, ReleasesFramesAgainstThePolledClock) {
  ReplayTransport t(threeFrameStream());

  // Not connected yet: polls report a closed transport.
  EXPECT_EQ(t.poll(0.0).status, TransportStatus::kClosed);

  ASSERT_TRUE(t.connect(5.0));  // epoch anchors here
  runtime::TransportRead read = t.poll(5.0);
  EXPECT_EQ(read.status, TransportStatus::kOk);
  EXPECT_EQ(read.bytes.size(), rfid::llrp::kMessageSize);  // frame 0 only
  EXPECT_EQ(t.framesDelivered(), 1u);

  EXPECT_EQ(t.poll(5.3).status, TransportStatus::kIdle);

  read = t.poll(5.5);  // release 0.5 due
  EXPECT_EQ(read.status, TransportStatus::kOk);
  EXPECT_EQ(read.bytes.size(), rfid::llrp::kMessageSize);
  EXPECT_FALSE(t.exhausted());

  read = t.poll(50.0);  // everything else
  EXPECT_EQ(read.status, TransportStatus::kOk);
  EXPECT_EQ(read.bytes.size(), rfid::llrp::kMessageSize);
  EXPECT_TRUE(t.exhausted());
  EXPECT_EQ(t.framesDelivered(), 3u);

  // Exhausted replays idle forever; the session just sees silence.
  EXPECT_EQ(t.poll(100.0).status, TransportStatus::kIdle);
}

TEST(ReplayTransport, SpeedCompressesTheSchedule) {
  ReplayTransport t(threeFrameStream(), {.speed = 2.0});
  ASSERT_TRUE(t.connect(0.0));
  // 0.5s of tick time covers 1.0s of capture time: all three frames.
  const runtime::TransportRead read = t.poll(0.5);
  EXPECT_EQ(read.status, TransportStatus::kOk);
  EXPECT_EQ(read.bytes.size(), 3u * rfid::llrp::kMessageSize);
  EXPECT_TRUE(t.exhausted());
}

TEST(ReplayTransport, NonPositiveSpeedDumpsEverythingAtOnce) {
  ReplayTransport t(threeFrameStream(), {.speed = 0.0});
  ASSERT_TRUE(t.connect(1000.0));
  EXPECT_EQ(t.poll(1000.0).bytes.size(), 3u * rfid::llrp::kMessageSize);
  EXPECT_TRUE(t.exhausted());
}

TEST(ReplayTransport, ConnectDelayGatesTheFirstFrame) {
  ReplayTransport t(threeFrameStream(), {.speed = 1.0, .connectDelayS = 0.5});
  EXPECT_FALSE(t.connect(1.0));
  EXPECT_FALSE(t.connect(1.4));
  EXPECT_EQ(t.poll(1.4).status, TransportStatus::kClosed);
  ASSERT_TRUE(t.connect(1.5));  // epoch anchors at 1.5, not 1.0
  EXPECT_EQ(t.poll(1.5).bytes.size(), rfid::llrp::kMessageSize);
  EXPECT_EQ(t.poll(1.9).status, TransportStatus::kIdle);
  EXPECT_EQ(t.poll(2.0).bytes.size(), rfid::llrp::kMessageSize);
}

TEST(ReplayTransport, ReconnectDoesNotRewindTheSchedule) {
  ReplayTransport t(threeFrameStream());
  ASSERT_TRUE(t.connect(10.0));
  EXPECT_EQ(t.poll(10.0).bytes.size(), rfid::llrp::kMessageSize);

  // Drop the connection across the 0.5 release; the schedule keeps running
  // while disconnected (frames are delivered late, in order -- replay
  // preserves content; loss simulation belongs to the flaky transport).
  t.close();
  EXPECT_EQ(t.poll(10.6).status, TransportStatus::kClosed);
  ASSERT_TRUE(t.connect(11.2));  // reconnect past both remaining releases
  const runtime::TransportRead read = t.poll(11.2);
  EXPECT_EQ(read.status, TransportStatus::kOk);
  EXPECT_EQ(read.bytes.size(), 2u * rfid::llrp::kMessageSize);
  EXPECT_EQ(t.framesDelivered(), 3u);
}

TEST(ReplayTransport, SharedStreamKeepsPerTransportCursors) {
  const auto stream = threeFrameStream();
  ReplayTransport a(stream, {.speed = 0.0});
  ReplayTransport b(stream, {.speed = 0.0});
  ASSERT_TRUE(a.connect(0.0));
  EXPECT_EQ(a.poll(0.0).bytes.size(), 3u * rfid::llrp::kMessageSize);
  // b connects later and still gets the full stream from the start.
  ASSERT_TRUE(b.connect(99.0));
  EXPECT_EQ(b.poll(99.0).bytes.size(), 3u * rfid::llrp::kMessageSize);
}

TEST(RecordingTransport, TapsTheExactBytesTheSessionSees) {
  const std::string path = (std::filesystem::temp_directory_path() /
                            "tagspin_capture_replay_test.tspc")
                               .string();
  std::remove(path.c_str());

  const auto stream = threeFrameStream();
  {
    CaptureWriter writer(path, {.chunkReports = 2});
    RecordingTransport tap(
        std::make_unique<ReplayTransport>(stream,
                                          ReplayTransportConfig{.speed = 1.0}),
        &writer);
    ASSERT_TRUE(tap.connect(20.0));
    EXPECT_EQ(tap.poll(20.0).bytes.size(), rfid::llrp::kMessageSize);
    EXPECT_EQ(tap.poll(21.0).bytes.size(), 2u * rfid::llrp::kMessageSize);
    tap.close();
    EXPECT_EQ(tap.decodeStats().framesDecoded, 3u);
    writer.close();
  }

  // The re-captured stream carries the same reports (LLRP round trip is
  // lossless on quantized values) stamped with the *poll* times as their
  // delivery times: 20.0 for frame 0, 21.0 for the burst of two.
  const TimedStream recaptured = readCaptureFile(path, /*tolerant=*/false);
  ASSERT_EQ(recaptured.size(), 3u);
  EXPECT_EQ(streamDigest(stripTiming(recaptured)),
            streamDigest(stripTiming(stream->timed)));
  EXPECT_DOUBLE_EQ(recaptured[0].deliveryS, 20.0);
  EXPECT_DOUBLE_EQ(recaptured[1].deliveryS, 21.0);
  EXPECT_DOUBLE_EQ(recaptured[2].deliveryS, 21.0);

  std::remove(path.c_str());
}

TEST(Digest, StreamDigestCoversEveryFieldInOrder) {
  const auto stream = threeFrameStream();
  const rfid::ReportStream reports = stripTiming(stream->timed);
  const uint64_t base = streamDigest(reports);
  EXPECT_EQ(streamDigest(reports), base);  // deterministic

  rfid::ReportStream reordered = {reports[1], reports[0], reports[2]};
  EXPECT_NE(streamDigest(reordered), base);

  rfid::ReportStream tweaked = reports;
  tweaked[2].phaseRad += 1e-9;  // any bit difference must show
  EXPECT_NE(streamDigest(tweaked), base);

  const std::string hex = digestHex(base);
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(ReplayStreamBudgeted, ChargesTheArenaForTheStreamLifetime) {
  core::PosixMemEnv mem;
  core::MemArena arena(&mem, 0, "replay.test");
  TimedStream s;
  s.push_back(quantizedReport(0, 10'000'000, 10'000'000));
  s.push_back(quantizedReport(1, 10'400'000, 10'500'000));
  s.push_back(quantizedReport(2, 10'900'000, 11'000'000));

  const uint64_t want = replayStreamBytes(3);
  {
    auto r = makeReplayStreamBudgeted(std::move(s), &arena);
    ASSERT_TRUE(r.hasValue());
    EXPECT_EQ((*r)->wire.size(), 3u * rfid::llrp::kMessageSize);
    EXPECT_EQ(arena.usedBytes(), want);
    EXPECT_EQ(mem.stats().usedBytes, want);
  }
  // Stream destroyed: the RAII reservation returned every byte.
  EXPECT_EQ(arena.usedBytes(), 0u);
  EXPECT_EQ(mem.stats().usedBytes, 0u);
}

TEST(ReplayStreamBudgeted, DenialRefusesTheWholeStreamWithOutOfMemory) {
  core::PosixMemEnv mem;
  core::MemArena arena(&mem, replayStreamBytes(2), "replay.small");
  TimedStream s;
  s.push_back(quantizedReport(0, 10'000'000, 10'000'000));
  s.push_back(quantizedReport(1, 10'400'000, 10'500'000));
  s.push_back(quantizedReport(2, 10'900'000, 11'000'000));

  auto r = makeReplayStreamBudgeted(std::move(s), &arena);
  ASSERT_FALSE(r.hasValue());
  EXPECT_EQ(r.error().code, core::ErrorCode::kOutOfMemory);
  // No partial image, no stranded accounting.
  EXPECT_EQ(arena.usedBytes(), 0u);
  EXPECT_EQ(mem.stats().usedBytes, 0u);
}

TEST(ReplayStreamBudgeted, NullArenaMatchesTheUnbudgetedBuilder) {
  TimedStream a;
  a.push_back(quantizedReport(0, 10'000'000, 10'000'000));
  a.push_back(quantizedReport(1, 10'400'000, 10'500'000));
  TimedStream b = a;

  const auto plain = makeReplayStream(std::move(a));
  auto budgeted = makeReplayStreamBudgeted(std::move(b), nullptr);
  ASSERT_TRUE(budgeted.hasValue());
  EXPECT_EQ(plain->wire, (*budgeted)->wire);
  EXPECT_EQ(plain->releaseS, (*budgeted)->releaseS);
}

}  // namespace
}  // namespace tagspin::capture
