#include "capture/writer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numbers>
#include <string>
#include <vector>

#include "capture/digest.hpp"
#include "capture/format.hpp"
#include "runtime/checkpoint.hpp"
#include "sim/io_sim.hpp"

namespace tagspin::capture {
namespace {

TimedStream quantizedStream(size_t n, int64_t startUs) {
  TimedStream out;
  for (size_t i = 0; i < n; ++i) {
    TimedReport tr;
    tr.report.epc = rfid::Epc::forSimulatedTag(static_cast<uint32_t>(i % 3));
    const int64_t us = startUs + static_cast<int64_t>(i) * 2500;
    tr.report.timestampS = static_cast<double>(us) / 1e6;
    tr.report.phaseRad = static_cast<double>((i * 37) % 4096) / 4096.0 * 2.0 *
                         std::numbers::pi;
    tr.report.rssiDbm = static_cast<double>(-6000 - static_cast<int>(i)) / 100.0;
    tr.report.channelIndex = static_cast<int>(i % 16);
    tr.report.frequencyHz = static_cast<double>(902750 + 500 * (i % 16)) * 1e3;
    tr.report.antennaPort = static_cast<int>(i % 4);
    tr.deliveryS = static_cast<double>(us + 800) / 1e6;
    out.push_back(tr);
  }
  return out;
}

void expectEqualStreams(const TimedStream& want, const TimedStream& got) {
  ASSERT_EQ(want.size(), got.size());
  EXPECT_EQ(streamDigest(stripTiming(want)), streamDigest(stripTiming(got)));
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].deliveryS, got[i].deliveryS) << "report " << i;
  }
}

class CaptureWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs the cases of this binary as
    // separate parallel processes, and a shared filename makes them
    // clobber each other's captures mid-read.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = (std::filesystem::temp_directory_path() /
             (std::string("tagspin_capture_writer_") + info->name() +
              ".tspc"))
                .string();
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CaptureWriterTest, FreshFileRoundTripsStrictly) {
  const TimedStream s = quantizedStream(100, 1'000'000);
  {
    CaptureWriter writer(path_, {.chunkReports = 16, .fsyncEveryChunks = 2});
    writer.append(s);
    writer.close();
    // 6 full chunks of 16 plus the close-flush of the remaining 4.
    EXPECT_EQ(writer.stats().chunksWritten, 7u);
    EXPECT_EQ(writer.stats().reportsWritten, 100u);
    EXPECT_EQ(writer.stats().reportsBuffered, 0u);
    // Header sync + every 2nd chunk + close.
    EXPECT_GE(writer.stats().fsyncs, 4u);
    EXPECT_EQ(writer.nextSequence(), 7u);
    EXPECT_FALSE(writer.isOpen());
  }

  // The strict decoder is the oracle: a freshly written file must be a
  // perfect prefix, no tolerance required.
  expectEqualStreams(s, readCaptureFile(path_, /*tolerant=*/false));

  CaptureStats stats;
  expectEqualStreams(s, readCaptureFile(path_, /*tolerant=*/true, &stats));
  EXPECT_EQ(stats.chunksDecoded, 7u);
  EXPECT_EQ(stats.chunksSkipped, 0u);
  EXPECT_EQ(stats.bytesResynced, 0u);
}

TEST_F(CaptureWriterTest, CloseIsIdempotentAndFlushesTail) {
  CaptureWriter writer(path_, {.chunkReports = 64, .fsyncEveryChunks = 0});
  const TimedStream s = quantizedStream(10, 5'000'000);
  writer.append(s);
  EXPECT_EQ(writer.stats().reportsBuffered, 10u);
  EXPECT_EQ(writer.stats().chunksWritten, 0u);
  writer.close();
  writer.close();  // idempotent
  EXPECT_EQ(writer.stats().chunksWritten, 1u);
  expectEqualStreams(s, readCaptureFile(path_, false));
  EXPECT_THROW(writer.append(s.front().report, 0.0), std::runtime_error);
}

TEST_F(CaptureWriterTest, ReopenResumesSequenceNumbers) {
  const TimedStream first = quantizedStream(32, 1'000'000);
  const TimedStream second = quantizedStream(16, 9'000'000);
  {
    CaptureWriter writer(path_, {.chunkReports = 16});
    writer.append(first);
    writer.close();
  }
  {
    CaptureWriter writer(path_, {.chunkReports = 16});
    EXPECT_EQ(writer.stats().chunksRecoveredOnOpen, 2u);
    EXPECT_EQ(writer.stats().tornBytesTruncated, 0u);
    EXPECT_EQ(writer.nextSequence(), 2u);
    writer.append(second);
    writer.close();
  }

  TimedStream want = first;
  want.insert(want.end(), second.begin(), second.end());
  // Strict decode proves the resumed sequence numbering is contiguous.
  expectEqualStreams(want, readCaptureFile(path_, false));
}

TEST_F(CaptureWriterTest, TornTailIsTruncatedOnReopen) {
  const TimedStream s = quantizedStream(32, 1'000'000);
  {
    CaptureWriter writer(path_, {.chunkReports = 16});
    writer.append(s);
    writer.close();
  }
  // Simulate a writer killed mid-append: a chunk prefix that can never
  // validate, dangling off the end of the file.
  const std::vector<uint8_t> torn = {'T', 'S', 'C', 'K', 0x00, 0x00,
                                     0x01, 0x2C, 0xDE, 0xAD, 0xBE, 0xEF};
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write(reinterpret_cast<const char*>(torn.data()),
              static_cast<std::streamsize>(torn.size()));
  }

  const TimedStream more = quantizedStream(16, 9'000'000);
  {
    CaptureWriter writer(path_, {.chunkReports = 16});
    EXPECT_EQ(writer.stats().tornBytesTruncated, torn.size());
    EXPECT_EQ(writer.stats().chunksRecoveredOnOpen, 2u);
    EXPECT_EQ(writer.nextSequence(), 2u);
    writer.append(more);
    writer.close();
  }

  TimedStream want = s;
  want.insert(want.end(), more.begin(), more.end());
  expectEqualStreams(want, readCaptureFile(path_, false));
}

TEST_F(CaptureWriterTest, TruncationAtEveryByteStaysAppendable) {
  const TimedStream s = quantizedStream(24, 1'000'000);
  {
    CaptureWriter writer(path_, {.chunkReports = 8});
    writer.append(s);
    writer.close();
  }
  std::vector<char> full;
  {
    std::ifstream in(path_, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(full.size(), kFileHeaderSize);

  // A crash can tear the file at any byte.  Every cut must reopen without
  // error and keep only whole chunks (8 reports each).
  for (size_t cut : {kFileHeaderSize, kFileHeaderSize + 1, full.size() / 3,
                     full.size() / 2, full.size() - 1}) {
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(cut));
    }
    CaptureWriter writer(path_, {.chunkReports = 8});
    writer.close();
    const TimedStream got = readCaptureFile(path_, false);
    EXPECT_EQ(got.size() % 8, 0u) << "cut at " << cut;
    EXPECT_LE(got.size(), s.size()) << "cut at " << cut;
  }
}

TEST_F(CaptureWriterTest, SubHeaderDebrisIsStartedOver) {
  // A writer that died inside its very first write leaves less than one
  // header; nothing is salvageable and the file is restarted.
  {
    std::ofstream out(path_, std::ios::binary);
    out.write("TSPC\x01", 5);
  }
  CaptureWriter writer(path_);
  EXPECT_EQ(writer.stats().tornBytesTruncated, 5u);
  EXPECT_EQ(writer.stats().chunksRecoveredOnOpen, 0u);
  writer.append(quantizedStream(4, 1'000'000));
  writer.close();
  EXPECT_EQ(readCaptureFile(path_, false).size(), 4u);
}

TEST_F(CaptureWriterTest, RefusesToAppendOverAlienFile) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "definitely not a capture file, 16+ bytes of someone else's data";
  }
  EXPECT_THROW(CaptureWriter{path_}, std::invalid_argument);
  // The alien file is untouched by the refusal.
  EXPECT_GT(std::filesystem::file_size(path_), 16u);
}

TEST_F(CaptureWriterTest, RefusesForeignMajorVersion) {
  // A valid capture header from a future major version: appending v1 chunks
  // to it would corrupt the file for its own reader.
  std::vector<uint8_t> header = encodeFileHeader();
  header[4] = kVersionMajor + 1;
  const uint32_t crc =
      runtime::crc32(std::span<const uint8_t>(header).subspan(0, 12));
  header[12] = static_cast<uint8_t>(crc >> 24);
  header[13] = static_cast<uint8_t>(crc >> 16);
  header[14] = static_cast<uint8_t>(crc >> 8);
  header[15] = static_cast<uint8_t>(crc);
  {
    std::ofstream out(path_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
  }
  EXPECT_THROW(CaptureWriter{path_}, CaptureVersionError);
}

TEST_F(CaptureWriterTest, FsyncZeroMeansOnlyOnClose) {
  CaptureWriter writer(path_, {.chunkReports = 4, .fsyncEveryChunks = 0});
  const uint64_t afterOpen = writer.stats().fsyncs;  // header sync
  writer.append(quantizedStream(20, 1'000'000));
  EXPECT_EQ(writer.stats().fsyncs, afterOpen);
  writer.close();
  EXPECT_EQ(writer.stats().fsyncs, afterOpen + 1);
}

TEST(CaptureWriterSim, NewCaptureSurvivesPowerCutOnceChunkIsFsynced) {
  // The dirsync-on-create proof: without the parent-directory fsync in the
  // constructor, a power cut before close() would drop the whole file under
  // the nothing-persists variant, fsynced chunks and all.
  sim::SimIoEnv env;
  CaptureWriterConfig cfg;
  cfg.chunkReports = 4;
  cfg.fsyncEveryChunks = 1;
  cfg.io = &env;
  const TimedStream s = quantizedStream(4, 1'000'000);
  CaptureWriter writer("cap.tspc", cfg);
  writer.append(s);  // one full chunk, fsynced

  // Power cut now -- no close, nothing un-fsynced survives.
  const sim::DiskImage image =
      env.crashImage({sim::CrashPersist::Mode::kNone, 0});
  ASSERT_EQ(image.count("cap.tspc"), 1u);
  const std::string& bytes = image.at("cap.tspc");
  expectEqualStreams(
      s, decodeCapture(std::vector<uint8_t>(bytes.begin(), bytes.end())));
  writer.close();
}

TEST(CaptureWriterSim, EintrAndShortWritesDuringAppendAreAbsorbed) {
  sim::SimIoEnv env;
  CaptureWriterConfig cfg;
  cfg.chunkReports = 2;
  cfg.fsyncEveryChunks = 1;
  cfg.io = &env;
  CaptureWriter writer("cap.tspc", cfg);

  const uint64_t base = env.opCount();
  env.setFaults({{base, sim::FaultKind::kEintr},
                 {base + 2, sim::FaultKind::kEintr},
                 {base + 4, sim::FaultKind::kShortWrite}});
  const TimedStream s = quantizedStream(6, 1'000'000);
  writer.append(s);
  writer.close();
  EXPECT_EQ(env.faultsInjected(), 3u);

  const sim::DiskImage image = env.liveImage();
  const std::string& bytes = image.at("cap.tspc");
  expectEqualStreams(
      s, decodeCapture(std::vector<uint8_t>(bytes.begin(), bytes.end())));
}

TEST(CaptureWriterMemory, DeniedReservationSpillsTheBufferAndKeepsWriting) {
  sim::SimIoEnv env;
  core::PosixMemEnv mem;
  // Room for 4 buffered reports; the chunk size (8) would need twice that,
  // so the writer must spill early instead of growing.
  core::MemArena arena(&mem, 4 * sizeof(TimedReport), "writer.test");
  CaptureWriterConfig cfg;
  cfg.chunkReports = 8;
  cfg.fsyncEveryChunks = 2;
  cfg.io = &env;
  cfg.arena = &arena;
  CaptureWriter writer("cap.tspc", cfg);

  const TimedStream s = quantizedStream(12, 1'000'000);
  writer.append(s);
  writer.close();

  // Nothing was refused -- every denial was absorbed by an early flush.
  EXPECT_GT(writer.stats().bufferSpills, 0u);
  EXPECT_EQ(writer.stats().reportsRefused, 0u);
  EXPECT_EQ(writer.stats().reportsWritten, 12u);
  EXPECT_EQ(arena.usedBytes(), 0u);  // close() flushed and released all

  const sim::DiskImage image = env.liveImage();
  const std::string& bytes = image.at("cap.tspc");
  expectEqualStreams(
      s, decodeCapture(std::vector<uint8_t>(bytes.begin(), bytes.end())));
}

TEST(CaptureWriterMemory, RefusesReportsWhenEvenASpilledBufferCannotReserve) {
  sim::SimIoEnv env;
  core::PosixMemEnv mem;
  core::MemArena arena(&mem, 1, "writer.starved");  // < one report
  CaptureWriterConfig cfg;
  cfg.chunkReports = 4;
  cfg.io = &env;
  cfg.arena = &arena;
  CaptureWriter writer("cap.tspc", cfg);

  const TimedStream s = quantizedStream(6, 1'000'000);
  for (const TimedReport& tr : s) {
    const core::Result<bool> admitted = writer.tryAppend(tr.report,
                                                         tr.deliveryS);
    ASSERT_TRUE(admitted.hasValue());
    EXPECT_FALSE(*admitted);  // refused, not thrown
  }
  writer.close();
  EXPECT_EQ(writer.stats().reportsRefused, 6u);
  EXPECT_EQ(writer.stats().reportsWritten, 0u);

  // A refusal is an accounting event, not file damage: the capture is a
  // valid (empty) stream.
  const sim::DiskImage image = env.liveImage();
  const auto it = image.find("cap.tspc");
  if (it != image.end()) {
    EXPECT_TRUE(decodeCapture(std::vector<uint8_t>(it->second.begin(),
                                                   it->second.end()))
                    .empty());
  }
}

TEST(CaptureWriterMemory, TryAppendReportsAClosedWriterAsAnError) {
  sim::SimIoEnv env;
  CaptureWriterConfig cfg;
  cfg.io = &env;
  CaptureWriter writer("cap.tspc", cfg);
  writer.close();
  const TimedStream s = quantizedStream(1, 1'000'000);
  const core::Result<bool> r = writer.tryAppend(s[0].report, s[0].deliveryS);
  EXPECT_FALSE(r.hasValue());
}

}  // namespace
}  // namespace tagspin::capture
