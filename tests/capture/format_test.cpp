#include "capture/format.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numbers>
#include <random>
#include <span>
#include <vector>

#include "capture/digest.hpp"
#include "rfid/llrp.hpp"
#include "runtime/checkpoint.hpp"

namespace tagspin::capture {
namespace {

// Build a report from the format's own quantisation lattice (microsecond
// timestamps, 12-bit phase, centi-dBm RSSI, kHz frequency), computed exactly
// the way the decoder reconstructs them -- round trips must then be
// double-bit-exact, not merely close.
TimedReport quantizedReport(uint32_t tag, int64_t readerUs, int64_t deliveryUs,
                            int phase12, int rssiCenti, int channel,
                            uint32_t khz, int port) {
  TimedReport tr;
  tr.report.epc = rfid::Epc::forSimulatedTag(tag);
  tr.report.timestampS = static_cast<double>(readerUs) / 1e6;
  tr.report.phaseRad = static_cast<double>(phase12 & 0x0FFF) / 4096.0 * 2.0 *
                       std::numbers::pi;
  tr.report.rssiDbm = static_cast<double>(rssiCenti) / 100.0;
  tr.report.channelIndex = channel;
  tr.report.frequencyHz = static_cast<double>(khz) * 1e3;
  tr.report.antennaPort = port;
  tr.deliveryS = static_cast<double>(deliveryUs) / 1e6;
  return tr;
}

// A mildly hostile stream: several EPCs and channels, out-of-order reader
// timestamps (negative deltas stress the zigzag varints), and deliveries
// that both precede and trail the reader clock.
TimedStream sampleStream(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  TimedStream out;
  int64_t us = 1'000'000;
  for (size_t i = 0; i < n; ++i) {
    us += static_cast<int64_t>(rng() % 20000) - 5000;
    const int64_t deliveryUs = us + static_cast<int64_t>(rng() % 30000) - 1000;
    out.push_back(quantizedReport(
        static_cast<uint32_t>(rng() % 5), us, deliveryUs,
        static_cast<int>(rng() % 4096), -9000 + static_cast<int>(rng() % 4000),
        static_cast<int>(rng() % 50),
        902750 + 500 * static_cast<uint32_t>(rng() % 16),
        static_cast<int>(rng() % 4)));
  }
  return out;
}

// Header + the stream framed as ceil(n / chunkReports) sequential chunks.
std::vector<uint8_t> image(const TimedStream& s, size_t chunkReports) {
  std::vector<uint8_t> bytes = encodeFileHeader();
  uint32_t seq = 0;
  for (size_t at = 0; at < s.size(); at += chunkReports) {
    const size_t n = std::min(chunkReports, s.size() - at);
    const std::vector<uint8_t> chunk =
        encodeChunk(std::span(s).subspan(at, n), seq++);
    bytes.insert(bytes.end(), chunk.begin(), chunk.end());
  }
  return bytes;
}

void put32be(std::vector<uint8_t>& d, size_t at, uint32_t v) {
  d[at] = static_cast<uint8_t>(v >> 24);
  d[at + 1] = static_cast<uint8_t>(v >> 16);
  d[at + 2] = static_cast<uint8_t>(v >> 8);
  d[at + 3] = static_cast<uint8_t>(v);
}

// Rewrite the file header's version bytes and re-seal its CRC: a *valid*
// header carrying a different version, i.e. skew rather than rot.
void setHeaderVersion(std::vector<uint8_t>& d, uint8_t major, uint8_t minor) {
  ASSERT_GE(d.size(), kFileHeaderSize);
  d[4] = major;
  d[5] = minor;
  put32be(d, 12, runtime::crc32(std::span(d).subspan(0, 12)));
}

void expectEqualStreams(const TimedStream& want, const TimedStream& got) {
  ASSERT_EQ(want.size(), got.size());
  EXPECT_EQ(streamDigest(stripTiming(want)), streamDigest(stripTiming(got)));
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].deliveryS, got[i].deliveryS) << "report " << i;
  }
}

TEST(CaptureFormat, RoundTripIsBitExact) {
  const TimedStream s = sampleStream(100, 1);
  const std::vector<uint8_t> bytes = image(s, 16);

  expectEqualStreams(s, decodeCapture(bytes));

  CaptureStats stats;
  expectEqualStreams(s, decodeCaptureTolerant(bytes, &stats));
  EXPECT_EQ(stats.versionMajor, kVersionMajor);
  EXPECT_FALSE(stats.headerRecovered);
  EXPECT_EQ(stats.chunksDecoded, 7u);  // 6 full chunks of 16 + one of 4
  EXPECT_EQ(stats.chunksSkipped, 0u);
  EXPECT_EQ(stats.chunksDuplicated, 0u);
  EXPECT_EQ(stats.reportsRecovered, 100u);
  EXPECT_EQ(stats.bytesResynced, 0u);
  EXPECT_EQ(stats.bytesTotal, bytes.size());
}

TEST(CaptureFormat, QuantisationMirrorsLlrpWireCodec) {
  // Arbitrary (unquantized) reports canonicalized through the LLRP wire
  // codec must survive a capture round trip with wire parity: re-encoding
  // the decoded capture yields the exact frames the reader produced.  This
  // is the property that makes replay determinism a byte-equality claim.
  rfid::ReportStream raw;
  for (int i = 0; i < 7; ++i) {
    rfid::TagReport r;
    r.epc = rfid::Epc::forSimulatedTag(static_cast<uint32_t>(i % 3));
    r.timestampS = 3.14159265 + 0.0137 * i;
    r.phaseRad = 0.7 + 0.811 * i;  // wraps past 2*pi
    r.rssiDbm = -61.237 - 0.513 * i;
    r.channelIndex = 10 + i;
    r.frequencyHz = 902.75e6 + 0.5e6 * i;
    r.antennaPort = i % 4;
    raw.push_back(r);
  }
  rfid::ReportStream canonical;
  for (const rfid::TagReport& r : raw) {
    canonical.push_back(rfid::llrp::decodeReport(rfid::llrp::encodeReport(r)));
  }

  const TimedStream decoded =
      decodeCapture(image(withReaderTiming(canonical), 4));
  EXPECT_EQ(rfid::llrp::encodeStream(stripTiming(decoded)),
            rfid::llrp::encodeStream(canonical));
}

TEST(CaptureFormat, NonMonotonicTimestampsAndEarlyDeliverySurvive) {
  TimedStream s;
  s.push_back(quantizedReport(0, 2'000'000, 2'500'000, 100, -6000, 3, 902750, 0));
  s.push_back(quantizedReport(1, 1'500'000, 1'400'000, 200, -6100, 3, 902750, 1));
  s.push_back(quantizedReport(0, 9'000'000, 9'000'000, 300, -6200, 4, 903250, 2));
  expectEqualStreams(s, decodeCapture(image(s, 8)));
}

TEST(CaptureFormat, EmptyChunkAndDictionaryOverflowThrow) {
  EXPECT_THROW(encodeChunk({}, 0), std::invalid_argument);

  TimedStream manyEpcs;
  for (uint32_t i = 0; i < kMaxDictEntries + 1; ++i) {
    manyEpcs.push_back(quantizedReport(i, 1'000'000 + i, 1'000'000 + i, 0,
                                       -6000, 0, 902750, 0));
  }
  EXPECT_THROW(encodeChunk(manyEpcs, 0), std::invalid_argument);
  // One fewer EPC fits exactly.
  manyEpcs.pop_back();
  EXPECT_NO_THROW(encodeChunk(manyEpcs, 0));
}

TEST(CaptureFormat, HeaderOnlyFileDecodesEmpty) {
  const std::vector<uint8_t> bytes = encodeFileHeader();
  EXPECT_TRUE(decodeCapture(bytes).empty());
  CaptureStats stats;
  EXPECT_TRUE(decodeCaptureTolerant(bytes, &stats).empty());
  EXPECT_EQ(stats.chunksDecoded, 0u);
  EXPECT_FALSE(stats.headerRecovered);
}

TEST(CaptureFormat, MinorVersionSkewIsIgnored) {
  const TimedStream s = sampleStream(20, 2);
  std::vector<uint8_t> bytes = image(s, 8);
  setHeaderVersion(bytes, kVersionMajor, kVersionMinor + 9);

  CaptureStats stats;
  expectEqualStreams(s, decodeCaptureTolerant(bytes, &stats));
  EXPECT_EQ(stats.versionMinor, kVersionMinor + 9);
  EXPECT_FALSE(stats.headerRecovered);
  expectEqualStreams(s, decodeCapture(bytes));
}

TEST(CaptureFormat, ForeignMajorVersionHardFailsEverywhere) {
  std::vector<uint8_t> bytes = image(sampleStream(20, 3), 8);
  setHeaderVersion(bytes, kVersionMajor + 1, 0);

  // The one condition the tolerant reader refuses to guess through.
  EXPECT_THROW(decodeCapture(bytes), CaptureVersionError);
  EXPECT_THROW(decodeCaptureTolerant(bytes), CaptureVersionError);
  EXPECT_THROW(scanValidPrefix(bytes), CaptureVersionError);
}

TEST(CaptureFormat, RottenFileHeaderIsResyncedPast) {
  const TimedStream s = sampleStream(30, 4);
  std::vector<uint8_t> bytes = image(s, 10);
  bytes[2] ^= 0x40;  // break the magic; the CRC no longer matters

  EXPECT_THROW(decodeCapture(bytes), std::invalid_argument);

  CaptureStats stats;
  expectEqualStreams(s, decodeCaptureTolerant(bytes, &stats));
  EXPECT_TRUE(stats.headerRecovered);
  EXPECT_EQ(stats.versionMajor, kVersionMajor);
  EXPECT_EQ(stats.chunksDecoded, 3u);
}

TEST(CaptureFormat, PayloadBitFlipLosesExactlyThatChunk) {
  const TimedStream s = sampleStream(40, 5);
  std::vector<uint8_t> bytes = image(s, 10);  // 4 chunks of 10

  // Hit the second chunk's payload (skip past header + chunk 0).
  const std::vector<uint8_t> chunk0 = encodeChunk(std::span(s).first(10), 0);
  const std::vector<uint8_t> chunk1 =
      encodeChunk(std::span(s).subspan(10, 10), 1);
  const size_t target = kFileHeaderSize + chunk0.size() + kChunkHeaderSize + 5;
  bytes[target] ^= 0x01;

  EXPECT_THROW(decodeCapture(bytes), std::invalid_argument);

  CaptureStats stats;
  const TimedStream got = decodeCaptureTolerant(bytes, &stats);
  TimedStream want(s.begin(), s.begin() + 10);
  want.insert(want.end(), s.begin() + 20, s.end());
  expectEqualStreams(want, got);
  EXPECT_EQ(stats.chunksDecoded, 3u);
  EXPECT_EQ(stats.chunksSkipped, 1u);
  EXPECT_EQ(stats.bytesResynced, chunk1.size());
}

TEST(CaptureFormat, ChunkHeaderBitFlipResyncsToNextChunk) {
  const TimedStream s = sampleStream(40, 6);
  std::vector<uint8_t> bytes = image(s, 10);
  const size_t chunk0Size = encodeChunk(std::span(s).first(10), 0).size();
  // Flip a bit in chunk 1's length field: the header CRC must catch it
  // before the bogus length walks the reader off the file.
  bytes[kFileHeaderSize + chunk0Size + 5] ^= 0x80;

  CaptureStats stats;
  const TimedStream got = decodeCaptureTolerant(bytes, &stats);
  // Chunk 1 is gone; chunks 0, 2, 3 recovered intact.
  ASSERT_EQ(got.size(), 30u);
  TimedStream want(s.begin(), s.begin() + 10);
  want.insert(want.end(), s.begin() + 20, s.end());
  expectEqualStreams(want, got);
  EXPECT_GE(stats.chunksSkipped, 1u);
  EXPECT_GT(stats.bytesResynced, 0u);
}

TEST(CaptureFormat, MidChunkTruncationKeepsEveryFullChunk) {
  const TimedStream s = sampleStream(40, 7);
  const std::vector<uint8_t> full = image(s, 10);
  const size_t lastChunkSize =
      encodeChunk(std::span(s).subspan(30, 10), 3).size();
  // Tear the last chunk in half, as a crashed writer would.
  const std::vector<uint8_t> torn(full.begin(),
                                  full.end() - lastChunkSize / 2);

  CaptureStats stats;
  const TimedStream got = decodeCaptureTolerant(torn, &stats);
  expectEqualStreams(TimedStream(s.begin(), s.begin() + 30), got);
  EXPECT_EQ(stats.chunksDecoded, 3u);
  EXPECT_GT(stats.bytesResynced + stats.chunksSkipped, 0u);
}

TEST(CaptureFormat, DuplicatedChunkIsDroppedBySequence) {
  const TimedStream s = sampleStream(30, 8);
  std::vector<uint8_t> bytes = image(s, 10);
  const std::vector<uint8_t> chunk1 =
      encodeChunk(std::span(s).subspan(10, 10), 1);
  bytes.insert(bytes.end(), chunk1.begin(), chunk1.end());

  // Strict decode refuses the out-of-order sequence number.
  EXPECT_THROW(decodeCapture(bytes), std::invalid_argument);

  CaptureStats stats;
  expectEqualStreams(s, decodeCaptureTolerant(bytes, &stats));
  EXPECT_EQ(stats.chunksDecoded, 3u);
  EXPECT_EQ(stats.chunksDuplicated, 1u);
}

TEST(CaptureFormat, GarbageBetweenChunksIsResyncedOver) {
  const TimedStream s = sampleStream(20, 9);
  const std::vector<uint8_t> chunk0 = encodeChunk(std::span(s).first(10), 0);
  const std::vector<uint8_t> chunk1 =
      encodeChunk(std::span(s).subspan(10, 10), 1);
  std::vector<uint8_t> bytes = encodeFileHeader();
  bytes.insert(bytes.end(), chunk0.begin(), chunk0.end());
  for (int i = 0; i < 37; ++i) bytes.push_back(static_cast<uint8_t>(i * 7));
  bytes.insert(bytes.end(), chunk1.begin(), chunk1.end());

  CaptureStats stats;
  expectEqualStreams(s, decodeCaptureTolerant(bytes, &stats));
  EXPECT_EQ(stats.chunksDecoded, 2u);
  EXPECT_GE(stats.bytesResynced, 37u);
}

TEST(CaptureFormat, ScanValidPrefixWalksChunksStrictly) {
  const TimedStream s = sampleStream(30, 10);
  const std::vector<uint8_t> bytes = image(s, 10);

  const PrefixScan whole = scanValidPrefix(bytes);
  EXPECT_TRUE(whole.headerValid);
  EXPECT_EQ(whole.validBytes, bytes.size());
  EXPECT_EQ(whole.chunks, 3u);
  EXPECT_EQ(whole.nextSequence, 3u);

  // A torn tail ends the prefix at the last intact chunk boundary.
  std::vector<uint8_t> torn(bytes.begin(), bytes.end() - 7);
  const PrefixScan tornScan = scanValidPrefix(torn);
  EXPECT_TRUE(tornScan.headerValid);
  EXPECT_EQ(tornScan.chunks, 2u);
  EXPECT_LT(tornScan.validBytes, torn.size());

  // A broken header yields no prefix at all.
  std::vector<uint8_t> rotten = bytes;
  rotten[0] ^= 0xFF;
  const PrefixScan rottenScan = scanValidPrefix(rotten);
  EXPECT_FALSE(rottenScan.headerValid);
  EXPECT_EQ(rottenScan.validBytes, 0u);
}

// Seeded fuzz corpus over the mutations a capture meets in the wild: bit
// flips, truncation, duplicated chunk images, and garbage splices.  The
// tolerant reader must never throw (foreign-major skew is the only sanctioned
// failure and random damage cannot forge a valid-CRC header), and recovery is
// all-or-nothing per chunk -- with every chunk the same size, whatever comes
// back is a multiple of the chunk report count.  run_sanitized.sh runs this
// under ASan/UBSan, where any out-of-bounds walk the CRCs missed would trap.
TEST(CaptureFormatFuzz, MutatedCapturesNeverThrowAndRecoverWholeChunks) {
  constexpr size_t kChunkReports = 8;
  constexpr size_t kReports = 64;
  std::mt19937_64 rng(0xF00DF00DULL);

  for (int trial = 0; trial < 300; ++trial) {
    const TimedStream s = sampleStream(kReports, 1000 + trial);
    std::vector<uint8_t> bytes = image(s, kChunkReports);

    switch (trial % 4) {
      case 0: {  // bit flips (1-4 of them)
        const int flips = 1 + trial % 4;
        for (int i = 0; i < flips; ++i) {
          bytes[rng() % bytes.size()] ^= static_cast<uint8_t>(1u << (rng() % 8));
        }
        break;
      }
      case 1: {  // truncation at an arbitrary byte
        bytes.resize(rng() % bytes.size());
        break;
      }
      case 2: {  // duplicate a random slice (may clone whole chunks)
        const size_t from = rng() % bytes.size();
        const size_t len = std::min(bytes.size() - from,
                                    1 + rng() % (bytes.size() / 2));
        std::vector<uint8_t> slice(bytes.begin() + from,
                                   bytes.begin() + from + len);
        const size_t at = rng() % (bytes.size() + 1);
        bytes.insert(bytes.begin() + at, slice.begin(), slice.end());
        break;
      }
      default: {  // splice random garbage at a random offset
        std::vector<uint8_t> garbage(1 + rng() % 64);
        for (uint8_t& b : garbage) b = static_cast<uint8_t>(rng());
        const size_t at = rng() % (bytes.size() + 1);
        bytes.insert(bytes.begin() + at, garbage.begin(), garbage.end());
        break;
      }
    }

    CaptureStats stats;
    TimedStream got;
    ASSERT_NO_THROW(got = decodeCaptureTolerant(bytes, &stats))
        << "trial " << trial;
    EXPECT_LE(got.size(), kReports) << "trial " << trial;
    EXPECT_EQ(got.size() % kChunkReports, 0u)
        << "trial " << trial << ": partial chunk leaked";
    EXPECT_EQ(got.size(), stats.reportsRecovered) << "trial " << trial;
  }
}

}  // namespace
}  // namespace tagspin::capture
