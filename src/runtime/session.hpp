// ReaderSession: the supervised connection state machine for one reader.
//
//   DISCONNECTED -> CONNECTING -> SYNCING -> STREAMING -> DRAINING -> BACKOFF
//        ^                                                               |
//        +------------------------- (stop) <------------------+---------+
//
// CONNECTING waits (deadline-bounded) for the transport to establish;
// SYNCING hunts for the first valid LLRP frame boundary in the incoming
// byte stream (a connection picked up mid-stream starts inside a frame);
// STREAMING decodes tolerantly and offers reports to the bounded ingest
// queue under the configured backpressure policy; DRAINING flushes the
// decoder's buffered tail after a loss (or stop) so torn frames are
// accounted before reconnecting; BACKOFF waits out the capped
// decorrelated-jitter schedule, gated by the circuit breaker.  A breaker
// that trips (repeated half-open probe failures) parks the session in
// FAILED for the supervisor to replace.
//
// Liveness watchdogs run while STREAMING: a no-report detector (connected
// but silent longer than noReportTimeoutS) and a stuck-clock detector
// (reader timestamps stop advancing -- the reader-side clock glitch
// sim/faults injects).  Both force a drain + reconnect, which in practice
// resets a wedged RO-spec.
//
// Everything is driven by tick(nowS); the session owns no thread and no
// clock, so the whole lifecycle is deterministic under test.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "rfid/llrp.hpp"
#include "rfid/report.hpp"
#include "runtime/backoff.hpp"
#include "runtime/queue.hpp"
#include "runtime/transport.hpp"

namespace tagspin::runtime {

enum class SessionState {
  kDisconnected,
  kConnecting,
  kSyncing,
  kStreaming,
  kDraining,
  kBackoff,
  kFailed,  // circuit breaker tripped; supervisor intervention required
};
const char* sessionStateName(SessionState state);

struct SessionConfig {
  /// Deadline for transport establishment per attempt.
  double connectTimeoutS = 2.0;
  /// Deadline for the first decoded frame after establishment.
  double syncTimeoutS = 5.0;
  /// No-report watchdog: max wall time between decoded reports while
  /// streaming before the session is recycled.
  double noReportTimeoutS = 5.0;
  /// Stuck-clock watchdog: this many consecutive reports whose reader
  /// timestamp advances less than stuckClockMinAdvanceS force a recycle.
  size_t stuckClockWindow = 64;
  double stuckClockMinAdvanceS = 1e-9;

  BackoffConfig backoff;
  CircuitBreakerConfig breaker;

  /// Ingest queue between the decode loop and the supervisor's drain.
  size_t queueCapacity = 4096;
  BackpressurePolicy backpressure = BackpressurePolicy::kDropOldest;
  size_t degradeKeepEvery = 2;
  double queueHighWatermark = 0.75;

  /// External admission gate on connect attempts, consulted *before* the
  /// circuit breaker so a denied gate does not burn the breaker's one
  /// half-open probe per cooldown.  The fleet layer installs a shard-local
  /// retry-budget token bucket here to pace reconnect storms; null means
  /// unrestricted.  Called with nowS; returning false defers the attempt
  /// to a later tick (counted in SessionStats::gateDeferred).
  std::function<bool(double)> connectGate;

  /// Telemetry sinks (both optional; null = uninstrumented).  Handles are
  /// resolved once in the constructor, so the streaming fast path never
  /// touches the registry's lock.  Metrics outlive the session: a replaced
  /// session keeps counting into the same registry cells.
  obs::MetricsRegistry* metrics = nullptr;
  obs::EventJournal* journal = nullptr;
};

struct SessionStats {
  uint64_t connectAttempts = 0;
  uint64_t connectFailures = 0;    // connect or sync deadline expired
  uint64_t gateDeferred = 0;       // connect attempts deferred by connectGate
  uint64_t disconnects = 0;        // transport losses while syncing/streaming
  uint64_t watchdogNoReport = 0;
  uint64_t watchdogStuckClock = 0;
  uint64_t transitions = 0;
  uint64_t bytesReceived = 0;
  uint64_t reportsDecoded = 0;
  uint64_t reportsEnqueued = 0;
  double lastReportWallS = -1.0;    // wall (tick) time of last decoded report
  double lastReaderClockS = -1.0;   // reader timestamp high watermark
};

class ReaderSession {
 public:
  ReaderSession(std::string name, std::unique_ptr<Transport> transport,
                SessionConfig config = {});

  /// Advance the state machine to `nowS`.  Monotone nowS expected.
  void tick(double nowS);

  /// Consumer side: move every queued report into `out`; returns the count.
  size_t drainInto(rfid::ReportStream& out);

  /// Ask the session to wind down: it drains, closes the transport and
  /// parks in DISCONNECTED without reconnecting.
  void requestStop();

  const std::string& name() const { return name_; }
  SessionState state() const { return state_; }
  const SessionStats& stats() const { return stats_; }
  const QueueStats& queueStats() const { return queue_.stats(); }
  const rfid::llrp::DecodeStats& decodeStats() const {
    return decoder_.stats();
  }
  const CircuitBreaker& breaker() const { return breaker_; }
  const BackoffSchedule& backoff() const { return backoff_; }
  /// Time the current BACKOFF ends (meaningful in kBackoff).
  double backoffUntilS() const { return backoffUntilS_; }

 private:
  /// Registry handles for everything the session counts; resolved once at
  /// construction (all null when no registry is configured).
  struct Instruments {
    obs::Counter* transitions = nullptr;
    obs::Counter* connectAttempts = nullptr;
    obs::Counter* connectFailures = nullptr;
    obs::Counter* disconnects = nullptr;
    obs::Counter* watchdogNoReport = nullptr;
    obs::Counter* watchdogStuckClock = nullptr;
    obs::Counter* backoffWaits = nullptr;
    obs::Counter* breakerTrips = nullptr;
    obs::Counter* bytesReceived = nullptr;
    obs::Counter* reportsDecoded = nullptr;
    obs::Counter* reportsEnqueued = nullptr;
    obs::Histogram* decodeSpan = nullptr;  // span.llrp_decode
    static Instruments resolve(obs::MetricsRegistry* registry);
  };

  void enter(SessionState next, double nowS);
  void startAttempt(double nowS);
  /// Poll + decode once; enqueue decoded reports; run watchdogs.
  void pump(double nowS);
  void failAttempt(double nowS);
  /// Drain decoder tail, close transport, then fail into backoff/stop.
  void beginDrain(double nowS);
  void deliver(const rfid::ReportStream& reports, double nowS);
  /// Push the decoder's cumulative stats delta into the llrp.* counters.
  void publishDecodeDelta();
  void noteFailureOutcome(double nowS);

  std::string name_;
  std::unique_ptr<Transport> transport_;
  SessionConfig config_;
  SessionState state_ = SessionState::kDisconnected;
  SessionStats stats_;

  rfid::llrp::TolerantStreamDecoder decoder_;
  IngestQueue<rfid::TagReport> queue_;
  BackoffSchedule backoff_;
  CircuitBreaker breaker_;

  double deadlineS_ = 0.0;      // connect/sync deadline
  double backoffUntilS_ = 0.0;
  size_t stuckClockRun_ = 0;
  bool stopRequested_ = false;

  Instruments obs_;
  obs::EventJournal* journal_ = nullptr;
  rfid::llrp::DecodeStats publishedDecode_;  // high watermark already folded
};

}  // namespace tagspin::runtime
