// Bounded ingest queues with an explicit backpressure policy.
//
// A flooding reader (or a stalled localization consumer) must not grow the
// host's memory without bound, and *how* the excess is shed is a policy
// decision: block the producer (lossless, stalls the reader session),
// drop the oldest queued reports (keep the freshest phase samples), or
// degrade the sampling rate (admit every k-th report -- the SAR profile
// tolerates thinning far better than a contiguous gap, exactly the
// variable-density observation of paper Fig. 4(b)).
//
// The ring is a Vyukov-style bounded MPMC queue: every slot carries a
// sequence number, so push and pop are lock-free and safe from any mix of
// threads.  That matters for kDropOldest specifically -- eviction is a
// *producer-side pop*, and with per-slot sequencing it composes correctly
// with a concurrent consumer: when both race for the same oldest element,
// exactly one of them wins it (the loser retries), never a double-move or
// a lost slot.  The earlier SPSC ring restricted that policy to
// single-threaded use; the fleet runtime's threaded shards removed that
// luxury.
//
// IngestQueue's *policy accounting* (QueueStats, the degrade counter)
// remains single-producer: offer() must be called from one thread at a
// time, poll() from any other.  That is the reader-session -> supervisor
// topology everywhere in this codebase.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace tagspin::runtime {

enum class BackpressurePolicy {
  kBlock,           // offer() refuses when full; producer must retry later
  kDropOldest,      // evict the oldest queued element to admit the new one
  kDegradeSampling, // above the high watermark admit only every k-th offer
};
const char* backpressurePolicyName(BackpressurePolicy policy);

inline const char* backpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropOldest: return "drop_oldest";
    case BackpressurePolicy::kDegradeSampling: return "degrade_sampling";
  }
  return "unknown";
}

struct QueueStats {
  uint64_t offered = 0;
  uint64_t accepted = 0;
  uint64_t refusedFull = 0;     // kBlock refusals
  uint64_t droppedOldest = 0;   // kDropOldest evictions
  uint64_t droppedSampled = 0;  // kDegradeSampling rejections
  size_t maxDepth = 0;          // high-watermark of the queue depth
  /// Times the depth crossed from below the high watermark to at/above it
  /// (tracked for every policy, not just kDegradeSampling): each crossing
  /// is a memory-pressure onset an operator wants to see *before* any
  /// shedding counter moves.
  uint64_t watermarkCrossings = 0;
};

/// Registry handles mirroring QueueStats.  Resolved once (resolve()) and
/// installed on the queue; unlike the embedded stats these live in the
/// registry, so they survive the queue being torn down and rebuilt across
/// session restarts -- the counters a soak run wants are cumulative.
struct QueueInstruments {
  obs::Counter* offered = nullptr;
  obs::Counter* accepted = nullptr;
  obs::Counter* refusedFull = nullptr;
  obs::Counter* droppedOldest = nullptr;
  obs::Counter* droppedSampled = nullptr;
  obs::Counter* watermarkCrossings = nullptr;
  obs::Gauge* depth = nullptr;     // depth after the last offer
  obs::Gauge* maxDepth = nullptr;  // lifetime high watermark (setMax)
  obs::Gauge* aboveWatermark = nullptr;  // 1 while at/above the watermark

  static QueueInstruments resolve(obs::MetricsRegistry* registry) {
    QueueInstruments q;
    if (!registry) return q;
    q.offered = registry->counter("queue.offered");
    q.accepted = registry->counter("queue.accepted");
    q.refusedFull = registry->counter("queue.refused_full");
    q.droppedOldest = registry->counter("queue.dropped_oldest");
    q.droppedSampled = registry->counter("queue.dropped_sampled");
    q.watermarkCrossings = registry->counter("queue.watermark_crossings");
    q.depth = registry->gauge("queue.depth");
    q.maxDepth = registry->gauge("queue.max_depth");
    q.aboveWatermark = registry->gauge("queue.above_watermark");
    return q;
  }
};

/// Fixed-capacity bounded MPMC ring (Vyukov).  Each cell's sequence number
/// encodes whose turn the cell is: producers claim a cell by CAS on the
/// tail ticket, write the value, then publish by bumping the sequence;
/// consumers mirror the dance on the head ticket.  tryPush/tryPop are safe
/// from any number of threads and never block; a push that loses its cell
/// to a full ring (or a pop to an empty one) fails without side effects.
template <typename T>
class BoundedRing {
 public:
  explicit BoundedRing(size_t capacity)
      : slots_(capacity < 1 ? 1 : capacity), cells_(slots_) {
    for (size_t i = 0; i < slots_; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  size_t capacity() const { return slots_; }

  /// Instantaneous depth; approximate under concurrent mutation (exact when
  /// quiescent), which is all the watermark heuristics need.
  size_t size() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail > head ? static_cast<size_t>(tail - head) : 0;
  }
  bool empty() const { return size() == 0; }
  bool full() const { return size() >= slots_; }

  /// False when full.  The value is moved from only on success.
  bool tryPush(T&& value) {
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos % slots_];
      const uint64_t seq = cell.sequence.load(std::memory_order_acquire);
      const int64_t dif =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // the cell is a full lap behind: ring is full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }
  bool tryPush(const T& value) {
    T copy = value;
    return tryPush(std::move(copy));
  }

  /// False when empty.
  bool tryPop(T& out) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos % slots_];
      const uint64_t seq = cell.sequence.load(std::memory_order_acquire);
      const int64_t dif =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(cell.value);
          cell.sequence.store(pos + slots_, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // nothing published at this ticket yet: empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct Cell {
    std::atomic<uint64_t> sequence{0};
    T value{};
  };

  size_t slots_;
  std::vector<Cell> cells_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> tail_{0};
};

/// Policy wrapper around BoundedRing: every producer-side admission decision
/// goes through offer(), which applies the configured backpressure policy
/// and keeps the accounting a soak report needs.
template <typename T>
class IngestQueue {
 public:
  IngestQueue(size_t capacity, BackpressurePolicy policy,
              size_t degradeKeepEvery = 2, double highWatermark = 0.75)
      : ring_(capacity), policy_(policy),
        degradeKeepEvery_(degradeKeepEvery < 1 ? 1 : degradeKeepEvery),
        watermarkDepth_(static_cast<size_t>(
            highWatermark * static_cast<double>(capacity))) {}

  /// Install registry handles; every subsequent offer() mirrors its
  /// accounting into them (null handles are free -- see obs::add).
  void setInstruments(const QueueInstruments& instruments) {
    obs_ = instruments;
  }

  /// Admit one element under the policy.  Returns false only when the
  /// element was NOT enqueued (kBlock when full, or sampled away).
  /// Single producer; a consumer may poll() concurrently.
  bool offer(T value) {
    ++stats_.offered;
    obs::add(obs_.offered);
    trackWatermark(ring_.size());
    switch (policy_) {
      case BackpressurePolicy::kBlock:
        if (!ring_.tryPush(std::move(value))) {
          ++stats_.refusedFull;
          obs::add(obs_.refusedFull);
          return false;
        }
        break;
      case BackpressurePolicy::kDropOldest:
        // Try first, evict only on a genuinely full ring: a concurrent
        // consumer may have made room between any two steps, and tryPush
        // leaves `value` intact on failure.  The eviction pop races the
        // consumer's pop safely (per-cell sequencing); if the consumer wins
        // the oldest element we simply retry the push into the freed slot.
        while (!ring_.tryPush(std::move(value))) {
          T discarded;
          if (ring_.tryPop(discarded)) {
            ++stats_.droppedOldest;
            obs::add(obs_.droppedOldest);
          }
        }
        break;
      case BackpressurePolicy::kDegradeSampling:
        if (ring_.size() >= watermarkDepth_) {
          if (degradeCounter_++ % degradeKeepEvery_ != 0) {
            ++stats_.droppedSampled;
            obs::add(obs_.droppedSampled);
            return false;
          }
        } else {
          degradeCounter_ = 0;
        }
        if (!ring_.tryPush(std::move(value))) {
          ++stats_.refusedFull;
          obs::add(obs_.refusedFull);
          return false;
        }
        break;
    }
    ++stats_.accepted;
    obs::add(obs_.accepted);
    const size_t depth = ring_.size();
    stats_.maxDepth = std::max(stats_.maxDepth, depth);
    obs::set(obs_.depth, static_cast<double>(depth));
    obs::setMax(obs_.maxDepth, static_cast<double>(depth));
    trackWatermark(depth);
    return true;
  }

  bool poll(T& out) { return ring_.tryPop(out); }

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return ring_.capacity(); }
  size_t watermarkDepth() const { return watermarkDepth_; }
  bool aboveWatermark() const { return aboveWatermark_; }
  BackpressurePolicy policy() const { return policy_; }
  const QueueStats& stats() const { return stats_; }

 private:
  /// Watermark edge detector, producer-side like the rest of the policy
  /// accounting: a crossing is counted once per excursion above the
  /// watermark, and the exit re-arms it (same edge the degrade counter
  /// resets on).
  void trackWatermark(size_t depth) {
    if (depth >= watermarkDepth_) {
      if (!aboveWatermark_) {
        aboveWatermark_ = true;
        ++stats_.watermarkCrossings;
        obs::add(obs_.watermarkCrossings);
        obs::set(obs_.aboveWatermark, 1.0);
      }
    } else if (aboveWatermark_) {
      aboveWatermark_ = false;
      obs::set(obs_.aboveWatermark, 0.0);
    }
  }

  BoundedRing<T> ring_;
  BackpressurePolicy policy_;
  size_t degradeKeepEvery_;
  size_t watermarkDepth_;
  bool aboveWatermark_ = false;
  uint64_t degradeCounter_ = 0;
  QueueStats stats_;
  QueueInstruments obs_;
};

}  // namespace tagspin::runtime
