// Bounded single-producer/single-consumer ingest queues with an explicit
// backpressure policy.
//
// A flooding reader (or a stalled localization consumer) must not grow the
// host's memory without bound, and *how* the excess is shed is a policy
// decision: block the producer (lossless, stalls the reader session),
// drop the oldest queued reports (keep the freshest phase samples), or
// degrade the sampling rate (admit every k-th report -- the SAR profile
// tolerates thinning far better than a contiguous gap, exactly the
// variable-density observation of paper Fig. 4(b)).
//
// The ring is written SPSC-lock-free (release/acquire on head/tail) so the
// same structure can back a threaded deployment; the deterministic runtime
// drives it from one thread.  kDropOldest performs a consumer-side pop from
// the producer, so that policy is only safe when producer and consumer are
// the same thread (as in the supervised runtime) -- documented trade-off.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace tagspin::runtime {

enum class BackpressurePolicy {
  kBlock,           // offer() refuses when full; producer must retry later
  kDropOldest,      // evict the oldest queued element to admit the new one
  kDegradeSampling, // above the high watermark admit only every k-th offer
};
const char* backpressurePolicyName(BackpressurePolicy policy);

inline const char* backpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropOldest: return "drop_oldest";
    case BackpressurePolicy::kDegradeSampling: return "degrade_sampling";
  }
  return "unknown";
}

struct QueueStats {
  uint64_t offered = 0;
  uint64_t accepted = 0;
  uint64_t refusedFull = 0;     // kBlock refusals
  uint64_t droppedOldest = 0;   // kDropOldest evictions
  uint64_t droppedSampled = 0;  // kDegradeSampling rejections
  size_t maxDepth = 0;          // high-watermark of the queue depth
};

/// Registry handles mirroring QueueStats.  Resolved once (resolve()) and
/// installed on the queue; unlike the embedded stats these live in the
/// registry, so they survive the queue being torn down and rebuilt across
/// session restarts -- the counters a soak run wants are cumulative.
struct QueueInstruments {
  obs::Counter* offered = nullptr;
  obs::Counter* accepted = nullptr;
  obs::Counter* refusedFull = nullptr;
  obs::Counter* droppedOldest = nullptr;
  obs::Counter* droppedSampled = nullptr;
  obs::Gauge* depth = nullptr;     // depth after the last offer
  obs::Gauge* maxDepth = nullptr;  // lifetime high watermark (setMax)

  static QueueInstruments resolve(obs::MetricsRegistry* registry) {
    QueueInstruments q;
    if (!registry) return q;
    q.offered = registry->counter("queue.offered");
    q.accepted = registry->counter("queue.accepted");
    q.refusedFull = registry->counter("queue.refused_full");
    q.droppedOldest = registry->counter("queue.dropped_oldest");
    q.droppedSampled = registry->counter("queue.dropped_sampled");
    q.depth = registry->gauge("queue.depth");
    q.maxDepth = registry->gauge("queue.max_depth");
    return q;
  }
};

/// Fixed-capacity SPSC ring buffer.  One slot is sacrificed to distinguish
/// full from empty, so the ring allocates capacity+1 slots.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity)
      : slots_(capacity + 1), buffer_(capacity + 1) {}

  size_t capacity() const { return slots_ - 1; }

  size_t size() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : tail + slots_ - head;
  }
  bool empty() const { return size() == 0; }
  bool full() const { return size() == capacity(); }

  /// Producer side.  False when full.
  bool tryPush(T value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t next = (tail + 1) % slots_;
    if (next == head_.load(std::memory_order_acquire)) return false;
    buffer_[tail] = std::move(value);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side.  False when empty.
  bool tryPop(T& out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(buffer_[head]);
    head_.store((head + 1) % slots_, std::memory_order_release);
    return true;
  }

 private:
  size_t slots_;
  std::vector<T> buffer_;
  std::atomic<size_t> head_{0};
  std::atomic<size_t> tail_{0};
};

/// Policy wrapper around SpscQueue: every producer-side admission decision
/// goes through offer(), which applies the configured backpressure policy
/// and keeps the accounting a soak report needs.
template <typename T>
class IngestQueue {
 public:
  IngestQueue(size_t capacity, BackpressurePolicy policy,
              size_t degradeKeepEvery = 2, double highWatermark = 0.75)
      : ring_(capacity), policy_(policy),
        degradeKeepEvery_(degradeKeepEvery < 1 ? 1 : degradeKeepEvery),
        watermarkDepth_(static_cast<size_t>(
            highWatermark * static_cast<double>(capacity))) {}

  /// Install registry handles; every subsequent offer() mirrors its
  /// accounting into them (null handles are free -- see obs::add).
  void setInstruments(const QueueInstruments& instruments) {
    obs_ = instruments;
  }

  /// Admit one element under the policy.  Returns false only when the
  /// element was NOT enqueued (kBlock when full, or sampled away).
  bool offer(T value) {
    ++stats_.offered;
    obs::add(obs_.offered);
    switch (policy_) {
      case BackpressurePolicy::kBlock:
        if (!ring_.tryPush(std::move(value))) {
          ++stats_.refusedFull;
          obs::add(obs_.refusedFull);
          return false;
        }
        break;
      case BackpressurePolicy::kDropOldest:
        if (ring_.full()) {
          T discarded;
          if (ring_.tryPop(discarded)) {
            ++stats_.droppedOldest;
            obs::add(obs_.droppedOldest);
          }
        }
        if (!ring_.tryPush(std::move(value))) {
          ++stats_.refusedFull;  // unreachable in single-threaded use
          obs::add(obs_.refusedFull);
          return false;
        }
        break;
      case BackpressurePolicy::kDegradeSampling:
        if (ring_.size() >= watermarkDepth_) {
          if (degradeCounter_++ % degradeKeepEvery_ != 0) {
            ++stats_.droppedSampled;
            obs::add(obs_.droppedSampled);
            return false;
          }
        } else {
          degradeCounter_ = 0;
        }
        if (!ring_.tryPush(std::move(value))) {
          ++stats_.refusedFull;
          obs::add(obs_.refusedFull);
          return false;
        }
        break;
    }
    ++stats_.accepted;
    obs::add(obs_.accepted);
    const size_t depth = ring_.size();
    stats_.maxDepth = std::max(stats_.maxDepth, depth);
    obs::set(obs_.depth, static_cast<double>(depth));
    obs::setMax(obs_.maxDepth, static_cast<double>(depth));
    return true;
  }

  bool poll(T& out) { return ring_.tryPop(out); }

  size_t size() const { return ring_.size(); }
  size_t capacity() const { return ring_.capacity(); }
  BackpressurePolicy policy() const { return policy_; }
  const QueueStats& stats() const { return stats_; }

 private:
  SpscQueue<T> ring_;
  BackpressurePolicy policy_;
  size_t degradeKeepEvery_;
  size_t watermarkDepth_;
  uint64_t degradeCounter_ = 0;
  QueueStats stats_;
  QueueInstruments obs_;
};

}  // namespace tagspin::runtime
