// Crash-safe persistence of calibration checkpoints.
//
// The text payload (core::checkpointToString) is framed with a one-line
// header carrying its byte length and CRC-32, written to a sibling .tmp
// file (fsynced), atomically renamed over the target, and sealed with a
// parent-directory fsync (see core::writeFileDurable for the ordering
// contract).  A kill -9 -- or a power cut -- at any point
// therefore leaves either the previous intact checkpoint or the new one --
// never a torn file that silently resumes from garbage: truncation fails
// the length check, partial writes and bit rot fail the CRC, and a
// malformed payload fails the parser.  All three surface as
// ErrorCode::kCheckpointCorrupt; a missing file is the distinct
// kCheckpointMissing (a fresh start, not a fault).
//
// All storage goes through the core::IoEnv seam: production uses the
// default Posix passthrough, while the crash-point explorer (eval/crash)
// substitutes sim::SimIoEnv to falsify the old-or-new claim at every
// syscall boundary.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/errors.hpp"
#include "core/io_env.hpp"
#include "core/serialization.hpp"
#include "obs/journal.hpp"

namespace tagspin::runtime {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of a byte span; exposed for
/// tests and for anyone framing other artifacts the same way.
uint32_t crc32(std::span<const uint8_t> data);
uint32_t crc32(const std::string& data);

class CheckpointStore {
 public:
  /// `io` is the storage environment; nullptr means the real filesystem.
  explicit CheckpointStore(std::string path, core::IoEnv* io = nullptr)
      : path_(std::move(path)), io_(&core::resolveIo(io)) {}

  const std::string& path() const { return path_; }

  /// Serialize, frame, write to `path + ".tmp"`, fsync-flush, rename,
  /// parent dirsync.  Returns the framed byte count written (telemetry
  /// wants checkpoint sizes).  Throws std::runtime_error on I/O failure
  /// (disk full, bad directory); the previous checkpoint file is untouched
  /// in that case.
  size_t save(const core::CalibrationCheckpoint& checkpoint) const;

  /// Load and verify.  kCheckpointMissing when no file exists;
  /// kCheckpointCorrupt on any integrity failure.
  core::Result<core::CalibrationCheckpoint> load() const;

  /// Optional event journal.  When set, load() records a kWarn event each
  /// time a torn or CRC-failed checkpoint is discarded, so operators can
  /// tell "no checkpoint" (fresh start) from "corrupt checkpoint" (data
  /// loss) in the journal rather than only via the returned error code.
  void setJournal(obs::EventJournal* journal) { journal_ = journal; }

  /// Frame / unframe without touching the filesystem (exposed for tests).
  static std::string frame(const std::string& payload);
  static core::Result<std::string> unframe(const std::string& fileContents);

 private:
  std::string path_;
  core::IoEnv* io_;
  obs::EventJournal* journal_ = nullptr;
};

}  // namespace tagspin::runtime
