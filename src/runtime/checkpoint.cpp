#include "runtime/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tagspin::runtime {

namespace {

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// "tagspin-checkpoint v1 len=<bytes> crc32=<8 hex digits>\n"
constexpr const char* kMagic = "tagspin-checkpoint v1";

}  // namespace

uint32_t crc32(std::span<const uint8_t> data) {
  static const std::array<uint32_t, 256> table = makeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (uint8_t b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

uint32_t crc32(const std::string& data) {
  return crc32(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(data.data()), data.size()));
}

std::string CheckpointStore::frame(const std::string& payload) {
  char header[96];
  std::snprintf(header, sizeof(header), "%s len=%zu crc32=%08x\n", kMagic,
                payload.size(), crc32(payload));
  return std::string(header) + payload;
}

core::Result<std::string> CheckpointStore::unframe(
    const std::string& fileContents) {
  using R = core::Result<std::string>;
  const size_t nl = fileContents.find('\n');
  if (nl == std::string::npos) {
    return R::fail(core::ErrorCode::kCheckpointCorrupt,
                   "checkpoint: missing header line");
  }
  const std::string header = fileContents.substr(0, nl);
  size_t len = 0;
  unsigned crc = 0;
  char magicBuf[64] = {};
  // Magic is two tokens; match it separately from the numeric fields.
  if (std::sscanf(header.c_str(), "%40s v1 len=%zu crc32=%8x", magicBuf, &len,
                  &crc) != 3 ||
      std::string(magicBuf) + " v1" != kMagic) {
    return R::fail(core::ErrorCode::kCheckpointCorrupt,
                   "checkpoint: unrecognized header: " + header);
  }
  std::string payload = fileContents.substr(nl + 1);
  if (payload.size() != len) {
    return R::fail(core::ErrorCode::kCheckpointCorrupt,
                   "checkpoint: truncated: header declares " +
                       std::to_string(len) + " payload bytes, file holds " +
                       std::to_string(payload.size()));
  }
  if (crc32(payload) != crc) {
    return R::fail(core::ErrorCode::kCheckpointCorrupt,
                   "checkpoint: CRC mismatch");
  }
  return R::ok(std::move(payload));
}

void CheckpointStore::writeFileDurable(const std::string& path,
                                       const std::string& contents) {
  // Durability ordering contract (each step must complete before the next
  // has any value):
  //   1. write + fsync the .tmp file -- its *data* must be on stable media
  //      before the rename, otherwise the rename can be persisted first and
  //      a power cut leaves `path` pointing at a hole of garbage;
  //   2. rename(tmp, path) -- atomic replace, readers see old-or-new;
  //   3. fsync the parent directory -- the rename itself is a directory
  //      mutation; without this it can be rolled back by a crash, silently
  //      resurrecting the previous checkpoint after we reported success.
  // A failure at any step throws and leaves any previous file at `path`
  // untouched.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("checkpoint: cannot write " + tmp + ": " +
                             std::strerror(errno));
  }
  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n = ::write(fd, contents.data() + written,
                              contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw std::runtime_error("checkpoint: write failed: " + tmp + ": " +
                               std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw std::runtime_error("checkpoint: fsync failed: " + tmp + ": " +
                             std::strerror(errno));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("checkpoint: close failed: " + tmp + ": " +
                             std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: rename to " + path + " failed");
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dirFd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirFd >= 0) {
    // Best effort: some filesystems refuse directory fsync; the rename has
    // already happened, so don't fail the save over it.
    ::fsync(dirFd);
    ::close(dirFd);
  }
}

size_t CheckpointStore::save(
    const core::CalibrationCheckpoint& checkpoint) const {
  const std::string contents = frame(core::checkpointToString(checkpoint));
  writeFileDurable(path_, contents);
  return contents.size();
}

core::Result<core::CalibrationCheckpoint> CheckpointStore::load() const {
  using R = core::Result<core::CalibrationCheckpoint>;
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    return R::fail(core::ErrorCode::kCheckpointMissing,
                   "checkpoint: no file at " + path_);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const core::Result<std::string> payload = unframe(buf.str());
  if (!payload) {
    // A file existed but failed integrity -- this is data loss, not a fresh
    // start.  Journal it so operators can tell the two apart without
    // correlating error codes by hand.
    obs::record(journal_, 0.0, obs::Severity::kWarn, "checkpoint discarded",
                {{"path", path_}, {"reason", payload.error().message}});
    return R::fail(payload.error().code, payload.error().message);
  }
  try {
    return R::ok(core::checkpointFromString(*payload));
  } catch (const std::exception& e) {
    const std::string reason =
        std::string("checkpoint: payload malformed: ") + e.what();
    obs::record(journal_, 0.0, obs::Severity::kWarn, "checkpoint discarded",
                {{"path", path_}, {"reason", reason}});
    return R::fail(core::ErrorCode::kCheckpointCorrupt, reason);
  }
}

}  // namespace tagspin::runtime
