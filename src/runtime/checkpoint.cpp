#include "runtime/checkpoint.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace tagspin::runtime {

namespace {

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// "tagspin-checkpoint v1 len=<bytes> crc32=<8 hex digits>\n"
constexpr const char* kMagic = "tagspin-checkpoint v1";

}  // namespace

uint32_t crc32(std::span<const uint8_t> data) {
  static const std::array<uint32_t, 256> table = makeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (uint8_t b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

uint32_t crc32(const std::string& data) {
  return crc32(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(data.data()), data.size()));
}

std::string CheckpointStore::frame(const std::string& payload) {
  char header[96];
  std::snprintf(header, sizeof(header), "%s len=%zu crc32=%08x\n", kMagic,
                payload.size(), crc32(payload));
  return std::string(header) + payload;
}

core::Result<std::string> CheckpointStore::unframe(
    const std::string& fileContents) {
  using R = core::Result<std::string>;
  const size_t nl = fileContents.find('\n');
  if (nl == std::string::npos) {
    return R::fail(core::ErrorCode::kCheckpointCorrupt,
                   "checkpoint: missing header line");
  }
  const std::string header = fileContents.substr(0, nl);
  size_t len = 0;
  unsigned crc = 0;
  char magicBuf[64] = {};
  // Magic is two tokens; match it separately from the numeric fields.
  if (std::sscanf(header.c_str(), "%40s v1 len=%zu crc32=%8x", magicBuf, &len,
                  &crc) != 3 ||
      std::string(magicBuf) + " v1" != kMagic) {
    return R::fail(core::ErrorCode::kCheckpointCorrupt,
                   "checkpoint: unrecognized header: " + header);
  }
  std::string payload = fileContents.substr(nl + 1);
  if (payload.size() != len) {
    return R::fail(core::ErrorCode::kCheckpointCorrupt,
                   "checkpoint: truncated: header declares " +
                       std::to_string(len) + " payload bytes, file holds " +
                       std::to_string(payload.size()));
  }
  if (crc32(payload) != crc) {
    return R::fail(core::ErrorCode::kCheckpointCorrupt,
                   "checkpoint: CRC mismatch");
  }
  return R::ok(std::move(payload));
}

size_t CheckpointStore::save(
    const core::CalibrationCheckpoint& checkpoint) const {
  const std::string contents = frame(core::checkpointToString(checkpoint));
  core::writeFileDurable(*io_, path_, contents);
  return contents.size();
}

core::Result<core::CalibrationCheckpoint> CheckpointStore::load() const {
  using R = core::Result<core::CalibrationCheckpoint>;
  std::string raw;
  const core::IoStatus st = io_->readFile(path_, raw);
  if (!st.ok()) {
    // Unreadable is treated like absent (a fresh start): there is nothing
    // to recover either way, and kCheckpointMissing is the code the
    // supervisor already handles by rebuilding from scratch.
    return R::fail(core::ErrorCode::kCheckpointMissing,
                   "checkpoint: cannot read " + path_ + ": " +
                       std::strerror(st.err));
  }
  const core::Result<std::string> payload = unframe(raw);
  if (!payload) {
    // A file existed but failed integrity -- this is data loss, not a fresh
    // start.  Journal it so operators can tell the two apart without
    // correlating error codes by hand.
    obs::record(journal_, 0.0, obs::Severity::kWarn, "checkpoint discarded",
                {{"path", path_}, {"reason", payload.error().message}});
    return R::fail(payload.error().code, payload.error().message);
  }
  try {
    return R::ok(core::checkpointFromString(*payload));
  } catch (const std::exception& e) {
    const std::string reason =
        std::string("checkpoint: payload malformed: ") + e.what();
    obs::record(journal_, 0.0, obs::Severity::kWarn, "checkpoint discarded",
                {{"path", path_}, {"reason", reason}});
    return R::fail(core::ErrorCode::kCheckpointCorrupt, reason);
  }
}

}  // namespace tagspin::runtime
