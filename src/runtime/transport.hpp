// Abstract byte transport between a reader and the session runtime.
//
// The session layer never touches sockets directly: it polls a Transport
// for bytes, so the deterministic simulator (sim::FlakyTransport) and a
// real TCP/LLRP connection are interchangeable.  All calls take the
// current time explicitly -- the runtime owns no clock.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace tagspin::runtime {

enum class TransportStatus {
  kOk,     // bytes delivered (possibly zero-length keepalive)
  kIdle,   // connected, nothing new this poll
  kClosed, // connection lost or never established
};

struct TransportRead {
  TransportStatus status = TransportStatus::kClosed;
  std::vector<uint8_t> bytes;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Start or continue a connection attempt; true once established.
  /// Idempotent while connected.
  virtual bool connect(double nowS) = 0;

  /// Non-blocking poll for newly available bytes.
  virtual TransportRead poll(double nowS) = 0;

  /// Drop the connection (client side).  connect() may be called again.
  virtual void close() = 0;
};

/// Non-owning adapter: lets several consecutive ReaderSession instances
/// (the supervisor replaces sessions on restart) share one long-lived
/// transport endpoint, the way reconnecting to the same reader reuses the
/// reader, not the TCP socket.
class SharedTransport final : public Transport {
 public:
  explicit SharedTransport(std::shared_ptr<Transport> inner)
      : inner_(std::move(inner)) {}

  bool connect(double nowS) override { return inner_->connect(nowS); }
  TransportRead poll(double nowS) override { return inner_->poll(nowS); }
  void close() override { inner_->close(); }

 private:
  std::shared_ptr<Transport> inner_;
};

}  // namespace tagspin::runtime
