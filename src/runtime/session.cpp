#include "runtime/session.hpp"

#include <utility>

#include "obs/span.hpp"

namespace tagspin::runtime {

const char* sessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kDisconnected: return "disconnected";
    case SessionState::kConnecting: return "connecting";
    case SessionState::kSyncing: return "syncing";
    case SessionState::kStreaming: return "streaming";
    case SessionState::kDraining: return "draining";
    case SessionState::kBackoff: return "backoff";
    case SessionState::kFailed: return "failed";
  }
  return "unknown";
}

ReaderSession::Instruments ReaderSession::Instruments::resolve(
    obs::MetricsRegistry* registry) {
  Instruments in;
  if (!registry) return in;
  in.transitions = registry->counter("session.transitions");
  in.connectAttempts = registry->counter("session.connect_attempts");
  in.connectFailures = registry->counter("session.connect_failures");
  in.disconnects = registry->counter("session.disconnects");
  in.watchdogNoReport = registry->counter("session.watchdog_no_report");
  in.watchdogStuckClock = registry->counter("session.watchdog_stuck_clock");
  in.backoffWaits = registry->counter("session.backoff_waits");
  in.breakerTrips = registry->counter("session.breaker_trips");
  in.bytesReceived = registry->counter("session.bytes_received");
  in.reportsDecoded = registry->counter("session.reports_decoded");
  in.reportsEnqueued = registry->counter("session.reports_enqueued");
  in.decodeSpan = registry->histogram("span.llrp_decode");
  return in;
}

ReaderSession::ReaderSession(std::string name,
                             std::unique_ptr<Transport> transport,
                             SessionConfig config)
    : name_(std::move(name)),
      transport_(std::move(transport)),
      config_(config),
      queue_(config.queueCapacity, config.backpressure,
             config.degradeKeepEvery, config.queueHighWatermark),
      backoff_(config.backoff),
      breaker_(config.breaker),
      obs_(Instruments::resolve(config.metrics)),
      journal_(config.journal) {
  queue_.setInstruments(QueueInstruments::resolve(config.metrics));
}

void ReaderSession::enter(SessionState next, double) {
  if (next == state_) return;
  state_ = next;
  ++stats_.transitions;
  obs::add(obs_.transitions);
}

void ReaderSession::publishDecodeDelta() {
  if (!config_.metrics) return;
  const rfid::llrp::DecodeStats& cum = decoder_.stats();
  rfid::llrp::DecodeStats delta;
  delta.framesDecoded = cum.framesDecoded - publishedDecode_.framesDecoded;
  delta.framesSkipped = cum.framesSkipped - publishedDecode_.framesSkipped;
  delta.framesRejected = cum.framesRejected - publishedDecode_.framesRejected;
  delta.bytesResynced = cum.bytesResynced - publishedDecode_.bytesResynced;
  delta.bytesTotal = cum.bytesTotal - publishedDecode_.bytesTotal;
  rfid::llrp::publishDecodeStats(delta, *config_.metrics);
  publishedDecode_ = cum;
}

/// Shared failure tail: feed the breaker and either park in FAILED (trip)
/// or schedule the next backoff window.
void ReaderSession::noteFailureOutcome(double nowS) {
  breaker_.onFailure(nowS);
  if (breaker_.state() == BreakerState::kTripped) {
    obs::add(obs_.breakerTrips);
    obs::record(journal_, nowS, obs::Severity::kError,
                "circuit breaker tripped", {{"session", name_}});
    enter(SessionState::kFailed, nowS);
    return;
  }
  backoffUntilS_ = nowS + backoff_.nextDelayS();
  obs::add(obs_.backoffWaits);
  enter(SessionState::kBackoff, nowS);
}

void ReaderSession::tick(double nowS) {
  switch (state_) {
    case SessionState::kDisconnected:
      if (stopRequested_) break;
      // Gate before the breaker: allowAttempt() consumes the one half-open
      // probe per cooldown, so a budget-denied attempt must not reach it.
      if (config_.connectGate && !config_.connectGate(nowS)) {
        ++stats_.gateDeferred;
        break;
      }
      if (breaker_.allowAttempt(nowS)) startAttempt(nowS);
      break;

    case SessionState::kConnecting:
      if (stopRequested_) {
        beginDrain(nowS);
        break;
      }
      if (transport_->connect(nowS)) {
        enter(SessionState::kSyncing, nowS);
        deadlineS_ = nowS + config_.syncTimeoutS;
      } else if (nowS >= deadlineS_) {
        failAttempt(nowS);
      }
      break;

    case SessionState::kSyncing:
    case SessionState::kStreaming:
      if (stopRequested_) {
        beginDrain(nowS);
        break;
      }
      pump(nowS);
      break;

    case SessionState::kDraining:
      // beginDrain() completes synchronously; reaching a tick here means a
      // transition raced a stop -- resolve it the same way.
      beginDrain(nowS);
      break;

    case SessionState::kBackoff:
      if (stopRequested_) {
        enter(SessionState::kDisconnected, nowS);
        break;
      }
      if (nowS >= backoffUntilS_) {
        if (config_.connectGate && !config_.connectGate(nowS)) {
          ++stats_.gateDeferred;  // budget denied: stay parked in backoff
          break;
        }
        if (breaker_.allowAttempt(nowS)) {
          startAttempt(nowS);
          break;
        }
      }
      if (breaker_.state() == BreakerState::kTripped) {
        enter(SessionState::kFailed, nowS);
      }
      break;

    case SessionState::kFailed:
      break;  // terminal until the supervisor replaces the session
  }
}

void ReaderSession::startAttempt(double nowS) {
  ++stats_.connectAttempts;
  obs::add(obs_.connectAttempts);
  enter(SessionState::kConnecting, nowS);
  deadlineS_ = nowS + config_.connectTimeoutS;
  if (transport_->connect(nowS)) {
    enter(SessionState::kSyncing, nowS);
    deadlineS_ = nowS + config_.syncTimeoutS;
  }
}

void ReaderSession::pump(double nowS) {
  const TransportRead read = transport_->poll(nowS);
  if (read.status == TransportStatus::kClosed) {
    ++stats_.disconnects;
    obs::add(obs_.disconnects);
    obs::record(journal_, nowS, obs::Severity::kWarn, "transport closed",
                {{"session", name_},
                 {"state", sessionStateName(state_)}});
    beginDrain(nowS);
    return;
  }
  if (read.status == TransportStatus::kOk && !read.bytes.empty()) {
    stats_.bytesReceived += read.bytes.size();
    obs::add(obs_.bytesReceived, read.bytes.size());
    rfid::ReportStream reports;
    {
      TAGSPIN_SPAN(obs_.decodeSpan);
      reports = decoder_.feed(read.bytes);
    }
    publishDecodeDelta();
    if (!reports.empty()) {
      if (state_ == SessionState::kSyncing) {
        // First valid frame: the session is live.
        enter(SessionState::kStreaming, nowS);
        breaker_.onSuccess();
        backoff_.reset();
      }
      deliver(reports, nowS);
    }
  }

  if (state_ == SessionState::kSyncing) {
    if (nowS >= deadlineS_) failAttempt(nowS);
    return;
  }

  // STREAMING watchdogs.
  if (stats_.lastReportWallS >= 0.0 &&
      nowS - stats_.lastReportWallS > config_.noReportTimeoutS) {
    ++stats_.watchdogNoReport;
    obs::add(obs_.watchdogNoReport);
    obs::record(journal_, nowS, obs::Severity::kWarn,
                "no-report watchdog fired", {{"session", name_}});
    beginDrain(nowS);
    return;
  }
  if (stuckClockRun_ >= config_.stuckClockWindow) {
    ++stats_.watchdogStuckClock;
    obs::add(obs_.watchdogStuckClock);
    obs::record(journal_, nowS, obs::Severity::kWarn,
                "stuck-clock watchdog fired", {{"session", name_}});
    stuckClockRun_ = 0;
    beginDrain(nowS);
  }
}

void ReaderSession::deliver(const rfid::ReportStream& reports, double nowS) {
  obs::add(obs_.reportsDecoded, reports.size());
  for (const rfid::TagReport& r : reports) {
    ++stats_.reportsDecoded;
    // Stuck-clock detection on the raw decode order: a healthy reader's
    // timestamps advance; a frozen clock repeats (or barely moves) them.
    if (stats_.lastReaderClockS >= 0.0 &&
        r.timestampS - stats_.lastReaderClockS <
            config_.stuckClockMinAdvanceS) {
      ++stuckClockRun_;
    } else {
      stuckClockRun_ = 0;
    }
    if (r.timestampS > stats_.lastReaderClockS) {
      stats_.lastReaderClockS = r.timestampS;
    }
    if (queue_.offer(r)) {
      ++stats_.reportsEnqueued;
      obs::add(obs_.reportsEnqueued);
    }
  }
  stats_.lastReportWallS = nowS;
}

void ReaderSession::failAttempt(double nowS) {
  ++stats_.connectFailures;
  obs::add(obs_.connectFailures);
  transport_->close();
  decoder_.finish();
  publishDecodeDelta();
  noteFailureOutcome(nowS);
}

void ReaderSession::beginDrain(double nowS) {
  enter(SessionState::kDraining, nowS);
  // Flush the decoder's buffered tail (accounts torn fragments) and drop
  // the connection.  The queue keeps its contents: the supervisor drains
  // delivered reports even across a reconnect.
  decoder_.finish();
  publishDecodeDelta();
  transport_->close();
  stats_.lastReportWallS = -1.0;
  stuckClockRun_ = 0;
  if (stopRequested_) {
    enter(SessionState::kDisconnected, nowS);
    return;
  }
  noteFailureOutcome(nowS);
}

size_t ReaderSession::drainInto(rfid::ReportStream& out) {
  size_t n = 0;
  rfid::TagReport r;
  while (queue_.poll(r)) {
    out.push_back(r);
    ++n;
  }
  return n;
}

void ReaderSession::requestStop() { stopRequested_ = true; }

}  // namespace tagspin::runtime
