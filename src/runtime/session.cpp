#include "runtime/session.hpp"

#include <utility>

namespace tagspin::runtime {

const char* sessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kDisconnected: return "disconnected";
    case SessionState::kConnecting: return "connecting";
    case SessionState::kSyncing: return "syncing";
    case SessionState::kStreaming: return "streaming";
    case SessionState::kDraining: return "draining";
    case SessionState::kBackoff: return "backoff";
    case SessionState::kFailed: return "failed";
  }
  return "unknown";
}

ReaderSession::ReaderSession(std::string name,
                             std::unique_ptr<Transport> transport,
                             SessionConfig config)
    : name_(std::move(name)),
      transport_(std::move(transport)),
      config_(config),
      queue_(config.queueCapacity, config.backpressure,
             config.degradeKeepEvery, config.queueHighWatermark),
      backoff_(config.backoff),
      breaker_(config.breaker) {}

void ReaderSession::enter(SessionState next, double) {
  if (next == state_) return;
  state_ = next;
  ++stats_.transitions;
}

void ReaderSession::tick(double nowS) {
  switch (state_) {
    case SessionState::kDisconnected:
      if (!stopRequested_ && breaker_.allowAttempt(nowS)) startAttempt(nowS);
      break;

    case SessionState::kConnecting:
      if (stopRequested_) {
        beginDrain(nowS);
        break;
      }
      if (transport_->connect(nowS)) {
        enter(SessionState::kSyncing, nowS);
        deadlineS_ = nowS + config_.syncTimeoutS;
      } else if (nowS >= deadlineS_) {
        failAttempt(nowS);
      }
      break;

    case SessionState::kSyncing:
    case SessionState::kStreaming:
      if (stopRequested_) {
        beginDrain(nowS);
        break;
      }
      pump(nowS);
      break;

    case SessionState::kDraining:
      // beginDrain() completes synchronously; reaching a tick here means a
      // transition raced a stop -- resolve it the same way.
      beginDrain(nowS);
      break;

    case SessionState::kBackoff:
      if (stopRequested_) {
        enter(SessionState::kDisconnected, nowS);
        break;
      }
      if (nowS >= backoffUntilS_ && breaker_.allowAttempt(nowS)) {
        startAttempt(nowS);
      } else if (breaker_.state() == BreakerState::kTripped) {
        enter(SessionState::kFailed, nowS);
      }
      break;

    case SessionState::kFailed:
      break;  // terminal until the supervisor replaces the session
  }
}

void ReaderSession::startAttempt(double nowS) {
  ++stats_.connectAttempts;
  enter(SessionState::kConnecting, nowS);
  deadlineS_ = nowS + config_.connectTimeoutS;
  if (transport_->connect(nowS)) {
    enter(SessionState::kSyncing, nowS);
    deadlineS_ = nowS + config_.syncTimeoutS;
  }
}

void ReaderSession::pump(double nowS) {
  const TransportRead read = transport_->poll(nowS);
  if (read.status == TransportStatus::kClosed) {
    ++stats_.disconnects;
    beginDrain(nowS);
    return;
  }
  if (read.status == TransportStatus::kOk && !read.bytes.empty()) {
    stats_.bytesReceived += read.bytes.size();
    const rfid::ReportStream reports = decoder_.feed(read.bytes);
    if (!reports.empty()) {
      if (state_ == SessionState::kSyncing) {
        // First valid frame: the session is live.
        enter(SessionState::kStreaming, nowS);
        breaker_.onSuccess();
        backoff_.reset();
      }
      deliver(reports, nowS);
    }
  }

  if (state_ == SessionState::kSyncing) {
    if (nowS >= deadlineS_) failAttempt(nowS);
    return;
  }

  // STREAMING watchdogs.
  if (stats_.lastReportWallS >= 0.0 &&
      nowS - stats_.lastReportWallS > config_.noReportTimeoutS) {
    ++stats_.watchdogNoReport;
    beginDrain(nowS);
    return;
  }
  if (stuckClockRun_ >= config_.stuckClockWindow) {
    ++stats_.watchdogStuckClock;
    stuckClockRun_ = 0;
    beginDrain(nowS);
  }
}

void ReaderSession::deliver(const rfid::ReportStream& reports, double nowS) {
  for (const rfid::TagReport& r : reports) {
    ++stats_.reportsDecoded;
    // Stuck-clock detection on the raw decode order: a healthy reader's
    // timestamps advance; a frozen clock repeats (or barely moves) them.
    if (stats_.lastReaderClockS >= 0.0 &&
        r.timestampS - stats_.lastReaderClockS <
            config_.stuckClockMinAdvanceS) {
      ++stuckClockRun_;
    } else {
      stuckClockRun_ = 0;
    }
    if (r.timestampS > stats_.lastReaderClockS) {
      stats_.lastReaderClockS = r.timestampS;
    }
    if (queue_.offer(r)) ++stats_.reportsEnqueued;
  }
  stats_.lastReportWallS = nowS;
}

void ReaderSession::failAttempt(double nowS) {
  ++stats_.connectFailures;
  transport_->close();
  decoder_.finish();
  breaker_.onFailure(nowS);
  if (breaker_.state() == BreakerState::kTripped) {
    enter(SessionState::kFailed, nowS);
    return;
  }
  backoffUntilS_ = nowS + backoff_.nextDelayS();
  enter(SessionState::kBackoff, nowS);
}

void ReaderSession::beginDrain(double nowS) {
  enter(SessionState::kDraining, nowS);
  // Flush the decoder's buffered tail (accounts torn fragments) and drop
  // the connection.  The queue keeps its contents: the supervisor drains
  // delivered reports even across a reconnect.
  decoder_.finish();
  transport_->close();
  stats_.lastReportWallS = -1.0;
  stuckClockRun_ = 0;
  if (stopRequested_) {
    enter(SessionState::kDisconnected, nowS);
    return;
  }
  breaker_.onFailure(nowS);
  if (breaker_.state() == BreakerState::kTripped) {
    enter(SessionState::kFailed, nowS);
    return;
  }
  backoffUntilS_ = nowS + backoff_.nextDelayS();
  enter(SessionState::kBackoff, nowS);
}

size_t ReaderSession::drainInto(rfid::ReportStream& out) {
  size_t n = 0;
  rfid::TagReport r;
  while (queue_.poll(r)) {
    out.push_back(r);
    ++n;
  }
  return n;
}

void ReaderSession::requestStop() { stopRequested_ = true; }

}  // namespace tagspin::runtime
