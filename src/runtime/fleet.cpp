#include "runtime/fleet.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "runtime/checkpoint.hpp"

namespace tagspin::runtime {

const char* shedLevelName(ShedLevel level) {
  switch (level) {
    case ShedLevel::kNone: return "none";
    case ShedLevel::kDegraded: return "degraded";
    case ShedLevel::kCritical: return "critical";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Internal structures

/// One fleet session: a single-reader Supervisor plus the scheduling,
/// flap-tracking and quarantine state the shard keeps about it.
struct FleetManager::Member {
  std::string name;
  std::unique_ptr<Supervisor> supervisor;
  size_t shard = 0;
  size_t indexInShard = 0;

  // Fix scheduling.  fixDueS < 0 until the first tick anchors the stagger.
  double fixDueS = -1.0;
  bool hasFix = false;
  uint64_t fixes = 0;

  // Stat watermarks for delta extraction.  A supervisor-level restart
  // resets the session's stats; deltas treat a shrink as "the new value is
  // the whole delta".
  uint64_t lastAttempts = 0;
  uint64_t lastFailures = 0;
  uint64_t lastDisconnects = 0;
  uint64_t lastRestarts = 0;
  uint64_t lastBytes = 0;

  std::vector<double> flapTimes;  // event times inside the sliding window
  uint64_t flapEventsTotal = 0;

  // Quarantine state.
  bool quarantined = false;
  double probeIntervalS = 0.0;
  double nextProbeS = 0.0;
  double probeEndS = -1.0;  // > nowS while a probe window is open

  /// Footprint bytes currently charged to the shard arena for this member.
  uint64_t memBytes = 0;
};

/// Cumulative per-shard counters.  Each shard is processed by exactly one
/// thread per tick, so these are plain integers; stats() sums across
/// shards from the coordinator after the parallel phase.
struct ShardCounters {
  uint64_t ejections = 0;
  uint64_t readmissions = 0;
  uint64_t probes = 0;
  uint64_t budgetDenied = 0;
  uint64_t sessionsDeferred = 0;
  uint64_t fixesComputed = 0;
  uint64_t fixesFailed = 0;
  uint64_t fixesSkippedShed = 0;
  uint64_t checkpointWrites = 0;
  uint64_t checkpointFailures = 0;
  uint64_t memDenied = 0;
  uint64_t memTrims = 0;
  uint64_t memEjections = 0;
  uint64_t badAllocCaught = 0;
  double workUnitsSpent = 0.0;
};

struct FleetManager::Shard {
  size_t index = 0;
  std::vector<std::unique_ptr<Member>> members;
  TokenBucket retryBudget;
  size_t cursor = 0;  // round-robin resume point across ticks
  size_t quarantinedCount = 0;

  double nextCheckpointS = -1.0;  // staggered lazily on the first due check
  bool checkpointGranted = false;

  /// demand/budget pressure, exponentially smoothed; read by the
  /// coordinator between ticks to pick the shed level.
  double pressureEma = 0.0;

  ShardCounters counters;
  std::vector<FleetFixEvent> pendingFix;  // drained by the coordinator

  /// Byte ledger for this fault domain (detached when accounting is off).
  core::MemArena memArena;

  obs::Gauge* sessionsGauge = nullptr;
  obs::Gauge* quarantinedGauge = nullptr;
  obs::Gauge* pressureGauge = nullptr;
  obs::Gauge* memBytesGauge = nullptr;
  obs::Gauge* memPressureGauge = nullptr;
};

/// Persistent pool of workers pulling shard indices from a shared ticket.
/// The coordinator thread participates too, so workerThreads = 1 still
/// means two lanes of progress and pool teardown can never deadlock a
/// half-finished tick.
class FleetManager::WorkerPool {
 public:
  explicit WorkerPool(size_t threads) {
    threads_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      threads_.emplace_back([this] { workerLoop(); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// Run fn(0..jobs-1) across the pool + the calling thread; returns when
  /// every job has finished.
  void run(size_t jobs, const std::function<void(size_t)>& fn) {
    std::unique_lock<std::mutex> lock(mu_);
    fn_ = &fn;
    jobCount_ = jobs;
    nextJob_ = 0;
    ++generation_;
    cv_.notify_all();
    while (nextJob_ < jobCount_) {
      const size_t idx = nextJob_++;
      ++active_;
      lock.unlock();
      fn(idx);
      lock.lock();
      --active_;
    }
    doneCv_.wait(lock, [&] { return active_ == 0; });
    fn_ = nullptr;
  }

 private:
  void workerLoop() {
    uint64_t seenGeneration = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock,
               [&] { return stop_ || generation_ != seenGeneration; });
      if (stop_) return;
      seenGeneration = generation_;
      while (nextJob_ < jobCount_) {
        const size_t idx = nextJob_++;
        ++active_;
        lock.unlock();
        (*fn_)(idx);
        lock.lock();
        --active_;
      }
      if (active_ == 0) doneCv_.notify_all();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable doneCv_;
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t jobCount_ = 0;
  size_t nextJob_ = 0;
  size_t active_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

// ---------------------------------------------------------------------------
// Construction / registration

FleetManager::Instruments FleetManager::Instruments::resolve(
    obs::MetricsRegistry* registry) {
  Instruments in;
  if (!registry) return in;
  in.admissionRejected = registry->counter("fleet.admission_rejected");
  in.ejections = registry->counter("fleet.ejections");
  in.readmissions = registry->counter("fleet.readmissions");
  in.probes = registry->counter("fleet.probes");
  in.budgetDenied = registry->counter("fleet.budget_denied");
  in.sessionsDeferred = registry->counter("fleet.sessions_deferred");
  in.fixesComputed = registry->counter("fleet.fixes_computed");
  in.fixesSkippedShed = registry->counter("fleet.fixes_skipped_shed");
  in.checkpointWrites = registry->counter("fleet.checkpoint_writes");
  in.checkpointFailures = registry->counter("fleet.checkpoint_failures");
  in.shedLevel = registry->gauge("fleet.shed_level");
  in.memDenied = registry->counter("fleet.mem_denied");
  in.memTrims = registry->counter("fleet.mem_trims");
  in.memEjections = registry->counter("fleet.mem_ejections");
  in.badAllocCaught = registry->counter("fleet.bad_alloc_caught");
  in.memUsedBytes = registry->gauge("mem.used_bytes");
  in.memBudgetBytes = registry->gauge("mem.budget_bytes");
  in.memPressure = registry->gauge("mem.pressure");
  in.memShedLevel = registry->gauge("mem.shed_level");
  return in;
}

FleetManager::FleetManager(FleetConfig config, core::DeploymentFile deployment)
    : config_(std::move(config)), deployment_(std::move(deployment)) {
  if (config_.shards < 1) config_.shards = 1;
  shards_.reserve(config_.shards);
  for (size_t k = 0; k < config_.shards; ++k) {
    auto shard = std::make_unique<Shard>();
    shard->index = k;
    shard->retryBudget = TokenBucket(config_.retryBudget.tokensPerSecond,
                                     config_.retryBudget.burst);
    memAccounting_ = config_.mem != nullptr ||
                     config_.memBudgetPerShardBytes > 0 ||
                     config_.memBudgetPerSessionBytes > 0;
    if (memAccounting_) {
      shard->memArena =
          core::MemArena(config_.mem, config_.memBudgetPerShardBytes,
                         "fleet.shard" + std::to_string(k));
    }
    if (config_.metrics) {
      const std::string prefix = "fleet.shard" + std::to_string(k);
      shard->sessionsGauge = config_.metrics->gauge(prefix + ".sessions");
      shard->quarantinedGauge =
          config_.metrics->gauge(prefix + ".quarantined");
      shard->pressureGauge = config_.metrics->gauge(prefix + ".pressure");
      shard->memBytesGauge = config_.metrics->gauge(prefix + ".mem_bytes");
      shard->memPressureGauge =
          config_.metrics->gauge(prefix + ".mem_pressure");
    }
    shards_.push_back(std::move(shard));
  }
  if (config_.workerThreads > 0) {
    pool_ = std::make_unique<WorkerPool>(config_.workerThreads);
  }
  obs_ = Instruments::resolve(config_.metrics);
}

FleetManager::~FleetManager() = default;

bool FleetManager::registerSession(std::string name,
                                   TransportFactory factory) {
  size_t perShardCap = config_.maxSessionsPerShard;
  if (perShardCap == 0) {
    perShardCap = (config_.maxSessions + shards_.size() - 1) / shards_.size();
  }
  // Least-loaded shard (ties go to the lowest index, so round-robin
  // registration stripes cohorts evenly across fault domains).
  Shard* target = nullptr;
  for (auto& shard : shards_) {
    if (shard->members.size() >= perShardCap) continue;
    if (!target || shard->members.size() < target->members.size()) {
      target = shard.get();
    }
  }
  if (sessionCount() >= config_.maxSessions || target == nullptr ||
      byName_.count(name) > 0) {
    ++admissionRejected_;
    obs::add(obs_.admissionRejected);
    obs::record(config_.journal, 0.0, obs::Severity::kWarn,
                "fleet admission rejected", {{"session", name}});
    return false;
  }

  auto member = std::make_unique<Member>();
  member->name = name;
  member->shard = target->index;
  member->indexInShard = target->members.size();

  SupervisorConfig supConfig = config_.supervisor;
  supConfig.checkpointIntervalS = 0.0;  // persistence is batched per shard
  if (config_.metrics && !supConfig.metrics) {
    supConfig.metrics = config_.metrics;
  }
  if (config_.journal && !supConfig.journal) {
    supConfig.journal = config_.journal;
  }
  // Shard-local retry budget as the connect gate.  Shards never move or
  // reallocate after construction, and the gate only runs while this
  // shard's processor owns the member, so the captures are safe.  A
  // session's FIRST attempt is always admitted -- the budget paces
  // reconnect storms, and a cold-starting fleet connecting everything at
  // once is admission's problem (the work-unit scheduler spreads the
  // connect work), not a retry storm.  Supervisor-level restarts get the
  // same free attempt: the replacement is a fresh endpoint and the circuit
  // breaker already throttled the path to it.
  Shard* shardPtr = target;
  Member* memberPtr = member.get();
  supConfig.session.connectGate = [this, shardPtr, memberPtr](double nowS) {
    if (memberPtr->supervisor->session(0).stats().connectAttempts == 0) {
      return true;
    }
    if (shardPtr->retryBudget.tryAcquire(nowS)) return true;
    ++shardPtr->counters.budgetDenied;
    obs::add(obs_.budgetDenied);
    return false;
  };
  member->supervisor = std::make_unique<Supervisor>(
      std::move(supConfig), deployment_, /*store=*/nullptr);
  member->supervisor->addSession(member->name, std::move(factory));

  byName_[member->name] = member.get();
  target->members.push_back(std::move(member));
  ++admitted_;
  return true;
}

size_t FleetManager::sessionCount() const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->members.size();
  return n;
}

// ---------------------------------------------------------------------------
// Tick

double FleetManager::effectiveFixIntervalS() const {
  return shedLevel_ == ShedLevel::kNone
             ? config_.fixIntervalS
             : config_.fixIntervalS * config_.degradedFixStretch;
}

double FleetManager::effectiveCheckpointIntervalS() const {
  switch (shedLevel_) {
    case ShedLevel::kNone: return config_.checkpointIntervalS;
    case ShedLevel::kDegraded:
      return config_.checkpointIntervalS * config_.degradedCheckpointStretch;
    case ShedLevel::kCritical:
      return config_.checkpointIntervalS * config_.degradedCheckpointStretch *
             2.0;
  }
  return config_.checkpointIntervalS;
}

namespace {
/// One hysteretic ladder step, shared by the work and memory axes.
ShedLevel stepShedLevel(ShedLevel level, double pressure, double degraded,
                        double critical, double hysteresis) {
  switch (level) {
    case ShedLevel::kNone:
      if (pressure > critical) return ShedLevel::kCritical;
      if (pressure > degraded) return ShedLevel::kDegraded;
      break;
    case ShedLevel::kDegraded:
      if (pressure > critical) return ShedLevel::kCritical;
      if (pressure < degraded - hysteresis) return ShedLevel::kNone;
      break;
    case ShedLevel::kCritical:
      if (pressure < critical - hysteresis) {
        return pressure > degraded ? ShedLevel::kDegraded : ShedLevel::kNone;
      }
      break;
  }
  return level;
}
}  // namespace

void FleetManager::updateShedLevel() {
  double pressure = 0.0;
  double memPressure = 0.0;
  for (const auto& shard : shards_) {
    pressure = std::max(pressure, shard->pressureEma);
    memPressure = std::max(memPressure, shard->memArena.pressure());
  }
  workShedLevel_ = stepShedLevel(workShedLevel_, pressure,
                                 config_.shedDegradedPressure,
                                 config_.shedCriticalPressure,
                                 config_.shedHysteresis);
  memShedLevel_ = stepShedLevel(memShedLevel_, memPressure,
                                config_.memDegradedPressure,
                                config_.memCriticalPressure,
                                config_.memShedHysteresis);
  // Either axis can push the fleet into degradation; both must clear for
  // it to recover.  The combined level is what stretches cadences.
  shedLevel_ = std::max(workShedLevel_, memShedLevel_);
  obs::set(obs_.shedLevel, static_cast<double>(shedLevel_));
  obs::set(obs_.memShedLevel, static_cast<double>(memShedLevel_));
  obs::set(obs_.memPressure, memPressure);
}

void FleetManager::tick(double nowS) {
  updateShedLevel();
  if (shedLevel_ == ShedLevel::kDegraded) ++shedDegradedTicks_;
  if (shedLevel_ == ShedLevel::kCritical) ++shedCriticalTicks_;

  // Grant checkpoint writes before the (possibly parallel) shard phase so
  // the per-tick fan-out bound is decided in one place.
  size_t grants = 0;
  const bool persistence =
      !config_.checkpointDir.empty() && config_.checkpointIntervalS > 0.0;
  if (persistence) {
    const double interval = effectiveCheckpointIntervalS();
    for (auto& shard : shards_) {
      shard->checkpointGranted = false;
      if (shard->nextCheckpointS < 0.0) {
        // Stagger first deadlines across shards so steady state never has
        // two shards due on the same tick to begin with.
        shard->nextCheckpointS =
            nowS + interval * static_cast<double>(shard->index + 1) /
                       static_cast<double>(shards_.size());
      }
      if (grants < config_.maxCheckpointWritesPerTick &&
          nowS >= shard->nextCheckpointS) {
        shard->checkpointGranted = true;
        ++grants;
      }
    }
  }

  if (pool_) {
    pool_->run(shards_.size(),
               [this, nowS](size_t k) { processShard(*shards_[k], nowS); });
  } else {
    for (auto& shard : shards_) processShard(*shard, nowS);
  }

  // Deterministic post-phase: drain fix events in shard order.
  for (auto& shard : shards_) {
    if (config_.onFix) {
      for (const FleetFixEvent& ev : shard->pendingFix) config_.onFix(ev);
    }
    shard->pendingFix.clear();
  }

  if (memAccounting_) {
    uint64_t used = 0;
    uint64_t budget = 0;
    for (const auto& shard : shards_) {
      used += shard->memArena.usedBytes();
      budget += shard->memArena.budgetBytes();
    }
    obs::set(obs_.memUsedBytes, static_cast<double>(used));
    obs::set(obs_.memBudgetBytes, static_cast<double>(budget));
  }
}

void FleetManager::processShard(Shard& shard, double nowS) {
  const size_t n = shard.members.size();
  if (n == 0) return;

  double budget = config_.workUnitsPerTick > 0.0
                      ? config_.workUnitsPerTick
                      : 3.0 * static_cast<double>(n) + 8.0;
  const double fullBudget = budget;
  double spent = 0.0;
  size_t visited = 0;
  while (visited < n && spent < budget) {
    Member& member = *shard.members[(shard.cursor + visited) % n];
    try {
      spent += processMember(shard, member, nowS);
    } catch (const std::bad_alloc&) {
      // The worker boundary: an allocation failure inside one session's
      // processing quarantines that session; it must never cross into the
      // shard loop as a throw.
      ++shard.counters.badAllocCaught;
      obs::add(obs_.badAllocCaught);
      memEject(shard, member, nowS);
      spent += 1.0;
    }
    ++visited;
  }
  const size_t deferred = n - visited;
  shard.cursor = (shard.cursor + visited) % n;
  shard.counters.sessionsDeferred += deferred;
  obs::add(obs_.sessionsDeferred, deferred);
  shard.counters.workUnitsSpent += spent;

  // Demand = what we spent plus a floor estimate (one unit) for every
  // session we could not even visit.
  const double demand = spent + static_cast<double>(deferred);
  const double instant = demand / fullBudget;
  shard.pressureEma = 0.8 * shard.pressureEma + 0.2 * instant;

  if (memAccounting_) shedShardMemory(shard, nowS);

  if (shard.checkpointGranted) {
    writeShardCheckpoint(shard, nowS);
    shard.nextCheckpointS = nowS + effectiveCheckpointIntervalS();
    shard.checkpointGranted = false;
  }

  obs::set(shard.sessionsGauge, static_cast<double>(n));
  obs::set(shard.quarantinedGauge,
           static_cast<double>(shard.quarantinedCount));
  obs::set(shard.pressureGauge, shard.pressureEma);
  if (memAccounting_) {
    obs::set(shard.memBytesGauge,
             static_cast<double>(shard.memArena.usedBytes()));
    obs::set(shard.memPressureGauge, shard.memArena.pressure());
  }
}

double FleetManager::processMember(Shard& shard, Member& member,
                                   double nowS) {
  if (member.quarantined) {
    const bool inWindow = member.probeEndS > nowS;
    if (!inWindow) {
      if (nowS < member.nextProbeS) return 0.0;  // parked, zero cost
      member.probeEndS = nowS + config_.quarantine.probeWindowS;
      ++shard.counters.probes;
      obs::add(obs_.probes);
    }
    const double cost = tickSupervisor(shard, member, nowS);
    if (member.supervisor->session(0).state() == SessionState::kStreaming) {
      readmit(shard, member, nowS);
    } else if (nowS >= member.probeEndS) {
      // Probe missed: escalate and park until the next rung.
      member.probeIntervalS =
          std::min(member.probeIntervalS * config_.quarantine.probeMultiplier,
                   config_.quarantine.probeMaxS);
      member.nextProbeS = nowS + member.probeIntervalS;
      member.probeEndS = -1.0;
    }
    return cost;
  }

  double cost = tickSupervisor(shard, member, nowS);
  if (!member.quarantined) {  // tickSupervisor may have ejected it
    cost += maybeFix(shard, member, nowS);
  }
  return cost;
}

double FleetManager::tickSupervisor(Shard& shard, Member& member,
                                    double nowS) {
  member.supervisor->tick(nowS);

  auto delta = [](uint64_t current, uint64_t& watermark) {
    const uint64_t d = current >= watermark ? current - watermark : current;
    watermark = current;
    return d;
  };
  const SessionStats& ss = member.supervisor->session(0).stats();
  const uint64_t attempts = delta(ss.connectAttempts, member.lastAttempts);
  const uint64_t failures = delta(ss.connectFailures, member.lastFailures);
  const uint64_t disconnects = delta(ss.disconnects, member.lastDisconnects);
  const uint64_t bytes = delta(ss.bytesReceived, member.lastBytes);
  const uint64_t restarts = delta(member.supervisor->stats().sessionsRestarted,
                                  member.lastRestarts);

  const uint64_t flaps = failures + disconnects + restarts;
  if (flaps > 0 && !member.quarantined) {
    member.flapEventsTotal += flaps;
    for (uint64_t i = 0; i < flaps; ++i) member.flapTimes.push_back(nowS);
    const double cutoff = nowS - config_.quarantine.flapWindowS;
    size_t keepFrom = 0;
    while (keepFrom < member.flapTimes.size() &&
           member.flapTimes[keepFrom] < cutoff) {
      ++keepFrom;
    }
    member.flapTimes.erase(member.flapTimes.begin(),
                           member.flapTimes.begin() +
                               static_cast<std::ptrdiff_t>(keepFrom));
    if (member.flapTimes.size() >= config_.quarantine.flapThreshold) {
      eject(shard, member, nowS);
    }
  } else if (flaps > 0) {
    member.flapEventsTotal += flaps;
  }

  if (memAccounting_) accountMemory(shard, member, nowS);

  return 1.0 + 4.0 * static_cast<double>(attempts) +
         static_cast<double>(bytes) / 1024.0;
}

void FleetManager::accountMemory(Shard& shard, Member& member, double nowS) {
  const uint64_t footprint = member.supervisor->memoryFootprintBytes();
  if (footprint <= member.memBytes) {
    shard.memArena.release(member.memBytes - footprint);
    member.memBytes = footprint;
    return;
  }
  const auto fits = [&](uint64_t target) {
    return config_.memBudgetPerSessionBytes == 0 ||
           target <= config_.memBudgetPerSessionBytes;
  };
  if (fits(footprint) && shard.memArena.tryReserve(footprint - member.memBytes)) {
    member.memBytes = footprint;
    return;
  }
  ++shard.counters.memDenied;
  obs::add(obs_.memDenied);
  // First rung: trim the session (2x snapshot decimation -- degraded
  // sampling density, never lost arc coverage) and retry the reservation.
  member.supervisor->trimMemory();
  ++shard.counters.memTrims;
  obs::add(obs_.memTrims);
  const uint64_t trimmed = member.supervisor->memoryFootprintBytes();
  if (trimmed <= member.memBytes) {
    shard.memArena.release(member.memBytes - trimmed);
    member.memBytes = trimmed;
    return;
  }
  if (fits(trimmed) && shard.memArena.tryReserve(trimmed - member.memBytes)) {
    member.memBytes = trimmed;
    return;
  }
  // Last rung: the session cannot be made to fit; isolate it instead of
  // letting it push the shard (and its neighbors) over budget.
  memEject(shard, member, nowS);
}

void FleetManager::memEject(Shard& shard, Member& member, double nowS) {
  // Hard trim: repeated decimation until the footprint stops shrinking,
  // then settle the ledger so the shard gets its headroom back now.
  for (int i = 0; i < 4; ++i) {
    const uint64_t before = member.supervisor->memoryFootprintBytes();
    member.supervisor->trimMemory();
    if (member.supervisor->memoryFootprintBytes() >= before) break;
  }
  const uint64_t footprint = member.supervisor->memoryFootprintBytes();
  if (footprint < member.memBytes) {
    shard.memArena.release(member.memBytes - footprint);
    member.memBytes = footprint;
  }
  ++shard.counters.memEjections;
  obs::add(obs_.memEjections);
  obs::record(config_.journal, nowS, obs::Severity::kWarn,
              "session quarantined under memory pressure",
              {{"session", member.name},
               {"shard", std::to_string(shard.index)},
               {"footprint_bytes", std::to_string(footprint)}});
  if (!member.quarantined) eject(shard, member, nowS);
}

void FleetManager::shedShardMemory(Shard& shard, double nowS) {
  const double pressure = shard.memArena.pressure();
  if (pressure <= config_.memDegradedPressure) return;
  // Shard-local response, largest footprint first: at degraded pressure a
  // trim usually buys the headroom back; past critical the biggest member
  // is quarantined outright.  One victim per tick keeps the response
  // proportional -- pressure that persists escalates tick by tick.
  Member* victim = nullptr;
  for (auto& member : shard.members) {
    if (member->quarantined) continue;
    if (!victim || member->memBytes > victim->memBytes) victim = member.get();
  }
  if (!victim || victim->memBytes == 0) return;
  if (pressure > config_.memCriticalPressure) {
    memEject(shard, *victim, nowS);
    return;
  }
  victim->supervisor->trimMemory();
  ++shard.counters.memTrims;
  obs::add(obs_.memTrims);
  const uint64_t trimmed = victim->supervisor->memoryFootprintBytes();
  if (trimmed < victim->memBytes) {
    shard.memArena.release(victim->memBytes - trimmed);
    victim->memBytes = trimmed;
  }
}

double FleetManager::maybeFix(Shard& shard, Member& member, double nowS) {
  if (member.fixDueS < 0.0) {
    // First tick anchors the stagger: spread sessions across the interval
    // so fixes don't all land on the same tick.  Prime modulus keeps the
    // phases off any rational tick grid.
    const double frac = static_cast<double>(member.indexInShard % 61) / 61.0;
    member.fixDueS = nowS + config_.fixIntervalS * (0.25 + frac);
    return 0.0;
  }
  if (nowS < member.fixDueS) return 0.0;

  if (shedLevel_ == ShedLevel::kCritical && member.hasFix) {
    // Critical shedding: a session that already holds a fix keeps it;
    // recomputation is the first work to go.
    ++shard.counters.fixesSkippedShed;
    obs::add(obs_.fixesSkippedShed);
    member.fixDueS = nowS + effectiveFixIntervalS();
    return 0.0;
  }

  const double dueS = member.fixDueS;
  const auto result = member.supervisor->locateAndRecover2D(nowS);
  FleetFixEvent ev;
  ev.name = member.name;
  ev.shard = shard.index;
  ev.dueS = dueS;
  ev.nowS = nowS;
  ev.ok = result.hasValue();
  shard.pendingFix.push_back(std::move(ev));
  // Reschedule from the DUE time, not the service time: each session keeps
  // its stagger phase (off the tick grid), so servicedAt - dueAt measures
  // real scheduling delay instead of collapsing to zero once every due time
  // has been re-anchored onto a tick boundary.
  if (result.hasValue()) {
    member.hasFix = true;
    ++member.fixes;
    ++shard.counters.fixesComputed;
    obs::add(obs_.fixesComputed);
    const double interval = effectiveFixIntervalS();
    member.fixDueS = dueS + interval;
    while (member.fixDueS <= nowS) member.fixDueS += interval;
  } else {
    ++shard.counters.fixesFailed;
    member.fixDueS = dueS + config_.fixRetryS;
    while (member.fixDueS <= nowS) member.fixDueS += config_.fixRetryS;
  }
  return 24.0;  // a fix recomputation is the priciest unit of work
}

void FleetManager::eject(Shard& shard, Member& member, double nowS) {
  member.quarantined = true;
  member.flapTimes.clear();
  member.probeIntervalS = config_.quarantine.probeBaseS;
  member.nextProbeS = nowS + member.probeIntervalS;
  member.probeEndS = -1.0;
  ++shard.counters.ejections;
  ++shard.quarantinedCount;
  obs::add(obs_.ejections);
  obs::record(config_.journal, nowS, obs::Severity::kWarn,
              "session ejected to quarantine",
              {{"session", member.name},
               {"shard", std::to_string(shard.index)}});
}

void FleetManager::readmit(Shard& shard, Member& member, double nowS) {
  member.quarantined = false;
  member.flapTimes.clear();
  member.probeEndS = -1.0;
  member.fixDueS = nowS + config_.fixRetryS;  // it has catching up to do
  ++shard.counters.readmissions;
  if (shard.quarantinedCount > 0) --shard.quarantinedCount;
  obs::add(obs_.readmissions);
  obs::record(config_.journal, nowS, obs::Severity::kInfo,
              "session readmitted from quarantine",
              {{"session", member.name},
               {"shard", std::to_string(shard.index)}});
}

// ---------------------------------------------------------------------------
// Batched shard checkpoints
//
// Payload layout (wrapped in the standard CheckpointStore CRC frame):
//   fleet-shard v1
//   shard <k>
//   sessions <n>
//   session <nameLen> <payloadLen>\n<name bytes><payload bytes>
//   ... repeated n times

std::string FleetManager::shardCheckpointPath(size_t shardIndex) const {
  return config_.checkpointDir + "/fleet_shard" + std::to_string(shardIndex) +
         ".ckpt";
}

void FleetManager::writeShardCheckpoint(Shard& shard, double nowS) {
  std::ostringstream payload;
  payload << "fleet-shard v1\n"
          << "shard " << shard.index << "\n"
          << "sessions " << shard.members.size() << "\n";
  for (const auto& member : shard.members) {
    const std::string slice =
        core::checkpointToString(member->supervisor->makeCheckpoint(nowS));
    payload << "session " << member->name.size() << " " << slice.size()
            << "\n"
            << member->name << slice;
  }
  const std::string framed = CheckpointStore::frame(payload.str());
  // The framed image is the checkpoint path's allocation spike; reserve it
  // before writing and *refuse the save* on denial -- a skipped checkpoint
  // costs recovery freshness, an OOM mid-write could cost the tick.  The
  // next granted deadline retries after the pressure clears.
  if (memAccounting_ && !shard.memArena.tryReserve(framed.size())) {
    ++shard.counters.memDenied;
    obs::add(obs_.memDenied);
    ++shard.counters.checkpointFailures;
    obs::add(obs_.checkpointFailures);
    obs::record(config_.journal, nowS, obs::Severity::kWarn,
                "fleet shard checkpoint skipped under memory pressure",
                {{"shard", std::to_string(shard.index)},
                 {"bytes", std::to_string(framed.size())}});
    return;
  }
  try {
    core::writeFileDurable(core::resolveIo(config_.io),
                           shardCheckpointPath(shard.index), framed);
    ++shard.counters.checkpointWrites;
    obs::add(obs_.checkpointWrites);
  } catch (const std::exception& e) {
    ++shard.counters.checkpointFailures;  // disk trouble must not kill ticks
    obs::add(obs_.checkpointFailures);
    obs::record(config_.journal, nowS, obs::Severity::kError,
                "fleet shard checkpoint failed",
                {{"shard", std::to_string(shard.index)},
                 {"error", e.what()}});
  }
  if (memAccounting_) shard.memArena.release(framed.size());
}

size_t FleetManager::restore() {
  size_t restored = 0;
  for (auto& shard : shards_) {
    std::string raw;
    if (!core::resolveIo(config_.io)
             .readFile(shardCheckpointPath(shard->index), raw)
             .ok()) {
      continue;  // fresh start for this shard
    }
    const core::Result<std::string> payload = CheckpointStore::unframe(raw);
    if (!payload) {
      ++shard->counters.checkpointFailures;
      obs::add(obs_.checkpointFailures);
      obs::record(config_.journal, 0.0, obs::Severity::kWarn,
                  "fleet shard checkpoint discarded",
                  {{"shard", std::to_string(shard->index)},
                   {"reason", payload.error().message}});
      continue;
    }
    const std::string& text = *payload;
    size_t pos = 0;
    auto readLine = [&](std::string& line) {
      const size_t nl = text.find('\n', pos);
      if (nl == std::string::npos) return false;
      line = text.substr(pos, nl - pos);
      pos = nl + 1;
      return true;
    };
    std::string line;
    if (!readLine(line) || line != "fleet-shard v1") continue;
    if (!readLine(line) || line.rfind("shard ", 0) != 0) continue;
    if (!readLine(line) || line.rfind("sessions ", 0) != 0) continue;
    size_t count = 0;
    try {
      count = static_cast<size_t>(std::stoull(line.substr(9)));
    } catch (const std::exception&) {
      continue;
    }
    for (size_t i = 0; i < count; ++i) {
      if (!readLine(line) || line.rfind("session ", 0) != 0) break;
      size_t nameLen = 0;
      size_t sliceLen = 0;
      std::istringstream fields(line.substr(8));
      if (!(fields >> nameLen >> sliceLen)) break;
      if (pos + nameLen + sliceLen > text.size()) break;
      const std::string name = text.substr(pos, nameLen);
      pos += nameLen;
      const std::string slice = text.substr(pos, sliceLen);
      pos += sliceLen;
      const auto it = byName_.find(name);
      if (it == byName_.end()) continue;  // session no longer registered
      try {
        it->second->supervisor->restoreFrom(core::checkpointFromString(slice));
        it->second->hasFix = false;  // recompute from restored state
        ++restored;
      } catch (const std::exception& e) {
        ++shard->counters.checkpointFailures;
        obs::add(obs_.checkpointFailures);
        obs::record(config_.journal, 0.0, obs::Severity::kWarn,
                    "fleet member checkpoint discarded",
                    {{"session", name},
                     {"shard", std::to_string(shard->index)},
                     {"reason", e.what()}});
      }
    }
  }
  return restored;
}

void FleetManager::shutdown(double nowS) {
  for (auto& shard : shards_) {
    for (auto& member : shard->members) {
      member->supervisor->shutdown(nowS);
    }
    if (!config_.checkpointDir.empty()) {
      writeShardCheckpoint(*shard, nowS);
    }
  }
}

// ---------------------------------------------------------------------------
// Introspection

FleetStats FleetManager::stats() const {
  FleetStats s;
  s.admitted = admitted_;
  s.admissionRejected = admissionRejected_;
  s.shedDegradedTicks = shedDegradedTicks_;
  s.shedCriticalTicks = shedCriticalTicks_;
  for (const auto& shard : shards_) {
    const ShardCounters& c = shard->counters;
    s.ejections += c.ejections;
    s.readmissions += c.readmissions;
    s.probes += c.probes;
    s.budgetDenied += c.budgetDenied;
    s.sessionsDeferred += c.sessionsDeferred;
    s.fixesComputed += c.fixesComputed;
    s.fixesFailed += c.fixesFailed;
    s.fixesSkippedShed += c.fixesSkippedShed;
    s.checkpointWrites += c.checkpointWrites;
    s.checkpointFailures += c.checkpointFailures;
    s.memDeniedReserves += c.memDenied;
    s.memTrims += c.memTrims;
    s.memEjections += c.memEjections;
    s.badAllocCaught += c.badAllocCaught;
    s.memUsedBytes += shard->memArena.usedBytes();
    s.memPeakBytes += shard->memArena.peakBytes();
    s.workUnitsSpent += c.workUnitsSpent;
    s.quarantinedNow += shard->quarantinedCount;
  }
  return s;
}

std::vector<FleetManager::SessionView> FleetManager::sessions() const {
  std::vector<SessionView> views;
  views.reserve(sessionCount());
  for (const auto& shard : shards_) {
    for (const auto& member : shard->members) {
      SessionView v;
      v.name = member->name;
      v.shard = shard->index;
      v.state = member->supervisor->session(0).state();
      v.quarantined = member->quarantined;
      v.hasFix = member->hasFix;
      v.fixes = member->fixes;
      v.flapEvents = member->flapEventsTotal;
      if (const track::Tracker* tracker = member->supervisor->tracker();
          tracker && tracker->hasEstimate()) {
        const track::TrackEstimate& est = tracker->lastEstimate();
        v.hasTrack = true;
        v.trackState = est.state;
        v.trackPosition = est.position;
        v.trackVelocity = est.velocity;
      }
      views.push_back(std::move(v));
    }
  }
  return views;
}

const Supervisor* FleetManager::supervisor(const std::string& name) const {
  const auto it = byName_.find(name);
  return it == byName_.end() ? nullptr : it->second->supervisor.get();
}

}  // namespace tagspin::runtime
