#include "runtime/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/power_profile.hpp"
#include "geom/angles.hpp"
#include "obs/span.hpp"
#include "rf/constants.hpp"
#include "track/fix_adapter.hpp"

namespace tagspin::runtime {

namespace {

/// Dedup key: timestamp quantised to the wire's microsecond resolution,
/// phase to its 1/4096-turn resolution, plus the channel -- the same triple
/// the robust preprocess uses to recognise reader retransmits.
uint64_t dedupKey(const rfid::TagReport& r) {
  const uint64_t us = static_cast<uint64_t>(std::llround(r.timestampS * 1e6));
  const uint64_t phaseQ = static_cast<uint64_t>(std::llround(
                              geom::wrapTwoPi(r.phaseRad) / (2.0 * geom::kPi) *
                              4096.0)) &
                          0xFFFu;
  return (us << 20) ^ (phaseQ << 8) ^
         static_cast<uint64_t>(static_cast<uint32_t>(r.channelIndex));
}

core::Snapshot toSnapshot(const rfid::TagReport& r) {
  core::Snapshot s;
  s.timeS = r.timestampS;
  s.phaseRad = geom::wrapTwoPi(r.phaseRad);
  s.lambdaM = rf::wavelength(r.frequencyHz);
  s.channel = r.channelIndex;
  s.rssiDbm = r.rssiDbm;
  return s;
}

}  // namespace

Supervisor::Instruments Supervisor::Instruments::resolve(
    obs::MetricsRegistry* registry) {
  Instruments in;
  if (!registry) return in;
  in.reportsSeen = registry->counter("supervisor.reports_seen");
  in.reportsIngested = registry->counter("supervisor.reports_ingested");
  in.duplicatesSuppressed =
      registry->counter("supervisor.duplicates_suppressed");
  in.unknownEpcDropped = registry->counter("supervisor.unknown_epc_dropped");
  in.weakRssiDropped = registry->counter("supervisor.weak_rssi_dropped");
  in.decimationsApplied = registry->counter("supervisor.decimations_applied");
  in.sessionsRestarted = registry->counter("supervisor.sessions_restarted");
  in.checkpointSaves = registry->counter("checkpoint.saves");
  in.checkpointFailures = registry->counter("checkpoint.failures");
  in.checkpointBytes = registry->counter("checkpoint.bytes_written");
  in.respinsRequested = registry->counter("robust.respins_requested");
  in.phaseOutliersDropped =
      registry->counter("preprocess.phase_outliers_dropped");
  in.checkpointSpan = registry->histogram("span.checkpoint_write");
  in.preprocessSpan = registry->histogram("span.preprocess");
  return in;
}

Supervisor::Supervisor(SupervisorConfig config,
                       core::DeploymentFile deployment, CheckpointStore* store)
    : config_(std::move(config)),
      deployment_(std::move(deployment)),
      store_(store),
      locator_(config_.locator) {
  models_ = deployment_.orientationModels;
  // Propagate the supervisor-level sinks down the tree unless the caller
  // wired the sessions separately.
  if (config_.metrics && !config_.session.metrics) {
    config_.session.metrics = config_.metrics;
  }
  if (config_.journal && !config_.session.journal) {
    config_.session.journal = config_.journal;
  }
  if (store_ && config_.journal) store_->setJournal(config_.journal);
  obs_ = Instruments::resolve(config_.metrics);
  locator_.setMetrics(config_.metrics);
  if (config_.trackFixes) {
    tracker_ = std::make_unique<track::Tracker>(config_.tracker);
    tracker_->setMetrics(config_.metrics);
  }
}

void Supervisor::addSession(std::string name, TransportFactory factory) {
  Slot slot;
  slot.name = std::move(name);
  slot.factory = std::move(factory);
  slot.session = std::make_unique<ReaderSession>(slot.name, slot.factory(),
                                                 config_.session);
  slots_.push_back(std::move(slot));
}

core::Result<core::CalibrationCheckpoint> Supervisor::restore() {
  using R = core::Result<core::CalibrationCheckpoint>;
  if (!store_) {
    return R::fail(core::ErrorCode::kCheckpointMissing,
                   "supervisor: no checkpoint store configured");
  }
  core::Result<core::CalibrationCheckpoint> loaded = store_->load();
  if (!loaded) return loaded;
  restoreFrom(*loaded);
  return loaded;
}

void Supervisor::restoreFrom(const core::CalibrationCheckpoint& ckpt) {
  for (const auto& [epc, progress] : ckpt.tags) {
    TagState& tag = tags_[epc];
    tag.snapshots = progress.snapshots;
    tag.seen.clear();
    for (const core::Snapshot& s : tag.snapshots) {
      rfid::TagReport r;
      r.timestampS = s.timeS;
      r.phaseRad = s.phaseRad;
      r.channelIndex = s.channel;
      tag.seen.insert(dedupKey(r));
    }
    if (progress.hasOrientationModel) {
      models_[epc] = progress.orientationModel;
    }
  }
  checkpointSequence_ = ckpt.sequence;
  lastFix_ = ckpt.lastFix;
  lastReaderTimestampS_ =
      std::max(lastReaderTimestampS_, ckpt.lastReportTimestampS);
  // Re-seed the tracker from the checkpointed track state so a restart
  // resumes the trajectory instead of re-initializing from scratch.
  if (tracker_ && ckpt.lastFix.valid && ckpt.lastFix.hasTrack &&
      ckpt.lastFix.hasVelocity) {
    tracker_->seedFrom(ckpt.lastFix.trackTimeS,
                       {ckpt.lastFix.x, ckpt.lastFix.y},
                       {ckpt.lastFix.velocityX, ckpt.lastFix.velocityY});
  }
}

void Supervisor::tick(double nowS) {
  for (Slot& slot : slots_) {
    if (slot.session->state() == SessionState::kFailed) {
      // Circuit tripped: replace the session wholesale.  A fresh breaker
      // and backoff schedule give the reader a clean slate; the per-tag
      // state below is untouched, so no calibration progress is lost.
      slot.session = std::make_unique<ReaderSession>(
          slot.name, slot.factory(), config_.session);
      ++stats_.sessionsRestarted;
      obs::add(obs_.sessionsRestarted);
      obs::record(config_.journal, nowS, obs::Severity::kWarn,
                  "failed session replaced", {{"session", slot.name}});
    }
    slot.session->tick(nowS);
    drainScratch_.clear();
    slot.session->drainInto(drainScratch_);
    for (const rfid::TagReport& r : drainScratch_) {
      ++stats_.reportsSeen;
      obs::add(obs_.reportsSeen);
      ingest(r);
    }
  }

  if (store_ && config_.checkpointIntervalS > 0.0 &&
      (stats_.lastCheckpointWallS < 0.0 ||
       nowS - stats_.lastCheckpointWallS >= config_.checkpointIntervalS)) {
    saveCheckpoint(nowS);
    stats_.lastCheckpointWallS = nowS;
  }
}

void Supervisor::saveCheckpoint(double nowS) {
  try {
    size_t bytes = 0;
    {
      TAGSPIN_SPAN(obs_.checkpointSpan);
      bytes = store_->save(makeCheckpoint(nowS));
    }
    ++stats_.checkpointsSaved;
    obs::add(obs_.checkpointSaves);
    obs::add(obs_.checkpointBytes, bytes);
  } catch (const std::exception& e) {
    ++stats_.checkpointFailures;  // disk trouble must not kill ingestion
    obs::add(obs_.checkpointFailures);
    obs::record(config_.journal, nowS, obs::Severity::kError,
                "checkpoint save failed", {{"error", e.what()}});
  }
}

void Supervisor::shutdown(double nowS) {
  for (Slot& slot : slots_) {
    slot.session->requestStop();
    slot.session->tick(nowS);
    drainScratch_.clear();
    slot.session->drainInto(drainScratch_);
    for (const rfid::TagReport& r : drainScratch_) {
      ++stats_.reportsSeen;
      obs::add(obs_.reportsSeen);
      ingest(r);
    }
  }
  if (store_) saveCheckpoint(nowS);
}

void Supervisor::ingest(const rfid::TagReport& report) {
  if (report.rssiDbm < config_.minRssiDbm) {
    ++stats_.weakRssiDropped;
    obs::add(obs_.weakRssiDropped);
    return;
  }
  if (findRig(report.epc) == nullptr) {
    ++stats_.unknownEpcDropped;  // mis-read EPCs must not grow memory
    obs::add(obs_.unknownEpcDropped);
    return;
  }
  TagState& tag = tags_[report.epc];
  const uint64_t key = dedupKey(report);
  if (tag.seen.count(key) > 0) {
    ++stats_.duplicatesSuppressed;
    obs::add(obs_.duplicatesSuppressed);
    return;
  }
  if (tag.acceptStride > 1 && tag.offerCounter++ % tag.acceptStride != 0) {
    return;  // decimated admission after an earlier overflow
  }
  tag.seen.insert(key);
  tag.snapshots.push_back(toSnapshot(report));
  ++stats_.reportsIngested;
  obs::add(obs_.reportsIngested);
  lastReaderTimestampS_ = std::max(lastReaderTimestampS_, report.timestampS);

  if (tag.snapshots.size() >= config_.maxSnapshotsPerTag) {
    // Decimate 2x: keep every other snapshot (all revolutions stay
    // covered, at half density) and admit future reports at half rate.
    std::vector<core::Snapshot> kept;
    kept.reserve(tag.snapshots.size() / 2 + 1);
    for (size_t i = 0; i < tag.snapshots.size(); i += 2) {
      kept.push_back(tag.snapshots[i]);
    }
    tag.snapshots = std::move(kept);
    tag.acceptStride *= 2;
    ++stats_.decimationsApplied;
    obs::add(obs_.decimationsApplied);
  }
}

const core::RigSpec* Supervisor::findRig(const rfid::Epc& epc) const {
  auto it = deployment_.rigs.find(epc);
  if (it != deployment_.rigs.end()) return &it->second;
  it = deployment_.verticalRigs.find(epc);
  if (it != deployment_.verticalRigs.end()) return &it->second;
  return nullptr;
}

std::vector<core::RigObservation> Supervisor::buildObservations(
    std::vector<rfid::Epc>* epcsOut) const {
  std::vector<core::RigObservation> observations;
  if (epcsOut) epcsOut->clear();
  for (const auto& [epc, rig] : deployment_.rigs) {
    const auto it = tags_.find(epc);
    if (it == tags_.end() || it->second.snapshots.empty()) continue;
    core::RigObservation obs;
    obs.rig = rig;
    obs.snapshots = it->second.snapshots;
    std::sort(obs.snapshots.begin(), obs.snapshots.end(),
              [](const core::Snapshot& a, const core::Snapshot& b) {
                return a.timeS < b.timeS;
              });
    if (config_.preprocess.hampelFilter) {
      TAGSPIN_SPAN(obs_.preprocessSpan);
      size_t dropped = 0;
      obs.snapshots = core::hampelFilterPhases(
          obs.snapshots, config_.preprocess.hampelWindow,
          config_.preprocess.hampelThreshold, config_.preprocess.hampelFloorRad,
          &dropped);
      obs::add(obs_.phaseOutliersDropped, dropped);
    }
    const auto model = models_.find(epc);
    if (model != models_.end()) obs.orientation = model->second;
    observations.push_back(std::move(obs));
    if (epcsOut) epcsOut->push_back(epc);
  }
  return observations;
}

core::Result<core::ResilientFix2D> Supervisor::tryLocate2D() const {
  return locator_.tryLocate2D(buildObservations(), config_.health);
}

void Supervisor::requestRespin(const rfid::Epc& epc, double nowS) {
  const auto it = tags_.find(epc);
  if (it == tags_.end()) return;
  TagState& tag = it->second;
  tag.snapshots.clear();
  tag.seen.clear();
  tag.acceptStride = 1;
  tag.offerCounter = 0;
  ++stats_.respinsRequested;
  obs::add(obs_.respinsRequested);
  obs::record(config_.journal, nowS, obs::Severity::kWarn,
              "quarantined spin discarded; re-spin requested",
              {{"epc", epc.toHex()}});
}

uint64_t Supervisor::memoryFootprintBytes() const {
  uint64_t bytes = uint64_t(slots_.size()) *
                   uint64_t(config_.session.queueCapacity) *
                   sizeof(rfid::TagReport);
  for (const auto& [epc, tag] : tags_) {
    bytes += uint64_t(tag.snapshots.capacity()) * sizeof(core::Snapshot);
    // unordered_set node: the key plus roughly one pointer of bucket/next
    // overhead per element.
    bytes += uint64_t(tag.seen.size()) * (sizeof(uint64_t) + sizeof(void*));
  }
  bytes += uint64_t(drainScratch_.capacity()) * sizeof(rfid::TagReport);
  if (tracker_) bytes += tracker_->memoryBytes();
  return bytes;
}

uint64_t Supervisor::trimMemory() {
  const uint64_t before = memoryFootprintBytes();
  for (auto& [epc, tag] : tags_) {
    if (tag.snapshots.size() < 8) continue;
    std::vector<core::Snapshot> kept;
    kept.reserve(tag.snapshots.size() / 2 + 1);
    for (size_t i = 0; i < tag.snapshots.size(); i += 2) {
      kept.push_back(tag.snapshots[i]);
    }
    tag.snapshots = std::move(kept);
    tag.acceptStride *= 2;
    ++stats_.decimationsApplied;
    obs::add(obs_.decimationsApplied);
  }
  drainScratch_.clear();
  drainScratch_.shrink_to_fit();
  const uint64_t after = memoryFootprintBytes();
  return before > after ? before - after : 0;
}

core::Result<core::ResilientFix2D> Supervisor::locateAndRecover2D(
    double nowS) {
  std::vector<rfid::Epc> epcs;
  const std::vector<core::RigObservation> observations =
      buildObservations(&epcs);
  core::Result<core::ResilientFix2D> result =
      locator_.tryLocate2D(observations, config_.health);
  if (!result) {
    // A failed attempt is a drop-out window: the track coasts across it
    // on the motion model instead of freezing at the last fix.
    if (tracker_ && tracker_->hasEstimate()) tracker_->onGap(nowS);
    return result;
  }

  // Quarantined rigs have already been excluded from (or down-weighted in)
  // the fix; here we act on the verdict by discarding their accumulated
  // snapshots so the live stream rebuilds the spin from scratch.  The
  // degraded fix still goes out -- recovery must never turn a usable
  // answer into a failure.
  uint64_t quarantined = 0;
  const std::vector<core::RigHealth>& health = result->report.rigHealth;
  for (size_t i = 0; i < health.size() && i < epcs.size(); ++i) {
    if (health[i].spin.verdict == robust::SpinVerdict::kQuarantine) {
      ++quarantined;
      requestRespin(epcs[i], nowS);
    }
  }
  stats_.quarantinedSpins += quarantined;

  core::FixRecord record;
  record.valid = true;
  record.x = result->fix.position.x;
  record.y = result->fix.position.y;
  record.confidence = result->report.confidence;
  record.inlierFraction = result->fix.estimation.inlierFraction;
  record.quarantinedSpins = quarantined;
  if (result->fix.estimation.ellipse) {
    const robust::ConfidenceEllipse& e = *result->fix.estimation.ellipse;
    record.hasEllipse = true;
    record.ellipseSemiMajorM = e.semiMajorM;
    record.ellipseSemiMinorM = e.semiMinorM;
    record.ellipseOrientationRad = e.orientationRad;
    record.ellipseConfidence = e.confidenceLevel;
  }
  if (tracker_) {
    tracker_->onMeasurement(track::toMeasurement(*result, nowS));
    if (tracker_->hasEstimate()) {
      const track::TrackEstimate& est = tracker_->lastEstimate();
      record.hasVelocity = true;
      record.velocityX = est.velocity.x;
      record.velocityY = est.velocity.y;
      record.hasTrack = true;
      record.trackTimeS = est.timeS;
      record.trackState = static_cast<uint32_t>(est.state);
      record.trackModel = static_cast<uint32_t>(est.model);
    }
  }
  lastFix_ = record;
  return result;
}

core::Result<core::ResilientFix3D> Supervisor::tryLocate3D() const {
  return locator_.tryLocate3D(buildObservations(), config_.health);
}

core::CalibrationCheckpoint Supervisor::makeCheckpoint(double nowS) const {
  core::CalibrationCheckpoint ckpt;
  ckpt.sequence = checkpointSequence_ + stats_.checkpointsSaved + 1;
  ckpt.wallTimeS = nowS;
  ckpt.lastReportTimestampS = lastReaderTimestampS_;
  ckpt.lastFix = lastFix_;
  for (const auto& [epc, tag] : tags_) {
    if (tag.snapshots.empty()) continue;
    core::TagCalibrationProgress progress;
    progress.snapshots = tag.snapshots;
    std::sort(progress.snapshots.begin(), progress.snapshots.end(),
              [](const core::Snapshot& a, const core::Snapshot& b) {
                return a.timeS < b.timeS;
              });
    const auto model = models_.find(epc);
    if (model != models_.end() && !model->second.isIdentity()) {
      progress.hasOrientationModel = true;
      progress.orientationModel = model->second;
    }
    if (config_.checkpointSpectrumPoints > 0 &&
        progress.snapshots.size() >= 8) {
      if (const core::RigSpec* rig = findRig(epc)) {
        const core::PowerProfile profile(progress.snapshots, rig->kinematics,
                                         config_.locator.profile);
        progress.angleSpectrum =
            profile.sampleAzimuth(config_.checkpointSpectrumPoints);
      }
    }
    ckpt.tags[epc] = std::move(progress);
  }
  return ckpt;
}

void Supervisor::setOrientationModel(const rfid::Epc& epc,
                                     core::OrientationModel m) {
  models_[epc] = std::move(m);
}

size_t Supervisor::tagSnapshotCount(const rfid::Epc& epc) const {
  const auto it = tags_.find(epc);
  return it == tags_.end() ? 0 : it->second.snapshots.size();
}

}  // namespace tagspin::runtime
