// Retry pacing for flaky reader connections: capped exponential backoff
// with decorrelated jitter, plus a circuit breaker that stops hammering a
// reader that keeps failing its recovery probes.
//
// Everything here is driven by explicit timestamps (`nowS`) rather than a
// wall clock, so the whole retry schedule is deterministic under test and
// under the simulated soak harness -- no sleeps anywhere in the runtime.
#pragma once

#include <cstdint>

namespace tagspin::runtime {

struct BackoffConfig {
  /// First retry delay; also the lower bound of every jittered delay.
  double baseDelayS = 0.25;
  /// Hard cap on any single delay.
  double maxDelayS = 30.0;
  /// Decorrelated-jitter growth factor: the next delay is drawn uniformly
  /// from [base, multiplier * previous], then capped.
  double multiplier = 3.0;
  /// Seed for the jitter stream (the schedule is deterministic in it).
  uint64_t seed = 0xBAC0FFULL;
};

/// Capped exponential backoff with decorrelated jitter (the AWS
/// architecture-blog variant): sleep_n = min(cap, U(base, mult * sleep_{n-1})).
/// Decorrelation avoids the synchronized retry herds plain exponential
/// jitter produces when many sessions fail at once.
class BackoffSchedule {
 public:
  explicit BackoffSchedule(BackoffConfig config = {});

  /// Delay to wait before the next attempt; advances the schedule.
  double nextDelayS();

  /// Back to the initial state (call after a successful connection).
  void reset();

  /// Attempts consumed since the last reset.
  int attempt() const { return attempt_; }

  const BackoffConfig& config() const { return config_; }

 private:
  BackoffConfig config_;
  double previousS_ = 0.0;
  int attempt_ = 0;
  uint64_t rngState_ = 0;
};

struct CircuitBreakerConfig {
  /// Consecutive failures (while closed) that open the circuit.
  int failuresToOpen = 5;
  /// Cooldown before the first half-open probe is allowed.
  double openCooldownS = 5.0;
  /// Cooldown growth after each failed probe, capped at maxCooldownS.
  double cooldownMultiplier = 2.0;
  double maxCooldownS = 120.0;
  /// Failed half-open probes (cumulative per open episode) that trip the
  /// breaker permanently; a tripped session is the supervisor's problem.
  int halfOpenFailuresToTrip = 3;
};

enum class BreakerState {
  kClosed,    // normal operation, attempts flow freely
  kOpen,      // failing; attempts refused until the cooldown elapses
  kHalfOpen,  // one probe attempt in flight
  kTripped,   // repeated probes failed; refuses attempts until resetTrip()
};
const char* breakerStateName(BreakerState state);

/// Classic three-state circuit breaker with a terminal "tripped" state.
/// Deadline-based: allowAttempt(nowS) performs the open -> half-open
/// transition when the cooldown has elapsed, so no timer callbacks exist.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  /// May a connection attempt start now?  In kOpen this returns true (and
  /// moves to kHalfOpen) exactly once per cooldown expiry -- the probe.
  bool allowAttempt(double nowS);

  void onSuccess();
  void onFailure(double nowS);

  BreakerState state() const { return state_; }
  int consecutiveFailures() const { return consecutiveFailures_; }
  int halfOpenFailures() const { return halfOpenFailures_; }
  double cooldownS() const { return cooldownS_; }
  /// Earliest time a half-open probe may start (meaningful in kOpen).
  double probeDeadlineS() const { return probeDeadlineS_; }

  /// Manual reset out of kTripped (operator intervention / supervisor
  /// replacing the session).
  void resetTrip();

 private:
  void open(double nowS);

  CircuitBreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutiveFailures_ = 0;
  int halfOpenFailures_ = 0;
  double cooldownS_ = 0.0;
  double probeDeadlineS_ = 0.0;
};

}  // namespace tagspin::runtime
