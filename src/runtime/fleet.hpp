// FleetManager: fault-domain-isolated supervision of hundreds-to-thousands
// of reader sessions over a fixed worker pool.
//
// The single-deployment Supervisor drives a handful of sessions with no
// isolation between them; at fleet scale one flapping transport must not
// starve its neighbors.  The fleet layer adds exactly that containment:
//
//  * Fault domains (shards).  Every session is pinned to one shard; each
//    tick a shard spends at most `workUnitsPerTick` work units on its own
//    sessions (a session tick costs 1 unit, a connect attempt 4, decoded
//    bytes ~1/KiB, a fix recomputation 24).  Sessions a shard cannot afford
//    this tick are deferred to the next in round-robin order, so overload
//    in one shard surfaces as latency in THAT shard only.  Because the
//    budget is denominated in work units against the tick clock, fix
//    latency (servicedAt - dueAt) is measured in simulated seconds and is
//    deterministic -- independent of host CPU and thread count.
//
//  * Shard-local retry budget.  A token bucket is installed as every
//    session's connectGate (consulted before the circuit breaker so a
//    denied attempt never burns the breaker's half-open probe).  After a
//    correlated outage the cohort's reconnects drain the bucket and the
//    storm is converted into paced re-admission at the refill rate instead
//    of a thundering herd of simultaneous connect work.  A session's first
//    attempt is always admitted: the budget paces RECONNECT storms, not a
//    cold-starting fleet bringing everything up at once.
//
//  * Quarantine ring.  Sessions that keep flapping (disconnects + connect
//    failures + supervisor-level restarts within flapWindowS reaching
//    flapThreshold) are ejected: they stop being scheduled and instead get
//    short probe windows at escalating intervals (probeBaseS, doubling up
//    to probeMaxS).  A probe that reaches STREAMING re-admits the session
//    with a clean flap history.
//
//  * Overload protection at the fleet boundary.  Admission control caps
//    registration (total and per shard).  Load shedding watches each
//    shard's demand/budget pressure (EMA) and degrades gracefully:
//    kDegraded stretches checkpoint cadence and fix recomputation
//    intervals (the degrade_sampling idea at fleet granularity); kCritical
//    additionally skips recomputation for sessions that already hold a fix.
//    Both levels have hysteresis so the fleet doesn't oscillate.
//
//  * Bounded checkpoint fan-out.  N sessions do not amplify into N fsyncs
//    per tick: each shard batches ALL its sessions into one durable file
//    (CheckpointStore framing + writeFileDurable), shards' deadlines are
//    staggered, and at most maxCheckpointWritesPerTick shards may write on
//    any tick.
//
// Threading: shards are independent by construction, so with
// workerThreads > 0 a persistent pool processes shards in parallel; all
// cross-shard state is either atomic (metrics), mutex-protected (journal)
// or coordinator-only.  Fix events are drained in shard order after the
// parallel phase, so results and callbacks are deterministic regardless of
// thread count.  workerThreads = 0 runs everything inline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/io_env.hpp"
#include "core/mem_env.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "runtime/supervisor.hpp"

namespace tagspin::runtime {

/// Token bucket used as the shard-local retry budget.  Time comes from the
/// caller (tick-driven like everything else); the first acquire anchors the
/// refill clock.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double tokensPerSecond, double burst)
      : rate_(tokensPerSecond), burst_(burst), tokens_(burst) {}

  /// Take one token if available; refills lazily from elapsed time.
  bool tryAcquire(double nowS) {
    if (lastS_ < 0.0) lastS_ = nowS;
    if (nowS > lastS_) {
      tokens_ = std::min(burst_, tokens_ + (nowS - lastS_) * rate_);
      lastS_ = nowS;
    }
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    return false;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_ = 2.0;
  double burst_ = 6.0;
  double tokens_ = 6.0;
  double lastS_ = -1.0;
};

struct RetryBudgetConfig {
  /// Refill rate of each shard's connect-attempt bucket.  The pacing knob:
  /// after a correlated outage a shard re-admits reconnects at this rate.
  double tokensPerSecond = 2.0;
  /// Bucket capacity; bounds how many attempts a quiet shard can burst.
  double burst = 6.0;
};

struct QuarantineConfig {
  /// Flap events (disconnects + connect failures + restarts) within
  /// flapWindowS that eject a session into quarantine.
  uint64_t flapThreshold = 6;
  double flapWindowS = 30.0;
  /// Probe ladder: first probe after probeBaseS, each miss multiplies the
  /// interval (capped at probeMaxS); a probe runs for probeWindowS.
  double probeBaseS = 4.0;
  double probeMultiplier = 2.0;
  double probeMaxS = 64.0;
  double probeWindowS = 2.0;
};

enum class ShedLevel { kNone, kDegraded, kCritical };
const char* shedLevelName(ShedLevel level);

/// One serviced (or failed) fix recomputation; dueS is when the fix became
/// due, nowS when the scheduler got to it -- the difference is the latency
/// the fault-isolation claim is about.  Delivered on the coordinator thread
/// in deterministic shard order.
struct FleetFixEvent {
  std::string name;
  size_t shard = 0;
  double dueS = 0.0;
  double nowS = 0.0;
  bool ok = false;
};

struct FleetConfig {
  /// Template for every session's single-reader supervisor.  The fleet
  /// overrides per-supervisor persistence (checkpoints are batched per
  /// shard) and installs its retry-budget connectGate.
  SupervisorConfig supervisor;

  size_t shards = 4;
  /// Admission control: registerSession refuses beyond these.
  size_t maxSessions = 4096;
  size_t maxSessionsPerShard = 0;  // 0 = ceil(maxSessions / shards)

  /// 0 = inline on the calling thread; otherwise a persistent pool of this
  /// many threads processes shards in parallel.
  size_t workerThreads = 0;

  /// Per-shard scheduling budget per tick, in work units.  0 = automatic:
  /// 3 * (sessions in shard) + 8, i.e. ~50% headroom over the healthy
  /// steady state so storms (connects at 4 units, floods by the KiB) are
  /// what push a shard into deferral and shedding.
  double workUnitsPerTick = 0.0;

  RetryBudgetConfig retryBudget;
  QuarantineConfig quarantine;

  /// Fix recomputation cadence per session (staggered across sessions);
  /// until a session has produced its first fix it retries every fixRetryS.
  double fixIntervalS = 5.0;
  double fixRetryS = 1.0;

  /// Per-shard batched checkpoint cadence (0 or empty dir disables).
  double checkpointIntervalS = 10.0;
  size_t maxCheckpointWritesPerTick = 1;
  std::string checkpointDir;
  /// Storage environment for shard checkpoints; nullptr means the real
  /// filesystem (the crash-point explorer injects sim::SimIoEnv here).
  core::IoEnv* io = nullptr;

  /// Load shedding thresholds on the worst shard's demand/budget EMA.
  double shedDegradedPressure = 0.9;
  double shedCriticalPressure = 1.3;
  double shedHysteresis = 0.15;
  double degradedFixStretch = 2.0;
  double degradedCheckpointStretch = 4.0;

  /// Memory environment and byte budgets.  With `mem` null and both
  /// budgets zero, memory accounting is entirely off and the fleet is
  /// bit-identical to the pre-seam behavior (digest-gated in eval/oom).
  /// Otherwise each shard owns a core::MemArena charged with its members'
  /// estimated footprints (Supervisor::memoryFootprintBytes): a denied
  /// reservation first trims the offending session (2x snapshot
  /// decimation), then quarantines it -- the shard survives, the fleet
  /// never sees bad_alloc.
  core::MemEnv* mem = nullptr;
  uint64_t memBudgetPerShardBytes = 0;    // 0 = unlimited
  uint64_t memBudgetPerSessionBytes = 0;  // 0 = unlimited
  /// Memory pressure axis of the shed ladder, on the worst shard's
  /// used/budget ratio.  At mem-degraded the fleet stretches cadences like
  /// work-degraded AND each over-pressure shard trims its largest member
  /// once per tick; at mem-critical the largest member is quarantined
  /// instead.  Separate hysteresis keeps the two axes from chattering.
  double memDegradedPressure = 0.75;
  double memCriticalPressure = 0.92;
  double memShedHysteresis = 0.05;

  obs::MetricsRegistry* metrics = nullptr;
  obs::EventJournal* journal = nullptr;
  /// Invoked once per fix attempt, coordinator thread, shard order.
  std::function<void(const FleetFixEvent&)> onFix;
};

struct FleetStats {
  uint64_t admitted = 0;
  uint64_t admissionRejected = 0;
  uint64_t ejections = 0;
  uint64_t readmissions = 0;
  uint64_t probes = 0;
  uint64_t budgetDenied = 0;       // connectGate denials across the fleet
  uint64_t sessionsDeferred = 0;   // session-ticks pushed to a later tick
  uint64_t fixesComputed = 0;
  uint64_t fixesFailed = 0;        // attempted, locator not ready
  uint64_t fixesSkippedShed = 0;   // kCritical skipped a recomputation
  uint64_t checkpointWrites = 0;
  uint64_t checkpointFailures = 0;
  uint64_t shedDegradedTicks = 0;
  uint64_t shedCriticalTicks = 0;
  double workUnitsSpent = 0.0;
  size_t quarantinedNow = 0;
  // Memory axis (all zero when accounting is off).
  uint64_t memDeniedReserves = 0;  // arena denials across the fleet
  uint64_t memTrims = 0;           // sessions trimmed under pressure
  uint64_t memEjections = 0;       // sessions quarantined for memory
  uint64_t badAllocCaught = 0;     // bad_alloc absorbed at the worker boundary
  uint64_t memUsedBytes = 0;       // sum of shard arena usage now
  uint64_t memPeakBytes = 0;       // sum of shard arena peaks
};

class FleetManager {
 public:
  FleetManager(FleetConfig config, core::DeploymentFile deployment);
  ~FleetManager();
  FleetManager(const FleetManager&) = delete;
  FleetManager& operator=(const FleetManager&) = delete;

  /// Admission-controlled registration; the session is pinned to the
  /// least-loaded shard.  False (and nothing registered) when the fleet or
  /// every shard is at capacity.
  bool registerSession(std::string name, TransportFactory factory);

  /// Load every shard's batched checkpoint from checkpointDir and feed each
  /// registered session its slice (matched by name).  Call after
  /// registration, before the first tick.  Returns sessions restored;
  /// missing files are a fresh start, corrupt ones are skipped (counted in
  /// stats().checkpointFailures).
  size_t restore();

  /// Advance the whole fleet to nowS (monotone).
  void tick(double nowS);

  /// Stop every session and write a final checkpoint for every shard
  /// (ignoring the per-tick write limit).
  void shutdown(double nowS);

  size_t sessionCount() const;
  size_t shardCount() const { return shards_.size(); }
  /// Combined shed level: max of the work axis and the memory axis.
  ShedLevel shedLevel() const { return shedLevel_; }
  ShedLevel memShedLevel() const { return memShedLevel_; }
  /// Aggregated over all shards; cheap enough to call per tick.
  FleetStats stats() const;

  struct SessionView {
    std::string name;
    size_t shard = 0;
    SessionState state = SessionState::kDisconnected;
    bool quarantined = false;
    bool hasFix = false;
    uint64_t fixes = 0;
    uint64_t flapEvents = 0;  // lifetime total
    /// Fix-stream tracking (only when the supervisor template enables
    /// trackFixes): live track state and the smoothed estimate.
    bool hasTrack = false;
    track::TrackState trackState = track::TrackState::kDropped;
    geom::Vec2 trackPosition;
    geom::Vec2 trackVelocity;
  };
  std::vector<SessionView> sessions() const;

  /// Direct (read) access to one session's supervisor, for tests.
  const Supervisor* supervisor(const std::string& name) const;

 private:
  struct Member;
  struct Shard;
  class WorkerPool;

  /// Registry handles for the fleet-level counters and per-shard gauges.
  struct Instruments {
    obs::Counter* admissionRejected = nullptr;
    obs::Counter* ejections = nullptr;
    obs::Counter* readmissions = nullptr;
    obs::Counter* probes = nullptr;
    obs::Counter* budgetDenied = nullptr;
    obs::Counter* sessionsDeferred = nullptr;
    obs::Counter* fixesComputed = nullptr;
    obs::Counter* fixesSkippedShed = nullptr;
    obs::Counter* checkpointWrites = nullptr;
    obs::Counter* checkpointFailures = nullptr;
    obs::Gauge* shedLevel = nullptr;
    obs::Counter* memDenied = nullptr;       // fleet.mem_denied
    obs::Counter* memTrims = nullptr;        // fleet.mem_trims
    obs::Counter* memEjections = nullptr;    // fleet.mem_ejections
    obs::Counter* badAllocCaught = nullptr;  // fleet.bad_alloc_caught
    // Registry-level memory gauges (the Prometheus exporter prefixes every
    // name with "tagspin_", so these surface as tagspin_mem_*).
    obs::Gauge* memUsedBytes = nullptr;    // mem.used_bytes
    obs::Gauge* memBudgetBytes = nullptr;  // mem.budget_bytes
    obs::Gauge* memPressure = nullptr;     // mem.pressure (worst shard)
    obs::Gauge* memShedLevel = nullptr;    // mem.shed_level
    static Instruments resolve(obs::MetricsRegistry* registry);
  };

  void processShard(Shard& shard, double nowS);
  /// Tick one member's supervisor and return the work-unit cost; updates
  /// flap tracking and (for active members) fix scheduling.
  double processMember(Shard& shard, Member& member, double nowS);
  double tickSupervisor(Shard& shard, Member& member, double nowS);
  double maybeFix(Shard& shard, Member& member, double nowS);
  /// Re-estimate one member's footprint and settle the delta against the
  /// shard arena: shrink releases, growth reserves, denial trims, and a
  /// trim that still doesn't fit quarantines the member (memEject).
  void accountMemory(Shard& shard, Member& member, double nowS);
  /// Quarantine a member for memory: hard-trim its state, release what the
  /// trim freed, and park it in the regular quarantine ring.
  void memEject(Shard& shard, Member& member, double nowS);
  /// Per-tick shard-local pressure response: trim (degraded) or quarantine
  /// (critical) the shard's largest member.
  void shedShardMemory(Shard& shard, double nowS);
  void eject(Shard& shard, Member& member, double nowS);
  void readmit(Shard& shard, Member& member, double nowS);
  void writeShardCheckpoint(Shard& shard, double nowS);
  std::string shardCheckpointPath(size_t shardIndex) const;
  void updateShedLevel();
  double effectiveFixIntervalS() const;
  double effectiveCheckpointIntervalS() const;

  FleetConfig config_;
  core::DeploymentFile deployment_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::string, Member*> byName_;
  std::unique_ptr<WorkerPool> pool_;
  ShedLevel shedLevel_ = ShedLevel::kNone;      // max(work, mem)
  ShedLevel workShedLevel_ = ShedLevel::kNone;  // demand/budget axis
  ShedLevel memShedLevel_ = ShedLevel::kNone;   // arena-pressure axis
  bool memAccounting_ = false;
  uint64_t admitted_ = 0;
  uint64_t admissionRejected_ = 0;
  uint64_t shedDegradedTicks_ = 0;
  uint64_t shedCriticalTicks_ = 0;
  Instruments obs_;
};

}  // namespace tagspin::runtime
