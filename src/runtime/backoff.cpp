#include "runtime/backoff.hpp"

#include <algorithm>

#include "sim/rng.hpp"

namespace tagspin::runtime {

BackoffSchedule::BackoffSchedule(BackoffConfig config)
    : config_(config), rngState_(sim::splitmix64(config.seed)) {}

double BackoffSchedule::nextDelayS() {
  ++attempt_;
  if (previousS_ <= 0.0) {
    previousS_ = config_.baseDelayS;
    return previousS_;
  }
  // Uniform in [base, multiplier * previous] from a splitmix64 stream; the
  // 53-bit mantissa path gives a bias-free double in [0, 1).
  rngState_ = sim::splitmix64(rngState_);
  const double u =
      static_cast<double>(rngState_ >> 11) / 9007199254740992.0;  // 2^53
  const double hi = std::max(config_.baseDelayS, config_.multiplier * previousS_);
  previousS_ = std::min(config_.maxDelayS,
                        config_.baseDelayS + u * (hi - config_.baseDelayS));
  return previousS_;
}

void BackoffSchedule::reset() {
  previousS_ = 0.0;
  attempt_ = 0;
  rngState_ = sim::splitmix64(config_.seed);
}

const char* breakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
    case BreakerState::kTripped: return "tripped";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config) : config_(config) {}

bool CircuitBreaker::allowAttempt(double nowS) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (nowS >= probeDeadlineS_) {
        state_ = BreakerState::kHalfOpen;
        return true;
      }
      return false;
    case BreakerState::kHalfOpen:
      return false;  // one probe at a time
    case BreakerState::kTripped:
      return false;
  }
  return false;
}

void CircuitBreaker::onSuccess() {
  state_ = BreakerState::kClosed;
  consecutiveFailures_ = 0;
  halfOpenFailures_ = 0;
  cooldownS_ = 0.0;
}

void CircuitBreaker::onFailure(double nowS) {
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutiveFailures_ >= config_.failuresToOpen) open(nowS);
      break;
    case BreakerState::kHalfOpen:
      if (++halfOpenFailures_ >= config_.halfOpenFailuresToTrip) {
        state_ = BreakerState::kTripped;
      } else {
        open(nowS);
      }
      break;
    case BreakerState::kOpen:
    case BreakerState::kTripped:
      // Failures while not attempting (e.g. a late transport close) don't
      // advance the breaker.
      break;
  }
}

void CircuitBreaker::open(double nowS) {
  state_ = BreakerState::kOpen;
  cooldownS_ = cooldownS_ <= 0.0
                   ? config_.openCooldownS
                   : std::min(config_.maxCooldownS,
                              cooldownS_ * config_.cooldownMultiplier);
  probeDeadlineS_ = nowS + cooldownS_;
}

void CircuitBreaker::resetTrip() {
  if (state_ == BreakerState::kTripped) onSuccess();
}

}  // namespace tagspin::runtime
