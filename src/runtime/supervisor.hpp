// Supervisor: owns N ReaderSessions, accumulates their reports into
// per-tag calibration state, and keeps that state crash-safe.
//
// Responsibilities, mirroring an Erlang-style supervision tree flattened
// to one level:
//  * tick every session (each runs its own connect/stream/backoff state
//    machine with in-session watchdogs);
//  * replace sessions whose circuit breaker tripped (state FAILED) with a
//    fresh session on a fresh transport from the slot's factory -- the
//    calibration progress lives here, not in the session, so a restart
//    loses nothing;
//  * drain every session's ingest queue into the per-EPC snapshot
//    accumulators (dedup, RSSI floor, bounded by decimation -- a very long
//    soak thins old revolutions instead of growing without bound);
//  * periodically checkpoint the whole calibration state through a
//    CheckpointStore, so kill -9 + restore() resumes a spin mid-revolution;
//  * answer tryLocate2D/3D from the accumulated state at any moment.
//
// Like the rest of the runtime it is tick-driven and clock-free.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/locator.hpp"
#include "core/preprocess.hpp"
#include "core/serialization.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/session.hpp"
#include "track/tracker.hpp"

namespace tagspin::runtime {

using TransportFactory = std::function<std::unique_ptr<Transport>()>;

struct SupervisorConfig {
  SessionConfig session;
  /// Seconds between periodic checkpoints (0 disables; save happens on the
  /// first tick at/after the deadline).
  double checkpointIntervalS = 2.0;
  /// Per-tag snapshot bound; on overflow the accumulator decimates 2x
  /// (drops every other stored snapshot and halves the future accept
  /// rate), preserving full-spin arc coverage at reduced density.
  size_t maxSnapshotsPerTag = 20000;
  /// Reports weaker than this never enter the accumulators.
  double minRssiDbm = -90.0;
  /// Azimuth samples of the partial angle spectrum embedded in each
  /// checkpoint (0 disables; needs >= 8 snapshots on the tag).
  size_t checkpointSpectrumPoints = 72;
  core::PreprocessConfig preprocess;
  core::RigHealthThresholds health;
  core::LocatorConfig locator;

  /// Feed every fix from locateAndRecover2D through a track::Tracker
  /// (sequential Bayesian smoothing of the fix stream).  Failed locate
  /// attempts become coast windows; the track state rides along in the
  /// checkpoint's [last_fix] section and is re-seeded on restore.
  bool trackFixes = false;
  track::TrackerConfig tracker;

  /// Telemetry sinks for the whole supervision tree.  When set they are
  /// propagated into every session (unless `session.metrics`/`.journal`
  /// were already set explicitly) and into the locator, so one registry
  /// captures supervisor.*, session.*, queue.*, llrp.*, checkpoint.*,
  /// preprocess.*, locator.* and span.* in a single snapshot.
  obs::MetricsRegistry* metrics = nullptr;
  obs::EventJournal* journal = nullptr;
};

struct SupervisorStats {
  uint64_t reportsSeen = 0;          // drained from session queues
  uint64_t reportsIngested = 0;      // accepted into per-tag state
  uint64_t duplicatesSuppressed = 0;
  uint64_t unknownEpcDropped = 0;    // EPC not in the deployment registry
  uint64_t weakRssiDropped = 0;
  uint64_t decimationsApplied = 0;   // 2x thinning events
  uint64_t sessionsRestarted = 0;    // FAILED sessions replaced
  uint64_t checkpointsSaved = 0;
  uint64_t checkpointFailures = 0;   // save threw (disk trouble); non-fatal
  uint64_t quarantinedSpins = 0;     // spins the self-diagnosis rejected
  uint64_t respinsRequested = 0;     // quarantined tags cleared for re-spin
  double lastCheckpointWallS = -1.0;
};

class Supervisor {
 public:
  /// `store` may be null (no persistence).  The deployment provides the
  /// rig registry and any prelude orientation models.
  Supervisor(SupervisorConfig config, core::DeploymentFile deployment,
             CheckpointStore* store = nullptr);

  /// Register a session slot.  The factory is invoked for the initial
  /// session and again for every supervisor-level restart, so it must
  /// yield a transport to the *same* reader (see SharedTransport).
  void addSession(std::string name, TransportFactory factory);

  /// Load the checkpoint from the store and merge it into the per-tag
  /// state (call before the first tick).  kCheckpointMissing is returned
  /// but is a normal fresh start; kCheckpointCorrupt means the file was
  /// rejected and the runtime starts empty rather than resuming garbage.
  core::Result<core::CalibrationCheckpoint> restore();

  /// Merge an already-loaded checkpoint into the per-tag state (the body of
  /// restore() minus the store read).  The fleet layer batches many
  /// supervisors' checkpoints into one shard file and feeds each supervisor
  /// its slice through this hook.
  void restoreFrom(const core::CalibrationCheckpoint& ckpt);

  /// Advance every session, ingest their output, restart the failed,
  /// checkpoint when due.
  void tick(double nowS);

  /// Wind down: stop all sessions and write a final checkpoint.
  void shutdown(double nowS);

  core::Result<core::ResilientFix2D> tryLocate2D() const;
  core::Result<core::ResilientFix3D> tryLocate3D() const;

  /// Locate with recovery: like tryLocate2D, but when the spin
  /// self-diagnosis quarantined a rig, that tag's accumulated snapshots are
  /// discarded so the live stream re-acquires a fresh spin ("please spin
  /// again") instead of repeatedly feeding the locator a corrupted
  /// spectrum.  The fix itself -- already computed without the quarantined
  /// rig, at degraded confidence -- is returned as-is; the successful fix
  /// is also cached for the next checkpoint's [last_fix] section.
  core::Result<core::ResilientFix2D> locateAndRecover2D(double nowS);

  /// Snapshot the full calibration state as a checkpoint struct.
  core::CalibrationCheckpoint makeCheckpoint(double nowS) const;

  /// The fix-stream tracker (null unless config.trackFixes).  Exposed so
  /// the evaluation / fleet layers can read the smoothed trajectory.
  track::Tracker* tracker() { return tracker_.get(); }
  const track::Tracker* tracker() const { return tracker_.get(); }

  void setOrientationModel(const rfid::Epc& epc, core::OrientationModel m);

  /// Deterministic estimate of the resident bytes this supervisor's
  /// accumulated state costs: session queue capacity, per-tag snapshot
  /// storage and dedup keys, the drain scratch, and the tracker history.
  /// Malloc overhead and fixed members are ignored -- the estimate only
  /// needs to move with the real costs for budget accounting to work.
  uint64_t memoryFootprintBytes() const;

  /// Shed memory under pressure: decimate every tag's stored snapshots 2x
  /// (the same operation as the overflow decimation, so full-spin arc
  /// coverage survives at reduced density), halve the future accept rate,
  /// and return the scratch buffers.  Returns the estimated bytes freed;
  /// repeated calls keep halving until only a residual floor remains.
  uint64_t trimMemory();

  size_t sessionCount() const { return slots_.size(); }
  const ReaderSession& session(size_t i) const { return *slots_[i].session; }
  const SupervisorStats& stats() const { return stats_; }
  const core::DeploymentFile& deployment() const { return deployment_; }
  size_t tagSnapshotCount(const rfid::Epc& epc) const;
  /// Reader-clock high watermark across every ingested report.
  double lastReportTimestampS() const { return lastReaderTimestampS_; }

 private:
  struct TagState {
    std::vector<core::Snapshot> snapshots;
    /// Packed (time, phase, channel) keys of accepted snapshots.  Bounded
    /// by the accept path; a multi-day deployment would swap this for a
    /// rolling filter.
    std::unordered_set<uint64_t> seen;
    uint64_t acceptStride = 1;  // decimation stride after overflow
    uint64_t offerCounter = 0;
  };
  struct Slot {
    std::string name;
    TransportFactory factory;
    std::unique_ptr<ReaderSession> session;
  };

  /// Registry handles mirroring SupervisorStats plus checkpoint telemetry;
  /// resolved once at construction (all null when uninstrumented).
  struct Instruments {
    obs::Counter* reportsSeen = nullptr;
    obs::Counter* reportsIngested = nullptr;
    obs::Counter* duplicatesSuppressed = nullptr;
    obs::Counter* unknownEpcDropped = nullptr;
    obs::Counter* weakRssiDropped = nullptr;
    obs::Counter* decimationsApplied = nullptr;
    obs::Counter* sessionsRestarted = nullptr;
    obs::Counter* checkpointSaves = nullptr;
    obs::Counter* checkpointFailures = nullptr;
    obs::Counter* checkpointBytes = nullptr;
    obs::Counter* respinsRequested = nullptr;      // robust.respins_requested
    obs::Counter* phaseOutliersDropped = nullptr;  // preprocess.*
    obs::Histogram* checkpointSpan = nullptr;      // span.checkpoint_write
    obs::Histogram* preprocessSpan = nullptr;      // span.preprocess
    static Instruments resolve(obs::MetricsRegistry* registry);
  };

  void ingest(const rfid::TagReport& report);
  /// `epcsOut`, when non-null, receives the EPC of each returned
  /// observation (parallel vectors) -- locateAndRecover2D needs the
  /// mapping back from rig-health indices to tag state.
  std::vector<core::RigObservation> buildObservations(
      std::vector<rfid::Epc>* epcsOut = nullptr) const;
  const core::RigSpec* findRig(const rfid::Epc& epc) const;
  void requestRespin(const rfid::Epc& epc, double nowS);
  void saveCheckpoint(double nowS);

  SupervisorConfig config_;
  core::DeploymentFile deployment_;
  CheckpointStore* store_;
  core::Locator locator_;
  std::vector<Slot> slots_;
  std::map<rfid::Epc, TagState> tags_;
  std::map<rfid::Epc, core::OrientationModel> models_;
  SupervisorStats stats_;
  Instruments obs_;
  std::unique_ptr<track::Tracker> tracker_;
  core::FixRecord lastFix_;
  uint64_t checkpointSequence_ = 0;
  double lastReaderTimestampS_ = 0.0;
  rfid::ReportStream drainScratch_;
};

}  // namespace tagspin::runtime
