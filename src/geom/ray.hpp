// Rays and ray intersection.
//
// Each spinning tag yields a ray: origin = disk center, direction = the peak
// of the tag's angle spectrum.  The reader position is recovered from the
// intersection of two (or more) rays.  The paper gives a closed form for two
// rays (Eqn. 9); we additionally provide a least-squares intersection for
// any number of rays, which is also numerically robust near tan() poles.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "geom/vec.hpp"

namespace tagspin::geom {

/// A ray in the plane: origin plus direction angle (radians from +x axis).
struct Ray2 {
  Vec2 origin;
  double angle = 0.0;

  Vec2 direction() const { return unitFromAngle(angle); }
  Vec2 pointAt(double t) const { return origin + direction() * t; }

  /// Signed perpendicular distance from `p` to the ray's supporting line.
  double signedDistance(const Vec2& p) const {
    return direction().cross(p - origin);
  }

  /// Parameter t of the orthogonal projection of `p` (may be negative,
  /// i.e. behind the ray origin).
  double project(const Vec2& p) const { return direction().dot(p - origin); }
};

/// Result of a two-ray intersection.
struct Intersection2 {
  Vec2 point;
  /// Ray parameters of the intersection; negative values mean the
  /// intersection lies behind that ray's origin.
  double t1 = 0.0;
  double t2 = 0.0;
};

/// Exact intersection of the two supporting lines.  Empty when the rays are
/// (near-)parallel: |sin(angle1 - angle2)| < parallelTol.
std::optional<Intersection2> intersectRays(const Ray2& a, const Ray2& b,
                                           double parallelTol = 1e-9);

/// The paper's Eqn. 9 closed form, written with tan().  Requires both angles
/// away from +-pi/2 (tan poles) and non-parallel rays; returns empty
/// otherwise.  intersectRays() is the robust equivalent; this one exists to
/// reproduce and test the published formula.
std::optional<Vec2> intersectEqn9(const Vec2& o1, double phi1, const Vec2& o2,
                                  double phi2, double tol = 1e-9);

/// Least-squares point minimising the sum of squared perpendicular distances
/// to all supporting lines.  Works for >= 2 rays; empty when all rays are
/// mutually (near-)parallel, i.e. the 2x2 normal matrix is singular.
std::optional<Vec2> leastSquaresIntersection(std::span<const Ray2> rays,
                                             double singularTol = 1e-12);

/// Least-squares intersection with its per-ray geometry surfaced.  The
/// plain overload silently accepts fixes that sit *behind* a ray origin
/// (t < 0) -- physically impossible for a bearing ray, and the classic
/// signature of a mirror/ghost spectrum peak -- so callers that care get
/// the ray parameters and the behind-origin count here.
struct MultiRayIntersection {
  Vec2 point;
  /// Ray parameter of the fix projected onto each ray (same order as the
  /// input span); negative means the fix lies behind that ray's origin.
  std::vector<double> rayT;
  size_t behindOrigin = 0;  // count of rayT[i] < 0
};

/// Detailed (optionally weighted) least-squares intersection.  `weights`
/// must be empty (all ones) or match `rays.size()`; non-positive weights
/// drop a ray from the solve but still report its t.  Empty on singular
/// normal equations (near-parallel bundle or all weights zero) -- never an
/// exploded point.
std::optional<MultiRayIntersection> leastSquaresIntersectionDetailed(
    std::span<const Ray2> rays, std::span<const double> weights = {},
    double singularTol = 1e-12);

/// Root-mean-square perpendicular distance from `p` to the rays' lines; a
/// residual/consistency measure for a multi-ray fix.
double rmsResidual(std::span<const Ray2> rays, const Vec2& p);

}  // namespace tagspin::geom
