// Angle arithmetic on the circle.
//
// Phase values reported by an RFID reader live on [0, 2*pi); angle spectra
// are searched on the same interval.  All helpers here are total functions
// (no domain restrictions on the input).
#pragma once

#include <numbers>
#include <span>
#include <vector>

namespace tagspin::geom {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Wrap an angle to [0, 2*pi).
double wrapTwoPi(double a);

/// Wrap an angle to (-pi, pi].
double wrapToPi(double a);

/// Signed smallest rotation taking `from` to `to`, in (-pi, pi].
double circularDiff(double to, double from);

/// Absolute angular separation in [0, pi].
double circularDistance(double a, double b);

/// Circular mean of a set of angles.  Returns 0 for an empty span or when
/// the resultant vector is (numerically) zero.
double circularMean(std::span<const double> angles);

/// Mean resultant length in [0, 1]; 1 means all angles identical.
double circularResultantLength(std::span<const double> angles);

double degToRad(double deg);
double radToDeg(double rad);

/// Unwrap a wrapped phase sequence: successive samples are shifted by
/// multiples of 2*pi so that no step exceeds pi in magnitude.  This is the
/// smoothing rule of paper section III-B generalised to arbitrary jumps
/// (the paper's rule handles a single +-2*pi step).
std::vector<double> unwrapPhases(std::span<const double> wrapped);

/// The paper's literal smoothing rule (section III-B): shift sample t by
/// -+2*pi when it jumps by more than +-pi relative to sample t-1.  Unlike
/// unwrapPhases the shift is not accumulated beyond one turn per step; kept
/// for fidelity and used in the Fig. 4 reproduction.
std::vector<double> smoothPhasesPaperRule(std::span<const double> wrapped);

}  // namespace tagspin::geom
