// Small fixed-size vector types used throughout Tagspin.
//
// Conventions: all distances are in metres, all angles in radians.  The
// evaluation layer converts to centimetres / degrees for reporting so that
// printed numbers line up with the paper.
#pragma once

#include <cmath>

namespace tagspin::geom {

/// 2-D point / vector in metres.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  constexpr Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; >0 when `o` is counterclockwise.
  constexpr double cross(const Vec2& o) const { return x * o.y - y * o.x; }
  constexpr double norm2() const { return x * x + y * y; }
  double norm() const { return std::hypot(x, y); }

  /// Unit vector; the zero vector maps to itself.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  /// Polar angle atan2(y, x) in (-pi, pi].
  double angle() const { return std::atan2(y, x); }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

inline double distance(const Vec2& a, const Vec2& b) { return (a - b).norm(); }

/// Unit vector pointing along `angle` (radians, measured from +x axis).
inline Vec2 unitFromAngle(double angle) {
  return {std::cos(angle), std::sin(angle)};
}

/// 3-D point / vector in metres.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}
  constexpr Vec3(const Vec2& xy, double z_) : x(xy.x), y(xy.y), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }

  constexpr bool operator==(const Vec3&) const = default;

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double norm2() const { return x * x + y * y + z * z; }
  double norm() const { return std::sqrt(norm2()); }

  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }

  constexpr Vec2 xy() const { return {x, y}; }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

/// Azimuth (angle of the xy-projection from +x) of `v` seen from `origin`.
inline double azimuthOf(const Vec3& origin, const Vec3& target) {
  return (target.xy() - origin.xy()).angle();
}

/// Polar (elevation) angle in [-pi/2, pi/2]: angle between the origin->target
/// segment and the horizontal plane.  Matches the paper's gamma in Fig. 7.
inline double polarOf(const Vec3& origin, const Vec3& target) {
  const Vec3 d = target - origin;
  const double horiz = d.xy().norm();
  return std::atan2(d.z, horiz);
}

}  // namespace tagspin::geom
