#include "geom/ray.hpp"

#include <cmath>

#include "geom/angles.hpp"

namespace tagspin::geom {

std::optional<Intersection2> intersectRays(const Ray2& a, const Ray2& b,
                                           double parallelTol) {
  // Solve a.origin + t1*da = b.origin + t2*db.
  const Vec2 da = a.direction();
  const Vec2 db = b.direction();
  const double denom = da.cross(db);  // == sin(b.angle - a.angle)
  if (std::abs(denom) < parallelTol) return std::nullopt;
  const Vec2 d = b.origin - a.origin;
  const double t1 = d.cross(db) / denom;
  const double t2 = d.cross(da) / denom;
  return Intersection2{a.pointAt(t1), t1, t2};
}

std::optional<Vec2> intersectEqn9(const Vec2& o1, double phi1, const Vec2& o2,
                                  double phi2, double tol) {
  const double c1 = std::cos(phi1);
  const double c2 = std::cos(phi2);
  if (std::abs(c1) < tol || std::abs(c2) < tol) return std::nullopt;
  const double tan1 = std::tan(phi1);
  const double tan2 = std::tan(phi2);
  const double denom = tan1 - tan2;
  if (std::abs(denom) < tol) return std::nullopt;
  // Eqn. 9 of the paper (o1=(x1,y1), o2=(x2,y2)):
  //   x_R = (y2 - y1 + x1 tan(phi1) - x2 tan(phi2)) / (tan(phi1) - tan(phi2))
  //   y_R = ((x1 - x2) tan(phi1) tan(phi2) + y2 tan(phi1) - y1 tan(phi2))
  //         / (tan(phi1) - tan(phi2))
  const double xr = (o2.y - o1.y + o1.x * tan1 - o2.x * tan2) / denom;
  const double yr =
      ((o1.x - o2.x) * tan1 * tan2 + o2.y * tan1 - o1.y * tan2) / denom;
  return Vec2{xr, yr};
}

std::optional<Vec2> leastSquaresIntersection(std::span<const Ray2> rays,
                                             double singularTol) {
  if (rays.size() < 2) return std::nullopt;
  // Each ray contributes the constraint n . p = n . origin where n is the
  // line normal.  Accumulate the 2x2 normal equations A p = b.
  double a00 = 0.0, a01 = 0.0, a11 = 0.0, b0 = 0.0, b1 = 0.0;
  for (const Ray2& r : rays) {
    const Vec2 d = r.direction();
    const Vec2 n{-d.y, d.x};
    const double c = n.dot(r.origin);
    a00 += n.x * n.x;
    a01 += n.x * n.y;
    a11 += n.y * n.y;
    b0 += n.x * c;
    b1 += n.y * c;
  }
  const double det = a00 * a11 - a01 * a01;
  if (std::abs(det) < singularTol) return std::nullopt;
  return Vec2{(b0 * a11 - b1 * a01) / det, (b1 * a00 - b0 * a01) / det};
}

std::optional<MultiRayIntersection> leastSquaresIntersectionDetailed(
    std::span<const Ray2> rays, std::span<const double> weights,
    double singularTol) {
  if (rays.size() < 2) return std::nullopt;
  if (!weights.empty() && weights.size() != rays.size()) return std::nullopt;
  double a00 = 0.0, a01 = 0.0, a11 = 0.0, b0 = 0.0, b1 = 0.0;
  for (size_t i = 0; i < rays.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    if (w <= 0.0) continue;
    const Vec2 d = rays[i].direction();
    const Vec2 n{-d.y, d.x};
    const double c = n.dot(rays[i].origin);
    a00 += w * n.x * n.x;
    a01 += w * n.x * n.y;
    a11 += w * n.y * n.y;
    b0 += w * n.x * c;
    b1 += w * n.y * c;
  }
  const double det = a00 * a11 - a01 * a01;
  if (std::abs(det) < singularTol) return std::nullopt;
  MultiRayIntersection out;
  out.point = Vec2{(b0 * a11 - b1 * a01) / det, (b1 * a00 - b0 * a01) / det};
  out.rayT.reserve(rays.size());
  for (const Ray2& r : rays) {
    const double t = r.project(out.point);
    out.rayT.push_back(t);
    if (t < 0.0) ++out.behindOrigin;
  }
  return out;
}

double rmsResidual(std::span<const Ray2> rays, const Vec2& p) {
  if (rays.empty()) return 0.0;
  double ss = 0.0;
  for (const Ray2& r : rays) {
    const double d = r.signedDistance(p);
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(rays.size()));
}

}  // namespace tagspin::geom
