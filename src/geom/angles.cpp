#include "geom/angles.hpp"

#include <cmath>

namespace tagspin::geom {

double wrapTwoPi(double a) {
  double r = std::fmod(a, kTwoPi);
  if (r < 0.0) r += kTwoPi;
  return r;
}

double wrapToPi(double a) {
  double r = wrapTwoPi(a);
  if (r > kPi) r -= kTwoPi;
  return r;
}

double circularDiff(double to, double from) { return wrapToPi(to - from); }

double circularDistance(double a, double b) {
  return std::abs(circularDiff(a, b));
}

double circularMean(std::span<const double> angles) {
  double s = 0.0;
  double c = 0.0;
  for (double a : angles) {
    s += std::sin(a);
    c += std::cos(a);
  }
  if (s == 0.0 && c == 0.0) return 0.0;
  return std::atan2(s, c);
}

double circularResultantLength(std::span<const double> angles) {
  if (angles.empty()) return 0.0;
  double s = 0.0;
  double c = 0.0;
  for (double a : angles) {
    s += std::sin(a);
    c += std::cos(a);
  }
  return std::hypot(s, c) / static_cast<double>(angles.size());
}

double degToRad(double deg) { return deg * kPi / 180.0; }
double radToDeg(double rad) { return rad * 180.0 / kPi; }

std::vector<double> unwrapPhases(std::span<const double> wrapped) {
  std::vector<double> out;
  out.reserve(wrapped.size());
  double offset = 0.0;
  for (size_t i = 0; i < wrapped.size(); ++i) {
    if (i > 0) {
      const double step = wrapped[i] - wrapped[i - 1];
      if (step > kPi) {
        offset -= kTwoPi;
      } else if (step < -kPi) {
        offset += kTwoPi;
      }
    }
    out.push_back(wrapped[i] + offset);
  }
  return out;
}

std::vector<double> smoothPhasesPaperRule(std::span<const double> wrapped) {
  // The rule compares each sample with its *original* predecessor and
  // shifts by one turn; the shift accumulates so that later samples stay
  // aligned (comparing against already-shifted predecessors would need
  // multi-turn corrections after the second wrap).
  std::vector<double> out(wrapped.begin(), wrapped.end());
  double offset = 0.0;
  for (size_t i = 1; i < out.size(); ++i) {
    const double step = wrapped[i] - wrapped[i - 1];
    if (step > kPi) {
      offset -= kTwoPi;
    } else if (step < -kPi) {
      offset += kTwoPi;
    }
    out[i] += offset;
  }
  return out;
}

}  // namespace tagspin::geom
