#include "eval/fleet.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <numbers>
#include <sstream>
#include <unordered_set>

#include "dsp/stats.hpp"
#include "sim/rng.hpp"

namespace tagspin::eval {
namespace {

std::string sessionName(size_t index) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "s%04zu", index);
  return buf;
}

/// One arm of the paired experiment.  Everything that could differ between
/// arms (outage scripts, persistence) is parameterized; the stream, world,
/// deployment and seeds are shared so latency deltas are attributable to
/// the faults alone.
FleetArmResult runArm(const FleetEvalConfig& config,
                      std::shared_ptr<const sim::SharedStream> stream,
                      const core::DeploymentFile& deployment,
                      const sim::FleetScenarioConfig& chaos, bool withOutage,
                      double endS) {
  FleetArmResult arm;

  runtime::FleetConfig fc = config.fleet;
  fc.shards = config.shards;
  fc.maxSessions = config.sessions;
  fc.workerThreads = config.workerThreads;
  fc.checkpointDir = withOutage ? config.checkpointDir : "";

  // Roles are fixed by index; resolve them once for the latency filter and
  // the recovery tracker.
  std::vector<sim::FleetRole> roles(config.sessions);
  std::vector<std::string> names(config.sessions);
  std::unordered_map<std::string, size_t> indexOf;
  for (size_t i = 0; i < config.sessions; ++i) {
    roles[i] = sim::fleetRole(chaos, i, config.sessions);
    names[i] = sessionName(i);
    indexOf[names[i]] = i;
  }

  const double windowStartS = chaos.outageAtS;
  const double windowEndS = chaos.outageAtS + chaos.outageDurationS;
  fc.onFix = [&](const runtime::FleetFixEvent& ev) {
    if (!ev.ok) return;
    if (ev.nowS < windowStartS || ev.nowS > windowEndS) return;
    const auto it = indexOf.find(ev.name);
    if (it == indexOf.end() || roles[it->second] != sim::FleetRole::kHealthy) {
      return;
    }
    arm.healthyWindowLatenciesS.push_back(ev.nowS - ev.dueS);
  };

  runtime::FleetManager fleet(fc, deployment);
  for (size_t i = 0; i < config.sessions; ++i) {
    sim::FlakyTransportConfig tc;
    tc.connectDelayS = config.connectDelayS;
    tc.seed = sim::deriveSeed(config.seed, 100 + i);
    if (withOutage) {
      tc.events = sim::fleetOutageScript(chaos, i, config.sessions);
    }
    fleet.registerSession(names[i], [stream, tc] {
      return std::make_unique<sim::FlakyTransport>(stream, tc);
    });
  }

  std::vector<size_t> cohort;
  for (size_t i = 0; i < config.sessions; ++i) {
    if (roles[i] == sim::FleetRole::kOutage) cohort.push_back(i);
  }
  arm.outageCohort = cohort.size();
  std::unordered_set<size_t> pendingRecovery(cohort.begin(), cohort.end());

  const auto wallStart = std::chrono::steady_clock::now();
  for (double t = 0.0; t <= endS + 1e-9; t += config.tickS) {
    fleet.tick(t);
    if (withOutage && t > windowEndS && !pendingRecovery.empty()) {
      for (auto it = pendingRecovery.begin(); it != pendingRecovery.end();) {
        const runtime::Supervisor* sup = fleet.supervisor(names[*it]);
        if (sup != nullptr &&
            sup->session(0).state() == runtime::SessionState::kStreaming) {
          const double sinceEndS = t - windowEndS;
          if (arm.firstRecoveryS < 0.0) arm.firstRecoveryS = sinceEndS;
          arm.lastRecoveryS = sinceEndS;
          ++arm.recovered;
          it = pendingRecovery.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  fleet.shutdown(endS);
  const auto wallEnd = std::chrono::steady_clock::now();
  arm.wallSeconds =
      std::chrono::duration<double>(wallEnd - wallStart).count();

  if (arm.recovered > 0) {
    arm.recoverySpreadS = arm.lastRecoveryS - arm.firstRecoveryS;
  }

  arm.stats = fleet.stats();
  const auto views = fleet.sessions();
  for (const auto& v : views) {
    if (v.hasFix) ++arm.sessionsWithFix;
  }
  arm.fixRate = views.empty()
                    ? 0.0
                    : static_cast<double>(arm.sessionsWithFix) /
                          static_cast<double>(views.size());
  const uint64_t ticks =
      static_cast<uint64_t>(std::floor(endS / config.tickS)) + 1;
  const uint64_t attempted = ticks * config.sessions;
  arm.supervisorTicks = attempted > arm.stats.sessionsDeferred
                            ? attempted - arm.stats.sessionsDeferred
                            : 0;
  return arm;
}

}  // namespace

runtime::FleetConfig FleetEvalConfig::defaultFleetConfig() {
  runtime::FleetConfig fc;
  fc.supervisor.session.queueCapacity = 2048;
  fc.supervisor.session.backpressure = runtime::BackpressurePolicy::kDropOldest;
  // Bound the per-fix cost at fleet scale: a fleet-serving fix budget is
  // per-session latency, not survey-grade precision.  Decimation keeps the
  // full spin arc at reduced density; a coarser azimuth grid with fewer
  // refine rounds still converges to centimetres; the angle spectrum and
  // spin diagnostics are luxuries a 500-session box can't afford per fix.
  fc.supervisor.maxSnapshotsPerTag = 400;
  fc.supervisor.checkpointSpectrumPoints = 0;
  fc.supervisor.locator.search.azimuthGridPoints = 180;
  fc.supervisor.locator.search.refineRounds = 4;
  fc.supervisor.locator.orientationIterations = 1;
  fc.supervisor.locator.robust.diagnostics = false;
  fc.supervisor.locator.robust.consensus = false;
  // Sized to the harness's shard width (~64 sessions each): a 20% outage
  // puts ~13 reconnects on a shard, and 4/s re-admits them over several
  // seconds -- visibly paced, but finished well before the stream ends.
  fc.retryBudget.tokensPerSecond = 4.0;
  fc.retryBudget.burst = 8.0;
  return fc;
}

FleetEvalResult runFleetEval(const FleetEvalConfig& config) {
  FleetEvalResult result;
  result.sessions = config.sessions;
  result.shards = config.shards;

  const double period =
      2.0 * std::numbers::pi / config.scenario.rigOmegaRadPerS;
  const double spanS = config.revolutions * period;
  const double endS = spanS + config.settleS;
  result.spanS = spanS;

  sim::FleetScenarioConfig chaos = config.chaos;
  chaos.spanS = spanS;
  chaos.revolutionPeriodS = period;
  if (chaos.outageAtS <= 0.0 || chaos.outageAtS >= spanS) {
    chaos.outageAtS = 0.45 * spanS;
  }
  if (chaos.outageAtS + chaos.outageDurationS > 0.9 * spanS) {
    chaos.outageDurationS = 0.9 * spanS - chaos.outageAtS;
  }
  result.outageStartS = chaos.outageAtS;
  result.outageEndS = chaos.outageAtS + chaos.outageDurationS;

  sim::World world = sim::makeRigRowWorld(config.scenario, config.rigCount);
  auto rng = sim::makeRng(sim::deriveSeed(config.seed, 1));
  sim::Region region;
  const geom::Vec3 truth = region.sample(rng, false);
  sim::placeReaderAntenna(world, 0, truth);

  // Interrogate + encode exactly once; every transport in both arms shares
  // the stream (the fleet-scale point of sim::SharedStream).
  const auto stream = sim::makeSharedStream(
      world, {spanS, 0, sim::deriveSeed(config.seed, 2)});

  core::DeploymentFile deployment;
  for (const sim::RigTag& rt : world.rigs) {
    core::RigSpec spec;
    spec.center = rt.rig.center;
    spec.kinematics = {rt.rig.radiusM, rt.rig.omegaRadPerS,
                       rt.rig.initialAngle, rt.rig.tagPlaneOffset};
    deployment.rigs[rt.tag.epc] = spec;
  }

  result.baseline = runArm(config, stream, deployment, chaos,
                           /*withOutage=*/false, endS);
  result.chaos = runArm(config, stream, deployment, chaos,
                        /*withOutage=*/true, endS);

  if (!result.baseline.healthyWindowLatenciesS.empty()) {
    result.baselineP50S =
        dsp::percentile(result.baseline.healthyWindowLatenciesS, 50.0);
    result.baselineP99S =
        dsp::percentile(result.baseline.healthyWindowLatenciesS, 99.0);
  }
  if (!result.chaos.healthyWindowLatenciesS.empty()) {
    result.chaosP50S =
        dsp::percentile(result.chaos.healthyWindowLatenciesS, 50.0);
    result.chaosP99S =
        dsp::percentile(result.chaos.healthyWindowLatenciesS, 99.0);
  }
  if (result.baselineP99S > 1e-12) {
    result.isolationRatio = result.chaosP99S / result.baselineP99S;
  }
  if (result.chaos.wallSeconds > 0.0) {
    result.sessionTicksPerSec =
        static_cast<double>(result.chaos.supervisorTicks) /
        result.chaos.wallSeconds;
  }
  return result;
}

std::string fleetJson(const FleetEvalResult& result) {
  std::ostringstream out;
  out << "{\n";
  const auto num = [&](const char* key, double v, bool comma = true) {
    char line[128];
    std::snprintf(line, sizeof(line), "  \"%s\": %.6g%s\n", key, v,
                  comma ? "," : "");
    out << line;
  };
  num("sessions", double(result.sessions));
  num("shards", double(result.shards));
  num("span_s", result.spanS);
  num("outage_start_s", result.outageStartS);
  num("outage_end_s", result.outageEndS);
  num("baseline_p50_s", result.baselineP50S);
  num("baseline_p99_s", result.baselineP99S);
  num("chaos_p50_s", result.chaosP50S);
  num("chaos_p99_s", result.chaosP99S);
  num("isolation_ratio", result.isolationRatio);
  num("session_ticks_per_sec", result.sessionTicksPerSec);
  num("baseline_fix_rate", result.baseline.fixRate);
  num("chaos_fix_rate", result.chaos.fixRate);
  num("chaos_window_samples",
      double(result.chaos.healthyWindowLatenciesS.size()));
  num("baseline_window_samples",
      double(result.baseline.healthyWindowLatenciesS.size()));
  num("outage_cohort", double(result.chaos.outageCohort));
  num("outage_recovered", double(result.chaos.recovered));
  num("recovery_first_s", result.chaos.firstRecoveryS);
  num("recovery_last_s", result.chaos.lastRecoveryS);
  num("recovery_spread_s", result.chaos.recoverySpreadS);
  num("ejections", double(result.chaos.stats.ejections));
  num("readmissions", double(result.chaos.stats.readmissions));
  num("quarantined_at_end", double(result.chaos.stats.quarantinedNow));
  num("budget_denied", double(result.chaos.stats.budgetDenied));
  num("sessions_deferred", double(result.chaos.stats.sessionsDeferred));
  num("fixes_computed", double(result.chaos.stats.fixesComputed));
  num("fixes_skipped_shed", double(result.chaos.stats.fixesSkippedShed));
  num("shed_degraded_ticks", double(result.chaos.stats.shedDegradedTicks));
  num("shed_critical_ticks", double(result.chaos.stats.shedCriticalTicks));
  num("checkpoint_writes", double(result.chaos.stats.checkpointWrites));
  num("wall_seconds_chaos", result.chaos.wallSeconds);
  num("wall_seconds_baseline", result.baseline.wallSeconds, false);
  out << "}\n";
  return out.str();
}

}  // namespace tagspin::eval
