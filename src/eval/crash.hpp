// Crash-consistency evaluation: the systematic falsifier for every
// durability claim in the tree.
//
// Three escalating attacks, all against sim::SimIoEnv (never the real
// disk), all fully deterministic:
//
//  1. Exhaustive crash-point exploration.  Each scripted workload --
//     repeated checkpoint saves, capture append, capture reopen (clean and
//     torn), and the fleet shard-checkpoint fan-out -- is run once per
//     syscall boundary with a power cut scheduled exactly there.  At every
//     cut the post-crash disk is materialized under a set of write-back
//     persistence variants (nothing / everything / metadata-only /
//     seeded-prefix-with-torn-write / seeded-reordered-subset), *real*
//     recovery is run against it (CheckpointStore::load, scanValidPrefix +
//     decodeCaptureTolerant, CaptureWriter reopen-and-extend), and the
//     workload's oracle checks the invariants: a checkpoint is bit-identical
//     to old-or-new, a capture decodes to a valid prefix of what was
//     appended that covers everything acked as fsynced, and reopen resumes
//     without corrupting earlier chunks.
//
//  2. Seeded fault-schedule search.  Random schedules of injected faults
//     (EIO, ENOSPC, EINTR, short writes, partially-persisting fsync
//     failures, and power cuts) by global syscall index are thrown at the
//     fleet fan-out path; crashing runs are checked across all persistence
//     variants, surviving runs against the live state plus a no-.tmp-litter
//     invariant.
//
//  3. Falsification proof.  A deliberately broken writer (tmp+rename
//     WITHOUT the data fsync -- the classic ordering bug) is swept by the
//     same explorer; it must be caught, and a failing fault schedule found
//     by search must shrink, via delta debugging (shrinkSchedule), to a
//     minimal replayable artifact (seed + schedule JSON) of the kind a bug
//     report would carry.  A harness that cannot flag a planted bug proves
//     nothing by passing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/io_sim.hpp"

namespace tagspin::eval {

struct CrashExploreConfig {
  uint64_t seed = 0xC4A5117ULL;

  /// Checkpoint workload: save() this many growing checkpoints in a row.
  size_t checkpointSaves = 10;

  /// Capture workloads: reports appended per run, chunking and fsync
  /// cadence of the writer under test.
  size_t captureReports = 120;
  size_t chunkReports = 8;
  size_t fsyncEveryChunks = 2;
  /// Reports appended by the reopen-and-extend recovery check.
  size_t reopenExtraReports = 10;

  /// Fleet fan-out workload: shards x rounds of framed durable writes with
  /// the per-shard catch fleet.cpp uses (a failed shard checkpoint must not
  /// kill the tick).
  size_t fleetShards = 3;
  size_t fleetRounds = 4;

  /// Seeded persistence variants per random mode (kPrefix and kSubset each
  /// get this many seeds; kNone/kAll/kMetaOnly are deterministic).
  size_t persistSeeds = 4;

  /// Fault-schedule search: random schedules thrown at the fleet fan-out
  /// path, and the cap on faults per schedule.
  size_t scheduleRounds = 96;
  size_t maxScheduleFaults = 4;

  /// Schedules tried against the broken writer before giving up on finding
  /// a failing one to shrink.
  size_t brokenSearchRounds = 400;

  /// Run the deliberately-broken-writer falsification arm.
  bool exploreBrokenWriter = true;

  /// Violations kept with full detail (counts are always exact).
  size_t maxViolationDetails = 32;
};

/// One invariant violation, with everything needed to replay it.
struct CrashViolation {
  std::string workload;
  /// Syscall index of the scheduled power cut; -1 when the run was driven
  /// by a fault schedule (or completed) instead.
  int64_t crashAtOp = -1;
  sim::FaultSchedule schedule;  // empty for pure crash-point runs
  std::string persistMode;      // empty when the live state failed
  uint64_t persistSeed = 0;
  std::string detail;
};

struct WorkloadCrashStats {
  std::string name;
  uint64_t boundaries = 0;   // syscall boundaries enumerated (= runs)
  uint64_t crashPoints = 0;  // boundary x persistence-variant recoveries
  uint64_t violations = 0;
};

struct CrashEvalResult {
  std::vector<WorkloadCrashStats> workloads;
  uint64_t totalBoundaries = 0;
  uint64_t totalCrashPoints = 0;
  uint64_t totalViolations = 0;
  std::vector<CrashViolation> violations;  // capped at maxViolationDetails

  // Fault-schedule search over the fleet fan-out path.
  uint64_t scheduleRuns = 0;
  uint64_t scheduleCrashes = 0;     // runs whose schedule fired a power cut
  uint64_t scheduleChecks = 0;      // recovery checks performed
  uint64_t scheduleViolations = 0;

  // Falsification arm (deliberately broken writer).
  bool brokenWriterCaught = false;     // crash-point exploration flagged it
  bool brokenScheduleFound = false;    // search found a failing schedule
  uint64_t brokenScheduleFaults = 0;   // faults before shrinking
  uint64_t brokenShrunkFaults = 0;     // faults after delta debugging
  std::string brokenArtifactJson;      // minimal replayable artifact

  /// Zero violations on the correct writers AND the planted bug was caught
  /// and shrunk (when the arm is enabled).
  bool pass = false;
};

CrashEvalResult runCrashEval(const CrashExploreConfig& config);

/// Full result as JSON (the BENCH_crash.json payload).
std::string crashJson(const CrashEvalResult& result);

/// Delta-debugging (ddmin) minimizer: returns a minimal sub-schedule for
/// which `fails` still returns true (1-minimal: removing any single chunk
/// at the final granularity makes it pass).  `fails(schedule)` must be
/// deterministic; `schedule` itself is assumed failing.
sim::FaultSchedule shrinkSchedule(
    const sim::FaultSchedule& schedule,
    const std::function<bool(const sim::FaultSchedule&)>& fails);

}  // namespace tagspin::eval
