// Chaos harness: the repo's first robustness benchmark.
//
// Sweeps the FaultInjector's intensity over a fixed deployment and measures
// how the *resilient* ingestion path (tolerant LLRP decode -> robust
// preprocess -> graceful-degradation locator) breaks down: fix success rate
// and error quantiles as a function of corruption rate.  Accuracy benches
// (fig10 &c.) answer "how good is a fix"; this answers "how hard can the
// input rot before there is no fix at all" -- the production question.
//
// Every trial runs the full wire path: interrogate -> report-level faults ->
// LLRP encode -> byte-level faults -> tolerant decode -> tryLocate2D.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/errors.hpp"
#include "core/quality.hpp"
#include "obs/metrics.hpp"
#include "rfid/llrp.hpp"
#include "sim/faults.hpp"
#include "sim/scenario.hpp"

namespace tagspin::eval {

struct ChaosConfig {
  sim::ScenarioConfig scenario;
  sim::Region region;
  /// Rigs in the deployment (a row, sim::makeRigRowWorld).  Three is the
  /// smallest count where the graceful-degradation locator can actually
  /// *drop* an unhealthy rig and still fix from the rest; two rigs can only
  /// degrade in place.
  int rigCount = 3;
  /// Health gate used by the resilient path.  The chaos default demands
  /// more arc coverage than the library default: a rig silent for ~a third
  /// of a (barely more than one revolution) spin loses a contiguous
  /// aperture sector and its bearing is badly biased, so it is cheaper to
  /// drop it than to average it in.
  core::RigHealthThresholds health = defaultHealthThresholds();
  int trialsPerPoint = 40;
  double durationS = 15.0;
  /// Fault intensities swept; 0 is the clean reference point.
  std::vector<double> intensities = {0.0, 0.25, 0.5, 0.75, 1.0};
  /// Fault rates at intensity 1.0 (linearly scaled in between).  The default
  /// full-intensity cocktail is the acceptance scenario: 5% frame bit flips
  /// + 2% frame truncation, 10% duplicates, 5% reorders, occasional clock
  /// glitches/drift and EPC bit errors.
  sim::FaultConfig faultsAtFull = defaultFaultTemplate();
  /// Rig (index into world.rigs) silenced for `dropoutFraction *
  /// intensity` of the interrogation; -1 disables the dropout.
  int dropoutRig = 0;
  double dropoutFraction = 0.30;
  core::LocatorConfig locator;
  uint64_t seed = 0xC4A05;

  static sim::FaultConfig defaultFaultTemplate();
  static core::RigHealthThresholds defaultHealthThresholds();
};

struct ChaosPoint {
  double intensity = 0.0;
  int trials = 0;
  int fixes = 0;
  double fixRate = 0.0;
  // Error stats over successful fixes, cm (0 when no fix succeeded).
  double meanErrorCm = 0.0;
  double medianErrorCm = 0.0;
  double p90ErrorCm = 0.0;
  /// Decode/repair accounting aggregated over the point's trials (read back
  /// from the point's metrics registry).
  rfid::llrp::DecodeStats decode;
  sim::FaultStats faults;
  /// Median end-to-end tryLocate2D latency at this intensity (span.fix2d
  /// p50), milliseconds; 0 when no attempt ran.
  double medianFixLatencyMs = 0.0;
  /// Failure causes (ErrorCode name -> count) for trials without a fix.
  std::map<std::string, int> failures;
  /// Count of degraded/minimal-grade fixes (unhealthy rigs were dropped).
  int degradedFixes = 0;
};

struct ChaosResult {
  std::vector<ChaosPoint> points;
  /// Median error of the intensity-0 point (the clean reference), cm.
  double cleanMedianErrorCm = 0.0;
};

ChaosResult runChaosSweep(const ChaosConfig& config);

/// Breakdown curve as CSV (one row per intensity) / JSON (an object with a
/// "points" array); both include the fix rate, error quantiles and decode
/// accounting so the curve can be plotted directly.
std::string chaosCsv(const ChaosResult& result);
std::string chaosJson(const ChaosResult& result);

}  // namespace tagspin::eval
