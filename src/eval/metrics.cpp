#include "eval/metrics.hpp"

#include <cmath>

namespace tagspin::eval {

namespace {
constexpr double kMetersToCm = 100.0;
}

ErrorCm errorCm(const geom::Vec2& estimate, const geom::Vec2& truth) {
  ErrorCm e;
  e.x = std::abs(estimate.x - truth.x) * kMetersToCm;
  e.y = std::abs(estimate.y - truth.y) * kMetersToCm;
  e.z = 0.0;
  e.combined = geom::distance(estimate, truth) * kMetersToCm;
  return e;
}

ErrorCm errorCm(const geom::Vec3& estimate, const geom::Vec3& truth) {
  ErrorCm e;
  e.x = std::abs(estimate.x - truth.x) * kMetersToCm;
  e.y = std::abs(estimate.y - truth.y) * kMetersToCm;
  e.z = std::abs(estimate.z - truth.z) * kMetersToCm;
  e.combined = geom::distance(estimate, truth) * kMetersToCm;
  return e;
}

namespace {
template <typename Getter>
std::vector<double> column(std::span<const ErrorCm> errors, Getter get) {
  std::vector<double> out;
  out.reserve(errors.size());
  for (const ErrorCm& e : errors) out.push_back(get(e));
  return out;
}
}  // namespace

std::vector<double> xErrors(std::span<const ErrorCm> errors) {
  return column(errors, [](const ErrorCm& e) { return e.x; });
}
std::vector<double> yErrors(std::span<const ErrorCm> errors) {
  return column(errors, [](const ErrorCm& e) { return e.y; });
}
std::vector<double> zErrors(std::span<const ErrorCm> errors) {
  return column(errors, [](const ErrorCm& e) { return e.z; });
}
std::vector<double> combinedErrors(std::span<const ErrorCm> errors) {
  return column(errors, [](const ErrorCm& e) { return e.combined; });
}

dsp::Summary summarizeCombined(std::span<const ErrorCm> errors) {
  return dsp::summarize(combinedErrors(errors));
}

}  // namespace tagspin::eval
