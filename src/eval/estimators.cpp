#include "eval/estimators.hpp"

#include "core/tagspin.hpp"

namespace tagspin::eval {

core::TagspinSystem buildTagspinServer(
    const sim::World& world,
    const std::map<Epc, core::OrientationModel>& orientationModels,
    const core::LocatorConfig& config) {
  core::TagspinSystem server(config);
  for (const sim::RigTag& rt : world.rigs) {
    core::RigSpec spec;
    spec.center = rt.rig.center;
    spec.kinematics.radiusM = rt.rig.radiusM;
    spec.kinematics.omegaRadPerS = rt.rig.omegaRadPerS;
    spec.kinematics.initialAngle = rt.rig.initialAngle;
    spec.kinematics.tagPlaneOffset = rt.rig.tagPlaneOffset;
    if (rt.rig.plane == sim::SpinningRig::Plane::kHorizontal) {
      server.registerRig(rt.tag.epc, spec);
    } else {
      server.registerVerticalRig(rt.tag.epc, spec);
    }
    if (const auto it = orientationModels.find(rt.tag.epc);
        it != orientationModels.end()) {
      server.setOrientationModel(rt.tag.epc, it->second);
    }
  }
  return server;
}

Estimator makeTagspin2D(const core::LocatorConfig& config) {
  return [config](const TrialContext& ctx) {
    const core::TagspinSystem server =
        buildTagspinServer(ctx.world, ctx.orientationModels, config);
    const core::Fix2D fix = server.locate2D(ctx.reports);
    const double planeZ =
        ctx.world.rigs.empty() ? 0.0 : ctx.world.rigs[0].rig.center.z;
    return geom::Vec3{fix.position.x, fix.position.y, planeZ};
  };
}

Estimator makeTagspin3D(const core::LocatorConfig& config) {
  return [config](const TrialContext& ctx) {
    const core::TagspinSystem server =
        buildTagspinServer(ctx.world, ctx.orientationModels, config);
    const core::Fix3D fix = server.locate3D(ctx.reports);
    return fix.position;
  };
}

}  // namespace tagspin::eval
