#include "eval/runner.hpp"

#include <exception>

#include "core/preprocess.hpp"
#include "geom/angles.hpp"
#include "sim/interrogator.hpp"
#include "sim/rng.hpp"

namespace tagspin::eval {

std::map<Epc, core::OrientationModel> runCalibrationPrelude(
    const sim::World& world, double durationS) {
  std::map<Epc, core::OrientationModel> models;
  // The bench spot for the prelude: a surveyed reader position with a clear
  // view of the disk (any spot works; the fit solves for the offsets).
  const geom::Vec3 benchPos{1.2, 1.5, 0.0};

  for (const sim::RigTag& rt : world.rigs) {
    if (rt.rig.plane != sim::SpinningRig::Plane::kHorizontal) continue;
    // Center-spin world: same environment and reader, tag moved to the
    // disk center.
    sim::World cw = world;
    cw.rigs.clear();
    sim::RigTag center = rt;
    center.rig.radiusM = 0.0;
    center.rig.center.z = rt.rig.center.z;
    cw.rigs.push_back(center);
    cw.statics.clear();  // the bench calibration is done in isolation
    geom::Vec3 bench = benchPos;
    bench.z = rt.rig.center.z;
    sim::placeReaderAntenna(cw, 0, bench);

    sim::InterrogateConfig ic;
    ic.durationS = durationS;
    ic.antennaPort = 0;
    ic.streamId = 0xCA11B007ULL;
    const rfid::ReportStream reports = sim::interrogate(cw, ic);

    const std::vector<core::Snapshot> snaps =
        core::extractSnapshots(reports, rt.tag.epc);
    core::RigKinematics kin;
    kin.radiusM = 0.0;
    kin.omegaRadPerS = rt.rig.omegaRadPerS;
    kin.initialAngle = rt.rig.initialAngle;
    kin.tagPlaneOffset = rt.rig.tagPlaneOffset;
    const double azimuth = geom::azimuthOf(center.rig.center, bench);
    models[rt.tag.epc] = core::OrientationModel::fit(snaps, kin, azimuth);
  }
  return models;
}

RunResult runExperiment(const RunnerConfig& config,
                        const Estimator& estimator) {
  RunResult result;
  std::map<Epc, core::OrientationModel> models;
  if (config.calibrateOrientation) {
    models = runCalibrationPrelude(config.world, config.calibrationDurationS);
  }

  std::mt19937_64 placementRng(
      sim::deriveSeed(config.seed, 0x9 + config.world.worldSeed));
  for (int trial = 0; trial < config.trials; ++trial) {
    sim::World w = config.world;
    geom::Vec3 truth = config.region.sample(placementRng, config.threeD);
    truth.z += config.world.rigs.empty() ? 0.0
                                         : config.world.rigs[0].rig.center.z;
    sim::placeReaderAntenna(w, config.antennaPort, truth);

    sim::InterrogateConfig ic;
    ic.durationS = config.durationS;
    ic.antennaPort = config.antennaPort;
    ic.streamId = static_cast<uint64_t>(trial) + 1;
    const rfid::ReportStream reports = sim::interrogate(w, ic);

    TrialContext ctx{w, reports, models, truth, config.antennaPort};
    try {
      const geom::Vec3 estimate = estimator(ctx);
      result.estimates.push_back(estimate);
      result.truths.push_back(truth);
      result.errors.push_back(config.threeD
                                  ? errorCm(estimate, truth)
                                  : errorCm(estimate.xy(), truth.xy()));
    } catch (const std::exception&) {
      ++result.failedTrials;
    }
  }
  result.summary = summarizeCombined(result.errors);
  return result;
}

}  // namespace tagspin::eval
