#include "eval/track.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "capture/digest.hpp"
#include "capture/replay.hpp"
#include "core/tagspin.hpp"
#include "eval/metrics.hpp"
#include "sim/flaky_transport.hpp"
#include "sim/interrogator.hpp"
#include "sim/rng.hpp"
#include "track/fix_adapter.hpp"
#include "track/motion.hpp"

namespace tagspin::eval {

namespace {

/// What a window delivers to the tracker in a given arm.
enum class WindowAction { kFix, kGap, kGhost };

/// One window of the shared capture corpus: the reader's true (midpoint)
/// position and the interrogation streams from the truth and -- when the
/// schedule calls for it -- from the decoy position.
struct WindowCapture {
  double midS = 0.0;
  geom::Vec2 truth;
  geom::Vec2 ghostPos;
  rfid::ReportStream clean;
  rfid::ReportStream ghost;  // empty unless a schedule marks it kGhost
};

core::TagspinSystem makeServer(const sim::World& world,
                               const TrackEvalConfig& config) {
  core::TagspinSystem server(config.locator);
  for (const sim::RigTag& rt : world.rigs) {
    core::RigSpec spec;
    spec.center = rt.rig.center;
    spec.kinematics = {rt.rig.radiusM, rt.rig.omegaRadPerS,
                       rt.rig.initialAngle, rt.rig.tagPlaneOffset};
    server.registerRig(rt.tag.epc, spec);
  }
  server.setHealthThresholds(config.health);
  return server;
}

void foldEstimate(capture::Fnv1a& digest, const track::TrackEstimate& est) {
  digest.f64(est.timeS);
  digest.f64(est.position.x);
  digest.f64(est.position.y);
  digest.f64(est.velocity.x);
  digest.f64(est.velocity.y);
  digest.u64(static_cast<uint64_t>(est.state));
  digest.u64(static_cast<uint64_t>(est.model));
  digest.u64(est.usedMeasurement ? 1 : 0);
}

double rmseCm(const std::vector<double>& errorsCm) {
  if (errorsCm.empty()) return 0.0;
  double sq = 0.0;
  for (double e : errorsCm) sq += e * e;
  return std::sqrt(sq / static_cast<double>(errorsCm.size()));
}

/// Run one arm: the schedule decides what each corpus window delivers.
TrackArmResult runArm(const std::string& name, const TrackEvalConfig& config,
                      const core::TagspinSystem& server,
                      const std::vector<WindowCapture>& corpus,
                      const std::vector<WindowAction>& schedule) {
  TrackArmResult arm;
  arm.name = name;
  arm.windows = static_cast<int>(corpus.size());
  track::Tracker tracker(config.tracker);
  capture::Fnv1a digest;
  std::vector<double> fixErrorsCm;
  std::vector<double> trackErrorsCm;

  for (size_t i = 0; i < corpus.size(); ++i) {
    const WindowCapture& w = corpus[i];
    const WindowAction action = schedule[i];
    TrackWindowRow row;
    row.timeS = w.midS;
    row.truthX = w.truth.x;
    row.truthY = w.truth.y;

    if (action == WindowAction::kGap) {
      ++arm.gapWindows;
      tracker.onGap(w.midS);
    } else {
      const rfid::ReportStream& stream =
          action == WindowAction::kGhost ? w.ghost : w.clean;
      const core::Result<core::ResilientFix2D> fix =
          server.tryLocate2D(stream);
      if (!fix) {
        ++arm.gapWindows;
        tracker.onGap(w.midS);
      } else {
        ++arm.fixesProduced;
        row.hasFix = true;
        row.ghost = action == WindowAction::kGhost;
        if (row.ghost) ++arm.ghostWindows;
        row.fixX = fix->fix.position.x;
        row.fixY = fix->fix.position.y;
        tracker.onMeasurement(track::toMeasurement(*fix, w.midS));
        if (!row.ghost && static_cast<int>(i) >= config.warmupWindows) {
          fixErrorsCm.push_back(
              errorCm(fix->fix.position, w.truth).combined);
        }
      }
    }

    if (tracker.hasEstimate()) {
      const track::TrackEstimate& est = tracker.lastEstimate();
      foldEstimate(digest, est);
      row.hasTrack = true;
      row.trackX = est.position.x;
      row.trackY = est.position.y;
      row.state = track::trackStateName(est.state);
      row.model = track::motionModelName(est.model);
      row.nis = est.nis;
      if (static_cast<int>(i) >= config.warmupWindows) {
        const double errCm = errorCm(est.position, w.truth).combined;
        trackErrorsCm.push_back(errCm);
        if (!est.usedMeasurement) {
          arm.coastMaxErrorCm = std::max(arm.coastMaxErrorCm, errCm);
        }
      }
    } else {
      row.state = track::trackStateName(tracker.state());
    }
    arm.rows.push_back(std::move(row));
  }

  arm.fixRmseCm = rmseCm(fixErrorsCm);
  arm.trackRmseCm = rmseCm(trackErrorsCm);
  arm.stats = tracker.stats();
  arm.finalState = track::trackStateName(tracker.state());
  arm.trajectoryDigest = digest.value();
  return arm;
}

}  // namespace

sim::ScenarioConfig TrackEvalConfig::defaultScenario() {
  sim::ScenarioConfig scenario;
  // Fast spin: one full revolution per 2 s fix window, so the quasi-static
  // approximation holds against a ~0.2 m/s reader.
  scenario.rigOmegaRadPerS = 3.14159265358979323846;
  // The arms isolate the filter against fix noise; multipath stress has
  // its own bench (fig_adversarial).
  scenario.multipath = false;
  // A wide rig baseline keeps the ray-intersection angles healthy across
  // the whole patrol loop; a narrow row would give the far leg correlated
  // range errors no filter can average out.
  scenario.centerSpacingM = 0.9;
  return scenario;
}

core::LocatorConfig TrackEvalConfig::defaultLocator() {
  core::LocatorConfig config;
  config.robust.diagnostics = true;
  config.robust.consensus = true;
  config.robust.bootstrap = true;
  return config;
}

track::TrackerConfig TrackEvalConfig::defaultTracker() {
  track::TrackerConfig tracker;
  // The patrol profile is exactly piecewise CV/CT (constant speed,
  // straight legs, circular fillets), so the process noise only has to
  // absorb the leg/arc transitions: accelStd covers the centripetal
  // acceleration at patrol speed and turnRateStd lets the CT bank acquire
  // a corner's turn rate within a window or two.
  tracker.noise.accelStd = 0.004;
  tracker.noise.turnRateStd = 0.06;
  // Deliberately conservative innovation target: stronger smoothing, and
  // the unscaled-R gate still accepts every honest fix.
  tracker.rCalibrationTargetNis = 3.0;
  tracker.modelSwitchMargin = 1.6;
  return tracker;
}

TrackEvalResult runTrackEval(const TrackEvalConfig& config) {
  TrackEvalResult result;

  sim::World world = sim::makeRigRowWorld(config.scenario, config.rigCount);
  {
    rf::ChannelConfig channel = world.channel.config();
    channel.phaseNoiseStd = config.phaseNoiseStd;
    world.channel =
        rf::BackscatterChannel(channel, world.channel.scatterers());
  }
  const core::TagspinSystem server = makeServer(world, config);
  const sim::Trajectory trajectory(
      sim::patrolPath(config.region, config.speedMps, config.turnRadiusM));

  // DROPOUT schedule decided up front so the corpus knows which windows
  // need a decoy interrogation.
  const size_t n = static_cast<size_t>(config.windows);
  std::vector<WindowAction> cleanSchedule(n, WindowAction::kFix);
  std::vector<WindowAction> dropoutSchedule(n, WindowAction::kFix);
  {
    auto rng = sim::makeRng(sim::deriveSeed(config.seed, 0xD60ULL));
    std::uniform_real_distribution<double> unif(0.0, 1.0);
    for (size_t i = 0; i < n; ++i) {
      if (static_cast<int>(i) < config.warmupWindows) continue;
      const double roll = unif(rng);
      if (roll < config.dropoutFraction) {
        dropoutSchedule[i] = WindowAction::kGap;
      } else if (roll < config.dropoutFraction + config.ghostFraction) {
        dropoutSchedule[i] = WindowAction::kGhost;
      }
    }
  }

  // OUTAGE schedule: the standard soak script mapped onto windows -- a
  // window is lost when its midpoint falls inside a disconnect or stall.
  std::vector<WindowAction> outageSchedule(n, WindowAction::kFix);
  {
    const double spanS = config.windowS * static_cast<double>(n);
    const double periodS =
        2.0 * 3.14159265358979323846 / config.scenario.rigOmegaRadPerS;
    const auto events = sim::standardOutageScript(
        spanS, periodS, sim::deriveSeed(config.seed, 0x0D7ULL));
    for (size_t i = 0; i < n; ++i) {
      const double midS = (static_cast<double>(i) + 0.5) * config.windowS;
      for (const sim::OutageEvent& ev : events) {
        if (ev.kind == sim::OutageEvent::Kind::kFlood) continue;
        if (midS >= ev.atS && midS <= ev.atS + ev.durationS) {
          outageSchedule[i] = WindowAction::kGap;
          break;
        }
      }
    }
  }

  // Shared capture corpus: one interrogation per window from the true
  // (midpoint) position; a decoy interrogation for ghost windows.
  std::vector<WindowCapture> corpus;
  corpus.reserve(n);
  auto ghostRng = sim::makeRng(sim::deriveSeed(config.seed, 0x607ULL));
  for (size_t i = 0; i < n; ++i) {
    WindowCapture w;
    w.midS = (static_cast<double>(i) + 0.5) * config.windowS;
    w.truth = trajectory.positionAt(w.midS);

    sim::World placed = world;
    sim::placeReaderAntenna(placed, 0, {w.truth, 0.0});
    sim::InterrogateConfig ic;
    ic.durationS = config.windowS;
    ic.antennaPort = 0;
    ic.streamId = sim::deriveSeed(config.seed ^ 0x77AC4ULL, i);
    w.clean = sim::interrogate(placed, ic);

    if (dropoutSchedule[i] == WindowAction::kGhost) {
      geom::Vec3 decoy = config.region.sample(ghostRng, false);
      for (int attempt = 0;
           attempt < 64 && geom::distance(decoy.xy(), w.truth) < 1.0;
           ++attempt) {
        decoy = config.region.sample(ghostRng, false);
      }
      w.ghostPos = decoy.xy();
      sim::World ghostWorld = world;
      sim::placeReaderAntenna(ghostWorld, 0, decoy);
      sim::InterrogateConfig gic = ic;
      gic.streamId = sim::deriveSeed(config.seed ^ 0x6057ULL, i);
      w.ghost = sim::interrogate(ghostWorld, gic);
    }
    corpus.push_back(std::move(w));
  }

  result.clean = runArm("clean", config, server, corpus, cleanSchedule);
  result.dropout = runArm("dropout", config, server, corpus, dropoutSchedule);
  result.outage = runArm("outage", config, server, corpus, outageSchedule);

  // Determinism: the dropout arm replayed over the identical corpus must
  // reproduce the trajectory bit for bit.
  const TrackArmResult replay =
      runArm("dropout", config, server, corpus, dropoutSchedule);
  result.replayDigest1 = result.dropout.trajectoryDigest;
  result.replayDigest2 = replay.trajectoryDigest;
  result.replayDeterministic = result.replayDigest1 == result.replayDigest2;

  if (result.clean.fixRmseCm > 0.0) {
    result.rmseRatio = result.clean.trackRmseCm / result.clean.fixRmseCm;
  }
  result.outageSurvived = result.outage.stats.reinits == 0 &&
                          result.outage.stats.drops == 0 &&
                          result.outage.finalState != "dropped" &&
                          result.outage.finalState != "tentative";
  return result;
}

std::string trackArmCsv(const TrackArmResult& arm) {
  std::ostringstream out;
  out << "time_s,truth_x,truth_y,has_fix,ghost,fix_x,fix_y,track_x,track_y,"
         "state,model,nis\n";
  out << std::setprecision(10);
  for (const TrackWindowRow& r : arm.rows) {
    out << r.timeS << "," << r.truthX << "," << r.truthY << ","
        << (r.hasFix ? 1 : 0) << "," << (r.ghost ? 1 : 0) << "," << r.fixX
        << "," << r.fixY << "," << r.trackX << "," << r.trackY << ","
        << r.state << "," << r.model << "," << r.nis << "\n";
  }
  return out.str();
}

namespace {

void armJson(std::ostringstream& out, const TrackArmResult& arm) {
  out << "{\"name\":\"" << arm.name << "\",\"windows\":" << arm.windows
      << ",\"fixes\":" << arm.fixesProduced
      << ",\"gap_windows\":" << arm.gapWindows
      << ",\"ghost_windows\":" << arm.ghostWindows
      << ",\"fix_rmse_cm\":" << arm.fixRmseCm
      << ",\"track_rmse_cm\":" << arm.trackRmseCm
      << ",\"coast_max_error_cm\":" << arm.coastMaxErrorCm
      << ",\"accepted\":" << arm.stats.accepted
      << ",\"gate_rejects\":" << arm.stats.gateRejects
      << ",\"verdict_rejects\":" << arm.stats.verdictRejects
      << ",\"coasts\":" << arm.stats.coasts
      << ",\"coast_fraction\":" << arm.stats.coastFraction()
      << ",\"model_switches\":" << arm.stats.modelSwitches
      << ",\"reinits\":" << arm.stats.reinits
      << ",\"drops\":" << arm.stats.drops << ",\"final_state\":\""
      << arm.finalState << "\",\"trajectory_digest\":\""
      << capture::digestHex(arm.trajectoryDigest) << "\"}";
}

}  // namespace

std::string trackJson(const TrackEvalResult& result) {
  std::ostringstream out;
  out << std::setprecision(10);
  out << "{\"clean\":";
  armJson(out, result.clean);
  out << ",\"dropout\":";
  armJson(out, result.dropout);
  out << ",\"outage\":";
  armJson(out, result.outage);
  out << ",\"rmse_ratio\":" << result.rmseRatio
      << ",\"outage_survived\":" << (result.outageSurvived ? "true" : "false")
      << ",\"replay_digest1\":\"" << capture::digestHex(result.replayDigest1)
      << "\",\"replay_digest2\":\"" << capture::digestHex(result.replayDigest2)
      << "\",\"replay_deterministic\":"
      << (result.replayDeterministic ? "true" : "false") << "}";
  return out.str();
}

TrackReplayResult runTrackReplay(const std::string& capturePath,
                                 const core::DeploymentFile& deployment,
                                 runtime::SupervisorConfig supervisor,
                                 double fixIntervalS, double tickS) {
  TrackReplayResult result;
  const capture::TimedStream timed =
      capture::readCaptureFile(capturePath, /*tolerant=*/true);
  const auto stream = capture::makeReplayStream(timed);

  supervisor.trackFixes = true;
  runtime::Supervisor sup(supervisor, deployment, nullptr);
  auto transport =
      std::make_shared<capture::ReplayTransport>(stream, capture::ReplayTransportConfig{});
  sup.addSession("replay0", [transport] {
    return std::make_unique<runtime::SharedTransport>(transport);
  });

  const double spanS = stream->releaseS.empty() ? 0.0 : stream->releaseS.back();
  const double endS = spanS + 2.0;
  capture::Fnv1a digest;
  double nextFixS = fixIntervalS;
  for (double t = 0.0; t <= endS + 1e-9; t += tickS) {
    sup.tick(t);
    if (t + 1e-9 >= nextFixS) {
      nextFixS += fixIntervalS;
      const auto fix = sup.locateAndRecover2D(t);
      if (fix.hasValue()) ++result.fixes;
      if (sup.tracker() && sup.tracker()->hasEstimate()) {
        const track::TrackEstimate& est = sup.tracker()->lastEstimate();
        foldEstimate(digest, est);
        ++result.estimates;
        result.finalX = est.position.x;
        result.finalY = est.position.y;
      }
    }
  }
  sup.shutdown(endS);
  result.trajectoryDigest = digest.value();
  result.finalState = sup.tracker()
                          ? track::trackStateName(sup.tracker()->state())
                          : "disabled";
  return result;
}

}  // namespace tagspin::eval
