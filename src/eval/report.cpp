#include "eval/report.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace tagspin::eval {

std::string consumeOutDir(std::vector<std::string>& args,
                          const std::string& fallback) {
  std::string dir = fallback;
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (it->rfind("--out=", 0) == 0) {
      dir = it->substr(6);
      args.erase(it);
      break;
    }
  }
  if (dir.empty()) dir = ".";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; open() reports
  return dir;
}

std::string outputPath(const std::string& dir, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return (std::filesystem::path(dir) / name).string();
}

void printHeading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void printSubheading(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

void printSummaryHeader() {
  std::printf("%-34s %8s %8s %8s %8s %8s %8s %6s\n", "system", "mean", "std",
              "median", "p90", "min", "max", "n");
}

void printSummaryRow(const std::string& name, const dsp::Summary& s) {
  std::printf("%-34s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %6zu\n", name.c_str(),
              s.mean, s.stddev, s.median, s.p90, s.min, s.max, s.count);
}

void printCdf(const std::string& name, std::span<const double> values,
              int points) {
  if (values.empty()) {
    std::printf("%s: (no data)\n", name.c_str());
    return;
  }
  const dsp::Ecdf cdf = dsp::makeEcdf(values);
  std::printf("%s CDF:\n", name.c_str());
  for (int i = 1; i <= points; ++i) {
    const double p = static_cast<double>(i) / points;
    std::printf("  P%3.0f <= %7.2f cm\n", p * 100.0, cdf.quantile(p));
  }
}

void printErrorBreakdown(const std::string& name,
                         std::span<const ErrorCm> errors) {
  printSubheading(name);
  printSummaryHeader();
  printSummaryRow("x-axis", dsp::summarize(xErrors(errors)));
  printSummaryRow("y-axis", dsp::summarize(yErrors(errors)));
  const auto z = zErrors(errors);
  if (std::any_of(z.begin(), z.end(), [](double v) { return v != 0.0; })) {
    printSummaryRow("z-axis", dsp::summarize(z));
  }
  printSummaryRow("combined", dsp::summarize(combinedErrors(errors)));
}

void printSeries(const std::string& xLabel, const std::string& yLabel,
                 std::span<const std::pair<double, double>> series) {
  std::printf("%12s %12s\n", xLabel.c_str(), yLabel.c_str());
  for (const auto& [x, y] : series) {
    std::printf("%12.3f %12.3f\n", x, y);
  }
}

void printProfileAscii(const std::string& name,
                       std::span<const double> profile, int rows) {
  if (profile.empty()) return;
  const double maxV = *std::max_element(profile.begin(), profile.end());
  const double minV = *std::min_element(profile.begin(), profile.end());
  const double span = std::max(maxV - minV, 1e-12);
  const int cols = 72;
  std::printf("%s  (max %.3f at %zu deg-bin of %zu)\n", name.c_str(), maxV,
              static_cast<size_t>(std::max_element(profile.begin(),
                                                   profile.end()) -
                                  profile.begin()),
              profile.size());
  for (int r = rows - 1; r >= 0; --r) {
    const double level = minV + span * (r + 0.5) / rows;
    std::fputs("  |", stdout);
    for (int c = 0; c < cols; ++c) {
      const size_t idx = static_cast<size_t>(
          static_cast<double>(c) * static_cast<double>(profile.size()) / cols);
      std::fputc(profile[idx] >= level ? '#' : ' ', stdout);
    }
    std::fputs("|\n", stdout);
  }
  std::printf("   0%*s360 deg\n", 68, "");
}

}  // namespace tagspin::eval
