// Replay harness: record a live chaotic session to a capture file, then
// prove the capture is a faithful, deterministic stand-in for the live run.
//
// One harness run exercises the whole record/replay loop:
//  * LIVE arm -- the soak scenario (flaky transport, standard outage
//    script) supervised as usual, with a RecordingTransport tap writing
//    every delivered report + its delivery time to a capture file through
//    the crash-safe writer;
//  * REPLAY arm -- the capture is decoded and a ReplayTransport drives an
//    identical supervisor at 1x; the fix should match the live arm (the
//    capture preserves delivery timing, so the ingest path sees the same
//    bursts and gaps at the same ticks);
//  * DETERMINISM gate -- the replay arm runs twice; the two fix digests
//    must be bit-identical (FNV-1a over the raw double bits, no epsilon);
//  * CORRUPTION pass -- a seeded 1%-of-chunks bit-flip pass over the
//    capture image, decoded tolerantly; recovery rate = reports recovered /
//    reports in the intact file (gate: >= 99%), and the recovered stream
//    must still produce a fix;
//  * THROUGHPUT -- decode + re-encode + drain the whole capture as fast as
//    possible, reports per host second;
//  * FLEET load generation -- the one capture fans out through N
//    per-session ReplayTransports at `fleetSpeed`x into a FleetManager,
//    measuring ingest throughput and eventual fix rate at fleet scale
//    without any live reader.
#pragma once

#include <cstdint>
#include <string>

#include "capture/format.hpp"
#include "runtime/supervisor.hpp"
#include "sim/scenario.hpp"

namespace tagspin::eval {

struct ReplayEvalConfig {
  sim::ScenarioConfig scenario;
  sim::Region region;
  int rigCount = 3;
  /// Capture length in rig revolutions.
  double revolutions = 10.0;
  double tickS = 0.05;
  double settleS = 2.0;

  runtime::SupervisorConfig supervisor = defaultSupervisorConfig();
  double connectDelayS = 0.05;

  /// Capture file path ("" -> "replay_capture.tspc" in the CWD).
  std::string capturePath;
  /// Small chunks keep the corruption blast radius well under 1% of the
  /// stream (the recovery gate has margin by construction).
  size_t chunkReports = 16;

  /// Fraction of chunks hit by the seeded bit-flip pass (floor of
  /// fraction * chunks, at least 1).
  double corruptFraction = 0.01;

  /// Fleet load-generation phase (0 sessions disables).
  size_t fleetSessions = 64;
  size_t fleetShards = 4;
  double fleetSpeed = 8.0;
  double fleetTickS = 0.1;

  uint64_t seed = 0x9E9417ULL;

  static runtime::SupervisorConfig defaultSupervisorConfig();
};

/// One replay run of the capture through a supervised session.
struct ReplayArmResult {
  bool ok = false;
  double errorCm = 0.0;
  double positionX = 0.0;
  double positionY = 0.0;
  uint64_t fixDigest = 0;
  std::string grade;
  std::string failure;
  uint64_t reportsIngested = 0;
};

struct ReplayEvalResult {
  // Live (recorded) arm.
  bool liveOk = false;
  double liveErrorCm = 0.0;
  double livePositionX = 0.0;
  double livePositionY = 0.0;
  uint64_t liveFixDigest = 0;
  std::string liveGrade;
  uint64_t liveReportsIngested = 0;

  // Capture accounting.
  size_t reportsCaptured = 0;
  size_t chunksCaptured = 0;
  uint64_t captureBytes = 0;
  /// Strict and tolerant decodes of the intact file agree byte-for-byte.
  bool captureIntact = false;
  /// Capture bytes per report (compression vs the 40-byte LLRP frame).
  double bytesPerReport = 0.0;

  // Replay parity + determinism.
  ReplayArmResult replay1;
  ReplayArmResult replay2;
  bool replayDeterministic = false;  // replay1.fixDigest == replay2.fixDigest
  /// |replay - live| position delta, cm (0 when both fixes are present and
  /// the ingest paths matched exactly).
  double fixParityCm = -1.0;
  bool fixParityExact = false;  // live and replay digests bit-identical

  // Throughput: decode capture + re-encode + drain + wire-decode, all-out.
  double replayWallS = 0.0;
  double replayThroughputRps = 0.0;

  // Corruption pass.
  size_t chunksCorrupted = 0;
  capture::CaptureStats corruptStats;
  double recoveryRate = 0.0;
  ReplayArmResult corruptReplay;

  // Fleet load generation.
  size_t fleetSessions = 0;
  size_t fleetShards = 0;
  size_t fleetSessionsWithFix = 0;
  double fleetFixRate = 0.0;
  uint64_t fleetReportsIngested = 0;
  double fleetWallS = 0.0;
  double fleetThroughputRps = 0.0;
};

ReplayEvalResult runReplayEval(const ReplayEvalConfig& config);

/// Full result as JSON (the BENCH_replay.json payload).
std::string replayJson(const ReplayEvalResult& result);

}  // namespace tagspin::eval
