// Adversarial-environment benchmark: ghost readers, strong reflectors and
// interferer clutter versus the robust estimation stack.
//
// The chaos harness (eval/chaos.hpp) attacks the *wire* -- bit flips,
// truncation, duplicates.  This harness attacks the *physics*: a fraction
// of a rig's reports are replaced by reads of the same spinning tag taken
// from a ghost reader position (the signature of a strong specular
// reflector or a second co-channel reader), which makes that rig's angle
// spectrum bimodal with the WRONG peak dominant.  Plain least squares
// follows the dominant peak; the consensus path must out-vote it using the
// other rigs, the spin self-diagnosis must flag the spectrum, and the
// bootstrap ellipse must still cover the truth at its stated confidence.
//
// Every trial is paired: the identical corrupted stream is fed to a
// baseline server (diagnostics/consensus/bootstrap off -- the pre-robust
// estimator) and to the robust server, so the error ratio isolates the
// estimator instead of re-rolling the corruption.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/quality.hpp"
#include "sim/scenario.hpp"

namespace tagspin::eval {

/// One sweep point: how many of the rigs are ghost-corrupted, how much of
/// each corrupted rig's stream the ghost captures (reflector strength),
/// and how much scatterer clutter surrounds the scene (interferer count).
struct AdversarialCase {
  int corruptedRigs = 0;
  double ghostFraction = 0.6;
  int scattererCount = 3;
};

struct AdversarialConfig {
  sim::ScenarioConfig scenario;
  sim::Region region;
  /// Four rigs: the smallest deployment where consensus can out-vote one
  /// corrupted bearing with a strict majority and still tolerate noise.
  int rigCount = 4;
  int trialsPerPoint = 30;
  double durationS = 15.0;
  std::vector<AdversarialCase> cases;  // empty -> defaultCases()
  core::RigHealthThresholds health;
  /// Baseline: the robust stack switched off (plain least squares).
  core::LocatorConfig baseline;
  /// Robust: diagnostics + consensus + bootstrap ellipse.
  core::LocatorConfig robust;
  uint64_t seed = 0xAD5E;

  /// Corrupted-count sweep {0,1,2} at the default ghost strength, plus a
  /// reflector-strength axis and an interferer-count axis at 1 corrupted.
  static std::vector<AdversarialCase> defaultCases();
  static core::LocatorConfig defaultBaseline();
  static core::LocatorConfig defaultRobust();
};

struct AdversarialPoint {
  AdversarialCase which;
  int trials = 0;
  int baselineFixes = 0;
  int robustFixes = 0;
  double baselineMedianCm = 0.0;
  double baselineP90Cm = 0.0;
  double robustMedianCm = 0.0;
  double robustP90Cm = 0.0;
  /// Mean consensus inlier fraction over successful robust fixes.
  double meanInlierFraction = 0.0;
  /// Spin verdicts summed over the point's robust attempts (all offered
  /// rigs, used and dropped).
  uint64_t suspectSpins = 0;
  uint64_t quarantinedSpins = 0;
  /// Bootstrap ellipse calibration: of the robust fixes that produced an
  /// ellipse, how many contained the true position.
  int ellipseTrials = 0;
  int ellipseCovered = 0;
  double meanEllipseAreaCm2 = 0.0;
  /// Raw per-trial errors (cm) of the successful fixes -- the CDF data.
  std::vector<double> baselineErrorsCm;
  std::vector<double> robustErrorsCm;
  std::map<std::string, int> robustFailures;
};

struct AdversarialResult {
  std::vector<AdversarialPoint> points;
};

AdversarialResult runAdversarialSweep(const AdversarialConfig& config);

/// Summary table (one row per case) / full result as JSON.
std::string adversarialCsv(const AdversarialResult& result);
std::string adversarialJson(const AdversarialResult& result);
/// Long-form CDF rows: case, estimator, error_cm, cdf -- plottable as the
/// paired error CDFs directly.
std::string adversarialCdfCsv(const AdversarialResult& result);

}  // namespace tagspin::eval
