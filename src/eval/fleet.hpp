// Fleet harness: drives FleetManager with hundreds of flaky sessions and
// measures the fault-isolation claim end to end.
//
// Two paired arms on the exact same pre-encoded stream and seeds:
//  * the ISOLATED BASELINE -- every session healthy, no scripted faults;
//  * the CHAOS arm -- a correlated outage drops outageFraction of the
//    fleet simultaneously mid-run, plus a tail of persistent flappers for
//    the quarantine ring to eat.
//
// The claim under test: while the outage cohort is down and recovering,
// the *healthy* sessions' fix latency (serviced-at minus due-at, in
// simulated seconds -- deterministic, CPU-independent) stays within a small
// factor of the baseline arm's latency over the same window.  The harness
// also tracks the recovery storm's pacing (how the cohort's return is
// spread by the shard retry budgets instead of thundering back at once)
// and the fleet's eventual fix rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/fleet.hpp"
#include "sim/fleet_scenario.hpp"
#include "sim/scenario.hpp"

namespace tagspin::eval {

struct FleetEvalConfig {
  sim::ScenarioConfig scenario;
  int rigCount = 2;
  /// Capture length in rig revolutions.
  double revolutions = 3.0;
  double tickS = 0.1;
  /// Run-out after the stream ends (lets quarantine probes and late fixes
  /// land).
  double settleS = 8.0;

  size_t sessions = 512;
  size_t shards = 8;
  size_t workerThreads = 0;
  double connectDelayS = 0.05;

  /// Cohort fractions and cadences; spanS / revolutionPeriodS / outage
  /// timing are filled in by the harness from the capture geometry.
  sim::FleetScenarioConfig chaos;

  /// Checkpoint directory for the chaos arm ("" disables persistence).
  std::string checkpointDir;

  uint64_t seed = 0xF1EE7ULL;

  runtime::FleetConfig fleet = defaultFleetConfig();

  static runtime::FleetConfig defaultFleetConfig();
};

/// One arm's measurements.
struct FleetArmResult {
  /// Fix latencies (serviced - due, seconds) of HEALTHY-role sessions whose
  /// service time fell inside the outage window.
  std::vector<double> healthyWindowLatenciesS;
  double fixRate = 0.0;       // sessions with >= 1 successful fix at the end
  size_t sessionsWithFix = 0;
  double wallSeconds = 0.0;   // host time for the arm's tick loop
  uint64_t supervisorTicks = 0;

  // Recovery-storm pacing (chaos arm only): outage-cohort sessions back in
  // STREAMING after the outage window closed.
  size_t outageCohort = 0;
  size_t recovered = 0;
  double firstRecoveryS = -1.0;  // after outage end
  double lastRecoveryS = -1.0;
  double recoverySpreadS = 0.0;

  runtime::FleetStats stats;
};

struct FleetEvalResult {
  size_t sessions = 0;
  size_t shards = 0;
  double spanS = 0.0;
  double outageStartS = 0.0;
  double outageEndS = 0.0;

  FleetArmResult baseline;
  FleetArmResult chaos;

  double baselineP50S = 0.0;
  double baselineP99S = 0.0;
  double chaosP50S = 0.0;
  double chaosP99S = 0.0;
  /// chaosP99 / baselineP99 -- the isolation claim wants this <= 2.
  double isolationRatio = 0.0;
  /// Supervisor ticks serviced per host second in the chaos arm.
  double sessionTicksPerSec = 0.0;
};

FleetEvalResult runFleetEval(const FleetEvalConfig& config);

/// Machine-readable trajectory record (the BENCH_fleet.json payload).
std::string fleetJson(const FleetEvalResult& result);

}  // namespace tagspin::eval
