// Plain-text reporting shared by the bench binaries: headed sections,
// summary tables, CDF listings and ASCII plots of profiles/series, so every
// figure and table of the paper has a directly readable counterpart.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dsp/stats.hpp"
#include "eval/metrics.hpp"

namespace tagspin::eval {

void printHeading(const std::string& title);
void printSubheading(const std::string& title);

/// "name  mean  std  median  p90  min  max  n" row (values in cm).
void printSummaryRow(const std::string& name, const dsp::Summary& s);
void printSummaryHeader();

/// Print a CDF as rows "value_cm  P(err <= value)" at `points` quantiles.
void printCdf(const std::string& name, std::span<const double> values,
              int points = 10);

/// Per-axis + combined summary of a batch of errors (the Fig. 10 layout).
void printErrorBreakdown(const std::string& name,
                         std::span<const ErrorCm> errors);

/// x/y series as aligned columns.
void printSeries(const std::string& xLabel, const std::string& yLabel,
                 std::span<const std::pair<double, double>> series);

/// ASCII rendering of a profile sampled on [0, 360) degrees -- the textual
/// stand-in for the paper's polar plots (Fig. 1, 6).
void printProfileAscii(const std::string& name,
                       std::span<const double> profile, int rows = 12);

/// Output directory for bench artifacts: consume a leading "--out=DIR"
/// argument from `args` (erasing it) and return DIR, or `fallback` when no
/// flag is present.  The directory is created (recursively) either way, so
/// figure binaries stop littering the CWD.
std::string consumeOutDir(std::vector<std::string>& args,
                          const std::string& fallback = "bench/out");

/// dir + "/" + name with the directory created; the one place bench file
/// paths are assembled.
std::string outputPath(const std::string& dir, const std::string& name);

}  // namespace tagspin::eval
