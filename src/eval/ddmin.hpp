// Generic delta-debugging (ddmin) minimizer.
//
// Both fault-injection harnesses end the same way: search finds a failing
// schedule of injected faults, and the bug report wants the *minimal* one.
// The algorithm does not care whether the elements are I/O faults
// (eval/crash) or memory faults (eval/oom), so it lives here once:
// classic ddmin over a vector -- try each chunk alone (aggressive
// reduction first), then each complement, doubling granularity when
// nothing shrinks.  The result is 1-minimal at the final granularity:
// removing any single chunk makes the predicate pass.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace tagspin::eval {

/// Minimize `sequence` while `fails` keeps returning true.  `fails` must be
/// deterministic and `sequence` itself is assumed failing.  Elements only
/// need to be copyable.
template <typename T, typename FailsFn>
std::vector<T> ddminShrink(const std::vector<T>& sequence,
                           const FailsFn& fails) {
  std::vector<T> cur = sequence;
  size_t n = 2;
  while (cur.size() >= 2) {
    const size_t chunk = (cur.size() + n - 1) / n;
    bool reduced = false;
    // Try each chunk alone (aggressive reduction first)...
    for (size_t i = 0; i < cur.size() && !reduced; i += chunk) {
      std::vector<T> subset(cur.begin() + i,
                            cur.begin() + std::min(i + chunk, cur.size()));
      if (subset.size() < cur.size() && fails(subset)) {
        cur = std::move(subset);
        n = 2;
        reduced = true;
      }
    }
    // ...then each complement (drop one chunk).
    for (size_t i = 0; i < cur.size() && !reduced; i += chunk) {
      std::vector<T> complement(cur.begin(), cur.begin() + i);
      complement.insert(complement.end(),
                        cur.begin() + std::min(i + chunk, cur.size()),
                        cur.end());
      if (!complement.empty() && complement.size() < cur.size() &&
          fails(complement)) {
        cur = std::move(complement);
        n = std::max<size_t>(n - 1, 2);
        reduced = true;
      }
    }
    if (!reduced) {
      if (n >= cur.size()) break;
      n = std::min(n * 2, cur.size());
    }
  }
  return cur;
}

}  // namespace tagspin::eval
