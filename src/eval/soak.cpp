#include "eval/soak.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <numbers>
#include <sstream>

#include "eval/estimators.hpp"
#include "eval/metrics.hpp"
#include "core/tagspin.hpp"
#include "sim/rng.hpp"

namespace tagspin::eval {
namespace {

size_t totalSnapshots(const runtime::Supervisor& sup) {
  size_t n = 0;
  for (const auto& [epc, rig] : sup.deployment().rigs) {
    n += sup.tagSnapshotCount(epc);
  }
  return n;
}

}  // namespace

runtime::SupervisorConfig SoakConfig::defaultSupervisorConfig() {
  runtime::SupervisorConfig sup;
  // A flood flushes a couple of revolutions of stream into a single poll;
  // keep the queue small enough that the backpressure policy actually
  // engages under the standard script.
  sup.session.queueCapacity = 2048;
  sup.session.backpressure = runtime::BackpressurePolicy::kDropOldest;
  return sup;
}

SoakResult runSoak(const SoakConfig& config) {
  SoakResult result;

  // All runtime accounting flows through one registry that outlives every
  // session/supervisor the run creates (including the kill/restore), so
  // the counters below are lifetime totals by construction -- no
  // reset-folding needed.
  obs::MetricsRegistry localRegistry;
  obs::EventJournal localJournal;
  obs::MetricsRegistry* reg = config.metrics ? config.metrics : &localRegistry;
  obs::EventJournal* journal =
      config.journal ? config.journal : &localJournal;
  runtime::SupervisorConfig supCfg = config.supervisor;
  if (!supCfg.metrics) supCfg.metrics = reg;
  if (!supCfg.journal) supCfg.journal = journal;

  const double period =
      2.0 * std::numbers::pi / config.scenario.rigOmegaRadPerS;
  const double durationS = config.revolutions * period;
  const double endS = durationS + config.settleS;

  sim::World world = sim::makeRigRowWorld(config.scenario, config.rigCount);
  auto rng = sim::makeRng(sim::deriveSeed(config.seed, 1));
  const geom::Vec3 truth = config.region.sample(rng, false);
  sim::placeReaderAntenna(world, 0, truth);

  // One interrogation drives both arms: the flaky transport serves the
  // encoded stream through the outage script, and the exact same clean
  // reports feed the uninterrupted baseline.
  sim::FlakyTransportConfig tc;
  tc.interrogate = {durationS, 0, sim::deriveSeed(config.seed, 2)};
  tc.connectDelayS = config.connectDelayS;
  tc.seed = sim::deriveSeed(config.seed, 3);
  tc.events = config.events.empty()
                  ? sim::standardOutageScript(durationS, period,
                                              sim::deriveSeed(config.seed, 4))
                  : config.events;
  auto shared = std::make_shared<sim::FlakyTransport>(world, tc);
  result.cleanReports = shared->cleanReports().size();

  {
    core::TagspinSystem server = buildTagspinServer(
        world, {}, config.supervisor.locator);
    server.setHealthThresholds(config.supervisor.health);
    server.setPreprocessConfig(config.supervisor.preprocess);
    const auto base = server.tryLocate2D(shared->cleanReports());
    result.baselineOk = base.hasValue();
    if (base.hasValue()) {
      result.baselineErrorCm =
          errorCm(base->fix.position, {truth.x, truth.y}).combined;
    }
  }

  core::DeploymentFile deployment;
  for (const sim::RigTag& rt : world.rigs) {
    core::RigSpec spec;
    spec.center = rt.rig.center;
    spec.kinematics = {rt.rig.radiusM, rt.rig.omegaRadPerS,
                       rt.rig.initialAngle, rt.rig.tagPlaneOffset};
    deployment.rigs[rt.tag.epc] = spec;
  }

  const std::string ckptPath = config.checkpointPath.empty()
                                   ? "soak_checkpoint.ckpt"
                                   : config.checkpointPath;
  std::remove(ckptPath.c_str());
  std::remove((ckptPath + ".tmp").c_str());
  runtime::CheckpointStore store(ckptPath);

  const runtime::TransportFactory factory = [shared] {
    return std::make_unique<runtime::SharedTransport>(shared);
  };
  auto sup = std::make_unique<runtime::Supervisor>(supCfg, deployment, &store);
  sup->addSession("reader0", factory);

  // Recovery tracking: an outage "recovers" when a report is ingested
  // after the event window closes.  Floods never pause ingest, so only
  // disconnects and stalls are tracked.
  struct Tracker {
    OutageRecovery rec;
    uint64_t ingestedAtStart = 0;
    bool started = false;
  };
  std::vector<Tracker> trackers;
  for (const sim::OutageEvent& ev : tc.events) {
    if (ev.kind == sim::OutageEvent::Kind::kFlood) continue;
    Tracker t;
    t.rec.event = ev;
    trackers.push_back(t);
  }

  // Registry handles read during the run (registration is idempotent, so
  // resolving before the first increment is fine -- they start at zero).
  obs::Counter* ingestedC = reg->counter("supervisor.reports_ingested");
  obs::Counter* dupC = reg->counter("supervisor.duplicates_suppressed");

  const double killAtS = config.killAtFraction > 0.0
                             ? config.killAtFraction * durationS
                             : -1.0;
  double ckptReaderTs = 0.0;
  uint64_t dupAtRestart = 0;
  bool killDone = false;

  for (double t = 0.0; t <= endS + 1e-9; t += config.tickS) {
    if (!killDone && killAtS > 0.0 && t >= killAtS) {
      killDone = true;
      result.killed = true;
      result.killAtS = t;
      result.snapshotsAtKill = totalSnapshots(*sup);
      // kill -9: the supervisor object dies without shutdown(); whatever
      // the last periodic checkpoint captured is all that survives.  The
      // reader sees the TCP connection reset.
      sup.reset();
      shared->close();
      sup = std::make_unique<runtime::Supervisor>(supCfg, deployment, &store);
      const auto restored = sup->restore();
      result.restoreOk = restored.hasValue();
      if (restored.hasValue()) {
        result.checkpointAgeAtKillS = t - restored->wallTimeS;
        ckptReaderTs = restored->lastReportTimestampS;
      }
      result.snapshotsRestored = totalSnapshots(*sup);
      sup->addSession("reader0", factory);
      dupAtRestart = dupC->value();
    }

    sup->tick(t);

    const uint64_t cumIngested = ingestedC->value();
    for (Tracker& tr : trackers) {
      if (!tr.started && t >= tr.rec.event.atS) {
        tr.started = true;
        tr.ingestedAtStart = cumIngested;
      }
      const double eventEnd = tr.rec.event.atS + tr.rec.event.durationS;
      if (tr.started && !tr.rec.recovered && t > eventEnd &&
          cumIngested > tr.ingestedAtStart) {
        tr.rec.recovered = true;
        tr.rec.recoveredAtS = t;
        tr.rec.timeToRecoverS = t - eventEnd;
      }
    }
  }

  sup->shutdown(endS);

  const auto fix = sup->tryLocate2D();
  result.soakOk = fix.hasValue();
  if (fix.hasValue()) {
    result.soakErrorCm =
        errorCm(fix->fix.position, {truth.x, truth.y}).combined;
    result.soakGrade = core::fixGradeName(fix->report.grade);
  } else {
    result.soakFailure = core::errorCodeName(fix.code());
  }
  if (result.baselineOk && result.soakOk && result.baselineErrorCm > 1e-12) {
    result.errorRatio = result.soakErrorCm / result.baselineErrorCm;
  }

  result.allRecovered = !trackers.empty();
  double sumRecover = 0.0;
  for (const Tracker& tr : trackers) {
    result.recoveries.push_back(tr.rec);
    if (!tr.rec.recovered) result.allRecovered = false;
    if (tr.rec.recovered) {
      sumRecover += tr.rec.timeToRecoverS;
      result.maxTimeToRecoverS =
          std::max(result.maxTimeToRecoverS, tr.rec.timeToRecoverS);
    }
  }
  if (!trackers.empty()) {
    result.meanTimeToRecoverS = sumRecover / double(trackers.size());
  }

  // Everything below reads the registry: one source of truth for the whole
  // run, exactly what a scraped deployment would see.
  result.telemetry = reg->snapshot();
  result.telemetryJson = obs::toJson(result.telemetry, journal);
  result.telemetryPrometheus = obs::toPrometheus(result.telemetry);
  const obs::MetricsSnapshot& snap = result.telemetry;

  result.reportsSeen = snap.counterValue("supervisor.reports_seen");
  result.reportsIngested = snap.counterValue("supervisor.reports_ingested");
  result.framesLostWhileDown = shared->stats().framesLostWhileDown;
  if (result.cleanReports > 0) {
    result.reportLossFraction =
        1.0 - double(result.reportsSeen) / double(result.cleanReports);
  }

  if (result.killed && result.cleanReports > 0) {
    // The transport never replays delivered frames, so re-acquired spin
    // shows up as checkpoint-dedup suppressions after the restart.  Convert
    // that to revolutions via the stream's mean report density.
    const double reportsPerRev =
        double(result.cleanReports) / config.revolutions;
    result.revolutionsReacquired =
        double(snap.counterValue("supervisor.duplicates_suppressed") -
               dupAtRestart) /
        reportsPerRev;
    (void)ckptReaderTs;
  }

  result.checkpointsSaved = snap.counterValue("checkpoint.saves");
  result.sessionsRestarted = snap.counterValue("supervisor.sessions_restarted");
  result.sessionDisconnects = snap.counterValue("session.disconnects");
  result.watchdogNoReport = snap.counterValue("session.watchdog_no_report");
  result.watchdogStuckClock =
      snap.counterValue("session.watchdog_stuck_clock");
  result.duplicatesSuppressed =
      snap.counterValue("supervisor.duplicates_suppressed");
  result.queue.offered = snap.counterValue("queue.offered");
  result.queue.accepted = snap.counterValue("queue.accepted");
  result.queue.refusedFull = snap.counterValue("queue.refused_full");
  result.queue.droppedOldest = snap.counterValue("queue.dropped_oldest");
  result.queue.droppedSampled = snap.counterValue("queue.dropped_sampled");
  result.queue.maxDepth =
      static_cast<size_t>(snap.gaugeValue("queue.max_depth"));
  return result;
}

std::string soakCsv(const SoakResult& result) {
  std::ostringstream out;
  out << "event,at_s,duration_s,recovered,time_to_recover_s\n";
  for (const OutageRecovery& r : result.recoveries) {
    char line[160];
    std::snprintf(line, sizeof(line), "%s,%.3f,%.3f,%d,%.3f\n",
                  sim::outageKindName(r.event.kind), r.event.atS,
                  r.event.durationS, r.recovered ? 1 : 0, r.timeToRecoverS);
    out << line;
  }
  return out.str();
}

std::string soakJson(const SoakResult& result) {
  std::ostringstream out;
  out << "{\n";
  const auto num = [&](const char* key, double v, bool comma = true) {
    char line[128];
    std::snprintf(line, sizeof(line), "  \"%s\": %.6g%s\n", key, v,
                  comma ? "," : "");
    out << line;
  };
  const auto boolean = [&](const char* key, bool v) {
    out << "  \"" << key << "\": " << (v ? "true" : "false") << ",\n";
  };
  boolean("baseline_ok", result.baselineOk);
  boolean("soak_ok", result.soakOk);
  num("baseline_error_cm", result.baselineErrorCm);
  num("soak_error_cm", result.soakErrorCm);
  num("error_ratio", result.errorRatio);
  out << "  \"soak_grade\": \"" << result.soakGrade << "\",\n";
  out << "  \"soak_failure\": \"" << result.soakFailure << "\",\n";
  boolean("all_recovered", result.allRecovered);
  num("outages_tracked", double(result.recoveries.size()));
  num("max_time_to_recover_s", result.maxTimeToRecoverS);
  num("mean_time_to_recover_s", result.meanTimeToRecoverS);
  num("clean_reports", double(result.cleanReports));
  num("reports_seen", double(result.reportsSeen));
  num("reports_ingested", double(result.reportsIngested));
  num("frames_lost_while_down", double(result.framesLostWhileDown));
  num("report_loss_fraction", result.reportLossFraction);
  boolean("killed", result.killed);
  boolean("restore_ok", result.restoreOk);
  num("kill_at_s", result.killAtS);
  num("snapshots_at_kill", double(result.snapshotsAtKill));
  num("snapshots_restored", double(result.snapshotsRestored));
  num("checkpoint_age_at_kill_s", result.checkpointAgeAtKillS);
  num("revolutions_reacquired", result.revolutionsReacquired);
  num("checkpoints_saved", double(result.checkpointsSaved));
  num("sessions_restarted", double(result.sessionsRestarted));
  num("session_disconnects", double(result.sessionDisconnects));
  num("watchdog_no_report", double(result.watchdogNoReport));
  num("watchdog_stuck_clock", double(result.watchdogStuckClock));
  num("duplicates_suppressed", double(result.duplicatesSuppressed));
  num("queue_refused_full", double(result.queue.refusedFull));
  num("queue_dropped_oldest", double(result.queue.droppedOldest));
  num("queue_dropped_sampled", double(result.queue.droppedSampled));
  num("queue_max_depth", double(result.queue.maxDepth), false);
  out << "}\n";
  return out.str();
}

}  // namespace tagspin::eval
