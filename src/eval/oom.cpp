#include "eval/oom.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <numbers>
#include <optional>
#include <sstream>

#include "capture/digest.hpp"
#include "capture/replay.hpp"
#include "capture/writer.hpp"
#include "eval/ddmin.hpp"
#include "rfid/llrp.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/fleet.hpp"
#include "sim/fleet_scenario.hpp"
#include "sim/io_sim.hpp"
#include "sim/rng.hpp"
#include "sim/scenario.hpp"
#include "track/tracker.hpp"

namespace tagspin::eval {
namespace {

constexpr const char* kCheckpointDir = "ckpt";
constexpr const char* kCapturePath = "oom.tspc";

std::string sessionName(size_t index) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "m%04zu", index);
  return buf;
}

// ---------------------------------------------------------------------------
// Workloads.  One instance = one execution: run() drives the real
// components against the injected memory environment -- constructing and
// destroying everything inside, so the explorer's post-run leak check
// (env.usedBytes() == 0) covers teardown too.  Each workload disarms the
// injector and clears pressure before its recovery phase, the window the
// "full recovery after pressure clears" invariants are measured over.

class MemWorkloadRun {
 public:
  virtual ~MemWorkloadRun() = default;
  virtual void run(sim::SimMemEnv& env) = 0;
  /// Workload-specific invariants on the completed run; `env` is the
  /// post-teardown environment.
  virtual std::optional<std::string> check(
      const sim::SimMemEnv& env) const = 0;
  /// Deterministic digest of the run's outcome (the parity gate compares
  /// these bit-for-bit between accounting-off and accounting-on runs).
  virtual uint64_t digest() const { return 0; }
};

using MemWorkloadFactory = std::function<std::unique_ptr<MemWorkloadRun>()>;

// ---------------------------------------------------------------------------
// Fleet fixture: interrogate + encode exactly once; every fleet run in
// every arm shares the stream and deployment (the runs differ only in
// injection, outage scripts, and budgets).

struct FleetFixture {
  std::shared_ptr<const sim::SharedStream> stream;
  core::DeploymentFile deployment;
  double spanS = 0.0;
  double endS = 0.0;
  sim::FleetScenarioConfig storm;
};

FleetFixture makeFleetFixture(const OomExploreConfig& config) {
  FleetFixture fx;

  sim::ScenarioConfig scenario;
  scenario.seed = static_cast<uint32_t>(config.seed % 1000003);
  scenario.fixedChannel = true;

  const double period = 2.0 * std::numbers::pi / scenario.rigOmegaRadPerS;
  fx.spanS = config.fleetRevolutions * period;
  fx.endS = fx.spanS + config.settleS;

  // Connect storm: most of the fleet drops at the same instant mid-span
  // and reconnects together, with a flapper tail for the quarantine ring.
  fx.storm.spanS = fx.spanS;
  fx.storm.revolutionPeriodS = period;
  fx.storm.outageFraction = 0.6;
  fx.storm.outageAtS = 0.4 * fx.spanS;
  fx.storm.outageDurationS = std::min(3.0, 0.3 * fx.spanS);
  fx.storm.flapFraction = 0.2;
  fx.storm.seed = sim::deriveSeed(config.seed, 7);

  sim::World world = sim::makeRigRowWorld(scenario, 2);
  auto rng = sim::makeRng(sim::deriveSeed(config.seed, 1));
  sim::Region region;
  const geom::Vec3 truth = region.sample(rng, false);
  sim::placeReaderAntenna(world, 0, truth);

  fx.stream = sim::makeSharedStream(
      world, {fx.spanS, 0, sim::deriveSeed(config.seed, 2)});

  for (const sim::RigTag& rt : world.rigs) {
    core::RigSpec spec;
    spec.center = rt.rig.center;
    spec.kinematics = {rt.rig.radiusM, rt.rig.omegaRadPerS,
                       rt.rig.initialAngle, rt.rig.tagPlaneOffset};
    fx.deployment.rigs[rt.tag.epc] = spec;
  }
  return fx;
}

/// Fleet template shared by the fleet-driven workloads: the fleet-scale
/// locator economy of eval/fleet, trimmed further -- this harness measures
/// memory behavior, not localization accuracy, so fixes only need to
/// succeed, cheaply.
runtime::FleetConfig baseFleetConfig() {
  runtime::FleetConfig fc;
  fc.supervisor.session.queueCapacity = 1024;
  fc.supervisor.session.backpressure = runtime::BackpressurePolicy::kDropOldest;
  fc.supervisor.maxSnapshotsPerTag = 250;
  fc.supervisor.checkpointSpectrumPoints = 0;
  fc.supervisor.locator.search.azimuthGridPoints = 144;
  fc.supervisor.locator.search.refineRounds = 3;
  fc.supervisor.locator.orientationIterations = 1;
  fc.supervisor.locator.robust.diagnostics = false;
  fc.supervisor.locator.robust.consensus = false;
  fc.fixIntervalS = 5.0;
  fc.fixRetryS = 1.0;
  fc.retryBudget.tokensPerSecond = 4.0;
  fc.retryBudget.burst = 8.0;
  return fc;
}

enum class FleetMode { kSteady, kConnectStorm, kCheckpointSave };

/// The three fleet-driven workloads in one body: steady state (injection
/// lands on the per-session accounting path), connect storm (injection
/// lands while reconnect work and flap tracking churn the footprints),
/// and checkpoint save (SimIoEnv-backed shard checkpoints whose framed
/// image is reserved before every write).
class FleetMemWorkload final : public MemWorkloadRun {
 public:
  FleetMemWorkload(const OomExploreConfig& config, const FleetFixture& fx,
                   FleetMode mode, bool attachMem,
                   uint64_t shardBudgetBytes = 0)
      : config_(config),
        fx_(fx),
        mode_(mode),
        attachMem_(attachMem),
        shardBudget_(shardBudgetBytes) {}

  void run(sim::SimMemEnv& env) override {
    runtime::FleetConfig fc = baseFleetConfig();
    fc.shards = config_.fleetShards;
    fc.maxSessions = config_.fleetSessions;
    fc.workerThreads = 0;  // deterministic reservation indices
    if (attachMem_) {
      fc.mem = &env;
      fc.memBudgetPerShardBytes = shardBudget_;
    }
    if (mode_ == FleetMode::kCheckpointSave) {
      fc.checkpointDir = kCheckpointDir;
      fc.io = &io_;
      fc.checkpointIntervalS = 2.0;
      fc.maxCheckpointWritesPerTick = 2;
    }

    capture::Fnv1a digest;
    fc.onFix = [&digest](const runtime::FleetFixEvent& ev) {
      digest.bytes(ev.name.data(), ev.name.size());
      digest.u64(ev.shard);
      digest.f64(ev.dueS);
      digest.f64(ev.nowS);
      digest.u64(ev.ok ? 1 : 0);
    };

    runtime::FleetManager fleet(fc, fx_.deployment);
    for (size_t i = 0; i < config_.fleetSessions; ++i) {
      sim::FlakyTransportConfig tc;
      tc.connectDelayS = 0.05;
      tc.seed = sim::deriveSeed(config_.seed, 100 + i);
      if (mode_ == FleetMode::kConnectStorm) {
        tc.events =
            sim::fleetOutageScript(fx_.storm, i, config_.fleetSessions);
      }
      fleet.registerSession(sessionName(i),
                            [stream = fx_.stream, tc] {
                              return std::make_unique<sim::FlakyTransport>(
                                  stream, tc);
                            });
    }
    registered_ = fleet.sessionCount();

    for (double t = 0.0; t <= fx_.endS + 1e-9; t += config_.tickS) {
      fleet.tick(t);
    }

    // Pressure clears: disarm the injector and run the recovery window.
    env.setFailAt(-1);
    env.setFaults({});
    env.clearPressure();
    denialsAtClear_ = env.denials();
    const double recoverEndS = fx_.endS + config_.recoverS;
    for (double t = fx_.endS + config_.tickS; t <= recoverEndS + 1e-9;
         t += config_.tickS) {
      fleet.tick(t);
    }
    fleet.shutdown(recoverEndS);
    denialsAfterRecover_ = env.denials();

    stats_ = fleet.stats();
    const auto views = fleet.sessions();
    sessionsAtEnd_ = views.size();
    for (const auto& v : views) {
      if (v.hasFix) ++withFix_;
      digest.bytes(v.name.data(), v.name.size());
      digest.u64(v.fixes);
      digest.u64(v.hasFix ? 1 : 0);
    }
    digest_ = digest.value();

    if (mode_ == FleetMode::kCheckpointSave) {
      // shutdown() just wrote a final checkpoint for every shard with the
      // injector disarmed: every file must exist and unframe cleanly.
      finalCheckpointsOk_ = true;
      const sim::DiskImage image = io_.liveImage();
      for (size_t k = 0; k < config_.fleetShards; ++k) {
        const std::string path = std::string(kCheckpointDir) +
                                 "/fleet_shard" + std::to_string(k) +
                                 ".ckpt";
        const auto it = image.find(path);
        if (it == image.end() ||
            !runtime::CheckpointStore::unframe(it->second).hasValue()) {
          finalCheckpointsOk_ = false;
        }
      }
    }
  }

  std::optional<std::string> check(const sim::SimMemEnv& env) const override {
    if (registered_ != config_.fleetSessions) {
      return "only " + std::to_string(registered_) + " of " +
             std::to_string(config_.fleetSessions) + " sessions admitted";
    }
    if (sessionsAtEnd_ != registered_) {
      return "sessions lost: " + std::to_string(sessionsAtEnd_) + " of " +
             std::to_string(registered_) + " remain registered";
    }
    if (stats_.badAllocCaught != 0) {
      return "bad_alloc reached the fleet worker boundary " +
             std::to_string(stats_.badAllocCaught) + " times";
    }
    // Isolation: every memory quarantine must be attributable to an
    // injected denial -- pressure on one session can never cascade.
    if (stats_.memEjections > env.denials()) {
      return std::to_string(stats_.memEjections) +
             " sessions quarantined for memory with only " +
             std::to_string(env.denials()) + " denials injected";
    }
    if (denialsAfterRecover_ != denialsAtClear_) {
      return "reservations denied after pressure cleared";
    }
    if (mode_ == FleetMode::kCheckpointSave && !finalCheckpointsOk_) {
      return "final shard checkpoints missing or corrupt after recovery";
    }
    // A fault-free (or never-reached-fault) run must behave like the
    // baseline: every session ends holding a fix.
    if (env.denials() == 0 && withFix_ != registered_) {
      return "fault-free run left " +
             std::to_string(registered_ - withFix_) +
             " sessions without a fix";
    }
    return std::nullopt;
  }

  uint64_t digest() const override { return digest_; }

  const runtime::FleetStats& stats() const { return stats_; }
  double fixRate() const {
    return registered_ ? double(withFix_) / double(registered_) : 0.0;
  }

 private:
  const OomExploreConfig& config_;
  const FleetFixture& fx_;
  FleetMode mode_;
  bool attachMem_;
  uint64_t shardBudget_;
  sim::SimIoEnv io_;

  size_t registered_ = 0;
  size_t sessionsAtEnd_ = 0;
  size_t withFix_ = 0;
  uint64_t denialsAtClear_ = 0;
  uint64_t denialsAfterRecover_ = 0;
  bool finalCheckpointsOk_ = true;
  runtime::FleetStats stats_;
  uint64_t digest_ = 0;
};

// ---------------------------------------------------------------------------
// Replay fan-out: N sessions build budgeted replay streams from one
// capture while a budgeted CaptureWriter spills/refuses under the same
// arena.  A denial must cost exactly one stream (kOutOfMemory Result) or
// one report (refusal), never the process.

capture::TimedStream syntheticStream(size_t n) {
  capture::TimedStream out;
  for (size_t i = 0; i < n; ++i) {
    capture::TimedReport tr;
    tr.report.epc = rfid::Epc::forSimulatedTag(static_cast<uint32_t>(i % 3));
    tr.report.timestampS = 0.0025 * static_cast<double>(i);
    tr.report.phaseRad = static_cast<double>((i * 37) % 4096) / 4096.0 *
                         2.0 * std::numbers::pi;
    tr.report.rssiDbm = -60.0 - static_cast<double>(i % 20);
    tr.report.channelIndex = static_cast<int>(i % 16);
    tr.report.frequencyHz = 902.75e6 + 0.5e6 * static_cast<double>(i % 16);
    tr.report.antennaPort = static_cast<int>(i % 4);
    tr.deliveryS = tr.report.timestampS + 0.0008;
    out.push_back(tr);
  }
  return out;
}

class ReplayFanoutWorkload final : public MemWorkloadRun {
 public:
  explicit ReplayFanoutWorkload(const OomExploreConfig& config)
      : config_(config), stream_(syntheticStream(config.replayReports)) {}

  void run(sim::SimMemEnv& env) override {
    core::MemArena arena(&env, 0, "replay.fanout");
    {
      std::vector<std::shared_ptr<const capture::ReplayStream>> streams;
      for (size_t s = 0; s < config_.replaySessions; ++s) {
        auto r = capture::makeReplayStreamBudgeted(stream_, &arena);
        if (r.hasValue()) {
          ++built_;
          if ((*r)->wire.size() !=
              stream_.size() * rfid::llrp::kMessageSize) {
            streamBad_ = true;
          }
          streams.push_back(*r);
        } else {
          ++refused_;
          if (r.error().code != core::ErrorCode::kOutOfMemory) {
            wrongError_ = true;
          }
        }
      }

      // Budgeted capture writer on the same arena: spill-then-refuse.
      sim::SimIoEnv io;
      capture::CaptureWriterConfig wc;
      wc.chunkReports = 8;
      wc.fsyncEveryChunks = 2;
      wc.io = &io;
      wc.arena = &arena;
      capture::CaptureWriter writer(kCapturePath, wc);
      for (const capture::TimedReport& tr : stream_) {
        writer.append(tr.report, tr.deliveryS);
      }
      writer.close();
      writerStats_ = writer.stats();
    }
    // Recovery: with the injector disarmed and pressure cleared, a fresh
    // stream must build (and release on destruction).
    env.setFailAt(-1);
    env.setFaults({});
    env.clearPressure();
    {
      auto r = capture::makeReplayStreamBudgeted(stream_, &arena);
      recovered_ = r.hasValue();
    }
    arenaLeakBytes_ = arena.usedBytes();
  }

  std::optional<std::string> check(const sim::SimMemEnv& env) const override {
    if (built_ + refused_ != config_.replaySessions) {
      return "stream accounting lost a session";
    }
    if (wrongError_) {
      return "a refused stream reported an error other than out_of_memory";
    }
    if (streamBad_) {
      return "a granted stream has a truncated wire image";
    }
    // Isolation: each refusal costs exactly one stream and requires at
    // least one denial.
    if (refused_ > env.denials()) {
      return std::to_string(refused_) + " streams refused with only " +
             std::to_string(env.denials()) + " denials injected";
    }
    if (env.denials() == 0 && refused_ + writerStats_.reportsRefused > 0) {
      return "refusals with no denial injected";
    }
    if (writerStats_.reportsWritten + writerStats_.reportsRefused !=
        stream_.size()) {
      return "writer lost reports: " +
             std::to_string(writerStats_.reportsWritten) + " written + " +
             std::to_string(writerStats_.reportsRefused) + " refused != " +
             std::to_string(stream_.size());
    }
    if (!recovered_) {
      return "stream refused after pressure cleared";
    }
    if (arenaLeakBytes_ != 0) {
      return "arena retained " + std::to_string(arenaLeakBytes_) +
             " bytes after every stream and the writer were torn down";
    }
    return std::nullopt;
  }

 private:
  const OomExploreConfig& config_;
  capture::TimedStream stream_;

  size_t built_ = 0;
  size_t refused_ = 0;
  bool wrongError_ = false;
  bool streamBad_ = false;
  bool recovered_ = false;
  uint64_t arenaLeakBytes_ = 0;
  capture::CaptureWriterStats writerStats_;
};

// ---------------------------------------------------------------------------
// Tracker ghost burst: a confirmed track rides a stream of fixes salted
// with multipath ghosts (gate-rejected) and drop-out gaps (coasting) while
// its bounded history is charged to an injected arena.  Denials may evict
// or refuse history entries -- diagnostics -- but must never move the
// track, drop it, or lose the pinned anchor.

class TrackerGhostBurstWorkload final : public MemWorkloadRun {
 public:
  explicit TrackerGhostBurstWorkload(const OomExploreConfig& config)
      : config_(config) {}

  void run(sim::SimMemEnv& env) override {
    core::MemArena arena(&env, 0, "track.history");
    {
      track::TrackerConfig tc;
      tc.historyLimit = config_.trackerHistoryLimit;
      tc.historyArena = &arena;
      track::Tracker tracker(tc);

      const auto truth = [](double t) {
        return geom::Vec2{0.5 + 0.30 * t, -0.2 + 0.18 * t};
      };
      for (size_t i = 0; i < config_.trackerFixes; ++i) {
        const double t = 0.25 * static_cast<double>(i);
        if (i % 17 == 13) {
          tracker.onGap(t);  // drop-out window: the track coasts
          continue;
        }
        track::TrackMeasurement m;
        m.timeS = t;
        m.position = truth(t);
        if (i % 23 == 7) {
          // Multipath ghost: far off-track, the chi-square gate's job.
          m.position.x += 4.0;
          m.position.y -= 3.0;
        }
        tracker.onMeasurement(m);
      }
      stats_ = tracker.stats();
      state_ = tracker.state();
      hasAnchor_ = tracker.hasAnchor();
      anchorUsedMeasurement_ =
          tracker.hasAnchor() && tracker.anchor().usedMeasurement;
      historySize_ = tracker.history().size();
      memoryBytes_ = tracker.memoryBytes();

      // Recovery: pressure clears, then one more accepted fix must land a
      // history entry again.
      env.setFailAt(-1);
      env.setFaults({});
      env.clearPressure();
      const size_t before = tracker.history().size();
      const uint64_t refusedBefore = tracker.stats().historyRefused;
      track::TrackMeasurement m;
      m.timeS = 0.25 * static_cast<double>(config_.trackerFixes);
      m.position = truth(m.timeS);
      tracker.onMeasurement(m);
      recovered_ = tracker.history().size() >= before &&
                   tracker.stats().historyRefused == refusedBefore;
    }
    arenaLeakBytes_ = arena.usedBytes();
  }

  std::optional<std::string> check(const sim::SimMemEnv& env) const override {
    if (stats_.accepted == 0) {
      return "no fix was ever accepted";
    }
    if (state_ != track::TrackState::kConfirmed &&
        state_ != track::TrackState::kCoasting) {
      return std::string("track left the confirmed/coasting envelope: ") +
             track::trackStateName(state_);
    }
    if (!hasAnchor_ || !anchorUsedMeasurement_) {
      return "the measurement-backed anchor was lost under eviction";
    }
    if (historySize_ > config_.trackerHistoryLimit) {
      return "history grew past its bound: " + std::to_string(historySize_);
    }
    if (memoryBytes_ != historySize_ * sizeof(track::TrackEstimate)) {
      return "memoryBytes() diverged from the held history";
    }
    if (stats_.historyRefused > env.denials()) {
      return std::to_string(stats_.historyRefused) +
             " entries refused with only " + std::to_string(env.denials()) +
             " denials injected";
    }
    if (env.denials() == 0 &&
        (stats_.historyRefused > 0 ||
         historySize_ + 1 < std::min<size_t>(config_.trackerHistoryLimit,
                                             config_.trackerFixes))) {
      return "fault-free run evicted or refused history";
    }
    if (!recovered_) {
      return "history entry refused after pressure cleared";
    }
    if (arenaLeakBytes_ != 0) {
      return "arena retained " + std::to_string(arenaLeakBytes_) +
             " bytes after the tracker was destroyed";
    }
    return std::nullopt;
  }

 private:
  const OomExploreConfig& config_;

  track::TrackerStats stats_;
  track::TrackState state_ = track::TrackState::kDropped;
  bool hasAnchor_ = false;
  bool anchorUsedMeasurement_ = false;
  size_t historySize_ = 0;
  uint64_t memoryBytes_ = 0;
  bool recovered_ = false;
  uint64_t arenaLeakBytes_ = 0;
};

// ---------------------------------------------------------------------------
// The planted bug: a shed cache that, on a denied reservation, "sheds" an
// entry it never admitted -- release without reserve, the accounting
// analog of a double-close.  Invisible on any fault-free run (reserves and
// releases balance exactly); any schedule with one effective denial makes
// the books over-release and the environment's underflow oracle fire.

class BrokenShedCacheWorkload final : public MemWorkloadRun {
 public:
  explicit BrokenShedCacheWorkload(size_t ops) : ops_(ops) {}

  static constexpr uint64_t kBlockBytes = 1024;

  void run(sim::SimMemEnv& env) override {
    core::MemArena arena(&env, 0, "broken.cache");
    for (size_t i = 0; i < ops_; ++i) {
      if (!arena.tryReserve(kBlockBytes)) {
        // BUG: sheds a block that was never admitted.
        arena.release(kBlockBytes);
      }
    }
  }

  std::optional<std::string> check(const sim::SimMemEnv&) const override {
    return std::nullopt;  // the predicate is env.underflow(), inverted
  }

 private:
  size_t ops_;
};

// ---------------------------------------------------------------------------
// The explorer

void keepDetail(std::vector<OomViolation>& details, size_t cap,
                OomViolation violation) {
  if (details.size() < cap) details.push_back(std::move(violation));
}

/// Environment-level oracle checks every injected run must pass, plus the
/// recovery probe: with the injector disarmed and pressure cleared, a
/// reservation must succeed again.
std::optional<std::string> envOracles(sim::SimMemEnv& env) {
  if (env.underflow()) {
    return "accounting underflow: some caller released bytes it never "
           "reserved";
  }
  if (env.budgetExceeded()) {
    return "budget exceeded: some caller grew despite a denial";
  }
  if (env.usedBytes() != 0) {
    return "leak: " + std::to_string(env.usedBytes()) +
           " bytes still reserved after teardown";
  }
  env.setFailAt(-1);
  env.setFaults({});
  env.clearPressure();
  if (!env.tryReserve(4096)) {
    return "no recovery: a reservation was denied after pressure cleared";
  }
  env.release(4096);
  return std::nullopt;
}

struct RunOutcome {
  std::optional<std::string> bad;
  uint64_t denials = 0;
};

RunOutcome runInjected(const MemWorkloadFactory& factory,
                       const sim::MemFaultSchedule& schedule) {
  RunOutcome out;
  auto inst = factory();
  sim::SimMemEnv env;
  env.setFaults(schedule);
  try {
    inst->run(env);
  } catch (const std::exception& e) {
    out.bad = std::string("uncaught exception crossed the workload: ") +
              e.what();
  }
  out.denials = env.denials();
  if (!out.bad) out.bad = envOracles(env);
  if (!out.bad) out.bad = inst->check(env);
  return out;
}

/// Probe fault-free to count reservation boundaries, then re-run with a
/// single fault (kinds cycled) at stride-sampled reservation indices.
WorkloadOomStats exploreWorkload(const std::string& name,
                                 const MemWorkloadFactory& factory,
                                 const OomExploreConfig& cfg,
                                 std::vector<OomViolation>& details) {
  WorkloadOomStats stats;
  stats.name = name;

  {
    auto inst = factory();
    sim::SimMemEnv env;
    try {
      inst->run(env);
    } catch (const std::exception& e) {
      ++stats.violations;
      keepDetail(details, cfg.maxViolationDetails,
                 {name, -1, {}, std::string("baseline threw: ") + e.what()});
    }
    stats.boundaries = env.opCount();
    if (auto bad = envOracles(env)) {
      ++stats.violations;
      keepDetail(details, cfg.maxViolationDetails,
                 {name, -1, {}, "baseline: " + *bad});
    } else if (auto wbad = inst->check(env)) {
      ++stats.violations;
      keepDetail(details, cfg.maxViolationDetails,
                 {name, -1, {}, "baseline: " + *wbad});
    }
  }

  static constexpr sim::MemFaultKind kKinds[] = {
      sim::MemFaultKind::kDeny, sim::MemFaultKind::kBurst,
      sim::MemFaultKind::kCliff, sim::MemFaultKind::kPoison};
  const uint64_t span = std::max<uint64_t>(stats.boundaries, 1);
  for (size_t p = 0; p < cfg.pointsPerWorkload; ++p) {
    sim::MemFault fault;
    fault.opIndex = (uint64_t(p) * span) / cfg.pointsPerWorkload;
    fault.kind = kKinds[p % std::size(kKinds)];
    fault.param = fault.kind == sim::MemFaultKind::kBurst ? 4 : 1;

    const RunOutcome out = runInjected(factory, {fault});
    ++stats.points;
    stats.denials += out.denials;
    if (out.bad) {
      ++stats.violations;
      keepDetail(details, cfg.maxViolationDetails,
                 {name, int64_t(fault.opIndex), {fault}, *out.bad});
    }
  }
  return stats;
}

sim::MemFaultSchedule randomMemSchedule(std::mt19937_64& rng, uint64_t maxOp,
                                        size_t maxFaults) {
  static constexpr sim::MemFaultKind kKinds[] = {
      sim::MemFaultKind::kDeny, sim::MemFaultKind::kBurst,
      sim::MemFaultKind::kCliff, sim::MemFaultKind::kPoison};
  const size_t n = 1 + rng() % maxFaults;
  sim::MemFaultSchedule schedule;
  for (size_t i = 0; i < n; ++i) {
    sim::MemFault f;
    f.opIndex = rng() % maxOp;
    f.kind = kKinds[rng() % std::size(kKinds)];
    f.param = f.kind == sim::MemFaultKind::kBurst ? 2 + rng() % 5 : 1;
    schedule.push_back(f);
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const sim::MemFault& a, const sim::MemFault& b) {
              return a.opIndex < b.opIndex;
            });
  return schedule;
}

// ---------------------------------------------------------------------------
// JSON

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string memScheduleJson(const sim::MemFaultSchedule& schedule) {
  std::ostringstream out;
  out << '[';
  for (size_t i = 0; i < schedule.size(); ++i) {
    out << (i ? ", " : "") << "{\"op\": " << schedule[i].opIndex
        << ", \"kind\": \"" << sim::memFaultKindName(schedule[i].kind)
        << "\", \"param\": " << schedule[i].param << "}";
  }
  out << ']';
  return out.str();
}

}  // namespace

sim::MemFaultSchedule shrinkMemSchedule(
    const sim::MemFaultSchedule& schedule,
    const std::function<bool(const sim::MemFaultSchedule&)>& fails) {
  return ddminShrink(schedule, fails);
}

OomEvalResult runOomEval(const OomExploreConfig& config) {
  OomEvalResult result;
  const FleetFixture fx = makeFleetFixture(config);

  const MemWorkloadFactory fleetSteadyF = [&config, &fx] {
    return std::make_unique<FleetMemWorkload>(config, fx, FleetMode::kSteady,
                                              /*attachMem=*/true);
  };
  const MemWorkloadFactory connectStormF = [&config, &fx] {
    return std::make_unique<FleetMemWorkload>(
        config, fx, FleetMode::kConnectStorm, /*attachMem=*/true);
  };
  const MemWorkloadFactory checkpointF = [&config, &fx] {
    return std::make_unique<FleetMemWorkload>(
        config, fx, FleetMode::kCheckpointSave, /*attachMem=*/true);
  };
  const MemWorkloadFactory replayF = [&config] {
    return std::make_unique<ReplayFanoutWorkload>(config);
  };
  const MemWorkloadFactory trackerF = [&config] {
    return std::make_unique<TrackerGhostBurstWorkload>(config);
  };

  const std::pair<const char*, const MemWorkloadFactory*> workloads[] = {
      {"fleet_steady", &fleetSteadyF},   {"connect_storm", &connectStormF},
      {"replay_fanout", &replayF},       {"tracker_ghost_burst", &trackerF},
      {"checkpoint_save", &checkpointF},
  };
  for (const auto& [name, factory] : workloads) {
    const WorkloadOomStats ws =
        exploreWorkload(name, *factory, config, result.violations);
    result.totalBoundaries += ws.boundaries;
    result.totalPoints += ws.points;
    result.totalViolations += ws.violations;
    result.workloads.push_back(ws);
  }

  // Arm 2: seeded multi-fault schedules against the fleet steady-state
  // path (the workload with the richest shedding ladder).
  {
    auto rng = sim::makeRng(sim::deriveSeed(config.seed, 0x5EA));
    const uint64_t span = std::max<uint64_t>(
        result.workloads.empty() ? 1 : result.workloads[0].boundaries, 1);
    for (size_t r = 0; r < config.scheduleRounds; ++r) {
      const sim::MemFaultSchedule schedule =
          randomMemSchedule(rng, span, config.maxScheduleFaults);
      const RunOutcome out = runInjected(fleetSteadyF, schedule);
      ++result.scheduleRuns;
      result.scheduleDenials += out.denials;
      if (out.bad) {
        ++result.scheduleViolations;
        keepDetail(result.violations, config.maxViolationDetails,
                   {"fleet_steady/schedule", -1, schedule, *out.bad});
      }
    }
    result.totalViolations += result.scheduleViolations;
  }

  // Parity gate: the seam itself must cost nothing.  Accounting off vs a
  // fault-free SimMemEnv attached -- fix streams bit-identical.
  if (config.runParityGate) {
    result.parityChecked = true;
    FleetMemWorkload off(config, fx, FleetMode::kSteady,
                         /*attachMem=*/false);
    sim::SimMemEnv offEnv;
    off.run(offEnv);
    FleetMemWorkload on(config, fx, FleetMode::kSteady, /*attachMem=*/true);
    sim::SimMemEnv onEnv;
    on.run(onEnv);
    result.parityBaselineDigest = capture::digestHex(off.digest());
    result.paritySeamDigest = capture::digestHex(on.digest());
    result.parityBitIdentical = off.digest() == on.digest();
  }

  // Pressure arm: shard budgets from a probe run's per-shard peak, scaled
  // so the fleet ends around 1/factor (~80%) utilization -- inside the
  // mem-degraded band, trimming but never losing sessions.
  if (config.runPressureArm) {
    result.pressureChecked = true;
    FleetMemWorkload probe(config, fx, FleetMode::kSteady,
                           /*attachMem=*/true);
    sim::SimMemEnv probeEnv;
    probe.run(probeEnv);
    const uint64_t perShardPeak = std::max<uint64_t>(
        probe.stats().memPeakBytes / std::max<size_t>(config.fleetShards, 1),
        1);
    const uint64_t budget = uint64_t(
        config.pressureBudgetFactor * static_cast<double>(perShardPeak));
    result.pressureShardBudgetBytes = budget;

    FleetMemWorkload pressured(config, fx, FleetMode::kSteady,
                               /*attachMem=*/true, budget);
    sim::SimMemEnv env;
    pressured.run(env);
    result.pressureFixRate = pressured.fixRate();
    result.pressureTrims = pressured.stats().memTrims;
    result.pressureEjections = pressured.stats().memEjections;
    result.pressureDeniedReserves = pressured.stats().memDeniedReserves;
    result.pressureUtilization =
        static_cast<double>(pressured.stats().memPeakBytes) /
        static_cast<double>(budget * config.fleetShards);
    result.pressureRecovered =
        env.usedBytes() == 0 && !env.underflow() && !env.budgetExceeded();
  }

  // Arm 3: the falsification proof.
  if (config.exploreBrokenCache) {
    const MemWorkloadFactory brokenF = [&config] {
      return std::make_unique<BrokenShedCacheWorkload>(config.brokenCacheOps);
    };
    // Exploration must catch it: a single deny anywhere in range makes the
    // cache over-release and the underflow oracle fire at teardown.
    for (size_t k = 0; k < config.brokenCacheOps &&
                       !result.brokenCacheCaught;
         k += std::max<size_t>(config.brokenCacheOps / 16, 1)) {
      auto inst = brokenF();
      sim::SimMemEnv env;
      env.setFailAt(int64_t(k));
      inst->run(env);
      if (env.underflow()) result.brokenCacheCaught = true;
    }

    const auto fails = [&brokenF](const sim::MemFaultSchedule& schedule) {
      auto inst = brokenF();
      sim::SimMemEnv env;
      env.setFaults(schedule);
      inst->run(env);
      return env.underflow();
    };
    auto rng = sim::makeRng(sim::deriveSeed(config.seed, 0xB0B));
    sim::MemFaultSchedule failing;
    for (size_t r = 0; r < config.brokenSearchRounds && failing.empty();
         ++r) {
      const sim::MemFaultSchedule candidate = randomMemSchedule(
          rng, std::max<uint64_t>(config.brokenCacheOps, 1),
          config.maxScheduleFaults);
      if (fails(candidate)) failing = candidate;
    }
    if (!failing.empty()) {
      result.brokenScheduleFound = true;
      result.brokenScheduleFaults = failing.size();
      const sim::MemFaultSchedule shrunk = shrinkMemSchedule(failing, fails);
      result.brokenShrunkFaults = shrunk.size();
      std::ostringstream artifact;
      artifact << "{\"workload\": \"broken_shed_cache\", \"ops\": "
               << config.brokenCacheOps
               << ", \"schedule\": " << memScheduleJson(shrunk)
               << ", \"detail\": \"accounting underflow: release without "
                  "reserve\"}";
      result.brokenArtifactJson = artifact.str();
    }
  }

  const bool brokenOk =
      !config.exploreBrokenCache ||
      (result.brokenCacheCaught && result.brokenScheduleFound &&
       result.brokenShrunkFaults >= 1 &&
       result.brokenShrunkFaults <= result.brokenScheduleFaults);
  const bool parityOk = !config.runParityGate || result.parityBitIdentical;
  const bool pressureOk =
      !config.runPressureArm ||
      (result.pressureFixRate >= config.pressureMinFixRate &&
       result.pressureRecovered);
  result.pass =
      result.totalViolations == 0 && brokenOk && parityOk && pressureOk;
  return result;
}

std::string oomJson(const OomEvalResult& result) {
  std::ostringstream out;
  out << "{\n  \"workloads\": [\n";
  for (size_t i = 0; i < result.workloads.size(); ++i) {
    const WorkloadOomStats& w = result.workloads[i];
    out << "    {\"name\": \"" << jsonEscape(w.name)
        << "\", \"boundaries\": " << w.boundaries
        << ", \"points\": " << w.points << ", \"denials\": " << w.denials
        << ", \"violations\": " << w.violations << '}'
        << (i + 1 < result.workloads.size() ? "," : "") << '\n';
  }
  out << "  ],\n";
  out << "  \"total_boundaries\": " << result.totalBoundaries << ",\n";
  out << "  \"total_points\": " << result.totalPoints << ",\n";
  out << "  \"total_violations\": " << result.totalViolations << ",\n";
  out << "  \"schedule_search\": {\"runs\": " << result.scheduleRuns
      << ", \"denials\": " << result.scheduleDenials
      << ", \"violations\": " << result.scheduleViolations << "},\n";
  out << "  \"parity\": {\"checked\": "
      << (result.parityChecked ? "true" : "false") << ", \"bit_identical\": "
      << (result.parityBitIdentical ? "true" : "false")
      << ", \"baseline_digest\": \"" << result.parityBaselineDigest
      << "\", \"seam_digest\": \"" << result.paritySeamDigest << "\"},\n";
  out << "  \"pressure\": {\"checked\": "
      << (result.pressureChecked ? "true" : "false")
      << ", \"fix_rate\": " << result.pressureFixRate
      << ", \"utilization\": " << result.pressureUtilization
      << ", \"shard_budget_bytes\": " << result.pressureShardBudgetBytes
      << ", \"trims\": " << result.pressureTrims
      << ", \"ejections\": " << result.pressureEjections
      << ", \"denied_reserves\": " << result.pressureDeniedReserves
      << ", \"recovered\": " << (result.pressureRecovered ? "true" : "false")
      << "},\n";
  out << "  \"broken_cache\": {\"caught\": "
      << (result.brokenCacheCaught ? "true" : "false")
      << ", \"schedule_found\": "
      << (result.brokenScheduleFound ? "true" : "false")
      << ", \"schedule_faults\": " << result.brokenScheduleFaults
      << ", \"shrunk_faults\": " << result.brokenShrunkFaults
      << ", \"artifact\": "
      << (result.brokenArtifactJson.empty() ? "null"
                                            : result.brokenArtifactJson)
      << "},\n";
  out << "  \"violations\": [\n";
  for (size_t i = 0; i < result.violations.size(); ++i) {
    const OomViolation& v = result.violations[i];
    out << "    {\"workload\": \"" << jsonEscape(v.workload)
        << "\", \"fail_at_op\": " << v.failAtOp
        << ", \"schedule\": " << memScheduleJson(v.schedule)
        << ", \"detail\": \"" << jsonEscape(v.detail) << "\"}"
        << (i + 1 < result.violations.size() ? "," : "") << '\n';
  }
  out << "  ],\n";
  out << "  \"pass\": " << (result.pass ? "true" : "false") << "\n}\n";
  return out.str();
}

}  // namespace tagspin::eval
