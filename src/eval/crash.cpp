#include "eval/crash.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <numbers>
#include <optional>
#include <set>
#include <span>
#include <sstream>
#include <stdexcept>

#include "capture/digest.hpp"
#include "capture/format.hpp"
#include "capture/writer.hpp"
#include "core/io_env.hpp"
#include "eval/ddmin.hpp"
#include "core/serialization.hpp"
#include "runtime/checkpoint.hpp"
#include "sim/rng.hpp"

namespace tagspin::eval {
namespace {

// All workload paths are bare names: their shared parent is "." and one
// syncDir(".") seals every directory mutation, exactly like a checkpoint
// directory on a rig.
constexpr const char* kCheckpointPath = "calib.ckpt";
constexpr const char* kCapturePath = "session.tspc";

std::string fleetPath(size_t shard) {
  return "fleet_shard" + std::to_string(shard) + ".ckpt";
}

// ---------------------------------------------------------------------------
// Workload inputs

core::CalibrationCheckpoint makeCheckpoint(uint64_t sequence) {
  core::CalibrationCheckpoint ckpt;
  ckpt.sequence = sequence;
  ckpt.wallTimeS = 10.0 * static_cast<double>(sequence);
  ckpt.lastReportTimestampS = ckpt.wallTimeS - 0.5;
  core::TagCalibrationProgress progress;
  for (uint64_t i = 0; i < sequence % 3 + 2; ++i) {
    core::Snapshot s;
    s.timeS = 0.5 * static_cast<double>(i);
    s.phaseRad = 0.25 * static_cast<double>(i + sequence);
    s.lambdaM = 0.328;
    s.channel = static_cast<int>(i % 3);
    s.rssiDbm = -60.0 - static_cast<double>(i);
    progress.snapshots.push_back(s);
  }
  ckpt.tags[rfid::Epc::forSimulatedTag(0)] = progress;
  return ckpt;
}

/// Quantization-exact reports (every field on the wire grid), so strict
/// decode equality is byte-for-byte, not epsilon.
capture::TimedStream quantizedStream(size_t n, int64_t startUs) {
  capture::TimedStream out;
  for (size_t i = 0; i < n; ++i) {
    capture::TimedReport tr;
    tr.report.epc = rfid::Epc::forSimulatedTag(static_cast<uint32_t>(i % 3));
    const int64_t us = startUs + static_cast<int64_t>(i) * 2500;
    tr.report.timestampS = static_cast<double>(us) / 1e6;
    tr.report.phaseRad = static_cast<double>((i * 37) % 4096) / 4096.0 * 2.0 *
                         std::numbers::pi;
    tr.report.rssiDbm =
        static_cast<double>(-6000 - static_cast<int>(i)) / 100.0;
    tr.report.channelIndex = static_cast<int>(i % 16);
    tr.report.frequencyHz = static_cast<double>(902750 + 500 * (i % 16)) * 1e3;
    tr.report.antennaPort = static_cast<int>(i % 4);
    tr.deliveryS = static_cast<double>(us + 800) / 1e6;
    out.push_back(tr);
  }
  return out;
}

/// `got` must be exactly the first got.size() reports of `want`.
std::optional<std::string> comparePrefix(const capture::TimedStream& want,
                                         const capture::TimedStream& got) {
  if (got.size() > want.size()) {
    return "decoded " + std::to_string(got.size()) + " reports, only " +
           std::to_string(want.size()) + " were ever appended";
  }
  const capture::TimedStream head(want.begin(), want.begin() + got.size());
  if (capture::streamDigest(capture::stripTiming(head)) !=
      capture::streamDigest(capture::stripTiming(got))) {
    return "decoded reports diverge from the appended stream";
  }
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].deliveryS != head[i].deliveryS) {
      return "delivery timing diverges at report " + std::to_string(i);
    }
  }
  return std::nullopt;
}

/// Strictly-valid prefix of a capture image, decoded (empty on a file whose
/// header never survived).
capture::TimedStream decodeStrictPrefix(const std::string& bytesStr) {
  const std::vector<uint8_t> bytes(bytesStr.begin(), bytesStr.end());
  const capture::PrefixScan scan = capture::scanValidPrefix(bytes);
  if (!scan.headerValid) return {};
  return capture::decodeCapture(std::span(bytes.data(), scan.validBytes));
}

// ---------------------------------------------------------------------------
// The old-or-new oracle for durably-replaced files.
//
// The acceptable set holds the last acked contents plus every in-flight
// candidate whose save was started but never acknowledged (a crash can land
// before or after the rename, so both are legal).  An acked save collapses
// the set to exactly the new contents; until the first ack the file may
// also be missing entirely.

class DurableFileOracle {
 public:
  void beginSave(const std::string& framed) {
    acceptable_.insert(framed);
    lastAcked_ = false;
  }
  void ackSave(const std::string& framed) {
    acceptable_.clear();
    acceptable_.insert(framed);
    missingOk_ = false;
    lastAcked_ = true;
  }
  bool lastAcked() const { return lastAcked_; }

  std::optional<std::string> checkBytes(const sim::DiskImage& image,
                                        const std::string& path) const {
    const auto it = image.find(path);
    if (it == image.end()) {
      if (!missingOk_) return path + ": durably acked file is missing";
      return std::nullopt;
    }
    if (acceptable_.count(it->second) == 0) {
      return path + ": contents (" + std::to_string(it->second.size()) +
             " bytes) are bit-identical to neither the old checkpoint nor "
             "any in-flight new one";
    }
    return std::nullopt;
  }

  /// Only meaningful on a live (non-crashed) image: after an acked save the
  /// tmp was consumed by the rename, whatever faults earlier saves hit.
  std::optional<std::string> checkNoTmpLitter(const sim::DiskImage& image,
                                              const std::string& path) const {
    if (lastAcked_ && image.count(path + ".tmp") > 0) {
      return path + ".tmp: litter left behind after an acked save";
    }
    return std::nullopt;
  }

 private:
  std::set<std::string> acceptable_;
  bool missingOk_ = true;
  bool lastAcked_ = false;
};

// ---------------------------------------------------------------------------
// Workloads.  One instance = one execution: run() drives the real writers
// against the injected environment while the oracle tracks what was acked;
// check() mounts a post-crash image and runs *real* recovery against it.
// check() must be idempotent -- the explorer calls it once per persistence
// variant of the same crash.

class WorkloadRun {
 public:
  virtual ~WorkloadRun() = default;
  virtual void run(sim::SimIoEnv& env) = 0;
  virtual std::optional<std::string> check(
      const sim::DiskImage& image) const = 0;
  /// Stronger check for runs that completed without a power cut.
  virtual std::optional<std::string> checkLive(
      const sim::DiskImage& image) const {
    return check(image);
  }
};

using WorkloadFactory = std::function<std::unique_ptr<WorkloadRun>()>;

class CheckpointWorkload final : public WorkloadRun {
 public:
  explicit CheckpointWorkload(size_t saves) : saves_(saves) {}

  void run(sim::SimIoEnv& env) override {
    runtime::CheckpointStore store(kCheckpointPath, &env);
    for (size_t i = 0; i < saves_; ++i) {
      const core::CalibrationCheckpoint ckpt = makeCheckpoint(i + 1);
      const std::string framed =
          runtime::CheckpointStore::frame(core::checkpointToString(ckpt));
      oracle_.beginSave(framed);
      try {
        store.save(ckpt);
      } catch (const std::exception&) {
        continue;  // injected fault; the supervisor retries next interval
      }
      oracle_.ackSave(framed);
    }
  }

  std::optional<std::string> check(const sim::DiskImage& image) const override {
    if (auto bad = oracle_.checkBytes(image, kCheckpointPath)) return bad;
    if (image.count(kCheckpointPath) > 0) {
      sim::SimIoEnv recovery(image);
      const runtime::CheckpointStore store(kCheckpointPath, &recovery);
      if (!store.load().hasValue()) {
        return std::string(kCheckpointPath) +
               ": recovery load failed on an old-or-new image";
      }
    }
    return std::nullopt;
  }

  std::optional<std::string> checkLive(
      const sim::DiskImage& image) const override {
    if (auto bad = check(image)) return bad;
    return oracle_.checkNoTmpLitter(image, kCheckpointPath);
  }

 private:
  size_t saves_;
  DurableFileOracle oracle_;
};

class CaptureWorkload final : public WorkloadRun {
 public:
  /// `base` is the strictly-valid decoded prefix of the starting image
  /// (empty for a fresh file); `fileAlreadyDurable` says the directory
  /// entry predates this run.
  CaptureWorkload(const CrashExploreConfig& config,
                  capture::TimedStream toAppend, capture::TimedStream base,
                  bool fileAlreadyDurable)
      : config_(config),
        toAppend_(std::move(toAppend)),
        base_(std::move(base)),
        fileDurable_(fileAlreadyDurable),
        ackedReports_(base_.size()) {}

  void run(sim::SimIoEnv& env) override {
    capture::CaptureWriterConfig wc;
    wc.chunkReports = config_.chunkReports;
    wc.fsyncEveryChunks = config_.fsyncEveryChunks;
    wc.io = &env;
    // Local on purpose: if a power cut unwinds out of here, the writer's
    // destructor must run while `env` is still alive.
    capture::CaptureWriter writer(kCapturePath, wc);
    fileDurable_ = true;  // ctor sealed the entry (header fsync + dirsync)
    uint64_t lastFsyncs = writer.stats().fsyncs;
    for (const capture::TimedReport& tr : toAppend_) {
      appended_.push_back(tr);
      writer.append(tr.report, tr.deliveryS);
      // An fsync inside append covers every report framed before it.
      if (writer.stats().fsyncs > lastFsyncs) {
        lastFsyncs = writer.stats().fsyncs;
        ackedReports_ = base_.size() + writer.stats().reportsWritten;
      }
    }
    writer.close();
    ackedReports_ = base_.size() + writer.stats().reportsWritten;
  }

  std::optional<std::string> check(const sim::DiskImage& image) const override {
    capture::TimedStream expected = base_;
    expected.insert(expected.end(), appended_.begin(), appended_.end());

    const auto it = image.find(kCapturePath);
    if (it == image.end()) {
      if (fileDurable_ || ackedReports_ > 0) {
        return std::string(kCapturePath) +
               ": capture vanished after its creation was dirsynced";
      }
      return std::nullopt;
    }
    const std::vector<uint8_t> bytes(it->second.begin(), it->second.end());

    capture::TimedStream prefix;
    try {
      capture::CaptureStats stats;
      (void)capture::decodeCaptureTolerant(bytes, &stats);  // must not throw
      prefix = decodeStrictPrefix(it->second);
    } catch (const std::exception& e) {
      return std::string("recovery decode failed: ") + e.what();
    }
    if (prefix.size() < ackedReports_) {
      return "fsync-acked reports lost: decoded " +
             std::to_string(prefix.size()) + " < acked " +
             std::to_string(ackedReports_);
    }
    if (auto bad = comparePrefix(expected, prefix)) return bad;

    // Reopen on the crashed disk, append, close: the real recovery path
    // must resume without corrupting the chunks that survived.
    const capture::TimedStream extra =
        quantizedStream(config_.reopenExtraReports, 900'000'000);
    sim::SimIoEnv recovery(image);
    try {
      capture::CaptureWriterConfig wc;
      wc.chunkReports = config_.chunkReports;
      wc.fsyncEveryChunks = 1;
      wc.io = &recovery;
      capture::CaptureWriter writer(kCapturePath, wc);
      for (const capture::TimedReport& tr : extra) {
        writer.append(tr.report, tr.deliveryS);
      }
      writer.close();
    } catch (const std::exception& e) {
      return std::string("reopen on crashed image failed: ") + e.what();
    }
    const sim::DiskImage after = recovery.liveImage();
    capture::TimedStream expect2 = prefix;
    expect2.insert(expect2.end(), extra.begin(), extra.end());
    try {
      const std::vector<uint8_t> finalBytes(after.at(kCapturePath).begin(),
                                            after.at(kCapturePath).end());
      const capture::TimedStream finalStream =
          capture::decodeCapture(finalBytes);
      if (finalStream.size() != expect2.size()) {
        return "reopen+extend kept " + std::to_string(finalStream.size()) +
               " reports, want " + std::to_string(expect2.size());
      }
      if (auto bad = comparePrefix(expect2, finalStream)) {
        return "after reopen+extend: " + *bad;
      }
    } catch (const std::exception& e) {
      return std::string("reopen-extended capture failed strict decode: ") +
             e.what();
    }
    return std::nullopt;
  }

 private:
  const CrashExploreConfig& config_;
  capture::TimedStream toAppend_;
  capture::TimedStream base_;
  capture::TimedStream appended_;
  bool fileDurable_;
  size_t ackedReports_;
};

/// The durable-replace recipe under test in the fleet fan-out workload; the
/// broken variant (below) is the planted bug the harness must catch.
using DurableWriteFn = void (*)(core::IoEnv&, const std::string&,
                                const std::string&);

void correctDurableWrite(core::IoEnv& io, const std::string& path,
                         const std::string& contents) {
  core::writeFileDurable(io, path, contents);
}

/// The classic ordering bug: tmp + rename + dirsync but NO data fsync.
/// Survives every process-kill test (the page cache hides it) and loses the
/// file's contents when power dies with the pages still dirty.
void brokenDurableWrite(core::IoEnv& io, const std::string& path,
                        const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const core::IoStatus fd = core::openRetry(io, tmp, core::OpenMode::kTruncate);
  if (!fd.ok()) throw std::runtime_error("broken write: open failed");
  const int handle = static_cast<int>(fd.value);
  core::IoStatus st =
      core::writeAllRetry(io, handle, contents.data(), contents.size());
  if (!st.ok()) {
    io.close(handle);
    io.remove(tmp);
    throw std::runtime_error("broken write: write failed");
  }
  st = io.close(handle);
  if (!st.ok()) {
    io.remove(tmp);
    throw std::runtime_error("broken write: close failed");
  }
  st = io.rename(tmp, path);
  if (!st.ok()) {
    io.remove(tmp);
    throw std::runtime_error("broken write: rename failed");
  }
  st = core::syncDirRetry(io, core::parentDir(path));
  if (!st.ok()) throw std::runtime_error("broken write: dirsync failed");
}

/// Shards x rounds of framed durable writes with the per-shard
/// std::exception catch FleetManager::writeShardCheckpoint uses (disk
/// trouble must not kill the tick).  SimCrash is deliberately not a
/// std::exception, so a power cut is never absorbed by that handler.
class FleetFanoutWorkload final : public WorkloadRun {
 public:
  FleetFanoutWorkload(size_t shards, size_t rounds, DurableWriteFn write)
      : shards_(shards), rounds_(rounds), write_(write), oracles_(shards) {}

  void run(sim::SimIoEnv& env) override {
    for (size_t r = 0; r < rounds_; ++r) {
      for (size_t k = 0; k < shards_; ++k) {
        const std::string payload = "fleet-shard v1\nshard " +
                                    std::to_string(k) + "\nround " +
                                    std::to_string(r) + "\nsessions 0\n";
        const std::string framed = runtime::CheckpointStore::frame(payload);
        oracles_[k].beginSave(framed);
        try {
          write_(env, fleetPath(k), framed);
        } catch (const std::exception&) {
          continue;
        }
        oracles_[k].ackSave(framed);
      }
    }
  }

  std::optional<std::string> check(const sim::DiskImage& image) const override {
    for (size_t k = 0; k < shards_; ++k) {
      const std::string path = fleetPath(k);
      if (auto bad = oracles_[k].checkBytes(image, path)) return bad;
      const auto it = image.find(path);
      if (it != image.end() &&
          !runtime::CheckpointStore::unframe(it->second).hasValue()) {
        return path + ": recovery unframe failed on an old-or-new image";
      }
    }
    return std::nullopt;
  }

  std::optional<std::string> checkLive(
      const sim::DiskImage& image) const override {
    if (auto bad = check(image)) return bad;
    for (size_t k = 0; k < shards_; ++k) {
      if (auto bad = oracles_[k].checkNoTmpLitter(image, fleetPath(k))) {
        return bad;
      }
    }
    return std::nullopt;
  }

 private:
  size_t shards_;
  size_t rounds_;
  DurableWriteFn write_;
  std::vector<DurableFileOracle> oracles_;
};

// ---------------------------------------------------------------------------
// The explorer

std::vector<sim::CrashPersist> persistVariants(const CrashExploreConfig& cfg) {
  using M = sim::CrashPersist::Mode;
  std::vector<sim::CrashPersist> v = {
      {M::kNone, 0}, {M::kAll, 0}, {M::kMetaOnly, 0}};
  for (size_t i = 0; i < cfg.persistSeeds; ++i) {
    v.push_back({M::kPrefix, sim::deriveSeed(cfg.seed, 0x700 + i)});
    v.push_back({M::kSubset, sim::deriveSeed(cfg.seed, 0x800 + i)});
  }
  return v;
}

void keepDetail(std::vector<CrashViolation>& details, size_t cap,
                CrashViolation violation) {
  if (details.size() < cap) details.push_back(std::move(violation));
}

/// Enumerate every syscall boundary of the workload, power-cut there, and
/// recover under every persistence variant.
WorkloadCrashStats exploreWorkload(const std::string& name,
                                   const WorkloadFactory& factory,
                                   const sim::DiskImage& initial,
                                   const std::vector<sim::CrashPersist>& variants,
                                   const CrashExploreConfig& cfg,
                                   std::vector<CrashViolation>& details,
                                   size_t detailCap) {
  WorkloadCrashStats stats;
  stats.name = name;

  {
    // Fault-free baseline: counts the boundaries and sanity-checks the
    // workload's own oracle against the live state.
    auto inst = factory();
    sim::SimIoEnv env(initial);
    inst->run(env);
    stats.boundaries = env.opCount();
    if (auto bad = inst->checkLive(env.liveImage())) {
      ++stats.violations;
      keepDetail(details, detailCap,
                 {name, -1, {}, "live", 0, "baseline: " + *bad});
    }
  }

  for (uint64_t k = 0; k < stats.boundaries; ++k) {
    auto inst = factory();
    sim::SimIoEnv env(initial);
    env.setFaultSeed(sim::deriveSeed(cfg.seed, k));
    env.setCrashAtOp(static_cast<int64_t>(k));
    try {
      inst->run(env);
    } catch (const sim::SimCrash&) {
    }
    // A destructor may have swallowed the SimCrash (CaptureWriter's dtor
    // catches everything); env.crashed() is the ground truth.
    if (!env.crashed()) continue;
    for (const sim::CrashPersist& p : variants) {
      ++stats.crashPoints;
      if (auto bad = inst->check(env.crashImage(p))) {
        ++stats.violations;
        keepDetail(details, detailCap,
                   {name, static_cast<int64_t>(k), {},
                    sim::persistModeName(p.mode), p.seed, *bad});
      }
    }
  }
  return stats;
}

sim::FaultSchedule randomSchedule(std::mt19937_64& rng, uint64_t maxOp,
                                  size_t maxFaults) {
  static constexpr sim::FaultKind kKinds[] = {
      sim::FaultKind::kEio,        sim::FaultKind::kEnospc,
      sim::FaultKind::kEintr,      sim::FaultKind::kShortWrite,
      sim::FaultKind::kFsyncFailPartial, sim::FaultKind::kCrash};
  const size_t n = 1 + rng() % maxFaults;
  sim::FaultSchedule schedule;
  for (size_t i = 0; i < n; ++i) {
    sim::Fault f;
    f.opIndex = rng() % maxOp;
    f.kind = kKinds[rng() % std::size(kKinds)];
    schedule.push_back(f);
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const sim::Fault& a, const sim::Fault& b) {
              return a.opIndex < b.opIndex;
            });
  return schedule;
}

struct ScheduleOutcome {
  bool crashed = false;
  uint64_t checks = 0;
  uint64_t violations = 0;
  std::optional<CrashViolation> first;
};

ScheduleOutcome runSchedule(const std::string& name,
                            const WorkloadFactory& factory,
                            const sim::FaultSchedule& schedule,
                            const std::vector<sim::CrashPersist>& variants,
                            uint64_t faultSeed) {
  ScheduleOutcome out;
  auto inst = factory();
  sim::SimIoEnv env;
  env.setFaultSeed(faultSeed);
  env.setFaults(schedule);
  try {
    inst->run(env);
  } catch (const sim::SimCrash&) {
  }
  out.crashed = env.crashed();
  if (out.crashed) {
    for (const sim::CrashPersist& p : variants) {
      ++out.checks;
      if (auto bad = inst->check(env.crashImage(p))) {
        ++out.violations;
        if (!out.first) {
          out.first = CrashViolation{name, -1, schedule,
                                     sim::persistModeName(p.mode), p.seed,
                                     *bad};
        }
      }
    }
  } else {
    ++out.checks;
    if (auto bad = inst->checkLive(env.liveImage())) {
      ++out.violations;
      out.first = CrashViolation{name, -1, schedule, "live", 0, *bad};
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string scheduleJson(const sim::FaultSchedule& schedule) {
  std::ostringstream out;
  out << '[';
  for (size_t i = 0; i < schedule.size(); ++i) {
    out << (i ? ", " : "") << "{\"op\": " << schedule[i].opIndex
        << ", \"kind\": \"" << sim::faultKindName(schedule[i].kind) << "\"}";
  }
  out << ']';
  return out.str();
}

std::string artifactJson(uint64_t faultSeed, const sim::FaultSchedule& shrunk,
                         const std::optional<CrashViolation>& violation) {
  std::ostringstream out;
  out << "{\"workload\": \"broken_writer\", \"fault_seed\": " << faultSeed
      << ", \"schedule\": " << scheduleJson(shrunk);
  if (violation) {
    out << ", \"persist\": {\"mode\": \"" << violation->persistMode
        << "\", \"seed\": " << violation->persistSeed << "}"
        << ", \"detail\": \"" << jsonEscape(violation->detail) << "\"";
  }
  out << "}";
  return out.str();
}

}  // namespace

sim::FaultSchedule shrinkSchedule(
    const sim::FaultSchedule& schedule,
    const std::function<bool(const sim::FaultSchedule&)>& fails) {
  return ddminShrink(schedule, fails);
}

CrashEvalResult runCrashEval(const CrashExploreConfig& config) {
  CrashEvalResult result;
  const std::vector<sim::CrashPersist> variants = persistVariants(config);

  const capture::TimedStream mainStream =
      quantizedStream(config.captureReports, 1'000'000);
  const capture::TimedStream reopenStream =
      quantizedStream(std::max<size_t>(config.captureReports / 2, 1),
                      400'000'000);

  const WorkloadFactory checkpointF = [&config] {
    return std::make_unique<CheckpointWorkload>(config.checkpointSaves);
  };
  const WorkloadFactory captureFreshF = [&config, &mainStream] {
    return std::make_unique<CaptureWorkload>(config, mainStream,
                                             capture::TimedStream{}, false);
  };
  const WorkloadFactory fleetF = [&config] {
    return std::make_unique<FleetFanoutWorkload>(
        config.fleetShards, config.fleetRounds, &correctDurableWrite);
  };

  // Starting images for the reopen workloads: a clean capture, and the same
  // capture with a deterministic torn tail (a cut inside the last chunk --
  // what a mid-write power cut leaves).
  sim::DiskImage cleanImage;
  {
    auto inst = captureFreshF();
    sim::SimIoEnv env;
    inst->run(env);
    cleanImage = env.liveImage();
  }
  sim::DiskImage tornImage = cleanImage;
  {
    std::string& bytes = tornImage[kCapturePath];
    bytes.resize(bytes.size() - std::min<size_t>(bytes.size() / 2, 10));
  }
  const capture::TimedStream cleanBase =
      decodeStrictPrefix(cleanImage.at(kCapturePath));
  const capture::TimedStream tornBase =
      decodeStrictPrefix(tornImage.at(kCapturePath));

  const WorkloadFactory reopenCleanF = [&config, &reopenStream, &cleanBase] {
    return std::make_unique<CaptureWorkload>(config, reopenStream, cleanBase,
                                             true);
  };
  const WorkloadFactory reopenTornF = [&config, &reopenStream, &tornBase] {
    return std::make_unique<CaptureWorkload>(config, reopenStream, tornBase,
                                             true);
  };

  const struct {
    const char* name;
    const WorkloadFactory* factory;
    const sim::DiskImage* initial;
  } kWorkloads[] = {
      {"checkpoint", &checkpointF, nullptr},
      {"capture_append", &captureFreshF, nullptr},
      {"capture_reopen_clean", &reopenCleanF, &cleanImage},
      {"capture_reopen_torn", &reopenTornF, &tornImage},
      {"fleet_fanout", &fleetF, nullptr},
  };
  const sim::DiskImage empty;
  uint64_t fleetOps = 0;
  for (const auto& w : kWorkloads) {
    const WorkloadCrashStats stats = exploreWorkload(
        w.name, *w.factory, w.initial ? *w.initial : empty, variants, config,
        result.violations, config.maxViolationDetails);
    result.totalBoundaries += stats.boundaries;
    result.totalCrashPoints += stats.crashPoints;
    result.totalViolations += stats.violations;
    if (stats.name == "fleet_fanout") fleetOps = stats.boundaries;
    result.workloads.push_back(stats);
  }

  // Seeded fault-schedule search over the fleet fan-out path.
  std::mt19937_64 rng = sim::makeRng(sim::deriveSeed(config.seed, 0x5C4ED));
  for (size_t r = 0; r < config.scheduleRounds && fleetOps > 0; ++r) {
    const sim::FaultSchedule schedule =
        randomSchedule(rng, fleetOps, config.maxScheduleFaults);
    const ScheduleOutcome out =
        runSchedule("fleet_fanout", fleetF, schedule, variants,
                    sim::deriveSeed(config.seed, 0x900 + r));
    ++result.scheduleRuns;
    if (out.crashed) ++result.scheduleCrashes;
    result.scheduleChecks += out.checks;
    result.scheduleViolations += out.violations;
    result.totalViolations += out.violations;
    if (out.first) {
      keepDetail(result.violations, config.maxViolationDetails, *out.first);
    }
  }

  // Falsification arm: the harness must catch the planted ordering bug and
  // shrink a failing schedule to a minimal replayable artifact.
  if (config.exploreBrokenWriter) {
    const WorkloadFactory brokenF = [] {
      return std::make_unique<FleetFanoutWorkload>(1, 2, &brokenDurableWrite);
    };
    std::vector<CrashViolation> brokenDetails;
    const WorkloadCrashStats brokenStats =
        exploreWorkload("broken_writer", brokenF, empty, variants, config,
                        brokenDetails, 1);
    result.brokenWriterCaught = brokenStats.violations > 0;

    const uint64_t brokenFaultSeed = sim::deriveSeed(config.seed, 0xFA11);
    const auto fails = [&](const sim::FaultSchedule& schedule) {
      if (schedule.empty()) return false;
      return runSchedule("broken_writer", brokenF, schedule, variants,
                         brokenFaultSeed)
                 .violations > 0;
    };
    std::mt19937_64 brng = sim::makeRng(sim::deriveSeed(config.seed, 0xB40C));
    sim::FaultSchedule failing;
    for (size_t r = 0; r < config.brokenSearchRounds && failing.empty(); ++r) {
      const sim::FaultSchedule candidate = randomSchedule(
          brng, std::max<uint64_t>(brokenStats.boundaries, 1),
          config.maxScheduleFaults);
      if (fails(candidate)) failing = candidate;
    }
    if (!failing.empty()) {
      result.brokenScheduleFound = true;
      result.brokenScheduleFaults = failing.size();
      const sim::FaultSchedule shrunk = shrinkSchedule(failing, fails);
      result.brokenShrunkFaults = shrunk.size();
      const ScheduleOutcome replay = runSchedule(
          "broken_writer", brokenF, shrunk, variants, brokenFaultSeed);
      result.brokenArtifactJson =
          artifactJson(brokenFaultSeed, shrunk, replay.first);
    }
  }

  const bool brokenOk =
      !config.exploreBrokenWriter ||
      (result.brokenWriterCaught && result.brokenScheduleFound &&
       result.brokenShrunkFaults >= 1 &&
       result.brokenShrunkFaults <= result.brokenScheduleFaults);
  result.pass = result.totalViolations == 0 && brokenOk;
  return result;
}

std::string crashJson(const CrashEvalResult& result) {
  std::ostringstream out;
  out << "{\n  \"workloads\": [\n";
  for (size_t i = 0; i < result.workloads.size(); ++i) {
    const WorkloadCrashStats& w = result.workloads[i];
    out << "    {\"name\": \"" << jsonEscape(w.name)
        << "\", \"boundaries\": " << w.boundaries
        << ", \"crash_points\": " << w.crashPoints
        << ", \"violations\": " << w.violations << '}'
        << (i + 1 < result.workloads.size() ? "," : "") << '\n';
  }
  out << "  ],\n";
  out << "  \"total_boundaries\": " << result.totalBoundaries << ",\n";
  out << "  \"total_crash_points\": " << result.totalCrashPoints << ",\n";
  out << "  \"total_violations\": " << result.totalViolations << ",\n";
  out << "  \"schedule_search\": {\"runs\": " << result.scheduleRuns
      << ", \"crashes\": " << result.scheduleCrashes
      << ", \"checks\": " << result.scheduleChecks
      << ", \"violations\": " << result.scheduleViolations << "},\n";
  out << "  \"broken_writer\": {\"caught\": "
      << (result.brokenWriterCaught ? "true" : "false")
      << ", \"schedule_found\": "
      << (result.brokenScheduleFound ? "true" : "false")
      << ", \"schedule_faults\": " << result.brokenScheduleFaults
      << ", \"shrunk_faults\": " << result.brokenShrunkFaults
      << ", \"artifact\": "
      << (result.brokenArtifactJson.empty() ? "null"
                                            : result.brokenArtifactJson)
      << "},\n";
  out << "  \"violations\": [\n";
  for (size_t i = 0; i < result.violations.size(); ++i) {
    const CrashViolation& v = result.violations[i];
    out << "    {\"workload\": \"" << jsonEscape(v.workload)
        << "\", \"crash_at_op\": " << v.crashAtOp << ", \"persist\": \""
        << jsonEscape(v.persistMode) << "\", \"persist_seed\": "
        << v.persistSeed << ", \"schedule\": " << scheduleJson(v.schedule)
        << ", \"detail\": \"" << jsonEscape(v.detail) << "\"}"
        << (i + 1 < result.violations.size() ? "," : "") << '\n';
  }
  out << "  ],\n";
  out << "  \"pass\": " << (result.pass ? "true" : "false") << "\n}\n";
  return out.str();
}

}  // namespace tagspin::eval
