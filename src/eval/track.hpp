// Moving-reader tracking evaluation: the fix stream of a scripted reader
// trajectory fed through the track/ subsystem, against ground truth.
//
// The simulation is quasi-static per window: the spinning rigs turn fast
// (omega ~ pi rad/s -> a 2 s fix window covers a full revolution) while
// the reader walks slowly (~0.2 m/s), so within one window the reader is
// effectively stationary and the interrogator is run with the reader
// parked at the window-midpoint trajectory position.  Motion enters
// between windows, which is exactly the regime the paper's one-shot
// pipeline leaves unexploited and the tracker captures.
//
// Three paired arms over the same per-window capture corpus:
//  * CLEAN      -- every window yields a fix; measures how much sequential
//                  filtering tightens the per-fix error (tracked RMSE vs
//                  independent-fix RMSE);
//  * DROPOUT    -- a seeded fraction of windows lose their fix entirely
//                  (coast on the motion model) and a further fraction
//                  deliver ghost fixes interrogated from a decoy position
//                  (the Mahalanobis gate must reject them);
//  * OUTAGE     -- the standard soak outage script mapped onto windows: a
//                  confirmed track must coast through every scripted
//                  outage without being dropped or re-initialized.
//
// Determinism: the DROPOUT arm is run twice over the identical corpus and
// the FNV-1a digests of the two emitted trajectories must be
// bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/quality.hpp"
#include "runtime/supervisor.hpp"
#include "sim/scenario.hpp"
#include "sim/trajectory.hpp"
#include "track/tracker.hpp"

namespace tagspin::eval {

struct TrackEvalConfig {
  sim::ScenarioConfig scenario = defaultScenario();
  sim::Region region;
  int rigCount = 6;
  /// Fix-window duration; with the default omega = pi rad/s one window is
  /// one full revolution.
  double windowS = 2.0;
  int windows = 120;
  /// Windows excluded from the RMSE tallies while the track initializes
  /// (tentative phase + velocity convergence).
  int warmupWindows = 15;
  /// Reader walking profile (patrol loop over the region).  Slow walk and
  /// wide fillets keep a corner spanning ~4 fix windows -- at 2 s between
  /// fixes a tighter/faster turn is simply not observable.
  double speedMps = 0.04;
  double turnRadiusM = 0.40;
  /// Per-sample phase noise injected into the channel (radians).  Raised
  /// above the paper's 0.1 rad so the per-window fix error is dominated
  /// by independent noise rather than by geometry -- the regime where
  /// sequential filtering has information to work with and the RMSE-ratio
  /// gate measures the filter, not the deployment.
  double phaseNoiseStd = 0.45;
  /// DROPOUT arm: fraction of windows with no fix / with a ghost fix.
  double dropoutFraction = 0.20;
  double ghostFraction = 0.05;
  track::TrackerConfig tracker = defaultTracker();
  core::LocatorConfig locator = defaultLocator();
  core::RigHealthThresholds health;
  uint64_t seed = 0x7AC4ULL;

  /// Fast spin, multipath off: the arms isolate the *filter* against fix
  /// noise; the channel-model stress lives in fig_adversarial.
  static sim::ScenarioConfig defaultScenario();
  /// Robust stack with the bootstrap ellipse on -- the ellipse is the
  /// per-fix measurement covariance the tracker consumes.
  static core::LocatorConfig defaultLocator();
  /// Low process noise matched to the piecewise-CV/CT patrol profile.
  static track::TrackerConfig defaultTracker();
};

/// One evaluated window of an arm (the bench CSV rows).
struct TrackWindowRow {
  double timeS = 0.0;
  double truthX = 0.0, truthY = 0.0;
  bool hasFix = false;
  bool ghost = false;
  double fixX = 0.0, fixY = 0.0;
  bool hasTrack = false;
  double trackX = 0.0, trackY = 0.0;
  std::string state;   // trackStateName at the window
  std::string model;   // active motion model
  double nis = 0.0;    // 0 when the window coasted
};

struct TrackArmResult {
  std::string name;
  int windows = 0;
  int fixesProduced = 0;  // locator succeeded (incl. ghosts)
  int gapWindows = 0;
  int ghostWindows = 0;
  /// RMSE over post-warmup windows, cm.
  double fixRmseCm = 0.0;    // independent fixes vs truth (non-ghost)
  double trackRmseCm = 0.0;  // track estimate vs truth (all windows)
  /// Largest track error over coasted windows, cm (divergence check).
  double coastMaxErrorCm = 0.0;
  track::TrackerStats stats;
  /// Final lifecycle state at the end of the arm.
  std::string finalState;
  /// FNV-1a digest over every emitted estimate (time, position, velocity,
  /// state, model) -- the determinism gate's currency.
  uint64_t trajectoryDigest = 0;
  std::vector<TrackWindowRow> rows;
};

struct TrackEvalResult {
  TrackArmResult clean;
  TrackArmResult dropout;
  TrackArmResult outage;
  /// DROPOUT arm re-run over the identical corpus.
  uint64_t replayDigest1 = 0;
  uint64_t replayDigest2 = 0;
  bool replayDeterministic = false;
  /// clean arm: trackRmse / fixRmse (the <= 0.7 acceptance gate).
  double rmseRatio = 0.0;
  /// OUTAGE arm: never dropped, never re-initialized.
  bool outageSurvived = false;
};

TrackEvalResult runTrackEval(const TrackEvalConfig& config);

/// Per-window CSV of one arm (time, truth, fix, track, state, nis).
std::string trackArmCsv(const TrackArmResult& arm);
/// Full result as JSON (the BENCH_track.json payload).
std::string trackJson(const TrackEvalResult& result);

/// Replay a recorded capture through a supervised session with the fix
/// tracker enabled: periodic locateAndRecover2D at `fixIntervalS`, each
/// fix (or failure) feeding the tracker.  Returns the FNV-1a digest over
/// the emitted track estimates plus the count -- running it twice on the
/// same capture must produce identical digests.
struct TrackReplayResult {
  uint64_t trajectoryDigest = 0;
  size_t estimates = 0;
  size_t fixes = 0;
  std::string finalState;
  double finalX = 0.0, finalY = 0.0;
};
TrackReplayResult runTrackReplay(const std::string& capturePath,
                                 const core::DeploymentFile& deployment,
                                 runtime::SupervisorConfig supervisor,
                                 double fixIntervalS = 2.0,
                                 double tickS = 0.05);

}  // namespace tagspin::eval
