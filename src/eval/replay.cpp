#include "eval/replay.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <numbers>
#include <sstream>
#include <vector>

#include "capture/digest.hpp"
#include "capture/record.hpp"
#include "capture/replay.hpp"
#include "capture/writer.hpp"
#include "eval/fleet.hpp"
#include "eval/metrics.hpp"
#include "rfid/llrp.hpp"
#include "runtime/fleet.hpp"
#include "sim/flaky_transport.hpp"
#include "sim/rng.hpp"

namespace tagspin::eval {
namespace {

double hostSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

core::DeploymentFile deploymentFromWorld(const sim::World& world) {
  core::DeploymentFile deployment;
  for (const sim::RigTag& rt : world.rigs) {
    core::RigSpec spec;
    spec.center = rt.rig.center;
    spec.kinematics = {rt.rig.radiusM, rt.rig.omegaRadPerS,
                       rt.rig.initialAngle, rt.rig.tagPlaneOffset};
    deployment.rigs[rt.tag.epc] = spec;
  }
  return deployment;
}

/// Chunk extents of an intact capture image (trusted lengths -- callers run
/// this on a file the harness just wrote and strictly validated).
std::vector<std::pair<size_t, size_t>> chunkSpans(
    std::span<const uint8_t> bytes) {
  std::vector<std::pair<size_t, size_t>> spans;
  size_t off = capture::kFileHeaderSize;
  while (off + capture::kChunkHeaderSize <= bytes.size()) {
    const size_t payloadLen = (size_t(bytes[off + 4]) << 24) |
                              (size_t(bytes[off + 5]) << 16) |
                              (size_t(bytes[off + 6]) << 8) |
                              size_t(bytes[off + 7]);
    const size_t size = capture::kChunkHeaderSize + payloadLen;
    if (off + size > bytes.size()) break;
    spans.emplace_back(off, size);
    off += size;
  }
  return spans;
}

}  // namespace

runtime::SupervisorConfig ReplayEvalConfig::defaultSupervisorConfig() {
  runtime::SupervisorConfig sup;
  // Same queue posture as the soak harness: small enough that replayed
  // flood bursts exercise the backpressure policy too.
  sup.session.queueCapacity = 2048;
  sup.session.backpressure = runtime::BackpressurePolicy::kDropOldest;
  return sup;
}

namespace {

/// Drive one supervised session from a persistent transport for `endS`
/// simulated seconds and extract the fix.  The transport is shared across
/// supervisor-level session restarts (SharedTransport), exactly as a live
/// reconnect reuses the reader.
ReplayArmResult runArm(const ReplayEvalConfig& config,
                       const core::DeploymentFile& deployment,
                       std::shared_ptr<runtime::Transport> transport,
                       double endS, const geom::Vec3& truth) {
  ReplayArmResult arm;
  obs::MetricsRegistry registry;
  runtime::SupervisorConfig supCfg = config.supervisor;
  supCfg.metrics = &registry;
  runtime::Supervisor sup(supCfg, deployment, nullptr);
  sup.addSession("reader0", [transport] {
    return std::make_unique<runtime::SharedTransport>(transport);
  });
  for (double t = 0.0; t <= endS + 1e-9; t += config.tickS) sup.tick(t);
  sup.shutdown(endS);

  const auto fix = sup.tryLocate2D();
  arm.ok = fix.hasValue();
  if (fix.hasValue()) {
    arm.errorCm = errorCm(fix->fix.position, {truth.x, truth.y}).combined;
    arm.positionX = fix->fix.position.x;
    arm.positionY = fix->fix.position.y;
    arm.fixDigest = capture::fixDigest(*fix);
    arm.grade = core::fixGradeName(fix->report.grade);
  } else {
    arm.failure = core::errorCodeName(fix.code());
  }
  arm.reportsIngested =
      registry.snapshot().counterValue("supervisor.reports_ingested");
  return arm;
}

ReplayArmResult runReplayArm(const ReplayEvalConfig& config,
                             const core::DeploymentFile& deployment,
                             std::shared_ptr<const capture::ReplayStream> s,
                             double speed, const geom::Vec3& truth) {
  capture::ReplayTransportConfig rc;
  rc.speed = speed;
  rc.connectDelayS = config.connectDelayS;
  auto transport = std::make_shared<capture::ReplayTransport>(s, rc);
  const double spanS = s->releaseS.empty() ? 0.0 : s->releaseS.back();
  const double endS = spanS / (speed > 0.0 ? speed : 1.0) +
                      config.connectDelayS + config.settleS;
  return runArm(config, deployment, transport, endS, truth);
}

}  // namespace

ReplayEvalResult runReplayEval(const ReplayEvalConfig& config) {
  ReplayEvalResult result;

  const double period =
      2.0 * std::numbers::pi / config.scenario.rigOmegaRadPerS;
  const double durationS = config.revolutions * period;
  const double endS = durationS + config.settleS;

  sim::World world = sim::makeRigRowWorld(config.scenario, config.rigCount);
  auto rng = sim::makeRng(sim::deriveSeed(config.seed, 1));
  const geom::Vec3 truth = config.region.sample(rng, false);
  sim::placeReaderAntenna(world, 0, truth);
  const core::DeploymentFile deployment = deploymentFromWorld(world);

  sim::FlakyTransportConfig tc;
  tc.interrogate = {durationS, 0, sim::deriveSeed(config.seed, 2)};
  tc.connectDelayS = config.connectDelayS;
  tc.seed = sim::deriveSeed(config.seed, 3);
  tc.events = sim::standardOutageScript(durationS, period,
                                        sim::deriveSeed(config.seed, 4));

  const std::string capturePath = config.capturePath.empty()
                                      ? "replay_capture.tspc"
                                      : config.capturePath;
  std::remove(capturePath.c_str());

  // --- LIVE arm: supervised flaky session with the recording tap. ---
  {
    capture::CaptureWriterConfig wc;
    wc.chunkReports = config.chunkReports;
    capture::CaptureWriter writer(capturePath, wc);
    auto shared = std::make_shared<sim::FlakyTransport>(world, tc);

    obs::MetricsRegistry registry;
    runtime::SupervisorConfig supCfg = config.supervisor;
    supCfg.metrics = &registry;
    runtime::Supervisor sup(supCfg, deployment, nullptr);
    // Restarts mint a fresh tap (fresh decoder state, like a new socket)
    // over the same shared endpoint, all appending to one capture.
    sup.addSession("reader0", [shared, &writer] {
      return std::make_unique<capture::RecordingTransport>(
          std::make_unique<runtime::SharedTransport>(shared), &writer);
    });
    for (double t = 0.0; t <= endS + 1e-9; t += config.tickS) sup.tick(t);
    sup.shutdown(endS);
    writer.close();

    const auto fix = sup.tryLocate2D();
    result.liveOk = fix.hasValue();
    if (fix.hasValue()) {
      result.liveErrorCm =
          errorCm(fix->fix.position, {truth.x, truth.y}).combined;
      result.livePositionX = fix->fix.position.x;
      result.livePositionY = fix->fix.position.y;
      result.liveFixDigest = capture::fixDigest(*fix);
      result.liveGrade = core::fixGradeName(fix->report.grade);
    }
    result.liveReportsIngested =
        registry.snapshot().counterValue("supervisor.reports_ingested");
    result.reportsCaptured = writer.stats().reportsWritten;
    result.chunksCaptured = writer.stats().chunksWritten;
  }

  // --- Read the capture back (strict + tolerant must agree). ---
  std::vector<uint8_t> image;
  {
    std::ifstream in(capturePath, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string s = buf.str();
    image.assign(s.begin(), s.end());
  }
  result.captureBytes = image.size();
  if (result.reportsCaptured > 0) {
    result.bytesPerReport =
        double(image.size()) / double(result.reportsCaptured);
  }

  capture::CaptureStats intactStats;
  const capture::TimedStream tolerant =
      capture::decodeCaptureTolerant(image, &intactStats);
  const capture::TimedStream strict = capture::decodeCapture(image);
  result.captureIntact =
      intactStats.chunksSkipped == 0 && !intactStats.headerRecovered &&
      capture::streamDigest(capture::stripTiming(tolerant)) ==
          capture::streamDigest(capture::stripTiming(strict)) &&
      strict.size() == result.reportsCaptured;

  const auto stream = capture::makeReplayStream(strict);

  // --- REPLAY arms: 1x parity with the live run, twice for determinism. ---
  result.replay1 = runReplayArm(config, deployment, stream, 1.0, truth);
  result.replay2 = runReplayArm(config, deployment, stream, 1.0, truth);
  result.replayDeterministic = result.replay1.ok && result.replay2.ok &&
                               result.replay1.fixDigest ==
                                   result.replay2.fixDigest;
  if (result.liveOk && result.replay1.ok) {
    result.fixParityExact =
        result.replay1.fixDigest == result.liveFixDigest;
    result.fixParityCm =
        errorCm({result.replay1.positionX, result.replay1.positionY},
                {result.livePositionX, result.livePositionY})
            .combined;
  }

  // --- Throughput: the full replay pipeline, as fast as it will go. ---
  {
    const auto start = std::chrono::steady_clock::now();
    capture::CaptureStats st;
    const capture::TimedStream timed =
        capture::decodeCaptureTolerant(image, &st);
    const auto fast = capture::makeReplayStream(timed);
    capture::ReplayTransport transport(fast, {.speed = 0.0});
    transport.connect(0.0);
    const runtime::TransportRead read = transport.poll(0.0);
    rfid::llrp::TolerantStreamDecoder decoder;
    const rfid::ReportStream out = decoder.feed(read.bytes);
    result.replayWallS = hostSeconds(start);
    if (result.replayWallS > 0.0) {
      result.replayThroughputRps = double(out.size()) / result.replayWallS;
    }
  }

  // --- CORRUPTION pass: flip a bit in ~corruptFraction of the chunks. ---
  {
    const auto spans = chunkSpans(image);
    std::vector<uint8_t> corrupted = image;
    size_t hit = std::max<size_t>(
        1, size_t(config.corruptFraction * double(spans.size())));
    hit = std::min(hit, spans.size());
    auto crng = sim::makeRng(sim::deriveSeed(config.seed, 9));
    std::vector<size_t> order(spans.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), crng);
    for (size_t i = 0; i < hit; ++i) {
      const auto [off, size] = spans[order[i]];
      // Flip inside the payload; the chunk dies to its payload CRC.
      const size_t pos = off + capture::kChunkHeaderSize +
                         size_t(crng() % (size - capture::kChunkHeaderSize));
      corrupted[pos] ^= uint8_t(1u << (crng() % 8));
    }
    result.chunksCorrupted = hit;

    const capture::TimedStream recovered =
        capture::decodeCaptureTolerant(corrupted, &result.corruptStats);
    if (result.reportsCaptured > 0) {
      result.recoveryRate =
          double(recovered.size()) / double(result.reportsCaptured);
    }
    result.corruptReplay = runReplayArm(
        config, deployment, capture::makeReplayStream(recovered), 1.0, truth);
  }

  // --- FLEET load generation: fan the capture across N sessions. ---
  if (config.fleetSessions > 0) {
    obs::MetricsRegistry registry;
    runtime::FleetConfig fc = FleetEvalConfig::defaultFleetConfig();
    fc.shards = config.fleetShards;
    fc.metrics = &registry;
    fc.checkpointDir.clear();
    fc.checkpointIntervalS = 0.0;

    runtime::FleetManager fleet(fc, deployment);
    capture::ReplayTransportConfig rc;
    rc.speed = config.fleetSpeed;
    std::vector<std::shared_ptr<capture::ReplayTransport>> transports;
    for (size_t i = 0; i < config.fleetSessions; ++i) {
      auto transport = std::make_shared<capture::ReplayTransport>(stream, rc);
      transports.push_back(transport);
      fleet.registerSession("replay" + std::to_string(i), [transport] {
        return std::make_unique<runtime::SharedTransport>(transport);
      });
    }

    const double spanS = stream->releaseS.empty() ? 0.0
                                                  : stream->releaseS.back();
    const double fleetEndS = spanS / config.fleetSpeed + config.settleS;
    const auto start = std::chrono::steady_clock::now();
    for (double t = 0.0; t <= fleetEndS + 1e-9; t += config.fleetTickS) {
      fleet.tick(t);
    }
    fleet.shutdown(fleetEndS);
    result.fleetWallS = hostSeconds(start);

    result.fleetSessions = fleet.sessionCount();
    result.fleetShards = fleet.shardCount();
    for (const runtime::FleetManager::SessionView& view : fleet.sessions()) {
      if (view.hasFix) ++result.fleetSessionsWithFix;
    }
    if (result.fleetSessions > 0) {
      result.fleetFixRate = double(result.fleetSessionsWithFix) /
                            double(result.fleetSessions);
    }
    result.fleetReportsIngested =
        registry.snapshot().counterValue("supervisor.reports_ingested");
    if (result.fleetWallS > 0.0) {
      result.fleetThroughputRps =
          double(result.fleetReportsIngested) / result.fleetWallS;
    }
  }

  return result;
}

std::string replayJson(const ReplayEvalResult& result) {
  std::ostringstream out;
  out << "{\n";
  const auto num = [&](const char* key, double v, bool comma = true) {
    char line[128];
    std::snprintf(line, sizeof(line), "  \"%s\": %.6g%s\n", key, v,
                  comma ? "," : "");
    out << line;
  };
  const auto boolean = [&](const char* key, bool v) {
    out << "  \"" << key << "\": " << (v ? "true" : "false") << ",\n";
  };
  const auto text = [&](const char* key, const std::string& v) {
    out << "  \"" << key << "\": \"" << v << "\",\n";
  };
  boolean("live_ok", result.liveOk);
  num("live_error_cm", result.liveErrorCm);
  text("live_fix_digest", capture::digestHex(result.liveFixDigest));
  text("live_grade", result.liveGrade);
  num("live_reports_ingested", double(result.liveReportsIngested));
  num("reports_captured", double(result.reportsCaptured));
  num("chunks_captured", double(result.chunksCaptured));
  num("capture_bytes", double(result.captureBytes));
  num("bytes_per_report", result.bytesPerReport);
  boolean("capture_intact", result.captureIntact);
  boolean("replay_ok", result.replay1.ok);
  num("replay_error_cm", result.replay1.errorCm);
  text("replay_fix_digest", capture::digestHex(result.replay1.fixDigest));
  text("replay_fix_digest2", capture::digestHex(result.replay2.fixDigest));
  boolean("replay_deterministic", result.replayDeterministic);
  boolean("fix_parity_exact", result.fixParityExact);
  num("fix_parity_cm", result.fixParityCm);
  num("replay_wall_s", result.replayWallS);
  num("replay_throughput_rps", result.replayThroughputRps);
  num("chunks_corrupted", double(result.chunksCorrupted));
  num("corrupt_chunks_skipped", double(result.corruptStats.chunksSkipped));
  num("corrupt_bytes_resynced", double(result.corruptStats.bytesResynced));
  num("recovery_rate", result.recoveryRate);
  boolean("corrupt_replay_ok", result.corruptReplay.ok);
  num("corrupt_replay_error_cm", result.corruptReplay.errorCm);
  num("fleet_sessions", double(result.fleetSessions));
  num("fleet_shards", double(result.fleetShards));
  num("fleet_sessions_with_fix", double(result.fleetSessionsWithFix));
  num("fleet_fix_rate", result.fleetFixRate);
  num("fleet_reports_ingested", double(result.fleetReportsIngested));
  num("fleet_wall_s", result.fleetWallS);
  num("fleet_throughput_rps", result.fleetThroughputRps, false);
  out << "}\n";
  return out.str();
}

}  // namespace tagspin::eval
