// Experiment runner: repeated randomized localization trials over a
// simulated world, mirroring the paper's methodology (section VII-A): fix
// the rig deployment, move the reader to random positions in the
// surveillance region, repeat, and report error-distance statistics.
#pragma once

#include <functional>
#include <map>

#include "core/orientation_calibration.hpp"
#include "eval/metrics.hpp"
#include "rfid/report.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

namespace tagspin::eval {

/// Everything an estimator may use for one trial.  `truth` is available so
/// that *diagnostic* estimators can report oracle quantities; honest
/// estimators must not read it.
struct TrialContext {
  const sim::World& world;
  const rfid::ReportStream& reports;
  const std::map<rfid::Epc, core::OrientationModel>& orientationModels;
  geom::Vec3 truth;
  int antennaPort = 0;
};

using Epc = rfid::Epc;

/// An estimator returns its position estimate (z = rig-plane height for 2D
/// systems).  Throwing marks the trial as failed (counted, excluded from
/// statistics).
using Estimator = std::function<geom::Vec3(const TrialContext&)>;

struct RunnerConfig {
  sim::World world;          // rig deployment + environment (reader moved per trial)
  sim::Region region;        // where reader positions are sampled
  int trials = 50;
  double durationS = 30.0;   // interrogation time per trial
  bool threeD = false;       // sample reader z from the region?
  int antennaPort = 0;
  /// Run the orientation-calibration prelude for every rig tag and pass the
  /// fitted models to the estimator.
  bool calibrateOrientation = true;
  double calibrationDurationS = 60.0;
  uint64_t seed = 99;        // trial randomness (reader placement)
};

struct RunResult {
  std::vector<ErrorCm> errors;
  std::vector<geom::Vec3> truths;
  std::vector<geom::Vec3> estimates;
  int failedTrials = 0;
  dsp::Summary summary;  // of combined errors
};

/// Fit an orientation model for each rig tag in `world` via a center-spin
/// prelude (the paper's Step 1), reusing the world's environment.
std::map<Epc, core::OrientationModel> runCalibrationPrelude(
    const sim::World& world, double durationS);

RunResult runExperiment(const RunnerConfig& config,
                        const Estimator& estimator);

}  // namespace tagspin::eval
