#include "eval/chaos.hpp"

#include <algorithm>
#include <sstream>

#include "core/tagspin.hpp"
#include "dsp/stats.hpp"
#include "eval/estimators.hpp"
#include "eval/metrics.hpp"
#include "sim/interrogator.hpp"
#include "sim/rng.hpp"

namespace tagspin::eval {

core::RigHealthThresholds ChaosConfig::defaultHealthThresholds() {
  core::RigHealthThresholds t;
  // A contiguous 30%-of-spin dropout on a ~1.2-revolution interrogation
  // leaves ~0.64 arc coverage; demand 0.75 so such a rig is dropped while
  // mildly thinned rigs (random losses spread over the whole arc) survive.
  t.minArcCoverage = 0.75;
  return t;
}

sim::FaultConfig ChaosConfig::defaultFaultTemplate() {
  sim::FaultConfig f;
  f.frameBitFlipProb = 0.05;
  f.frameTruncateProb = 0.02;
  f.duplicateProb = 0.10;
  f.reorderProb = 0.05;
  f.timestampGlitchProb = 0.01;
  f.timestampGlitchMaxS = 0.5;
  f.clockDriftPpm = 20.0;
  f.epcBitErrorProb = 0.005;
  return f;
}

ChaosResult runChaosSweep(const ChaosConfig& config) {
  ChaosResult result;
  const sim::World baseWorld =
      sim::makeRigRowWorld(config.scenario, config.rigCount);
  core::TagspinSystem server =
      buildTagspinServer(baseWorld, {}, config.locator);
  server.setHealthThresholds(config.health);

  for (size_t pi = 0; pi < config.intensities.size(); ++pi) {
    const double intensity = config.intensities[pi];
    ChaosPoint point;
    point.intensity = intensity;
    point.trials = config.trialsPerPoint;
    std::vector<double> errors;

    // Per-point telemetry: a fresh registry per intensity keeps the curve's
    // granularity while routing every counter through the same machinery a
    // deployment scrapes (decode, fault and locator accounting included).
    obs::MetricsRegistry pointReg;
    server.setMetrics(&pointReg);

    for (int trial = 0; trial < config.trialsPerPoint; ++trial) {
      // Trial seeds depend on the trial alone, not on the intensity point:
      // every point sees the *same* reader positions and clean streams, so
      // the breakdown curve isolates the faults instead of re-rolling the
      // geometry (paired trials).
      sim::World world = baseWorld;
      std::mt19937_64 placeRng =
          sim::makeRng(sim::deriveSeed(config.seed, trial));
      const geom::Vec3 truth = config.region.sample(placeRng, false);
      sim::placeReaderAntenna(world, 0, truth);

      sim::InterrogateConfig ic;
      ic.durationS = config.durationS;
      ic.antennaPort = 0;
      ic.streamId = sim::deriveSeed(config.seed ^ 0x7121A1ULL, trial);
      const rfid::ReportStream clean = sim::interrogate(world, ic);

      sim::FaultConfig fc = config.faultsAtFull.scaled(intensity);
      fc.seed = sim::deriveSeed(config.seed ^ 0xFA017ULL,
                                pi * 100003ULL + trial);
      if (config.dropoutRig >= 0 &&
          config.dropoutRig < static_cast<int>(world.rigs.size()) &&
          config.dropoutFraction * intensity > 0.0) {
        sim::TagDropout d;
        d.epc = world.rigs[static_cast<size_t>(config.dropoutRig)].tag.epc;
        d.startFraction = 0.35;
        d.endFraction = 0.35 + config.dropoutFraction * intensity;
        fc.dropouts.push_back(d);
      }
      sim::FaultInjector injector(fc);

      const rfid::ReportStream faulted = injector.corruptReports(clean);
      const std::vector<uint8_t> wire = rfid::llrp::encodeStream(faulted);
      const std::vector<uint8_t> dirty = injector.corruptBytes(wire);

      rfid::llrp::DecodeStats ds;
      const rfid::ReportStream recovered =
          rfid::llrp::decodeStreamTolerant(dirty, &ds);
      rfid::llrp::publishDecodeStats(ds, pointReg);
      sim::publishFaultStats(injector.stats(), pointReg);

      const core::Result<core::ResilientFix2D> fix =
          server.tryLocate2D(recovered);
      if (fix) {
        ++point.fixes;
        if (fix->report.grade != core::FixGrade::kFull) ++point.degradedFixes;
        errors.push_back(
            errorCm(fix->fix.position, truth.xy()).combined);
      } else {
        ++point.failures[core::errorCodeName(fix.error().code)];
      }
    }

    // Read the point's accounting back from the registry so the CSV/JSON
    // columns come from the exact counters a live scrape would report.
    const obs::MetricsSnapshot snap = pointReg.snapshot();
    point.decode.framesDecoded = snap.counterValue("llrp.frames_decoded");
    point.decode.framesSkipped = snap.counterValue("llrp.frames_skipped");
    point.decode.framesRejected = snap.counterValue("llrp.frames_rejected");
    point.decode.bytesResynced = snap.counterValue("llrp.bytes_resynced");
    point.decode.bytesTotal = snap.counterValue("llrp.bytes_total");
    point.faults.duplicatesInserted =
        snap.counterValue("faults.duplicates_inserted");
    point.faults.reordersApplied = snap.counterValue("faults.reorders_applied");
    point.faults.timestampGlitches =
        snap.counterValue("faults.timestamp_glitches");
    point.faults.epcBitErrors = snap.counterValue("faults.epc_bit_errors");
    point.faults.reportsDropped = snap.counterValue("faults.reports_dropped");
    point.faults.framesBitFlipped =
        snap.counterValue("faults.frames_bit_flipped");
    point.faults.framesTruncated =
        snap.counterValue("faults.frames_truncated");
    point.faults.bitsFlipped = snap.counterValue("faults.bits_flipped");
    if (const obs::HistogramView* h = snap.histogram("span.fix2d")) {
      point.medianFixLatencyMs = h->p50 * 1e3;
    }
    server.setMetrics(nullptr);  // pointReg dies with this scope

    point.fixRate = point.trials > 0
                        ? static_cast<double>(point.fixes) / point.trials
                        : 0.0;
    if (!errors.empty()) {
      point.meanErrorCm = dsp::mean(errors);
      point.medianErrorCm = dsp::median(errors);
      point.p90ErrorCm = dsp::percentile(errors, 90.0);
    }
    if (intensity == 0.0) result.cleanMedianErrorCm = point.medianErrorCm;
    result.points.push_back(std::move(point));
  }
  return result;
}

std::string chaosCsv(const ChaosResult& result) {
  std::ostringstream out;
  out << "intensity,trials,fixes,fix_rate,mean_error_cm,median_error_cm,"
         "p90_error_cm,degraded_fixes,frames_decoded,frames_skipped,"
         "frames_rejected,bytes_resynced,bytes_total,duplicates,reorders,"
         "reports_dropped,frames_bit_flipped,frames_truncated,"
         "median_fix_latency_ms\n";
  for (const ChaosPoint& p : result.points) {
    out << p.intensity << ',' << p.trials << ',' << p.fixes << ','
        << p.fixRate << ',' << p.meanErrorCm << ',' << p.medianErrorCm << ','
        << p.p90ErrorCm << ',' << p.degradedFixes << ','
        << p.decode.framesDecoded << ',' << p.decode.framesSkipped << ','
        << p.decode.framesRejected << ',' << p.decode.bytesResynced << ','
        << p.decode.bytesTotal << ','
        << p.faults.duplicatesInserted << ',' << p.faults.reordersApplied
        << ',' << p.faults.reportsDropped << ',' << p.faults.framesBitFlipped
        << ',' << p.faults.framesTruncated << ','
        << p.medianFixLatencyMs << '\n';
  }
  return out.str();
}

std::string chaosJson(const ChaosResult& result) {
  std::ostringstream out;
  out << "{\n  \"clean_median_error_cm\": " << result.cleanMedianErrorCm
      << ",\n  \"points\": [\n";
  for (size_t i = 0; i < result.points.size(); ++i) {
    const ChaosPoint& p = result.points[i];
    out << "    {\"intensity\": " << p.intensity << ", \"trials\": "
        << p.trials << ", \"fixes\": " << p.fixes << ", \"fix_rate\": "
        << p.fixRate << ", \"mean_error_cm\": " << p.meanErrorCm
        << ", \"median_error_cm\": " << p.medianErrorCm
        << ", \"p90_error_cm\": " << p.p90ErrorCm
        << ", \"degraded_fixes\": " << p.degradedFixes
        << ", \"frames_decoded\": " << p.decode.framesDecoded
        << ", \"frames_skipped\": " << p.decode.framesSkipped
        << ", \"frames_rejected\": " << p.decode.framesRejected
        << ", \"bytes_resynced\": " << p.decode.bytesResynced
        << ", \"median_fix_latency_ms\": " << p.medianFixLatencyMs
        << ", \"failures\": {";
    size_t k = 0;
    for (const auto& [name, count] : p.failures) {
      if (k++ > 0) out << ", ";
      out << '"' << name << "\": " << count;
    }
    out << "}}" << (i + 1 < result.points.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace tagspin::eval
