// Error metrics for localization experiments.
//
// The paper's basis metric is the *error distance*: Euclidean distance
// between estimate and ground truth (section VII-A), reported per axis and
// combined, in centimetres.
#pragma once

#include <span>
#include <vector>

#include "dsp/stats.hpp"
#include "geom/vec.hpp"

namespace tagspin::eval {

/// One trial's error decomposition, all in centimetres.
struct ErrorCm {
  double x = 0.0;  // |x_est - x_true|
  double y = 0.0;
  double z = 0.0;
  double combined = 0.0;  // Euclidean distance
};

ErrorCm errorCm(const geom::Vec2& estimate, const geom::Vec2& truth);
ErrorCm errorCm(const geom::Vec3& estimate, const geom::Vec3& truth);

/// Column-wise accessors over a batch of trials.
std::vector<double> xErrors(std::span<const ErrorCm> errors);
std::vector<double> yErrors(std::span<const ErrorCm> errors);
std::vector<double> zErrors(std::span<const ErrorCm> errors);
std::vector<double> combinedErrors(std::span<const ErrorCm> errors);

/// Summary of a batch of combined errors (mean/std/90th/... in cm).
dsp::Summary summarizeCombined(std::span<const ErrorCm> errors);

}  // namespace tagspin::eval
