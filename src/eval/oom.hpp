// Resource-exhaustion evaluation: the systematic falsifier for every
// memory-pressure claim in the tree, the allocation twin of eval/crash.
//
// Three escalating attacks, all against sim::SimMemEnv (never the real
// allocator), all fully deterministic:
//
//  1. Exhaustive allocation-failure exploration.  Five workloads -- the
//     fleet at steady state, a session connect storm, a capture-replay
//     fan-out, a tracker ghost burst, and the shard checkpoint save path
//     -- are each probed once fault-free to count their reservation
//     boundaries, then re-run with an injected fault (deny / burst /
//     cliff / poison, cycled) at stride-sampled reservation indices.
//     After every injected run the environment's oracles and the
//     workload's own invariants are checked: no exception crossed the
//     workload boundary, accounting returned to zero (no leak), no
//     caller released bytes it never reserved (underflow) or grew past a
//     denial (budgetExceeded), the failure stayed isolated (sessions
//     quarantined <= denials injected; refused replay streams <= denials;
//     every other session/stream kept working), and once the injector is
//     disarmed and pressure cleared, reservations succeed again (full
//     recovery).
//
//  2. Seeded fault-schedule search.  Random multi-fault schedules are
//     thrown at the fleet steady-state path and checked against the same
//     invariants -- the combinations single-point exploration cannot
//     reach (a cliff landing mid-burst, poison during a trim retry).
//
//  3. Falsification proof.  A deliberately broken shed cache -- on a
//     denied reservation it "sheds" an entry it never admitted, the
//     classic release-without-reserve accounting bug -- is swept by the
//     same explorer; it must be caught (underflow oracle), and a failing
//     schedule found by search must shrink via ddmin to a minimal
//     replayable artifact.  A harness that cannot flag a planted bug
//     proves nothing by passing.
//
// Two paired gates ride along: the PARITY gate runs the fleet once with
// memory accounting off and once with a fault-free SimMemEnv attached and
// requires bit-identical fix digests (the seam itself must cost nothing);
// the PRESSURE arm sizes shard budgets to ~80% end-state utilization from
// a probe run and requires the fleet to keep >= 99% of sessions fixed
// while trimming under sustained pressure.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/mem_sim.hpp"

namespace tagspin::eval {

struct OomExploreConfig {
  uint64_t seed = 0x00A11C47ULL;

  /// Fleet-driven workloads (steady state, connect storm, checkpoint
  /// save): sessions, fault domains, and capture geometry.  Kept small --
  /// every sampled failure point replays the whole run.
  size_t fleetSessions = 6;
  size_t fleetShards = 2;
  double fleetRevolutions = 1.0;
  double tickS = 0.1;
  double settleS = 3.0;
  /// Ticks appended after the injector is disarmed mid-run -- the window
  /// the recovery invariants are measured over.
  double recoverS = 2.0;

  /// Replay fan-out workload: sessions sharing one capture, reports in it.
  size_t replaySessions = 8;
  size_t replayReports = 96;

  /// Tracker ghost burst: fixes fed (with periodic ghosts and gaps) and
  /// the bounded-history cap under test.
  size_t trackerFixes = 240;
  size_t trackerHistoryLimit = 64;

  /// Allocation-failure points sampled per workload (stride over the
  /// probe run's reservation count; fault kinds cycle deny / burst /
  /// cliff / poison).
  size_t pointsPerWorkload = 104;

  /// Seeded fault-schedule search over the fleet steady-state path.
  size_t scheduleRounds = 24;
  size_t maxScheduleFaults = 4;

  /// Run the planted release-without-reserve falsification arm.
  bool exploreBrokenCache = true;
  size_t brokenCacheOps = 64;
  size_t brokenSearchRounds = 200;

  /// Run the zero-injection parity gate (accounting off vs attached).
  bool runParityGate = true;

  /// Run the sustained-pressure arm: shard budgets sized to
  /// pressureBudgetFactor x the probe run's per-shard peak (1.25 => ~80%
  /// end-state utilization), fix rate must stay >= pressureMinFixRate.
  bool runPressureArm = true;
  double pressureBudgetFactor = 1.25;
  double pressureMinFixRate = 0.99;

  /// Violations kept with full detail (counts are always exact).
  size_t maxViolationDetails = 32;
};

/// One invariant violation, with everything needed to replay it.
struct OomViolation {
  std::string workload;
  /// Reservation index of the injected fault; -1 for schedule-driven or
  /// fault-free runs.
  int64_t failAtOp = -1;
  sim::MemFaultSchedule schedule;  // empty for fault-free runs
  std::string detail;
};

struct WorkloadOomStats {
  std::string name;
  uint64_t boundaries = 0;  // reservation boundaries in the probe run
  uint64_t points = 0;      // injected runs explored
  uint64_t denials = 0;     // total denials injected across the points
  uint64_t violations = 0;
};

struct OomEvalResult {
  std::vector<WorkloadOomStats> workloads;
  uint64_t totalBoundaries = 0;
  uint64_t totalPoints = 0;
  uint64_t totalViolations = 0;
  std::vector<OomViolation> violations;  // capped at maxViolationDetails

  // Fault-schedule search over the fleet steady-state path.
  uint64_t scheduleRuns = 0;
  uint64_t scheduleDenials = 0;
  uint64_t scheduleViolations = 0;

  // Zero-injection parity gate.
  bool parityChecked = false;
  bool parityBitIdentical = false;
  std::string parityBaselineDigest;  // accounting off
  std::string paritySeamDigest;      // SimMemEnv attached, no faults

  // Sustained-pressure arm.
  bool pressureChecked = false;
  double pressureFixRate = 0.0;
  double pressureUtilization = 0.0;  // peak / (shards * budget)
  uint64_t pressureShardBudgetBytes = 0;
  uint64_t pressureTrims = 0;
  uint64_t pressureEjections = 0;
  uint64_t pressureDeniedReserves = 0;
  bool pressureRecovered = false;  // accounting returned to zero after

  // Falsification arm (planted release-without-reserve cache).
  bool brokenCacheCaught = false;    // exploration flagged the underflow
  bool brokenScheduleFound = false;  // search found a failing schedule
  uint64_t brokenScheduleFaults = 0;
  uint64_t brokenShrunkFaults = 0;  // after delta debugging
  std::string brokenArtifactJson;   // minimal replayable artifact

  /// Zero violations on the correct components, parity bit-identical,
  /// pressure arm kept its fix rate, AND the planted bug was caught and
  /// shrunk (for every arm that is enabled).
  bool pass = false;
};

OomEvalResult runOomEval(const OomExploreConfig& config);

/// Full result as JSON (the BENCH_oom.json payload).
std::string oomJson(const OomEvalResult& result);

/// ddmin (eval/ddmin.hpp) specialization for memory-fault schedules.
sim::MemFaultSchedule shrinkMemSchedule(
    const sim::MemFaultSchedule& schedule,
    const std::function<bool(const sim::MemFaultSchedule&)>& fails);

}  // namespace tagspin::eval
