// Adapters wiring the baseline localizers into the experiment runner.
//
// Each adapter extracts exactly the measurements its system would have on
// real hardware: LandMarc sees per-reference RSSI, AntLoc sees max-RSSI
// bearings of a rotating antenna (beamwidth-limited), PinIt sees angular
// power fingerprints, BackPos sees averaged phases of calibrated anchors.
// None of them reads the trial's ground truth except AntLoc's bearing
// *sensor model* (truth + beamwidth noise), which simulates the antenna
// sweep we cannot run inside a recorded trace.
#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <random>

#include "baselines/antloc.hpp"
#include "baselines/backpos.hpp"
#include "baselines/landmarc.hpp"
#include "baselines/pinit.hpp"
#include "core/power_profile.hpp"
#include "core/preprocess.hpp"
#include "eval/estimators.hpp"
#include "geom/angles.hpp"
#include "sim/interrogator.hpp"
#include "sim/rng.hpp"

namespace tagspin::eval {

namespace {

/// Mean RSSI per static tag heard in the stream.
std::vector<baselines::RssiObservation> staticRssi(const TrialContext& ctx) {
  std::vector<baselines::RssiObservation> out;
  for (const sim::StaticTag& st : ctx.world.statics) {
    double acc = 0.0;
    size_t n = 0;
    for (const rfid::TagReport& r : ctx.reports) {
      if (r.epc == st.tag.epc) {
        acc += r.rssiDbm;
        ++n;
      }
    }
    if (n > 0) {
      out.push_back({st.position, acc / static_cast<double>(n)});
    }
  }
  return out;
}

uint64_t trialSeedOf(const TrialContext& ctx) {
  // Derive per-trial randomness from the truth position bits -- unique per
  // trial, stable per (trial, estimator) pair.
  const auto bits = [](double v) {
    uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  };
  return sim::splitmix64(bits(ctx.truth.x) ^ sim::splitmix64(bits(ctx.truth.y)) ^
                         bits(ctx.truth.z) ^ ctx.world.worldSeed);
}

}  // namespace

Estimator makeLandmarc(const baselines::LandmarcConfig& config) {
  return [config](const TrialContext& ctx) {
    const auto observations = staticRssi(ctx);
    return baselines::landmarcLocate(observations, config);
  };
}

Estimator makeAntLoc(const baselines::AntLocConfig& config) {
  return [config](const TrialContext& ctx) {
    // The rotating antenna only resolves references with solid SNR; use the
    // four strongest, like the original system's handful of tags.
    auto observations = staticRssi(ctx);
    std::sort(observations.begin(), observations.end(),
              [](const baselines::RssiObservation& a,
                 const baselines::RssiObservation& b) {
                return a.rssiDbm > b.rssiDbm;
              });
    observations.resize(std::min<size_t>(observations.size(), 4));

    std::mt19937_64 rng(sim::deriveSeed(trialSeedOf(ctx), 0xA7710CULL));
    std::normal_distribution<double> noise(0.0, config.bearingNoiseStd);
    std::vector<baselines::BearingObservation> bearings;
    bearings.reserve(observations.size());
    for (const baselines::RssiObservation& o : observations) {
      const double trueBearing = geom::azimuthOf(ctx.truth, o.position);
      bearings.push_back({o.position,
                          geom::wrapTwoPi(trueBearing + noise(rng))});
    }
    return baselines::antlocLocate(bearings);
  };
}

namespace {

/// PinIt's survey phase: angular power fingerprints from a grid of probe
/// reader positions, measured with the same spinning-tag aperture the
/// online phase uses.  Built once per world and shared across trials.
class PinItSurvey {
 public:
  static std::shared_ptr<const std::vector<baselines::Fingerprint>> get(
      const sim::World& world, double spacingM) {
    static std::mutex mu;
    static std::map<std::pair<uint64_t, long>,
                    std::shared_ptr<const std::vector<baselines::Fingerprint>>>
        cache;
    const std::pair<uint64_t, long> key{world.worldSeed,
                                        std::lround(spacingM * 1000.0)};
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    auto db = std::make_shared<std::vector<baselines::Fingerprint>>(
        build(world, spacingM));
    cache[key] = db;
    return db;
  }

  static std::vector<std::vector<double>> measureProfile(
      const sim::World& world, const rfid::ReportStream& reports) {
    // One angular power profile per horizontal rig aperture.
    std::vector<std::vector<double>> profiles;
    for (const sim::RigTag& rt : world.rigs) {
      if (rt.rig.plane != sim::SpinningRig::Plane::kHorizontal) continue;
      std::vector<core::Snapshot> snaps;
      try {
        snaps = core::extractSnapshots(reports, rt.tag.epc);
      } catch (const std::invalid_argument&) {
        continue;
      }
      if (snaps.size() < 8) continue;
      core::RigKinematics kin;
      kin.radiusM = rt.rig.radiusM;
      kin.omegaRadPerS = rt.rig.omegaRadPerS;
      kin.initialAngle = rt.rig.initialAngle;
      kin.tagPlaneOffset = rt.rig.tagPlaneOffset;
      core::ProfileConfig pc;
      pc.formula = core::ProfileFormula::kEnhancedR;
      const core::PowerProfile profile(snaps, kin, pc);
      std::vector<double> p = profile.sampleAzimuth(90);
      // PinIt fingerprints on the *dominant* arrival directions; soft-
      // threshold the noise floor so the DTW distance is driven by the
      // peaks, not by floor ripple integrated over all bins.  The profile
      // is a *power* profile: restore the absolute receive level (our SAR
      // profiles normalise it away) so the fingerprint resolves range as
      // well as direction.
      const double peak = *std::max_element(p.begin(), p.end());
      double meanRssi = 0.0;
      for (const core::Snapshot& s : snaps) meanRssi += s.rssiDbm;
      meanRssi /= static_cast<double>(snaps.size());
      const double amplitude = std::pow(10.0, (meanRssi + 50.0) / 40.0);
      for (double& v : p) v = std::max(0.0, v - 0.5 * peak) * amplitude;
      profiles.push_back(std::move(p));
    }
    if (profiles.empty()) {
      throw std::runtime_error("PinIt: no usable aperture in the stream");
    }
    return profiles;
  }

 private:
  static std::vector<baselines::Fingerprint> build(const sim::World& world,
                                                   double spacingM) {
    std::vector<baselines::Fingerprint> db;
    const sim::Region region{};
    for (double x = -region.halfWidthX; x <= region.halfWidthX + 1e-9;
         x += spacingM) {
      for (double y = region.yMin; y <= region.yMax + 1e-9; y += spacingM) {
        sim::World probe = world;
        const double z =
            probe.rigs.empty() ? 0.0 : probe.rigs[0].rig.center.z;
        sim::placeReaderAntenna(probe, 0, {x, y, z});
        sim::InterrogateConfig ic;
        ic.durationS = 25.0;
        ic.streamId = 0x5A17EULL + static_cast<uint64_t>(db.size());
        const rfid::ReportStream reports = sim::interrogate(probe, ic);
        try {
          db.push_back({{x, y, z}, measureProfile(probe, reports)});
        } catch (const std::exception&) {
          // unreadable grid point (out of range); skip
        }
      }
    }
    return db;
  }
};

}  // namespace

Estimator makePinIt(const baselines::PinItConfig& config) {
  return [config](const TrialContext& ctx) {
    const auto db = PinItSurvey::get(ctx.world, 0.4);
    const std::vector<std::vector<double>> measured =
        PinItSurvey::measureProfile(ctx.world, ctx.reports);
    return baselines::pinitLocate(*db, measured, config);
  };
}

Estimator makeBackPos(const baselines::BackPosConfig& config) {
  return [config](const TrialContext& ctx) {
    // Phase-calibrated anchors: theta_div is surveyed offline; a residual
    // calibration error remains.
    std::mt19937_64 rng(sim::deriveSeed(trialSeedOf(ctx), 0xBAC0ULL));
    std::normal_distribution<double> calErr(0.0, config.anchorCalibrationStd);
    const double antennaPhase =
        ctx.world.reader.antenna(ctx.antennaPort).cableAndPortPhase;

    // Use each anchor's most-read channel so all pair differences compare
    // phases of a common wavelength per anchor.
    struct Acc {
      std::map<int, std::vector<double>> phasesByChannel;
      std::map<int, double> lambdaByChannel;
      double bestRssi = -1e9;
    };
    std::map<rfid::Epc, Acc> accs;
    for (const rfid::TagReport& r : ctx.reports) {
      Acc& a = accs[r.epc];
      a.phasesByChannel[r.channelIndex].push_back(r.phaseRad);
      a.lambdaByChannel[r.channelIndex] = r.wavelengthM();
      a.bestRssi = std::max(a.bestRssi, r.rssiDbm);
    }

    std::vector<std::pair<double, baselines::AnchorPhase>> candidates;
    for (const sim::StaticTag& st : ctx.world.statics) {
      const auto it = accs.find(st.tag.epc);
      if (it == accs.end()) continue;
      // Pick the channel with the most reads.
      const auto best = std::max_element(
          it->second.phasesByChannel.begin(),
          it->second.phasesByChannel.end(),
          [](const auto& a, const auto& b) {
            return a.second.size() < b.second.size();
          });
      if (best->second.size() < 3) continue;
      baselines::AnchorPhase anchor;
      anchor.position = st.position;
      anchor.lambdaM = it->second.lambdaByChannel.at(best->first);
      const double thetaDiv = st.tag.hardwarePhase + antennaPhase;
      anchor.phase = geom::wrapTwoPi(geom::circularMean(best->second) -
                                     thetaDiv + calErr(rng));
      candidates.push_back({it->second.bestRssi, anchor});
    }
    // The original BackPos had four antennas forming one compact array and
    // located targets relative to it; the faithful dual is a *cluster* of
    // anchors (the strongest-heard anchor plus its nearest neighbours), not
    // anchors spread across the whole room -- a spread constellation would
    // hand the adaptation far better hyperbola geometry than the published
    // system ever had.
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<baselines::AnchorPhase> anchors;
    const size_t wantAnchors =
        static_cast<size_t>(std::max(config.anchorCount, 3));
    if (!candidates.empty()) {
      const geom::Vec3 arrayCenter = candidates[0].second.position;
      std::sort(candidates.begin(), candidates.end(),
                [&](const auto& a, const auto& b) {
                  return geom::distance(a.second.position, arrayCenter) <
                         geom::distance(b.second.position, arrayCenter);
                });
      // Within the array aperture, prefer the outermost anchors (largest
      // baseline first keeps the hyperbolae well conditioned).
      std::vector<const baselines::AnchorPhase*> inAperture;
      for (const auto& c : candidates) {
        if (geom::distance(c.second.position, arrayCenter) <=
            config.arrayApertureM) {
          inAperture.push_back(&c.second);
        }
      }
      std::sort(inAperture.begin(), inAperture.end(),
                [&](const baselines::AnchorPhase* a,
                    const baselines::AnchorPhase* b) {
                  return geom::distance(a->position, arrayCenter) >
                         geom::distance(b->position, arrayCenter);
                });
      anchors.push_back(candidates[0].second);
      for (const baselines::AnchorPhase* a : inAperture) {
        if (anchors.size() >= wantAnchors) break;
        if (geom::distance(a->position, arrayCenter) < 1e-9) continue;
        anchors.push_back(*a);
      }
    }

    const sim::Region region{};
    const baselines::SearchBounds bounds{-region.halfWidthX,
                                         region.halfWidthX, region.yMin,
                                         region.yMax};
    const geom::Vec2 fix = baselines::backposLocate(anchors, bounds, config);
    const double z = ctx.world.rigs.empty()
                         ? (ctx.world.statics.empty()
                                ? 0.0
                                : ctx.world.statics[0].position.z)
                         : ctx.world.rigs[0].rig.center.z;
    return geom::Vec3{fix.x, fix.y, z};
  };
}

}  // namespace tagspin::eval
