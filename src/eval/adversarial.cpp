#include "eval/adversarial.hpp"

#include <algorithm>
#include <random>
#include <set>
#include <sstream>

#include "core/tagspin.hpp"
#include "dsp/stats.hpp"
#include "eval/estimators.hpp"
#include "eval/metrics.hpp"
#include "sim/interrogator.hpp"
#include "sim/rng.hpp"

namespace tagspin::eval {

namespace {

/// Replace ~`fraction` of each corrupted tag's reports with reads of the
/// same tag taken from the ghost reader position.  Report-level Bernoulli
/// mixing (rather than a contiguous block) models a persistent reflector:
/// the ghost energy is spread over the whole spin, so the corrupted rig's
/// spectrum grows a full-strength second lobe instead of losing aperture.
rfid::ReportStream mixGhostReports(const rfid::ReportStream& clean,
                                   const rfid::ReportStream& ghost,
                                   const std::set<rfid::Epc>& corrupted,
                                   double fraction, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  rfid::ReportStream mixed;
  mixed.reserve(clean.size());
  for (const rfid::TagReport& r : clean) {
    if (corrupted.count(r.epc) > 0 && unif(rng) < fraction) continue;
    mixed.push_back(r);
  }
  for (const rfid::TagReport& r : ghost) {
    if (corrupted.count(r.epc) > 0 && unif(rng) < fraction) {
      mixed.push_back(r);
    }
  }
  std::sort(mixed.begin(), mixed.end(),
            [](const rfid::TagReport& a, const rfid::TagReport& b) {
              return a.timestampS < b.timestampS;
            });
  return mixed;
}

/// Ghost position for a trial: sampled from the same region but forced
/// away from the truth, so the wrong lobe is angularly distinct.
geom::Vec3 sampleGhost(const sim::Region& region, const geom::Vec3& truth,
                       std::mt19937_64& rng) {
  geom::Vec3 ghost = region.sample(rng, false);
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (geom::distance(ghost.xy(), truth.xy()) >= 1.0) break;
    ghost = region.sample(rng, false);
  }
  return ghost;
}

std::string caseLabel(const AdversarialCase& c) {
  std::ostringstream out;
  out << c.corruptedRigs << "bad_g" << c.ghostFraction << "_s"
      << c.scattererCount;
  return out.str();
}

}  // namespace

std::vector<AdversarialCase> AdversarialConfig::defaultCases() {
  return {
      {0, 0.6, 3},  // clean reference: robust must cost nothing
      {1, 0.6, 3},  // the acceptance case: 1 of 4 spins ghost-dominated
      {2, 0.6, 3},  // half the majority gone
      {1, 0.3, 3},  // weak reflector: ghost lobe below the true lobe
      {1, 0.75, 3},  // strong reflector: deep into quarantine territory
      {1, 0.6, 6},  // interferer clutter up
      {1, 0.6, 9},
  };
}

core::LocatorConfig AdversarialConfig::defaultBaseline() {
  core::LocatorConfig config;
  config.robust.diagnostics = false;
  config.robust.consensus = false;
  config.robust.bootstrap = false;
  return config;
}

core::LocatorConfig AdversarialConfig::defaultRobust() {
  core::LocatorConfig config;
  config.robust.diagnostics = true;
  config.robust.consensus = true;
  config.robust.bootstrap = true;
  return config;
}

AdversarialResult runAdversarialSweep(const AdversarialConfig& config) {
  AdversarialResult result;
  const std::vector<AdversarialCase> cases =
      config.cases.empty() ? AdversarialConfig::defaultCases() : config.cases;

  for (size_t pi = 0; pi < cases.size(); ++pi) {
    const AdversarialCase& cs = cases[pi];
    sim::ScenarioConfig scenario = config.scenario;
    scenario.scattererCount = cs.scattererCount;
    const sim::World baseWorld =
        sim::makeRigRowWorld(scenario, config.rigCount);

    core::TagspinSystem baseline =
        buildTagspinServer(baseWorld, {}, config.baseline);
    core::TagspinSystem robust =
        buildTagspinServer(baseWorld, {}, config.robust);
    baseline.setHealthThresholds(config.health);
    robust.setHealthThresholds(config.health);

    std::set<rfid::Epc> corrupted;
    for (int i = 0; i < cs.corruptedRigs &&
                    i < static_cast<int>(baseWorld.rigs.size());
         ++i) {
      corrupted.insert(baseWorld.rigs[static_cast<size_t>(i)].tag.epc);
    }

    AdversarialPoint point;
    point.which = cs;
    point.trials = config.trialsPerPoint;
    double inlierSum = 0.0;
    double areaSum = 0.0;

    for (int trial = 0; trial < config.trialsPerPoint; ++trial) {
      // Reader placement and the clean stream depend on the trial alone so
      // every case sees the same geometry (paired across cases AND between
      // the two estimators within a trial).
      sim::World world = baseWorld;
      std::mt19937_64 placeRng =
          sim::makeRng(sim::deriveSeed(config.seed, trial));
      const geom::Vec3 truth = config.region.sample(placeRng, false);
      const geom::Vec3 ghostPos =
          sampleGhost(config.region, truth, placeRng);

      sim::InterrogateConfig ic;
      ic.durationS = config.durationS;
      ic.antennaPort = 0;
      ic.streamId = sim::deriveSeed(config.seed ^ 0xC1EA7ULL, trial);
      sim::placeReaderAntenna(world, 0, truth);
      const rfid::ReportStream clean = sim::interrogate(world, ic);

      rfid::ReportStream mixed = clean;
      if (!corrupted.empty() && cs.ghostFraction > 0.0) {
        sim::World ghostWorld = baseWorld;
        sim::placeReaderAntenna(ghostWorld, 0, ghostPos);
        sim::InterrogateConfig gic = ic;
        gic.streamId = sim::deriveSeed(config.seed ^ 0x6057ULL, trial);
        const rfid::ReportStream ghost = sim::interrogate(ghostWorld, gic);
        std::mt19937_64 mixRng = sim::makeRng(sim::deriveSeed(
            config.seed ^ 0x313ULL, pi * 100003ULL + trial));
        mixed = mixGhostReports(clean, ghost, corrupted, cs.ghostFraction,
                                mixRng);
      }

      const core::Result<core::ResilientFix2D> base =
          baseline.tryLocate2D(mixed);
      if (base) {
        ++point.baselineFixes;
        point.baselineErrorsCm.push_back(
            errorCm(base->fix.position, truth.xy()).combined);
      }

      const core::Result<core::ResilientFix2D> rob = robust.tryLocate2D(mixed);
      if (rob) {
        ++point.robustFixes;
        point.robustErrorsCm.push_back(
            errorCm(rob->fix.position, truth.xy()).combined);
        inlierSum += rob->fix.estimation.inlierFraction;
        for (const core::RigHealth& h : rob->report.rigHealth) {
          if (h.spin.verdict == robust::SpinVerdict::kSuspect) {
            ++point.suspectSpins;
          } else if (h.spin.verdict == robust::SpinVerdict::kQuarantine) {
            ++point.quarantinedSpins;
          }
        }
        if (rob->fix.estimation.ellipse) {
          ++point.ellipseTrials;
          if (rob->fix.estimation.ellipse->contains(truth.xy())) {
            ++point.ellipseCovered;
          }
          areaSum += rob->fix.estimation.ellipse->areaM2() * 1e4;
        }
      } else {
        ++point.robustFailures[core::errorCodeName(rob.error().code)];
      }
    }

    if (point.robustFixes > 0) {
      point.meanInlierFraction = inlierSum / point.robustFixes;
    }
    if (point.ellipseTrials > 0) {
      point.meanEllipseAreaCm2 = areaSum / point.ellipseTrials;
    }
    if (!point.baselineErrorsCm.empty()) {
      point.baselineMedianCm = dsp::median(point.baselineErrorsCm);
      point.baselineP90Cm = dsp::percentile(point.baselineErrorsCm, 90.0);
    }
    if (!point.robustErrorsCm.empty()) {
      point.robustMedianCm = dsp::median(point.robustErrorsCm);
      point.robustP90Cm = dsp::percentile(point.robustErrorsCm, 90.0);
    }
    result.points.push_back(std::move(point));
  }
  return result;
}

std::string adversarialCsv(const AdversarialResult& result) {
  std::ostringstream out;
  out << "corrupted_rigs,ghost_fraction,scatterers,trials,baseline_fixes,"
         "robust_fixes,baseline_median_cm,baseline_p90_cm,robust_median_cm,"
         "robust_p90_cm,mean_inlier_fraction,suspect_spins,"
         "quarantined_spins,ellipse_trials,ellipse_covered,"
         "mean_ellipse_area_cm2\n";
  for (const AdversarialPoint& p : result.points) {
    out << p.which.corruptedRigs << ',' << p.which.ghostFraction << ','
        << p.which.scattererCount << ',' << p.trials << ','
        << p.baselineFixes << ',' << p.robustFixes << ','
        << p.baselineMedianCm << ',' << p.baselineP90Cm << ','
        << p.robustMedianCm << ',' << p.robustP90Cm << ','
        << p.meanInlierFraction << ',' << p.suspectSpins << ','
        << p.quarantinedSpins << ',' << p.ellipseTrials << ','
        << p.ellipseCovered << ',' << p.meanEllipseAreaCm2 << '\n';
  }
  return out.str();
}

std::string adversarialJson(const AdversarialResult& result) {
  std::ostringstream out;
  out << "{\n  \"points\": [\n";
  for (size_t i = 0; i < result.points.size(); ++i) {
    const AdversarialPoint& p = result.points[i];
    out << "    {\"corrupted_rigs\": " << p.which.corruptedRigs
        << ", \"ghost_fraction\": " << p.which.ghostFraction
        << ", \"scatterers\": " << p.which.scattererCount
        << ", \"trials\": " << p.trials
        << ", \"baseline_fixes\": " << p.baselineFixes
        << ", \"robust_fixes\": " << p.robustFixes
        << ", \"baseline_median_cm\": " << p.baselineMedianCm
        << ", \"baseline_p90_cm\": " << p.baselineP90Cm
        << ", \"robust_median_cm\": " << p.robustMedianCm
        << ", \"robust_p90_cm\": " << p.robustP90Cm
        << ", \"mean_inlier_fraction\": " << p.meanInlierFraction
        << ", \"suspect_spins\": " << p.suspectSpins
        << ", \"quarantined_spins\": " << p.quarantinedSpins
        << ", \"ellipse_trials\": " << p.ellipseTrials
        << ", \"ellipse_covered\": " << p.ellipseCovered
        << ", \"mean_ellipse_area_cm2\": " << p.meanEllipseAreaCm2
        << ", \"robust_failures\": {";
    size_t k = 0;
    for (const auto& [name, count] : p.robustFailures) {
      if (k++ > 0) out << ", ";
      out << '"' << name << "\": " << count;
    }
    out << "}}" << (i + 1 < result.points.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string adversarialCdfCsv(const AdversarialResult& result) {
  std::ostringstream out;
  out << "case,estimator,error_cm,cdf\n";
  const auto emit = [&](const AdversarialPoint& p, const char* estimator,
                        std::vector<double> errors) {
    std::sort(errors.begin(), errors.end());
    for (size_t i = 0; i < errors.size(); ++i) {
      out << caseLabel(p.which) << ',' << estimator << ',' << errors[i]
          << ',' << static_cast<double>(i + 1) / errors.size() << '\n';
    }
  };
  for (const AdversarialPoint& p : result.points) {
    emit(p, "least_squares", p.baselineErrorsCm);
    emit(p, "consensus", p.robustErrorsCm);
  }
  return out.str();
}

}  // namespace tagspin::eval
