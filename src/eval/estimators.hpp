// Estimator adapters: wire TrialContext into Tagspin and the baseline
// localizers so they can be swapped inside runExperiment.
#pragma once

#include "core/config.hpp"
#include "eval/runner.hpp"

namespace tagspin::baselines {
struct LandmarcConfig;
struct AntLocConfig;
struct PinItConfig;
struct BackPosConfig;
}  // namespace tagspin::baselines

namespace tagspin::core {
class TagspinSystem;
}

namespace tagspin::eval {

/// Build a localization server wired to every rig of `world`, with the
/// given per-tag orientation models installed.  Shared by the estimator
/// adapters, the bench binaries and the examples.
core::TagspinSystem buildTagspinServer(
    const sim::World& world,
    const std::map<Epc, core::OrientationModel>& orientationModels,
    const core::LocatorConfig& config);

/// Tagspin 2D: register every horizontal rig, install the prelude models,
/// locate, return (x, y, rig-plane z).
Estimator makeTagspin2D(const core::LocatorConfig& config = {});

/// Tagspin 3D: as above but with the spatial spectrum and z recovery.
Estimator makeTagspin3D(const core::LocatorConfig& config = {});

/// Baseline adapters (declared here, defined in estimators_baselines.cpp,
/// which links against tagspin_baselines).
Estimator makeLandmarc(const baselines::LandmarcConfig& config);
Estimator makeAntLoc(const baselines::AntLocConfig& config);
Estimator makePinIt(const baselines::PinItConfig& config);
Estimator makeBackPos(const baselines::BackPosConfig& config);

}  // namespace tagspin::eval
