// Soak harness: drives the supervised session runtime through a scripted
// sequence of transport outages (disconnects, stalls, floods) over a long
// spin capture, plus an optional kill -9 + restore mid-run, and measures
// what production cares about:
//  * does every outage recover, and how fast (time-to-recover per event);
//  * how many reports the outages cost;
//  * how far the end-to-end 2D fix drifts from an uninterrupted baseline
//    on the *same* clean stream (paired: same world, same reader truth,
//    same interrogation seed);
//  * whether a killed process resumes from its checkpoint without
//    re-acquiring already-captured revolutions.
//
// The chaos harness (eval/chaos) rots the *bytes*; this rots the
// *connection*.  Together they cover the ingestion stack's failure plane.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "runtime/queue.hpp"
#include "runtime/supervisor.hpp"
#include "sim/flaky_transport.hpp"
#include "sim/scenario.hpp"

namespace tagspin::eval {

struct SoakConfig {
  sim::ScenarioConfig scenario;
  sim::Region region;
  int rigCount = 3;
  /// Capture length in rig revolutions (10 = the standard script's block).
  double revolutions = 10.0;
  /// Supervisor tick cadence, simulated seconds.
  double tickS = 0.05;
  /// Extra run-out after the stream ends (lets late recoveries drain).
  double settleS = 2.0;

  runtime::SupervisorConfig supervisor = defaultSupervisorConfig();
  double connectDelayS = 0.05;

  /// Outage script; empty -> sim::standardOutageScript over the span.
  std::vector<sim::OutageEvent> events;

  /// Kill -9 the runtime at this fraction of the capture and restart from
  /// the last checkpoint (<= 0 disables).
  double killAtFraction = 0.55;
  /// Checkpoint file path ("" -> "soak_checkpoint.ckpt" in the CWD).
  std::string checkpointPath;

  uint64_t seed = 0x50AC17ULL;

  /// Telemetry sinks shared by every runtime object the soak creates
  /// (including across the kill/restore -- the registry outlives the
  /// supervisor, so counters are lifetime totals with no reset-folding).
  /// Null -> the run uses internal sinks; either way SoakResult carries
  /// the final snapshot and its exports.
  obs::MetricsRegistry* metrics = nullptr;
  obs::EventJournal* journal = nullptr;

  static runtime::SupervisorConfig defaultSupervisorConfig();
};

struct OutageRecovery {
  sim::OutageEvent event;
  bool recovered = false;
  double recoveredAtS = -1.0;
  /// From the event's end to the first newly ingested report.
  double timeToRecoverS = -1.0;
};

struct SoakResult {
  // Paired accuracy.
  bool baselineOk = false;
  bool soakOk = false;
  double baselineErrorCm = 0.0;
  double soakErrorCm = 0.0;
  double errorRatio = 0.0;  // soak / baseline (0 when either failed)
  std::string soakFailure;  // error-code name when !soakOk
  std::string soakGrade;    // fix grade when soakOk

  // Outage recovery (disconnects and stalls; floods never pause ingest).
  std::vector<OutageRecovery> recoveries;
  bool allRecovered = false;
  double maxTimeToRecoverS = 0.0;
  double meanTimeToRecoverS = 0.0;

  // Stream accounting.
  size_t cleanReports = 0;
  uint64_t reportsSeen = 0;
  uint64_t reportsIngested = 0;
  uint64_t framesLostWhileDown = 0;
  double reportLossFraction = 0.0;

  // Kill/restore.
  bool killed = false;
  double killAtS = 0.0;
  size_t snapshotsAtKill = 0;
  size_t snapshotsRestored = 0;
  double checkpointAgeAtKillS = 0.0;  // reports lost to the save cadence
  double revolutionsReacquired = 0.0;
  bool restoreOk = false;

  // Runtime accounting (cumulative across the restart).
  uint64_t checkpointsSaved = 0;
  uint64_t sessionsRestarted = 0;
  uint64_t sessionDisconnects = 0;
  uint64_t watchdogNoReport = 0;
  uint64_t watchdogStuckClock = 0;
  uint64_t duplicatesSuppressed = 0;
  runtime::QueueStats queue;

  // Full telemetry at the end of the run: the registry snapshot plus its
  // two export renderings (what `tagspin_cli serve` would have dumped).
  obs::MetricsSnapshot telemetry;
  std::string telemetryJson;
  std::string telemetryPrometheus;
};

SoakResult runSoak(const SoakConfig& config);

/// One-line-per-event CSV of the recovery table.
std::string soakCsv(const SoakResult& result);
/// Full result as JSON for plotting/CI trending.
std::string soakJson(const SoakResult& result);

}  // namespace tagspin::eval
