#include "rf/frequency_plan.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tagspin::rf {

FrequencyPlan FrequencyPlan::china920() {
  return FrequencyPlan(mhz(920.625), mhz(0.25), 16);
}

FrequencyPlan FrequencyPlan::fixed(double hz) {
  return FrequencyPlan(hz, 0.0, 1);
}

FrequencyPlan::FrequencyPlan(double firstCenterHz, double spacingHz,
                             int channelCount) {
  if (channelCount <= 0) {
    throw std::invalid_argument("FrequencyPlan: channelCount must be > 0");
  }
  centersHz_.reserve(static_cast<size_t>(channelCount));
  for (int c = 0; c < channelCount; ++c) {
    centersHz_.push_back(firstCenterHz + spacingHz * c);
  }
}

double FrequencyPlan::frequencyHz(int channel) const {
  if (channel < 0 || channel >= channelCount()) {
    throw std::out_of_range("FrequencyPlan: bad channel index");
  }
  return centersHz_[static_cast<size_t>(channel)];
}

double FrequencyPlan::wavelengthM(int channel) const {
  return wavelength(frequencyHz(channel));
}

double FrequencyPlan::centerFrequencyHz() const {
  return (centersHz_.front() + centersHz_.back()) / 2.0;
}

double FrequencyPlan::minWavelengthM() const {
  return wavelength(centersHz_.back());
}

double FrequencyPlan::maxWavelengthM() const {
  return wavelength(centersHz_.front());
}

HoppingSequence::HoppingSequence(const FrequencyPlan& plan,
                                 double dwellSeconds, uint64_t seed)
    : channelCount_(plan.channelCount()), dwellSeconds_(dwellSeconds) {
  if (dwellSeconds <= 0.0) {
    throw std::invalid_argument("HoppingSequence: dwell must be > 0");
  }
  sequence_.resize(static_cast<size_t>(channelCount_));
  std::iota(sequence_.begin(), sequence_.end(), 0);
  std::mt19937_64 rng(seed);
  std::shuffle(sequence_.begin(), sequence_.end(), rng);
}

int HoppingSequence::channelAt(double t) const {
  const auto slot = static_cast<long long>(std::floor(t / dwellSeconds_));
  const long long n = channelCount_;
  const long long idx = ((slot % n) + n) % n;
  return sequence_[static_cast<size_t>(idx)];
}

}  // namespace tagspin::rf
