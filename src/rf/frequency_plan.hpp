// The China UHF RFID frequency plan used by the paper's testbed.
//
// The Impinj reader in the paper operates in the 920.5-924.5 MHz band (legal
// UHF band in China): 16 channels of 250 kHz, centers 920.625..924.375 MHz,
// wavelengths ~32.4-32.6 cm.  Readers hop pseudo-randomly between channels;
// each LLRP tag report carries the channel index so the localization server
// knows the wavelength of every snapshot.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "rf/constants.hpp"

namespace tagspin::rf {

class FrequencyPlan {
 public:
  /// China 920.5-924.5 MHz plan: 16 channels, 250 kHz spacing, first center
  /// at 920.625 MHz.
  static FrequencyPlan china920();

  /// A single-channel plan (no hopping); convenient for controlled tests.
  static FrequencyPlan fixed(double hz);

  FrequencyPlan(double firstCenterHz, double spacingHz, int channelCount);

  int channelCount() const { return static_cast<int>(centersHz_.size()); }
  double frequencyHz(int channel) const;
  double wavelengthM(int channel) const;
  double centerFrequencyHz() const;  // band center

  /// Lowest / highest wavelength across the plan (band edges).
  double minWavelengthM() const;
  double maxWavelengthM() const;

 private:
  std::vector<double> centersHz_;
};

/// Pseudo-random channel hopping with a dwell time, as mandated by the
/// Chinese regulation (readers change channel every ~2 s).  Deterministic
/// given the seed.
class HoppingSequence {
 public:
  HoppingSequence(const FrequencyPlan& plan, double dwellSeconds,
                  uint64_t seed);

  /// Channel in use at absolute time t (seconds).
  int channelAt(double t) const;

 private:
  int channelCount_;
  double dwellSeconds_;
  std::vector<int> sequence_;  // precomputed hop order, cycled
};

}  // namespace tagspin::rf
