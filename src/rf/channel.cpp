#include "rf/channel.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "geom/angles.hpp"
#include "rf/constants.hpp"

namespace tagspin::rf {

namespace {
constexpr double kFourPi = 4.0 * std::numbers::pi;
constexpr double kMinDistance = 1e-3;  // clamp to 1 mm to avoid singularities
}  // namespace

BackscatterChannel::BackscatterChannel(ChannelConfig config,
                                       std::vector<Scatterer> scatterers)
    : config_(config), scatterers_(std::move(scatterers)) {
  if (config_.phaseNoiseStd < 0.0) {
    throw std::invalid_argument("BackscatterChannel: negative phase noise");
  }
  if (config_.pathLossExponent <= 0.0) {
    throw std::invalid_argument("BackscatterChannel: bad path loss exponent");
  }
}

std::complex<double> BackscatterChannel::complexGain(const geom::Vec3& reader,
                                                     const geom::Vec3& tag,
                                                     double lambdaM) const {
  const double d = std::max(geom::distance(reader, tag), kMinDistance);
  const double k = 2.0 * std::numbers::pi / lambdaM;
  // LOS: round trip 2d, unit amplitude.
  std::complex<double> h = std::polar(1.0, -k * 2.0 * d);
  if (config_.multipathEnabled) {
    for (const Scatterer& s : scatterers_) {
      const double viaScatterer =
          geom::distance(reader, s.position) + geom::distance(s.position, tag);
      // The echo leaves via the scatterer on one leg (down- or uplink); both
      // leg combinations appear, each attenuated by the extra spreading.
      const double excess = viaScatterer - d;
      const double total = 2.0 * d + excess;  // one reflected leg
      const double spread = d / std::max(viaScatterer, kMinDistance);
      const double amp = s.reflectivity * spread;
      h += 2.0 * amp * std::polar(1.0, -k * total);  // both leg orders
      // Double bounce (reflected on both legs) -- weaker by reflectivity^2.
      h += amp * s.reflectivity * std::polar(1.0, -k * (2.0 * viaScatterer));
    }
  }
  return h;
}

double BackscatterChannel::meanRssiDbm(double distanceM, double lambdaM,
                                       double readerGainLinear,
                                       double tagGainLinear,
                                       double txPowerDbm) const {
  const double d = std::max(distanceM, kMinDistance);
  // One-way loss with generalized exponent, referenced to free space at 1 m.
  const double fspl1m = 20.0 * std::log10(kFourPi / lambdaM);
  const double oneWayDb =
      fspl1m + 10.0 * config_.pathLossExponent * std::log10(d);
  return txPowerDbm + 2.0 * toDb(readerGainLinear) +
         2.0 * toDb(tagGainLinear) - config_.tagModulationLossDb -
         2.0 * oneWayDb;
}

ChannelSample BackscatterChannel::observe(
    const geom::Vec3& readerPos, const geom::Vec3& tagPos, double lambdaM,
    double thetaDiv, double orientationPhase, double readerGainLinear,
    double tagGainLinear, double txPowerDbm, std::mt19937_64& rng) const {
  const double d = std::max(geom::distance(readerPos, tagPos), kMinDistance);
  const std::complex<double> h = complexGain(readerPos, tagPos, lambdaM);

  // The reader reports theta = (4*pi/lambda)*d + theta_div (Eqn. 1); with
  // multipath the geometric term becomes -arg(h).
  std::normal_distribution<double> phaseNoise(0.0, config_.phaseNoiseStd);
  double noise = phaseNoise(rng);
  if (config_.phaseOutlierProb > 0.0) {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(rng) < config_.phaseOutlierProb) {
      std::uniform_real_distribution<double> burst(-std::numbers::pi,
                                                   std::numbers::pi);
      noise = burst(rng);
    }
  }
  const double phase = geom::wrapTwoPi(-std::arg(h) + thetaDiv +
                                       orientationPhase + noise);

  std::normal_distribution<double> rssiNoise(0.0, config_.rssiNoiseStdDb);
  const double fading = 20.0 * std::log10(std::max(std::abs(h), 1e-6));
  const double rssi = meanRssiDbm(d, lambdaM, readerGainLinear, tagGainLinear,
                                  txPowerDbm) +
                      fading + rssiNoise(rng);

  ChannelSample sample;
  sample.phase = phase;
  sample.rssiDbm = rssi;
  sample.readable = rssi >= config_.readerSensitivityDbm;
  return sample;
}

}  // namespace tagspin::rf
