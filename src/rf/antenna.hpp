// Antenna gain patterns.
//
// Reader side: the paper uses four circularly polarised Yeon patch antennas
// (~23x23x3 cm).  We model a patch as a cos^n pattern about boresight with a
// back-lobe floor.  Tag side: a linear dipole-like pattern over the tag's
// orientation angle rho (angle between the tag plane and the tag->reader
// line); when the tag plane is perpendicular to the incident field
// (rho = pi/2 + k*pi) the tag harvests the most energy -- this drives the
// sampling-density effect of Fig. 4(b).
#pragma once

#include <cmath>
#include <memory>

namespace tagspin::rf {

/// Gain pattern over the angle from boresight, linear scale (1.0 = 0 dBi
/// relative to the pattern's own peak).
class GainPattern {
 public:
  virtual ~GainPattern() = default;
  /// offBoresight in radians, any value (treated modulo the circle).
  virtual double gain(double offBoresight) const = 0;
};

class IsotropicPattern final : public GainPattern {
 public:
  double gain(double) const override { return 1.0; }
};

/// cos^n lobe with a floor; n ~ 2-4 approximates a 60-90 degree HPBW patch.
class PatchPattern final : public GainPattern {
 public:
  explicit PatchPattern(double exponent = 3.0, double backLobeFloor = 0.05);
  double gain(double offBoresight) const override;

 private:
  double exponent_;
  double floor_;
};

/// |sin|^p pattern over the tag orientation rho: maximal at rho = pi/2
/// (tag plane perpendicular to the incident field), minimal edge-on.
/// A floor keeps the tag readable at all orientations, matching the paper's
/// traces which never lose the tag entirely.
class TagOrientationGain {
 public:
  explicit TagOrientationGain(double exponent = 2.0, double floor = 0.25);
  double gain(double rho) const;

 private:
  double exponent_;
  double floor_;
};

/// A physical reader antenna port: pattern + boresight direction + the
/// hardware phase offset it contributes to theta_div.
struct ReaderAntenna {
  std::shared_ptr<const GainPattern> pattern =
      std::make_shared<PatchPattern>();
  double boresightAzimuth = 0.0;  // radians, world frame
  double txPowerDbm = 32.5;       // EIRP-ish; Impinj default 32.5 dBm ERP
  double cableAndPortPhase = 0.0; // contribution to the diversity term

  double gainToward(double azimuth) const {
    return pattern->gain(azimuth - boresightAzimuth);
  }
};

}  // namespace tagspin::rf
