#include "rf/constants.hpp"

#include <cmath>

namespace tagspin::rf {

double toDb(double linear) { return 10.0 * std::log10(linear); }
double fromDb(double db) { return std::pow(10.0, db / 10.0); }

}  // namespace tagspin::rf
