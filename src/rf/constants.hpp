// Physical constants and unit helpers for the UHF RFID band.
#pragma once

namespace tagspin::rf {

/// Speed of light in vacuum, m/s.
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Wavelength (m) of a carrier at `hz`.
constexpr double wavelength(double hz) { return kSpeedOfLight / hz; }

constexpr double mhz(double v) { return v * 1e6; }

/// Convert a linear power ratio to dB and back.
double toDb(double linear);
double fromDb(double db);

}  // namespace tagspin::rf
