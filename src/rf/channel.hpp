// Backscatter channel model.
//
// This is the physics substrate standing in for the over-the-air link of the
// paper's testbed.  Phase follows the paper's Eqn. 1: the signal traverses
// 2*d(t), so theta = (4*pi/lambda)*d + theta_div (mod 2*pi), plus the
// orientation-dependent offset of section III and Gaussian measurement noise
// (sigma = 0.1 rad, the Tagoram value the paper adopts).
//
// Multipath is modelled with point scatterers: each contributes a delayed,
// attenuated copy with a geometry-consistent excess path, so SAR-style
// spatial profiles (used by the PinIt baseline) are spatially coherent.
#pragma once

#include <complex>
#include <random>
#include <vector>

#include "geom/vec.hpp"

namespace tagspin::rf {

/// A point scatterer in the environment.  `reflectivity` scales the echo
/// amplitude relative to a LOS path of the same total length.
struct Scatterer {
  geom::Vec3 position;
  double reflectivity = 0.1;
};

struct ChannelConfig {
  double pathLossExponent = 2.0;   // one-way exponent
  double tagModulationLossDb = 5.0;
  double phaseNoiseStd = 0.1;      // radians; Gaussian, per paper section IV
  /// Fraction of reads whose phase is corrupted by ambient interference
  /// (bursty readers nearby, motor EMI, marginal-SNR demodulation); such
  /// reads carry a uniformly distributed phase error.  The paper's enhanced
  /// profile R(phi) is motivated exactly by this "strong noise environment".
  double phaseOutlierProb = 0.03;
  double rssiNoiseStdDb = 0.8;
  bool multipathEnabled = true;
  /// Readings below this RSSI are lost (Impinj sensitivity is ~-84 dBm).
  double readerSensitivityDbm = -84.0;
};

/// One phase/RSSI report as produced by the reader for a single tag read.
struct ChannelSample {
  double phase = 0.0;    // radians in [0, 2*pi)
  double rssiDbm = 0.0;
  bool readable = true;  // false when below reader sensitivity
};

class BackscatterChannel {
 public:
  explicit BackscatterChannel(ChannelConfig config = {},
                              std::vector<Scatterer> scatterers = {});

  const ChannelConfig& config() const { return config_; }
  const std::vector<Scatterer>& scatterers() const { return scatterers_; }

  /// Noise-free complex channel gain (LOS + scatterer echoes), normalised so
  /// a pure LOS channel has unit magnitude and phase -4*pi*d/lambda.
  std::complex<double> complexGain(const geom::Vec3& reader,
                                   const geom::Vec3& tag,
                                   double lambdaM) const;

  /// Full observation: phase (with diversity, orientation offset and noise)
  /// and RSSI (with link budget and noise).
  ///
  /// `orientationPhase` is the tag-specific g(rho) offset supplied by the
  /// simulation layer; `thetaDiv` is the per-(antenna, tag) hardware
  /// diversity constant.
  ChannelSample observe(const geom::Vec3& readerPos, const geom::Vec3& tagPos,
                        double lambdaM, double thetaDiv,
                        double orientationPhase, double readerGainLinear,
                        double tagGainLinear, double txPowerDbm,
                        std::mt19937_64& rng) const;

  /// Link-budget RSSI (dBm) without fast fading or noise; exposed for the
  /// RSSI-ranging baselines.
  double meanRssiDbm(double distanceM, double lambdaM, double readerGainLinear,
                     double tagGainLinear, double txPowerDbm) const;

 private:
  ChannelConfig config_;
  std::vector<Scatterer> scatterers_;
};

}  // namespace tagspin::rf
