#include "rf/antenna.hpp"

#include <algorithm>
#include <stdexcept>

#include "geom/angles.hpp"

namespace tagspin::rf {

PatchPattern::PatchPattern(double exponent, double backLobeFloor)
    : exponent_(exponent), floor_(backLobeFloor) {
  if (exponent <= 0.0) {
    throw std::invalid_argument("PatchPattern: exponent must be > 0");
  }
  if (backLobeFloor < 0.0 || backLobeFloor > 1.0) {
    throw std::invalid_argument("PatchPattern: floor must be in [0, 1]");
  }
}

double PatchPattern::gain(double offBoresight) const {
  const double a = geom::wrapToPi(offBoresight);
  const double c = std::cos(a);
  if (c <= 0.0) return floor_;  // behind the panel
  return std::max(floor_, std::pow(c, exponent_));
}

TagOrientationGain::TagOrientationGain(double exponent, double floor)
    : exponent_(exponent), floor_(floor) {
  if (exponent <= 0.0) {
    throw std::invalid_argument("TagOrientationGain: exponent must be > 0");
  }
  if (floor < 0.0 || floor > 1.0) {
    throw std::invalid_argument("TagOrientationGain: floor must be in [0,1]");
  }
}

double TagOrientationGain::gain(double rho) const {
  const double s = std::abs(std::sin(rho));
  return std::max(floor_, std::pow(s, exponent_));
}

}  // namespace tagspin::rf
