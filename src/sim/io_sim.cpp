#include "sim/io_sim.hpp"

#include <algorithm>
#include <cerrno>

#include "sim/rng.hpp"

namespace tagspin::sim {

const char* faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEio: return "eio";
    case FaultKind::kEnospc: return "enospc";
    case FaultKind::kEintr: return "eintr";
    case FaultKind::kShortWrite: return "short_write";
    case FaultKind::kFsyncFailPartial: return "fsync_fail_partial";
    case FaultKind::kCrash: return "crash";
  }
  return "unknown";
}

const char* persistModeName(CrashPersist::Mode mode) {
  switch (mode) {
    case CrashPersist::Mode::kNone: return "none";
    case CrashPersist::Mode::kAll: return "all";
    case CrashPersist::Mode::kMetaOnly: return "meta_only";
    case CrashPersist::Mode::kPrefix: return "prefix";
    case CrashPersist::Mode::kSubset: return "subset";
  }
  return "unknown";
}

SimIoEnv::SimIoEnv(const DiskImage& image) {
  for (const auto& [path, bytes] : image) {
    const int id = nextFileId_++;
    File f;
    f.cache.assign(bytes.begin(), bytes.end());
    f.durable = f.cache;
    files_[id] = std::move(f);
    visible_[path] = id;
    durable_[path] = id;
  }
}

bool SimIoEnv::tick(FaultKind* fault) {
  const uint64_t op = ops_++;
  if (crashAtOp_ >= 0 && op == static_cast<uint64_t>(crashAtOp_)) {
    crashed_ = true;
    throw SimCrash{};
  }
  for (const Fault& f : faults_) {
    if (f.opIndex == op) {
      if (f.kind == FaultKind::kCrash) {
        crashed_ = true;
        ++faultsInjected_;
        throw SimCrash{};
      }
      *fault = f.kind;
      ++faultsInjected_;
      return true;
    }
  }
  return false;
}

core::IoStatus SimIoEnv::open(const std::string& path, core::OpenMode mode) {
  if (crashed_) return {-1, EIO};
  FaultKind fault{};
  if (tick(&fault)) {
    switch (fault) {
      case FaultKind::kEio: return {-1, EIO};
      case FaultKind::kEnospc: return {-1, ENOSPC};
      case FaultKind::kEintr: return {-1, EINTR};
      default: break;  // write/fsync-shaped faults don't apply to open
    }
  }
  int fileId;
  const auto it = visible_.find(path);
  if (it == visible_.end()) {
    fileId = nextFileId_++;
    files_[fileId] = File{};
    visible_[path] = fileId;
    journal_.push_back({DirOp::Kind::kCreate, path, "", fileId});
  } else {
    fileId = it->second;
    if (mode == core::OpenMode::kTruncate) {
      File& f = files_[fileId];
      f.cache.clear();
      f.pending.push_back({true, 0, {}});
    }
  }
  const int fd = nextFd_++;
  handles_[fd] = {fileId, 0};
  return {fd, 0};
}

core::IoStatus SimIoEnv::write(int fd, const void* data, size_t size) {
  if (crashed_) return {0, EIO};
  const auto it = handles_.find(fd);
  if (it == handles_.end()) return {0, EBADF};
  FaultKind fault{};
  size_t accept = size;
  if (tick(&fault)) {
    switch (fault) {
      case FaultKind::kEio: return {0, EIO};
      case FaultKind::kEnospc: return {0, ENOSPC};
      case FaultKind::kEintr: return {0, EINTR};
      case FaultKind::kShortWrite:
        if (size > 1) accept = size / 2;
        break;
      default: break;
    }
  }
  File& f = fileAt(it->second.fileId);
  const auto* bytes = static_cast<const uint8_t*>(data);
  const uint64_t offset = it->second.cursor;
  if (f.cache.size() < offset + accept) f.cache.resize(offset + accept);
  std::copy(bytes, bytes + accept, f.cache.begin() + offset);
  f.pending.push_back(
      {false, offset, std::vector<uint8_t>(bytes, bytes + accept)});
  it->second.cursor += accept;
  return {static_cast<long>(accept), 0};
}

core::IoStatus SimIoEnv::fsync(int fd) {
  if (crashed_) return {0, EIO};
  const auto it = handles_.find(fd);
  if (it == handles_.end()) return {0, EBADF};
  File& f = fileAt(it->second.fileId);
  FaultKind fault{};
  if (tick(&fault)) {
    switch (fault) {
      case FaultKind::kEintr:
        return {0, EINTR};  // nothing happened; a retry is sound
      case FaultKind::kEio:
      case FaultKind::kEnospc:
      case FaultKind::kFsyncFailPartial: {
        // The fsyncgate semantics: a failed fsync may have persisted any
        // subset of the dirty pages, and POSIX lets the kernel mark the
        // rest clean -- so they are dropped from pending WITHOUT reaching
        // durable, and a retried fsync "succeeds" vacuously.
        if (fault == FaultKind::kFsyncFailPartial) {
          auto rng = makeRng(deriveSeed(faultSeed_, ops_));
          for (const PendingOp& op : f.pending) {
            if ((rng() & 1u) != 0) {
              applyPending(f.durable, op, op.bytes.size());
            }
          }
        }
        f.pending.clear();
        f.cache = f.durable;  // reads now see what actually survived
        return {0, fault == FaultKind::kEnospc ? ENOSPC : EIO};
      }
      default: break;
    }
  }
  f.durable = f.cache;
  f.pending.clear();
  return {0, 0};
}

core::IoStatus SimIoEnv::close(int fd) {
  if (crashed_) return {0, EIO};
  const auto it = handles_.find(fd);
  if (it == handles_.end()) return {0, EBADF};
  FaultKind fault{};
  if (tick(&fault)) {
    switch (fault) {
      case FaultKind::kEio: return {0, EIO};
      case FaultKind::kEintr: return {0, EINTR};
      default: break;
    }
  }
  handles_.erase(it);
  return {0, 0};
}

core::IoStatus SimIoEnv::truncate(int fd, uint64_t size) {
  if (crashed_) return {0, EIO};
  const auto it = handles_.find(fd);
  if (it == handles_.end()) return {0, EBADF};
  FaultKind fault{};
  if (tick(&fault)) {
    switch (fault) {
      case FaultKind::kEio: return {0, EIO};
      case FaultKind::kEintr: return {0, EINTR};
      default: break;
    }
  }
  File& f = fileAt(it->second.fileId);
  f.cache.resize(size);
  f.pending.push_back({true, size, {}});
  return {0, 0};
}

core::IoStatus SimIoEnv::seekEnd(int fd) {
  // Cursor motion only -- no durability consequence, so no op index.
  if (crashed_) return {0, EIO};
  const auto it = handles_.find(fd);
  if (it == handles_.end()) return {0, EBADF};
  it->second.cursor = fileAt(it->second.fileId).cache.size();
  return {static_cast<long>(it->second.cursor), 0};
}

core::IoStatus SimIoEnv::rename(const std::string& from,
                                const std::string& to) {
  if (crashed_) return {0, EIO};
  const auto it = visible_.find(from);
  if (it == visible_.end()) return {0, ENOENT};
  FaultKind fault{};
  if (tick(&fault)) {
    switch (fault) {
      case FaultKind::kEio: return {0, EIO};
      case FaultKind::kEintr: return {0, EINTR};
      default: break;
    }
  }
  const int fileId = it->second;
  visible_.erase(it);
  visible_[to] = fileId;  // atomic replace; any previous file is orphaned
  journal_.push_back({DirOp::Kind::kRename, from, to, fileId});
  return {0, 0};
}

core::IoStatus SimIoEnv::remove(const std::string& path) {
  if (crashed_) return {0, EIO};
  const auto it = visible_.find(path);
  if (it == visible_.end()) return {0, ENOENT};
  FaultKind fault{};
  if (tick(&fault)) {
    switch (fault) {
      case FaultKind::kEio: return {0, EIO};
      case FaultKind::kEintr: return {0, EINTR};
      default: break;
    }
  }
  visible_.erase(it);
  journal_.push_back({DirOp::Kind::kRemove, path, "", -1});
  return {0, 0};
}

core::IoStatus SimIoEnv::syncDir(const std::string& dir) {
  if (crashed_) return {0, EIO};
  FaultKind fault{};
  if (tick(&fault)) {
    switch (fault) {
      case FaultKind::kEio: return {0, EIO};
      case FaultKind::kEintr: return {0, EINTR};
      default: break;
    }
  }
  // Apply (in order) every journaled entry whose parent is `dir`.
  std::vector<DirOp> keep;
  for (const DirOp& op : journal_) {
    if (core::parentDir(op.a) != dir) {
      keep.push_back(op);
      continue;
    }
    switch (op.kind) {
      case DirOp::Kind::kCreate: durable_[op.a] = op.fileId; break;
      case DirOp::Kind::kRename:
        durable_.erase(op.a);
        durable_[op.b] = op.fileId;
        break;
      case DirOp::Kind::kRemove: durable_.erase(op.a); break;
    }
  }
  journal_ = std::move(keep);
  return {0, 0};
}

core::IoStatus SimIoEnv::readFile(const std::string& path, std::string& out) {
  if (crashed_) return {0, EIO};
  const auto it = visible_.find(path);
  if (it == visible_.end()) return {0, ENOENT};
  const File& f = files_.at(it->second);
  out.assign(f.cache.begin(), f.cache.end());
  return {static_cast<long>(out.size()), 0};
}

bool SimIoEnv::exists(const std::string& path) {
  return visible_.count(path) > 0;
}

void SimIoEnv::applyPending(std::vector<uint8_t>& content,
                            const PendingOp& op, size_t byteLimit) {
  if (op.isTruncate) {
    content.resize(op.offset);
    return;
  }
  const size_t n = std::min(op.bytes.size(), byteLimit);
  if (content.size() < op.offset + n) {
    content.resize(op.offset + n);  // holes read back as zeros
  }
  std::copy(op.bytes.begin(), op.bytes.begin() + n,
            content.begin() + op.offset);
}

DiskImage SimIoEnv::crashImage(const CrashPersist& persist) const {
  using Mode = CrashPersist::Mode;
  auto rng = makeRng(deriveSeed(persist.seed, 0xD15C));

  // Namespace: durable entries plus a journal prefix.  The journal is
  // ordered (as metadata journals are), so only prefixes are reachable.
  size_t metaCount = 0;
  switch (persist.mode) {
    case Mode::kNone: metaCount = 0; break;
    case Mode::kAll:
    case Mode::kMetaOnly: metaCount = journal_.size(); break;
    case Mode::kPrefix:
    case Mode::kSubset:
      metaCount = journal_.empty() ? 0 : rng() % (journal_.size() + 1);
      break;
  }
  std::map<std::string, int> ns = durable_;
  for (size_t i = 0; i < metaCount; ++i) {
    const DirOp& op = journal_[i];
    switch (op.kind) {
      case DirOp::Kind::kCreate: ns[op.a] = op.fileId; break;
      case DirOp::Kind::kRename:
        ns.erase(op.a);
        ns[op.b] = op.fileId;
        break;
      case DirOp::Kind::kRemove: ns.erase(op.a); break;
    }
  }

  DiskImage image;
  for (const auto& [path, fileId] : ns) {
    const File& f = files_.at(fileId);
    std::vector<uint8_t> content = f.durable;
    switch (persist.mode) {
      case Mode::kNone:
      case Mode::kMetaOnly:
        break;
      case Mode::kAll:
        for (const PendingOp& op : f.pending) {
          applyPending(content, op, op.bytes.size());
        }
        break;
      case Mode::kPrefix: {
        const size_t count =
            f.pending.empty() ? 0 : rng() % (f.pending.size() + 1);
        for (size_t i = 0; i < count; ++i) {
          applyPending(content, f.pending[i], f.pending[i].bytes.size());
        }
        // The next write may be torn mid-extent.
        if (count < f.pending.size() && !f.pending[count].isTruncate &&
            !f.pending[count].bytes.empty() && (rng() & 1u) != 0) {
          applyPending(content, f.pending[count],
                       rng() % f.pending[count].bytes.size());
        }
        break;
      }
      case Mode::kSubset: {
        const bool hasTruncate =
            std::any_of(f.pending.begin(), f.pending.end(),
                        [](const PendingOp& op) { return op.isTruncate; });
        if (hasTruncate) {
          // Reordering around a size change has no single defensible
          // semantics; fall back to the ordered-prefix model.
          const size_t count = rng() % (f.pending.size() + 1);
          for (size_t i = 0; i < count; ++i) {
            applyPending(content, f.pending[i], f.pending[i].bytes.size());
          }
        } else {
          for (const PendingOp& op : f.pending) {
            const uint64_t draw = rng();
            if ((draw & 1u) == 0) continue;  // this extent never landed
            const size_t limit = ((draw >> 1) & 3u) == 0 && !op.bytes.empty()
                                     ? static_cast<size_t>((draw >> 3) %
                                                           op.bytes.size())
                                     : op.bytes.size();
            applyPending(content, op, limit);
          }
        }
        break;
      }
    }
    image[path] = std::string(content.begin(), content.end());
  }
  return image;
}

DiskImage SimIoEnv::liveImage() const {
  DiskImage image;
  for (const auto& [path, fileId] : visible_) {
    const File& f = files_.at(fileId);
    image[path] = std::string(f.cache.begin(), f.cache.end());
  }
  return image;
}

}  // namespace tagspin::sim
