#include "sim/mem_sim.hpp"

#include <algorithm>

namespace tagspin::sim {

const char* memFaultKindName(MemFaultKind kind) {
  switch (kind) {
    case MemFaultKind::kDeny: return "deny";
    case MemFaultKind::kBurst: return "burst";
    case MemFaultKind::kCliff: return "cliff";
    case MemFaultKind::kPoison: return "poison";
  }
  return "unknown";
}

void SimMemEnv::setFaults(MemFaultSchedule faults) {
  faults_ = std::move(faults);
  std::sort(faults_.begin(), faults_.end(),
            [](const MemFault& a, const MemFault& b) {
              return a.opIndex < b.opIndex;
            });
}

void SimMemEnv::clearPressure() {
  burstRemaining_ = 0;
  poisoned_ = false;
  cliffActive_ = false;
}

bool SimMemEnv::pressureDenies(uint64_t bytes) {
  if (poisoned_) return true;
  if (burstRemaining_ > 0) {
    --burstRemaining_;
    return true;
  }
  if (cliffActive_ && used_ + bytes > cliffBudget_) return true;
  return false;
}

bool SimMemEnv::tryReserve(uint64_t bytes) {
  const uint64_t op = ops_++;

  bool deny = false;
  if (failAt_ >= 0 && op == uint64_t(failAt_)) {
    deny = true;
    ++faultsInjected_;
  }
  if (everyNth_ >= 2 && op > 0 && op % everyNth_ == 0) {
    deny = true;
    ++faultsInjected_;
  }
  // Scheduled faults: fire every fault whose index is this op.  kDeny
  // denies just this reservation; the stateful kinds arm standing pressure
  // that `pressureDenies` applies from this op onward.
  for (const MemFault& f : faults_) {
    if (f.opIndex != op) continue;
    ++faultsInjected_;
    switch (f.kind) {
      case MemFaultKind::kDeny:
        deny = true;
        break;
      case MemFaultKind::kBurst:
        burstRemaining_ = std::max<uint64_t>(f.param, 1);
        break;
      case MemFaultKind::kCliff:
        cliffActive_ = true;
        cliffBudget_ = used_;
        break;
      case MemFaultKind::kPoison:
        poisoned_ = true;
        break;
    }
  }
  if (pressureDenies(bytes)) deny = true;
  if (!deny && budget_ > 0 && used_ + bytes > budget_) deny = true;

  if (deny) {
    ++denials_;
    return false;
  }
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  ++grants_;
  if (budget_ > 0 && used_ > budget_) budgetExceeded_ = true;
  return true;
}

void SimMemEnv::release(uint64_t bytes) {
  if (bytes > used_) {
    underflow_ = true;
    used_ = 0;
    return;
  }
  used_ -= bytes;
}

core::MemEnvStats SimMemEnv::stats() const {
  core::MemEnvStats s;
  s.reserves = grants_;
  s.denials = denials_;
  s.usedBytes = used_;
  s.peakBytes = peak_;
  s.budgetBytes = budget_;
  return s;
}

}  // namespace tagspin::sim
