// Simulated memory environment -- allocation-failure injection for
// eval/oom.*, the memory twin of io_sim.hpp.
//
// SimIoEnv made every torn write and EIO reachable on demand; SimMemEnv
// does the same for allocation failure.  Every `tryReserve` is one *op*
// with a global index, and faults fire by that index, so "the 137th
// reservation this workload makes is denied" is a deterministic, replayable
// event regardless of what the workload allocates.  Four fault kinds cover
// the pressure shapes a real process sees:
//
//  * kDeny   -- one reservation fails (a transient spike elsewhere);
//  * kBurst  -- this and the next `param`-1 reservations fail (a neighbor
//               ballooning for a few milliseconds);
//  * kCliff  -- the budget collapses to the bytes in use at the fault
//               point: releases free headroom that can be re-used, but net
//               growth is denied until the pressure clears (a cgroup limit
//               landing on a grown process);
//  * kPoison -- every reservation fails until the pressure clears (the
//               allocator is gone; only shedding already-held memory and
//               waiting helps).
//
// `clearPressure()` ends cliff/poison/burst -- the "pressure clears" edge
// the recovery invariants are checked against.  The environment also
// carries two oracle flags the explorer asserts after every run:
// `underflow()` (some caller released bytes it never reserved -- the
// accounting analog of a double-close) and `budgetExceeded()` (usage grew
// past the configured budget, i.e. a caller ignored a denial).
//
// Deliberately not thread-safe, exactly like SimIoEnv: the explorer runs
// workloads with inline (single-threaded) shard processing so op indices
// are deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mem_env.hpp"

namespace tagspin::sim {

enum class MemFaultKind : uint8_t {
  kDeny = 0,
  kBurst,
  kCliff,
  kPoison,
};

const char* memFaultKindName(MemFaultKind kind);

struct MemFault {
  /// Global reservation index (0-based) at which the fault fires.
  uint64_t opIndex = 0;
  MemFaultKind kind = MemFaultKind::kDeny;
  /// kBurst: number of consecutive denied reservations (>=1).
  uint64_t param = 1;
};

using MemFaultSchedule = std::vector<MemFault>;

class SimMemEnv final : public core::MemEnv {
 public:
  SimMemEnv() = default;

  /// Inject faults by reservation index.  Unsorted input is fine.
  void setFaults(MemFaultSchedule faults);

  /// Deny exactly the reservation with this op index (and nothing else);
  /// < 0 disables.  The single-point exploration knob, mirroring
  /// SimIoEnv::setCrashAtOp.
  void setFailAt(int64_t opIndex) { failAt_ = opIndex; }

  /// Deny every Nth reservation (n >= 2); 0 disables.
  void setEveryNth(uint64_t n) { everyNth_ = n; }

  /// Byte budget enforced by the environment itself; 0 = unlimited.
  void setBudget(uint64_t bytes) { budget_ = bytes; }

  /// End all standing pressure (burst remainder, cliff, poison).
  void clearPressure();

  bool tryReserve(uint64_t bytes) override;
  void release(uint64_t bytes) override;
  core::MemEnvStats stats() const override;

  /// Total tryReserve calls so far -- the exploration domain, like
  /// SimIoEnv::opCount().
  uint64_t opCount() const { return ops_; }
  uint64_t denials() const { return denials_; }
  uint64_t faultsInjected() const { return faultsInjected_; }
  uint64_t usedBytes() const { return used_; }
  uint64_t peakBytes() const { return peak_; }

  /// Oracle: some caller released bytes it never reserved.
  bool underflow() const { return underflow_; }
  /// Oracle: usage ever exceeded the configured budget (a caller grew
  /// despite a denial).  Never fires when no budget is set.
  bool budgetExceeded() const { return budgetExceeded_; }

 private:
  bool pressureDenies(uint64_t bytes);

  MemFaultSchedule faults_;
  int64_t failAt_ = -1;
  uint64_t everyNth_ = 0;
  uint64_t budget_ = 0;

  uint64_t ops_ = 0;
  uint64_t used_ = 0;
  uint64_t peak_ = 0;
  uint64_t denials_ = 0;
  uint64_t grants_ = 0;
  uint64_t faultsInjected_ = 0;

  uint64_t burstRemaining_ = 0;
  bool poisoned_ = false;
  bool cliffActive_ = false;
  uint64_t cliffBudget_ = 0;

  bool underflow_ = false;
  bool budgetExceeded_ = false;
};

}  // namespace tagspin::sim
