#include "sim/faults.hpp"

#include <algorithm>
#include <random>

#include "rfid/llrp.hpp"
#include "sim/rng.hpp"

namespace tagspin::sim {

FaultConfig FaultConfig::scaled(double intensity) const {
  FaultConfig s = *this;
  const auto rate = [intensity](double p) {
    return std::clamp(p * intensity, 0.0, 1.0);
  };
  s.duplicateProb = rate(duplicateProb);
  s.reorderProb = rate(reorderProb);
  s.timestampGlitchProb = rate(timestampGlitchProb);
  s.clockDriftPpm = clockDriftPpm * intensity;
  s.epcBitErrorProb = rate(epcBitErrorProb);
  s.frameBitFlipProb = rate(frameBitFlipProb);
  s.frameTruncateProb = rate(frameTruncateProb);
  if (intensity < 1e-9) s.dropouts.clear();
  return s;
}

FaultInjector::FaultInjector(FaultConfig config) : config_(config) {}

namespace {

bool chance(std::mt19937_64& rng, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
}

}  // namespace

rfid::ReportStream FaultInjector::corruptReports(
    const rfid::ReportStream& clean) {
  std::mt19937_64 rng =
      makeRng(deriveSeed(config_.seed, 0x0EB0071ULL + callCounter_++));
  rfid::ReportStream out;
  out.reserve(clean.size());

  double t0 = 0.0;
  double t1 = 0.0;
  if (!clean.empty()) {
    auto [lo, hi] = std::minmax_element(
        clean.begin(), clean.end(),
        [](const rfid::TagReport& a, const rfid::TagReport& b) {
          return a.timestampS < b.timestampS;
        });
    t0 = lo->timestampS;
    t1 = hi->timestampS;
  }
  const double span = t1 - t0;

  for (const rfid::TagReport& r : clean) {
    // Dropout windows first: a silent rig produces nothing at all.
    bool dropped = false;
    for (const TagDropout& d : config_.dropouts) {
      if (!(r.epc == d.epc) || span <= 0.0) continue;
      const double frac = (r.timestampS - t0) / span;
      if (frac >= d.startFraction && frac < d.endFraction) {
        dropped = true;
        break;
      }
    }
    if (dropped) {
      ++stats_.reportsDropped;
      continue;
    }

    rfid::TagReport m = r;
    if (config_.clockDriftPpm != 0.0) {
      m.timestampS = t0 + (m.timestampS - t0) *
                              (1.0 + config_.clockDriftPpm * 1e-6);
    }
    if (chance(rng, config_.timestampGlitchProb)) {
      m.timestampS += std::uniform_real_distribution<double>(
          -config_.timestampGlitchMaxS, config_.timestampGlitchMaxS)(rng);
      ++stats_.timestampGlitches;
    }
    if (chance(rng, config_.epcBitErrorProb)) {
      const int bit = std::uniform_int_distribution<int>(0, 95)(rng);
      if (bit < 32) {
        m.epc = rfid::Epc{m.epc.hi(), m.epc.lo() ^ (uint32_t{1} << bit)};
      } else {
        m.epc = rfid::Epc{m.epc.hi() ^ (uint64_t{1} << (bit - 32)),
                          m.epc.lo()};
      }
      ++stats_.epcBitErrors;
    }
    out.push_back(m);
    if (chance(rng, config_.duplicateProb)) {
      out.push_back(m);  // exact retransmit, same timestamp
      ++stats_.duplicatesInserted;
    }
  }

  if (config_.reorderProb > 0.0) {
    for (size_t i = 0; i + 1 < out.size(); ++i) {
      if (chance(rng, config_.reorderProb)) {
        std::swap(out[i], out[i + 1]);
        ++stats_.reordersApplied;
        ++i;  // don't cascade one report forever
      }
    }
  }
  return out;
}

std::vector<uint8_t> FaultInjector::corruptBytes(
    std::span<const uint8_t> clean) {
  std::mt19937_64 rng =
      makeRng(deriveSeed(config_.seed, 0xB17E5ULL + callCounter_++));
  constexpr size_t kFrame = rfid::llrp::kMessageSize;
  std::vector<uint8_t> out;
  out.reserve(clean.size());

  size_t at = 0;
  for (; at + kFrame <= clean.size(); at += kFrame) {
    std::vector<uint8_t> frame(clean.begin() + static_cast<long>(at),
                               clean.begin() + static_cast<long>(at + kFrame));
    if (chance(rng, config_.frameTruncateProb)) {
      const size_t keep =
          std::uniform_int_distribution<size_t>(0, kFrame - 1)(rng);
      frame.resize(keep);
      ++stats_.framesTruncated;
    } else if (chance(rng, config_.frameBitFlipProb)) {
      const int flips = std::uniform_int_distribution<int>(1, 3)(rng);
      for (int f = 0; f < flips; ++f) {
        const size_t bit =
            std::uniform_int_distribution<size_t>(0, kFrame * 8 - 1)(rng);
        frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        ++stats_.bitsFlipped;
      }
      ++stats_.framesBitFlipped;
    }
    out.insert(out.end(), frame.begin(), frame.end());
  }
  // Trailing partial frame (already-torn input) passes through untouched.
  out.insert(out.end(), clean.begin() + static_cast<long>(at), clean.end());
  return out;
}

void publishFaultStats(const FaultStats& delta,
                       obs::MetricsRegistry& registry) {
  obs::add(registry.counter("faults.duplicates_inserted"),
           delta.duplicatesInserted);
  obs::add(registry.counter("faults.reorders_applied"), delta.reordersApplied);
  obs::add(registry.counter("faults.timestamp_glitches"),
           delta.timestampGlitches);
  obs::add(registry.counter("faults.epc_bit_errors"), delta.epcBitErrors);
  obs::add(registry.counter("faults.reports_dropped"), delta.reportsDropped);
  obs::add(registry.counter("faults.frames_bit_flipped"),
           delta.framesBitFlipped);
  obs::add(registry.counter("faults.frames_truncated"), delta.framesTruncated);
  obs::add(registry.counter("faults.bits_flipped"), delta.bitsFlipped);
}

}  // namespace tagspin::sim
