#include "sim/scenario.hpp"

#include <random>
#include <stdexcept>

#include "geom/angles.hpp"
#include "rf/frequency_plan.hpp"
#include "sim/rng.hpp"

namespace tagspin::sim {

namespace {

std::vector<rf::Scatterer> makeScatterers(const ScenarioConfig& config) {
  std::vector<rf::Scatterer> out;
  if (!config.multipath || config.scattererCount <= 0) return out;
  std::mt19937_64 rng(deriveSeed(config.seed, 0x5CA7ULL));
  std::uniform_real_distribution<double> x(-3.0, 3.0);
  std::uniform_real_distribution<double> y(-1.0, 6.0);
  std::uniform_real_distribution<double> z(0.0, 2.5);
  // Weak coherent echoes: the paper's circularly polarised patch antennas
  // reject odd-bounce reflections by an order of magnitude, leaving only a
  // mild residual.  bench/fig_ablation sweeps this strength.
  std::uniform_real_distribution<double> refl(0.008, 0.025);
  out.reserve(static_cast<size_t>(config.scattererCount));
  for (int i = 0; i < config.scattererCount; ++i) {
    out.push_back({geom::Vec3{x(rng), y(rng), z(rng)}, refl(rng)});
  }
  return out;
}

World makeBaseWorld(const ScenarioConfig& config) {
  World w;
  w.worldSeed = config.seed;
  w.reader = rfid::ReaderDevice::makeWithAntennas(config.antennaCount);
  if (config.fixedChannel) {
    w.reader.plan = rf::FrequencyPlan::fixed(rf::mhz(922.375));
  }
  w.antennaPositions.assign(static_cast<size_t>(config.antennaCount),
                            geom::Vec3{0.0, 2.0, config.rigPlaneZ});
  w.channel = rf::BackscatterChannel({}, makeScatterers(config));
  return w;
}

RigTag makeRigTag(const ScenarioConfig& config, const geom::Vec3& center,
                  double radius, uint32_t tagIndex) {
  RigTag rt;
  rt.tag = TagInstance::make(rfid::Epc::forSimulatedTag(tagIndex),
                             config.tagModel,
                             deriveSeed(config.seed, 0xA110ULL + tagIndex));
  rt.rig.center = center;
  rt.rig.radiusM = radius;
  rt.rig.omegaRadPerS = config.rigOmegaRadPerS;
  rt.rig.initialAngle = 0.35 * static_cast<double>(tagIndex);
  return rt;
}

}  // namespace

geom::Vec3 Region::sample(std::mt19937_64& rng, bool threeD) const {
  std::uniform_real_distribution<double> dx(-halfWidthX, halfWidthX);
  std::uniform_real_distribution<double> dy(yMin, yMax);
  std::uniform_real_distribution<double> dz(0.0, zMax);
  return {dx(rng), dy(rng), threeD ? dz(rng) : 0.0};
}

World makeTwoRigWorld(const ScenarioConfig& config) {
  return makeRigRowWorld(config, 2);
}

World makeRigRowWorld(const ScenarioConfig& config, int rigCount) {
  if (rigCount < 1) {
    throw std::invalid_argument("makeRigRowWorld: rigCount must be >= 1");
  }
  World w = makeBaseWorld(config);
  const double mid = static_cast<double>(rigCount - 1) / 2.0;
  for (int i = 0; i < rigCount; ++i) {
    const double x = (static_cast<double>(i) - mid) * config.centerSpacingM;
    w.rigs.push_back(makeRigTag(config,
                                geom::Vec3{x, 0.0, config.rigPlaneZ},
                                config.rigRadiusM,
                                static_cast<uint32_t>(i)));
  }
  return w;
}

World makeCenterSpinWorld(const ScenarioConfig& config) {
  World w = makeBaseWorld(config);
  w.rigs.push_back(makeRigTag(config, geom::Vec3{0.0, 0.0, config.rigPlaneZ},
                              /*radius=*/0.0, 0));
  return w;
}

void placeReaderAntenna(World& world, int port, const geom::Vec3& pos) {
  if (port < 0 || port >= world.reader.antennaCount()) {
    throw std::out_of_range("placeReaderAntenna: bad port");
  }
  world.antennaPositions[static_cast<size_t>(port)] = pos;
  // Point the antenna at the rig field (the origin region).
  geom::Vec3 target{0.0, 0.0, pos.z};
  if (!world.rigs.empty()) {
    geom::Vec3 acc{};
    for (const RigTag& r : world.rigs) acc += r.rig.center;
    target = acc / static_cast<double>(world.rigs.size());
  }
  world.reader.antennas[static_cast<size_t>(port)].boresightAzimuth =
      geom::azimuthOf(pos, target);
}

void addReferenceGrid(World& world, const Region& region, double spacingM,
                      double z) {
  uint32_t index = 1000;  // keep EPCs distinct from rig tags
  std::mt19937_64 rng(deriveSeed(world.worldSeed, 0x0E5ULL));
  std::uniform_real_distribution<double> azimuth(0.0, geom::kTwoPi);
  for (double x = -region.halfWidthX; x <= region.halfWidthX + 1e-9;
       x += spacingM) {
    for (double y = region.yMin; y <= region.yMax + 1e-9; y += spacingM) {
      StaticTag st;
      st.tag = TagInstance::make(rfid::Epc::forSimulatedTag(index),
                                 rfid::TagModelId::kSquig,
                                 deriveSeed(world.worldSeed, index));
      st.position = {x, y, z};
      st.planeAzimuth = azimuth(rng);
      world.statics.push_back(std::move(st));
      ++index;
    }
  }
}

void addVerticalRig(World& world, const geom::Vec3& center,
                    const ScenarioConfig& config) {
  RigTag rt = makeRigTag(config, center, config.rigRadiusM,
                         static_cast<uint32_t>(world.rigs.size()));
  rt.rig.plane = SpinningRig::Plane::kVerticalXZ;
  world.rigs.push_back(std::move(rt));
}

}  // namespace tagspin::sim
