// Spinning-rig kinematics.
//
// A tag is attached to the edge of a disk of radius r spinning with uniform
// angular speed omega (paper Fig. 2).  The rig reports, for any time t, the
// tag's world position and the tag-plane azimuth from which the orientation
// angle rho(t) toward any reader position follows.  A radius of 0 gives the
// center-mounted calibration configuration of section III-B Step 1.
//
// Horizontal rigs spin in the x-y plane (the paper's setup); the VerticalXZ
// plane implements the paper's future-work extension of a vertically
// spinning tag for z-axis aperture diversity.
#pragma once

#include "geom/angles.hpp"
#include "geom/vec.hpp"

namespace tagspin::sim {

struct SpinningRig {
  enum class Plane { kHorizontal, kVerticalXZ };

  geom::Vec3 center;
  double radiusM = 0.10;
  double omegaRadPerS = 0.5;
  double initialAngle = 0.0;
  /// Mounting offset of the tag plane relative to the disk radial direction;
  /// pi/2 = tangential mounting (tag lies flat along the rim).
  double tagPlaneOffset = geom::kPi / 2.0;
  Plane plane = Plane::kHorizontal;

  /// Motor imperfection: a sinusoidal angle error of amplitude
  /// `speedJitterAmp` (radians) with period `jitterPeriodS`, modelling a
  /// cheap motor's speed ripple / belt slip.  The localization server keeps
  /// assuming uniform rotation, so this is a pure model-mismatch knob
  /// (swept in bench/fig_ablation2).  0 = ideal motor.
  double speedJitterAmp = 0.0;
  double jitterPeriodS = 5.0;
  double jitterPhase = 0.0;

  /// Disk angle (radians) at time t: omega*t + initialAngle (+ jitter).
  double diskAngle(double t) const {
    double a = omegaRadPerS * t + initialAngle;
    if (speedJitterAmp != 0.0) {
      a += speedJitterAmp *
           std::sin(geom::kTwoPi * t / jitterPeriodS + jitterPhase);
    }
    return a;
  }

  /// World position of the tag at time t.
  geom::Vec3 tagPosition(double t) const {
    const double a = diskAngle(t);
    switch (plane) {
      case Plane::kVerticalXZ:
        return center + geom::Vec3{radiusM * std::cos(a), 0.0,
                                   radiusM * std::sin(a)};
      case Plane::kHorizontal:
      default:
        return center + geom::Vec3{radiusM * std::cos(a),
                                   radiusM * std::sin(a), 0.0};
    }
  }

  /// Azimuth of the tag plane (the direction the tag's long axis points) in
  /// the rig's rotation plane.
  double tagPlaneAngle(double t) const {
    return geom::wrapTwoPi(diskAngle(t) + tagPlaneOffset);
  }

  /// Orientation rho(t): angle between the tag plane and the line from the
  /// tag to the reader (paper section III-A / Fig. 5(a)), measured in the
  /// rig's rotation plane.
  double orientationRho(double t, const geom::Vec3& reader) const {
    const geom::Vec3 tag = tagPosition(t);
    double toReader;
    if (plane == Plane::kVerticalXZ) {
      const geom::Vec3 d = reader - tag;
      toReader = std::atan2(d.z, d.x);
    } else {
      toReader = geom::azimuthOf(tag, reader);
    }
    return geom::wrapTwoPi(tagPlaneAngle(t) - toReader);
  }

  /// Time for one full revolution.
  double periodS() const { return geom::kTwoPi / omegaRadPerS; }
};

}  // namespace tagspin::sim
