// Canned scene builders shared by tests, examples and benches.
//
// The default scenario mirrors the paper's office testbed: two spinning
// rigs 40 cm apart on a desk (their plane is the z=0 horizontal plane),
// disk radius 10 cm, omega = 0.5 rad/s, Squiggle tags, a 9 m x 4 m
// surveillance region, three wall/furniture scatterers for multipath.
#pragma once

#include <cstdint>

#include "sim/world.hpp"

namespace tagspin::sim {

struct ScenarioConfig {
  double rigRadiusM = 0.10;
  double rigOmegaRadPerS = 0.5;
  double centerSpacingM = 0.40;
  rfid::TagModelId tagModel = rfid::TagModelId::kSquig;
  int antennaCount = 1;
  bool multipath = true;
  int scattererCount = 3;
  bool fixedChannel = false;  // true: single channel, no hopping
  double rigPlaneZ = 0.0;     // height of the rig plane (3D experiments)
  uint64_t seed = 1;
};

/// Surveillance region of the simulated office (metres): x in [-W/2, W/2],
/// y in [yMin, yMax], z in [0, H].
struct Region {
  double halfWidthX = 1.6;   // surveillance area ~3.2 m wide
  double yMin = 0.8;         // keep the reader off the rig line
  double yMax = 3.2;         // several metres, within reliable read range
  double zMax = 1.5;

  geom::Vec3 sample(std::mt19937_64& rng, bool threeD) const;
};

/// Two horizontal rigs centered at (-s/2, 0, z) and (+s/2, 0, z).
World makeTwoRigWorld(const ScenarioConfig& config);

/// `rigCount` horizontal rigs in a row along x, spaced `centerSpacingM`
/// apart and centered on the origin (count 2 reproduces makeTwoRigWorld).
/// Redundant rigs are what lets the graceful-degradation locator drop an
/// unhealthy one and still fix from the rest.
World makeRigRowWorld(const ScenarioConfig& config, int rigCount);

/// One rig with the tag mounted at the disk *center* (radius 0) -- the
/// orientation-calibration configuration of section III-B Step 1.
World makeCenterSpinWorld(const ScenarioConfig& config);

/// Place the reader's antenna `port` at `pos`, boresight toward the rigs.
void placeReaderAntenna(World& world, int port, const geom::Vec3& pos);

/// Add a grid of static reference tags (spacing in metres) across the
/// region at height z; used by the LandMarc/PinIt/BackPos baselines.
void addReferenceGrid(World& world, const Region& region, double spacingM,
                      double z);

/// Add a third, vertically spinning rig at `center` (paper's future-work
/// extension for z-axis aperture diversity).
void addVerticalRig(World& world, const geom::Vec3& center,
                    const ScenarioConfig& config);

}  // namespace tagspin::sim
