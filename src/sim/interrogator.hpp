// Drives the Gen2 inventory over a World and produces the LLRP-style report
// stream the localization server consumes.
//
// Faithful to the paper's pipeline: the reader "interrogates the nearby
// spinning tags for a while and sends the signal snapshots to the server".
// Read timing is emergent from the MAC (random slots, collisions) and the
// orientation-dependent reply probability -- reproducing the variable
// sampling density of Fig. 4(b).
#pragma once

#include <cstdint>

#include "rfid/report.hpp"
#include "sim/world.hpp"

namespace tagspin::sim {

struct InterrogateConfig {
  double durationS = 30.0;
  int antennaPort = 0;
  /// Distinguishes repeated interrogations of the same world (independent
  /// randomness per run).
  uint64_t streamId = 0;
};

/// Run the reader against the world and return all successful tag reads,
/// ordered by timestamp.
rfid::ReportStream interrogate(const World& world,
                               const InterrogateConfig& config);

/// Reply probability of a tag given its orientation gain and model
/// sensitivity; exposed for tests of the sampling-density effect.
double replyProbability(double orientationGain, double sensitivityOffsetDb);

}  // namespace tagspin::sim
