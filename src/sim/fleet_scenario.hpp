// Fleet-scale failure scenarios on top of FlakyTransport's outage scripts.
//
// A fleet bench wants three populations in one run:
//  * healthy sessions -- no scripted faults; their fix latency is the
//    baseline the isolation claim is measured against;
//  * a correlated-outage cohort -- a configurable fraction of the fleet
//    loses its transport at the *same instant* (a switch dies, a PoE budget
//    trips), the worst case for thundering-herd reconnects because every
//    breaker re-opens on the same schedule;
//  * persistent flappers -- a small fraction that disconnects on a short
//    period for the whole run, the sessions quarantine exists to contain.
//
// Role assignment is deterministic in (index, total): the outage cohort is
// the first round(outageFraction * total) indices and the flappers the last
// round(flapFraction * total), so a round-robin shard assignment spreads
// both cohorts across every fault domain -- the isolation claim is then
// about budgets and quarantine, not about lucky shard placement.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/flaky_transport.hpp"

namespace tagspin::sim {

struct FleetScenarioConfig {
  /// Total capture span the scripts must fit inside.
  double spanS = 60.0;
  double revolutionPeriodS = 12.566370614359172;  // 2*pi / 0.5 rad/s default
  /// Correlated outage: this fraction of sessions drop simultaneously.
  double outageFraction = 0.20;
  double outageAtS = 20.0;
  double outageDurationS = 6.0;
  /// Persistent flappers: disconnect every flapPeriodS for flapDurationS.
  double flapFraction = 0.05;
  double flapPeriodS = 2.5;
  double flapDurationS = 0.6;
  uint64_t seed = 0xF1EE7ULL;
};

enum class FleetRole { kHealthy, kOutage, kFlapper };
const char* fleetRoleName(FleetRole role);

/// Deterministic role of session `index` in a fleet of `total`.
FleetRole fleetRole(const FleetScenarioConfig& config, size_t index,
                    size_t total);

/// The outage script for session `index`: empty for healthy sessions, one
/// simultaneous disconnect for the outage cohort (identical atS across the
/// cohort -- that simultaneity IS the scenario; only the duration carries a
/// few percent of per-session jitter so recoveries don't all land on one
/// tick), and a periodic disconnect train for flappers.
std::vector<OutageEvent> fleetOutageScript(const FleetScenarioConfig& config,
                                           size_t index, size_t total);

}  // namespace tagspin::sim
