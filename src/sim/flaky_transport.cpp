#include "sim/flaky_transport.hpp"

#include <algorithm>

#include "rfid/llrp.hpp"
#include "sim/rng.hpp"

namespace tagspin::sim {

const char* outageKindName(OutageEvent::Kind kind) {
  switch (kind) {
    case OutageEvent::Kind::kDisconnect: return "disconnect";
    case OutageEvent::Kind::kStall: return "stall";
    case OutageEvent::Kind::kFlood: return "flood";
  }
  return "unknown";
}

std::vector<OutageEvent> standardOutageScript(double spanS,
                                              double revolutionPeriodS,
                                              uint64_t seed) {
  std::vector<OutageEvent> events;
  const double blockS = 10.0 * revolutionPeriodS;
  uint64_t state = splitmix64(seed ^ 0x07A6EULL);
  auto jitter = [&state]() {  // uniform in [0.85, 1.15]
    state = splitmix64(state);
    return 0.85 + 0.30 * (static_cast<double>(state >> 11) / 9007199254740992.0);
  };
  // Per 10-revolution block: 3 disconnects + 1 stall + 1 flood, spread so
  // no two events overlap at default durations.
  struct Placement {
    OutageEvent::Kind kind;
    double fraction;   // of the block
    double durationRev;
  };
  const Placement placements[] = {
      {OutageEvent::Kind::kDisconnect, 0.06, 0.8},
      {OutageEvent::Kind::kStall, 0.25, 1.0},
      {OutageEvent::Kind::kDisconnect, 0.45, 0.5},
      {OutageEvent::Kind::kFlood, 0.65, 2.0},
      {OutageEvent::Kind::kDisconnect, 0.84, 1.2},
  };
  // Events must *end* comfortably inside the span: an outage that outlives
  // the capture is indistinguishable from the capture simply ending, so
  // recovery would be unobservable.
  const double lastEndS = 0.96 * spanS;
  for (double blockStart = 0.0; blockStart < spanS; blockStart += blockS) {
    for (const Placement& p : placements) {
      OutageEvent ev;
      ev.kind = p.kind;
      ev.atS = blockStart + p.fraction * blockS * jitter();
      ev.durationS = p.durationRev * revolutionPeriodS * jitter();
      if (ev.atS >= spanS) continue;
      if (ev.kind != OutageEvent::Kind::kFlood &&
          ev.atS + ev.durationS > lastEndS) {
        ev.durationS = lastEndS - ev.atS;
        if (ev.durationS <= 0.05 * revolutionPeriodS) continue;
      }
      events.push_back(ev);
    }
  }
  return events;
}

std::shared_ptr<const SharedStream> makeSharedStream(
    const World& world, const InterrogateConfig& config) {
  auto stream = std::make_shared<SharedStream>();
  stream->reports = interrogate(world, config);
  stream->wire = rfid::llrp::encodeStream(stream->reports);
  return stream;
}

FlakyTransport::FlakyTransport(const World& world, FlakyTransportConfig config)
    : FlakyTransport(makeSharedStream(world, config.interrogate),
                     std::move(config)) {}

FlakyTransport::FlakyTransport(std::shared_ptr<const SharedStream> stream,
                               FlakyTransportConfig config)
    : config_(std::move(config)),
      stream_(std::move(stream)),
      rngState_(splitmix64(config_.seed)) {}

const OutageEvent* FlakyTransport::activeEvent(double nowS,
                                               OutageEvent::Kind kind) const {
  for (const OutageEvent& ev : config_.events) {
    if (ev.kind == kind && nowS >= ev.atS && nowS < ev.atS + ev.durationS) {
      return &ev;
    }
  }
  return nullptr;
}

bool FlakyTransport::connect(double nowS) {
  if (connected_) return true;
  if (activeEvent(nowS, OutageEvent::Kind::kDisconnect) != nullptr) {
    connectStartedS_ = -1.0;  // reader unreachable during the outage
    return false;
  }
  if (connectStartedS_ < 0.0) {
    connectStartedS_ = nowS;
  }
  if (nowS - connectStartedS_ < config_.connectDelayS) return false;

  connected_ = true;
  connectStartedS_ = -1.0;
  ++stats_.connectsEstablished;
  // Reports emitted while no client was attached are gone -- a reader
  // streams live.  Jump the cursor to the first frame of the present.
  while (nextFrame_ < stream_->reports.size() &&
         stream_->reports[nextFrame_].timestampS < nowS) {
    ++nextFrame_;
    ++stats_.framesLostWhileDown;
  }
  return true;
}

void FlakyTransport::dropConnection(double nowS) {
  if (!connected_) return;
  connected_ = false;
  ++stats_.eventDisconnects;
  if (config_.tearFrames && nextFrame_ < stream_->reports.size()) {
    // The frame in flight is torn: its first bytes were sent, the rest is
    // lost with the connection.  Queue the *tail* for replay right after
    // reconnect -- from the client's view the new byte stream starts
    // mid-frame, which is exactly what SYNCING must resynchronize past.
    rngState_ = splitmix64(rngState_);
    const size_t cut =
        1 + static_cast<size_t>(rngState_ % (rfid::llrp::kMessageSize - 1));
    const size_t base = nextFrame_ * rfid::llrp::kMessageSize;
    pendingJunk_.assign(stream_->wire.begin() + static_cast<std::ptrdiff_t>(base + cut),
                        stream_->wire.begin() +
                            static_cast<std::ptrdiff_t>(
                                base + rfid::llrp::kMessageSize));
    ++nextFrame_;  // the torn frame is consumed (and unrecoverable)
    ++stats_.framesTorn;
    ++stats_.framesLostWhileDown;
  }
  (void)nowS;
}

runtime::TransportRead FlakyTransport::poll(double nowS) {
  runtime::TransportRead read;
  if (activeEvent(nowS, OutageEvent::Kind::kDisconnect) != nullptr) {
    dropConnection(nowS);
    read.status = runtime::TransportStatus::kClosed;
    return read;
  }
  if (!connected_) {
    read.status = runtime::TransportStatus::kClosed;
    return read;
  }
  if (activeEvent(nowS, OutageEvent::Kind::kStall) != nullptr) {
    // Connection up, nothing moving; frames buffer reader-side and flush
    // when the stall lifts.
    read.status = runtime::TransportStatus::kIdle;
    return read;
  }
  // A flood flushes `durationS` seconds of future stream the moment it
  // starts (one-shot horizon extension; overlapping floods take the max).
  for (const OutageEvent& ev : config_.events) {
    if (ev.kind == OutageEvent::Kind::kFlood && nowS >= ev.atS) {
      floodHorizonS_ = std::max(floodHorizonS_, ev.atS + ev.durationS);
    }
  }
  const double horizonS = std::max(nowS, floodHorizonS_);

  if (!pendingJunk_.empty()) {
    read.bytes = std::move(pendingJunk_);
    pendingJunk_.clear();
  }
  const size_t firstFrame = nextFrame_;
  while (nextFrame_ < stream_->reports.size() &&
         stream_->reports[nextFrame_].timestampS <= horizonS) {
    ++nextFrame_;
  }
  if (nextFrame_ > firstFrame) {
    const size_t from = firstFrame * rfid::llrp::kMessageSize;
    const size_t to = nextFrame_ * rfid::llrp::kMessageSize;
    read.bytes.insert(read.bytes.end(),
                      stream_->wire.begin() + static_cast<std::ptrdiff_t>(from),
                      stream_->wire.begin() + static_cast<std::ptrdiff_t>(to));
  }
  stats_.bytesDelivered += read.bytes.size();
  read.status = read.bytes.empty() ? runtime::TransportStatus::kIdle
                                   : runtime::TransportStatus::kOk;
  return read;
}

void FlakyTransport::close() {
  connected_ = false;
  connectStartedS_ = -1.0;
  pendingJunk_.clear();
}

}  // namespace tagspin::sim
