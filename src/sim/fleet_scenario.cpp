#include "sim/fleet_scenario.hpp"

#include <cmath>

#include "sim/rng.hpp"

namespace tagspin::sim {

const char* fleetRoleName(FleetRole role) {
  switch (role) {
    case FleetRole::kHealthy: return "healthy";
    case FleetRole::kOutage: return "outage";
    case FleetRole::kFlapper: return "flapper";
  }
  return "unknown";
}

namespace {

size_t cohortSize(double fraction, size_t total) {
  if (fraction <= 0.0) return 0;
  const double exact = fraction * static_cast<double>(total);
  return static_cast<size_t>(std::llround(exact));
}

/// Uniform in [1 - spread, 1 + spread], deterministic per (seed, index).
double jitter(uint64_t seed, size_t index, double spread) {
  const uint64_t h = splitmix64(seed ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
  const double u = static_cast<double>(h >> 11) / 9007199254740992.0;
  return 1.0 - spread + 2.0 * spread * u;
}

}  // namespace

FleetRole fleetRole(const FleetScenarioConfig& config, size_t index,
                    size_t total) {
  const size_t outage = cohortSize(config.outageFraction, total);
  const size_t flappers = cohortSize(config.flapFraction, total);
  if (index < outage) return FleetRole::kOutage;
  if (total >= flappers && index >= total - flappers &&
      index >= outage) {  // outage wins when the cohorts would overlap
    return FleetRole::kFlapper;
  }
  return FleetRole::kHealthy;
}

std::vector<OutageEvent> fleetOutageScript(const FleetScenarioConfig& config,
                                           size_t index, size_t total) {
  std::vector<OutageEvent> events;
  switch (fleetRole(config, index, total)) {
    case FleetRole::kHealthy:
      break;

    case FleetRole::kOutage: {
      OutageEvent ev;
      ev.kind = OutageEvent::Kind::kDisconnect;
      ev.atS = config.outageAtS;  // identical across the cohort: correlated
      ev.durationS = config.outageDurationS * jitter(config.seed, index, 0.05);
      events.push_back(ev);
      break;
    }

    case FleetRole::kFlapper: {
      // Disconnect train for the whole span; period jittered per session so
      // flappers don't accidentally synchronize into their own mini-outage.
      const double period =
          config.flapPeriodS * jitter(config.seed, index, 0.15);
      for (double atS = 0.5 * period; atS < config.spanS; atS += period) {
        OutageEvent ev;
        ev.kind = OutageEvent::Kind::kDisconnect;
        ev.atS = atS;
        ev.durationS = config.flapDurationS * jitter(config.seed, index, 0.10);
        events.push_back(ev);
      }
      break;
    }
  }
  return events;
}

}  // namespace tagspin::sim
