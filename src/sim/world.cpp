#include "sim/world.hpp"

#include <random>
#include <stdexcept>

#include "geom/angles.hpp"
#include "sim/rng.hpp"

namespace tagspin::sim {

TagInstance TagInstance::make(rfid::Epc epc, rfid::TagModelId model,
                              uint64_t seed) {
  const rfid::TagModel& m = rfid::tagModel(model);
  TagInstance t;
  t.epc = epc;
  t.model = model;
  t.orientation = OrientationResponse::forTag(m, seed);
  // Low floor: edge-on tags harvest very little energy, so reads cluster
  // sharply around rho = pi/2 + k*pi (the paper's segment-A/C density).
  t.gain = rf::TagOrientationGain(m.gainExponent, 0.10);
  std::mt19937_64 rng(deriveSeed(seed, 0xD1BULL));
  std::uniform_real_distribution<double> phase(0.0, geom::kTwoPi);
  t.hardwarePhase = phase(rng);
  return t;
}

double StaticTag::orientationRho(const geom::Vec3& reader) const {
  return geom::wrapTwoPi(planeAzimuth - geom::azimuthOf(position, reader));
}

const geom::Vec3& World::antennaPosition(int port) const {
  if (port < 0 || port >= static_cast<int>(antennaPositions.size())) {
    throw std::out_of_range("World: bad antenna port");
  }
  return antennaPositions[static_cast<size_t>(port)];
}

const TagInstance& World::tagAt(int globalIndex) const {
  if (globalIndex < 0 || globalIndex >= tagCount()) {
    throw std::out_of_range("World: bad tag index");
  }
  const size_t i = static_cast<size_t>(globalIndex);
  if (i < rigs.size()) return rigs[i].tag;
  return statics[i - rigs.size()].tag;
}

geom::Vec3 World::tagPositionAt(int globalIndex, double t) const {
  const size_t i = static_cast<size_t>(globalIndex);
  if (i < rigs.size()) return rigs[i].rig.tagPosition(t);
  return statics.at(i - rigs.size()).position;
}

double World::tagRhoAt(int globalIndex, double t,
                       const geom::Vec3& reader) const {
  const size_t i = static_cast<size_t>(globalIndex);
  if (i < rigs.size()) return rigs[i].rig.orientationRho(t, reader);
  return statics.at(i - rigs.size()).orientationRho(reader);
}

void World::validate() const {
  if (antennaPositions.size() != reader.antennas.size()) {
    throw std::logic_error(
        "World: antennaPositions must parallel reader.antennas");
  }
  if (tagCount() == 0) {
    throw std::logic_error("World: no tags");
  }
  for (const RigTag& r : rigs) {
    if (r.rig.radiusM < 0.0) throw std::logic_error("World: negative radius");
    if (r.rig.omegaRadPerS == 0.0 && r.rig.radiusM > 0.0) {
      throw std::logic_error("World: edge-mounted tag on a stopped disk");
    }
  }
}

}  // namespace tagspin::sim
