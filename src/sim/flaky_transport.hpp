// A deliberately unreliable reader transport for the supervised runtime.
//
// Wraps one Interrogator run: the clean report stream is generated up
// front (sim::interrogate), LLRP-encoded, and then released byte-by-byte
// against the polled clock the way a live reader connection would deliver
// it -- frame i becomes available when its report timestamp passes.  On
// top of that, a *script* of outage events drives the failure modes the
// session runtime must survive:
//
//  * kDisconnect -- the connection drops (optionally tearing the frame in
//    flight); reports emitted while down are lost (readers stream live,
//    they do not spool for absent clients), and the first delivery after
//    reconnect starts with the tail of a torn frame so SYNCING has real
//    resync work to do;
//  * kStall -- the connection stays up but delivers nothing (wedged
//    RO-spec / TCP zero-window); buffered frames flush in a burst when the
//    stall ends, which is itself a mini-flood;
//  * kFlood -- `durationS` seconds of future stream flush immediately (a
//    reader draining its backlog), stressing the ingest queue's
//    backpressure policy.
//
// Everything is deterministic in (world seed, config seed, poll times), so
// soak runs are exactly reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rfid/report.hpp"
#include "runtime/transport.hpp"
#include "sim/interrogator.hpp"
#include "sim/world.hpp"

namespace tagspin::sim {

struct OutageEvent {
  enum class Kind { kDisconnect, kStall, kFlood };
  Kind kind = Kind::kDisconnect;
  double atS = 0.0;
  /// Disconnect/stall: how long the condition lasts.  Flood: how many
  /// seconds of future stream are flushed at atS.
  double durationS = 0.0;
};
const char* outageKindName(OutageEvent::Kind kind);

struct FlakyTransportConfig {
  InterrogateConfig interrogate;
  /// Time from a connect() attempt to an established connection.
  double connectDelayS = 0.05;
  /// Cut mid-frame on disconnect and replay the torn tail on reconnect.
  bool tearFrames = true;
  uint64_t seed = 0xF1AC7ULL;
  std::vector<OutageEvent> events;
};

struct FlakyTransportStats {
  uint64_t connectsEstablished = 0;
  uint64_t eventDisconnects = 0;
  uint64_t framesLostWhileDown = 0;  // emitted while no client was attached
  uint64_t framesTorn = 0;
  uint64_t bytesDelivered = 0;
};

/// The standard soak outage script: per 10 revolutions, 3 disconnects,
/// 1 stall and 1 flood, spread across each block with durations scaled to
/// the revolution period and lightly jittered by `seed`.
std::vector<OutageEvent> standardOutageScript(double spanS,
                                              double revolutionPeriodS,
                                              uint64_t seed);

/// One interrogation run, pre-encoded: the clean report stream plus its
/// LLRP wire image.  A fleet of N transports watching the same rig shares
/// one of these instead of paying N interrogate+encode passes (and N
/// copies of the wire bytes) -- the flaky behavior (cursor, outage script,
/// torn frames) stays per-transport.
struct SharedStream {
  rfid::ReportStream reports;
  std::vector<uint8_t> wire;
};

/// Interrogate + encode once, for handing to many FlakyTransports.
std::shared_ptr<const SharedStream> makeSharedStream(
    const World& world, const InterrogateConfig& config);

class FlakyTransport final : public runtime::Transport {
 public:
  FlakyTransport(const World& world, FlakyTransportConfig config);
  /// Share a pre-built stream; `config.interrogate` is ignored.
  FlakyTransport(std::shared_ptr<const SharedStream> stream,
                 FlakyTransportConfig config);

  // runtime::Transport
  bool connect(double nowS) override;
  runtime::TransportRead poll(double nowS) override;
  void close() override;

  /// The uncorrupted stream the reader produced (soak ground truth).
  const rfid::ReportStream& cleanReports() const { return stream_->reports; }
  const FlakyTransportStats& stats() const { return stats_; }
  const FlakyTransportConfig& config() const { return config_; }
  bool connected() const { return connected_; }
  size_t framesDelivered() const { return nextFrame_; }

 private:
  const OutageEvent* activeEvent(double nowS, OutageEvent::Kind kind) const;
  void dropConnection(double nowS);

  FlakyTransportConfig config_;
  std::shared_ptr<const SharedStream> stream_;
  size_t nextFrame_ = 0;
  bool connected_ = false;
  double connectStartedS_ = -1.0;
  double floodHorizonS_ = 0.0;
  std::vector<uint8_t> pendingJunk_;  // torn tail replayed after reconnect
  uint64_t rngState_ = 0;
  FlakyTransportStats stats_;
};

}  // namespace tagspin::sim
