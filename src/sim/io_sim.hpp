// SimIoEnv: a deterministic page-cache + directory-journal model of storage
// behind the core::IoEnv seam, built to *falsify* durability claims.
//
// The model separates what the process sees from what a power cut keeps:
//
//  * per file, `cache` (the content reads and appends observe) vs `durable`
//    (bytes known to be on stable media), with the writes since the last
//    fsync kept as an ordered list of pending extents -- a crash may keep
//    any write-back subset of them, in any order, partially;
//  * a single ordered metadata journal of directory operations (create,
//    rename, remove): visibility is immediate and renames are atomic, but
//    nothing is durable until syncDir on the parent -- so a freshly created
//    file whose data was fsynced can still vanish entirely, and an
//    un-dirsynced rename can roll back;
//  * injected faults by global syscall index: EIO, ENOSPC, EINTR, short
//    writes, and fsync that fails *after* persisting a seeded subset of the
//    pending extents -- and then, as POSIX permits, drops the rest from the
//    dirty set, so retrying the fsync "succeeds" without making the data
//    durable (the fsyncgate semantics);
//  * a power cut at any syscall boundary: the scheduled op never executes,
//    SimCrash is thrown, and every later call fails with EIO so destructors
//    unwind quietly.  crashImage() then materializes the disk a recovery
//    process would mount, under a configurable write-back variant.
//
// Everything is deterministic: the op counter gives every syscall a stable
// index, and all randomness derives from explicit seeds, so any failing
// (schedule, persist variant) pair replays exactly -- which is what lets
// the eval::crash shrinker reduce failures to minimal artifacts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/io_env.hpp"

namespace tagspin::sim {

/// Thrown at the scheduled power-cut boundary.  Deliberately NOT derived
/// from std::exception: production code legitimately catches
/// std::exception around storage calls (a failed shard checkpoint must not
/// kill the fleet tick), and a power cut must not be absorbed by those
/// handlers.
struct SimCrash {};

enum class FaultKind {
  kEio,               // the op fails with EIO, nothing happens
  kEnospc,            // the op fails with ENOSPC, nothing happens
  kEintr,             // the op fails with EINTR, nothing happens
  kShortWrite,        // a write accepts only half its bytes
  kFsyncFailPartial,  // fsync persists a seeded subset, fails EIO, and
                      // marks the rest clean (fsyncgate)
  kCrash,             // power cut at this op
};

const char* faultKindName(FaultKind kind);

struct Fault {
  uint64_t opIndex = 0;  // global syscall index the fault fires at
  FaultKind kind = FaultKind::kEio;
};
using FaultSchedule = std::vector<Fault>;

/// How much of the un-fsynced state a power cut keeps.
struct CrashPersist {
  enum class Mode {
    kNone,      // durable state only: nothing past the last fsync/dirsync
    kAll,       // every pending extent and journal entry made it
    kMetaOnly,  // full metadata journal, no pending data (a journaling fs
                // committing metadata while data pages are still dirty --
                // the variant that catches rename-before-fsync bugs)
    kPrefix,    // seeded prefix of pending ops, last write possibly torn
    kSubset,    // seeded independent subset of pending writes (write-back
                // reordering); files with a pending truncate degrade to
                // prefix, and the metadata journal always applies a prefix
                // (metadata journals are ordered on real filesystems)
  };
  Mode mode = Mode::kNone;
  uint64_t seed = 0;
};

const char* persistModeName(CrashPersist::Mode mode);

/// Post-power-cut disk: path -> bytes.
using DiskImage = std::map<std::string, std::string>;

class SimIoEnv final : public core::IoEnv {
 public:
  SimIoEnv() = default;
  /// Start from a mounted disk: every file durable, cache == durable,
  /// empty journal (how the explorer hands a crash image to recovery).
  explicit SimIoEnv(const DiskImage& image);

  void setFaults(FaultSchedule schedule) { faults_ = std::move(schedule); }
  /// Power cut when the op counter reaches `op` (-1 disables).
  void setCrashAtOp(int64_t op) { crashAtOp_ = op; }
  /// Seed for the intra-fault randomness (kFsyncFailPartial subsets).
  void setFaultSeed(uint64_t seed) { faultSeed_ = seed; }

  /// Mutating syscalls issued so far (the crash-point enumeration domain).
  uint64_t opCount() const { return ops_; }
  bool crashed() const { return crashed_; }
  uint64_t faultsInjected() const { return faultsInjected_; }

  /// Materialize the disk a power cut at the current state would leave.
  DiskImage crashImage(const CrashPersist& persist) const;
  /// The live view (cache + visible namespace) -- what a clean process
  /// sees, not what a crash keeps.
  DiskImage liveImage() const;

  // core::IoEnv
  core::IoStatus open(const std::string& path, core::OpenMode mode) override;
  core::IoStatus write(int fd, const void* data, size_t size) override;
  core::IoStatus fsync(int fd) override;
  core::IoStatus close(int fd) override;
  core::IoStatus truncate(int fd, uint64_t size) override;
  core::IoStatus seekEnd(int fd) override;
  core::IoStatus rename(const std::string& from,
                        const std::string& to) override;
  core::IoStatus remove(const std::string& path) override;
  core::IoStatus syncDir(const std::string& dir) override;
  core::IoStatus readFile(const std::string& path, std::string& out) override;
  bool exists(const std::string& path) override;

 private:
  struct PendingOp {
    bool isTruncate = false;
    uint64_t offset = 0;             // write offset / truncate size
    std::vector<uint8_t> bytes;      // write payload (empty for truncate)
  };
  struct File {
    std::vector<uint8_t> cache;
    std::vector<uint8_t> durable;
    std::vector<PendingOp> pending;
  };
  struct Handle {
    int fileId = -1;
    uint64_t cursor = 0;
  };
  struct DirOp {
    enum class Kind { kCreate, kRename, kRemove };
    Kind kind = Kind::kCreate;
    std::string a;  // created/removed path, or rename source
    std::string b;  // rename destination
    int fileId = -1;
  };

  /// Count the op, fire a scheduled crash, and report any scheduled fault.
  /// Returns the fault kind for this op index or FaultKind-free sentinel.
  bool tick(FaultKind* fault);
  File& fileAt(int fileId) { return files_.at(fileId); }
  static void applyPending(std::vector<uint8_t>& content, const PendingOp& op,
                           size_t byteLimit);

  std::map<int, File> files_;
  std::map<std::string, int> visible_;
  std::map<std::string, int> durable_;
  std::vector<DirOp> journal_;
  std::map<int, Handle> handles_;
  int nextFd_ = 3;
  int nextFileId_ = 1;
  uint64_t ops_ = 0;
  int64_t crashAtOp_ = -1;
  bool crashed_ = false;
  FaultSchedule faults_;
  uint64_t faultsInjected_ = 0;
  uint64_t faultSeed_ = 0x5EEDF00DULL;
};

}  // namespace tagspin::sim
