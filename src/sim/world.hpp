// The simulated scene: a reader (with up to four antennas at unknown-to-be-
// estimated positions), spinning-rig tags, and optional static reference
// tags (used by the baseline systems).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/vec.hpp"
#include "rf/antenna.hpp"
#include "rf/channel.hpp"
#include "rfid/epc.hpp"
#include "rfid/reader.hpp"
#include "rfid/tag_models.hpp"
#include "sim/orientation_response.hpp"
#include "sim/spinning_rig.hpp"

namespace tagspin::sim {

/// A concrete physical tag: model + per-instance hardware characteristics.
struct TagInstance {
  rfid::Epc epc;
  rfid::TagModelId model = rfid::TagModelId::kSquig;
  OrientationResponse orientation = OrientationResponse::ideal();
  rf::TagOrientationGain gain;
  /// Tag-side contribution to the diversity term theta_div (constant per
  /// macro environment, per Eqn. 1).
  double hardwarePhase = 0.0;

  /// Build a randomized instance of `model` with the given EPC.
  static TagInstance make(rfid::Epc epc, rfid::TagModelId model,
                          uint64_t seed);
};

/// A tag mounted on a spinning rig.
struct RigTag {
  TagInstance tag;
  SpinningRig rig;
};

/// A static tag at a fixed pose (reference tags for LandMarc/PinIt/BackPos).
struct StaticTag {
  TagInstance tag;
  geom::Vec3 position;
  double planeAzimuth = 0.0;

  double orientationRho(const geom::Vec3& reader) const;
};

class World {
 public:
  rfid::ReaderDevice reader = rfid::ReaderDevice::makeDefault();
  /// World position of each reader antenna port (parallel to
  /// reader.antennas).  These are the localization targets.
  std::vector<geom::Vec3> antennaPositions;

  rf::BackscatterChannel channel;
  std::vector<RigTag> rigs;
  std::vector<StaticTag> statics;

  /// Seed from which all per-interrogation randomness is derived.
  uint64_t worldSeed = 1;

  const geom::Vec3& antennaPosition(int port) const;
  int tagCount() const {
    return static_cast<int>(rigs.size() + statics.size());
  }

  /// Global tag index layout: rigs first, then statics.
  const TagInstance& tagAt(int globalIndex) const;
  geom::Vec3 tagPositionAt(int globalIndex, double t) const;
  double tagRhoAt(int globalIndex, double t, const geom::Vec3& reader) const;

  void validate() const;  // throws std::logic_error on inconsistency
};

}  // namespace tagspin::sim
