// Scripted reader trajectories: waypoint paths with speed profiles and
// circular corner fillets.
//
// The tracking evaluation needs a reader that genuinely *moves* -- with
// sustained straight legs (constant-velocity regime) and genuine turns
// (coordinated-turn regime) -- while each fix window still sees an
// approximately stationary reader (quasi-static interrogation: the
// spinning rigs turn fast relative to a walking reader).  A Trajectory is
// the closed-form arc-length parameterization of a waypoint polyline
// whose corners are replaced by circular arcs of `turnRadius`, traversed
// at constant `speed`: positionAt/velocityAt are exact, deterministic,
// and cheap to query at any time.
#pragma once

#include <vector>

#include "geom/vec.hpp"
#include "sim/scenario.hpp"

namespace tagspin::sim {

struct TrajectoryConfig {
  /// Waypoints of the path (metres).  Corners between consecutive legs
  /// are filleted; at least two waypoints are required.
  std::vector<geom::Vec2> waypoints;
  /// Constant traversal speed along the path (m/s).  A walking reader is
  /// 0.1 - 0.3 m/s, slow enough that a 2 s fix window is quasi-static.
  double speedMps = 0.2;
  /// Fillet radius at each interior corner (metres).  Corners whose legs
  /// are too short for the requested radius get the largest radius that
  /// fits.  0 disables filleting (instantaneous heading changes).
  double turnRadiusM = 0.4;
  /// Loop back to the first waypoint when the path ends (patrol);
  /// otherwise the trajectory parks at the final waypoint.
  bool loop = false;
};

class Trajectory {
 public:
  explicit Trajectory(TrajectoryConfig config);

  /// Position at time t (t < 0 clamps to the start).
  geom::Vec2 positionAt(double tS) const;
  /// Velocity at time t: speed * unit tangent; zero once parked.
  geom::Vec2 velocityAt(double tS) const;
  /// Heading (atan2 of the tangent), radians.
  double headingAt(double tS) const;
  /// Instantaneous turn rate (rad/s): +-speed/radius on an arc, 0 on a
  /// straight leg.
  double turnRateAt(double tS) const;

  /// Total path length (one lap when looping), metres.
  double lengthM() const { return totalLength_; }
  /// Time to traverse the path once.
  double durationS() const;
  const TrajectoryConfig& config() const { return config_; }

 private:
  /// One constant-curvature piece: a straight segment or a circular arc.
  struct Piece {
    geom::Vec2 start;
    double heading = 0.0;   // tangent direction at `start`
    double length = 0.0;    // arc length of the piece
    double curvature = 0.0; // 1/radius, signed (+ = left turn); 0 = line
  };

  /// Arc-length position s in [0, totalLength_] for time t, respecting
  /// looping/parking.
  double arcAt(double tS) const;
  const Piece& pieceAt(double s, double* sLocal) const;

  TrajectoryConfig config_;
  std::vector<Piece> pieces_;
  std::vector<double> cumLength_;  // end arc-length of each piece
  double totalLength_ = 0.0;
};

/// Canned patrol path through the surveillance region: a rounded
/// rectangle inset from the region bounds, looping, with legs long
/// enough for the CV model and fillets tight enough to exercise the
/// CT model.  Matches the default two-rig scenario's Region.
TrajectoryConfig patrolPath(const Region& region, double speedMps = 0.2,
                            double turnRadiusM = 0.35);

/// Straight-line pass across the region at constant velocity -- the
/// pure-CV reference used by the UKF==KF equivalence tests.
TrajectoryConfig straightPath(const geom::Vec2& from, const geom::Vec2& to,
                              double speedMps = 0.2);

}  // namespace tagspin::sim
