#include "sim/orientation_response.hpp"

#include <cmath>
#include <random>

#include "geom/angles.hpp"
#include "sim/rng.hpp"

namespace tagspin::sim {

namespace {
// The stable canonical shape (before per-instance scaling).  A tag antenna
// is nearly indistinguishable under a pi rotation, so the orientation
// response is dominated by *even* harmonics: the chip's reactive loading
// (and hence the backscatter phase) varies with how well the incident
// polarisation couples, which is pi-periodic in rho.  The small odd-harmonic
// residue comes from the feed point sitting slightly off the antenna's
// geometric center ("the practical design always contains an offset").
// Scaled so that the model's orientationAmplitude is the peak-to-peak value.
dsp::FourierSeries baseShape() {
  dsp::FourierSeries s;
  s.a0 = 0.0;
  s.a = {0.08, 0.48, 0.03};  // cos(rho), cos(2 rho), cos(3 rho)
  s.b = {0.05, 0.10, 0.04};  // sin(rho), sin(2 rho), sin(3 rho)
  return s;
}

double peakToPeakOf(const dsp::FourierSeries& s) {
  double lo = s.evaluate(0.0);
  double hi = lo;
  for (int i = 1; i < 720; ++i) {
    const double v = s.evaluate(geom::kTwoPi * i / 720.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi - lo;
}
}  // namespace

OrientationResponse OrientationResponse::forTag(const rfid::TagModel& model,
                                                uint64_t instanceSeed) {
  std::mt19937_64 rng(deriveSeed(instanceSeed, 0xC0FFEEULL));
  std::uniform_real_distribution<double> ampJitter(0.85, 1.15);
  std::uniform_real_distribution<double> phaseJitter(-0.12, 0.12);

  dsp::FourierSeries shape = baseShape();
  const double norm = peakToPeakOf(shape);
  const double scale = model.orientationAmplitude * ampJitter(rng) / norm;
  const double rot = phaseJitter(rng);

  // Scale amplitudes; rotate the shape by `rot` (a small per-instance shift
  // of where the extrema sit): cos(k(x - rot)) expands to a cos/sin mix.
  dsp::FourierSeries out;
  out.a0 = 0.0;
  out.a.resize(shape.order());
  out.b.resize(shape.order());
  for (size_t k = 1; k <= shape.order(); ++k) {
    const double ck = std::cos(static_cast<double>(k) * rot);
    const double sk = std::sin(static_cast<double>(k) * rot);
    const double ak = shape.a[k - 1] * scale;
    const double bk = shape.b[k - 1] * scale;
    out.a[k - 1] = ak * ck - bk * sk;
    out.b[k - 1] = ak * sk + bk * ck;
  }
  return OrientationResponse(std::move(out));
}

OrientationResponse OrientationResponse::ideal() {
  dsp::FourierSeries zero;
  zero.a0 = 0.0;
  return OrientationResponse(std::move(zero));
}

double OrientationResponse::offset(double rho) const {
  return series_.evaluate(rho);
}

double OrientationResponse::peakToPeak() const { return peakToPeakOf(series_); }

}  // namespace tagspin::sim
