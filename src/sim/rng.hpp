// Deterministic seed derivation.
//
// All randomness in the simulator flows from explicit 64-bit seeds; derived
// streams (per tag, per trial, per subsystem) are split off with splitmix64
// so experiments are reproducible and independent of evaluation order.
#pragma once

#include <cstdint>
#include <random>

namespace tagspin::sim {

/// splitmix64 finaliser; good avalanche, cheap.
constexpr uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Derive an independent stream seed from a base seed and a stream id.
constexpr uint64_t deriveSeed(uint64_t base, uint64_t stream) {
  return splitmix64(base ^ splitmix64(stream * 0xA24BAED4963EE407ULL + 1));
}

inline std::mt19937_64 makeRng(uint64_t seed) { return std::mt19937_64(seed); }

}  // namespace tagspin::sim
