// Ground-truth phase-vs-orientation response of a simulated tag.
//
// The paper's Observation 3.1: a tag's reported phase depends on its
// orientation rho relative to the reader; the fluctuation is ~0.7 rad
// peak-to-peak, its *amplitude* varies across tag instances and positions
// but its *shape* is stable and well fitted by a Fourier series.  Physical
// cause: the tag antenna's feed/IC is offset from the geometric center, so
// rotating the tag changes the effective backscatter path by a few
// millimetres -- doubled by the round trip.
//
// The core library NEVER reads this class; it must recover the response via
// the paper's center-spin calibration (Step 1 of section III-B).
#pragma once

#include <cstdint>

#include "dsp/fourier.hpp"
#include "rfid/tag_models.hpp"

namespace tagspin::sim {

class OrientationResponse {
 public:
  /// Response of a concrete tag instance: the model sets the nominal
  /// amplitude, the instance seed adds bounded per-tag variation
  /// (+-15% amplitude, small phase rotation) while keeping the shape.
  static OrientationResponse forTag(const rfid::TagModel& model,
                                    uint64_t instanceSeed);

  /// A response with exactly zero effect (ideal symmetric tag).
  static OrientationResponse ideal();

  /// Phase offset (radians) contributed at orientation rho.
  double offset(double rho) const;

  /// Peak-to-peak amplitude over a dense grid; ~0.7 rad for the default
  /// Squiggle model.
  double peakToPeak() const;

  const dsp::FourierSeries& series() const { return series_; }

 private:
  explicit OrientationResponse(dsp::FourierSeries s) : series_(std::move(s)) {}
  dsp::FourierSeries series_;
};

}  // namespace tagspin::sim
