// Structured fault injection for the ingestion pipeline.
//
// A production calibration service does not see the simulator's pristine
// report stream: readers tear frames mid-write, retransmit duplicates,
// deliver reports out of order, glitch their clocks, and rigs fall silent
// when a motor stalls or a forklift parks in front of the antenna.  The
// FaultInjector reproduces those failure modes *deterministically* (seeded)
// and *independently* (every mode has its own rate knob, default 0), so a
// test can isolate exactly one cause and the chaos harness can sweep their
// joint intensity.
//
// Two layers, matching where real faults happen:
//  * corruptReports() mangles the decoded ReportStream -- duplication,
//    reordering, clock drift/glitches, per-tag dropout windows, EPC bit
//    errors (a mis-read backscatter reply that passed CRC by luck);
//  * corruptBytes() mangles the encoded LLRP byte stream -- per-frame bit
//    flips and truncation (torn TCP writes), which exercise the
//    resynchronizing tolerant decoder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "rfid/epc.hpp"
#include "rfid/report.hpp"

namespace tagspin::sim {

/// A window, expressed as fractions of the stream's time span, during which
/// every report of `epc` is lost (rig stalled / occluded / powered down).
struct TagDropout {
  rfid::Epc epc;
  double startFraction = 0.0;
  double endFraction = 0.0;
};

struct FaultConfig {
  uint64_t seed = 0x5EEDFA17ULL;

  // --- report-level faults (corruptReports) ---
  /// Per report: probability of an immediate duplicate (reader retransmit).
  double duplicateProb = 0.0;
  /// Per report: probability of being swapped with its successor.
  double reorderProb = 0.0;
  /// Per report: probability of a one-off timestamp jump (clock glitch).
  double timestampGlitchProb = 0.0;
  /// Maximum magnitude of a glitch jump, seconds (uniform in +-max).
  double timestampGlitchMaxS = 0.5;
  /// Constant reader-clock drift applied to all timestamps, parts/million.
  double clockDriftPpm = 0.0;
  /// Per report: probability of one flipped bit in the 96-bit EPC.
  double epcBitErrorProb = 0.0;
  /// Per-tag silence windows.
  std::vector<TagDropout> dropouts;

  // --- byte-level faults (corruptBytes) ---
  /// Per frame: probability of 1-3 flipped bits somewhere in the frame.
  double frameBitFlipProb = 0.0;
  /// Per frame: probability the frame is truncated (random prefix survives,
  /// the rest of the stream follows immediately -- a torn write).
  double frameTruncateProb = 0.0;

  /// Return a copy with every probability/rate scaled by `intensity`
  /// (dropout windows keep their spans below 1e-9 intensity -> removed).
  FaultConfig scaled(double intensity) const;
};

/// What the injector actually did (for assertions and chaos reporting).
struct FaultStats {
  size_t duplicatesInserted = 0;
  size_t reordersApplied = 0;
  size_t timestampGlitches = 0;
  size_t epcBitErrors = 0;
  size_t reportsDropped = 0;   // by dropout windows
  size_t framesBitFlipped = 0;
  size_t framesTruncated = 0;
  size_t bitsFlipped = 0;
};

/// Fold a FaultStats delta into the registry's "faults.*" counters (the
/// chaos harness routes its per-point accounting through a registry).
void publishFaultStats(const FaultStats& delta,
                       obs::MetricsRegistry& registry);

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }
  void resetStats() { stats_ = {}; }

  /// Apply all enabled report-level faults.  Deterministic in (config.seed,
  /// call order): the n-th call on a fresh injector always produces the
  /// same output for the same input.
  rfid::ReportStream corruptReports(const rfid::ReportStream& clean);

  /// Apply all enabled byte-level faults to an encoded LLRP stream.
  /// Operates on kMessageSize-aligned frames of the *input* (faults are
  /// applied per original frame; truncation splices the stream).
  std::vector<uint8_t> corruptBytes(std::span<const uint8_t> clean);

 private:
  FaultConfig config_;
  FaultStats stats_;
  uint64_t callCounter_ = 0;
};

}  // namespace tagspin::sim
